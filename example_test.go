package modelslicing_test

import (
	"fmt"
	"math/rand"

	ms "modelslicing"
	"modelslicing/internal/models"
)

// ExampleBudgetRate shows Equation 3: resolving a runtime computation
// budget to the largest deployable slice rate.
func ExampleBudgetRate() {
	rates := ms.NewRateList(0.25, 4)
	fullCost := 1000.0
	for _, budget := range []float64{1000, 500, 250, 60, 10} {
		fmt.Printf("budget %4.0f -> rate %.2f\n", budget, ms.BudgetRate(rates, budget, fullCost))
	}
	// Output:
	// budget 1000 -> rate 1.00
	// budget  500 -> rate 0.50
	// budget  250 -> rate 0.50
	// budget   60 -> rate 0.25
	// budget   10 -> rate 0.25
}

// ExampleMeasureCost shows the quadratic cost law on a sliced MLP.
func ExampleMeasureCost() {
	rng := rand.New(rand.NewSource(1))
	model := models.NewMLP(16, []int{64, 64}, 4, 4, rng)
	full := ms.MeasureCost(model, []int{16}, 1)
	half := ms.MeasureCost(model, []int{16}, 0.5)
	// The interior 64×64 layer shrinks 4×; the unsliced input and output
	// dims keep the total a little above the ideal 25%.
	fmt.Printf("params shrink to %.0f%%\n", 100*float64(half.Params)/float64(full.Params))
	// Output:
	// params shrink to 31%
}

// ExampleNewRateList shows the paper's slice-rate grids.
func ExampleNewRateList() {
	fmt.Println(ms.NewRateList(0.25, 4))
	fmt.Println(ms.NewRateList(0.375, 8))
	// Output:
	// [0.25 0.5 0.75 1]
	// [0.375 0.5 0.625 0.75 0.875 1]
}
