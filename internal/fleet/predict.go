package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"modelslicing/internal/server"
)

// attemptErr is one failed forwarding attempt, classified for the retry
// policy: transport errors and replica-side 5xx are retryable on a different
// replica; a 4xx is the caller's fault and is not. saturated marks a 503 —
// when every attempt ends saturated, the fleet-level answer is ErrSaturated,
// the only condition under which the coordinator sheds.
type attemptErr struct {
	err       error
	retryable bool
	saturated bool
}

func (e *attemptErr) Error() string { return e.err.Error() }
func (e *attemptErr) Unwrap() error { return e.err }

// Predict routes one query through the fleet and returns the replica's
// answer. The fleet-level contract mirrors the single-node one: every call
// returns exactly one (response, error) pair, no matter which replicas died,
// stalled, or shed along the way. Transient failures are retried on a
// replica the query has not touched (capped exponential backoff + jitter);
// a straggling attempt is hedged to the next-best replica after HedgeAfter
// and the first reply wins.
func (c *Coordinator) Predict(ctx context.Context, input []float64) (server.PredictResponse, error) {
	start := time.Now()
	tried := make(map[int]bool)
	var last *attemptErr
	sawSaturated := false
	for attempt := 0; ; attempt++ {
		idx, url, ok := c.route(tried)
		if !ok {
			break // every replica in rotation has been tried (or none exists)
		}
		tried[idx] = true
		resp, aerr := c.sendHedged(ctx, idx, url, input, tried)
		if aerr == nil {
			c.metrics.latency.Observe(time.Since(start))
			c.metrics.forwarded.Add(1)
			return resp, nil
		}
		last = aerr
		sawSaturated = sawSaturated || aerr.saturated
		if !aerr.retryable || attempt >= c.cfg.RetryMax {
			break
		}
		c.metrics.retries.Add(1)
		if d := c.backoff(attempt); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return server.PredictResponse{}, ctx.Err()
			}
		}
	}
	c.metrics.shed.Add(1)
	switch {
	case sawSaturated:
		return server.PredictResponse{}, fmt.Errorf("%w: %w", ErrSaturated, last)
	case last != nil:
		return server.PredictResponse{}, last
	default:
		return server.PredictResponse{}, ErrNoReplicas
	}
}

// sendHedged forwards one attempt with straggler hedging: if the primary has
// not answered within the hedge delay, the query is also routed to the
// next-best replica (booked into the fleet model like any other traffic) and
// whichever reply lands first wins — the loser's request is canceled through
// the shared context. The channel is buffered to the number of launched
// copies, so a losing goroutine never blocks on a caller that has left.
func (c *Coordinator) sendHedged(ctx context.Context, idx int, url string, input []float64, tried map[int]bool) (server.PredictResponse, *attemptErr) {
	delay := c.hedgeDelay()
	if delay < 0 {
		return c.forward(ctx, idx, url, input)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		resp server.PredictResponse
		err  *attemptErr
	}
	results := make(chan outcome, 2)
	launch := func(i int, u string) {
		go func() {
			r, e := c.forward(hctx, i, u, input)
			results <- outcome{r, e}
		}()
	}
	launch(idx, url)
	timer := time.NewTimer(delay)
	defer timer.Stop()
	launched, outstanding := 1, 1
	var firstErr *attemptErr
	for {
		select {
		case o := <-results:
			outstanding--
			if o.err == nil {
				if launched > 1 {
					c.metrics.hedgeWins.Add(1)
				}
				return o.resp, nil
			}
			if firstErr == nil || !o.err.saturated {
				firstErr = o.err
			}
			if outstanding == 0 {
				return server.PredictResponse{}, firstErr
			}
		case <-timer.C:
			if launched > 1 {
				continue
			}
			bidx, burl, ok := c.route(tried)
			if !ok {
				continue // nowhere to hedge to; keep waiting on the primary
			}
			tried[bidx] = true
			c.metrics.hedges.Add(1)
			launch(bidx, burl)
			launched, outstanding = 2, outstanding+1
		case <-ctx.Done():
			return server.PredictResponse{}, &attemptErr{err: ctx.Err()}
		}
	}
}

// hedgeDelay resolves the straggler threshold: the configured fixed value,
// -1 when hedging is disabled, or the adaptive p95 of observed fleet
// latency (2·SLO until 16 samples exist — early traffic should not hedge on
// a noisy estimate).
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeAfter != 0 {
		if c.cfg.HedgeAfter < 0 {
			return -1
		}
		return c.cfg.HedgeAfter
	}
	snap := c.metrics.latency.Snapshot()
	if snap.Count < 16 {
		return 2 * c.cfg.SLO
	}
	return snap.Quantile(0.95)
}

// forward performs one HTTP attempt against one replica and classifies the
// outcome. Transport-level failures also feed the ejection state machine —
// a replica that eats queries should leave rotation before the health
// poller notices.
func (c *Coordinator) forward(ctx context.Context, idx int, baseURL string, input []float64) (server.PredictResponse, *attemptErr) {
	var out server.PredictResponse
	body, err := json.Marshal(server.PredictRequest{Input: input})
	if err != nil {
		return out, &attemptErr{err: err}
	}
	actx, cancel := context.WithTimeout(ctx, c.cfg.PredictTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, baseURL+"/predict", bytes.NewReader(body))
	if err != nil {
		return out, &attemptErr{err: err}
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			// The caller (or the winning hedge copy) canceled us; that says
			// nothing about the replica's health.
			return out, &attemptErr{err: ctx.Err()}
		}
		c.recordNetFailure(idx)
		return out, &attemptErr{err: fmt.Errorf("fleet: %s: %w", baseURL, err), retryable: true}
	}
	defer resp.Body.Close()
	c.recordNetOK(idx)
	switch {
	case resp.StatusCode == http.StatusOK:
		if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&out); err != nil {
			return out, &attemptErr{err: fmt.Errorf("fleet: %s: bad reply: %w", baseURL, err), retryable: true}
		}
		return out, nil
	case resp.StatusCode == http.StatusServiceUnavailable:
		return out, &attemptErr{
			err:       fmt.Errorf("fleet: %s shed the query: %s", baseURL, readErr(resp.Body)),
			retryable: true, saturated: true,
		}
	case resp.StatusCode >= 500:
		// Shard failure on the replica (panic, stuck, expired): the replica
		// has already repaired itself; the query deserves a different one.
		return out, &attemptErr{
			err:       fmt.Errorf("fleet: %s failed the query: %s", baseURL, readErr(resp.Body)),
			retryable: true,
		}
	default:
		return out, &attemptErr{err: fmt.Errorf("fleet: %s: HTTP %d: %s", baseURL, resp.StatusCode, readErr(resp.Body))}
	}
}

// readErr extracts a short error string from a replica's failure body.
func readErr(r io.Reader) string {
	b, _ := io.ReadAll(io.LimitReader(r, 512))
	return strings.TrimSpace(string(b))
}
