package fleet

import (
	"encoding/json"
	"errors"
	"net/http"

	"modelslicing/internal/server"
)

// Handler returns the coordinator's HTTP API — wire-compatible with a single
// replica's on the query path, so clients point at the coordinator without
// changing a line:
//
//	POST /predict   — route one sample through the fleet (same JSON as a
//	                  replica's /predict)
//	GET  /metrics   — Prometheus text exposition of the fleet counters
//	GET  /healthz   — liveness plus live/total replica counts
//	GET  /replicas  — fleet membership and per-replica status
//	POST /replicas  — runtime join/leave: {"op":"join"|"leave","url":...}
//	POST /admin/swap — rolling fleet-wide model swap, one health-gated
//	                  replica at a time
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", c.handlePredict)
	mux.HandleFunc("/metrics", c.handleMetrics)
	mux.HandleFunc("/healthz", c.handleHealthz)
	mux.HandleFunc("/replicas", c.handleReplicas)
	mux.HandleFunc("/admin/swap", c.handleSwapAll)
	return mux
}

func (c *Coordinator) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	var req server.PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	resp, err := c.Predict(r.Context(), req.Input)
	switch {
	case err == nil:
		writeJSON(w, resp)
	case errors.Is(err, ErrSaturated), errors.Is(err, ErrNoReplicas):
		w.Header().Set("Retry-After", "1")
		writeJSONStatus(w, http.StatusServiceUnavailable, map[string]any{"error": err.Error()})
	default:
		var aerr *attemptErr
		if errors.As(err, &aerr) && !aerr.retryable {
			// The replica judged the request malformed; relay that verdict.
			writeJSONStatus(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
			return
		}
		writeJSONStatus(w, http.StatusBadGateway, map[string]any{"error": err.Error()})
	}
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(c.Stats().prometheus()))
}

func (c *Coordinator) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	live, total := 0, 0
	for _, r := range c.Replicas() {
		if r.Left {
			continue
		}
		total++
		if !r.Ejected {
			live++
		}
	}
	writeJSON(w, map[string]any{
		"status":        "ok",
		"replicas":      total,
		"live_replicas": live,
	})
}

// handleReplicas is the runtime membership API: GET lists, POST joins or
// leaves one replica by base URL.
func (c *Coordinator) handleReplicas(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, c.Replicas())
	case http.MethodPost:
		var req struct {
			Op  string `json:"op"`
			URL string `json:"url"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
			return
		}
		switch req.Op {
		case "join":
			if err := c.AddReplica(req.URL); err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
		case "leave":
			if !c.RemoveReplica(req.URL) {
				http.Error(w, "unknown replica "+req.URL, http.StatusNotFound)
				return
			}
		default:
			http.Error(w, `op must be "join" or "leave"`, http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]any{"ok": true})
	default:
		http.Error(w, "use GET or POST", http.StatusMethodNotAllowed)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
