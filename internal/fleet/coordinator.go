package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"modelslicing/internal/server"
	"modelslicing/internal/serving"
	"modelslicing/internal/slicing"
)

// Errors returned by Predict.
var (
	// ErrNoReplicas means no replica is in rotation at all — the fleet is
	// empty, or every member is ejected.
	ErrNoReplicas = errors.New("fleet: no replica in rotation")
	// ErrSaturated means every reachable replica shed the query: the whole
	// fleet is saturated, the only condition under which the coordinator
	// itself sheds.
	ErrSaturated = errors.New("fleet: all replicas saturated")
)

// Config parameterizes a coordinator.
type Config struct {
	// SLO is the fleet latency bound T; it should match the replicas'. The
	// T/2 routing window and every default below derive from it.
	SLO time.Duration
	// Headroom derates routing deadline slack exactly as the replicas
	// derate theirs; it should match the replicas' setting. 0 means 1.
	Headroom float64
	// Transport carries coordinator→replica requests; nil means a fresh
	// fleet.Transport over http.DefaultTransport (tests inject their own to
	// partition replicas).
	Transport http.RoundTripper
	// Clock supplies time; nil means the wall clock. The lockstep test
	// injects a server.FakeClock and advances it window by window.
	Clock server.Clock
	// HealthEvery is the health-poll interval (GET /state per replica).
	// Default SLO/2 — one poll per routing window.
	HealthEvery time.Duration
	// StateTimeout bounds one health poll; default SLO.
	StateTimeout time.Duration
	// PredictTimeout bounds one forwarded query attempt; default 8·SLO
	// (a replica may legitimately hold a query for ~T plus backlog).
	PredictTimeout time.Duration
	// FailThreshold ejects a replica after this many consecutive failures
	// (failed health polls or transport errors on forwarded queries).
	// Default 3.
	FailThreshold int
	// RejoinAfter readmits an ejected replica after this many consecutive
	// successful health polls; its backlog model is reseeded from the
	// polled horizon. Default 2.
	RejoinAfter int
	// RetryMax is how many additional replicas a failed query is retried on
	// (each attempt goes to a replica the query has not touched yet).
	// Default 2.
	RetryMax int
	// RetryBase seeds the capped exponential backoff between retries
	// (base·2^attempt plus up to 50% jitter, capped at RetryCap). Default
	// SLO/16; RetryCap default SLO/2. Negative RetryBase disables the
	// sleep (retries go immediately — deterministic tests).
	RetryBase time.Duration
	RetryCap  time.Duration
	// HedgeAfter controls straggler hedging: after this long without a
	// reply, a second copy of the query is sent to the next-best replica
	// and the first reply wins (the loser is canceled). 0 derives the
	// delay from the observed latency p95 (2·SLO until 16 samples exist);
	// negative disables hedging. Hedging watches wall time even under an
	// injected clock — a straggler is a wall-clock phenomenon.
	HedgeAfter time.Duration
}

// replica is one fleet member: its URL, the coordinator's Equation-3 model
// of it (index-aligned entry in the serving.Cluster), and its health-state
// machine counters. All fields are guarded by the coordinator's mu.
type replica struct {
	url   string
	model *serving.ReplicaModel

	consecFails int
	consecOK    int
	left        bool // administratively removed; skipped by health polls

	routed   int64 // queries routed here (hedges included)
	ejected  int64 // times ejected
	rejoined int64 // times readmitted
}

// Coordinator fronts a fleet of replica msservers.
type Coordinator struct {
	cfg     Config
	clock   server.Clock
	client  *http.Client
	started time.Time

	mu        sync.Mutex
	cluster   *serving.Cluster
	replicas  []*replica // index-aligned with cluster.Replicas
	curWindow int64
	rng       *rand.Rand

	metrics coordMetrics

	quit     chan struct{}
	stopOnce sync.Once
}

// New starts a coordinator with an empty replica set; add members with
// AddReplica. Release it with Stop.
func New(cfg Config) (*Coordinator, error) {
	if cfg.SLO <= 0 {
		return nil, fmt.Errorf("fleet: non-positive SLO %v", cfg.SLO)
	}
	if cfg.Headroom < 0 || cfg.Headroom > 1 {
		return nil, fmt.Errorf("fleet: headroom %v outside (0, 1]", cfg.Headroom)
	}
	if cfg.Headroom == 0 {
		cfg.Headroom = 1
	}
	if cfg.Transport == nil {
		cfg.Transport = &Transport{}
	}
	if cfg.Clock == nil {
		cfg.Clock = server.RealClock()
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = cfg.SLO / 2
	}
	if cfg.StateTimeout <= 0 {
		cfg.StateTimeout = cfg.SLO
	}
	if cfg.PredictTimeout <= 0 {
		cfg.PredictTimeout = 8 * cfg.SLO
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = 3
	}
	if cfg.RejoinAfter <= 0 {
		cfg.RejoinAfter = 2
	}
	if cfg.RetryMax == 0 {
		cfg.RetryMax = 2
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = cfg.SLO / 16
	}
	if cfg.RetryCap <= 0 {
		cfg.RetryCap = cfg.SLO / 2
	}
	c := &Coordinator{
		cfg:     cfg,
		clock:   cfg.Clock,
		client:  &http.Client{Transport: cfg.Transport},
		started: cfg.Clock.Now(),
		cluster: &serving.Cluster{SLO: cfg.SLO.Seconds(), Headroom: cfg.Headroom},
		rng:     rand.New(rand.NewSource(1)),
		quit:    make(chan struct{}),
	}
	go c.healthLoop()
	return c, nil
}

// Stop halts the health loop. In-flight forwarded queries finish on their
// own contexts.
func (c *Coordinator) Stop() {
	c.stopOnce.Do(func() { close(c.quit) })
}

// windowS is the wall routing window T/2 on the policy axis.
func (c *Coordinator) windowS() float64 { return (c.cfg.SLO / 2).Seconds() }

func (c *Coordinator) sinceStart(t time.Time) float64 {
	return t.Sub(c.started).Seconds()
}

// AddReplica joins a replica (base URL, e.g. "http://host:port") to the
// fleet: its /state is fetched synchronously to build the coordinator's
// Equation-3 model — the calibrated t(r) table becomes a serving.Policy, the
// polled horizon seeds a serving.Backlog. Re-adding a URL that left (or is
// still a member) reseeds its model in place; indices stay stable for the
// queries in flight.
func (c *Coordinator) AddReplica(baseURL string) error {
	st, err := c.fetchState(baseURL)
	if err != nil {
		return fmt.Errorf("fleet: join %s: %w", baseURL, err)
	}
	now := c.clock.Now()
	nowF := c.sinceStart(now)
	model := &serving.ReplicaModel{
		Policy: serving.Policy{
			Rates:      slicing.RateList(st.Rates),
			Window:     st.WindowS,
			SampleTime: server.SampleTimeTable(st.SampleTimes),
		},
		Penalized: st.CircuitOpen || st.Stopping,
	}
	model.Backlog.Extend(nowF, st.BacklogAheadS)
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.replicas {
		if r.url == baseURL {
			r.left = false
			r.consecFails, r.consecOK = 0, 0
			*r.model = *model
			return nil
		}
	}
	c.cluster.Replicas = append(c.cluster.Replicas, model)
	c.replicas = append(c.replicas, &replica{url: baseURL, model: model})
	return nil
}

// RemoveReplica takes a replica out of rotation administratively. The entry
// is tombstoned, not deleted, so replica indices held by in-flight queries
// stay valid; AddReplica with the same URL revives it.
func (c *Coordinator) RemoveReplica(baseURL string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range c.replicas {
		if r.url == baseURL && !r.left {
			r.left = true
			r.model.Ejected = true
			r.model.Pending = 0
			return true
		}
	}
	return false
}

// advanceLocked performs the lazy window close: pending routing state
// belongs to curWindow only, so when the clock has crossed into a later
// window the one boundary that matters is curWindow's close — each booked
// replica takes its window decision there, extending its modeled horizon.
// Callers hold c.mu.
func (c *Coordinator) advanceLocked(nowF float64) {
	w := int64(nowF / c.windowS())
	if w > c.curWindow {
		c.cluster.Close(float64(c.curWindow+1) * c.windowS())
		c.curWindow = w
	}
}

// route books one query into the fleet model and returns the chosen
// replica. skip lists replica indices this query must avoid (already tried,
// or the hedge primary).
func (c *Coordinator) route(skip map[int]bool) (int, string, bool) {
	now := c.clock.Now()
	nowF := c.sinceStart(now)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceLocked(nowF)
	closeT := float64(c.curWindow+1) * c.windowS()
	rd, ok := c.cluster.Route(nowF, closeT, func(i int) bool { return skip[i] })
	if !ok {
		return -1, "", false
	}
	r := c.replicas[rd.Replica]
	r.routed++
	return rd.Replica, r.url, true
}

// recordNetFailure feeds a transport-level failure into the same
// consecutive-failure ejection machine the health poller drives — a replica
// that eats queries is ejected without waiting out health-poll intervals.
func (c *Coordinator) recordNetFailure(idx int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failLocked(c.replicas[idx])
}

func (c *Coordinator) recordNetOK(idx int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := c.replicas[idx]
	r.consecFails = 0
}

// failLocked advances one replica's failure count and ejects it at the
// threshold: out of rotation, pending bookings forgotten (those queries are
// being retried elsewhere). Callers hold c.mu.
func (c *Coordinator) failLocked(r *replica) {
	r.consecOK = 0
	r.consecFails++
	if !r.model.Ejected && r.consecFails >= c.cfg.FailThreshold {
		r.model.Ejected = true
		r.model.Pending = 0
		r.ejected++
		c.metrics.ejections.Add(1)
	}
}

// healthLoop polls every member's /state each HealthEvery: successes refresh
// the model (t(r) drift, circuit penalty) and drive rejoin; failures drive
// ejection. Under a fake clock that is only advanced (never ticked) the loop
// stays dormant — the lockstep tests run the routing arithmetic pure.
func (c *Coordinator) healthLoop() {
	ticks, stop := c.clock.Ticker(c.cfg.HealthEvery)
	defer stop()
	for {
		select {
		case <-c.quit:
			return
		case <-ticks:
			c.pollAll()
		}
	}
}

func (c *Coordinator) pollAll() {
	c.mu.Lock()
	members := make([]*replica, 0, len(c.replicas))
	for _, r := range c.replicas {
		if !r.left {
			members = append(members, r)
		}
	}
	c.mu.Unlock()
	for _, r := range members {
		st, err := c.fetchState(r.url)
		now := c.clock.Now()
		c.mu.Lock()
		if r.left { // removed while we polled
			c.mu.Unlock()
			continue
		}
		if err != nil {
			c.failLocked(r)
			c.mu.Unlock()
			continue
		}
		r.consecFails = 0
		r.consecOK++
		r.model.Penalized = st.CircuitOpen || st.Stopping
		r.model.Policy.SampleTime = server.SampleTimeTable(st.SampleTimes)
		if r.model.Ejected && r.consecOK >= c.cfg.RejoinAfter {
			// Rejoin: back into rotation with a fresh horizon seeded from
			// the replica's own report — whatever happened while it was
			// away, its backlog model restarts from observed truth.
			r.model.Ejected = false
			r.model.Pending = 0
			r.model.Backlog = serving.Backlog{}
			r.model.Backlog.Extend(c.sinceStart(now), st.BacklogAheadS)
			r.rejoined++
			c.metrics.rejoins.Add(1)
		}
		c.mu.Unlock()
	}
}

// fetchState polls one replica's /state.
func (c *Coordinator) fetchState(baseURL string) (server.State, error) {
	var st server.State
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.StateTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/state", nil)
	if err != nil {
		return st, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("state: HTTP %d", resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return st, err
	}
	return st, nil
}

// backoff returns the capped exponential retry delay with jitter for the
// given attempt number (0-based), or 0 when RetryBase is negative.
func (c *Coordinator) backoff(attempt int) time.Duration {
	if c.cfg.RetryBase < 0 {
		return 0
	}
	d := c.cfg.RetryBase << attempt
	if d > c.cfg.RetryCap || d <= 0 {
		d = c.cfg.RetryCap
	}
	c.mu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d)/2 + 1))
	c.mu.Unlock()
	return d + jitter
}
