// Package fleet is the scale-out layer over internal/server: a coordinator
// that fronts N replica msservers over plain HTTP/JSON and makes the
// cluster-level Equation-3 decision — route each query to the replica whose
// backlog horizon admits it at the highest rate (serving.Cluster), health-check
// replicas and eject the dead, retry transient failures on a different
// replica with capped backoff, hedge stragglers after a p95-derived delay,
// and shed only when the whole fleet is saturated. A replica is just a pool
// whose horizon the coordinator reads (GET /state); the replica keeps its
// entire single-node stack and needs to know nothing about the fleet.
//
// The coordinator's model of every replica is deliberately estimate-based,
// exactly like the single-node Backlog: horizons drain with the clock and
// extend with each window's routing decision, refreshed — not corrected —
// by health polls. Under a fake clock the whole fleet is deterministic,
// which is what the cluster lockstep test pins against serving.SimulateFleet.
package fleet

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"modelslicing/internal/faults"
)

// Transport is the coordinator's chaos-injectable http.RoundTripper: every
// coordinator→replica request flows through it, so tests partition, stall,
// or kill a replica without touching the replica's process. Two layers
// compose:
//
//   - per-host taps (SetDown, SetDelay) target one replica deterministically
//     — the eject/rejoin and hedging tests use these;
//   - the process-wide fault registry (net-drop, net-delay, replica-down
//     points, armable via MS_FAULTS) injects probabilistic network chaos
//     under the whole fleet — the soak configuration.
//
// The zero value is ready to use and delegates to http.DefaultTransport.
type Transport struct {
	// Inner performs the real round trip; nil means http.DefaultTransport.
	Inner http.RoundTripper

	mu    sync.Mutex
	down  map[string]bool
	delay map[string]time.Duration
}

// SetDown marks a replica host (URL host:port) unreachable: requests to it
// fail with a connection error before any bytes move, exactly what a dead
// process or a partition looks like to the coordinator.
func (t *Transport) SetDown(host string, down bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.down == nil {
		t.down = make(map[string]bool)
	}
	t.down[host] = down
}

// SetDelay stalls every request to a replica host by d before it is sent —
// a straggling replica for the hedging path. Zero removes the stall.
func (t *Transport) SetDelay(host string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.delay == nil {
		t.delay = make(map[string]time.Duration)
	}
	t.delay[host] = d
}

func (t *Transport) hostState(host string) (bool, time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.down[host], t.delay[host]
}

// RoundTrip applies the injected faults, then delegates. A dropped or
// down-host request returns an error without consuming the request body; a
// delayed one sleeps first, honoring the request context so a canceled hedge
// loser does not linger.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	down, delay := t.hostState(host)
	if down || faults.Should(faults.ReplicaDown) {
		return nil, fmt.Errorf("fleet: connection to %s refused (injected)", host)
	}
	if faults.Should(faults.NetDrop) {
		return nil, fmt.Errorf("fleet: request to %s dropped (injected)", host)
	}
	if d := faults.Delay(faults.NetDelay); d > delay {
		delay = d
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	return inner.RoundTrip(req)
}
