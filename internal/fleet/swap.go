package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"modelslicing/internal/server"
)

// SwapResult records one replica's promotion during a rolling fleet swap.
type SwapResult struct {
	URL   string `json:"url"`
	Epoch uint64 `json:"model_epoch"`
	CRC   string `json:"checkpoint_crc32"`
}

// SwapAll rolls a model swap across the fleet one replica at a time: POST
// /admin/swap on the member (the replica rebuilds its model through its
// SwapSource, recalibrates, and hot-swaps it), then health-gate the
// promotion — poll the replica's /state until it reports the new model
// identity with its brownout circuit closed — before touching the next
// member. Rolling one-at-a-time means the fleet never loses more than one
// replica's worth of recalibration ramp at once.
//
// A failed swap or a failed gate aborts the roll immediately: the remaining
// members keep serving the old model (the fleet is mixed but every member is
// live), and the returned results list exactly the replicas that were
// promoted. Members administratively removed or health-ejected are skipped —
// an ejected replica rejoining later re-fetches its state, and its operator
// can re-roll.
func (c *Coordinator) SwapAll(ctx context.Context) ([]SwapResult, error) {
	c.mu.Lock()
	members := make([]*replica, 0, len(c.replicas))
	for _, r := range c.replicas {
		if !r.left && !r.model.Ejected {
			members = append(members, r)
		}
	}
	c.mu.Unlock()
	done := []SwapResult{}
	for _, r := range members {
		res, err := c.swapOne(ctx, r.url)
		if err == nil {
			err = c.gatePromotion(ctx, r, res)
		}
		if err != nil {
			return done, fmt.Errorf("fleet: rolling swap aborted at %s (%d/%d promoted): %w",
				r.url, len(done), len(members), err)
		}
		c.metrics.swaps.Add(1)
		done = append(done, res)
	}
	return done, nil
}

// swapOne triggers one replica's hot swap and returns the identity it
// reports having promoted to.
func (c *Coordinator) swapOne(ctx context.Context, baseURL string) (SwapResult, error) {
	res := SwapResult{URL: baseURL}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.PredictTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/admin/swap", nil)
	if err != nil {
		return res, err
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return res, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return res, fmt.Errorf("swap: HTTP %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Epoch uint64 `json:"model_epoch"`
		CRC   string `json:"checkpoint_crc32"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		return res, fmt.Errorf("swap: %w", err)
	}
	res.Epoch, res.CRC = rep.Epoch, rep.CRC
	return res, nil
}

// gatePromotion holds the roll until the replica's own /state confirms the
// new identity and a closed circuit, then refreshes the coordinator's model
// of it — the swap recalibrated t(r), so routing must see the new curve
// before the next member is touched. Promotion is a wall-clock phenomenon
// (like hedging), so the gate polls on wall time even under an injected
// clock; the swap POST is synchronous, so the first poll normally settles it.
func (c *Coordinator) gatePromotion(ctx context.Context, r *replica, want SwapResult) error {
	deadline := time.Now().Add(c.cfg.PredictTimeout)
	for {
		st, err := c.fetchState(r.url)
		if err == nil && st.ModelEpoch == want.Epoch && st.ModelCRC == want.CRC &&
			!st.Stopping && !st.CircuitOpen {
			c.mu.Lock()
			if !r.left {
				r.model.Policy.SampleTime = server.SampleTimeTable(st.SampleTimes)
				r.model.Penalized = false
			}
			c.mu.Unlock()
			return nil
		}
		if time.Now().After(deadline) {
			if err == nil {
				err = fmt.Errorf("replica still reports epoch %d crc %s", st.ModelEpoch, st.ModelCRC)
			}
			return fmt.Errorf("promotion gate: %w", err)
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("promotion gate: %w", ctx.Err())
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// handleSwapAll is POST /admin/swap on the coordinator: one call rolls the
// swap across every live member, health-gating each promotion. On abort the
// 502 body still lists the replicas already promoted — the operator knows
// exactly how mixed the fleet is.
func (c *Coordinator) handleSwapAll(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	results, err := c.SwapAll(r.Context())
	if err != nil {
		writeJSONStatus(w, http.StatusBadGateway, map[string]any{
			"error":    err.Error(),
			"promoted": results,
		})
		return
	}
	writeJSON(w, map[string]any{
		"swapped":  len(results),
		"replicas": results,
	})
}
