package fleet

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"modelslicing/internal/nn"
	"modelslicing/internal/server"
	"modelslicing/internal/slicing"
)

// sigLayer is a model whose output is sig on every class at every rate —
// all weights zero, final bias sig — so a reply reveals which model served
// it (same trick as the single-node swap tests).
func sigLayer(sig float64) nn.Layer {
	rng := rand.New(rand.NewSource(1))
	m := nn.NewSequential(
		nn.NewDense(4, 8, nn.Fixed(), nn.Sliced(4), true, rng),
		nn.NewReLU(),
		nn.NewDense(8, 3, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	params := m.Params()
	for _, p := range params {
		p.Value.Zero()
	}
	bias := params[len(params)-1]
	for i := range bias.Value.Data {
		bias.Value.Data[i] = sig
	}
	return m
}

// swappableReplica is a real-clock replica serving sigLayer(oldSig) whose
// SwapSource promotes to sigLayer(newSig) at the given identity.
func swappableReplica(t *testing.T, oldSig, newSig float64, info server.ModelInfo) *server.Server {
	t.Helper()
	rates := slicing.NewRateList(0.25, 4)
	s, err := server.New(server.Config{
		Model:             sigLayer(oldSig),
		Rates:             rates,
		InputShape:        []int{4},
		SLO:               50 * time.Millisecond,
		Workers:           2,
		SampleTime:        func(r float64) float64 { return 1e-6 * r * r },
		QueueFactor:       1000,
		MaxBacklogWindows: 1000,
		ModelInfo:         server.ModelInfo{Epoch: 1},
		SwapSource: func() (*slicing.Shared, server.ModelInfo, error) {
			return slicing.NewShared(sigLayer(newSig), rates), info, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

// TestFleetRollingSwap drives a fleet-wide model swap through SwapAll: every
// live member is promoted one at a time, each promotion health-gated on the
// replica's own /state reporting the new identity, and queries routed after
// the roll are served by the new weights on every replica.
func TestFleetRollingSwap(t *testing.T) {
	const sigA, sigB = 1.0, 2.0
	info := server.ModelInfo{Epoch: 9, CRC: 0xabad1dea, Path: "b.ckpt"}
	var replicas []*server.Server
	var urls []string
	for i := 0; i < 2; i++ {
		s := swappableReplica(t, sigA, sigB, info)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		replicas = append(replicas, s)
		urls = append(urls, ts.URL)
	}
	coord, err := New(Config{SLO: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	for _, u := range urls {
		if err := coord.AddReplica(u); err != nil {
			t.Fatal(err)
		}
	}

	results, err := coord.SwapAll(context.Background())
	if err != nil {
		t.Fatalf("SwapAll: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("promoted %d replicas, want 2: %+v", len(results), results)
	}
	for i, res := range results {
		if res.URL != urls[i] {
			t.Fatalf("promotion %d hit %s; the roll must follow join order (%s)", i, res.URL, urls[i])
		}
		if res.Epoch != 9 || res.CRC != "abad1dea" {
			t.Fatalf("promotion %d reports epoch %d crc %s, want 9/abad1dea", i, res.Epoch, res.CRC)
		}
	}
	if got := coord.Stats().Swaps; got != 2 {
		t.Fatalf("coordinator counted %d swaps, want 2", got)
	}
	for i, s := range replicas {
		st := s.State()
		if st.ModelEpoch != 9 || st.Swaps != 1 {
			t.Fatalf("replica %d reports epoch %d swaps %d after the roll, want 9/1", i, st.ModelEpoch, st.Swaps)
		}
	}
	// Post-roll traffic lands on the new weights wherever it is routed.
	for seed := int64(0); seed < 4; seed++ {
		resp, err := coord.Predict(context.Background(), inputVec(seed))
		if err != nil {
			t.Fatalf("post-swap predict: %v", err)
		}
		if resp.Output[0] != sigB {
			t.Fatalf("post-swap query served output %v, want new-model signature %v", resp.Output[0], sigB)
		}
	}

	// A member that cannot swap aborts the roll right there: members earlier
	// in join order are (re-)promoted, the failing one and everything after
	// it stay put, and the error says where it stopped.
	bare, err := server.New(server.Config{
		Model:      sigLayer(sigA),
		Rates:      slicing.NewRateList(0.25, 4),
		InputShape: []int{4},
		SLO:        50 * time.Millisecond,
		Workers:    1,
		SampleTime: func(r float64) float64 { return 1e-6 * r * r },
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(bare.Stop)
	bareTS := httptest.NewServer(bare.Handler())
	t.Cleanup(bareTS.Close)
	if err := coord.AddReplica(bareTS.URL); err != nil {
		t.Fatal(err)
	}
	results, err = coord.SwapAll(context.Background())
	if err == nil {
		t.Fatal("SwapAll succeeded with a member that has no swap source")
	}
	if !strings.Contains(err.Error(), bareTS.URL) {
		t.Fatalf("abort error %q does not name the failing replica", err)
	}
	if len(results) != 2 {
		t.Fatalf("aborted roll promoted %d replicas, want the 2 ahead of the failure", len(results))
	}
}
