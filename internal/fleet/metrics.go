package fleet

import (
	"fmt"
	"sync/atomic"

	"modelslicing/internal/obs"
)

// coordMetrics aggregates the coordinator's counters. Hot-path counts are
// atomics; per-replica counts live on the replica entries under the
// coordinator mutex they already share with routing.
type coordMetrics struct {
	forwarded atomic.Int64 // queries answered through the fleet
	retries   atomic.Int64 // attempts re-routed to a different replica
	hedges    atomic.Int64 // straggler hedges launched
	hedgeWins atomic.Int64 // queries whose winning reply came from a hedge race
	ejections atomic.Int64 // replicas ejected by the failure threshold
	rejoins   atomic.Int64 // ejected replicas readmitted
	shed      atomic.Int64 // queries the coordinator itself refused
	swaps     atomic.Int64 // replica promotions completed by rolling swaps
	latency   obs.Histogram
}

// ReplicaStatus is one fleet member's externally visible state.
type ReplicaStatus struct {
	URL string `json:"url"`
	// Ejected means out of rotation (health ejection or leave); Penalized
	// means in rotation but deprioritized (its brownout circuit is open);
	// Left means administratively removed.
	Ejected   bool `json:"ejected"`
	Penalized bool `json:"penalized"`
	Left      bool `json:"left"`
	// Routed counts queries booked to this replica (hedges included).
	Routed int64 `json:"routed"`
	// ConsecFails is the current consecutive-failure count feeding the
	// ejection threshold; Ejections and Rejoins are lifetime totals.
	ConsecFails int   `json:"consec_fails"`
	Ejections   int64 `json:"ejections"`
	Rejoins     int64 `json:"rejoins"`
	// BacklogAheadS is the coordinator's modeled in-flight work on the
	// replica right now.
	BacklogAheadS float64 `json:"backlog_ahead_s"`
}

// Stats is a point-in-time snapshot of the coordinator's aggregates.
type Stats struct {
	Forwarded int64
	Retries   int64
	Hedges    int64
	HedgeWins int64
	Ejections int64
	Rejoins   int64
	Shed      int64
	Swaps     int64
	Replicas  []ReplicaStatus
	Latency   obs.HistSnapshot
}

// Replicas snapshots every fleet member's status, join order preserved.
func (c *Coordinator) Replicas() []ReplicaStatus {
	now := c.clock.Now()
	nowF := c.sinceStart(now)
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]ReplicaStatus, len(c.replicas))
	for i, r := range c.replicas {
		out[i] = ReplicaStatus{
			URL:           r.url,
			Ejected:       r.model.Ejected,
			Penalized:     r.model.Penalized,
			Left:          r.left,
			Routed:        r.routed,
			ConsecFails:   r.consecFails,
			Ejections:     r.ejected,
			Rejoins:       r.rejoined,
			BacklogAheadS: r.model.Backlog.Ahead(nowF),
		}
	}
	return out
}

// Stats snapshots the coordinator's aggregate counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Forwarded: c.metrics.forwarded.Load(),
		Retries:   c.metrics.retries.Load(),
		Hedges:    c.metrics.hedges.Load(),
		HedgeWins: c.metrics.hedgeWins.Load(),
		Ejections: c.metrics.ejections.Load(),
		Rejoins:   c.metrics.rejoins.Load(),
		Shed:      c.metrics.shed.Load(),
		Swaps:     c.metrics.swaps.Load(),
		Replicas:  c.Replicas(),
		Latency:   c.metrics.latency.Snapshot(),
	}
}

// prometheus renders the snapshot in the Prometheus text exposition format,
// msfleet_-prefixed so a scrape of coordinator and replicas never collides.
func (s Stats) prometheus() string {
	var b []byte
	counter := func(name, help string, v int64) {
		b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)...)
	}
	counter("msfleet_forwarded_total", "Queries answered through the fleet.", s.Forwarded)
	counter("msfleet_shed_total", "Queries the coordinator refused (fleet saturated or empty).", s.Shed)
	counter("msfleet_retries_total", "Attempts re-routed to a different replica after a transient failure.", s.Retries)
	counter("msfleet_hedges_total", "Straggler hedges launched.", s.Hedges)
	counter("msfleet_hedge_wins_total", "Queries whose winning reply came from the hedge copy.", s.HedgeWins)
	counter("msfleet_ejections_total", "Replicas ejected on consecutive failures.", s.Ejections)
	counter("msfleet_rejoins_total", "Ejected replicas readmitted after recovery.", s.Rejoins)
	counter("msfleet_swaps_total", "Replica promotions completed by rolling model swaps.", s.Swaps)
	b = append(b, "# HELP msfleet_replica_up 1 while the replica is in rotation, 0 while ejected or left.\n# TYPE msfleet_replica_up gauge\n"...)
	for _, r := range s.Replicas {
		up := 1
		if r.Ejected || r.Left {
			up = 0
		}
		b = append(b, fmt.Sprintf("msfleet_replica_up{replica=%q} %d\n", r.URL, up)...)
	}
	b = append(b, "# HELP msfleet_replica_routed_total Queries booked per replica (hedges included).\n# TYPE msfleet_replica_routed_total counter\n"...)
	for _, r := range s.Replicas {
		b = append(b, fmt.Sprintf("msfleet_replica_routed_total{replica=%q} %d\n", r.URL, r.Routed)...)
	}
	b = append(b, "# HELP msfleet_replica_backlog_seconds Modeled in-flight work per replica.\n# TYPE msfleet_replica_backlog_seconds gauge\n"...)
	for _, r := range s.Replicas {
		b = append(b, fmt.Sprintf("msfleet_replica_backlog_seconds{replica=%q} %g\n", r.URL, r.BacklogAheadS)...)
	}
	b = obs.PromHistogram(b, "msfleet_query_latency_seconds",
		"Submission-to-reply latency of queries answered through the fleet.",
		[]obs.LabeledHist{{Labels: "", Hist: s.Latency}})
	return string(b)
}
