package fleet

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"modelslicing/internal/faults"
	"modelslicing/internal/models"
	"modelslicing/internal/server"
	"modelslicing/internal/serving"
	"modelslicing/internal/slicing"
)

// netFaultsArmed reports whether the process-wide network chaos points are
// on (the CI soak arms them via MS_FAULTS). Determinism-pinning tests skip
// then; the robustness tests are exactly what the soak exercises.
func netFaultsArmed() bool {
	return faults.Active(faults.NetDrop) || faults.Active(faults.NetDelay) ||
		faults.Active(faults.ReplicaDown)
}

func inputVec(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 4)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// fakeReplica builds one deterministic replica over a tiny MLP: FakeClock
// windows, pinned t(r) = r² against a 1 s window (the same arithmetic the
// single-node lockstep tests pin), admission wide open so the coordinator's
// routing is the only throttle.
func fakeReplica(t *testing.T, clk server.Clock) *server.Server {
	t.Helper()
	return fakeReplicaT(t, clk, func(r float64) float64 { return r * r })
}

// fakeReplicaT is fakeReplica with an explicit cost curve — the lever the
// heterogeneous-fleet tests pull to give replicas different hardware.
func fakeReplicaT(t *testing.T, clk server.Clock, sampleTime func(float64) float64) *server.Server {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	s, err := server.New(server.Config{
		Model:             models.NewMLP(4, []int{8, 8}, 3, 4, rng),
		Rates:             slicing.NewRateList(0.25, 4),
		InputShape:        []int{4},
		SLO:               2 * time.Second,
		Workers:           2,
		Clock:             clk,
		SampleTime:        sampleTime,
		QueueFactor:       1000,
		MaxBacklogWindows: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// TestFleetChaosLockstep is the cluster drift guard: N fake-clock replicas
// behind a live coordinator versus the clock-free fleet simulation, driven
// with one arrival trace. Per window it pins (a) how many queries the
// coordinator routed to each replica and (b) the rate every reply was served
// at — the replicas take their own Equation-3 decisions, so agreement means
// the coordinator's remote model and N independent schedulers reproduce
// serving.SimulateFleet exactly.
func TestFleetChaosLockstep(t *testing.T) {
	if netFaultsArmed() {
		t.Skip("network fault injection armed; lockstep determinism is not expected")
	}
	const n = 3
	rates := slicing.NewRateList(0.25, 4)
	// Small windows spread one query per replica; 20 and 40 fill replicas to
	// their window budget; 60 saturates the whole fleet (one replica's batch
	// overruns → SLO violations), and the 9 right behind it lands while that
	// overrun is still draining → a backlog-degraded window.
	arrivals := []int{3, 20, 1, 40, 0, 5, 2, 60, 9, 0, 16, 2}
	sim := serving.SimulateFleet(serving.Config{LatencySLO: 2, FullSampleTime: 1, Rates: rates}, n, arrivals)

	base := time.Unix(0, 0)
	replicas := make([]*server.Server, n)
	clocks := make([]*server.FakeClock, n)
	replicaURLs := make([]string, n)
	for i := range replicas {
		clocks[i] = server.NewFakeClock(base)
		replicas[i] = fakeReplica(t, clocks[i])
		ts := httptest.NewServer(replicas[i].Handler())
		t.Cleanup(ts.Close)
		replicaURLs[i] = ts.URL
	}

	cclk := server.NewFakeClock(base)
	coord, err := New(Config{
		SLO:        2 * time.Second,
		Clock:      cclk,
		HedgeAfter: -1, // wall-time hedging has no place in a frozen-clock run
		RetryBase:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	for _, u := range replicaURLs {
		if err := coord.AddReplica(u); err != nil {
			t.Fatal(err)
		}
	}

	window := time.Second
	for k, nq := range arrivals {
		routedBefore := routedCounts(coord)
		results := make(chan float64, nq)
		for j := 0; j < nq; j++ {
			go func(seed int64) {
				resp, err := coord.Predict(context.Background(), inputVec(seed))
				if err != nil {
					t.Errorf("window %d: predict: %v", k, err)
					results <- -1
					return
				}
				results <- resp.Rate
			}(int64(100*k + j))
		}
		// Every query must be booked and accepted by its replica before the
		// window may close.
		waitFor(t, "window submissions to land", func() bool {
			total := 0
			for _, r := range replicas {
				total += r.QueueDepth()
			}
			return total == nq
		})
		routedNow := routedCounts(coord)
		for i := range routedNow {
			got := routedNow[i] - routedBefore[i]
			if want := int64(sim.Ticks[k].Routed[i]); got != want {
				t.Fatalf("window %d replica %d: coordinator routed %d, simulation %d",
					k, i, got, want)
			}
		}
		cclk.Advance(window)
		for i := range clocks {
			clocks[i].Tick(window)
		}
		for i := range replicas {
			idx := i
			waitFor(t, "replica window close", func() bool {
				return replicas[idx].Stats().Windows == int64(k+1)
			})
		}
		var gotRates []float64
		for j := 0; j < nq; j++ {
			gotRates = append(gotRates, <-results)
		}
		var wantRates []float64
		for i, d := range sim.Ticks[k].Decisions {
			for q := 0; q < sim.Ticks[k].Routed[i]; q++ {
				wantRates = append(wantRates, d.Rate)
			}
		}
		sort.Float64s(gotRates)
		sort.Float64s(wantRates)
		if len(gotRates) != len(wantRates) {
			t.Fatalf("window %d: %d replies, want %d", k, len(gotRates), len(wantRates))
		}
		for j := range gotRates {
			if gotRates[j] != wantRates[j] {
				t.Fatalf("window %d: served rates %v, simulation %v", k, gotRates, wantRates)
			}
		}
	}

	// The trace must actually have exercised saturation and skew.
	if sim.SLOViolations == 0 || sim.DegradedWindows == 0 {
		t.Fatalf("trace too tame: %d violations, %d degraded", sim.SLOViolations, sim.DegradedWindows)
	}
	if st := coord.Stats(); st.Retries != 0 || st.Hedges != 0 || st.Shed != 0 {
		t.Fatalf("lockstep run saw retries=%d hedges=%d shed=%d; decisions are not comparable",
			st.Retries, st.Hedges, st.Shed)
	}
}

// TestFleetPrefersFasterReplica pins heterogeneous-fleet routing: two
// replicas with different calibrated cost curves — slow t(r) = 2r² (joined
// first, so index tie-breaks cannot explain a preference for the other),
// fast t(r) = r²/4 — start with equal (empty) backlog. The coordinator must
// route to the fast replica because it admits the query at a higher rate,
// keep feeding it while its admitted rate stays ahead, and spill to the slow
// replica exactly when the fast one's growing batch degrades its rate down
// to parity.
func TestFleetPrefersFasterReplica(t *testing.T) {
	if netFaultsArmed() {
		t.Skip("network fault injection armed; lockstep determinism is not expected")
	}
	base := time.Unix(0, 0)
	slowClk, fastClk := server.NewFakeClock(base), server.NewFakeClock(base)
	slow := fakeReplicaT(t, slowClk, func(r float64) float64 { return 2 * r * r })
	fast := fakeReplicaT(t, fastClk, func(r float64) float64 { return r * r / 4 })
	slowTS := httptest.NewServer(slow.Handler())
	fastTS := httptest.NewServer(fast.Handler())
	t.Cleanup(slowTS.Close)
	t.Cleanup(fastTS.Close)

	coord, err := New(Config{
		SLO:        2 * time.Second,
		Clock:      server.NewFakeClock(base),
		HedgeAfter: -1,
		RetryBase:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	for _, u := range []string{slowTS.URL, fastTS.URL} {
		if err := coord.AddReplica(u); err != nil {
			t.Fatal(err)
		}
	}

	// All 8 queries arrive in one 1 s routing window. The fast replica admits
	// batch k at the largest rate with k·r²/4 ≤ 1 (rate 1.0 through k=4, 0.75
	// through k=7); the slow replica offers rate 0.5 from its first query
	// (2r² ≤ 1 ⇒ r ≤ 0.707). Only at the 8th query does the fast replica's
	// admitted rate fall to 0.5 — a tie, which keeps the earlier index.
	results := make(chan float64, 8)
	submit := func(seed int64) {
		go func() {
			resp, err := coord.Predict(context.Background(), inputVec(seed))
			if err != nil {
				t.Errorf("predict: %v", err)
				results <- -1
				return
			}
			results <- resp.Rate
		}()
	}
	submit(1)
	waitFor(t, "first query to land", func() bool {
		return slow.QueueDepth()+fast.QueueDepth() == 1
	})
	if got := routedCounts(coord); got[0] != 0 || got[1] != 1 {
		t.Fatalf("first query at equal backlog routed %v, want the faster replica [0 1]", got)
	}
	for seed := int64(2); seed <= 8; seed++ {
		submit(seed)
		waitFor(t, "query to land", func() bool {
			return slow.QueueDepth()+fast.QueueDepth() == int(seed)
		})
	}
	if got := routedCounts(coord); got[0] != 1 || got[1] != 7 {
		t.Fatalf("routed %v, want [1 7]: fast replica absorbs queries until its rate degrades to the slow one's", got)
	}

	// Close the window everywhere and check the served rates match the
	// decisions the routing predicted: seven at 0.75 on fast, one at 0.5 on
	// slow.
	slowClk.Tick(time.Second)
	fastClk.Tick(time.Second)
	var rates []float64
	for i := 0; i < 8; i++ {
		rates = append(rates, <-results)
	}
	sort.Float64s(rates)
	want := []float64{0.5, 0.75, 0.75, 0.75, 0.75, 0.75, 0.75, 0.75}
	for i := range want {
		if rates[i] != want[i] {
			t.Fatalf("served rates %v, want %v", rates, want)
		}
	}
}

func routedCounts(c *Coordinator) []int64 {
	rs := c.Replicas()
	out := make([]int64, len(rs))
	for i, r := range rs {
		out[i] = r.Routed
	}
	return out
}
