package fleet

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"modelslicing/internal/faults"
	"modelslicing/internal/models"
	"modelslicing/internal/server"
	"modelslicing/internal/serving"
	"modelslicing/internal/slicing"
)

// netFaultsArmed reports whether the process-wide network chaos points are
// on (the CI soak arms them via MS_FAULTS). Determinism-pinning tests skip
// then; the robustness tests are exactly what the soak exercises.
func netFaultsArmed() bool {
	return faults.Active(faults.NetDrop) || faults.Active(faults.NetDelay) ||
		faults.Active(faults.ReplicaDown)
}

func inputVec(seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 4)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// fakeReplica builds one deterministic replica over a tiny MLP: FakeClock
// windows, pinned t(r) = r² against a 1 s window (the same arithmetic the
// single-node lockstep tests pin), admission wide open so the coordinator's
// routing is the only throttle.
func fakeReplica(t *testing.T, clk server.Clock) *server.Server {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	s, err := server.New(server.Config{
		Model:             models.NewMLP(4, []int{8, 8}, 3, 4, rng),
		Rates:             slicing.NewRateList(0.25, 4),
		InputShape:        []int{4},
		SLO:               2 * time.Second,
		Workers:           2,
		Clock:             clk,
		SampleTime:        func(r float64) float64 { return r * r },
		QueueFactor:       1000,
		MaxBacklogWindows: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(500 * time.Microsecond)
	}
}

// TestFleetChaosLockstep is the cluster drift guard: N fake-clock replicas
// behind a live coordinator versus the clock-free fleet simulation, driven
// with one arrival trace. Per window it pins (a) how many queries the
// coordinator routed to each replica and (b) the rate every reply was served
// at — the replicas take their own Equation-3 decisions, so agreement means
// the coordinator's remote model and N independent schedulers reproduce
// serving.SimulateFleet exactly.
func TestFleetChaosLockstep(t *testing.T) {
	if netFaultsArmed() {
		t.Skip("network fault injection armed; lockstep determinism is not expected")
	}
	const n = 3
	rates := slicing.NewRateList(0.25, 4)
	// Small windows spread one query per replica; 20 and 40 fill replicas to
	// their window budget; 60 saturates the whole fleet (one replica's batch
	// overruns → SLO violations), and the 9 right behind it lands while that
	// overrun is still draining → a backlog-degraded window.
	arrivals := []int{3, 20, 1, 40, 0, 5, 2, 60, 9, 0, 16, 2}
	sim := serving.SimulateFleet(serving.Config{LatencySLO: 2, FullSampleTime: 1, Rates: rates}, n, arrivals)

	base := time.Unix(0, 0)
	replicas := make([]*server.Server, n)
	clocks := make([]*server.FakeClock, n)
	replicaURLs := make([]string, n)
	for i := range replicas {
		clocks[i] = server.NewFakeClock(base)
		replicas[i] = fakeReplica(t, clocks[i])
		ts := httptest.NewServer(replicas[i].Handler())
		t.Cleanup(ts.Close)
		replicaURLs[i] = ts.URL
	}

	cclk := server.NewFakeClock(base)
	coord, err := New(Config{
		SLO:        2 * time.Second,
		Clock:      cclk,
		HedgeAfter: -1, // wall-time hedging has no place in a frozen-clock run
		RetryBase:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	for _, u := range replicaURLs {
		if err := coord.AddReplica(u); err != nil {
			t.Fatal(err)
		}
	}

	window := time.Second
	for k, nq := range arrivals {
		routedBefore := routedCounts(coord)
		results := make(chan float64, nq)
		for j := 0; j < nq; j++ {
			go func(seed int64) {
				resp, err := coord.Predict(context.Background(), inputVec(seed))
				if err != nil {
					t.Errorf("window %d: predict: %v", k, err)
					results <- -1
					return
				}
				results <- resp.Rate
			}(int64(100*k + j))
		}
		// Every query must be booked and accepted by its replica before the
		// window may close.
		waitFor(t, "window submissions to land", func() bool {
			total := 0
			for _, r := range replicas {
				total += r.QueueDepth()
			}
			return total == nq
		})
		routedNow := routedCounts(coord)
		for i := range routedNow {
			got := routedNow[i] - routedBefore[i]
			if want := int64(sim.Ticks[k].Routed[i]); got != want {
				t.Fatalf("window %d replica %d: coordinator routed %d, simulation %d",
					k, i, got, want)
			}
		}
		cclk.Advance(window)
		for i := range clocks {
			clocks[i].Tick(window)
		}
		for i := range replicas {
			idx := i
			waitFor(t, "replica window close", func() bool {
				return replicas[idx].Stats().Windows == int64(k+1)
			})
		}
		var gotRates []float64
		for j := 0; j < nq; j++ {
			gotRates = append(gotRates, <-results)
		}
		var wantRates []float64
		for i, d := range sim.Ticks[k].Decisions {
			for q := 0; q < sim.Ticks[k].Routed[i]; q++ {
				wantRates = append(wantRates, d.Rate)
			}
		}
		sort.Float64s(gotRates)
		sort.Float64s(wantRates)
		if len(gotRates) != len(wantRates) {
			t.Fatalf("window %d: %d replies, want %d", k, len(gotRates), len(wantRates))
		}
		for j := range gotRates {
			if gotRates[j] != wantRates[j] {
				t.Fatalf("window %d: served rates %v, simulation %v", k, gotRates, wantRates)
			}
		}
	}

	// The trace must actually have exercised saturation and skew.
	if sim.SLOViolations == 0 || sim.DegradedWindows == 0 {
		t.Fatalf("trace too tame: %d violations, %d degraded", sim.SLOViolations, sim.DegradedWindows)
	}
	if st := coord.Stats(); st.Retries != 0 || st.Hedges != 0 || st.Shed != 0 {
		t.Fatalf("lockstep run saw retries=%d hedges=%d shed=%d; decisions are not comparable",
			st.Retries, st.Hedges, st.Shed)
	}
}

func routedCounts(c *Coordinator) []int64 {
	rs := c.Replicas()
	out := make([]int64, len(rs))
	for i, r := range rs {
		out[i] = r.Routed
	}
	return out
}
