package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"modelslicing/internal/faults"
	"modelslicing/internal/models"
	"modelslicing/internal/server"
	"modelslicing/internal/slicing"
)

// liveReplica runs one replica on the real clock with a short SLO and a
// pinned tiny t(r), so chaos tests turn windows over quickly without
// calibration noise.
func liveReplica(t *testing.T) (*server.Server, *httptest.Server) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	s, err := server.New(server.Config{
		Model:           models.NewMLP(4, []int{8, 8}, 3, 4, rng),
		Rates:           slicing.NewRateList(0.25, 4),
		InputShape:      []int{4},
		SLO:             200 * time.Millisecond,
		Workers:         2,
		SampleTime:      func(r float64) float64 { return 0.002 * r * r },
		DrainSweepEvery: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// liveFleet assembles n live replicas behind a coordinator with aggressive
// health checking, wired through a chaos Transport. mutate adjusts the
// coordinator config before construction.
func liveFleet(t *testing.T, n int, mutate func(*Config)) (*Coordinator, *Transport, []string) {
	t.Helper()
	tr := &Transport{}
	cfg := Config{
		SLO:           200 * time.Millisecond,
		Transport:     tr,
		HealthEvery:   15 * time.Millisecond,
		FailThreshold: 2,
		RejoinAfter:   1,
		RetryMax:      3,
		RetryBase:     -1, // immediate retries keep chaos tests fast
		HedgeAfter:    -1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Stop)
	urls := make([]string, n)
	for i := range urls {
		_, ts := liveReplica(t)
		urls[i] = ts.URL
		if err := coord.AddReplica(ts.URL); err != nil {
			t.Fatal(err)
		}
	}
	return coord, tr, urls
}

func hostOf(url string) string { return strings.TrimPrefix(url, "http://") }

// drive pushes total queries through the fleet from conc workers and returns
// (successes, failures). Every call to Predict must return exactly once;
// the returned counts summing to total is the fleet-level one-reply
// contract.
func drive(t *testing.T, c *Coordinator, total, conc int) (int64, int64) {
	t.Helper()
	var ok, fail atomic.Int64
	var wg sync.WaitGroup
	per := (total + conc - 1) / conc
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < per && w*per+j < total; j++ {
				resp, err := c.Predict(context.Background(), inputVec(int64(w*per+j)))
				if err != nil {
					fail.Add(1)
					continue
				}
				if len(resp.Output) != 3 {
					t.Errorf("success reply with bad output %v", resp.Output)
				}
				ok.Add(1)
			}
		}(w)
	}
	wg.Wait()
	return ok.Load(), fail.Load()
}

// TestFleetChaosReplicaDownEjectRerouteRejoin is the tentpole scenario: a
// replica dies mid-trace. Every query still gets exactly one reply (the
// coordinator retries transient failures on different replicas), the dead
// replica is ejected within the health-check window and stops receiving
// traffic, and when it comes back it rejoins and serves again.
func TestFleetChaosReplicaDownEjectRerouteRejoin(t *testing.T) {
	if netFaultsArmed() {
		t.Skip("network fault injection armed; the zero-loss assertions assume only the targeted replica fails")
	}
	coord, tr, urls := liveFleet(t, 3, nil)

	// Healthy warm-up: everything answers.
	ok, fail := drive(t, coord, 30, 6)
	if ok != 30 || fail != 0 {
		t.Fatalf("healthy fleet: %d ok, %d failed, want 30/0", ok, fail)
	}

	// Kill replica 0 (connection refused on every request).
	tr.SetDown(hostOf(urls[0]), true)
	ok, fail = drive(t, coord, 60, 6)
	if ok != 60 || fail != 0 {
		t.Fatalf("one replica down: %d ok, %d failed, want 60/0 (retries must absorb the loss)", ok, fail)
	}
	if retries := coord.Stats().Retries; retries == 0 {
		t.Fatal("no retries recorded while a replica was refusing traffic")
	}
	waitFor(t, "dead replica ejection", func() bool {
		return coord.Replicas()[0].Ejected
	})

	// Ejected replicas receive no traffic at all.
	routedAtEject := coord.Replicas()[0].Routed
	ok, fail = drive(t, coord, 40, 6)
	if ok != 40 || fail != 0 {
		t.Fatalf("post-ejection: %d ok, %d failed, want 40/0", ok, fail)
	}
	if got := coord.Replicas()[0].Routed; got != routedAtEject {
		t.Fatalf("ejected replica received traffic: routed %d → %d", routedAtEject, got)
	}

	// Recovery: the replica comes back, the health poller readmits it, and
	// routing uses it again.
	tr.SetDown(hostOf(urls[0]), false)
	waitFor(t, "replica rejoin", func() bool {
		st := coord.Replicas()[0]
		return !st.Ejected && st.Rejoins >= 1
	})
	ok, fail = drive(t, coord, 40, 6)
	if ok != 40 || fail != 0 {
		t.Fatalf("post-rejoin: %d ok, %d failed, want 40/0", ok, fail)
	}
	if got := coord.Replicas()[0].Routed; got <= routedAtEject {
		t.Fatalf("rejoined replica got no traffic: routed stuck at %d", got)
	}
	if st := coord.Stats(); st.Ejections < 1 || st.Rejoins < 1 {
		t.Fatalf("ejections=%d rejoins=%d, want ≥1 each", st.Ejections, st.Rejoins)
	}
}

// TestFleetChaosHedgeStraggler pins the hedging path: one replica stalls
// far past the hedge delay, so the coordinator launches a second copy on
// the healthy replica and the first reply wins — the query is answered fast
// and exactly once.
func TestFleetChaosHedgeStraggler(t *testing.T) {
	if netFaultsArmed() {
		t.Skip("network fault injection armed; targeted hedge accounting is not deterministic")
	}
	coord, tr, urls := liveFleet(t, 2, func(cfg *Config) {
		cfg.HedgeAfter = 25 * time.Millisecond
	})
	// Replica 0 wins the empty-fleet tie-break, and every request to it
	// stalls for most of the predict timeout.
	tr.SetDelay(hostOf(urls[0]), 600*time.Millisecond)

	for j := 0; j < 4; j++ {
		resp, err := coord.Predict(context.Background(), inputVec(int64(j)))
		if err != nil {
			t.Fatalf("hedged predict %d: %v", j, err)
		}
		if len(resp.Output) != 3 {
			t.Fatalf("bad output %v", resp.Output)
		}
	}
	st := coord.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedges=%d hedgeWins=%d, want both > 0", st.Hedges, st.HedgeWins)
	}
	if st.Forwarded != 4 {
		t.Fatalf("forwarded %d, want 4 (exactly one reply per query)", st.Forwarded)
	}
}

// TestFleetChaosNetworkFaultsOneReply arms the probabilistic network points
// (the CI soak configuration arms them process-wide instead) and hammers
// the fleet: drops and delays on the coordinator→replica path must never
// cost a query its reply — every Predict returns exactly once, and the
// overwhelming majority still succeed via retry.
func TestFleetChaosNetworkFaultsOneReply(t *testing.T) {
	if !netFaultsArmed() {
		faults.NetDelayDuration = 2 * time.Millisecond
		if err := faults.Set("net-drop=p0.1,net-delay=p0.2"); err != nil {
			t.Fatal(err)
		}
		// Restore whatever the environment had armed (the soak's setting,
		// or nothing) so later tests see the configuration they expect.
		t.Cleanup(func() { _ = faults.Set(os.Getenv("MS_FAULTS")) })
	}
	coord, _, _ := liveFleet(t, 3, func(cfg *Config) {
		cfg.RetryMax = 5
		cfg.FailThreshold = 4
	})
	const total = 120
	ok, fail := drive(t, coord, total, 8)
	if ok+fail != total {
		t.Fatalf("reply contract broken: %d ok + %d failed != %d submitted", ok, fail, total)
	}
	if ok < total/2 {
		t.Fatalf("only %d/%d queries survived the network chaos; retries are not absorbing drops", ok, total)
	}
	if coord.Stats().Retries == 0 && faults.Fired(faults.NetDrop) > 0 {
		t.Fatal("drops fired but no retries recorded")
	}
}

// TestFleetHTTPSurface covers the coordinator's own endpoints: runtime
// join/leave over POST /replicas, the query path, and the fleet fields on
// /metrics and /healthz.
func TestFleetHTTPSurface(t *testing.T) {
	if netFaultsArmed() {
		t.Skip("network fault injection armed; exact counter assertions are not deterministic")
	}
	coord, _, urls := liveFleet(t, 1, nil)
	_, extra := liveReplica(t)
	front := httptest.NewServer(coord.Handler())
	t.Cleanup(front.Close)

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(front.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Join the second replica at runtime.
	resp := post("/replicas", `{"op":"join","url":"`+extra.URL+`"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: status %d", resp.StatusCode)
	}

	// Query through the coordinator with the single-node wire format.
	body, _ := json.Marshal(server.PredictRequest{Input: inputVec(42)})
	resp = post("/predict", string(body))
	var out server.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(out.Output) != 3 {
		t.Fatalf("predict through coordinator: status %d output %v", resp.StatusCode, out.Output)
	}

	// Malformed input relays the replica's 400.
	resp = post("/predict", `{"input":[1,2]}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad input through coordinator: status %d, want 400", resp.StatusCode)
	}

	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, w := range []string{
		"msfleet_forwarded_total 1",
		"msfleet_retries_total",
		"msfleet_hedges_total",
		"msfleet_ejections_total",
		"msfleet_rejoins_total",
		"msfleet_shed_total",
		`msfleet_replica_up{replica="` + urls[0] + `"} 1`,
		`msfleet_replica_routed_total{replica="` + urls[0] + `"}`,
		"msfleet_query_latency_seconds_count 1",
	} {
		if !strings.Contains(text, w) {
			t.Fatalf("fleet metrics missing %q:\n%s", w, text)
		}
	}

	var health struct {
		Replicas int `json:"replicas"`
		Live     int `json:"live_replicas"`
	}
	resp, err = http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Replicas != 2 || health.Live != 2 {
		t.Fatalf("healthz %+v, want 2 replicas / 2 live", health)
	}

	// Leave at runtime; the member is tombstoned out of rotation.
	resp = post("/replicas", `{"op":"leave","url":"`+extra.URL+`"}`)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leave: status %d", resp.StatusCode)
	}
	resp, err = http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Replicas != 1 || health.Live != 1 {
		t.Fatalf("healthz after leave %+v, want 1/1", health)
	}
}
