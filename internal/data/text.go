package data

import (
	"fmt"
	"math"
	"math/rand"

	"modelslicing/internal/tensor"
	"modelslicing/internal/train"
)

// TextConfig parameterizes the synthetic language-modeling corpus that
// stands in for Penn Tree Bank: a hidden-Markov source whose emission
// structure gives larger models a measurable perplexity advantage while
// keeping a known entropy floor.
type TextConfig struct {
	Vocab int
	// States is the number of latent states of the generator.
	States int
	// Branch is the number of successor states reachable from each state
	// (smaller = more predictable transitions).
	Branch int
	// EmitTopK is the size of each state's preferred vocabulary subset.
	EmitTopK int
	// EmitSkew concentrates emission mass on the preferred subset (0..1).
	EmitSkew float64
	TrainLen int
	TestLen  int
	Seed     int64
}

// PTBLike returns the Penn-Tree-Bank stand-in configuration.
func PTBLike(trainLen, testLen int) TextConfig {
	return TextConfig{
		Vocab: 300, States: 24, Branch: 3, EmitTopK: 12, EmitSkew: 0.9,
		TrainLen: trainLen, TestLen: testLen, Seed: 4001,
	}
}

// Text is a generated corpus with train/test token streams.
type Text struct {
	Cfg   TextConfig
	Train []int
	Test  []int
}

// GenerateText builds the corpus deterministically from cfg.Seed.
func GenerateText(cfg TextConfig) *Text {
	if cfg.Vocab <= 1 || cfg.States <= 1 || cfg.Branch < 1 || cfg.EmitTopK < 1 {
		panic(fmt.Sprintf("data: invalid text config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// State transition graph: each state moves to one of Branch successors
	// with skewed probabilities.
	succ := make([][]int, cfg.States)
	succP := make([][]float64, cfg.States)
	for s := range succ {
		succ[s] = make([]int, cfg.Branch)
		succP[s] = make([]float64, cfg.Branch)
		total := 0.0
		for b := 0; b < cfg.Branch; b++ {
			succ[s][b] = rng.Intn(cfg.States)
			w := math.Pow(2, -float64(b)) // geometric preference
			succP[s][b] = w
			total += w
		}
		for b := range succP[s] {
			succP[s][b] /= total
		}
	}
	// Emission: each state prefers a vocab subset; within the subset the
	// distribution is Zipf-like, with (1-EmitSkew) mass spread uniformly.
	emit := make([][]int, cfg.States)
	for s := range emit {
		emit[s] = rng.Perm(cfg.Vocab)[:cfg.EmitTopK]
	}

	gen := func(n int) []int {
		out := make([]int, n)
		state := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < cfg.EmitSkew {
				// Zipf-ish over the state's preferred subset.
				k := zipfIndex(rng, cfg.EmitTopK)
				out[i] = emit[state][k]
			} else {
				out[i] = rng.Intn(cfg.Vocab)
			}
			state = pick(rng, succ[state], succP[state])
		}
		return out
	}
	return &Text{Cfg: cfg, Train: gen(cfg.TrainLen), Test: gen(cfg.TestLen)}
}

func zipfIndex(rng *rand.Rand, k int) int {
	// Discrete distribution p(i) ∝ 1/(i+1).
	total := 0.0
	for i := 0; i < k; i++ {
		total += 1 / float64(i+1)
	}
	u := rng.Float64() * total
	acc := 0.0
	for i := 0; i < k; i++ {
		acc += 1 / float64(i+1)
		if u < acc {
			return i
		}
	}
	return k - 1
}

func pick(rng *rand.Rand, items []int, probs []float64) int {
	u := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u < acc {
			return items[i]
		}
	}
	return items[len(items)-1]
}

// LMBatches converts a token stream into truncated-BPTT batches: the stream
// is folded into batchSize parallel sub-streams and cut into windows of
// seqLen steps. Batch.X is the [T, B] input tensor of token ids; Labels are
// the next-token targets flattened in [t][b] row order, matching the rows of
// a TimeFlatten→Dense decoder head.
func LMBatches(stream []int, seqLen, batchSize int) []train.Batch {
	if seqLen <= 0 || batchSize <= 0 {
		panic("data: seqLen and batchSize must be positive")
	}
	perStream := (len(stream) - 1) / batchSize
	if perStream < seqLen {
		panic(fmt.Sprintf("data: stream of %d tokens too short for %d×%d batches",
			len(stream), seqLen, batchSize))
	}
	var batches []train.Batch
	for start := 0; start+seqLen <= perStream; start += seqLen {
		x := tensor.New(seqLen, batchSize)
		labels := make([]int, seqLen*batchSize)
		for t := 0; t < seqLen; t++ {
			for b := 0; b < batchSize; b++ {
				pos := b*perStream + start + t
				x.Set(float64(stream[pos]), t, b)
				labels[t*batchSize+b] = stream[pos+1]
			}
		}
		batches = append(batches, train.Batch{X: x, Labels: labels})
	}
	return batches
}

// EntropyFloorEstimate estimates the per-token entropy (nats) of the corpus
// under a bigram model — a lower-bound reference for achievable perplexity
// reported alongside Table 2 results.
func (t *Text) EntropyFloorEstimate() float64 {
	counts := make(map[[2]int]int)
	uni := make(map[int]int)
	for i := 0; i+1 < len(t.Train); i++ {
		counts[[2]int{t.Train[i], t.Train[i+1]}]++
		uni[t.Train[i]]++
	}
	h := 0.0
	n := float64(len(t.Train) - 1)
	for k, c := range counts {
		pJoint := float64(c) / n
		pCond := float64(c) / float64(uni[k[0]])
		h -= pJoint * math.Log(pCond)
	}
	return h
}
