// Package data provides the deterministic synthetic datasets that stand in
// for CIFAR-10, ImageNet-12 and Penn Tree Bank in this reproduction (see
// DESIGN.md §2 for the substitution rationale). Both generators produce
// tasks whose achievable accuracy grows with model capacity, which is the
// property the paper's relative comparisons depend on.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"modelslicing/internal/tensor"
	"modelslicing/internal/train"
)

// ImageConfig parameterizes the synthetic image-classification task.
type ImageConfig struct {
	Classes  int
	Channels int
	H, W     int
	// Modes is the number of distinct prototypes per class (intra-class
	// variation; wider models separate modes better).
	Modes int
	// Noise is the additive per-pixel Gaussian noise std.
	Noise float64
	// SharedWeight blends a class-independent background into every image,
	// making classes overlap (harder task).
	SharedWeight float64
	TrainN       int
	TestN        int
	Seed         int64
}

// CIFARLike returns the configuration used as the CIFAR-10 stand-in.
func CIFARLike(trainN, testN int) ImageConfig {
	return ImageConfig{
		Classes: 10, Channels: 3, H: 16, W: 16, Modes: 3,
		Noise: 0.65, SharedWeight: 0.6,
		TrainN: trainN, TestN: testN, Seed: 1009,
	}
}

// ImageNetLike returns the configuration used as the ImageNet-12 stand-in:
// more classes, larger images, more modes.
func ImageNetLike(trainN, testN int) ImageConfig {
	return ImageConfig{
		Classes: 20, Channels: 3, H: 24, W: 24, Modes: 4,
		Noise: 0.7, SharedWeight: 0.6,
		TrainN: trainN, TestN: testN, Seed: 2003,
	}
}

// Images is a generated dataset with a fixed train/test split.
type Images struct {
	Cfg    ImageConfig
	TrainX []*tensor.Tensor // each [C, H, W]
	TrainY []int
	TestX  []*tensor.Tensor
	TestY  []int

	protos [][]*tensor.Tensor // [class][mode]
	shared *tensor.Tensor
}

// GenerateImages builds the dataset deterministically from cfg.Seed.
//
// Each class owns Modes smooth prototype patterns (mixtures of low-frequency
// sinusoids and localized blobs); a sample is a randomly shifted, intensity-
// jittered prototype blended with a shared background plus pixel noise.
func GenerateImages(cfg ImageConfig) *Images {
	if cfg.Classes <= 1 || cfg.Channels <= 0 || cfg.H <= 0 || cfg.W <= 0 {
		panic(fmt.Sprintf("data: invalid image config %+v", cfg))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := &Images{Cfg: cfg}
	d.shared = d.makePattern(rng)
	d.protos = make([][]*tensor.Tensor, cfg.Classes)
	for c := 0; c < cfg.Classes; c++ {
		d.protos[c] = make([]*tensor.Tensor, cfg.Modes)
		for m := 0; m < cfg.Modes; m++ {
			d.protos[c][m] = d.makePattern(rng)
		}
	}
	d.TrainX, d.TrainY = d.sampleSet(cfg.TrainN, rng)
	d.TestX, d.TestY = d.sampleSet(cfg.TestN, rng)
	return d
}

// makePattern creates one smooth multi-channel pattern.
func (d *Images) makePattern(rng *rand.Rand) *tensor.Tensor {
	c, h, w := d.Cfg.Channels, d.Cfg.H, d.Cfg.W
	p := tensor.New(c, h, w)
	for ch := 0; ch < c; ch++ {
		// Low-frequency sinusoid mixture.
		nWaves := 2 + rng.Intn(3)
		type wave struct{ fx, fy, phase, amp float64 }
		waves := make([]wave, nWaves)
		for i := range waves {
			waves[i] = wave{
				fx:    (rng.Float64()*2 + 0.5) * 2 * math.Pi / float64(w),
				fy:    (rng.Float64()*2 + 0.5) * 2 * math.Pi / float64(h),
				phase: rng.Float64() * 2 * math.Pi,
				amp:   0.5 + rng.Float64(),
			}
		}
		// Localized blob.
		bx, by := rng.Float64()*float64(w), rng.Float64()*float64(h)
		bs := 1.5 + rng.Float64()*2.5
		bAmp := 1 + rng.Float64()
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				v := 0.0
				for _, wv := range waves {
					v += wv.amp * math.Sin(wv.fx*float64(x)+wv.fy*float64(y)+wv.phase)
				}
				dx, dy := float64(x)-bx, float64(y)-by
				v += bAmp * math.Exp(-(dx*dx+dy*dy)/(2*bs*bs))
				p.Set(v, ch, y, x)
			}
		}
	}
	// Standardize the pattern.
	mu := p.Mean()
	for i := range p.Data {
		p.Data[i] -= mu
	}
	std := p.L2Norm() / math.Sqrt(float64(p.Size()))
	if std > 0 {
		p.Scale(1 / std)
	}
	return p
}

func (d *Images) sampleSet(n int, rng *rand.Rand) ([]*tensor.Tensor, []int) {
	xs := make([]*tensor.Tensor, n)
	ys := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % d.Cfg.Classes // balanced classes
		ys[i] = c
		xs[i] = d.sampleOne(c, rng)
	}
	return xs, ys
}

// sampleOne draws one image of the given class.
func (d *Images) sampleOne(class int, rng *rand.Rand) *tensor.Tensor {
	cfg := d.Cfg
	proto := d.protos[class][rng.Intn(cfg.Modes)]
	img := tensor.New(cfg.Channels, cfg.H, cfg.W)
	// Random small translation (cyclic) and intensity jitter.
	dx, dy := rng.Intn(5)-2, rng.Intn(5)-2
	gain := 0.8 + rng.Float64()*0.4
	for ch := 0; ch < cfg.Channels; ch++ {
		for y := 0; y < cfg.H; y++ {
			for x := 0; x < cfg.W; x++ {
				sy := ((y+dy)%cfg.H + cfg.H) % cfg.H
				sx := ((x+dx)%cfg.W + cfg.W) % cfg.W
				v := gain*proto.At(ch, sy, sx) + cfg.SharedWeight*d.shared.At(ch, y, x)
				img.Set(v+rng.NormFloat64()*cfg.Noise, ch, y, x)
			}
		}
	}
	return img
}

// TrainBatches returns a freshly shuffled (and optionally augmented) list of
// training batches; call once per epoch for a new augmentation draw.
// Augmentation is the paper's CIFAR recipe scaled down: zero-pad by 2,
// random crop back, random horizontal flip.
func (d *Images) TrainBatches(batchSize int, augment bool, rng *rand.Rand) []train.Batch {
	idx := rng.Perm(len(d.TrainX))
	return d.makeBatches(d.TrainX, d.TrainY, idx, batchSize, augment, rng)
}

// TestBatches returns the evaluation batches in deterministic order.
func (d *Images) TestBatches(batchSize int) []train.Batch {
	idx := make([]int, len(d.TestX))
	for i := range idx {
		idx[i] = i
	}
	return d.makeBatches(d.TestX, d.TestY, idx, batchSize, false, nil)
}

func (d *Images) makeBatches(xs []*tensor.Tensor, ys []int, idx []int, bs int, augment bool, rng *rand.Rand) []train.Batch {
	if bs <= 0 {
		panic("data: batch size must be positive")
	}
	cfg := d.Cfg
	var batches []train.Batch
	for start := 0; start < len(idx); start += bs {
		end := start + bs
		if end > len(idx) {
			end = len(idx)
		}
		n := end - start
		x := tensor.New(n, cfg.Channels, cfg.H, cfg.W)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			src := xs[idx[start+i]]
			labels[i] = ys[idx[start+i]]
			dst := x.Data[i*src.Size() : (i+1)*src.Size()]
			if augment {
				augmentInto(dst, src, cfg, rng)
			} else {
				copy(dst, src.Data)
			}
		}
		batches = append(batches, train.Batch{X: x, Labels: labels})
	}
	return batches
}

// augmentInto applies pad-2/random-crop and horizontal flip.
func augmentInto(dst []float64, src *tensor.Tensor, cfg ImageConfig, rng *rand.Rand) {
	const pad = 2
	oy := rng.Intn(2*pad+1) - pad
	ox := rng.Intn(2*pad+1) - pad
	flip := rng.Intn(2) == 1
	for ch := 0; ch < cfg.Channels; ch++ {
		for y := 0; y < cfg.H; y++ {
			for x := 0; x < cfg.W; x++ {
				sx := x
				if flip {
					sx = cfg.W - 1 - x
				}
				sy, sxx := y+oy, sx+ox
				v := 0.0
				if sy >= 0 && sy < cfg.H && sxx >= 0 && sxx < cfg.W {
					v = src.At(ch, sy, sxx)
				}
				dst[(ch*cfg.H+y)*cfg.W+x] = v
			}
		}
	}
}
