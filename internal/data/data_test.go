package data

import (
	"math"
	"math/rand"
	"testing"
)

func TestGenerateImagesDeterministic(t *testing.T) {
	cfg := CIFARLike(40, 20)
	a := GenerateImages(cfg)
	b := GenerateImages(cfg)
	for i := range a.TrainX {
		for j := range a.TrainX[i].Data {
			if a.TrainX[i].Data[j] != b.TrainX[i].Data[j] {
				t.Fatal("same seed must generate identical data")
			}
		}
		if a.TrainY[i] != b.TrainY[i] {
			t.Fatal("labels must be deterministic")
		}
	}
}

func TestGenerateImagesShapesAndBalance(t *testing.T) {
	cfg := CIFARLike(100, 50)
	d := GenerateImages(cfg)
	if len(d.TrainX) != 100 || len(d.TestX) != 50 {
		t.Fatalf("split sizes %d/%d", len(d.TrainX), len(d.TestX))
	}
	counts := make([]int, cfg.Classes)
	for _, y := range d.TrainY {
		counts[y]++
	}
	for c, n := range counts {
		if n != 10 {
			t.Fatalf("class %d has %d samples, want 10 (balanced)", c, n)
		}
	}
	x := d.TrainX[0]
	if x.Dim(0) != 3 || x.Dim(1) != 16 || x.Dim(2) != 16 {
		t.Fatalf("image shape %v", x.Shape)
	}
}

// The generated task must carry class signal: a nearest-class-mean
// classifier on the noiseless prototypes should beat chance comfortably.
func TestImagesHaveClassSignal(t *testing.T) {
	cfg := CIFARLike(200, 200)
	d := GenerateImages(cfg)
	correct := 0
	for i, x := range d.TestX {
		best, bestDot := -1, math.Inf(-1)
		for c := 0; c < cfg.Classes; c++ {
			for m := 0; m < cfg.Modes; m++ {
				dot := 0.0
				p := d.protos[c][m]
				for j := range p.Data {
					dot += p.Data[j] * x.Data[j]
				}
				if dot > bestDot {
					bestDot, best = dot, c
				}
			}
		}
		if best == d.TestY[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(d.TestX))
	if acc < 0.4 {
		t.Fatalf("prototype-matching accuracy %.3f, want ≥0.4 (task must be learnable)", acc)
	}
	if acc > 0.999 {
		t.Fatalf("prototype-matching accuracy %.3f — task too easy to differentiate widths", acc)
	}
}

func TestTrainBatchesCoverAllSamplesOnce(t *testing.T) {
	cfg := CIFARLike(50, 10)
	d := GenerateImages(cfg)
	rng := rand.New(rand.NewSource(1))
	batches := d.TrainBatches(16, false, rng)
	total := 0
	for _, b := range batches {
		total += len(b.Labels)
		if b.X.Dim(0) != len(b.Labels) {
			t.Fatal("batch size mismatch between X and labels")
		}
	}
	if total != 50 {
		t.Fatalf("epoch covered %d samples, want 50", total)
	}
}

func TestAugmentationPreservesShapeChangesPixels(t *testing.T) {
	cfg := CIFARLike(30, 10)
	d := GenerateImages(cfg)
	rng := rand.New(rand.NewSource(2))
	plain := d.TrainBatches(30, false, rand.New(rand.NewSource(3)))
	aug := d.TrainBatches(30, true, rand.New(rand.NewSource(3)))
	if !plain[0].X.SameShape(aug[0].X) {
		t.Fatal("augmentation must preserve shape")
	}
	diff := 0
	for i := range plain[0].X.Data {
		if plain[0].X.Data[i] != aug[0].X.Data[i] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("augmentation changed nothing")
	}
	_ = rng
}

func TestTestBatchesDeterministic(t *testing.T) {
	cfg := CIFARLike(20, 20)
	d := GenerateImages(cfg)
	a := d.TestBatches(8)
	b := d.TestBatches(8)
	if len(a) != 3 {
		t.Fatalf("expected 3 batches of ≤8 over 20 samples, got %d", len(a))
	}
	for i := range a {
		for j := range a[i].X.Data {
			if a[i].X.Data[j] != b[i].X.Data[j] {
				t.Fatal("test batches must be deterministic")
			}
		}
	}
}

func TestGenerateTextDeterministicAndInVocab(t *testing.T) {
	cfg := PTBLike(2000, 500)
	a := GenerateText(cfg)
	b := GenerateText(cfg)
	for i := range a.Train {
		if a.Train[i] != b.Train[i] {
			t.Fatal("same seed must generate identical corpus")
		}
		if a.Train[i] < 0 || a.Train[i] >= cfg.Vocab {
			t.Fatal("token out of vocabulary")
		}
	}
	if len(a.Train) != 2000 || len(a.Test) != 500 {
		t.Fatalf("corpus sizes %d/%d", len(a.Train), len(a.Test))
	}
}

func TestTextHasPredictableStructure(t *testing.T) {
	cfg := PTBLike(20000, 1000)
	txt := GenerateText(cfg)
	floor := txt.EntropyFloorEstimate()
	uniform := math.Log(float64(cfg.Vocab))
	if floor >= uniform*0.8 {
		t.Fatalf("bigram entropy %.3f too close to uniform %.3f — corpus must be predictable", floor, uniform)
	}
	if floor <= 0.5 {
		t.Fatalf("bigram entropy %.3f too low — corpus must not be trivial", floor)
	}
}

func TestLMBatchesLayout(t *testing.T) {
	stream := make([]int, 101)
	for i := range stream {
		stream[i] = i % 7
	}
	batches := LMBatches(stream, 5, 4)
	// perStream = 100/4 = 25 → 5 windows of 5.
	if len(batches) != 5 {
		t.Fatalf("got %d batches, want 5", len(batches))
	}
	b0 := batches[0]
	if b0.X.Dim(0) != 5 || b0.X.Dim(1) != 4 {
		t.Fatalf("X shape %v", b0.X.Shape)
	}
	if len(b0.Labels) != 20 {
		t.Fatalf("labels %d, want 20", len(b0.Labels))
	}
	// Check alignment: input at (t,b) is stream[b*25+t]; label is the next.
	for tt := 0; tt < 5; tt++ {
		for bb := 0; bb < 4; bb++ {
			pos := bb*25 + tt
			if int(b0.X.At(tt, bb)) != stream[pos] {
				t.Fatalf("input misaligned at (%d,%d)", tt, bb)
			}
			if b0.Labels[tt*4+bb] != stream[pos+1] {
				t.Fatalf("label misaligned at (%d,%d)", tt, bb)
			}
		}
	}
}

func TestLMBatchesPanicsWhenTooShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LMBatches(make([]int, 10), 20, 4)
}
