package cascade

import (
	"math"
	"testing"

	"modelslicing/internal/tensor"
	"modelslicing/internal/train"
)

// fixedPredictor returns a Predict function driven by a lookup table.
func fixedPredictor(preds []int) func(train.Batch) []int {
	pos := 0
	return func(b train.Batch) []int {
		out := preds[pos : pos+len(b.Labels)]
		pos += len(b.Labels)
		return out
	}
}

func itemBatches(labels []int) []train.Batch {
	x := tensor.New(len(labels), 1)
	return []train.Batch{{X: x, Labels: labels}}
}

func TestRunPrecisionAndAggregateRecall(t *testing.T) {
	// 4 items with true labels 0,1,2,3.
	items := itemBatches([]int{0, 1, 2, 3})
	// Stage 1 gets items 0-2 right; stage 2 gets items 1-3 right.
	stages := []Stage{
		{Name: "s1", Width: 0.5, Params: 10, MACs: 100,
			Predict: fixedPredictor([]int{0, 1, 2, 9})},
		{Name: "s2", Width: 1.0, Params: 40, MACs: 400,
			Predict: fixedPredictor([]int{9, 1, 2, 3})},
	}
	res := Run(stages, items, false)
	if math.Abs(res.Stages[0].Precision-0.75) > 1e-12 {
		t.Fatalf("stage 1 precision %v", res.Stages[0].Precision)
	}
	if math.Abs(res.Stages[0].AggRecall-0.75) > 1e-12 {
		t.Fatal("stage 1 aggregate recall must equal its precision")
	}
	if math.Abs(res.Stages[1].Precision-0.75) > 1e-12 {
		t.Fatalf("stage 2 precision %v", res.Stages[1].Precision)
	}
	// Only items 1 and 2 are correct at both stages.
	if math.Abs(res.FinalRecall()-0.5) > 1e-12 {
		t.Fatalf("final recall %v, want 0.5", res.FinalRecall())
	}
	if res.TotalParams != 50 || res.TotalMACs != 500 {
		t.Fatalf("totals %d params %d MACs", res.TotalParams, res.TotalMACs)
	}
}

func TestRunSharedParamsTakesMax(t *testing.T) {
	items := itemBatches([]int{0, 1})
	stages := []Stage{
		{Name: "a", Params: 10, MACs: 1, Predict: fixedPredictor([]int{0, 1})},
		{Name: "b", Params: 40, MACs: 4, Predict: fixedPredictor([]int{0, 1})},
	}
	res := Run(stages, items, true)
	if res.TotalParams != 40 {
		t.Fatalf("shared params %d, want max member 40", res.TotalParams)
	}
	if res.FinalRecall() != 1.0 {
		t.Fatalf("perfectly consistent cascade recall %v", res.FinalRecall())
	}
}

// Consistent-but-weaker stages can beat inconsistent stronger ones — the
// phenomenon that motivates the slicing cascade (Section 4.2's mis-drop
// example).
func TestConsistencyBeatsRawPrecision(t *testing.T) {
	items := itemBatches([]int{0, 0, 0, 0, 0, 0, 0, 0})
	// Inconsistent cascade: each stage 75% precision but errors disjoint.
	inconsistent := []Stage{
		{Name: "i1", Predict: fixedPredictor([]int{1, 1, 0, 0, 0, 0, 0, 0})},
		{Name: "i2", Predict: fixedPredictor([]int{0, 0, 1, 1, 0, 0, 0, 0})},
	}
	// Consistent cascade: same 75% precision, overlapping errors.
	consistent := []Stage{
		{Name: "c1", Predict: fixedPredictor([]int{1, 1, 0, 0, 0, 0, 0, 0})},
		{Name: "c2", Predict: fixedPredictor([]int{1, 1, 0, 0, 0, 0, 0, 0})},
	}
	ri := Run(inconsistent, items, false)
	rc := Run(consistent, items, false)
	if ri.Stages[0].Precision != rc.Stages[0].Precision {
		t.Fatal("setup error: precisions should match")
	}
	if rc.FinalRecall() <= ri.FinalRecall() {
		t.Fatalf("consistent cascade recall %v must beat inconsistent %v",
			rc.FinalRecall(), ri.FinalRecall())
	}
}
