// Package cascade implements the cascade-ranking simulation of Section 4.2
// and Table 5: a pipeline of classifiers of increasing cost where an item
// survives a stage only if that stage's prediction is consistent with the
// previous stages'. The paper's key claim is that sub-models sliced from one
// model-slicing network make far more consistent predictions than
// independently trained fixed models, so the cascade accumulates fewer false
// negatives (higher aggregate recall) while storing a single model.
package cascade

import (
	"fmt"

	"modelslicing/internal/nn"
	"modelslicing/internal/slicing"
	"modelslicing/internal/train"
)

// Stage is one classifier of the cascade with its deployment costs.
type Stage struct {
	Name string
	// Width is the slice rate / width multiplier of the stage's model.
	Width float64
	// Predict returns logits for a batch.
	Predict func(x train.Batch) []int
	// Params and MACs are the stage model's deployment costs.
	Params int64
	MACs   int64
}

// StageResult is one row of Table 5.
type StageResult struct {
	Name      string
	Width     float64
	Params    int64
	MACs      int64
	Precision float64 // prediction accuracy of this classifier alone
	AggRecall float64 // fraction of items correctly retrieved by all stages so far
}

// Result aggregates the cascade simulation.
type Result struct {
	Stages []StageResult
	// TotalParams is the storage the solution deploys (sum over distinct
	// models for the ensemble cascade; the largest model for slicing).
	TotalParams int64
	// TotalMACs is the per-item cost of running every stage.
	TotalMACs int64
}

// FinalRecall returns the aggregate recall after the last stage.
func (r Result) FinalRecall() float64 {
	if len(r.Stages) == 0 {
		return 0
	}
	return r.Stages[len(r.Stages)-1].AggRecall
}

// Run evaluates the cascade over the item batches: per stage it computes the
// stand-alone precision and the aggregate recall (items whose predictions
// were correct — hence mutually consistent — at every stage so far).
func Run(stages []Stage, items []train.Batch, sharedParams bool) Result {
	total := 0
	for _, b := range items {
		total += len(b.Labels)
	}
	surviving := make([]bool, total) // correct-at-all-stages-so-far
	for i := range surviving {
		surviving[i] = true
	}
	var res Result
	for _, st := range stages {
		correct := 0
		base := 0
		for _, b := range items {
			preds := st.Predict(b)
			for i, p := range preds {
				if p == b.Labels[i] {
					correct++
				} else {
					surviving[base+i] = false
				}
			}
			base += len(b.Labels)
		}
		kept := 0
		for _, s := range surviving {
			if s {
				kept++
			}
		}
		res.Stages = append(res.Stages, StageResult{
			Name: st.Name, Width: st.Width, Params: st.Params, MACs: st.MACs,
			Precision: float64(correct) / float64(total),
			AggRecall: float64(kept) / float64(total),
		})
		res.TotalMACs += st.MACs
		if !sharedParams {
			res.TotalParams += st.Params
		} else if st.Params > res.TotalParams {
			res.TotalParams = st.Params
		}
	}
	return res
}

// FromSlicedModel builds cascade stages from the subnets of one
// model-slicing network at the given rates; params/MACs come from the cost
// measurements supplied per rate.
func FromSlicedModel(model nn.Layer, rates slicing.RateList, stageRates []float64,
	params, macs func(r float64) int64) []Stage {
	var stages []Stage
	for i, r := range stageRates {
		r := r
		stages = append(stages, Stage{
			Name:  fmt.Sprintf("slice-%d", i+1),
			Width: r,
			Predict: func(b train.Batch) []int {
				logits := slicing.Predict(model, rates, r, b.X)
				out := make([]int, len(b.Labels))
				for j := range out {
					out[j] = logits.ArgMaxRow(j)
				}
				return out
			},
			Params: params(r),
			MACs:   macs(r),
		})
	}
	return stages
}

// FromModels builds cascade stages from independently trained models (the
// conventional cascade baseline).
func FromModels(names []string, widths []float64, models []nn.Layer, params, macs []int64) []Stage {
	var stages []Stage
	for i := range models {
		m := models[i]
		stages = append(stages, Stage{
			Name:  names[i],
			Width: widths[i],
			Predict: func(b train.Batch) []int {
				logits := m.Forward(nn.Eval(1), b.X)
				out := make([]int, len(b.Labels))
				for j := range out {
					out[j] = logits.ArgMaxRow(j)
				}
				return out
			},
			Params: params[i],
			MACs:   macs[i],
		})
	}
	return stages
}
