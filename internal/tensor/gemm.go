package tensor

import "fmt"

// The GEMM kernels below operate on raw row-major slices so that layers can
// address sliced (prefix) sub-matrices of larger weight buffers without
// copying. All kernels accumulate into the destination (C += ...), which is
// what gradient accumulation across scheduled subnets needs; callers zero the
// destination when plain assignment is wanted.
//
// ld* are leading dimensions (row strides) of the underlying buffers, which
// may exceed the logical number of columns when a prefix slice of a wider
// matrix is being used.

// Gemm computes C[m×n] += A[m×k] · B[k×n].
func Gemm(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	checkMat("Gemm A", m, k, lda, len(a))
	checkMat("Gemm B", k, n, ldb, len(b))
	checkMat("Gemm C", m, n, ldc, len(c))
	for i := 0; i < m; i++ {
		ci := c[i*ldc : i*ldc+n]
		ai := a[i*lda : i*lda+k]
		for p := 0; p < k; p++ {
			av := ai[p]
			if av == 0 {
				continue
			}
			bp := b[p*ldb : p*ldb+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// GemmTA computes C[m×n] += Aᵀ · B where A is stored as [k×m].
func GemmTA(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	checkMat("GemmTA A", k, m, lda, len(a))
	checkMat("GemmTA B", k, n, ldb, len(b))
	checkMat("GemmTA C", m, n, ldc, len(c))
	for p := 0; p < k; p++ {
		ap := a[p*lda : p*lda+m]
		bp := b[p*ldb : p*ldb+n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			ci := c[i*ldc : i*ldc+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// GemmTB computes C[m×n] += A · Bᵀ where B is stored as [n×k].
func GemmTB(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	checkMat("GemmTB A", m, k, lda, len(a))
	checkMat("GemmTB B", n, k, ldb, len(b))
	checkMat("GemmTB C", m, n, ldc, len(c))
	for i := 0; i < m; i++ {
		ai := a[i*lda : i*lda+k]
		ci := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+k]
			s := 0.0
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] += s
		}
	}
}

// MatVec computes y[m] += A[m×k] · x[k].
func MatVec(m, k int, a []float64, lda int, x, y []float64) {
	if len(x) < k || len(y) < m {
		panic(fmt.Sprintf("tensor: MatVec operand too short (m=%d k=%d |x|=%d |y|=%d)", m, k, len(x), len(y)))
	}
	for i := 0; i < m; i++ {
		ai := a[i*lda : i*lda+k]
		s := 0.0
		for p, av := range ai {
			s += av * x[p]
		}
		y[i] += s
	}
}

// MatTVec computes y[k] += Aᵀ · x where A is stored as [m×k].
func MatTVec(m, k int, a []float64, lda int, x, y []float64) {
	if len(x) < m || len(y) < k {
		panic(fmt.Sprintf("tensor: MatTVec operand too short (m=%d k=%d |x|=%d |y|=%d)", m, k, len(x), len(y)))
	}
	for i := 0; i < m; i++ {
		xv := x[i]
		if xv == 0 {
			continue
		}
		ai := a[i*lda : i*lda+k]
		for p, av := range ai {
			y[p] += xv * av
		}
	}
}

// OuterAcc computes A[m×k] += x[m] ⊗ y[k] (rank-1 update).
func OuterAcc(m, k int, a []float64, lda int, x, y []float64) {
	for i := 0; i < m; i++ {
		xv := x[i]
		if xv == 0 {
			continue
		}
		ai := a[i*lda : i*lda+k]
		for p, yv := range y[:k] {
			ai[p] += xv * yv
		}
	}
}

// checkMat validates that a rows×cols matrix with leading dimension ld fits
// inside a buffer of the given length.
func checkMat(name string, rows, cols, ld, length int) {
	if ld < cols {
		panic(fmt.Sprintf("tensor: %s leading dimension %d < cols %d", name, ld, cols))
	}
	if rows > 0 && (rows-1)*ld+cols > length {
		panic(fmt.Sprintf("tensor: %s buffer too short: need %d, have %d", name, (rows-1)*ld+cols, length))
	}
}
