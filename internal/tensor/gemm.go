package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// The GEMM kernels below operate on raw row-major slices so that layers can
// address sliced (prefix) sub-matrices of larger weight buffers without
// copying. All kernels accumulate into the destination (C += ...), which is
// what gradient accumulation across scheduled subnets needs; callers zero the
// destination when plain assignment is wanted.
//
// ld* are leading dimensions (row strides) of the underlying buffers, which
// may exceed the logical number of columns when a prefix slice of a wider
// matrix is being used.
//
// All three products funnel into one cache-blocked engine built around a
// rank-4 axpy micro-kernel: four rows of B are fused into each pass over a C
// row, so every loaded value feeds multiple multiply-adds and no accumulator
// dependency chain forms — the pattern Go's scalar codegen schedules best (a
// register-tiled dot-product micro-kernel loses here because its sixteen
// live accumulators spill). B panels are blocked to stay L2-resident across
// the row sweep; transposed operands (Aᵀ for GemmTA, Bᵀ for GemmTB) are
// packed into row-major panels from a buffer pool so the micro-kernel always
// streams contiguously; and the row range fans out across goroutines once
// the problem is big enough to amortize the spawns.

// Blocking parameters.
const (
	// kcBlock × ncBlock bounds the B panel kept hot across the row sweep
	// (256·256·8 B = 512 KiB, inside a server-class L2); mcBlock bounds the
	// packed Aᵀ block of the GemmTA path to the same pool buffer size.
	kcBlock = 256
	ncBlock = 256
	mcBlock = 256

	// smallGemmFlops gates the packed path for the transposed variants:
	// below this m·n·k the transpose-copy overhead dominates and the simple
	// strided loops win.
	smallGemmFlops = 48 * 48 * 48
	// parallelGemmFlops gates goroutine fan-out of the row range.
	parallelGemmFlops = 96 * 96 * 96
	// minRowsPerWorker keeps fan-out from shredding tiny row counts.
	minRowsPerWorker = 8
)

// packPool recycles transpose-packing panels (kcBlock×ncBlock floats) so
// steady-state GEMM calls allocate nothing.
var packPool = sync.Pool{
	New: func() any {
		buf := make([]float64, kcBlock*ncBlock)
		return &buf
	},
}

// Gemm computes C[m×n] += A[m×k] · B[k×n].
func Gemm(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	checkMat("Gemm A", m, k, lda, len(a))
	checkMat("Gemm B", k, n, ldb, len(b))
	checkMat("Gemm C", m, n, ldc, len(c))
	gemmParallel(m, n, k, a, lda, false, b, ldb, false, c, ldc)
}

// GemmTA computes C[m×n] += Aᵀ · B where A is stored as [k×m].
func GemmTA(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	checkMat("GemmTA A", k, m, lda, len(a))
	checkMat("GemmTA B", k, n, ldb, len(b))
	checkMat("GemmTA C", m, n, ldc, len(c))
	if m*n*k < smallGemmFlops {
		gemmTASimple(m, n, k, a, lda, b, ldb, c, ldc)
		return
	}
	gemmParallel(m, n, k, a, lda, true, b, ldb, false, c, ldc)
}

// GemmTB computes C[m×n] += A · Bᵀ where B is stored as [n×k].
func GemmTB(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	checkMat("GemmTB A", m, k, lda, len(a))
	checkMat("GemmTB B", n, k, ldb, len(b))
	checkMat("GemmTB C", m, n, ldc, len(c))
	if m*n*k < smallGemmFlops {
		gemmTBSimple(m, n, k, a, lda, b, ldb, c, ldc)
		return
	}
	gemmParallel(m, n, k, a, lda, false, b, ldb, true, c, ldc)
}

// --- simple strided paths for small transposed products ---

func gemmTASimple(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for p := 0; p < k; p++ {
		ap := a[p*lda : p*lda+m]
		bp := b[p*ldb : p*ldb+n]
		for i, av := range ap {
			if av == 0 {
				// Gradients arriving through ReLU/dropout masks are often
				// exactly zero; skipping whole axpy rows is a real win on
				// this backward-path kernel (unlike the forward Gemm, where
				// the same branch was pure inner-loop cost and is gone).
				continue
			}
			ci := c[i*ldc : i*ldc+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

func gemmTBSimple(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		ai := a[i*lda : i*lda+k]
		ci := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+k]
			// Four partial sums break the serial dependence on a single
			// accumulator.
			var s0, s1, s2, s3 float64
			p := 0
			for ; p+3 < k; p += 4 {
				s0 += ai[p] * bj[p]
				s1 += ai[p+1] * bj[p+1]
				s2 += ai[p+2] * bj[p+2]
				s3 += ai[p+3] * bj[p+3]
			}
			for ; p < k; p++ {
				s0 += ai[p] * bj[p]
			}
			ci[j] += s0 + s1 + s2 + s3
		}
	}
}

// --- blocked engine ---

// gemmParallel fans the row range out across goroutines when the problem is
// large enough, then runs the serial blocked engine per chunk. Each worker
// packs its own panels, so no synchronization beyond the final wait is
// needed; transposed panels are re-packed per worker, an O(k·n) duplication
// that is noise next to the O(m·n·k/P) compute per worker.
func gemmParallel(m, n, k int, a []float64, lda int, aTrans bool, b []float64, ldb int, bTrans bool, c []float64, ldc int) {
	workers := runtime.GOMAXPROCS(0)
	if maxW := m / minRowsPerWorker; workers > maxW {
		workers = maxW
	}
	if workers <= 1 || m*n*k < parallelGemmFlops {
		gemmBlocked(m, n, k, a, lda, aTrans, b, ldb, bTrans, c, ldc)
		return
	}
	chunk := (m + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			rows := hi - lo
			if aTrans {
				// A is [k×m]; a row offset of the logical product is a
				// column offset in storage.
				gemmBlocked(rows, n, k, a[lo:], lda, true, b, ldb, bTrans, c[lo*ldc:], ldc)
			} else {
				gemmBlocked(rows, n, k, a[lo*lda:], lda, false, b, ldb, bTrans, c[lo*ldc:], ldc)
			}
		}(lo, hi)
	}
	wg.Wait()
}

// gemmBlocked runs C += op(A)·op(B) one (kc × nc) B panel at a time: the
// panel stays L2-resident while the C rows sweep across it, and C is
// revisited only k/kc times. Straight operands stream directly from the
// caller's buffers; transposed operands are packed into row-major scratch
// panels first. The ic loop only subdivides the rows when a packed Aᵀ block
// must fit the pool buffer (GemmTA); otherwise it runs once over all rows.
func gemmBlocked(m, n, k int, a []float64, lda int, aTrans bool, b []float64, ldb int, bTrans bool, c []float64, ldc int) {
	var aPack, bPack []float64
	if aTrans {
		buf := packPool.Get().(*[]float64)
		defer packPool.Put(buf)
		aPack = *buf
	}
	if bTrans {
		buf := packPool.Get().(*[]float64)
		defer packPool.Put(buf)
		bPack = *buf
	}
	icStep := m
	if aTrans {
		icStep = mcBlock
	}
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		for ic := 0; ic < m; ic += icStep {
			mcb := min(icStep, m-ic)
			var ablk []float64
			ldab := lda
			if aTrans {
				// ablk[i×kcb] = A[pc:pc+kcb, ic:ic+mcb]ᵀ.
				packTrans(aPack, mcb, kcb, a, lda, pc, ic)
				ablk, ldab = aPack, kcb
			} else {
				ablk = a[ic*lda+pc:]
			}
			for jc := 0; jc < n; jc += ncBlock {
				ncb := min(ncBlock, n-jc)
				var bp []float64
				ldbp := ldb
				if bTrans {
					// bp[p×ncb] = B[jc:jc+ncb, pc:pc+kcb]ᵀ.
					packTrans(bPack, kcb, ncb, b, ldb, jc, pc)
					bp, ldbp = bPack, ncb
				} else {
					bp = b[pc*ldb+jc:]
				}
				gemmPanel(mcb, ncb, kcb, ablk, ldab, bp, ldbp, c[ic*ldc+jc:], ldc)
			}
		}
	}
}

// gemmPanel is the rank-4 axpy micro-kernel: C[rows×ncb] += A[rows×kcb] ·
// B[kcb×ncb], walking each C row once per four B rows so every iteration of
// the fused inner loop runs eight independent multiply-adds over five
// contiguous streams.
func gemmPanel(rows, ncb, kcb int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < rows; i++ {
		ai := a[i*lda : i*lda+kcb]
		ci := c[i*ldc : i*ldc+ncb]
		p := 0
		for ; p+4 <= kcb; p += 4 {
			a0, a1, a2, a3 := ai[p], ai[p+1], ai[p+2], ai[p+3]
			b0 := b[p*ldb : p*ldb+ncb]
			b1 := b[(p+1)*ldb : (p+1)*ldb+ncb]
			b2 := b[(p+2)*ldb : (p+2)*ldb+ncb]
			b3 := b[(p+3)*ldb : (p+3)*ldb+ncb]
			for j, bv := range b0 {
				ci[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
			}
		}
		for ; p < kcb; p++ {
			av := ai[p]
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

// packTrans writes dst[rows×cols] = src[r0:r0+cols, c0:c0+rows]ᵀ for a
// row-major src with stride ld, i.e. dst[i·cols+j] = src[(r0+j)·ld + c0+i].
// Reads run along src rows (contiguous); writes stride by cols, which the
// blocked caller keeps cache-sized.
func packTrans(dst []float64, rows, cols int, src []float64, ld, r0, c0 int) {
	for j := 0; j < cols; j++ {
		s := src[(r0+j)*ld+c0 : (r0+j)*ld+c0+rows]
		for i, v := range s {
			dst[i*cols+j] = v
		}
	}
}

// --- matrix–vector kernels ---

// MatVec computes y[m] += A[m×k] · x[k].
func MatVec(m, k int, a []float64, lda int, x, y []float64) {
	checkMat("MatVec A", m, k, lda, len(a))
	checkVec("MatVec x", k, len(x))
	checkVec("MatVec y", m, len(y))
	for i := 0; i < m; i++ {
		ai := a[i*lda : i*lda+k]
		s := 0.0
		for p, av := range ai {
			s += av * x[p]
		}
		y[i] += s
	}
}

// MatTVec computes y[k] += Aᵀ · x where A is stored as [m×k].
func MatTVec(m, k int, a []float64, lda int, x, y []float64) {
	checkMat("MatTVec A", m, k, lda, len(a))
	checkVec("MatTVec x", m, len(x))
	checkVec("MatTVec y", k, len(y))
	for i := 0; i < m; i++ {
		xv := x[i]
		if xv == 0 {
			continue
		}
		ai := a[i*lda : i*lda+k]
		for p, av := range ai {
			y[p] += xv * av
		}
	}
}

// OuterAcc computes A[m×k] += x[m] ⊗ y[k] (rank-1 update).
func OuterAcc(m, k int, a []float64, lda int, x, y []float64) {
	checkMat("OuterAcc A", m, k, lda, len(a))
	checkVec("OuterAcc x", m, len(x))
	checkVec("OuterAcc y", k, len(y))
	for i := 0; i < m; i++ {
		xv := x[i]
		if xv == 0 {
			continue
		}
		ai := a[i*lda : i*lda+k]
		for p, yv := range y[:k] {
			ai[p] += xv * yv
		}
	}
}

// checkMat validates that a rows×cols matrix with leading dimension ld fits
// inside a buffer of the given length.
func checkMat(name string, rows, cols, ld, length int) {
	if ld < cols {
		panic(fmt.Sprintf("tensor: %s leading dimension %d < cols %d", name, ld, cols))
	}
	if rows > 0 && (rows-1)*ld+cols > length {
		panic(fmt.Sprintf("tensor: %s buffer too short: need %d, have %d", name, (rows-1)*ld+cols, length))
	}
}

// checkVec validates that a vector operand holds at least n elements,
// reporting failures in the same style as checkMat.
func checkVec(name string, n, length int) {
	if n > length {
		panic(fmt.Sprintf("tensor: %s buffer too short: need %d, have %d", name, n, length))
	}
}
