package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// The GEMM kernels below operate on raw row-major slices so that layers can
// address sliced (prefix) sub-matrices of larger weight buffers without
// copying. All kernels accumulate into the destination (C += ...), which is
// what gradient accumulation across scheduled subnets needs; callers zero the
// destination when plain assignment is wanted.
//
// ld* are leading dimensions (row strides) of the underlying buffers, which
// may exceed the logical number of columns when a prefix slice of a wider
// matrix is being used.
//
// All three products funnel into one cache-blocked engine built around a
// 2×4 axpy micro-kernel: four rows of B are fused into each pass over a pair
// of C rows, so every loaded value feeds multiple multiply-adds and no
// accumulator dependency chain forms — the pattern Go's scalar codegen
// schedules best (a register-tiled dot-product micro-kernel loses here
// because its sixteen live accumulators spill). On AVX hosts the quad-axpy
// inner loop dispatches to a vector kernel that evaluates the same
// expression tree per lane, bit-identically (kernel.go). B panels are
// blocked to stay L2-resident across the row sweep; transposed operands (Aᵀ
// for GemmTA, Bᵀ for GemmTB) are packed into row-major panels from a buffer
// pool so the micro-kernel always streams contiguously — or, for immutable
// inference weights, packed once and for all into a persistent PackedMat
// (pack.go); and the row range fans out across goroutines once the problem
// is big enough to amortize the spawns.

// Blocking parameters.
const (
	// kcBlock × ncBlock bounds the B panel kept hot across the row sweep
	// (256·256·8 B = 512 KiB, inside a server-class L2); mcBlock bounds the
	// packed Aᵀ block of the GemmTA path to the same pool buffer size.
	kcBlock = 256
	ncBlock = 256
	mcBlock = 256

	// smallGemmFlops gates the packed path for the transposed variants:
	// below this m·n·k the transpose-copy overhead dominates and the simple
	// strided loops win.
	smallGemmFlops = 48 * 48 * 48
	// parallelGemmFlops gates goroutine fan-out of the row range.
	parallelGemmFlops = 96 * 96 * 96
	// minRowsPerWorker keeps fan-out from shredding tiny row counts.
	minRowsPerWorker = 8
	// minColsPerWorker keeps the column fan-out (used when the row count is
	// too small to split, e.g. a conv product with few output channels and a
	// whole batch of im2col columns) from shredding tiny column counts.
	minColsPerWorker = 64
)

// Epilogue describes a fused transform applied to every element of C while
// its panel is still cache-hot, immediately after the final k-panel of an
// assign-mode (β=0) GEMM. Each element goes through, in order:
//
//	v = Alpha · acc                      (Alpha 0 is treated as 1)
//	v = RowScale[i] · v                  (when RowScale is non-nil)
//	v = v + RowShift[i]                  (when RowShift is non-nil)
//	v = v · ColScale[j]                  (when ColScale is non-nil)
//	v = v + ColShift[j]                  (when ColShift is non-nil)
//	v = max(v, 0)                        (when ReLU is set; NaN clamps to 0,
//	                                      matching a standalone v > 0 ReLU)
//
// Row vectors index the C row (a convolution's output channel: folded
// BatchNorm scale/shift, conv bias); column vectors index the C column (a
// dense layer's output unit: bias); Alpha is a uniform multiplier (output
// rescaling). Fusing these into the GEMM turns a Conv→BN→ReLU or
// Dense→ReLU chain into a single pass over the output instead of one extra
// full memory sweep per post-op.
//
// Epilogues exist only on the assign-mode entry points (GemmEx, GemmTBEx):
// applying an affine or clamp step to an accumulating C would also transform
// whatever the caller had accumulated so far.
type Epilogue struct {
	Alpha              float64
	RowScale, RowShift []float64
	ColScale, ColShift []float64
	ReLU               bool
}

// empty reports whether the epilogue would leave C untouched.
func (ep *Epilogue) empty() bool {
	return ep == nil || (ep.Alpha == 0 || ep.Alpha == 1) && ep.RowScale == nil && ep.RowShift == nil &&
		ep.ColScale == nil && ep.ColShift == nil && !ep.ReLU
}

// check validates the epilogue vector lengths against the product shape.
func (ep *Epilogue) check(m, n int) {
	if ep == nil {
		return
	}
	if ep.RowScale != nil {
		checkVec("Epilogue RowScale", m, len(ep.RowScale))
	}
	if ep.RowShift != nil {
		checkVec("Epilogue RowShift", m, len(ep.RowShift))
	}
	if ep.ColScale != nil {
		checkVec("Epilogue ColScale", n, len(ep.ColScale))
	}
	if ep.ColShift != nil {
		checkVec("Epilogue ColShift", n, len(ep.ColShift))
	}
}

// packPool recycles transpose-packing panels (kcBlock×ncBlock floats) so
// steady-state GEMM calls allocate nothing.
var packPool = sync.Pool{
	New: func() any {
		buf := make([]float64, kcBlock*ncBlock)
		return &buf
	},
}

// Gemm computes C[m×n] += A[m×k] · B[k×n] on the exact tier.
func Gemm(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	GemmT(TierExact, m, n, k, a, lda, b, ldb, c, ldc)
}

// GemmT is Gemm on an explicit engine tier: TierExact reproduces Gemm bit
// for bit; the fast tiers contract each multiply-add into a fused one (see
// tier.go for the accuracy contract). Tier selection is per call — no global
// state — so exact and fast products can interleave freely.
func GemmT(tier EngineTier, m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	checkMat("Gemm A", m, k, lda, len(a))
	checkMat("Gemm B", k, n, ldb, len(b))
	checkMat("Gemm C", m, n, ldc, len(c))
	gemmParallel(tier, m, n, k, a, lda, false, b, ldb, false, c, ldc, false, nil)
}

// GemmEx computes C[m×n] = epilogue(A[m×k] · B[k×n]) — assign mode (β=0): C
// is fully overwritten, so callers may pass uninitialized storage
// (Arena.GetUninit) and skip the zero-fill pass. The epilogue (which may be
// nil) is applied to each C panel while it is still cache-hot. The
// accumulation order per element is identical to Gemm into a zeroed C, so
// results are bit-identical to the unfused sequence when the epilogue steps
// match.
func GemmEx(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, ep *Epilogue) {
	GemmExT(TierExact, m, n, k, a, lda, b, ldb, c, ldc, ep)
}

// GemmExT is GemmEx on an explicit engine tier (see GemmT).
func GemmExT(tier EngineTier, m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, ep *Epilogue) {
	checkMat("GemmEx A", m, k, lda, len(a))
	checkMat("GemmEx B", k, n, ldb, len(b))
	checkMat("GemmEx C", m, n, ldc, len(c))
	ep.check(m, n)
	if ep.empty() {
		ep = nil
	}
	if k == 0 {
		// An empty sum still owes the caller a fully written C (assign-mode
		// contract): zero the product region, then run the epilogue.
		for i := 0; i < m; i++ {
			clear(c[i*ldc : i*ldc+n])
		}
		if ep != nil {
			applyEpilogue(m, n, c, ldc, ep, 0, 0)
		}
		return
	}
	gemmParallel(tier, m, n, k, a, lda, false, b, ldb, false, c, ldc, true, ep)
}

// GemmTBEx computes C[m×n] = epilogue(A · Bᵀ) where B is stored as [n×k] —
// the assign-mode, fused-epilogue variant of GemmTB (see GemmEx).
func GemmTBEx(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, ep *Epilogue) {
	GemmTBExT(TierExact, m, n, k, a, lda, b, ldb, c, ldc, ep)
}

// GemmTBExT is GemmTBEx on an explicit engine tier (see GemmT). Products
// below the small-GEMM threshold stay on the exact strided dot kernel at
// every tier: there is no bandwidth or FLOP win to buy accuracy with at
// those sizes, so the fast tiers are exact there by design.
func GemmTBExT(tier EngineTier, m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, ep *Epilogue) {
	checkMat("GemmTBEx A", m, k, lda, len(a))
	checkMat("GemmTBEx B", n, k, ldb, len(b))
	checkMat("GemmTBEx C", m, n, ldc, len(c))
	ep.check(m, n)
	if ep.empty() {
		ep = nil
	}
	if m*n*k < smallGemmFlops {
		gemmTBSimpleAssign(m, n, k, a, lda, b, ldb, c, ldc)
		if ep != nil {
			applyEpilogue(m, n, c, ldc, ep, 0, 0)
		}
		return
	}
	gemmParallel(tier, m, n, k, a, lda, false, b, ldb, true, c, ldc, true, ep)
}

// gemmFanout returns how many workers the row and column splits each admit
// for a C[m×n] product under the current GOMAXPROCS — the single source of
// the fan-out gate shared by gemmParallel and GemmWillParallelize.
func gemmFanout(m, n int) (rowW, colW int) {
	workers := runtime.GOMAXPROCS(0)
	return min(workers, m/minRowsPerWorker), min(workers, n/minColsPerWorker)
}

// gemmShouldFanout is the fan-out policy shared by every parallel entry
// point (gemmParallel, GemmPackedEx, GemmTBPackedEx, GemmWillParallelize):
// it admits a split only when some dimension yields more than one worker and
// the arithmetic amortizes the spawns.
func gemmShouldFanout(m, n, k int) (rowW, colW int, ok bool) {
	rowW, colW = gemmFanout(m, n)
	return rowW, colW, (rowW > 1 || colW > 1) && m*n*k >= parallelGemmFlops
}

// GemmWillParallelize reports whether a product of the given shape clears
// the fan-out thresholds under the current GOMAXPROCS — i.e. whether the
// engine would split it across goroutines (by rows or columns). Callers with
// a choice of lowering (a convolution can run one wide whole-batch GEMM or a
// cache-hotter per-sample sequence) use this to pick: the wide layout only
// pays for its extra memory traffic when the fan-out actually engages.
func GemmWillParallelize(m, n, k int) bool {
	_, _, ok := gemmShouldFanout(m, n, k)
	return ok
}

// gemmFanoutCount / gemmFanoutWorkers count the products the engine split
// across goroutines and the worker goroutines spawned for them — exported
// through GemmStats so the serving layer can report how often the elastic
// widths actually engage the fan-out path.
var (
	gemmFanoutCount   atomic.Int64
	gemmFanoutWorkers atomic.Int64
)

// GemmCounters is a snapshot of the engine's global fan-out and kernel
// dispatch counters.
type GemmCounters struct {
	// Fanouts counts GEMM calls that split across goroutines.
	Fanouts int64
	// FanoutWorkers counts the worker goroutines those calls spawned.
	FanoutWorkers int64
	// Kernels counts micro-panel kernel dispatches per tier (indexed by
	// EngineTier), split by whether the vector kernel or the scalar
	// fallback ran — the serving layer surfaces these as
	// msserver_gemm_kernel_total{tier,kernel}.
	Kernels [NumTiers]KernelCounters
}

// GemmStats returns the process-wide GEMM fan-out and dispatch counters.
func GemmStats() GemmCounters {
	gc := GemmCounters{
		Fanouts:       gemmFanoutCount.Load(),
		FanoutWorkers: gemmFanoutWorkers.Load(),
	}
	for t := 0; t < NumTiers; t++ {
		gc.Kernels[t] = KernelCounters{
			Vector: kernelVectorCount[t].Load(),
			Scalar: kernelScalarCount[t].Load(),
		}
	}
	return gc
}

// gemmFanoutRun partitions [0, total) into chunk-sized ranges, runs each on
// its own goroutine, and waits — the fan-out scaffolding shared by every
// parallel GEMM entry point. The epilogue reaches the workers by value: a
// go-closure over the caller's pointer would force every caller's stack
// epilogue to the heap even on the serial path, so each worker receives its
// own copy and run gets a pointer to that copy (nil when ep was nil).
func gemmFanoutRun(total, chunk int, ep *Epilogue, run func(lo, hi int, ep *Epilogue)) {
	var epv Epilogue
	hasEp := ep != nil
	if hasEp {
		epv = *ep
	}
	var wg sync.WaitGroup
	workers := 0
	for lo := 0; lo < total; lo += chunk {
		hi := min(lo+chunk, total)
		workers++
		wg.Add(1)
		go func(lo, hi int, epv Epilogue) {
			defer wg.Done()
			var wep *Epilogue
			if hasEp {
				wep = &epv
			}
			run(lo, hi, wep)
		}(lo, hi, epv)
	}
	gemmFanoutCount.Add(1)
	gemmFanoutWorkers.Add(int64(workers))
	wg.Wait()
}

// GemmTA computes C[m×n] += Aᵀ · B where A is stored as [k×m].
func GemmTA(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	checkMat("GemmTA A", k, m, lda, len(a))
	checkMat("GemmTA B", k, n, ldb, len(b))
	checkMat("GemmTA C", m, n, ldc, len(c))
	if m*n*k < smallGemmFlops {
		gemmTASimple(m, n, k, a, lda, b, ldb, c, ldc)
		return
	}
	gemmParallel(TierExact, m, n, k, a, lda, true, b, ldb, false, c, ldc, false, nil)
}

// GemmTB computes C[m×n] += A · Bᵀ where B is stored as [n×k].
func GemmTB(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	checkMat("GemmTB A", m, k, lda, len(a))
	checkMat("GemmTB B", n, k, ldb, len(b))
	checkMat("GemmTB C", m, n, ldc, len(c))
	if m*n*k < smallGemmFlops {
		gemmTBSimple(m, n, k, a, lda, b, ldb, c, ldc)
		return
	}
	gemmParallel(TierExact, m, n, k, a, lda, false, b, ldb, true, c, ldc, false, nil)
}

// --- simple strided paths for small transposed products ---

func gemmTASimple(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for p := 0; p < k; p++ {
		ap := a[p*lda : p*lda+m]
		bp := b[p*ldb : p*ldb+n]
		for i, av := range ap {
			if av == 0 {
				// Gradients arriving through ReLU/dropout masks are often
				// exactly zero; skipping whole axpy rows is a real win on
				// this backward-path kernel (unlike the forward Gemm, where
				// the same branch was pure inner-loop cost and is gone).
				continue
			}
			ci := c[i*ldc : i*ldc+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

func gemmTBSimple(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		ai := a[i*lda : i*lda+k]
		ci := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+k]
			// Four partial sums break the serial dependence on a single
			// accumulator.
			var s0, s1, s2, s3 float64
			p := 0
			for ; p+3 < k; p += 4 {
				s0 += ai[p] * bj[p]
				s1 += ai[p+1] * bj[p+1]
				s2 += ai[p+2] * bj[p+2]
				s3 += ai[p+3] * bj[p+3]
			}
			for ; p < k; p++ {
				s0 += ai[p] * bj[p]
			}
			ci[j] += s0 + s1 + s2 + s3
		}
	}
}

// gemmTBSimpleAssign is gemmTBSimple with β=0: identical accumulation order,
// but the result overwrites C (0 + s ≡ s, so it is bit-compatible with the
// accumulate kernel on a zeroed C).
func gemmTBSimpleAssign(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		ai := a[i*lda : i*lda+k]
		ci := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+k]
			var s0, s1, s2, s3 float64
			p := 0
			for ; p+3 < k; p += 4 {
				s0 += ai[p] * bj[p]
				s1 += ai[p+1] * bj[p+1]
				s2 += ai[p+2] * bj[p+2]
				s3 += ai[p+3] * bj[p+3]
			}
			for ; p < k; p++ {
				s0 += ai[p] * bj[p]
			}
			ci[j] = s0 + s1 + s2 + s3
		}
	}
}

// --- blocked engine ---

// gemmParallel fans the product out across goroutines when the problem is
// large enough, then runs the serial blocked engine per chunk. Each worker
// packs its own panels, so no synchronization beyond the final wait is
// needed; transposed panels are re-packed per worker, an O(k·n) duplication
// that is noise next to the O(m·n·k/P) compute per worker.
//
// The split dimension is whichever of rows and columns admits more workers:
// a dense product (large m) splits rows as before, while a whole-batch conv
// lowering (m = output channels, often < 2·minRowsPerWorker, with n = batch ×
// spatial columns) splits columns — disjoint C column ranges are just as
// race-free as disjoint row ranges, and the epilogue offsets follow the
// split.
func gemmParallel(tier EngineTier, m, n, k int, a []float64, lda int, aTrans bool, b []float64, ldb int, bTrans bool, c []float64, ldc int, assign bool, ep *Epilogue) {
	rowW, colW, ok := gemmShouldFanout(m, n, k)
	if !ok {
		gemmBlocked(tier, m, n, k, a, lda, aTrans, b, ldb, bTrans, c, ldc, assign, ep, 0, 0)
		return
	}
	if rowW >= colW {
		gemmFanoutRun(m, (m+rowW-1)/rowW, ep, func(lo, hi int, wep *Epilogue) {
			rows := hi - lo
			if aTrans {
				// A is [k×m]; a row offset of the logical product is a
				// column offset in storage.
				gemmBlocked(tier, rows, n, k, a[lo:], lda, true, b, ldb, bTrans, c[lo*ldc:], ldc, assign, wep, lo, 0)
			} else {
				gemmBlocked(tier, rows, n, k, a[lo*lda:], lda, false, b, ldb, bTrans, c[lo*ldc:], ldc, assign, wep, lo, 0)
			}
		})
		return
	}
	gemmFanoutRun(n, (n+colW-1)/colW, ep, func(lo, hi int, wep *Epilogue) {
		cols := hi - lo
		if bTrans {
			// B is [n×k]; a column offset of the logical product is a
			// row offset in storage.
			gemmBlocked(tier, m, cols, k, a, lda, aTrans, b[lo*ldb:], ldb, true, c[lo:], ldc, assign, wep, 0, lo)
		} else {
			gemmBlocked(tier, m, cols, k, a, lda, aTrans, b[lo:], ldb, false, c[lo:], ldc, assign, wep, 0, lo)
		}
	})
}

// gemmBlocked runs C (+)= op(A)·op(B) one (kc × nc) B panel at a time: the
// panel stays L2-resident while the C rows sweep across it, and C is
// revisited only k/kc times. Straight operands stream directly from the
// caller's buffers; transposed operands are packed into row-major scratch
// panels first. The ic loop only subdivides the rows when a packed Aᵀ block
// must fit the pool buffer (GemmTA); otherwise it runs once over all rows.
//
// With assign set, the first k-panel overwrites C (β=0) instead of
// accumulating, so callers may hand in uninitialized storage. A non-nil
// epilogue is applied to each C tile right after its final k-panel, while
// the tile is still cache-hot; rowOff/colOff locate this call's C window
// inside the epilogue's vectors when a parallel caller has split the
// product.
func gemmBlocked(tier EngineTier, m, n, k int, a []float64, lda int, aTrans bool, b []float64, ldb int, bTrans bool, c []float64, ldc int, assign bool, ep *Epilogue, rowOff, colOff int) {
	var aPack, bPack []float64
	if aTrans {
		buf := packPool.Get().(*[]float64)
		defer packPool.Put(buf)
		aPack = *buf
	}
	if bTrans {
		buf := packPool.Get().(*[]float64)
		defer packPool.Put(buf)
		bPack = *buf
	}
	icStep := m
	if aTrans {
		icStep = mcBlock
	}
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		first := pc == 0
		last := pc+kcb == k
		for ic := 0; ic < m; ic += icStep {
			mcb := min(icStep, m-ic)
			var ablk []float64
			ldab := lda
			if aTrans {
				// ablk[i×kcb] = A[pc:pc+kcb, ic:ic+mcb]ᵀ.
				packTrans(aPack, mcb, kcb, a, lda, pc, ic)
				ablk, ldab = aPack, kcb
			} else {
				ablk = a[ic*lda+pc:]
			}
			for jc := 0; jc < n; jc += ncBlock {
				ncb := min(ncBlock, n-jc)
				var bp []float64
				ldbp := ldb
				if bTrans {
					// bp[p×ncb] = B[jc:jc+ncb, pc:pc+kcb]ᵀ.
					packTrans(bPack, kcb, ncb, b, ldb, jc, pc)
					bp, ldbp = bPack, ncb
				} else {
					bp = b[pc*ldb+jc:]
				}
				if assign && first {
					gemmPanelAssignT(tier, mcb, ncb, kcb, ablk, ldab, bp, ldbp, c[ic*ldc+jc:], ldc)
				} else {
					gemmPanelT(tier, mcb, ncb, kcb, ablk, ldab, bp, ldbp, c[ic*ldc+jc:], ldc)
				}
				if last && ep != nil {
					applyEpilogue(mcb, ncb, c[ic*ldc+jc:], ldc, ep, rowOff+ic, colOff+jc)
				}
			}
		}
	}
}

// gemmPanelT routes one micro-panel to the requested tier's kernel family:
// the exact tier's AVX/scalar pair (gemmPanel) or the fast tiers' fused
// FMA/math.FMA pair (gemmPanelFMA — TierF32 lands here too when its operands
// are plain f64, i.e. any unpacked product, where f32 adds nothing over fma).
// It also counts the vector-vs-scalar decision per tier; both kernel
// families share the vecMinCols narrow-panel threshold, so the counters
// mirror the dispatch exactly.
func gemmPanelT(tier EngineTier, rows, ncb, kcb int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if tier == TierExact {
		if useAVX && ncb >= vecMinCols {
			kernelVectorCount[TierExact].Add(1)
		} else {
			kernelScalarCount[TierExact].Add(1)
		}
		gemmPanel(rows, ncb, kcb, a, lda, b, ldb, c, ldc)
		return
	}
	if useFMA && ncb >= vecMinCols {
		kernelVectorCount[tier].Add(1)
	} else {
		kernelScalarCount[tier].Add(1)
	}
	gemmPanelFMA(rows, ncb, kcb, a, lda, b, ldb, c, ldc)
}

// gemmPanelAssignT is gemmPanelT for the β=0 first k-panel.
func gemmPanelAssignT(tier EngineTier, rows, ncb, kcb int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if tier == TierExact {
		if useAVX && ncb >= vecMinCols {
			kernelVectorCount[TierExact].Add(1)
		} else {
			kernelScalarCount[TierExact].Add(1)
		}
		gemmPanelAssign(rows, ncb, kcb, a, lda, b, ldb, c, ldc)
		return
	}
	if useFMA && ncb >= vecMinCols {
		kernelVectorCount[tier].Add(1)
	} else {
		kernelScalarCount[tier].Add(1)
	}
	gemmPanelAssignFMA(rows, ncb, kcb, a, lda, b, ldb, c, ldc)
}

// gemmPanel is the 2×4 axpy micro-kernel: C[rows×ncb] += A[rows×kcb] ·
// B[kcb×ncb], walking two C rows per pass over four B rows, so each loaded
// B value feeds four independent multiply-adds (sixteen flops per four B
// loads) and the B panel is streamed only ⌈rows/2⌉ times. Per-element
// accumulation order is the same as a one-row sweep — k-quads ascending —
// so results are bit-identical to the rank-4 kernel this replaces.
func gemmPanel(rows, ncb, kcb int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if useAVX && ncb >= vecMinCols {
		gemmPanelAVX(rows, ncb, kcb, a, lda, b, ldb, c, ldc)
		return
	}
	i := 0
	for ; i+2 <= rows; i += 2 {
		ai0 := a[i*lda : i*lda+kcb]
		ai1 := a[(i+1)*lda : (i+1)*lda+kcb]
		ci0 := c[i*ldc : i*ldc+ncb]
		ci1 := c[(i+1)*ldc : (i+1)*ldc+ncb]
		p := 0
		for ; p+4 <= kcb; p += 4 {
			a00, a01, a02, a03 := ai0[p], ai0[p+1], ai0[p+2], ai0[p+3]
			a10, a11, a12, a13 := ai1[p], ai1[p+1], ai1[p+2], ai1[p+3]
			b0 := b[p*ldb : p*ldb+ncb]
			b1 := b[(p+1)*ldb : (p+1)*ldb+ncb]
			b2 := b[(p+2)*ldb : (p+2)*ldb+ncb]
			b3 := b[(p+3)*ldb : (p+3)*ldb+ncb]
			for j, bv := range b0 {
				b1v, b2v, b3v := b1[j], b2[j], b3[j]
				ci0[j] += a00*bv + a01*b1v + a02*b2v + a03*b3v
				ci1[j] += a10*bv + a11*b1v + a12*b2v + a13*b3v
			}
		}
		for ; p < kcb; p++ {
			a0v, a1v := ai0[p], ai1[p]
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci0[j] += a0v * bv
				ci1[j] += a1v * bv
			}
		}
	}
	if i < rows {
		gemmPanelRow(ncb, kcb, a[i*lda:i*lda+kcb], b, ldb, c[i*ldc:i*ldc+ncb])
	}
}

// gemmPanelRow is the single-row tail of gemmPanel (the original rank-4
// sweep over one C row).
func gemmPanelRow(ncb, kcb int, ai []float64, b []float64, ldb int, ci []float64) {
	p := 0
	for ; p+4 <= kcb; p += 4 {
		a0, a1, a2, a3 := ai[p], ai[p+1], ai[p+2], ai[p+3]
		b0 := b[p*ldb : p*ldb+ncb]
		b1 := b[(p+1)*ldb : (p+1)*ldb+ncb]
		b2 := b[(p+2)*ldb : (p+2)*ldb+ncb]
		b3 := b[(p+3)*ldb : (p+3)*ldb+ncb]
		for j, bv := range b0 {
			ci[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
		}
	}
	for ; p < kcb; p++ {
		av := ai[p]
		bp := b[p*ldb : p*ldb+ncb]
		for j, bv := range bp {
			ci[j] += av * bv
		}
	}
}

// gemmPanelAssign is gemmPanel with β=0: the first k-group of each C row
// pair assigns instead of accumulating, and the remaining k-groups
// accumulate exactly as gemmPanel does. Grouping and order match gemmPanel,
// so the result is bit-compatible with running gemmPanel on a zeroed C.
func gemmPanelAssign(rows, ncb, kcb int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if useAVX && ncb >= vecMinCols {
		gemmPanelAssignAVX(rows, ncb, kcb, a, lda, b, ldb, c, ldc)
		return
	}
	i := 0
	for ; i+2 <= rows; i += 2 {
		ai0 := a[i*lda : i*lda+kcb]
		ai1 := a[(i+1)*lda : (i+1)*lda+kcb]
		ci0 := c[i*ldc : i*ldc+ncb]
		ci1 := c[(i+1)*ldc : (i+1)*ldc+ncb]
		p := 0
		if kcb >= 4 {
			a00, a01, a02, a03 := ai0[0], ai0[1], ai0[2], ai0[3]
			a10, a11, a12, a13 := ai1[0], ai1[1], ai1[2], ai1[3]
			b0 := b[0:ncb]
			b1 := b[ldb : ldb+ncb]
			b2 := b[2*ldb : 2*ldb+ncb]
			b3 := b[3*ldb : 3*ldb+ncb]
			for j, bv := range b0 {
				b1v, b2v, b3v := b1[j], b2[j], b3[j]
				ci0[j] = a00*bv + a01*b1v + a02*b2v + a03*b3v
				ci1[j] = a10*bv + a11*b1v + a12*b2v + a13*b3v
			}
			p = 4
		} else {
			a0v, a1v := ai0[0], ai1[0]
			for j, bv := range b[0:ncb] {
				ci0[j] = a0v * bv
				ci1[j] = a1v * bv
			}
			p = 1
		}
		for ; p+4 <= kcb; p += 4 {
			a00, a01, a02, a03 := ai0[p], ai0[p+1], ai0[p+2], ai0[p+3]
			a10, a11, a12, a13 := ai1[p], ai1[p+1], ai1[p+2], ai1[p+3]
			b0 := b[p*ldb : p*ldb+ncb]
			b1 := b[(p+1)*ldb : (p+1)*ldb+ncb]
			b2 := b[(p+2)*ldb : (p+2)*ldb+ncb]
			b3 := b[(p+3)*ldb : (p+3)*ldb+ncb]
			for j, bv := range b0 {
				b1v, b2v, b3v := b1[j], b2[j], b3[j]
				ci0[j] += a00*bv + a01*b1v + a02*b2v + a03*b3v
				ci1[j] += a10*bv + a11*b1v + a12*b2v + a13*b3v
			}
		}
		for ; p < kcb; p++ {
			a0v, a1v := ai0[p], ai1[p]
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci0[j] += a0v * bv
				ci1[j] += a1v * bv
			}
		}
	}
	if i < rows {
		gemmPanelAssignRow(ncb, kcb, a[i*lda:i*lda+kcb], b, ldb, c[i*ldc:i*ldc+ncb])
	}
}

// gemmPanelAssignRow is the single-row tail of gemmPanelAssign.
func gemmPanelAssignRow(ncb, kcb int, ai []float64, b []float64, ldb int, ci []float64) {
	p := 0
	if kcb >= 4 {
		a0, a1, a2, a3 := ai[0], ai[1], ai[2], ai[3]
		b0 := b[0:ncb]
		b1 := b[ldb : ldb+ncb]
		b2 := b[2*ldb : 2*ldb+ncb]
		b3 := b[3*ldb : 3*ldb+ncb]
		for j, bv := range b0 {
			ci[j] = a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
		}
		p = 4
	} else {
		av := ai[0]
		for j, bv := range b[0:ncb] {
			ci[j] = av * bv
		}
		p = 1
	}
	for ; p+4 <= kcb; p += 4 {
		a0, a1, a2, a3 := ai[p], ai[p+1], ai[p+2], ai[p+3]
		b0 := b[p*ldb : p*ldb+ncb]
		b1 := b[(p+1)*ldb : (p+1)*ldb+ncb]
		b2 := b[(p+2)*ldb : (p+2)*ldb+ncb]
		b3 := b[(p+3)*ldb : (p+3)*ldb+ncb]
		for j, bv := range b0 {
			ci[j] += a0*bv + a1*b1[j] + a2*b2[j] + a3*b3[j]
		}
	}
	for ; p < kcb; p++ {
		av := ai[p]
		bp := b[p*ldb : p*ldb+ncb]
		for j, bv := range bp {
			ci[j] += av * bv
		}
	}
}

// applyEpilogue runs the fused post-GEMM transform over a rows×cols C tile
// whose top-left element sits at (rowOff, colOff) of the full product. The
// row affine is folded into one (scale, shift) pair per row; the common
// row-only cases get dedicated inner loops so conv epilogues never test
// per-element flags.
func applyEpilogue(rows, cols int, c []float64, ldc int, ep *Epilogue, rowOff, colOff int) {
	alpha := ep.Alpha
	if alpha == 0 {
		alpha = 1
	}
	var colScale, colShift []float64
	if ep.ColScale != nil {
		colScale = ep.ColScale[colOff : colOff+cols]
	}
	if ep.ColShift != nil {
		colShift = ep.ColShift[colOff : colOff+cols]
	}
	for i := 0; i < rows; i++ {
		scale, shift := alpha, 0.0
		if ep.RowScale != nil {
			scale *= ep.RowScale[rowOff+i]
		}
		if ep.RowShift != nil {
			shift = ep.RowShift[rowOff+i]
		}
		ci := c[i*ldc : i*ldc+cols]
		switch {
		case colScale == nil && colShift == nil && ep.ReLU:
			for j, v := range ci {
				v = scale*v + shift
				// !(v > 0) rather than v < 0 so NaN clamps to 0 exactly
				// like the standalone ReLU layer's v > 0 test.
				if !(v > 0) {
					v = 0
				}
				ci[j] = v
			}
		case colScale == nil && colShift == nil:
			if scale == 1 && shift == 0 {
				continue
			}
			for j, v := range ci {
				ci[j] = scale*v + shift
			}
		default:
			for j, v := range ci {
				v = scale*v + shift
				if colScale != nil {
					v *= colScale[j]
				}
				if colShift != nil {
					v += colShift[j]
				}
				if ep.ReLU && !(v > 0) {
					v = 0
				}
				ci[j] = v
			}
		}
	}
}

// packTrans writes dst[rows×cols] = src[r0:r0+cols, c0:c0+rows]ᵀ for a
// row-major src with stride ld, i.e. dst[i·cols+j] = src[(r0+j)·ld + c0+i].
// Reads run along src rows (contiguous); writes stride by cols, which the
// blocked caller keeps cache-sized.
func packTrans(dst []float64, rows, cols int, src []float64, ld, r0, c0 int) {
	for j := 0; j < cols; j++ {
		s := src[(r0+j)*ld+c0 : (r0+j)*ld+c0+rows]
		for i, v := range s {
			dst[i*cols+j] = v
		}
	}
}

// --- matrix–vector kernels ---

// MatVec computes y[m] += A[m×k] · x[k].
func MatVec(m, k int, a []float64, lda int, x, y []float64) {
	checkMat("MatVec A", m, k, lda, len(a))
	checkVec("MatVec x", k, len(x))
	checkVec("MatVec y", m, len(y))
	for i := 0; i < m; i++ {
		ai := a[i*lda : i*lda+k]
		s := 0.0
		for p, av := range ai {
			s += av * x[p]
		}
		y[i] += s
	}
}

// MatTVec computes y[k] += Aᵀ · x where A is stored as [m×k].
func MatTVec(m, k int, a []float64, lda int, x, y []float64) {
	checkMat("MatTVec A", m, k, lda, len(a))
	checkVec("MatTVec x", m, len(x))
	checkVec("MatTVec y", k, len(y))
	for i := 0; i < m; i++ {
		xv := x[i]
		if xv == 0 {
			continue
		}
		ai := a[i*lda : i*lda+k]
		for p, av := range ai {
			y[p] += xv * av
		}
	}
}

// OuterAcc computes A[m×k] += x[m] ⊗ y[k] (rank-1 update).
func OuterAcc(m, k int, a []float64, lda int, x, y []float64) {
	checkMat("OuterAcc A", m, k, lda, len(a))
	checkVec("OuterAcc x", m, len(x))
	checkVec("OuterAcc y", k, len(y))
	for i := 0; i < m; i++ {
		xv := x[i]
		if xv == 0 {
			continue
		}
		ai := a[i*lda : i*lda+k]
		for p, yv := range y[:k] {
			ai[p] += xv * yv
		}
	}
}

// checkMat validates that a rows×cols matrix with leading dimension ld fits
// inside a buffer of the given length.
func checkMat(name string, rows, cols, ld, length int) {
	if ld < cols {
		panic(fmt.Sprintf("tensor: %s leading dimension %d < cols %d", name, ld, cols))
	}
	if rows > 0 && (rows-1)*ld+cols > length {
		panic(fmt.Sprintf("tensor: %s buffer too short: need %d, have %d", name, (rows-1)*ld+cols, length))
	}
}

// checkVec validates that a vector operand holds at least n elements,
// reporting failures in the same style as checkMat.
func checkVec(name string, n, length int) {
	if n > length {
		panic(fmt.Sprintf("tensor: %s buffer too short: need %d, have %d", name, n, length))
	}
}
