package tensor

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Engine tiers. The exact tier is the engine the rest of the repo was built
// on: scalar-identical AVX mul/add kernels, f64 packed panels, results
// bit-reproducible against the pure-Go oracle. The fast tiers trade that
// bit-exactness for throughput under a documented accuracy budget:
//
//   - TierFMA keeps f64 operands and accumulation but contracts each
//     multiply-add of the quad-axpy into a fused multiply-add (VFMADD on
//     hardware, math.FMA in the scalar positions), halving the rounding
//     steps and the arithmetic latency chain. Deviation from the exact
//     engine is bounded by the dropped intermediate roundings — order 1e-16
//     relative per flop, observed ≤1e-12 relative through every serving
//     model, gated at 1e-9.
//   - TierF32 additionally stores immutable weight packs as float32 panels
//     with one f64 scale per panel (PackedMat32), halving pack bytes and
//     streamed weight traffic. Panels are widened back to f64 on load and
//     accumulation stays f64, so the error is one f32 quantization of the
//     weights — order 2^-24 relative, observed ≤1e-5 relative end to end,
//     gated at 1e-4.
//
// Both fast tiers are deterministic: every scalar position (k-tails, narrow
// panels, non-FMA hosts) uses math.FMA, which is correctly rounded even in
// software, so a fast-tier product is bit-stable across the vector/scalar
// dispatch boundary, GOMAXPROCS, and hosts. Only the exact tier is
// bit-identical to the pre-tier engine.

// EngineTier selects the kernel/pack family for a single GEMM call. The
// zero value is the exact tier, so untiered callers keep their old
// semantics.
type EngineTier uint8

const (
	// TierExact is the bit-reproducible f64 engine (default).
	TierExact EngineTier = iota
	// TierFMA uses fused multiply-add kernels over f64 operands.
	TierFMA
	// TierF32 adds float32 packed weight panels (widen-on-load) to the FMA
	// kernels; unpacked operands degrade gracefully to TierFMA semantics.
	TierF32

	// NumTiers bounds per-tier arrays (kernel counters, pack byte gauges).
	NumTiers = 3
)

// String returns the tier's config-file spelling ("exact", "fma", "f32").
func (t EngineTier) String() string {
	switch t {
	case TierExact:
		return "exact"
	case TierFMA:
		return "fma"
	case TierF32:
		return "f32"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// ParseTier parses a config spelling into an EngineTier. The empty string
// parses as TierExact so absent config keys need no special-casing.
func ParseTier(s string) (EngineTier, error) {
	switch s {
	case "", "exact":
		return TierExact, nil
	case "fma":
		return TierFMA, nil
	case "f32":
		return TierF32, nil
	}
	return TierExact, fmt.Errorf("tensor: unknown engine tier %q (want exact, fma, or f32)", s)
}

// TierFromEnv reads the MS_ENGINE_TIER environment variable and returns the
// requested tier, downgrading to TierExact when the variable is unset,
// unparsable, or names a fast tier on a host without FMA hardware (where the
// software-FMA fallback would be correct but slower than the exact engine —
// the opposite of what an opt-in fast tier promises). This is the default
// tier for new slicing.Shared instances, letting CI sweep the whole test
// suite per tier without code changes.
func TierFromEnv() EngineTier {
	t, err := ParseTier(os.Getenv("MS_ENGINE_TIER"))
	if err != nil || (t != TierExact && !useFMA) {
		return TierExact
	}
	return t
}

// HasAVX reports whether the exact tier's vector kernels are available.
func HasAVX() bool { return useAVX }

// HasFMA reports whether the fast tiers' fused kernels are available in
// hardware. Fast tiers still run without it (math.FMA software fallback,
// same bits) but lose their speed advantage.
func HasFMA() bool { return useFMA }

// Per-tier kernel dispatch counters, indexed by EngineTier. One count per
// micro-panel dispatch decision (a 256×256-bounded tile of C), not per asm
// call — the granularity at which the vector-vs-scalar choice is made.
var (
	kernelVectorCount [NumTiers]atomic.Int64
	kernelScalarCount [NumTiers]atomic.Int64
)

// KernelCounters is the per-tier slice of the engine's dispatch counters.
type KernelCounters struct {
	// Vector counts micro-panel dispatches that took the tier's vector
	// kernel (AVX for exact, FMA for the fast tiers).
	Vector int64
	// Scalar counts dispatches that stayed on the pure-Go loops: narrow
	// panels (below vecMinCols) and hosts without the needed ISA.
	Scalar int64
}
