package tensor

// Im2Col unrolls one image of shape [channels, h, w] (row-major in src) into
// a column matrix col of shape [(channels*kh*kw) × (outH*outW)], so that a
// convolution becomes a single GEMM with the kernel matrix
// [outChannels × (channels*kh*kw)].
//
// Slicing-aware layers pass only the active prefix of channels; src must hold
// at least channels*h*w values and col at least channels*kh*kw*outH*outW.
func Im2Col(src []float64, channels, h, w, kh, kw, stride, pad int, col []float64) (outH, outW int) {
	outH = (h+2*pad-kh)/stride + 1
	outW = (w+2*pad-kw)/stride + 1
	spatial := outH * outW
	idx := 0
	for c := 0; c < channels; c++ {
		plane := src[c*h*w : (c+1)*h*w]
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ki
					rowBase := idx*spatial + oy*outW
					if iy < 0 || iy >= h {
						for ox := 0; ox < outW; ox++ {
							col[rowBase+ox] = 0
						}
						continue
					}
					srcRow := plane[iy*w : (iy+1)*w]
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride - pad + kj
						if ix < 0 || ix >= w {
							col[rowBase+ox] = 0
						} else {
							col[rowBase+ox] = srcRow[ix]
						}
					}
				}
				idx++
			}
		}
	}
	return outH, outW
}

// Col2Im is the adjoint of Im2Col: it scatter-adds the column matrix back
// into an image gradient of shape [channels, h, w]. dst is accumulated into,
// not overwritten.
func Col2Im(col []float64, channels, h, w, kh, kw, stride, pad int, dst []float64) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	spatial := outH * outW
	idx := 0
	for c := 0; c < channels; c++ {
		plane := dst[c*h*w : (c+1)*h*w]
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ki
					if iy < 0 || iy >= h {
						continue
					}
					rowBase := idx*spatial + oy*outW
					dstRow := plane[iy*w : (iy+1)*w]
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride - pad + kj
						if ix < 0 || ix >= w {
							continue
						}
						dstRow[ix] += col[rowBase+ox]
					}
				}
				idx++
			}
		}
	}
}

// ConvOutSize returns the spatial output size of a convolution/pooling with
// the given input size, kernel, stride and padding.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}
