package tensor

// Im2Col unrolls one image of shape [channels, h, w] (row-major in src) into
// a column matrix col of shape [(channels*kh*kw) × (outH*outW)], so that a
// convolution becomes a single GEMM with the kernel matrix
// [outChannels × (channels*kh*kw)].
//
// Slicing-aware layers pass only the active prefix of channels; src must hold
// at least channels*h*w values and col at least channels*kh*kw*outH*outW.
func Im2Col(src []float64, channels, h, w, kh, kw, stride, pad int, col []float64) (outH, outW int) {
	outH = (h+2*pad-kh)/stride + 1
	outW = (w+2*pad-kw)/stride + 1
	Im2ColInto(src, channels, h, w, kh, kw, stride, pad, col, outH*outW, 0)
	return outH, outW
}

// Im2ColInto unrolls one image into columns [colOff, colOff+outH·outW) of a
// wider column matrix whose row stride is ldcol. Packing a whole batch side
// by side (one sample per column band, ldcol = batch·outH·outW) turns the
// per-sample convolution GEMMs into a single wide product over
// [channels·kh·kw × batch·outH·outW] — wide enough for the blocked engine's
// panel reuse and goroutine fan-out to engage on shapes whose per-sample
// spatial extent is too small. Every element of the band is written
// (padding taps included), so the destination may be uninitialized.
func Im2ColInto(src []float64, channels, h, w, kh, kw, stride, pad int, col []float64, ldcol, colOff int) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	// For a fixed kernel tap kj, the in-range output columns are those with
	// 0 ≤ ox·stride − pad + kj < w; hoisting that interval out of the inner
	// loop replaces the per-element bounds test with two zero fills and one
	// contiguous copy (stride 1) or a branch-free gather (stride > 1).
	idx := 0
	for c := 0; c < channels; c++ {
		plane := src[c*h*w : (c+1)*h*w]
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				// ox ∈ [lo, hi) reads inside the row; outside is padding.
				// Both bounds clamp to outW: a kernel tap whose reach
				// exceeds the padded row (kw > w+pad) is padding at every
				// output column.
				lo := 0
				if pad > kj {
					lo = min((pad-kj+stride-1)/stride, outW)
				}
				hi := 0
				if last := w - 1 + pad - kj; last >= 0 {
					hi = min(last/stride, outW-1) + 1
				}
				if hi < lo {
					hi = lo
				}
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ki
					rowBase := idx*ldcol + colOff + oy*outW
					dst := col[rowBase : rowBase+outW]
					if iy < 0 || iy >= h {
						for j := range dst {
							dst[j] = 0
						}
						continue
					}
					srcRow := plane[iy*w : (iy+1)*w]
					for ox := 0; ox < lo; ox++ {
						dst[ox] = 0
					}
					if hi <= lo {
						// No in-range columns for this tap (kernel reach
						// beyond the padded row): nothing to copy, and
						// lo-pad+kj may be negative.
					} else if stride == 1 {
						ix0 := lo - pad + kj
						copy(dst[lo:hi], srcRow[ix0:ix0+hi-lo])
					} else {
						for ox := lo; ox < hi; ox++ {
							dst[ox] = srcRow[ox*stride-pad+kj]
						}
					}
					for ox := hi; ox < outW; ox++ {
						dst[ox] = 0
					}
				}
				idx++
			}
		}
	}
}

// Col2Im is the adjoint of Im2Col: it scatter-adds the column matrix back
// into an image gradient of shape [channels, h, w]. dst is accumulated into,
// not overwritten.
func Col2Im(col []float64, channels, h, w, kh, kw, stride, pad int, dst []float64) {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	spatial := outH * outW
	idx := 0
	for c := 0; c < channels; c++ {
		plane := dst[c*h*w : (c+1)*h*w]
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ki
					if iy < 0 || iy >= h {
						continue
					}
					rowBase := idx*spatial + oy*outW
					dstRow := plane[iy*w : (iy+1)*w]
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride - pad + kj
						if ix < 0 || ix >= w {
							continue
						}
						dstRow[ix] += col[rowBase+ox]
					}
				}
				idx++
			}
		}
	}
}

// ConvOutSize returns the spatial output size of a convolution/pooling with
// the given input size, kernel, stride and padding.
func ConvOutSize(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}
