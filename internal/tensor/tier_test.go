package tensor

import (
	"math"
	"math/rand"
	"testing"
)

// Accuracy gates for the fast tiers at the kernel level, pinned empirically
// (see DESIGN.md §12): measured deviations sit 3+ orders of magnitude below
// these, so a regression that breaks the tier contract trips loudly.
const (
	fmaKernelTol = 1e-9 // fma vs exact, relative to max|C|
	f32KernelTol = 1e-4 // f32 packs vs exact, relative to max|C|
)

func TestTierParseAndString(t *testing.T) {
	for _, tc := range []struct {
		s    string
		want EngineTier
	}{{"", TierExact}, {"exact", TierExact}, {"fma", TierFMA}, {"f32", TierF32}} {
		got, err := ParseTier(tc.s)
		if err != nil || got != tc.want {
			t.Fatalf("ParseTier(%q) = %v, %v; want %v", tc.s, got, err, tc.want)
		}
	}
	if _, err := ParseTier("int8"); err == nil {
		t.Fatal("ParseTier accepted an unknown tier")
	}
	for tier, want := range map[EngineTier]string{TierExact: "exact", TierFMA: "fma", TierF32: "f32"} {
		if tier.String() != want {
			t.Fatalf("String() = %q, want %q", tier.String(), want)
		}
	}
}

func TestTierFromEnv(t *testing.T) {
	cases := map[string]EngineTier{"": TierExact, "exact": TierExact, "nonsense": TierExact}
	if HasFMA() {
		cases["fma"] = TierFMA
		cases["f32"] = TierF32
	} else {
		// Fast tiers downgrade on non-FMA hosts: software math.FMA would be
		// correct but slower than the exact engine.
		cases["fma"] = TierExact
		cases["f32"] = TierExact
	}
	for env, want := range cases {
		t.Setenv("MS_ENGINE_TIER", env)
		if got := TierFromEnv(); got != want {
			t.Fatalf("MS_ENGINE_TIER=%q: TierFromEnv() = %v, want %v", env, got, want)
		}
	}
}

// tierShapes mirrors the kernel-flip test's sweep: shapes on both sides of
// every dispatch boundary (narrow panels, ragged tiles, multiple k panels,
// the parallel threshold), plus strided operands.
var tierShapes = []struct{ m, n, k, pad int }{
	{1, 1, 1, 0},
	{2, 8, 4, 0},
	{16, 7, 30, 0}, // below vecMinCols: scalar either way
	{5, 9, 11, 3},
	{31, 33, 29, 5},
	{65, 67, 63, 1},
	{40, 300, 20, 2},   // crosses the nc tile boundary
	{64, 64, 300, 0},   // multiple kc panels
	{130, 130, 130, 7}, // above the parallel threshold
}

// TestFastTierFlipBitIdentical pins the fast tiers' determinism contract:
// flipping useFMA (vector kernels vs math.FMA scalar loops) must not change
// a single bit, for both f64 operands and f32 packs, across shapes, strides,
// and every epilogue combination. This is what lets one tolerance, measured
// once, stand for every host and GOMAXPROCS.
func TestFastTierFlipBitIdentical(t *testing.T) {
	if !useFMA {
		t.Skip("host has no FMA: only the scalar path exists, nothing to flip")
	}
	rng := rand.New(rand.NewSource(23))
	for _, s := range tierShapes {
		lda, ldb, ldc := s.k+s.pad, s.n+s.pad, s.n+s.pad
		ldbT := s.k + s.pad // GemmTB orientation: B stored [n×k]
		a := make([]float64, s.m*lda+8)
		b := make([]float64, s.k*ldb+8)
		bt := make([]float64, s.n*ldbT+8)
		fillRand(rng, a)
		fillRand(rng, b)
		fillRand(rng, bt)
		ep := epilogueCase(rng, rng.Intn(64), s.m, s.n)
		ptb := PackTB32(s.n, s.k, bt, ldbT)
		pa := PackA32(s.m, s.k, a, lda)

		type op struct {
			name string
			run  func(c []float64)
		}
		ops := []op{
			{"GemmT/fma", func(c []float64) { GemmT(TierFMA, s.m, s.n, s.k, a, lda, b, ldb, c, ldc) }},
			{"GemmExT/fma", func(c []float64) { GemmExT(TierFMA, s.m, s.n, s.k, a, lda, b, ldb, c, ldc, ep) }},
			{"GemmTBExT/fma", func(c []float64) { GemmTBExT(TierFMA, s.m, s.n, s.k, a, lda, bt, ldbT, c, ldc, ep) }},
			{"GemmTBPackedExT/f32", func(c []float64) {
				GemmTBPackedExT(TierF32, s.m, s.n, s.k, a, lda, ptb, c, ldc, ep)
			}},
			{"GemmPackedExT/f32", func(c []float64) {
				GemmPackedExT(TierF32, s.m, s.n, s.k, pa, b, ldb, c, ldc, ep)
			}},
		}
		for _, o := range ops {
			vec := make([]float64, s.m*ldc+8)
			scl := make([]float64, len(vec))
			fillRand(rng, vec)
			copy(scl, vec)
			o.run(vec)
			useFMA = false
			o.run(scl)
			useFMA = true
			for i := range vec {
				if math.Float64bits(vec[i]) != math.Float64bits(scl[i]) {
					t.Fatalf("%s m=%d n=%d k=%d pad=%d: vector/scalar diverge at %d: %g vs %g",
						o.name, s.m, s.n, s.k, s.pad, i, vec[i], scl[i])
				}
			}
		}
	}
}

// tierMaxRel returns max|got-want| / max|want| over the m×n region.
func tierMaxRel(m, n, ldc int, got, want []float64) float64 {
	maxD, maxW := 0.0, 0.0
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			maxD = math.Max(maxD, math.Abs(got[i*ldc+j]-want[i*ldc+j]))
			maxW = math.Max(maxW, math.Abs(want[i*ldc+j]))
		}
	}
	if maxW == 0 {
		return maxD
	}
	return maxD / maxW
}

// TestFMATierToleranceVsExact property-tests the fma tier against the exact
// scalar oracle over random shapes, strides, and all 2^6 epilogue masks.
func TestFMATierToleranceVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for _, s := range tierShapes {
		for mask := 0; mask < 64; mask++ {
			m, n, k := s.m, s.n, s.k
			lda, ldb, ldc := k+s.pad, n+s.pad, n+s.pad
			a := make([]float64, m*lda+4)
			b := make([]float64, k*ldb+4)
			fillRand(rng, a)
			fillRand(rng, b)
			ep := epilogueCase(rng, mask, m, n)
			want := make([]float64, m*ldc+4)
			got := make([]float64, len(want))
			GemmEx(m, n, k, a, lda, b, ldb, want, ldc, ep)
			GemmExT(TierFMA, m, n, k, a, lda, b, ldb, got, ldc, ep)
			if rel := tierMaxRel(m, n, ldc, got, want); rel > fmaKernelTol {
				t.Fatalf("fma tier m=%d n=%d k=%d mask=%d: rel error %.3g > %g", m, n, k, mask, rel, fmaKernelTol)
			}
		}
	}
}

// TestF32TierToleranceVsExact property-tests the f32 packed paths (both
// orientations) against the exact oracle, including shapes whose tiles cross
// the per-panel scale boundaries.
func TestF32TierToleranceVsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, s := range tierShapes {
		for _, mask := range []int{0, 7, 21, 42, 63, rng.Intn(64)} {
			m, n, k := s.m, s.n, s.k
			lda, ldc := k+s.pad, n+s.pad
			ldbT := k + s.pad
			ldb := n + s.pad
			a := make([]float64, m*lda+4)
			bt := make([]float64, n*ldbT+4)
			b := make([]float64, k*ldb+4)
			fillRand(rng, a)
			fillRand(rng, bt)
			fillRand(rng, b)
			ep := epilogueCase(rng, mask, m, n)

			// Dense orientation: A · Bᵀ with a PackTB32 right operand.
			want := make([]float64, m*ldc+4)
			got := make([]float64, len(want))
			GemmEx(m, n, k, a, lda, transposeTB(n, k, bt, ldbT), n, want, ldc, ep)
			GemmTBPackedExT(TierF32, m, n, k, a, lda, PackTB32(n, k, bt, ldbT), got, ldc, ep)
			if rel := tierMaxRel(m, n, ldc, got, want); rel > f32KernelTol {
				t.Fatalf("f32 TB m=%d n=%d k=%d mask=%d: rel error %.3g > %g", m, n, k, mask, rel, f32KernelTol)
			}

			// Conv orientation: A · B with a PackA32 left operand.
			want2 := make([]float64, m*ldc+4)
			got2 := make([]float64, len(want2))
			GemmEx(m, n, k, a, lda, b, ldb, want2, ldc, ep)
			GemmPackedExT(TierF32, m, n, k, PackA32(m, k, a, lda), b, ldb, got2, ldc, ep)
			if rel := tierMaxRel(m, n, ldc, got2, want2); rel > f32KernelTol {
				t.Fatalf("f32 A m=%d n=%d k=%d mask=%d: rel error %.3g > %g", m, n, k, mask, rel, f32KernelTol)
			}
		}
	}
}

// transposeTB materializes Bᵀ[k×n] from a [n×k]-stored operand so the exact
// GemmEx oracle can consume it.
func transposeTB(n, k int, b []float64, ldb int) []float64 {
	bt := make([]float64, k*n)
	for j := 0; j < n; j++ {
		for p := 0; p < k; p++ {
			bt[p*n+j] = b[j*ldb+p]
		}
	}
	return bt
}

// TestPack32RoundTrip verifies the per-panel scale layout: every element of
// both pack orientations must reconstruct to its source within one float32
// quantization (plus the scale division's f64 rounding).
func TestPack32RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const tol = 1.3e-7 // 2^-24 (f32) + 2^-53 (divide), with headroom
	n, k := 300, 270   // crosses both the nc and kc panel boundaries
	w := make([]float64, n*k)
	fillRand(rng, w)
	// Magnitude spread across tiles: per-panel scales must track it.
	for i := range w {
		if i%3 == 0 {
			w[i] *= 1e6
		}
	}
	ptb := PackTB32(n, k, w, k)
	nJc := (n + ncBlock - 1) / ncBlock
	for j := 0; j < n; j++ {
		for p := 0; p < k; p++ {
			pc := p / kcBlock * kcBlock
			jc := j / ncBlock * ncBlock
			kcb := min(kcBlock, k-pc)
			ncb := min(ncBlock, n-jc)
			s := ptb.scales[(pc/kcBlock)*nJc+jc/ncBlock]
			got := float64(ptb.data[pc*n+kcb*jc+(p-pc)*ncb+(j-jc)]) * s
			if d := math.Abs(got - w[j*k+p]); d > tol*math.Max(math.Abs(w[j*k+p]), s*1e-10) {
				t.Fatalf("PackTB32 [%d,%d]: got %g want %g (scale %g)", j, p, got, w[j*k+p], s)
			}
		}
	}
	m := 130
	aw := make([]float64, m*k)
	fillRand(rng, aw)
	pa := PackA32(m, k, aw, k)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			pc := p / kcBlock * kcBlock
			kcb := min(kcBlock, k-pc)
			s := pa.scales[pc/kcBlock]
			got := float64(pa.data[m*pc+i*kcb+(p-pc)]) * s
			if d := math.Abs(got - aw[i*k+p]); d > tol*math.Max(math.Abs(aw[i*k+p]), s*1e-10) {
				t.Fatalf("PackA32 [%d,%d]: got %g want %g (scale %g)", i, p, got, aw[i*k+p], s)
			}
		}
	}
	if ptb.Bytes() >= PackTB(n, k, w, k).Bytes()*3/4 {
		t.Fatalf("PackTB32 bytes %d not ~half of PackTB %d", ptb.Bytes(), PackTB(n, k, w, k).Bytes())
	}
}

// TestNarrowPanelTakesScalarPath is the regression test for the shared
// narrow-panel threshold: a 7-column panel (below vecMinCols) must take the
// scalar path under the exact, fma, and f32 tiers alike, and a wide panel
// must take the vector path wherever the hardware allows it.
func TestNarrowPanelTakesScalarPath(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	m, n, k := 16, 7, 30
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	bt := make([]float64, n*k)
	fillRand(rng, a)
	fillRand(rng, b)
	fillRand(rng, bt)
	c := make([]float64, m*n)

	delta := func(run func()) [NumTiers]KernelCounters {
		before := GemmStats().Kernels
		run()
		after := GemmStats().Kernels
		var d [NumTiers]KernelCounters
		for i := range d {
			d[i] = KernelCounters{Vector: after[i].Vector - before[i].Vector, Scalar: after[i].Scalar - before[i].Scalar}
		}
		return d
	}

	for _, tier := range []EngineTier{TierExact, TierFMA} {
		d := delta(func() { GemmT(tier, m, n, k, a, k, b, n, c, n) })
		if d[tier].Scalar == 0 || d[tier].Vector != 0 {
			t.Fatalf("tier %v, 7-column panel: kernel deltas %+v, want scalar>0 vector=0", tier, d)
		}
	}
	d := delta(func() { GemmTBPackedExT(TierF32, m, n, k, a, k, PackTB32(n, k, bt, k), c, n, nil) })
	if d[TierF32].Scalar == 0 || d[TierF32].Vector != 0 {
		t.Fatalf("tier f32, 7-column panel: kernel deltas %+v, want scalar>0 vector=0", d)
	}

	// Wide panels engage the vector kernels when the hardware has them.
	wn := 64
	wb := make([]float64, k*wn)
	wbt := make([]float64, wn*k)
	fillRand(rng, wb)
	fillRand(rng, wbt)
	wc := make([]float64, m*wn)
	if HasAVX() {
		if d := delta(func() { GemmT(TierExact, m, wn, k, a, k, wb, wn, wc, wn) }); d[TierExact].Vector == 0 {
			t.Fatalf("exact tier, wide panel: kernel deltas %+v, want vector>0", d)
		}
	}
	if HasFMA() {
		if d := delta(func() { GemmT(TierFMA, m, wn, k, a, k, wb, wn, wc, wn) }); d[TierFMA].Vector == 0 {
			t.Fatalf("fma tier, wide panel: kernel deltas %+v, want vector>0", d)
		}
		if d := delta(func() {
			GemmTBPackedExT(TierF32, m, wn, k, a, k, PackTB32(wn, k, wbt, k), wc, wn, nil)
		}); d[TierF32].Vector == 0 {
			t.Fatalf("f32 tier, wide panel: kernel deltas %+v, want vector>0", d)
		}
	}
}

// TestFastTierZeroAlloc pins the steady-state allocation contract of the
// fast-tier entry points: like the exact packed paths, they must not
// allocate per call.
func TestFastTierZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops items by design; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(43))
	m, n, k := 64, 64, 64 // blocked, below the parallel threshold
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	bt := make([]float64, n*k)
	fillRand(rng, a)
	fillRand(rng, b)
	fillRand(rng, bt)
	c := make([]float64, m*n)
	ep := &Epilogue{RowShift: make([]float64, m), ReLU: true}
	ptb := PackTB32(n, k, bt, k)
	pa := PackA32(m, k, a, k)

	for name, fn := range map[string]func(){
		"GemmExT/fma":         func() { GemmExT(TierFMA, m, n, k, a, k, b, n, c, n, ep) },
		"GemmTBPackedExT/f32": func() { GemmTBPackedExT(TierF32, m, n, k, a, k, ptb, c, n, ep) },
		"GemmPackedExT/f32":   func() { GemmPackedExT(TierF32, m, n, k, pa, b, n, c, n, ep) },
	} {
		if allocs := testing.AllocsPerRun(10, fn); allocs != 0 {
			t.Fatalf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}
