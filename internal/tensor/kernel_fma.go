package tensor

import "math"

// Fast-tier panel loops. Every multiply-add here is contracted — acc =
// fma(a, b, acc), one rounding per step, chain strictly in ascending k order.
// That chain is what the VFMADD asm kernels and math.FMA both evaluate, so
// unlike the exact tier (where the vector kernel must copy the scalar
// expression tree verbatim), the fast tiers are bit-identical across every
// dispatch boundary by construction: a fused chain has no grouping freedom.
//
// The main body of each panel runs on the C-resident 4×8 dot kernel
// (fmaDot4x8 of kernel_fma_amd64.s): eight YMM accumulators carry four C
// rows × eight columns across the whole kcb panel, so C is touched once per
// panel instead of once per k-quad and each B row streams once per four C
// rows. Row tails (rows % 4) and column tails (ncb % 8) fall back to the
// 2×4 quad-axpy kernels, and the scalar fallbacks walk k one step at a time
// with math.FMA — all three produce the same bits, because per element they
// evaluate the same ascending fused chain. (The scalar fallbacks are also
// slow: math.FMA without FMA hardware goes through a software double-double
// path. TierFromEnv refuses to default to a fast tier on such hosts;
// explicit SetTier callers get correct, slower results.)
//
// The F32 panel loops consume float32 operands: values are widened to f64
// (exact) on load and the pack's per-panel scale is folded into the
// broadcast operand with one f64 multiply before the chain, so the
// accumulation arithmetic is identical to the f64 FMA path on pre-scaled
// operands. For the 4×8 kernel the fold happens once per four A rows, into
// stack panels reused across the whole ncb sweep.

// gemmPanelFMA is the fast-tier form of gemmPanel: C[rows×ncb] +=
// A[rows×kcb] · B[kcb×ncb] with fused multiply-adds.
func gemmPanelFMA(rows, ncb, kcb int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if !(useFMA && ncb >= vecMinCols) {
		gemmPanelFMAScalar(rows, ncb, kcb, a, lda, b, ldb, c, ldc)
		return
	}
	i := 0
	for ; i+4 <= rows; i += 4 {
		a0 := a[i*lda : i*lda+kcb]
		a1 := a[(i+1)*lda : (i+1)*lda+kcb]
		a2 := a[(i+2)*lda : (i+2)*lda+kcb]
		a3 := a[(i+3)*lda : (i+3)*lda+kcb]
		ci := i * ldc
		j := 0
		for ; j+8 <= ncb; j += 8 {
			fmaDot4x8(kcb, a0, a1, a2, a3, b[j:], ldb,
				c[ci+j:ci+j+8], c[ci+ldc+j:ci+ldc+j+8],
				c[ci+2*ldc+j:ci+2*ldc+j+8], c[ci+3*ldc+j:ci+3*ldc+j+8])
		}
		if j < ncb {
			gemmPanelFMAAxpy(4, ncb-j, kcb, a[i*lda:], lda, b[j:], ldb, c[ci+j:], ldc)
		}
	}
	if i < rows {
		gemmPanelFMAAxpy(rows-i, ncb, kcb, a[i*lda:], lda, b, ldb, c[i*ldc:], ldc)
	}
}

// gemmPanelFMAAxpy is the quad-axpy tail path of gemmPanelFMA: the 2×4
// kernels of the original fast-tier loop, serving the row and column ranges
// the 4×8 dot kernel cannot tile. Same ascending-k fused chain per element,
// so mixing the two inside one panel keeps every element bit-identical.
func gemmPanelFMAAxpy(rows, ncb, kcb int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	i := 0
	for ; i+2 <= rows; i += 2 {
		ai0 := a[i*lda : i*lda+kcb]
		ai1 := a[(i+1)*lda : (i+1)*lda+kcb]
		ci0 := c[i*ldc : i*ldc+ncb]
		ci1 := c[(i+1)*ldc : (i+1)*ldc+ncb]
		p := 0
		for ; p+4 <= kcb; p += 4 {
			axpyQuad2FMA(ci0, ci1,
				b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
				b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
				ai0[p:p+4], ai1[p:p+4])
		}
		for ; p < kcb; p++ {
			a0v, a1v := ai0[p], ai1[p]
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci0[j] = math.FMA(a0v, bv, ci0[j])
				ci1[j] = math.FMA(a1v, bv, ci1[j])
			}
		}
	}
	if i < rows {
		ai := a[i*lda : i*lda+kcb]
		ci := c[i*ldc : i*ldc+ncb]
		p := 0
		for ; p+4 <= kcb; p += 4 {
			axpyQuad1FMA(ci,
				b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
				b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
				ai[p:p+4])
		}
		for ; p < kcb; p++ {
			av := ai[p]
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci[j] = math.FMA(av, bv, ci[j])
			}
		}
	}
}

// gemmPanelFMAScalar is the pure-Go fallback of gemmPanelFMA: the same fused
// ascending-k chain per element, via math.FMA.
func gemmPanelFMAScalar(rows, ncb, kcb int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < rows; i++ {
		ai := a[i*lda : i*lda+kcb]
		ci := c[i*ldc : i*ldc+ncb]
		for p, av := range ai {
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci[j] = math.FMA(av, bv, ci[j])
			}
		}
	}
}

// gemmPanelAssignFMA is gemmPanelFMA with β=0: each element's chain seeds
// with a·b at k=0 (one rounding, no C load) and fuses from k=1 on.
func gemmPanelAssignFMA(rows, ncb, kcb int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if !(useFMA && ncb >= vecMinCols) {
		gemmPanelAssignFMAScalar(rows, ncb, kcb, a, lda, b, ldb, c, ldc)
		return
	}
	i := 0
	for ; i+4 <= rows; i += 4 {
		a0 := a[i*lda : i*lda+kcb]
		a1 := a[(i+1)*lda : (i+1)*lda+kcb]
		a2 := a[(i+2)*lda : (i+2)*lda+kcb]
		a3 := a[(i+3)*lda : (i+3)*lda+kcb]
		ci := i * ldc
		j := 0
		for ; j+8 <= ncb; j += 8 {
			fmaDot4x8Assign(kcb, a0, a1, a2, a3, b[j:], ldb,
				c[ci+j:ci+j+8], c[ci+ldc+j:ci+ldc+j+8],
				c[ci+2*ldc+j:ci+2*ldc+j+8], c[ci+3*ldc+j:ci+3*ldc+j+8])
		}
		if j < ncb {
			gemmPanelAssignFMAAxpy(4, ncb-j, kcb, a[i*lda:], lda, b[j:], ldb, c[ci+j:], ldc)
		}
	}
	if i < rows {
		gemmPanelAssignFMAAxpy(rows-i, ncb, kcb, a[i*lda:], lda, b, ldb, c[i*ldc:], ldc)
	}
}

// gemmPanelAssignFMAAxpy is the quad-axpy tail path of gemmPanelAssignFMA.
func gemmPanelAssignFMAAxpy(rows, ncb, kcb int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	i := 0
	for ; i+2 <= rows; i += 2 {
		ai0 := a[i*lda : i*lda+kcb]
		ai1 := a[(i+1)*lda : (i+1)*lda+kcb]
		ci0 := c[i*ldc : i*ldc+ncb]
		ci1 := c[(i+1)*ldc : (i+1)*ldc+ncb]
		p := 0
		if kcb >= 4 {
			axpyQuad2AssignFMA(ci0, ci1,
				b[0:ncb], b[ldb:ldb+ncb], b[2*ldb:2*ldb+ncb], b[3*ldb:3*ldb+ncb],
				ai0[0:4], ai1[0:4])
			p = 4
		} else {
			a0v, a1v := ai0[0], ai1[0]
			for j, bv := range b[0:ncb] {
				ci0[j] = a0v * bv
				ci1[j] = a1v * bv
			}
			p = 1
		}
		for ; p+4 <= kcb; p += 4 {
			axpyQuad2FMA(ci0, ci1,
				b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
				b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
				ai0[p:p+4], ai1[p:p+4])
		}
		for ; p < kcb; p++ {
			a0v, a1v := ai0[p], ai1[p]
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci0[j] = math.FMA(a0v, bv, ci0[j])
				ci1[j] = math.FMA(a1v, bv, ci1[j])
			}
		}
	}
	if i < rows {
		ai := a[i*lda : i*lda+kcb]
		ci := c[i*ldc : i*ldc+ncb]
		p := 0
		if kcb >= 4 {
			axpyQuad1AssignFMA(ci,
				b[0:ncb], b[ldb:ldb+ncb], b[2*ldb:2*ldb+ncb], b[3*ldb:3*ldb+ncb],
				ai[0:4])
			p = 4
		} else {
			av := ai[0]
			for j, bv := range b[0:ncb] {
				ci[j] = av * bv
			}
			p = 1
		}
		for ; p+4 <= kcb; p += 4 {
			axpyQuad1FMA(ci,
				b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
				b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
				ai[p:p+4])
		}
		for ; p < kcb; p++ {
			av := ai[p]
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci[j] = math.FMA(av, bv, ci[j])
			}
		}
	}
}

// gemmPanelAssignFMAScalar is the pure-Go fallback of gemmPanelAssignFMA.
func gemmPanelAssignFMAScalar(rows, ncb, kcb int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < rows; i++ {
		ai := a[i*lda : i*lda+kcb]
		ci := c[i*ldc : i*ldc+ncb]
		av := ai[0]
		for j, bv := range b[0:ncb] {
			ci[j] = av * bv
		}
		for p := 1; p < kcb; p++ {
			av := ai[p]
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci[j] = math.FMA(av, bv, ci[j])
			}
		}
	}
}

// scaleRow writes dst[p] = src[p] · s — the fold of a PackedMat32 tile scale
// into the f64 broadcast operand, hoisted out of the kernel loop.
func scaleRow(dst, src []float64, s float64) {
	for p, v := range src {
		dst[p] = v * s
	}
}

// widenScaleRow is scaleRow from a float32 source: dst[p] = float64(src[p])·s.
// The widening is exact; the one rounding is the multiply, matching the
// scalar loops.
func widenScaleRow(dst []float64, src []float32, s float64) {
	for p, v := range src {
		dst[p] = float64(v) * s
	}
}

// --- f32 B-layout panels (dense orientation: PackedMat32 right operand) ---

// gemmPanelF32B computes C[rows×ncb] += A[rows×kcb] · (scale · B32[kcb×ncb])
// over a float32 B tile. The scale folds into the A values (one f64 multiply
// each, hoisted into stack panels for the 4×8 kernel); B lanes widen to f64
// on load. Counts its own kernel dispatch under TierF32.
func gemmPanelF32B(rows, ncb, kcb int, a []float64, lda int, scale float64, b []float32, ldb int, c []float64, ldc int) {
	if !(useFMA && ncb >= vecMinCols) {
		kernelScalarCount[TierF32].Add(1)
		for i := 0; i < rows; i++ {
			ai := a[i*lda : i*lda+kcb]
			ci := c[i*ldc : i*ldc+ncb]
			for p, av := range ai {
				avs := av * scale
				bp := b[p*ldb : p*ldb+ncb]
				for j, bv := range bp {
					ci[j] = math.FMA(avs, float64(bv), ci[j])
				}
			}
		}
		return
	}
	kernelVectorCount[TierF32].Add(1)
	i := 0
	if rows >= 4 {
		var as0, as1, as2, as3 [kcBlock]float64
		for ; i+4 <= rows; i += 4 {
			scaleRow(as0[:kcb], a[i*lda:i*lda+kcb], scale)
			scaleRow(as1[:kcb], a[(i+1)*lda:(i+1)*lda+kcb], scale)
			scaleRow(as2[:kcb], a[(i+2)*lda:(i+2)*lda+kcb], scale)
			scaleRow(as3[:kcb], a[(i+3)*lda:(i+3)*lda+kcb], scale)
			ci := i * ldc
			j := 0
			for ; j+8 <= ncb; j += 8 {
				fmaDot4x8B32(kcb, as0[:kcb], as1[:kcb], as2[:kcb], as3[:kcb], b[j:], ldb,
					c[ci+j:ci+j+8], c[ci+ldc+j:ci+ldc+j+8],
					c[ci+2*ldc+j:ci+2*ldc+j+8], c[ci+3*ldc+j:ci+3*ldc+j+8])
			}
			if j < ncb {
				gemmPanelF32BAxpy(4, ncb-j, kcb, a[i*lda:], lda, scale, b[j:], ldb, c[ci+j:], ldc)
			}
		}
	}
	if i < rows {
		gemmPanelF32BAxpy(rows-i, ncb, kcb, a[i*lda:], lda, scale, b, ldb, c[i*ldc:], ldc)
	}
}

// gemmPanelF32BAxpy is the quad-axpy tail path of gemmPanelF32B, folding the
// scale into per-quad broadcast buffers.
func gemmPanelF32BAxpy(rows, ncb, kcb int, a []float64, lda int, scale float64, b []float32, ldb int, c []float64, ldc int) {
	var a0s, a1s [4]float64
	i := 0
	for ; i+2 <= rows; i += 2 {
		ai0 := a[i*lda : i*lda+kcb]
		ai1 := a[(i+1)*lda : (i+1)*lda+kcb]
		ci0 := c[i*ldc : i*ldc+ncb]
		ci1 := c[(i+1)*ldc : (i+1)*ldc+ncb]
		p := 0
		for ; p+4 <= kcb; p += 4 {
			for q := 0; q < 4; q++ {
				a0s[q] = ai0[p+q] * scale
				a1s[q] = ai1[p+q] * scale
			}
			axpyQuad2F32(ci0, ci1,
				b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
				b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
				a0s[:], a1s[:])
		}
		for ; p < kcb; p++ {
			a0v, a1v := ai0[p]*scale, ai1[p]*scale
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				bw := float64(bv)
				ci0[j] = math.FMA(a0v, bw, ci0[j])
				ci1[j] = math.FMA(a1v, bw, ci1[j])
			}
		}
	}
	if i < rows {
		ai := a[i*lda : i*lda+kcb]
		ci := c[i*ldc : i*ldc+ncb]
		p := 0
		for ; p+4 <= kcb; p += 4 {
			for q := 0; q < 4; q++ {
				a0s[q] = ai[p+q] * scale
			}
			axpyQuad1F32(ci,
				b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
				b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
				a0s[:])
		}
		for ; p < kcb; p++ {
			av := ai[p] * scale
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci[j] = math.FMA(av, float64(bv), ci[j])
			}
		}
	}
}

// gemmPanelAssignF32B is gemmPanelF32B with β=0.
func gemmPanelAssignF32B(rows, ncb, kcb int, a []float64, lda int, scale float64, b []float32, ldb int, c []float64, ldc int) {
	if !(useFMA && ncb >= vecMinCols) {
		kernelScalarCount[TierF32].Add(1)
		for i := 0; i < rows; i++ {
			ai := a[i*lda : i*lda+kcb]
			ci := c[i*ldc : i*ldc+ncb]
			avs := ai[0] * scale
			for j, bv := range b[0:ncb] {
				ci[j] = avs * float64(bv)
			}
			for p := 1; p < kcb; p++ {
				avs := ai[p] * scale
				bp := b[p*ldb : p*ldb+ncb]
				for j, bv := range bp {
					ci[j] = math.FMA(avs, float64(bv), ci[j])
				}
			}
		}
		return
	}
	kernelVectorCount[TierF32].Add(1)
	i := 0
	if rows >= 4 {
		var as0, as1, as2, as3 [kcBlock]float64
		for ; i+4 <= rows; i += 4 {
			scaleRow(as0[:kcb], a[i*lda:i*lda+kcb], scale)
			scaleRow(as1[:kcb], a[(i+1)*lda:(i+1)*lda+kcb], scale)
			scaleRow(as2[:kcb], a[(i+2)*lda:(i+2)*lda+kcb], scale)
			scaleRow(as3[:kcb], a[(i+3)*lda:(i+3)*lda+kcb], scale)
			ci := i * ldc
			j := 0
			for ; j+8 <= ncb; j += 8 {
				fmaDot4x8B32Assign(kcb, as0[:kcb], as1[:kcb], as2[:kcb], as3[:kcb], b[j:], ldb,
					c[ci+j:ci+j+8], c[ci+ldc+j:ci+ldc+j+8],
					c[ci+2*ldc+j:ci+2*ldc+j+8], c[ci+3*ldc+j:ci+3*ldc+j+8])
			}
			if j < ncb {
				gemmPanelAssignF32BAxpy(4, ncb-j, kcb, a[i*lda:], lda, scale, b[j:], ldb, c[ci+j:], ldc)
			}
		}
	}
	if i < rows {
		gemmPanelAssignF32BAxpy(rows-i, ncb, kcb, a[i*lda:], lda, scale, b, ldb, c[i*ldc:], ldc)
	}
}

// gemmPanelAssignF32BAxpy is the quad-axpy tail path of gemmPanelAssignF32B.
func gemmPanelAssignF32BAxpy(rows, ncb, kcb int, a []float64, lda int, scale float64, b []float32, ldb int, c []float64, ldc int) {
	var a0s, a1s [4]float64
	i := 0
	for ; i+2 <= rows; i += 2 {
		ai0 := a[i*lda : i*lda+kcb]
		ai1 := a[(i+1)*lda : (i+1)*lda+kcb]
		ci0 := c[i*ldc : i*ldc+ncb]
		ci1 := c[(i+1)*ldc : (i+1)*ldc+ncb]
		p := 0
		if kcb >= 4 {
			for q := 0; q < 4; q++ {
				a0s[q] = ai0[q] * scale
				a1s[q] = ai1[q] * scale
			}
			axpyQuad2AssignF32(ci0, ci1,
				b[0:ncb], b[ldb:ldb+ncb], b[2*ldb:2*ldb+ncb], b[3*ldb:3*ldb+ncb],
				a0s[:], a1s[:])
			p = 4
		} else {
			a0v, a1v := ai0[0]*scale, ai1[0]*scale
			for j, bv := range b[0:ncb] {
				bw := float64(bv)
				ci0[j] = a0v * bw
				ci1[j] = a1v * bw
			}
			p = 1
		}
		for ; p+4 <= kcb; p += 4 {
			for q := 0; q < 4; q++ {
				a0s[q] = ai0[p+q] * scale
				a1s[q] = ai1[p+q] * scale
			}
			axpyQuad2F32(ci0, ci1,
				b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
				b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
				a0s[:], a1s[:])
		}
		for ; p < kcb; p++ {
			a0v, a1v := ai0[p]*scale, ai1[p]*scale
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				bw := float64(bv)
				ci0[j] = math.FMA(a0v, bw, ci0[j])
				ci1[j] = math.FMA(a1v, bw, ci1[j])
			}
		}
	}
	if i < rows {
		ai := a[i*lda : i*lda+kcb]
		ci := c[i*ldc : i*ldc+ncb]
		p := 0
		if kcb >= 4 {
			for q := 0; q < 4; q++ {
				a0s[q] = ai[q] * scale
			}
			axpyQuad1AssignF32(ci,
				b[0:ncb], b[ldb:ldb+ncb], b[2*ldb:2*ldb+ncb], b[3*ldb:3*ldb+ncb],
				a0s[:])
			p = 4
		} else {
			av := ai[0] * scale
			for j, bv := range b[0:ncb] {
				ci[j] = av * float64(bv)
			}
			p = 1
		}
		for ; p+4 <= kcb; p += 4 {
			for q := 0; q < 4; q++ {
				a0s[q] = ai[p+q] * scale
			}
			axpyQuad1F32(ci,
				b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
				b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
				a0s[:])
		}
		for ; p < kcb; p++ {
			av := ai[p] * scale
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci[j] = math.FMA(av, float64(bv), ci[j])
			}
		}
	}
}

// --- f32 A-layout panels (conv orientation: PackedMat32 left operand) ---

// gemmPanelF32A computes C[rows×ncb] += (scale · A32[rows×kcb]) · B32[kcb×ncb]
// — both operands float32: the pre-packed weight panel and the B tile the
// blocked driver cast once per tile (gemmBlockedPackedA32). Each A value is
// widened (exact) and scaled with one f64 multiply — hoisted into stack
// panels for the 4×8 kernel — and B lanes widen on load, so the kernel
// streams half the bytes of the f64 path on both operands. Counts its own
// kernel dispatch under TierF32.
func gemmPanelF32A(rows, ncb, kcb int, a []float32, lda int, scale float64, b []float32, ldb int, c []float64, ldc int) {
	if !(useFMA && ncb >= vecMinCols) {
		kernelScalarCount[TierF32].Add(1)
		for i := 0; i < rows; i++ {
			ai := a[i*lda : i*lda+kcb]
			ci := c[i*ldc : i*ldc+ncb]
			for p, av := range ai {
				avs := float64(av) * scale
				bp := b[p*ldb : p*ldb+ncb]
				for j, bv := range bp {
					ci[j] = math.FMA(avs, float64(bv), ci[j])
				}
			}
		}
		return
	}
	kernelVectorCount[TierF32].Add(1)
	i := 0
	if rows >= 4 {
		var as0, as1, as2, as3 [kcBlock]float64
		for ; i+4 <= rows; i += 4 {
			widenScaleRow(as0[:kcb], a[i*lda:i*lda+kcb], scale)
			widenScaleRow(as1[:kcb], a[(i+1)*lda:(i+1)*lda+kcb], scale)
			widenScaleRow(as2[:kcb], a[(i+2)*lda:(i+2)*lda+kcb], scale)
			widenScaleRow(as3[:kcb], a[(i+3)*lda:(i+3)*lda+kcb], scale)
			ci := i * ldc
			j := 0
			for ; j+8 <= ncb; j += 8 {
				fmaDot4x8B32(kcb, as0[:kcb], as1[:kcb], as2[:kcb], as3[:kcb], b[j:], ldb,
					c[ci+j:ci+j+8], c[ci+ldc+j:ci+ldc+j+8],
					c[ci+2*ldc+j:ci+2*ldc+j+8], c[ci+3*ldc+j:ci+3*ldc+j+8])
			}
			if j < ncb {
				gemmPanelF32AAxpy(4, ncb-j, kcb, a[i*lda:], lda, scale, b[j:], ldb, c[ci+j:], ldc)
			}
		}
	}
	if i < rows {
		gemmPanelF32AAxpy(rows-i, ncb, kcb, a[i*lda:], lda, scale, b, ldb, c[i*ldc:], ldc)
	}
}

// gemmPanelF32AAxpy is the quad-axpy tail path of gemmPanelF32A, widening
// and scaling A quads into broadcast buffers.
func gemmPanelF32AAxpy(rows, ncb, kcb int, a []float32, lda int, scale float64, b []float32, ldb int, c []float64, ldc int) {
	var a0s, a1s [4]float64
	i := 0
	for ; i+2 <= rows; i += 2 {
		ai0 := a[i*lda : i*lda+kcb]
		ai1 := a[(i+1)*lda : (i+1)*lda+kcb]
		ci0 := c[i*ldc : i*ldc+ncb]
		ci1 := c[(i+1)*ldc : (i+1)*ldc+ncb]
		p := 0
		for ; p+4 <= kcb; p += 4 {
			for q := 0; q < 4; q++ {
				a0s[q] = float64(ai0[p+q]) * scale
				a1s[q] = float64(ai1[p+q]) * scale
			}
			axpyQuad2F32(ci0, ci1,
				b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
				b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
				a0s[:], a1s[:])
		}
		for ; p < kcb; p++ {
			a0v, a1v := float64(ai0[p])*scale, float64(ai1[p])*scale
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				bw := float64(bv)
				ci0[j] = math.FMA(a0v, bw, ci0[j])
				ci1[j] = math.FMA(a1v, bw, ci1[j])
			}
		}
	}
	if i < rows {
		ai := a[i*lda : i*lda+kcb]
		ci := c[i*ldc : i*ldc+ncb]
		p := 0
		for ; p+4 <= kcb; p += 4 {
			for q := 0; q < 4; q++ {
				a0s[q] = float64(ai[p+q]) * scale
			}
			axpyQuad1F32(ci,
				b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
				b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
				a0s[:])
		}
		for ; p < kcb; p++ {
			av := float64(ai[p]) * scale
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci[j] = math.FMA(av, float64(bv), ci[j])
			}
		}
	}
}

// gemmPanelAssignF32A is gemmPanelF32A with β=0.
func gemmPanelAssignF32A(rows, ncb, kcb int, a []float32, lda int, scale float64, b []float32, ldb int, c []float64, ldc int) {
	if !(useFMA && ncb >= vecMinCols) {
		kernelScalarCount[TierF32].Add(1)
		for i := 0; i < rows; i++ {
			ai := a[i*lda : i*lda+kcb]
			ci := c[i*ldc : i*ldc+ncb]
			avs := float64(ai[0]) * scale
			for j, bv := range b[0:ncb] {
				ci[j] = avs * float64(bv)
			}
			for p := 1; p < kcb; p++ {
				avs := float64(ai[p]) * scale
				bp := b[p*ldb : p*ldb+ncb]
				for j, bv := range bp {
					ci[j] = math.FMA(avs, float64(bv), ci[j])
				}
			}
		}
		return
	}
	kernelVectorCount[TierF32].Add(1)
	i := 0
	if rows >= 4 {
		var as0, as1, as2, as3 [kcBlock]float64
		for ; i+4 <= rows; i += 4 {
			widenScaleRow(as0[:kcb], a[i*lda:i*lda+kcb], scale)
			widenScaleRow(as1[:kcb], a[(i+1)*lda:(i+1)*lda+kcb], scale)
			widenScaleRow(as2[:kcb], a[(i+2)*lda:(i+2)*lda+kcb], scale)
			widenScaleRow(as3[:kcb], a[(i+3)*lda:(i+3)*lda+kcb], scale)
			ci := i * ldc
			j := 0
			for ; j+8 <= ncb; j += 8 {
				fmaDot4x8B32Assign(kcb, as0[:kcb], as1[:kcb], as2[:kcb], as3[:kcb], b[j:], ldb,
					c[ci+j:ci+j+8], c[ci+ldc+j:ci+ldc+j+8],
					c[ci+2*ldc+j:ci+2*ldc+j+8], c[ci+3*ldc+j:ci+3*ldc+j+8])
			}
			if j < ncb {
				gemmPanelAssignF32AAxpy(4, ncb-j, kcb, a[i*lda:], lda, scale, b[j:], ldb, c[ci+j:], ldc)
			}
		}
	}
	if i < rows {
		gemmPanelAssignF32AAxpy(rows-i, ncb, kcb, a[i*lda:], lda, scale, b, ldb, c[i*ldc:], ldc)
	}
}

// gemmPanelAssignF32AAxpy is the quad-axpy tail path of gemmPanelAssignF32A.
func gemmPanelAssignF32AAxpy(rows, ncb, kcb int, a []float32, lda int, scale float64, b []float32, ldb int, c []float64, ldc int) {
	var a0s, a1s [4]float64
	i := 0
	for ; i+2 <= rows; i += 2 {
		ai0 := a[i*lda : i*lda+kcb]
		ai1 := a[(i+1)*lda : (i+1)*lda+kcb]
		ci0 := c[i*ldc : i*ldc+ncb]
		ci1 := c[(i+1)*ldc : (i+1)*ldc+ncb]
		p := 0
		if kcb >= 4 {
			for q := 0; q < 4; q++ {
				a0s[q] = float64(ai0[q]) * scale
				a1s[q] = float64(ai1[q]) * scale
			}
			axpyQuad2AssignF32(ci0, ci1,
				b[0:ncb], b[ldb:ldb+ncb], b[2*ldb:2*ldb+ncb], b[3*ldb:3*ldb+ncb],
				a0s[:], a1s[:])
			p = 4
		} else {
			a0v, a1v := float64(ai0[0])*scale, float64(ai1[0])*scale
			for j, bv := range b[0:ncb] {
				bw := float64(bv)
				ci0[j] = a0v * bw
				ci1[j] = a1v * bw
			}
			p = 1
		}
		for ; p+4 <= kcb; p += 4 {
			for q := 0; q < 4; q++ {
				a0s[q] = float64(ai0[p+q]) * scale
				a1s[q] = float64(ai1[p+q]) * scale
			}
			axpyQuad2F32(ci0, ci1,
				b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
				b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
				a0s[:], a1s[:])
		}
		for ; p < kcb; p++ {
			a0v, a1v := float64(ai0[p])*scale, float64(ai1[p])*scale
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				bw := float64(bv)
				ci0[j] = math.FMA(a0v, bw, ci0[j])
				ci1[j] = math.FMA(a1v, bw, ci1[j])
			}
		}
	}
	if i < rows {
		ai := a[i*lda : i*lda+kcb]
		ci := c[i*ldc : i*ldc+ncb]
		p := 0
		if kcb >= 4 {
			for q := 0; q < 4; q++ {
				a0s[q] = float64(ai[q]) * scale
			}
			axpyQuad1AssignF32(ci,
				b[0:ncb], b[ldb:ldb+ncb], b[2*ldb:2*ldb+ncb], b[3*ldb:3*ldb+ncb],
				a0s[:])
			p = 4
		} else {
			av := float64(ai[0]) * scale
			for j, bv := range b[0:ncb] {
				ci[j] = av * float64(bv)
			}
			p = 1
		}
		for ; p+4 <= kcb; p += 4 {
			for q := 0; q < 4; q++ {
				a0s[q] = float64(ai[p+q]) * scale
			}
			axpyQuad1F32(ci,
				b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
				b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
				a0s[:])
		}
		for ; p < kcb; p++ {
			av := float64(ai[p]) * scale
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci[j] = math.FMA(av, float64(bv), ci[j])
			}
		}
	}
}
