package tensor

import "sync/atomic"

// Arena is a bump allocator for the tensors of one inference pass. A forward
// pass through a deep network allocates one output (and often scratch) tensor
// per layer; with an arena those buffers come from a single reusable slab, so
// the steady-state allocation count of an inference is zero and the garbage
// collector never sees the activations.
//
// Usage contract (see DESIGN.md "Zero-copy inference engine"):
//
//   - Get returns a zero-filled tensor valid until the next Reset. Callers
//     that need a result to outlive the pass must copy it out first.
//   - One arena serves one goroutine; arenas are not safe for concurrent
//     use. Concurrent inference uses one arena per worker.
//   - A nil *Arena is valid and falls back to ordinary heap allocation,
//     so code paths can be written against the arena unconditionally.
//
// The first pass through a model grows the arena (slab spills fall back to
// the heap); from the second pass on, Get is a slice off the slab plus a
// recycled header.
type Arena struct {
	slab []float64
	off  int
	// hw mirrors the slab's high-water size for concurrent observers: the
	// owning goroutine publishes it at every Reset, so a metrics scrape can
	// read a worker's arena footprint while the worker is mid-pass without
	// racing on the slab itself.
	hw atomic.Int64
	// spilled counts elements that did not fit the slab this cycle; Reset
	// grows the slab by this much so the next cycle fits entirely.
	spilled int
	// hdrs recycles Tensor headers (and their Shape backing arrays) across
	// cycles; used counts how many are handed out in the current cycle.
	hdrs []*Tensor
	used int
}

// NewArena returns an empty arena; the slab grows to the high-water mark of
// the first pass and stays there.
func NewArena() *Arena { return &Arena{} }

// Get returns a zero-filled tensor of the given shape whose storage is owned
// by the arena (valid until Reset). A nil arena allocates from the heap.
func (a *Arena) Get(shape ...int) *Tensor {
	return a.get(true, shape)
}

// GetUninit is Get without the zero fill: the returned tensor's contents are
// whatever the slab last held. It exists for buffers every element of which
// is about to be overwritten — an assign-mode GEMM destination (GemmEx), an
// im2col scratch, a normalization output — where the clear is a wasted full
// memory pass. Callers that leave any element unwritten read garbage; when
// in doubt, use Get.
func (a *Arena) GetUninit(shape ...int) *Tensor {
	return a.get(false, shape)
}

func (a *Arena) get(zero bool, shape []int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic("tensor: Arena.Get: non-positive dimension")
		}
		n *= d
	}
	if a == nil {
		// Mirrors New; inlined so the variadic shape never escapes and a
		// slab-served Get stays allocation-free. make always zeroes, so
		// GetUninit degrades to Get off-arena.
		return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
	}
	var data []float64
	if a.off+n <= len(a.slab) {
		data = a.slab[a.off : a.off+n : a.off+n]
		a.off += n
		if zero {
			clear(data)
		}
	} else {
		a.spilled += n
		data = make([]float64, n)
	}
	t := a.header()
	t.Shape = append(t.Shape[:0], shape...)
	t.Data = data
	return t
}

// Wrap returns an arena-owned header viewing data with the given shape — a
// zero-copy reshape whose header is recycled on Reset. A nil arena allocates
// the header from the heap.
func (a *Arena) Wrap(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic("tensor: Arena.Wrap: data length does not match shape")
	}
	if a == nil {
		return &Tensor{Shape: append([]int(nil), shape...), Data: data}
	}
	t := a.header()
	t.Shape = append(t.Shape[:0], shape...)
	t.Data = data
	return t
}

// header hands out the next recycled Tensor header, growing the pool on the
// first pass.
func (a *Arena) header() *Tensor {
	if a.used < len(a.hdrs) {
		t := a.hdrs[a.used]
		a.used++
		return t
	}
	t := &Tensor{}
	a.hdrs = append(a.hdrs, t)
	a.used++
	return t
}

// Reset invalidates every tensor handed out since the previous Reset and
// makes their storage reusable. If the finished cycle spilled past the slab,
// the slab grows to fit so the next cycle allocates nothing.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	if a.spilled > 0 {
		a.slab = make([]float64, len(a.slab)+a.spilled)
		a.spilled = 0
	}
	a.hw.Store(int64(len(a.slab)))
	a.off = 0
	a.used = 0
}

// Footprint reports the arena's current backing size in elements — the
// high-water activation volume of the passes it has served.
func (a *Arena) Footprint() int {
	if a == nil {
		return 0
	}
	return len(a.slab)
}

// HighWaterBytes reports the slab's high-water size in bytes as of the last
// Reset. Unlike Footprint it is safe to call from any goroutine while the
// owner is mid-pass — the observability stat hook for per-worker arenas.
func (a *Arena) HighWaterBytes() int64 {
	if a == nil {
		return 0
	}
	return 8 * a.hw.Load()
}
