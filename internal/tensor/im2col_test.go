package tensor

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refConv2D is a direct (nested loop) convolution used as the reference for
// the im2col+GEMM path.
func refConv2D(src []float64, c, h, w int, kernel []float64, outC, kh, kw, stride, pad int) ([]float64, int, int) {
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	dst := make([]float64, outC*outH*outW)
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < outH; oy++ {
			for ox := 0; ox < outW; ox++ {
				s := 0.0
				for ic := 0; ic < c; ic++ {
					for ki := 0; ki < kh; ki++ {
						for kj := 0; kj < kw; kj++ {
							iy := oy*stride - pad + ki
							ix := ox*stride - pad + kj
							if iy < 0 || iy >= h || ix < 0 || ix >= w {
								continue
							}
							s += kernel[((oc*c+ic)*kh+ki)*kw+kj] * src[(ic*h+iy)*w+ix]
						}
					}
				}
				dst[(oc*outH+oy)*outW+ox] = s
			}
		}
	}
	return dst, outH, outW
}

func TestConvOutSize(t *testing.T) {
	if ConvOutSize(32, 3, 1, 1) != 32 {
		t.Fatal("same-padding 3x3 should preserve size")
	}
	if ConvOutSize(32, 2, 2, 0) != 16 {
		t.Fatal("2x2 stride-2 should halve size")
	}
	if ConvOutSize(7, 7, 1, 0) != 1 {
		t.Fatal("full-size kernel should give 1")
	}
}

func TestIm2ColGemmMatchesDirectConv(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cases := []struct{ c, h, w, outC, kh, kw, stride, pad int }{
		{1, 4, 4, 1, 3, 3, 1, 1},
		{3, 8, 8, 4, 3, 3, 1, 1},
		{2, 5, 7, 3, 3, 3, 2, 1},
		{4, 6, 6, 2, 1, 1, 1, 0},
		{2, 6, 6, 3, 2, 2, 2, 0},
	}
	for _, tc := range cases {
		src := randSlice(tc.c*tc.h*tc.w, rng)
		kernel := randSlice(tc.outC*tc.c*tc.kh*tc.kw, rng)
		want, outH, outW := refConv2D(src, tc.c, tc.h, tc.w, kernel, tc.outC, tc.kh, tc.kw, tc.stride, tc.pad)
		colRows := tc.c * tc.kh * tc.kw
		col := make([]float64, colRows*outH*outW)
		gotH, gotW := Im2Col(src, tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad, col)
		if gotH != outH || gotW != outW {
			t.Fatalf("Im2Col out size (%d,%d), want (%d,%d)", gotH, gotW, outH, outW)
		}
		got := make([]float64, tc.outC*outH*outW)
		Gemm(tc.outC, outH*outW, colRows, kernel, colRows, col, outH*outW, got, outH*outW)
		for i := range got {
			if !almostEqual(got[i], want[i], 1e-10) {
				t.Fatalf("case %+v: im2col conv[%d] = %v, want %v", tc, i, got[i], want[i])
			}
		}
	}
}

// Property: Col2Im is the adjoint of Im2Col, i.e. for all x, y:
// <Im2Col(x), y> == <x, Col2Im(y)>. This is exactly the identity backprop
// relies on.
func TestQuickCol2ImAdjoint(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, h, w := 1+r.Intn(3), 3+r.Intn(4), 3+r.Intn(4)
		kh, kw := 1+r.Intn(3), 1+r.Intn(3)
		stride := 1 + r.Intn(2)
		pad := r.Intn(2)
		outH := ConvOutSize(h, kh, stride, pad)
		outW := ConvOutSize(w, kw, stride, pad)
		if outH <= 0 || outW <= 0 {
			return true
		}
		rows := c * kh * kw
		x := randSlice(c*h*w, r)
		y := randSlice(rows*outH*outW, r)
		cx := make([]float64, rows*outH*outW)
		Im2Col(x, c, h, w, kh, kw, stride, pad, cx)
		lhs := 0.0
		for i := range cx {
			lhs += cx[i] * y[i]
		}
		xg := make([]float64, c*h*w)
		Col2Im(y, c, h, w, kh, kw, stride, pad, xg)
		rhs := 0.0
		for i := range xg {
			rhs += xg[i] * x[i]
		}
		return almostEqual(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestCol2ImAccumulates(t *testing.T) {
	c, h, w := 1, 3, 3
	kh, kw, stride, pad := 3, 3, 1, 1
	outH := ConvOutSize(h, kh, stride, pad)
	outW := ConvOutSize(w, kw, stride, pad)
	col := make([]float64, c*kh*kw*outH*outW)
	for i := range col {
		col[i] = 1
	}
	dst := make([]float64, c*h*w)
	dst[0] = 100
	Col2Im(col, c, h, w, kh, kw, stride, pad, dst)
	if dst[0] <= 100 {
		t.Fatalf("Col2Im must accumulate, got dst[0]=%v", dst[0])
	}
}

func TestIm2ColSlicedChannelsPrefix(t *testing.T) {
	// Unrolling only the first 2 of 4 channels must match unrolling a
	// 2-channel image — the foundation of channel slicing in Conv2D.
	rng := rand.New(rand.NewSource(11))
	h, w, kh, kw := 5, 5, 3, 3
	full := randSlice(4*h*w, rng)
	outH := ConvOutSize(h, kh, 1, 1)
	outW := ConvOutSize(w, kw, 1, 1)
	colSliced := make([]float64, 2*kh*kw*outH*outW)
	Im2Col(full, 2, h, w, kh, kw, 1, 1, colSliced)
	colSmall := make([]float64, 2*kh*kw*outH*outW)
	Im2Col(full[:2*h*w], 2, h, w, kh, kw, 1, 1, colSmall)
	for i := range colSliced {
		if colSliced[i] != colSmall[i] {
			t.Fatal("prefix-channel Im2Col mismatch")
		}
	}
}

func TestInitializers(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x := New(1000)
	InitUniform(x, 0.5, rng)
	if x.MaxAbs() > 0.5 {
		t.Fatal("InitUniform exceeded bound")
	}
	InitNormal(x, 1.0, rng)
	m := x.Mean()
	if m > 0.15 || m < -0.15 {
		t.Fatalf("InitNormal mean too far from 0: %v", m)
	}
	InitXavier(x, 100, 100, rng)
	if x.MaxAbs() > 0.2449490 {
		t.Fatalf("InitXavier exceeded bound sqrt(6/200): %v", x.MaxAbs())
	}
	InitHe(x, 50, rng)
	if !x.AllFinite() {
		t.Fatal("InitHe produced non-finite values")
	}
}

// TestIm2ColIntoMatchesPerSample pins the whole-batch packing: unrolling B
// samples side by side into one wide column matrix (row stride
// batch·spatial) must produce, in every sample's column band, exactly what
// the per-sample Im2Col produces — including explicit zeros for padding taps
// over an uninitialized (garbage) destination.
func TestIm2ColIntoMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cases := []struct{ batch, c, h, w, kh, kw, stride, pad int }{
		{3, 2, 6, 6, 3, 3, 1, 1},
		{2, 3, 5, 7, 3, 3, 2, 1},
		{4, 1, 4, 4, 2, 2, 2, 0},
		{2, 2, 8, 8, 1, 1, 1, 0},
		{1, 4, 6, 6, 5, 5, 1, 2},
		{2, 2, 3, 3, 3, 3, 1, 3}, // pad > kernel reach: all-padding edge rows
		{2, 1, 1, 1, 6, 6, 1, 3}, // kernel reach exceeds w+pad: lo must clamp to outW
		{1, 1, 2, 2, 5, 5, 2, 2}, // strided with taps past the padded row
	}
	for _, tc := range cases {
		outH := ConvOutSize(tc.h, tc.kh, tc.stride, tc.pad)
		outW := ConvOutSize(tc.w, tc.kw, tc.stride, tc.pad)
		spatial := outH * outW
		colRows := tc.c * tc.kh * tc.kw
		ldcol := tc.batch * spatial
		wide := randSlice(colRows*ldcol, rng) // garbage start
		srcs := make([][]float64, tc.batch)
		for b := range srcs {
			srcs[b] = randSlice(tc.c*tc.h*tc.w, rng)
			Im2ColInto(srcs[b], tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad, wide, ldcol, b*spatial)
		}
		single := make([]float64, colRows*spatial)
		for b := range srcs {
			Im2Col(srcs[b], tc.c, tc.h, tc.w, tc.kh, tc.kw, tc.stride, tc.pad, single)
			for r := 0; r < colRows; r++ {
				for s := 0; s < spatial; s++ {
					got := wide[r*ldcol+b*spatial+s]
					want := single[r*spatial+s]
					if got != want {
						t.Fatalf("%+v sample %d col[%d,%d] = %g, want %g", tc, b, r, s, got, want)
					}
				}
			}
		}
	}
}
