// FMA axpy micro-kernels (fast-tier vector path). Each lane evaluates the
// fused chain acc = fma(a3,b3, fma(a2,b2, fma(a1,b1, fma(a0,b0, acc)))) —
// one rounding per multiply-add, matching math.FMA in the scalar loops — so
// the fast tiers stay bit-deterministic across the vector/scalar boundary.
// The F32 variants widen float32 B lanes to f64 on load (VCVTPS2PD, exact);
// accumulation is f64 everywhere. See kernel_fma_amd64.go for contracts.

#include "textflag.h"

// func cpuHasFMA() bool
TEXT ·cpuHasFMA(SB), NOSPLIT, $0-1
	MOVL $1, AX
	XORL CX, CX
	CPUID

	// Need FMA (ECX bit 12), OSXSAVE (bit 27) and AVX (bit 28).
	MOVL CX, DI
	ANDL $(1<<12 | 3<<27), DI
	CMPL DI, $(1<<12 | 3<<27)
	JNE  nofma

	// XCR0 bits 1|2: OS saves XMM and YMM state.
	XORL CX, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  nofma
	MOVB $1, ret+0(FP)
	RET

nofma:
	MOVB $0, ret+0(FP)
	RET

// func axpyQuad2FMA(c0, c1, b0, b1, b2, b3, a0, a1 []float64)
TEXT ·axpyQuad2FMA(SB), NOSPLIT, $0-192
	MOVQ c0_base+0(FP), DI
	MOVQ c0_len+8(FP), CX
	MOVQ c1_base+24(FP), SI
	MOVQ b0_base+48(FP), R8
	MOVQ b1_base+72(FP), R9
	MOVQ b2_base+96(FP), R10
	MOVQ b3_base+120(FP), R11
	MOVQ a0_base+144(FP), R12
	MOVQ a1_base+168(FP), R13

	VBROADCASTSD 0(R12), Y0
	VBROADCASTSD 8(R12), Y1
	VBROADCASTSD 16(R12), Y2
	VBROADCASTSD 24(R12), Y3
	VBROADCASTSD 0(R13), Y4
	VBROADCASTSD 8(R13), Y5
	VBROADCASTSD 16(R13), Y6
	VBROADCASTSD 24(R13), Y7

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

loop4:
	CMPQ AX, DX
	JGE  tail
	VMOVUPD (R8)(AX*8), Y8
	VMOVUPD (R9)(AX*8), Y9
	VMOVUPD (R10)(AX*8), Y10
	VMOVUPD (R11)(AX*8), Y11

	// Row 0: fused chain seeded from C.
	VMOVUPD     (DI)(AX*8), Y12
	VFMADD231PD Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VMOVUPD     Y12, (DI)(AX*8)

	// Row 1.
	VMOVUPD     (SI)(AX*8), Y12
	VFMADD231PD Y8, Y4, Y12
	VFMADD231PD Y9, Y5, Y12
	VFMADD231PD Y10, Y6, Y12
	VFMADD231PD Y11, Y7, Y12
	VMOVUPD     Y12, (SI)(AX*8)

	ADDQ $4, AX
	JMP  loop4

tail:
	CMPQ AX, CX
	JGE  done
	VMOVSD (R8)(AX*8), X8
	VMOVSD (R9)(AX*8), X9
	VMOVSD (R10)(AX*8), X10
	VMOVSD (R11)(AX*8), X11

	VMOVSD      (DI)(AX*8), X12
	VFMADD231SD X8, X0, X12
	VFMADD231SD X9, X1, X12
	VFMADD231SD X10, X2, X12
	VFMADD231SD X11, X3, X12
	VMOVSD      X12, (DI)(AX*8)

	VMOVSD      (SI)(AX*8), X12
	VFMADD231SD X8, X4, X12
	VFMADD231SD X9, X5, X12
	VFMADD231SD X10, X6, X12
	VFMADD231SD X11, X7, X12
	VMOVSD      X12, (SI)(AX*8)

	INCQ AX
	JMP  tail

done:
	VZEROUPPER
	RET

// func axpyQuad2AssignFMA(c0, c1, b0, b1, b2, b3, a0, a1 []float64)
TEXT ·axpyQuad2AssignFMA(SB), NOSPLIT, $0-192
	MOVQ c0_base+0(FP), DI
	MOVQ c0_len+8(FP), CX
	MOVQ c1_base+24(FP), SI
	MOVQ b0_base+48(FP), R8
	MOVQ b1_base+72(FP), R9
	MOVQ b2_base+96(FP), R10
	MOVQ b3_base+120(FP), R11
	MOVQ a0_base+144(FP), R12
	MOVQ a1_base+168(FP), R13

	VBROADCASTSD 0(R12), Y0
	VBROADCASTSD 8(R12), Y1
	VBROADCASTSD 16(R12), Y2
	VBROADCASTSD 24(R12), Y3
	VBROADCASTSD 0(R13), Y4
	VBROADCASTSD 8(R13), Y5
	VBROADCASTSD 16(R13), Y6
	VBROADCASTSD 24(R13), Y7

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

aloop4:
	CMPQ AX, DX
	JGE  atail
	VMOVUPD (R8)(AX*8), Y8
	VMOVUPD (R9)(AX*8), Y9
	VMOVUPD (R10)(AX*8), Y10
	VMOVUPD (R11)(AX*8), Y11

	// Row 0: chain seeded with a0·b0 (β=0).
	VMULPD      Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VMOVUPD     Y12, (DI)(AX*8)

	VMULPD      Y8, Y4, Y12
	VFMADD231PD Y9, Y5, Y12
	VFMADD231PD Y10, Y6, Y12
	VFMADD231PD Y11, Y7, Y12
	VMOVUPD     Y12, (SI)(AX*8)

	ADDQ $4, AX
	JMP  aloop4

atail:
	CMPQ AX, CX
	JGE  adone
	VMOVSD (R8)(AX*8), X8
	VMOVSD (R9)(AX*8), X9
	VMOVSD (R10)(AX*8), X10
	VMOVSD (R11)(AX*8), X11

	VMULSD      X8, X0, X12
	VFMADD231SD X9, X1, X12
	VFMADD231SD X10, X2, X12
	VFMADD231SD X11, X3, X12
	VMOVSD      X12, (DI)(AX*8)

	VMULSD      X8, X4, X12
	VFMADD231SD X9, X5, X12
	VFMADD231SD X10, X6, X12
	VFMADD231SD X11, X7, X12
	VMOVSD      X12, (SI)(AX*8)

	INCQ AX
	JMP  atail

adone:
	VZEROUPPER
	RET

// func axpyQuad1FMA(c0, b0, b1, b2, b3, a0 []float64)
TEXT ·axpyQuad1FMA(SB), NOSPLIT, $0-144
	MOVQ c0_base+0(FP), DI
	MOVQ c0_len+8(FP), CX
	MOVQ b0_base+24(FP), R8
	MOVQ b1_base+48(FP), R9
	MOVQ b2_base+72(FP), R10
	MOVQ b3_base+96(FP), R11
	MOVQ a0_base+120(FP), R12

	VBROADCASTSD 0(R12), Y0
	VBROADCASTSD 8(R12), Y1
	VBROADCASTSD 16(R12), Y2
	VBROADCASTSD 24(R12), Y3

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

rloop4:
	CMPQ AX, DX
	JGE  rtail
	VMOVUPD (R8)(AX*8), Y8
	VMOVUPD (R9)(AX*8), Y9
	VMOVUPD (R10)(AX*8), Y10
	VMOVUPD (R11)(AX*8), Y11

	VMOVUPD     (DI)(AX*8), Y12
	VFMADD231PD Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VMOVUPD     Y12, (DI)(AX*8)

	ADDQ $4, AX
	JMP  rloop4

rtail:
	CMPQ AX, CX
	JGE  rdone
	VMOVSD (R8)(AX*8), X8
	VMOVSD (R9)(AX*8), X9
	VMOVSD (R10)(AX*8), X10
	VMOVSD (R11)(AX*8), X11

	VMOVSD      (DI)(AX*8), X12
	VFMADD231SD X8, X0, X12
	VFMADD231SD X9, X1, X12
	VFMADD231SD X10, X2, X12
	VFMADD231SD X11, X3, X12
	VMOVSD      X12, (DI)(AX*8)

	INCQ AX
	JMP  rtail

rdone:
	VZEROUPPER
	RET

// func axpyQuad1AssignFMA(c0, b0, b1, b2, b3, a0 []float64)
TEXT ·axpyQuad1AssignFMA(SB), NOSPLIT, $0-144
	MOVQ c0_base+0(FP), DI
	MOVQ c0_len+8(FP), CX
	MOVQ b0_base+24(FP), R8
	MOVQ b1_base+48(FP), R9
	MOVQ b2_base+72(FP), R10
	MOVQ b3_base+96(FP), R11
	MOVQ a0_base+120(FP), R12

	VBROADCASTSD 0(R12), Y0
	VBROADCASTSD 8(R12), Y1
	VBROADCASTSD 16(R12), Y2
	VBROADCASTSD 24(R12), Y3

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

sloop4:
	CMPQ AX, DX
	JGE  stail
	VMOVUPD (R8)(AX*8), Y8
	VMOVUPD (R9)(AX*8), Y9
	VMOVUPD (R10)(AX*8), Y10
	VMOVUPD (R11)(AX*8), Y11

	VMULPD      Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VMOVUPD     Y12, (DI)(AX*8)

	ADDQ $4, AX
	JMP  sloop4

stail:
	CMPQ AX, CX
	JGE  sdone
	VMOVSD (R8)(AX*8), X8
	VMOVSD (R9)(AX*8), X9
	VMOVSD (R10)(AX*8), X10
	VMOVSD (R11)(AX*8), X11

	VMULSD      X8, X0, X12
	VFMADD231SD X9, X1, X12
	VFMADD231SD X10, X2, X12
	VFMADD231SD X11, X3, X12
	VMOVSD      X12, (DI)(AX*8)

	INCQ AX
	JMP  stail

sdone:
	VZEROUPPER
	RET

// func fmaDot4x8(kcb int, a0, a1, a2, a3, b []float64, ldb int, c0, c1, c2, c3 []float64)
//
// C-resident 4×8 dot micro-kernel: eight YMM accumulators (4 C rows × 8
// columns) are loaded once, carry the fused chain across the entire kcb
// panel, and store once — C traffic drops from one read+write per k-quad
// (the axpy kernels above) to one per panel, and each B row is streamed
// once per four C rows instead of per two. Per element the chain is the
// same ascending-k acc = fma(a,b,acc) the axpy kernels and math.FMA
// evaluate, so results stay bit-identical across all three paths.
TEXT ·fmaDot4x8(SB), NOSPLIT, $0-232
	MOVQ kcb+0(FP), CX
	MOVQ a0_base+8(FP), R8
	MOVQ a1_base+32(FP), R9
	MOVQ a2_base+56(FP), R10
	MOVQ a3_base+80(FP), R11
	MOVQ b_base+104(FP), SI
	MOVQ ldb+128(FP), R12
	SHLQ $3, R12
	MOVQ c0_base+136(FP), DI
	MOVQ c1_base+160(FP), AX
	MOVQ c2_base+184(FP), BX
	MOVQ c3_base+208(FP), DX

	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD (AX), Y2
	VMOVUPD 32(AX), Y3
	VMOVUPD (BX), Y4
	VMOVUPD 32(BX), Y5
	VMOVUPD (DX), Y6
	VMOVUPD 32(DX), Y7

dloop:
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (R8), Y10
	VBROADCASTSD (R9), Y11
	VBROADCASTSD (R10), Y12
	VBROADCASTSD (R11), Y13
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ         $8, R8
	ADDQ         $8, R9
	ADDQ         $8, R10
	ADDQ         $8, R11
	ADDQ         R12, SI
	DECQ         CX
	JNZ          dloop

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, (AX)
	VMOVUPD Y3, 32(AX)
	VMOVUPD Y4, (BX)
	VMOVUPD Y5, 32(BX)
	VMOVUPD Y6, (DX)
	VMOVUPD Y7, 32(DX)
	VZEROUPPER
	RET

// func fmaDot4x8Assign(kcb int, a0, a1, a2, a3, b []float64, ldb int, c0, c1, c2, c3 []float64)
//
// fmaDot4x8 with β=0: the accumulators seed with a·b at k=0 (one rounding,
// no C load) and fuse from k=1 on. kcb must be ≥ 1.
TEXT ·fmaDot4x8Assign(SB), NOSPLIT, $0-232
	MOVQ kcb+0(FP), CX
	MOVQ a0_base+8(FP), R8
	MOVQ a1_base+32(FP), R9
	MOVQ a2_base+56(FP), R10
	MOVQ a3_base+80(FP), R11
	MOVQ b_base+104(FP), SI
	MOVQ ldb+128(FP), R12
	SHLQ $3, R12
	MOVQ c0_base+136(FP), DI
	MOVQ c1_base+160(FP), AX
	MOVQ c2_base+184(FP), BX
	MOVQ c3_base+208(FP), DX

	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (R8), Y10
	VBROADCASTSD (R9), Y11
	VBROADCASTSD (R10), Y12
	VBROADCASTSD (R11), Y13
	VMULPD       Y8, Y10, Y0
	VMULPD       Y9, Y10, Y1
	VMULPD       Y8, Y11, Y2
	VMULPD       Y9, Y11, Y3
	VMULPD       Y8, Y12, Y4
	VMULPD       Y9, Y12, Y5
	VMULPD       Y8, Y13, Y6
	VMULPD       Y9, Y13, Y7
	ADDQ         $8, R8
	ADDQ         $8, R9
	ADDQ         $8, R10
	ADDQ         $8, R11
	ADDQ         R12, SI
	DECQ         CX
	JZ           adstore

adloop:
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (R8), Y10
	VBROADCASTSD (R9), Y11
	VBROADCASTSD (R10), Y12
	VBROADCASTSD (R11), Y13
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ         $8, R8
	ADDQ         $8, R9
	ADDQ         $8, R10
	ADDQ         $8, R11
	ADDQ         R12, SI
	DECQ         CX
	JNZ          adloop

adstore:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, (AX)
	VMOVUPD Y3, 32(AX)
	VMOVUPD Y4, (BX)
	VMOVUPD Y5, 32(BX)
	VMOVUPD Y6, (DX)
	VMOVUPD Y7, 32(DX)
	VZEROUPPER
	RET

// func fmaDot4x8B32(kcb int, a0, a1, a2, a3 []float64, b []float32, ldb int, c0, c1, c2, c3 []float64)
//
// fmaDot4x8 over a float32 B panel: each group of four B lanes widens to
// f64 on load (VCVTPS2PD, exact), halving the streamed B bytes. Pack
// scales are folded into the a rows by the caller.
TEXT ·fmaDot4x8B32(SB), NOSPLIT, $0-232
	MOVQ kcb+0(FP), CX
	MOVQ a0_base+8(FP), R8
	MOVQ a1_base+32(FP), R9
	MOVQ a2_base+56(FP), R10
	MOVQ a3_base+80(FP), R11
	MOVQ b_base+104(FP), SI
	MOVQ ldb+128(FP), R12
	SHLQ $2, R12
	MOVQ c0_base+136(FP), DI
	MOVQ c1_base+160(FP), AX
	MOVQ c2_base+184(FP), BX
	MOVQ c3_base+208(FP), DX

	VMOVUPD (DI), Y0
	VMOVUPD 32(DI), Y1
	VMOVUPD (AX), Y2
	VMOVUPD 32(AX), Y3
	VMOVUPD (BX), Y4
	VMOVUPD 32(BX), Y5
	VMOVUPD (DX), Y6
	VMOVUPD 32(DX), Y7

fdloop:
	VCVTPS2PD    (SI), Y8
	VCVTPS2PD    16(SI), Y9
	VBROADCASTSD (R8), Y10
	VBROADCASTSD (R9), Y11
	VBROADCASTSD (R10), Y12
	VBROADCASTSD (R11), Y13
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ         $8, R8
	ADDQ         $8, R9
	ADDQ         $8, R10
	ADDQ         $8, R11
	ADDQ         R12, SI
	DECQ         CX
	JNZ          fdloop

	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, (AX)
	VMOVUPD Y3, 32(AX)
	VMOVUPD Y4, (BX)
	VMOVUPD Y5, 32(BX)
	VMOVUPD Y6, (DX)
	VMOVUPD Y7, 32(DX)
	VZEROUPPER
	RET

// func fmaDot4x8B32Assign(kcb int, a0, a1, a2, a3 []float64, b []float32, ldb int, c0, c1, c2, c3 []float64)
//
// fmaDot4x8B32 with β=0 (see fmaDot4x8Assign). kcb must be ≥ 1.
TEXT ·fmaDot4x8B32Assign(SB), NOSPLIT, $0-232
	MOVQ kcb+0(FP), CX
	MOVQ a0_base+8(FP), R8
	MOVQ a1_base+32(FP), R9
	MOVQ a2_base+56(FP), R10
	MOVQ a3_base+80(FP), R11
	MOVQ b_base+104(FP), SI
	MOVQ ldb+128(FP), R12
	SHLQ $2, R12
	MOVQ c0_base+136(FP), DI
	MOVQ c1_base+160(FP), AX
	MOVQ c2_base+184(FP), BX
	MOVQ c3_base+208(FP), DX

	VCVTPS2PD    (SI), Y8
	VCVTPS2PD    16(SI), Y9
	VBROADCASTSD (R8), Y10
	VBROADCASTSD (R9), Y11
	VBROADCASTSD (R10), Y12
	VBROADCASTSD (R11), Y13
	VMULPD       Y8, Y10, Y0
	VMULPD       Y9, Y10, Y1
	VMULPD       Y8, Y11, Y2
	VMULPD       Y9, Y11, Y3
	VMULPD       Y8, Y12, Y4
	VMULPD       Y9, Y12, Y5
	VMULPD       Y8, Y13, Y6
	VMULPD       Y9, Y13, Y7
	ADDQ         $8, R8
	ADDQ         $8, R9
	ADDQ         $8, R10
	ADDQ         $8, R11
	ADDQ         R12, SI
	DECQ         CX
	JZ           fadstore

fadloop:
	VCVTPS2PD    (SI), Y8
	VCVTPS2PD    16(SI), Y9
	VBROADCASTSD (R8), Y10
	VBROADCASTSD (R9), Y11
	VBROADCASTSD (R10), Y12
	VBROADCASTSD (R11), Y13
	VFMADD231PD  Y8, Y10, Y0
	VFMADD231PD  Y9, Y10, Y1
	VFMADD231PD  Y8, Y11, Y2
	VFMADD231PD  Y9, Y11, Y3
	VFMADD231PD  Y8, Y12, Y4
	VFMADD231PD  Y9, Y12, Y5
	VFMADD231PD  Y8, Y13, Y6
	VFMADD231PD  Y9, Y13, Y7
	ADDQ         $8, R8
	ADDQ         $8, R9
	ADDQ         $8, R10
	ADDQ         $8, R11
	ADDQ         R12, SI
	DECQ         CX
	JNZ          fadloop

fadstore:
	VMOVUPD Y0, (DI)
	VMOVUPD Y1, 32(DI)
	VMOVUPD Y2, (AX)
	VMOVUPD Y3, 32(AX)
	VMOVUPD Y4, (BX)
	VMOVUPD Y5, 32(BX)
	VMOVUPD Y6, (DX)
	VMOVUPD Y7, 32(DX)
	VZEROUPPER
	RET

// func axpyQuad2F32(c0, c1 []float64, b0, b1, b2, b3 []float32, a0, a1 []float64)
TEXT ·axpyQuad2F32(SB), NOSPLIT, $0-192
	MOVQ c0_base+0(FP), DI
	MOVQ c0_len+8(FP), CX
	MOVQ c1_base+24(FP), SI
	MOVQ b0_base+48(FP), R8
	MOVQ b1_base+72(FP), R9
	MOVQ b2_base+96(FP), R10
	MOVQ b3_base+120(FP), R11
	MOVQ a0_base+144(FP), R12
	MOVQ a1_base+168(FP), R13

	VBROADCASTSD 0(R12), Y0
	VBROADCASTSD 8(R12), Y1
	VBROADCASTSD 16(R12), Y2
	VBROADCASTSD 24(R12), Y3
	VBROADCASTSD 0(R13), Y4
	VBROADCASTSD 8(R13), Y5
	VBROADCASTSD 16(R13), Y6
	VBROADCASTSD 24(R13), Y7

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

floop4:
	CMPQ AX, DX
	JGE  ftail
	// Widen four f32 B lanes per operand to f64 (exact conversion).
	VCVTPS2PD (R8)(AX*4), Y8
	VCVTPS2PD (R9)(AX*4), Y9
	VCVTPS2PD (R10)(AX*4), Y10
	VCVTPS2PD (R11)(AX*4), Y11

	VMOVUPD     (DI)(AX*8), Y12
	VFMADD231PD Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VMOVUPD     Y12, (DI)(AX*8)

	VMOVUPD     (SI)(AX*8), Y12
	VFMADD231PD Y8, Y4, Y12
	VFMADD231PD Y9, Y5, Y12
	VFMADD231PD Y10, Y6, Y12
	VFMADD231PD Y11, Y7, Y12
	VMOVUPD     Y12, (SI)(AX*8)

	ADDQ $4, AX
	JMP  floop4

ftail:
	CMPQ AX, CX
	JGE  fdone
	VCVTSS2SD (R8)(AX*4), X8, X8
	VCVTSS2SD (R9)(AX*4), X9, X9
	VCVTSS2SD (R10)(AX*4), X10, X10
	VCVTSS2SD (R11)(AX*4), X11, X11

	VMOVSD      (DI)(AX*8), X12
	VFMADD231SD X8, X0, X12
	VFMADD231SD X9, X1, X12
	VFMADD231SD X10, X2, X12
	VFMADD231SD X11, X3, X12
	VMOVSD      X12, (DI)(AX*8)

	VMOVSD      (SI)(AX*8), X12
	VFMADD231SD X8, X4, X12
	VFMADD231SD X9, X5, X12
	VFMADD231SD X10, X6, X12
	VFMADD231SD X11, X7, X12
	VMOVSD      X12, (SI)(AX*8)

	INCQ AX
	JMP  ftail

fdone:
	VZEROUPPER
	RET

// func axpyQuad2AssignF32(c0, c1 []float64, b0, b1, b2, b3 []float32, a0, a1 []float64)
TEXT ·axpyQuad2AssignF32(SB), NOSPLIT, $0-192
	MOVQ c0_base+0(FP), DI
	MOVQ c0_len+8(FP), CX
	MOVQ c1_base+24(FP), SI
	MOVQ b0_base+48(FP), R8
	MOVQ b1_base+72(FP), R9
	MOVQ b2_base+96(FP), R10
	MOVQ b3_base+120(FP), R11
	MOVQ a0_base+144(FP), R12
	MOVQ a1_base+168(FP), R13

	VBROADCASTSD 0(R12), Y0
	VBROADCASTSD 8(R12), Y1
	VBROADCASTSD 16(R12), Y2
	VBROADCASTSD 24(R12), Y3
	VBROADCASTSD 0(R13), Y4
	VBROADCASTSD 8(R13), Y5
	VBROADCASTSD 16(R13), Y6
	VBROADCASTSD 24(R13), Y7

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

faloop4:
	CMPQ AX, DX
	JGE  fatail
	VCVTPS2PD (R8)(AX*4), Y8
	VCVTPS2PD (R9)(AX*4), Y9
	VCVTPS2PD (R10)(AX*4), Y10
	VCVTPS2PD (R11)(AX*4), Y11

	VMULPD      Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VMOVUPD     Y12, (DI)(AX*8)

	VMULPD      Y8, Y4, Y12
	VFMADD231PD Y9, Y5, Y12
	VFMADD231PD Y10, Y6, Y12
	VFMADD231PD Y11, Y7, Y12
	VMOVUPD     Y12, (SI)(AX*8)

	ADDQ $4, AX
	JMP  faloop4

fatail:
	CMPQ AX, CX
	JGE  fadone
	VCVTSS2SD (R8)(AX*4), X8, X8
	VCVTSS2SD (R9)(AX*4), X9, X9
	VCVTSS2SD (R10)(AX*4), X10, X10
	VCVTSS2SD (R11)(AX*4), X11, X11

	VMULSD      X8, X0, X12
	VFMADD231SD X9, X1, X12
	VFMADD231SD X10, X2, X12
	VFMADD231SD X11, X3, X12
	VMOVSD      X12, (DI)(AX*8)

	VMULSD      X8, X4, X12
	VFMADD231SD X9, X5, X12
	VFMADD231SD X10, X6, X12
	VFMADD231SD X11, X7, X12
	VMOVSD      X12, (SI)(AX*8)

	INCQ AX
	JMP  fatail

fadone:
	VZEROUPPER
	RET

// func axpyQuad1F32(c0 []float64, b0, b1, b2, b3 []float32, a0 []float64)
TEXT ·axpyQuad1F32(SB), NOSPLIT, $0-144
	MOVQ c0_base+0(FP), DI
	MOVQ c0_len+8(FP), CX
	MOVQ b0_base+24(FP), R8
	MOVQ b1_base+48(FP), R9
	MOVQ b2_base+72(FP), R10
	MOVQ b3_base+96(FP), R11
	MOVQ a0_base+120(FP), R12

	VBROADCASTSD 0(R12), Y0
	VBROADCASTSD 8(R12), Y1
	VBROADCASTSD 16(R12), Y2
	VBROADCASTSD 24(R12), Y3

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

frloop4:
	CMPQ AX, DX
	JGE  frtail
	VCVTPS2PD (R8)(AX*4), Y8
	VCVTPS2PD (R9)(AX*4), Y9
	VCVTPS2PD (R10)(AX*4), Y10
	VCVTPS2PD (R11)(AX*4), Y11

	VMOVUPD     (DI)(AX*8), Y12
	VFMADD231PD Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VMOVUPD     Y12, (DI)(AX*8)

	ADDQ $4, AX
	JMP  frloop4

frtail:
	CMPQ AX, CX
	JGE  frdone
	VCVTSS2SD (R8)(AX*4), X8, X8
	VCVTSS2SD (R9)(AX*4), X9, X9
	VCVTSS2SD (R10)(AX*4), X10, X10
	VCVTSS2SD (R11)(AX*4), X11, X11

	VMOVSD      (DI)(AX*8), X12
	VFMADD231SD X8, X0, X12
	VFMADD231SD X9, X1, X12
	VFMADD231SD X10, X2, X12
	VFMADD231SD X11, X3, X12
	VMOVSD      X12, (DI)(AX*8)

	INCQ AX
	JMP  frtail

frdone:
	VZEROUPPER
	RET

// func axpyQuad1AssignF32(c0 []float64, b0, b1, b2, b3 []float32, a0 []float64)
TEXT ·axpyQuad1AssignF32(SB), NOSPLIT, $0-144
	MOVQ c0_base+0(FP), DI
	MOVQ c0_len+8(FP), CX
	MOVQ b0_base+24(FP), R8
	MOVQ b1_base+48(FP), R9
	MOVQ b2_base+72(FP), R10
	MOVQ b3_base+96(FP), R11
	MOVQ a0_base+120(FP), R12

	VBROADCASTSD 0(R12), Y0
	VBROADCASTSD 8(R12), Y1
	VBROADCASTSD 16(R12), Y2
	VBROADCASTSD 24(R12), Y3

	XORQ AX, AX
	MOVQ CX, DX
	ANDQ $-4, DX

fsloop4:
	CMPQ AX, DX
	JGE  fstail
	VCVTPS2PD (R8)(AX*4), Y8
	VCVTPS2PD (R9)(AX*4), Y9
	VCVTPS2PD (R10)(AX*4), Y10
	VCVTPS2PD (R11)(AX*4), Y11

	VMULPD      Y8, Y0, Y12
	VFMADD231PD Y9, Y1, Y12
	VFMADD231PD Y10, Y2, Y12
	VFMADD231PD Y11, Y3, Y12
	VMOVUPD     Y12, (DI)(AX*8)

	ADDQ $4, AX
	JMP  fsloop4

fstail:
	CMPQ AX, CX
	JGE  fsdone
	VCVTSS2SD (R8)(AX*4), X8, X8
	VCVTSS2SD (R9)(AX*4), X9, X9
	VCVTSS2SD (R10)(AX*4), X10, X10
	VCVTSS2SD (R11)(AX*4), X11, X11

	VMULSD      X8, X0, X12
	VFMADD231SD X9, X1, X12
	VFMADD231SD X10, X2, X12
	VFMADD231SD X11, X3, X12
	VMOVSD      X12, (DI)(AX*8)

	INCQ AX
	JMP  fstail

fsdone:
	VZEROUPPER
	RET

// func cvtPD2PS(dst []float32, src []float64)
//
// Narrows dst[i] = float32(src[i]) for i in [0, len(src)) — VCVTPD2PS rounds
// to nearest even, exactly Go's float64→float32 conversion, so the vector
// and scalar tile casts produce identical bits. len(dst) must be ≥ len(src).
TEXT ·cvtPD2PS(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), SI
	MOVQ src_len+32(FP), CX
	XORQ AX, AX

cvloop16:
	LEAQ 16(AX), DX
	CMPQ DX, CX
	JG   cvloop4

	VCVTPD2PSY (SI)(AX*8), X0
	VCVTPD2PSY 32(SI)(AX*8), X1
	VCVTPD2PSY 64(SI)(AX*8), X2
	VCVTPD2PSY 96(SI)(AX*8), X3
	VMOVUPS    X0, (DI)(AX*4)
	VMOVUPS    X1, 16(DI)(AX*4)
	VMOVUPS    X2, 32(DI)(AX*4)
	VMOVUPS    X3, 48(DI)(AX*4)

	ADDQ $16, AX
	JMP  cvloop16

cvloop4:
	LEAQ 4(AX), DX
	CMPQ DX, CX
	JG   cvtail

	VCVTPD2PSY (SI)(AX*8), X0
	VMOVUPS    X0, (DI)(AX*4)

	ADDQ $4, AX
	JMP  cvloop4

cvtail:
	CMPQ AX, CX
	JGE  cvdone
	VCVTSD2SS (SI)(AX*8), X0, X0
	VMOVSS    X0, (DI)(AX*4)
	INCQ AX
	JMP  cvtail

cvdone:
	VZEROUPPER
	RET
