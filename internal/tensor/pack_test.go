package tensor

import (
	"math/rand"
	"sync"
	"testing"
)

// packedCase runs one (m,n,k,ld,epilogue) configuration through both packed
// entry points and demands BIT-identical results against the unpacked blocked
// engine (gemmParallel in assign mode — the path GemmEx always takes and
// GemmTBEx takes above its small-product threshold). The packed layout
// preserves the engine's per-element accumulation order, so the comparison is
// exact equality, not a tolerance.
func packedCase(t *testing.T, m, n, k, lda, ldbT, ldbS, ldc int, ep *Epilogue) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(m*131071 + n*257 + k)))
	a := make([]float64, (m-1)*lda+k+3)
	bt := make([]float64, (n-1)*ldbT+k+3) // B stored [n×k] for the TB pair
	bs := make([]float64, (k-1)*ldbS+n+3) // B stored [k×n] for the straight pair
	fillRand(rng, a)
	fillRand(rng, bt)
	fillRand(rng, bs)

	check := func(name string, got, want []float64) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s m=%d n=%d k=%d lda=%d ldc=%d: [%d] = %g, want %g (not bit-identical)",
					name, m, n, k, lda, ldc, i, got[i], want[i])
			}
		}
	}

	// GemmPackedEx (packed A · streamed B) vs the unpacked blocked engine.
	want := make([]float64, (m-1)*ldc+n+3)
	fillRand(rng, want)
	got := append([]float64(nil), want...)
	gemmParallel(TierExact, m, n, k, a, lda, false, bs, ldbS, false, want, ldc, true, ep)
	GemmPackedEx(m, n, k, PackA(m, k, a, lda), bs, ldbS, got, ldc, ep)
	check("GemmPackedEx", got, want)

	// GemmTBPackedEx (streamed A · packed Bᵀ) vs the unpacked blocked engine.
	want2 := make([]float64, (m-1)*ldc+n+3)
	fillRand(rng, want2)
	got2 := append([]float64(nil), want2...)
	gemmParallel(TierExact, m, n, k, a, lda, false, bt, ldbT, true, want2, ldc, true, ep)
	GemmTBPackedEx(m, n, k, a, lda, PackTB(n, k, bt, ldbT), got2, ldc, ep)
	check("GemmTBPackedEx", got2, want2)

	// PackB of the straight operand must behave exactly like PackTB of its
	// transpose — same tiles, same consumer.
	got3 := append([]float64(nil), want...)
	GemmTBPackedEx(m, n, k, a, lda, PackB(k, n, bs, ldbS), got3, ldc, ep)
	check("GemmTBPackedEx/PackB", got3, want)
}

// TestPackedGemmDeterministicShapes sweeps shapes across the kc/nc panel
// boundaries, with tight and strided leading dimensions, under a
// representative epilogue set.
func TestPackedGemmDeterministicShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	type shape struct{ m, n, k, pad int }
	shapes := []shape{
		{1, 1, 1, 0},
		{2, 7, 5, 0},
		{3, 5, 7, 2},
		{4, 4, 4, 3},
		{8, 256, 72, 0},     // conv-like: few rows, one full nc tile
		{8, 10, 64, 0},      // dense-head-like
		{31, 33, 29, 5},     // ragged everywhere
		{48, 48, 48, 0},     // at the old small-product boundary
		{64, 64, 64, 9},     // blocked, ragged ld
		{65, 300, 63, 1},    // n crosses the nc tile boundary, ragged edge tiles
		{130, 130, 130, 11}, // above the parallel threshold with GOMAXPROCS>1
		{40, 130, 270, 2},   // k > kc: multiple packed k panels
		{257, 31, 260, 0},   // tall m: 4-row kernel plus 2-row and 1-row tails
	}
	for _, s := range shapes {
		for _, mask := range []int{0, 1, 6, 24, 32, 63} {
			ep := epilogueCase(rng, mask, s.m, s.n)
			packedCase(t, s.m, s.n, s.k, s.k+s.pad, s.k+s.pad, s.n+s.pad, s.n+s.pad, ep)
		}
	}
}

// TestPackedGemmRandomShapes is the property test: random shapes, random
// strides, random epilogue masks — always bit-identical to the unpacked
// blocked engine.
func TestPackedGemmRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	iters := 60
	if testing.Short() {
		iters = 20
	}
	for it := 0; it < iters; it++ {
		m := 1 + rng.Intn(90)
		n := 1 + rng.Intn(90)
		k := 1 + rng.Intn(90)
		if it%5 == 0 {
			switch it % 3 {
			case 0:
				m += 200
			case 1:
				n += 200
			default:
				k += 300
			}
		}
		ep := epilogueCase(rng, rng.Intn(64), m, n)
		pad := rng.Intn(8)
		packedCase(t, m, n, k, k+pad, k+pad, n+rng.Intn(8), n+rng.Intn(8), ep)
	}
}

// TestPackedGemmAllEpilogueMasks runs all 2⁶ epilogue feature combinations on
// shapes exercising the serial path, the panel edges and (under
// GOMAXPROCS>1) the parallel path.
func TestPackedGemmAllEpilogueMasks(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	type shape struct{ m, n, k, pad int }
	shapes := []shape{
		{8, 300, 72, 3},    // conv-like row-short product: column-split candidate
		{65, 67, 63, 1},    // ragged panels
		{130, 130, 130, 0}, // above the parallel threshold
	}
	for _, s := range shapes {
		for mask := 0; mask < 64; mask++ {
			ep := epilogueCase(rng, mask, s.m, s.n)
			packedCase(t, s.m, s.n, s.k, s.k+s.pad, s.k+s.pad, s.n+s.pad, s.n+s.pad, ep)
		}
	}
}

// TestPackedGemmEmptyK pins the assign-mode contract at k = 0 for both packed
// entry points: zeros plus epilogue, slack columns untouched.
func TestPackedGemmEmptyK(t *testing.T) {
	c := []float64{7, 7, 7, 7, 7, 7}
	GemmPackedEx(2, 2, 0, PackA(2, 0, nil, 0), nil, 2, c, 3, &Epilogue{RowShift: []float64{1, 2}})
	want := []float64{1, 1, 7, 2, 2, 7}
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("GemmPackedEx k=0: c[%d] = %g, want %g", i, c[i], want[i])
		}
	}
	c2 := []float64{7, 7, 7, 7}
	GemmTBPackedEx(2, 2, 0, nil, 0, PackTB(2, 0, nil, 0), c2, 2, nil)
	for i, v := range c2 {
		if v != 0 {
			t.Fatalf("GemmTBPackedEx k=0: c[%d] = %g, want 0", i, v)
		}
	}
}

// TestPackedGemmShapeChecks verifies that a pack built for one width is
// rejected when handed to a product of another — the guard behind the
// per-width cache keying upstairs.
func TestPackedGemmShapeChecks(t *testing.T) {
	a := make([]float64, 6*8)
	b := make([]float64, 8*4)
	c := make([]float64, 6*4)
	pa := PackA(6, 8, a, 8)
	pb := PackTB(4, 8, b, 8)
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	GemmPackedEx(6, 4, 8, pa, b, 4, c, 4, nil)   // well-formed
	GemmTBPackedEx(6, 4, 8, a, 8, pb, c, 4, nil) // well-formed
	expectPanic("wrong m", func() { GemmPackedEx(5, 4, 8, pa, b, 4, c, 4, nil) })
	expectPanic("wrong k", func() { GemmPackedEx(6, 4, 7, pa, b, 4, c, 4, nil) })
	expectPanic("layout mixup A", func() { GemmTBPackedEx(6, 8, 8, a, 8, pa, c, 8, nil) })
	expectPanic("layout mixup B", func() { GemmPackedEx(8, 4, 4, pb, b, 4, c, 4, nil) })
	expectPanic("nil pack", func() { GemmPackedEx(6, 4, 8, nil, b, 4, c, 4, nil) })
}

// TestPackedMatDims pins the accessor contract and the exact (unpadded)
// memory accounting: a pack costs rows·cols elements, ragged edges included.
func TestPackedMatDims(t *testing.T) {
	a := make([]float64, 70*300)
	p := PackA(70, 300, a, 300)
	if r, c := p.Dims(); r != 70 || c != 300 {
		t.Fatalf("PackA dims = %d×%d, want 70×300", r, c)
	}
	if p.Bytes() != 70*300*8 {
		t.Fatalf("PackA bytes = %d, want %d", p.Bytes(), 70*300*8)
	}
	b := make([]float64, 300*70)
	pb := PackB(300, 70, b, 70)
	if r, c := pb.Dims(); r != 300 || c != 70 {
		t.Fatalf("PackB dims = %d×%d, want 300×70", r, c)
	}
	if pb.Bytes() != 300*70*8 {
		t.Fatalf("PackB bytes = %d, want %d", pb.Bytes(), 300*70*8)
	}
}

// TestPackedGemmSharedConcurrent hammers one pack from many goroutines — the
// fan-out workers and the per-width cache both rely on a PackedMat being
// freely shareable. Run under -race in CI.
func TestPackedGemmSharedConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	const m, n, k = 32, 96, 80
	a := make([]float64, m*k)
	b := make([]float64, k*n)
	fillRand(rng, a)
	fillRand(rng, b)
	pa := PackA(m, k, a, k)
	want := make([]float64, m*n)
	GemmPackedEx(m, n, k, pa, b, n, want, n, nil)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := make([]float64, m*n)
			for it := 0; it < 20; it++ {
				GemmPackedEx(m, n, k, pa, b, n, c, n, &Epilogue{ReLU: it%2 == 0})
			}
			GemmPackedEx(m, n, k, pa, b, n, c, n, nil)
			for i := range want {
				if c[i] != want[i] {
					t.Errorf("concurrent packed GEMM diverged at %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestGemmStatsCounts verifies the fan-out counters move only when a product
// actually splits.
func TestGemmStatsCounts(t *testing.T) {
	before := GemmStats()
	a := make([]float64, 4*4)
	b := make([]float64, 4*4)
	c := make([]float64, 4*4)
	Gemm(4, 4, 4, a, 4, b, 4, c, 4) // far below every threshold
	mid := GemmStats()
	if mid.Fanouts != before.Fanouts {
		t.Fatalf("tiny Gemm bumped the fan-out counter")
	}
	if GemmWillParallelize(256, 256, 256) {
		big := make([]float64, 256*256)
		cb := make([]float64, 256*256)
		Gemm(256, 256, 256, big, 256, big, 256, cb, 256)
		after := GemmStats()
		if after.Fanouts <= mid.Fanouts || after.FanoutWorkers <= mid.FanoutWorkers {
			t.Fatalf("parallel Gemm did not bump the fan-out counters: %+v -> %+v", mid, after)
		}
	}
}

// --- benchmarks: packed vs unpacked on the serving shapes ---

// benchConvShape times the conv orientation (weight as A) at a VGG-stage-like
// shape, packed against unpacked.
func benchConvShape(b *testing.B, m, n, k int, packed bool) {
	rng := rand.New(rand.NewSource(2))
	w := make([]float64, m*k)
	col := make([]float64, k*n)
	c := make([]float64, m*n)
	fillRand(rng, w)
	fillRand(rng, col)
	ep := &Epilogue{RowShift: make([]float64, m), ReLU: true}
	b.ReportAllocs()
	if packed {
		pa := PackA(m, k, w, k)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			GemmPackedEx(m, n, k, pa, col, n, c, n, ep)
		}
		return
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmEx(m, n, k, w, k, col, n, c, n, ep)
	}
}

func BenchmarkConvGemmUnpacked8x256x72(b *testing.B)  { benchConvShape(b, 8, 256, 72, false) }
func BenchmarkConvGemmPacked8x256x72(b *testing.B)    { benchConvShape(b, 8, 256, 72, true) }
func BenchmarkConvGemmUnpacked64x16x576(b *testing.B) { benchConvShape(b, 64, 16, 576, false) }
func BenchmarkConvGemmPacked64x16x576(b *testing.B)   { benchConvShape(b, 64, 16, 576, true) }
func BenchmarkConvGemmUnpacked32x64x288(b *testing.B) { benchConvShape(b, 32, 64, 288, false) }
func BenchmarkConvGemmPacked32x64x288(b *testing.B)   { benchConvShape(b, 32, 64, 288, true) }
func BenchmarkDenseGemmUnpacked32x256x256(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const m, n, k = 32, 256, 256
	a := make([]float64, m*k)
	w := make([]float64, n*k)
	c := make([]float64, m*n)
	fillRand(rng, a)
	fillRand(rng, w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmTBEx(m, n, k, a, k, w, k, c, n, nil)
	}
}
func BenchmarkDenseGemmPacked32x256x256(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const m, n, k = 32, 256, 256
	a := make([]float64, m*k)
	w := make([]float64, n*k)
	c := make([]float64, m*n)
	fillRand(rng, a)
	fillRand(rng, w)
	pb := PackTB(n, k, w, k)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GemmTBPackedEx(m, n, k, a, k, pb, c, n, nil)
	}
}
