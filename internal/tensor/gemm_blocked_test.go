package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Reference implementations: the original naive triple loops the blocked
// kernels replaced. They are the correctness oracle for the property tests —
// any (m, n, k, ld*) must agree with them to within accumulation-order
// rounding.

func gemmRef(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		ci := c[i*ldc : i*ldc+n]
		ai := a[i*lda : i*lda+k]
		for p := 0; p < k; p++ {
			av := ai[p]
			bp := b[p*ldb : p*ldb+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

func gemmTARef(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for p := 0; p < k; p++ {
		ap := a[p*lda : p*lda+m]
		bp := b[p*ldb : p*ldb+n]
		for i, av := range ap {
			ci := c[i*ldc : i*ldc+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

func gemmTBRef(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		ai := a[i*lda : i*lda+k]
		ci := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+k]
			s := 0.0
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] += s
		}
	}
}

// fillRand fills a strided rows×cols region (and its slack, to catch kernels
// that read past the logical columns) with standard normals.
func fillRand(rng *rand.Rand, buf []float64) {
	for i := range buf {
		buf[i] = rng.NormFloat64()
	}
}

// gemmCase runs one (m,n,k,ld) configuration through a kernel and its
// reference and compares, also verifying that slack columns between the
// logical width and the leading dimension are untouched.
func gemmCase(t *testing.T, name string, m, n, k, lda, ldb, ldc int,
	kernel, ref func(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int),
	aRows, aCols, bRows, bCols int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(m*1000003 + n*1009 + k)))
	a := make([]float64, (aRows-1)*lda+aCols+7)
	b := make([]float64, (bRows-1)*ldb+bCols+7)
	cGot := make([]float64, (m-1)*ldc+n+7)
	fillRand(rng, a)
	fillRand(rng, b)
	fillRand(rng, cGot) // nonzero start exercises accumulation
	cWant := append([]float64(nil), cGot...)

	kernel(m, n, k, a, lda, b, ldb, cGot, ldc)
	ref(m, n, k, a, lda, b, ldb, cWant, ldc)

	tol := 1e-10 * math.Sqrt(float64(k))
	for i := range cGot {
		row, col := i/ldc, i%ldc
		inRegion := row < m && col < n
		d := math.Abs(cGot[i] - cWant[i])
		if inRegion && d > tol {
			t.Fatalf("%s m=%d n=%d k=%d lda=%d ldb=%d ldc=%d: C[%d,%d] = %g, want %g (|Δ|=%g)",
				name, m, n, k, lda, ldb, ldc, row, col, cGot[i], cWant[i], d)
		}
		if !inRegion && cGot[i] != cWant[i] {
			t.Fatalf("%s m=%d n=%d k=%d: slack element %d modified (%g → %g)",
				name, m, n, k, i, cWant[i], cGot[i])
		}
	}
}

// TestGemmAgainstReference sweeps deterministic shapes — both below and above
// the blocked-path and parallel-path thresholds, with tight and strided
// leading dimensions — for all three kernels.
func TestGemmAgainstReference(t *testing.T) {
	type shape struct{ m, n, k, pad int }
	shapes := []shape{
		{1, 1, 1, 0},
		{3, 5, 7, 0},
		{4, 4, 4, 3},
		{16, 16, 16, 0},
		{31, 33, 29, 5},     // ragged, below blocked threshold
		{48, 48, 48, 0},     // at the blocked threshold boundary
		{64, 64, 64, 9},     // blocked, ragged ld
		{65, 67, 63, 1},     // blocked, every edge panel ragged
		{128, 32, 256, 0},   // full kc run
		{40, 300, 20, 2},    // wide n crossing the nc panel boundary
		{300, 7, 70, 0},     // tall m crossing mc blocks
		{130, 130, 130, 11}, // above parallel threshold with GOMAXPROCS>1
		{256, 256, 260, 0},  // k > kc: multiple packed k panels
	}
	for _, s := range shapes {
		lda, ldb, ldc := s.k+s.pad, s.n+s.pad, s.n+s.pad
		gemmCase(t, "Gemm", s.m, s.n, s.k, lda, ldb, ldc, Gemm, gemmRef, s.m, s.k, s.k, s.n)
		// GemmTA: A stored [k×m], so lda ≥ m.
		gemmCase(t, "GemmTA", s.m, s.n, s.k, s.m+s.pad, ldb, ldc, GemmTA, gemmTARef, s.k, s.m, s.k, s.n)
		// GemmTB: B stored [n×k], so ldb ≥ k.
		gemmCase(t, "GemmTB", s.m, s.n, s.k, lda, s.k+s.pad, ldc, GemmTB, gemmTBRef, s.m, s.k, s.n, s.k)
	}
}

// TestGemmRandomShapes is the property test: random m, n, k and random
// strides (ld* ≥ logical width) must always agree with the reference.
func TestGemmRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	iters := 60
	if testing.Short() {
		iters = 20
	}
	for it := 0; it < iters; it++ {
		m := 1 + rng.Intn(90)
		n := 1 + rng.Intn(90)
		k := 1 + rng.Intn(90)
		if it%5 == 0 {
			// Occasionally push one dimension through the blocked panels.
			switch it % 3 {
			case 0:
				m += 200
			case 1:
				n += 200
			default:
				k += 300
			}
		}
		padA, padB, padC := rng.Intn(8), rng.Intn(8), rng.Intn(8)
		gemmCase(t, "Gemm", m, n, k, k+padA, n+padB, n+padC, Gemm, gemmRef, m, k, k, n)
		gemmCase(t, "GemmTA", m, n, k, m+padA, n+padB, n+padC, GemmTA, gemmTARef, k, m, k, n)
		gemmCase(t, "GemmTB", m, n, k, k+padA, k+padB, n+padC, GemmTB, gemmTBRef, m, k, n, k)
	}
}

// TestMatVecChecks verifies the unified shape-error reporting of the
// matrix–vector kernels.
func TestMatVecChecks(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	a := make([]float64, 12)
	x := make([]float64, 4)
	y := make([]float64, 3)
	MatVec(3, 4, a, 4, x, y) // well-formed
	expectPanic("short x", func() { MatVec(3, 4, a, 4, x[:3], y) })
	expectPanic("short y", func() { MatVec(3, 4, a, 4, x, y[:2]) })
	expectPanic("short A", func() { MatVec(4, 4, a, 4, x, make([]float64, 4)) })
	expectPanic("bad lda", func() { MatVec(3, 4, a, 3, x, y) })
	expectPanic("MatTVec short x", func() { MatTVec(3, 4, a, 4, make([]float64, 2), x) })
	expectPanic("OuterAcc short y", func() { OuterAcc(3, 4, a, 4, y, x[:3]) })
}

// --- kernel benchmarks: size sweep for the perf trajectory ---

func benchGemmSize(b *testing.B, n int, kernel func(m, n, k int, a []float64, lda int, bm []float64, ldb int, c []float64, ldc int)) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, n*n)
	bm := make([]float64, n*n)
	c := make([]float64, n*n)
	fillRand(rng, a)
	fillRand(rng, bm)
	b.SetBytes(int64(8 * n * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(n, n, n, a, n, bm, n, c, n)
	}
	b.ReportMetric(2*float64(n)*float64(n)*float64(n)/float64(b.Elapsed().Nanoseconds())*float64(b.N), "GFLOPS")
}

func BenchmarkGemm32(b *testing.B)    { benchGemmSize(b, 32, Gemm) }
func BenchmarkGemm64(b *testing.B)    { benchGemmSize(b, 64, Gemm) }
func BenchmarkGemm128(b *testing.B)   { benchGemmSize(b, 128, Gemm) }
func BenchmarkGemm256(b *testing.B)   { benchGemmSize(b, 256, Gemm) }
func BenchmarkGemm512(b *testing.B)   { benchGemmSize(b, 512, Gemm) }
func BenchmarkGemmTA256(b *testing.B) { benchGemmSize(b, 256, GemmTA) }
func BenchmarkGemmTB256(b *testing.B) { benchGemmSize(b, 256, GemmTB) }

func BenchmarkGemmRef256(b *testing.B) { benchGemmSize(b, 256, gemmRef) }

var _ = fmt.Sprintf // keep fmt linked for debug sessions
