package tensor

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Reference implementations: the original naive triple loops the blocked
// kernels replaced. They are the correctness oracle for the property tests —
// any (m, n, k, ld*) must agree with them to within accumulation-order
// rounding.

func gemmRef(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		ci := c[i*ldc : i*ldc+n]
		ai := a[i*lda : i*lda+k]
		for p := 0; p < k; p++ {
			av := ai[p]
			bp := b[p*ldb : p*ldb+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

func gemmTARef(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for p := 0; p < k; p++ {
		ap := a[p*lda : p*lda+m]
		bp := b[p*ldb : p*ldb+n]
		for i, av := range ap {
			ci := c[i*ldc : i*ldc+n]
			for j, bv := range bp {
				ci[j] += av * bv
			}
		}
	}
}

func gemmTBRef(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	for i := 0; i < m; i++ {
		ai := a[i*lda : i*lda+k]
		ci := c[i*ldc : i*ldc+n]
		for j := 0; j < n; j++ {
			bj := b[j*ldb : j*ldb+k]
			s := 0.0
			for p, av := range ai {
				s += av * bj[p]
			}
			ci[j] += s
		}
	}
}

// fillRand fills a strided rows×cols region (and its slack, to catch kernels
// that read past the logical columns) with standard normals.
func fillRand(rng *rand.Rand, buf []float64) {
	for i := range buf {
		buf[i] = rng.NormFloat64()
	}
}

// gemmCase runs one (m,n,k,ld) configuration through a kernel and its
// reference and compares, also verifying that slack columns between the
// logical width and the leading dimension are untouched.
func gemmCase(t *testing.T, name string, m, n, k, lda, ldb, ldc int,
	kernel, ref func(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int),
	aRows, aCols, bRows, bCols int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(m*1000003 + n*1009 + k)))
	a := make([]float64, (aRows-1)*lda+aCols+7)
	b := make([]float64, (bRows-1)*ldb+bCols+7)
	cGot := make([]float64, (m-1)*ldc+n+7)
	fillRand(rng, a)
	fillRand(rng, b)
	fillRand(rng, cGot) // nonzero start exercises accumulation
	cWant := append([]float64(nil), cGot...)

	kernel(m, n, k, a, lda, b, ldb, cGot, ldc)
	ref(m, n, k, a, lda, b, ldb, cWant, ldc)

	tol := 1e-10 * math.Sqrt(float64(k))
	for i := range cGot {
		row, col := i/ldc, i%ldc
		inRegion := row < m && col < n
		d := math.Abs(cGot[i] - cWant[i])
		if inRegion && d > tol {
			t.Fatalf("%s m=%d n=%d k=%d lda=%d ldb=%d ldc=%d: C[%d,%d] = %g, want %g (|Δ|=%g)",
				name, m, n, k, lda, ldb, ldc, row, col, cGot[i], cWant[i], d)
		}
		if !inRegion && cGot[i] != cWant[i] {
			t.Fatalf("%s m=%d n=%d k=%d: slack element %d modified (%g → %g)",
				name, m, n, k, i, cWant[i], cGot[i])
		}
	}
}

// TestGemmAgainstReference sweeps deterministic shapes — both below and above
// the blocked-path and parallel-path thresholds, with tight and strided
// leading dimensions — for all three kernels.
func TestGemmAgainstReference(t *testing.T) {
	type shape struct{ m, n, k, pad int }
	shapes := []shape{
		{1, 1, 1, 0},
		{3, 5, 7, 0},
		{4, 4, 4, 3},
		{16, 16, 16, 0},
		{31, 33, 29, 5},     // ragged, below blocked threshold
		{48, 48, 48, 0},     // at the blocked threshold boundary
		{64, 64, 64, 9},     // blocked, ragged ld
		{65, 67, 63, 1},     // blocked, every edge panel ragged
		{128, 32, 256, 0},   // full kc run
		{40, 300, 20, 2},    // wide n crossing the nc panel boundary
		{300, 7, 70, 0},     // tall m crossing mc blocks
		{130, 130, 130, 11}, // above parallel threshold with GOMAXPROCS>1
		{256, 256, 260, 0},  // k > kc: multiple packed k panels
	}
	for _, s := range shapes {
		lda, ldb, ldc := s.k+s.pad, s.n+s.pad, s.n+s.pad
		gemmCase(t, "Gemm", s.m, s.n, s.k, lda, ldb, ldc, Gemm, gemmRef, s.m, s.k, s.k, s.n)
		// GemmTA: A stored [k×m], so lda ≥ m.
		gemmCase(t, "GemmTA", s.m, s.n, s.k, s.m+s.pad, ldb, ldc, GemmTA, gemmTARef, s.k, s.m, s.k, s.n)
		// GemmTB: B stored [n×k], so ldb ≥ k.
		gemmCase(t, "GemmTB", s.m, s.n, s.k, lda, s.k+s.pad, ldc, GemmTB, gemmTBRef, s.m, s.k, s.n, s.k)
	}
}

// TestGemmRandomShapes is the property test: random m, n, k and random
// strides (ld* ≥ logical width) must always agree with the reference.
func TestGemmRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	iters := 60
	if testing.Short() {
		iters = 20
	}
	for it := 0; it < iters; it++ {
		m := 1 + rng.Intn(90)
		n := 1 + rng.Intn(90)
		k := 1 + rng.Intn(90)
		if it%5 == 0 {
			// Occasionally push one dimension through the blocked panels.
			switch it % 3 {
			case 0:
				m += 200
			case 1:
				n += 200
			default:
				k += 300
			}
		}
		padA, padB, padC := rng.Intn(8), rng.Intn(8), rng.Intn(8)
		gemmCase(t, "Gemm", m, n, k, k+padA, n+padB, n+padC, Gemm, gemmRef, m, k, k, n)
		gemmCase(t, "GemmTA", m, n, k, m+padA, n+padB, n+padC, GemmTA, gemmTARef, k, m, k, n)
		gemmCase(t, "GemmTB", m, n, k, k+padA, k+padB, n+padC, GemmTB, gemmTBRef, m, k, n, k)
	}
}

// --- assign-mode epilogue kernels (GemmEx, GemmTBEx) ---

// epilogueRef applies the Epilogue contract naively to a fully accumulated
// product — the oracle for the fused in-panel application.
func epilogueRef(m, n int, c []float64, ldc int, ep *Epilogue) {
	if ep == nil {
		return
	}
	alpha := ep.Alpha
	if alpha == 0 {
		alpha = 1
	}
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			v := alpha * c[i*ldc+j]
			if ep.RowScale != nil {
				v *= ep.RowScale[i]
			}
			if ep.RowShift != nil {
				v += ep.RowShift[i]
			}
			if ep.ColScale != nil {
				v *= ep.ColScale[j]
			}
			if ep.ColShift != nil {
				v += ep.ColShift[j]
			}
			if ep.ReLU && !(v > 0) {
				v = 0
			}
			c[i*ldc+j] = v
		}
	}
}

// epilogueCases enumerates every epilogue feature combination (2^6 via the
// bitmask) with random vectors.
func epilogueCase(rng *rand.Rand, mask, m, n int) *Epilogue {
	ep := &Epilogue{}
	randVec := func(l int) []float64 {
		v := make([]float64, l)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	if mask&1 != 0 {
		ep.Alpha = 0.25 + rng.Float64()
	}
	if mask&2 != 0 {
		ep.RowScale = randVec(m)
	}
	if mask&4 != 0 {
		ep.RowShift = randVec(m)
	}
	if mask&8 != 0 {
		ep.ColScale = randVec(n)
	}
	if mask&16 != 0 {
		ep.ColShift = randVec(n)
	}
	ep.ReLU = mask&32 != 0
	return ep
}

// gemmExCase runs one assign-mode configuration through a fused kernel and
// its unfused reference (accumulate into zeros, then apply the epilogue
// naively), starting from a garbage-filled destination to prove assign mode
// overwrites every element.
func gemmExCase(t *testing.T, name string, m, n, k, lda, ldb, ldc int, ep *Epilogue,
	kernel func(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int, ep *Epilogue),
	ref func(m, n, k int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int),
	aRows, aCols, bRows, bCols int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(m*999979 + n*1013 + k*7)))
	a := make([]float64, (aRows-1)*lda+aCols+5)
	b := make([]float64, (bRows-1)*ldb+bCols+5)
	cGot := make([]float64, (m-1)*ldc+n+5)
	fillRand(rng, a)
	fillRand(rng, b)
	fillRand(rng, cGot) // garbage start: assign mode must overwrite all of it
	cWant := make([]float64, len(cGot))
	copy(cWant, cGot)
	for i := range cWant {
		row, col := i/ldc, i%ldc
		if row < m && col < n {
			cWant[i] = 0
		}
	}

	kernel(m, n, k, a, lda, b, ldb, cGot, ldc, ep)
	ref(m, n, k, a, lda, b, ldb, cWant, ldc)
	epilogueRef(m, n, cWant, ldc, ep)

	tol := 1e-10 * math.Sqrt(float64(k))
	for i := range cGot {
		row, col := i/ldc, i%ldc
		inRegion := row < m && col < n
		d := math.Abs(cGot[i] - cWant[i])
		if inRegion && d > tol {
			t.Fatalf("%s m=%d n=%d k=%d: C[%d,%d] = %g, want %g (|Δ|=%g)",
				name, m, n, k, row, col, cGot[i], cWant[i], d)
		}
		if !inRegion && cGot[i] != cWant[i] {
			t.Fatalf("%s m=%d n=%d k=%d: slack element %d modified (%g → %g)",
				name, m, n, k, i, cWant[i], cGot[i])
		}
	}
}

// TestGemmExEpilogueCombinations sweeps every epilogue feature combination
// over shapes on both sides of the blocked and parallel thresholds.
func TestGemmExEpilogueCombinations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	type shape struct{ m, n, k, pad int }
	shapes := []shape{
		{1, 1, 1, 0},
		{3, 17, 5, 2},
		{16, 64, 9, 0},
		{8, 300, 72, 3},    // conv-like: few rows, wide batch columns
		{65, 67, 63, 1},    // blocked, ragged panels
		{40, 130, 270, 2},  // k > kc: epilogue must fire on the last k-panel only
		{130, 130, 130, 0}, // above the parallel threshold
	}
	for _, s := range shapes {
		for mask := 0; mask < 64; mask++ {
			ep := epilogueCase(rng, mask, s.m, s.n)
			lda, ldb, ldc := s.k+s.pad, s.n+s.pad, s.n+s.pad
			gemmExCase(t, "GemmEx", s.m, s.n, s.k, lda, ldb, ldc, ep, GemmEx, gemmRef, s.m, s.k, s.k, s.n)
			// GemmTBEx: B stored [n×k], so ldb ≥ k.
			gemmExCase(t, "GemmTBEx", s.m, s.n, s.k, lda, s.k+s.pad, ldc, ep, GemmTBEx, gemmTBRef, s.m, s.k, s.n, s.k)
		}
	}
}

// TestGemmExRandomShapes is the property test for the assign-mode kernels:
// random shapes, random strides, random epilogues.
func TestGemmExRandomShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	iters := 60
	if testing.Short() {
		iters = 20
	}
	for it := 0; it < iters; it++ {
		m := 1 + rng.Intn(90)
		n := 1 + rng.Intn(90)
		k := 1 + rng.Intn(90)
		if it%5 == 0 {
			switch it % 3 {
			case 0:
				m += 200
			case 1:
				n += 200
			default:
				k += 300
			}
		}
		ep := epilogueCase(rng, rng.Intn(64), m, n)
		padA, padB, padC := rng.Intn(8), rng.Intn(8), rng.Intn(8)
		gemmExCase(t, "GemmEx", m, n, k, k+padA, n+padB, n+padC, ep, GemmEx, gemmRef, m, k, k, n)
		gemmExCase(t, "GemmTBEx", m, n, k, k+padA, k+padB, n+padC, ep, GemmTBEx, gemmTBRef, m, k, n, k)
	}
}

// TestGemmExBitIdenticalToGemm pins the assign-mode contract the inference
// path relies on: with no epilogue, GemmEx over garbage equals Gemm over
// zeros bit for bit (same kernels, same accumulation order).
func TestGemmExBitIdenticalToGemm(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, s := range [][3]int{{5, 9, 3}, {16, 256, 72}, {64, 64, 300}, {130, 130, 130}} {
		m, n, k := s[0], s[1], s[2]
		a := make([]float64, m*k)
		b := make([]float64, k*n)
		fillRand(rng, a)
		fillRand(rng, b)
		want := make([]float64, m*n)
		Gemm(m, n, k, a, k, b, n, want, n)
		got := make([]float64, m*n)
		fillRand(rng, got)
		GemmEx(m, n, k, a, k, b, n, got, n, nil)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("m=%d n=%d k=%d: GemmEx[%d]=%g, Gemm=%g", m, n, k, i, got[i], want[i])
			}
		}
	}
}

// TestGemmExEmptyK pins the assign-mode contract at k = 0: an empty sum
// must still fully overwrite C (zeros) and run the epilogue, matching what
// GemmTBEx's simple path already does.
func TestGemmExEmptyK(t *testing.T) {
	c := []float64{7, 7, 7, 7, 7, 7}
	GemmEx(2, 2, 0, nil, 0, nil, 2, c, 3, &Epilogue{RowShift: []float64{1, 2}})
	want := []float64{1, 1, 7, 2, 2, 7} // ldc=3: slack column untouched
	for i := range want {
		if c[i] != want[i] {
			t.Fatalf("c[%d] = %g, want %g (full: %v)", i, c[i], want[i], c)
		}
	}
	c2 := []float64{7, 7, 7, 7}
	GemmTBEx(2, 2, 0, nil, 0, nil, 0, c2, 2, nil)
	for i, v := range c2 {
		if v != 0 {
			t.Fatalf("GemmTBEx k=0: c[%d] = %g, want 0", i, v)
		}
	}
}

// TestEpilogueVectorChecks verifies the epilogue length validation.
func TestEpilogueVectorChecks(t *testing.T) {
	a := make([]float64, 12)
	b := make([]float64, 12)
	c := make([]float64, 9)
	defer func() {
		if recover() == nil {
			t.Fatal("GemmEx accepted a short RowScale")
		}
	}()
	GemmEx(3, 3, 4, a, 4, b, 3, c, 3, &Epilogue{RowScale: make([]float64, 2)})
}

// TestMatVecChecks verifies the unified shape-error reporting of the
// matrix–vector kernels.
func TestMatVecChecks(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	a := make([]float64, 12)
	x := make([]float64, 4)
	y := make([]float64, 3)
	MatVec(3, 4, a, 4, x, y) // well-formed
	expectPanic("short x", func() { MatVec(3, 4, a, 4, x[:3], y) })
	expectPanic("short y", func() { MatVec(3, 4, a, 4, x, y[:2]) })
	expectPanic("short A", func() { MatVec(4, 4, a, 4, x, make([]float64, 4)) })
	expectPanic("bad lda", func() { MatVec(3, 4, a, 3, x, y) })
	expectPanic("MatTVec short x", func() { MatTVec(3, 4, a, 4, make([]float64, 2), x) })
	expectPanic("OuterAcc short y", func() { OuterAcc(3, 4, a, 4, y, x[:3]) })
}

// --- kernel benchmarks: size sweep for the perf trajectory ---

func benchGemmSize(b *testing.B, n int, kernel func(m, n, k int, a []float64, lda int, bm []float64, ldb int, c []float64, ldc int)) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, n*n)
	bm := make([]float64, n*n)
	c := make([]float64, n*n)
	fillRand(rng, a)
	fillRand(rng, bm)
	b.SetBytes(int64(8 * n * n))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kernel(n, n, n, a, n, bm, n, c, n)
	}
	b.ReportMetric(2*float64(n)*float64(n)*float64(n)/float64(b.Elapsed().Nanoseconds())*float64(b.N), "GFLOPS")
}

func BenchmarkGemm32(b *testing.B)    { benchGemmSize(b, 32, Gemm) }
func BenchmarkGemm64(b *testing.B)    { benchGemmSize(b, 64, Gemm) }
func BenchmarkGemm128(b *testing.B)   { benchGemmSize(b, 128, Gemm) }
func BenchmarkGemm256(b *testing.B)   { benchGemmSize(b, 256, Gemm) }
func BenchmarkGemm512(b *testing.B)   { benchGemmSize(b, 512, Gemm) }
func BenchmarkGemmTA256(b *testing.B) { benchGemmSize(b, 256, GemmTA) }
func BenchmarkGemmTB256(b *testing.B) { benchGemmSize(b, 256, GemmTB) }

func BenchmarkGemmRef256(b *testing.B) { benchGemmSize(b, 256, gemmRef) }

var _ = fmt.Sprintf // keep fmt linked for debug sessions
