//go:build !amd64

package tensor

// Non-amd64 hosts have no vector backend; the engine stays on the scalar
// micro-kernels (useAVX/useFMA false means the stubs below are never
// reached). The fast tiers still work — their scalar loops use math.FMA,
// which is correctly rounded in software — they just bring no speedup.
var (
	useAVX = false
	useFMA = false
)

func axpyQuad2AVX(c0, c1, b0, b1, b2, b3, a0, a1 []float64)       { panic("tensor: no vector kernel") }
func axpyQuad2AssignAVX(c0, c1, b0, b1, b2, b3, a0, a1 []float64) { panic("tensor: no vector kernel") }
func axpyQuad1AVX(c0, b0, b1, b2, b3, a0 []float64)               { panic("tensor: no vector kernel") }
func axpyQuad1AssignAVX(c0, b0, b1, b2, b3, a0 []float64)         { panic("tensor: no vector kernel") }

func axpyQuad2FMA(c0, c1, b0, b1, b2, b3, a0, a1 []float64)       { panic("tensor: no vector kernel") }
func axpyQuad2AssignFMA(c0, c1, b0, b1, b2, b3, a0, a1 []float64) { panic("tensor: no vector kernel") }
func axpyQuad1FMA(c0, b0, b1, b2, b3, a0 []float64)               { panic("tensor: no vector kernel") }
func axpyQuad1AssignFMA(c0, b0, b1, b2, b3, a0 []float64)         { panic("tensor: no vector kernel") }

func fmaDot4x8(kcb int, a0, a1, a2, a3, b []float64, ldb int, c0, c1, c2, c3 []float64) {
	panic("tensor: no vector kernel")
}

func fmaDot4x8Assign(kcb int, a0, a1, a2, a3, b []float64, ldb int, c0, c1, c2, c3 []float64) {
	panic("tensor: no vector kernel")
}

func fmaDot4x8B32(kcb int, a0, a1, a2, a3 []float64, b []float32, ldb int, c0, c1, c2, c3 []float64) {
	panic("tensor: no vector kernel")
}

func fmaDot4x8B32Assign(kcb int, a0, a1, a2, a3 []float64, b []float32, ldb int, c0, c1, c2, c3 []float64) {
	panic("tensor: no vector kernel")
}

func cvtPD2PS(dst []float32, src []float64) { panic("tensor: no vector kernel") }

func axpyQuad2F32(c0, c1 []float64, b0, b1, b2, b3 []float32, a0, a1 []float64) {
	panic("tensor: no vector kernel")
}

func axpyQuad2AssignF32(c0, c1 []float64, b0, b1, b2, b3 []float32, a0, a1 []float64) {
	panic("tensor: no vector kernel")
}

func axpyQuad1F32(c0 []float64, b0, b1, b2, b3 []float32, a0 []float64) {
	panic("tensor: no vector kernel")
}

func axpyQuad1AssignF32(c0 []float64, b0, b1, b2, b3 []float32, a0 []float64) {
	panic("tensor: no vector kernel")
}
