//go:build !amd64

package tensor

// Non-amd64 hosts have no vector backend; the engine stays on the scalar
// micro-kernels (useAVX false means the stubs below are never reached).
var useAVX = false

func axpyQuad2AVX(c0, c1, b0, b1, b2, b3, a0, a1 []float64)       { panic("tensor: no vector kernel") }
func axpyQuad2AssignAVX(c0, c1, b0, b1, b2, b3, a0, a1 []float64) { panic("tensor: no vector kernel") }
func axpyQuad1AVX(c0, b0, b1, b2, b3, a0 []float64)               { panic("tensor: no vector kernel") }
func axpyQuad1AssignAVX(c0, b0, b1, b2, b3, a0 []float64)         { panic("tensor: no vector kernel") }
