package tensor

// AVX backend of the axpy micro-kernel. The quad-axpy inner loop of
// gemmPanel vectorizes over the C columns: each lane evaluates exactly the
// scalar expression ((a0·b0 + a1·b1) + a2·b2) + a3·b3 with VEX mul/add (no
// FMA — a fused multiply-add rounds once where the scalar code rounds twice),
// so every C element receives bit-identical results to the scalar kernel and
// the engine's accumulation-order contract survives the speedup. Detection is
// at process start via CPUID; non-AVX hosts and short panels stay on the
// scalar loops.

// useAVX gates the vector kernels; overridable in tests to pin scalar/vector
// equivalence.
var useAVX = cpuHasAVX()

// cpuHasAVX reports whether the CPU supports AVX and the OS saves YMM state.
func cpuHasAVX() bool

// axpyQuad2AVX computes, for j in [0, len(c0)):
//
//	c0[j] += a0[0]·b0[j] + a0[1]·b1[j] + a0[2]·b2[j] + a0[3]·b3[j]
//	c1[j] += a1[0]·b0[j] + a1[1]·b1[j] + a1[2]·b2[j] + a1[3]·b3[j]
//
// b0..b3 and c1 must hold at least len(c0) elements, a0 and a1 at least 4.
//
//go:noescape
func axpyQuad2AVX(c0, c1, b0, b1, b2, b3, a0, a1 []float64)

// axpyQuad2AssignAVX is axpyQuad2AVX with β=0: the results overwrite c0/c1.
//
//go:noescape
func axpyQuad2AssignAVX(c0, c1, b0, b1, b2, b3, a0, a1 []float64)

// axpyQuad1AVX is the one-row form of axpyQuad2AVX.
//
//go:noescape
func axpyQuad1AVX(c0, b0, b1, b2, b3, a0 []float64)

// axpyQuad1AssignAVX is axpyQuad1AVX with β=0.
//
//go:noescape
func axpyQuad1AssignAVX(c0, b0, b1, b2, b3, a0 []float64)
