package tensor

// FMA backend of the axpy micro-kernel (the fast tiers' vector path). Unlike
// the AVX kernels of kernel_amd64.go, each lane here contracts every
// multiply-add into one VFMADD231PD — acc = fma(a, b, acc), rounded once —
// matching the math.FMA chain the fast tiers' scalar loops evaluate, so the
// fma and f32 tiers are bit-deterministic across the vector/scalar dispatch
// boundary even though they are not bit-identical to the exact tier. The F32
// variants take float32 B panels and widen each lane to f64 on load
// (VCVTPS2PD); accumulation stays f64 throughout. Detection is at process
// start via CPUID; non-FMA hosts stay on the math.FMA scalar loops.

// useFMA gates the fused vector kernels; overridable in tests to pin the
// vector/scalar determinism of the fast tiers.
var useFMA = cpuHasFMA()

// cpuHasFMA reports whether the CPU supports FMA3 alongside AVX and the OS
// saves YMM state.
func cpuHasFMA() bool

// axpyQuad2FMA computes, for j in [0, len(c0)):
//
//	c0[j] = fma(a0[3],b3[j], fma(a0[2],b2[j], fma(a0[1],b1[j], fma(a0[0],b0[j], c0[j]))))
//	c1[j] = fma(a1[3],b3[j], fma(a1[2],b2[j], fma(a1[1],b1[j], fma(a1[0],b0[j], c1[j]))))
//
// b0..b3 and c1 must hold at least len(c0) elements, a0 and a1 at least 4.
//
//go:noescape
func axpyQuad2FMA(c0, c1, b0, b1, b2, b3, a0, a1 []float64)

// axpyQuad2AssignFMA is axpyQuad2FMA with β=0: the chain seeds with
// a[0]·b0[j] (one rounding) instead of loading C.
//
//go:noescape
func axpyQuad2AssignFMA(c0, c1, b0, b1, b2, b3, a0, a1 []float64)

// axpyQuad1FMA is the one-row form of axpyQuad2FMA.
//
//go:noescape
func axpyQuad1FMA(c0, b0, b1, b2, b3, a0 []float64)

// axpyQuad1AssignFMA is axpyQuad1FMA with β=0.
//
//go:noescape
func axpyQuad1AssignFMA(c0, b0, b1, b2, b3, a0 []float64)

// fmaDot4x8 is the C-resident 4×8 dot micro-kernel: it computes, for four C
// row slices c0..c3 (each at least 8 wide) against four A row slices a0..a3
// (each at least kcb long) and a B panel with row stride ldb,
//
//	cr[j] = fma(ar[kcb-1],b[kcb-1][j], ... fma(ar[1],b[1][j], fma(ar[0],b[0][j], cr[j])))
//
// for r in 0..3 and j in 0..7 — the same ascending-k fused chain as the
// axpyQuad kernels and math.FMA, carried in registers across the whole kcb
// panel instead of spilling to C every four k steps. b must hold at least
// (kcb-1)·ldb + 8 elements.
//
//go:noescape
func fmaDot4x8(kcb int, a0, a1, a2, a3, b []float64, ldb int, c0, c1, c2, c3 []float64)

// fmaDot4x8Assign is fmaDot4x8 with β=0: each chain seeds with a·b at k=0
// (one rounding) instead of loading C. kcb must be ≥ 1.
//
//go:noescape
func fmaDot4x8Assign(kcb int, a0, a1, a2, a3, b []float64, ldb int, c0, c1, c2, c3 []float64)

// fmaDot4x8B32 is fmaDot4x8 over a float32 B panel: B lanes widen to f64 on
// load (VCVTPS2PD, exact), so the arithmetic — and the result, given equal
// inputs — is identical to fmaDot4x8 on pre-widened operands. A PackedMat32
// scale is folded into a0..a3 by the caller.
//
//go:noescape
func fmaDot4x8B32(kcb int, a0, a1, a2, a3 []float64, b []float32, ldb int, c0, c1, c2, c3 []float64)

// fmaDot4x8B32Assign is fmaDot4x8B32 with β=0. kcb must be ≥ 1.
//
//go:noescape
func fmaDot4x8B32Assign(kcb int, a0, a1, a2, a3 []float64, b []float32, ldb int, c0, c1, c2, c3 []float64)

// cvtPD2PS narrows dst[i] = float32(src[i]) for i in [0, len(src)) with
// round-to-nearest-even — bit-identical to Go's conversion, ~4 lanes per
// cycle instead of the scalar loop's one. len(dst) must be ≥ len(src).
//
//go:noescape
func cvtPD2PS(dst []float32, src []float64)

// axpyQuad2F32 is axpyQuad2FMA over float32 B panels: each B lane is widened
// to f64 (exact) before the fused multiply-add, so the arithmetic — and the
// result, given equal inputs — is identical to axpyQuad2FMA on pre-widened
// operands. The per-panel scale of a PackedMat32 is folded into a0/a1 by the
// caller. These serve the f32 row and column tails the 4×8 dot kernel
// cannot cover (fewer than 4 C rows, or fewer than 8 columns).
//
//go:noescape
func axpyQuad2F32(c0, c1 []float64, b0, b1, b2, b3 []float32, a0, a1 []float64)

// axpyQuad2AssignF32 is axpyQuad2F32 with β=0.
//
//go:noescape
func axpyQuad2AssignF32(c0, c1 []float64, b0, b1, b2, b3 []float32, a0, a1 []float64)

// axpyQuad1F32 is the one-row form of axpyQuad2F32.
//
//go:noescape
func axpyQuad1F32(c0 []float64, b0, b1, b2, b3 []float32, a0 []float64)

// axpyQuad1AssignF32 is axpyQuad1F32 with β=0.
//
//go:noescape
func axpyQuad1AssignF32(c0 []float64, b0, b1, b2, b3 []float32, a0 []float64)
