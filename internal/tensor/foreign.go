package tensor

import (
	"fmt"
	"unsafe"
)

// FromBytes wraps a raw little-endian float64 payload — typically one section
// of an mmap-ed checkpoint — as a tensor without copying. The returned tensor
// aliases b: if b is a read-only mapping, writing through the tensor faults,
// so owners of such tensors (nn.Param.Foreign) must clone before mutating.
// The buffer must be 8-byte aligned; checkpoint sections are 64-byte aligned
// on disk and mmap bases are page-aligned, so mapped sections always qualify.
func FromBytes(b []byte, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if len(b) != n*8 {
		panic(fmt.Sprintf("tensor: buffer is %d bytes, shape %v wants %d", len(b), shape, n*8))
	}
	if n == 0 {
		return &Tensor{Shape: append([]int(nil), shape...)}
	}
	if uintptr(unsafe.Pointer(&b[0]))&7 != 0 {
		panic("tensor: foreign buffer is not 8-byte aligned")
	}
	data := unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}
