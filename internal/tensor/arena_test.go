package tensor

import "testing"

func TestArenaGetZeroed(t *testing.T) {
	a := NewArena()
	x := a.Get(3, 4)
	for i := range x.Data {
		x.Data[i] = float64(i + 1)
	}
	a.Reset()
	y := a.Get(4, 3)
	if y.Size() != 12 {
		t.Fatalf("size %d", y.Size())
	}
	for i, v := range y.Data {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %g", i, v)
		}
	}
	if y.Dim(0) != 4 || y.Dim(1) != 3 {
		t.Fatalf("shape %v", y.Shape)
	}
}

func TestArenaGrowsToHighWater(t *testing.T) {
	a := NewArena()
	a.Get(100)
	a.Get(50)
	a.Reset()
	if got := a.Footprint(); got != 150 {
		t.Fatalf("footprint %d after first cycle, want 150", got)
	}
	// Second cycle fits entirely; footprint stable.
	a.Get(100)
	a.Get(50)
	a.Reset()
	if got := a.Footprint(); got != 150 {
		t.Fatalf("footprint %d after repeat cycle, want 150", got)
	}
	// A bigger cycle grows it again.
	a.Get(200)
	a.Reset()
	if got := a.Footprint(); got < 200 {
		t.Fatalf("footprint %d after larger cycle, want ≥ 200", got)
	}
}

func TestArenaSteadyStateAllocs(t *testing.T) {
	a := NewArena()
	warm := func() {
		x := a.Get(8, 16)
		y := a.Get(16)
		_ = a.Wrap(x.Data, 16, 8)
		_ = y
		a.Reset()
	}
	warm()
	warm()
	allocs := testing.AllocsPerRun(100, warm)
	if allocs != 0 {
		t.Fatalf("steady-state arena cycle allocates %v times, want 0", allocs)
	}
}

func TestArenaNilFallback(t *testing.T) {
	var a *Arena
	x := a.Get(2, 2)
	if x.Size() != 4 {
		t.Fatalf("nil-arena Get size %d", x.Size())
	}
	w := a.Wrap(x.Data, 4)
	if w.Dim(0) != 4 {
		t.Fatalf("nil-arena Wrap shape %v", w.Shape)
	}
	a.Reset() // must not panic
	if a.Footprint() != 0 {
		t.Fatal("nil-arena footprint")
	}
}

func TestArenaWrapSharesData(t *testing.T) {
	a := NewArena()
	x := a.Get(2, 6)
	v := a.Wrap(x.Data, 3, 4)
	v.Data[5] = 7
	if x.Data[5] != 7 {
		t.Fatal("Wrap does not alias the underlying data")
	}
}

func TestArenaGetUninitReusesSlabWithoutClearing(t *testing.T) {
	a := NewArena()
	a.Get(16) // first cycle spills to the heap and grows the slab on Reset
	a.Reset()
	x := a.Get(16) // second cycle writes through the slab
	for i := range x.Data {
		x.Data[i] = float64(i + 1)
	}
	a.Reset()
	y := a.GetUninit(16)
	if &y.Data[0] != &x.Data[0] {
		t.Fatal("GetUninit did not reuse the slab")
	}
	dirty := false
	for _, v := range y.Data {
		if v != 0 {
			dirty = true
		}
	}
	if !dirty {
		t.Fatal("GetUninit cleared the slab; expected the previous cycle's contents")
	}
	// Nil arenas and shape handling mirror Get.
	var nilArena *Arena
	z := nilArena.GetUninit(2, 3)
	if z.Size() != 6 || z.Dim(0) != 2 {
		t.Fatalf("nil-arena GetUninit shape %v", z.Shape)
	}
	a.Reset()
	if w := a.Get(16); true {
		for i, v := range w.Data {
			if v != 0 {
				t.Fatalf("Get after GetUninit not zeroed at %d: %g", i, v)
			}
		}
	}
}
