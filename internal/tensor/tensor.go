// Package tensor provides dense float64 tensors and the numerical kernels
// (GEMM, im2col, elementwise operations, reductions) that the neural-network
// layers in internal/nn are built on.
//
// Tensors are row-major and always contiguous. The package is deliberately
// small: it implements exactly the operations the model-slicing engine needs,
// with deterministic behaviour (all randomness is injected via *rand.Rand).
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float64 tensor. The zero value is not usable;
// construct tensors with New, FromSlice or Zeros.
type Tensor struct {
	// Shape holds the extent of each dimension, outermost first.
	Shape []int
	// Data is the contiguous row-major backing storage of length Size().
	Data []float64
}

// New allocates a zero-filled tensor of the given shape.
// It panics if any dimension is non-positive.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape without copying.
// It panics if len(data) does not match the shape volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (size %d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Zeros is an alias of New, provided for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Size returns the number of elements.
func (t *Tensor) Size() int { return len(t.Data) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// CopyFrom copies o's data into t. Shapes must have equal volume.
func (t *Tensor) CopyFrom(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic(fmt.Sprintf("tensor: CopyFrom size mismatch %v vs %v", t.Shape, o.Shape))
	}
	copy(t.Data, o.Data)
}

// Reshape returns a tensor sharing t's data with a new shape of equal volume.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		n *= d
	}
	if n != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape %v (size %d) to %v", t.Shape, len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// At returns the element at the given multi-index (rank must match).
func (t *Tensor) At(idx ...int) float64 {
	return t.Data[t.offset(idx)]
}

// Set assigns v at the given multi-index.
func (t *Tensor) Set(v float64, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Row returns a view of row i of a rank-2 tensor as a slice (no copy).
func (t *Tensor) Row(i int) []float64 {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Row requires rank 2, have shape %v", t.Shape))
	}
	w := t.Shape[1]
	return t.Data[i*w : (i+1)*w]
}

// String renders a compact description, eliding large tensors.
func (t *Tensor) String() string {
	if t.Size() <= 16 {
		return fmt.Sprintf("Tensor%v%v", t.Shape, t.Data)
	}
	return fmt.Sprintf("Tensor%v[%d elems]", t.Shape, t.Size())
}

// Add computes t += o element-wise.
func (t *Tensor) Add(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Add size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += v
	}
}

// Sub computes t -= o element-wise.
func (t *Tensor) Sub(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Sub size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] -= v
	}
}

// Scale multiplies every element by a.
func (t *Tensor) Scale(a float64) {
	for i := range t.Data {
		t.Data[i] *= a
	}
}

// AddScaled computes t += a*o element-wise.
func (t *Tensor) AddScaled(a float64, o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: AddScaled size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] += a * v
	}
}

// Mul computes t *= o element-wise (Hadamard product).
func (t *Tensor) Mul(o *Tensor) {
	if len(t.Data) != len(o.Data) {
		panic("tensor: Mul size mismatch")
	}
	for i, v := range o.Data {
		t.Data[i] *= v
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 { return t.Sum() / float64(len(t.Data)) }

// MaxAbs returns the largest absolute element value.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgMax returns the index of the largest element in row-major order.
func (t *Tensor) ArgMax() int {
	best, bi := math.Inf(-1), 0
	for i, v := range t.Data {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// ArgMaxRow returns, for a rank-2 tensor, the argmax of row i.
func (t *Tensor) ArgMaxRow(i int) int {
	row := t.Row(i)
	best, bi := math.Inf(-1), 0
	for j, v := range row {
		if v > best {
			best, bi = v, j
		}
	}
	return bi
}

// AllFinite reports whether every element is finite (no NaN/Inf).
func (t *Tensor) AllFinite() bool {
	for _, v := range t.Data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
