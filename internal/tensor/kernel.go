package tensor

// Vectorized panel loops. These mirror gemmPanel / gemmPanelAssign /
// gemmPanelRow / gemmPanelAssignRow exactly — same row pairing, same k-quad
// grouping, same tails — with the quad-axpy inner loop handed to the AVX
// kernels of kernel_amd64.s. Because each vector lane evaluates the scalar
// expression tree verbatim, the results are bit-identical to the scalar
// loops; gemmPanel and gemmPanelAssign dispatch here when the host has AVX
// and the panel is wide enough to amortize the call.

// vecMinCols is the narrowest C panel worth a vector call: below it the
// per-call overhead (slice setup, broadcast reloads) beats the lane win. The
// threshold is shared by every vector family — the exact tier's AVX kernels
// and the fast tiers' FMA/F32 kernels (kernel_fma.go) — because the overhead
// it amortizes (per-call setup against per-lane wins) is the same regardless
// of which instruction the inner loop retires.
const vecMinCols = 8

// gemmPanelAVX is the vector form of gemmPanel.
func gemmPanelAVX(rows, ncb, kcb int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	i := 0
	for ; i+2 <= rows; i += 2 {
		ai0 := a[i*lda : i*lda+kcb]
		ai1 := a[(i+1)*lda : (i+1)*lda+kcb]
		ci0 := c[i*ldc : i*ldc+ncb]
		ci1 := c[(i+1)*ldc : (i+1)*ldc+ncb]
		p := 0
		for ; p+4 <= kcb; p += 4 {
			axpyQuad2AVX(ci0, ci1,
				b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
				b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
				ai0[p:p+4], ai1[p:p+4])
		}
		for ; p < kcb; p++ {
			a0v, a1v := ai0[p], ai1[p]
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci0[j] += a0v * bv
				ci1[j] += a1v * bv
			}
		}
	}
	if i < rows {
		gemmPanelRowAVX(ncb, kcb, a[i*lda:i*lda+kcb], b, ldb, c[i*ldc:i*ldc+ncb])
	}
}

// gemmPanelRowAVX is the vector form of gemmPanelRow.
func gemmPanelRowAVX(ncb, kcb int, ai []float64, b []float64, ldb int, ci []float64) {
	p := 0
	for ; p+4 <= kcb; p += 4 {
		axpyQuad1AVX(ci,
			b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
			b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
			ai[p:p+4])
	}
	for ; p < kcb; p++ {
		av := ai[p]
		bp := b[p*ldb : p*ldb+ncb]
		for j, bv := range bp {
			ci[j] += av * bv
		}
	}
}

// gemmPanelAssignAVX is the vector form of gemmPanelAssign.
func gemmPanelAssignAVX(rows, ncb, kcb int, a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	i := 0
	for ; i+2 <= rows; i += 2 {
		ai0 := a[i*lda : i*lda+kcb]
		ai1 := a[(i+1)*lda : (i+1)*lda+kcb]
		ci0 := c[i*ldc : i*ldc+ncb]
		ci1 := c[(i+1)*ldc : (i+1)*ldc+ncb]
		p := 0
		if kcb >= 4 {
			axpyQuad2AssignAVX(ci0, ci1,
				b[0:ncb], b[ldb:ldb+ncb], b[2*ldb:2*ldb+ncb], b[3*ldb:3*ldb+ncb],
				ai0[0:4], ai1[0:4])
			p = 4
		} else {
			a0v, a1v := ai0[0], ai1[0]
			for j, bv := range b[0:ncb] {
				ci0[j] = a0v * bv
				ci1[j] = a1v * bv
			}
			p = 1
		}
		for ; p+4 <= kcb; p += 4 {
			axpyQuad2AVX(ci0, ci1,
				b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
				b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
				ai0[p:p+4], ai1[p:p+4])
		}
		for ; p < kcb; p++ {
			a0v, a1v := ai0[p], ai1[p]
			bp := b[p*ldb : p*ldb+ncb]
			for j, bv := range bp {
				ci0[j] += a0v * bv
				ci1[j] += a1v * bv
			}
		}
	}
	if i < rows {
		gemmPanelAssignRowAVX(ncb, kcb, a[i*lda:i*lda+kcb], b, ldb, c[i*ldc:i*ldc+ncb])
	}
}

// gemmPanelAssignRowAVX is the vector form of gemmPanelAssignRow.
func gemmPanelAssignRowAVX(ncb, kcb int, ai []float64, b []float64, ldb int, ci []float64) {
	p := 0
	if kcb >= 4 {
		axpyQuad1AssignAVX(ci,
			b[0:ncb], b[ldb:ldb+ncb], b[2*ldb:2*ldb+ncb], b[3*ldb:3*ldb+ncb],
			ai[0:4])
		p = 4
	} else {
		av := ai[0]
		for j, bv := range b[0:ncb] {
			ci[j] = av * bv
		}
		p = 1
	}
	for ; p+4 <= kcb; p += 4 {
		axpyQuad1AVX(ci,
			b[p*ldb:p*ldb+ncb], b[(p+1)*ldb:(p+1)*ldb+ncb],
			b[(p+2)*ldb:(p+2)*ldb+ncb], b[(p+3)*ldb:(p+3)*ldb+ncb],
			ai[p:p+4])
	}
	for ; p < kcb; p++ {
		av := ai[p]
		bp := b[p*ldb : p*ldb+ncb]
		for j, bv := range bp {
			ci[j] += av * bv
		}
	}
}
