package tensor

import (
	"math"
	"math/rand"
)

// InitUniform fills t with samples from U(-a, a).
func InitUniform(t *Tensor, a float64, rng *rand.Rand) {
	for i := range t.Data {
		t.Data[i] = (rng.Float64()*2 - 1) * a
	}
}

// InitNormal fills t with samples from N(0, std²).
func InitNormal(t *Tensor, std float64, rng *rand.Rand) {
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
}

// InitXavier fills t with the Glorot uniform initialization for a layer with
// the given fan-in and fan-out.
func InitXavier(t *Tensor, fanIn, fanOut int, rng *rand.Rand) {
	a := math.Sqrt(6.0 / float64(fanIn+fanOut))
	InitUniform(t, a, rng)
}

// InitHe fills t with the Kaiming normal initialization (ReLU gain) for a
// layer with the given fan-in.
func InitHe(t *Tensor, fanIn int, rng *rand.Rand) {
	std := math.Sqrt(2.0 / float64(fanIn))
	InitNormal(t, std, rng)
}
