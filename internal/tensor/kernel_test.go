package tensor

import (
	"math/rand"
	"testing"
)

// TestVectorKernelBitIdenticalToScalar pins the contract the AVX backend is
// built on: with the vector kernels force-disabled, every entry point must
// produce the same bits as with them enabled — each lane evaluates the scalar
// expression tree verbatim (mul then left-to-right adds, no FMA). Skipped on
// hosts with no vector backend.
func TestVectorKernelBitIdenticalToScalar(t *testing.T) {
	if !useAVX {
		t.Skip("no vector kernel on this host")
	}
	rng := rand.New(rand.NewSource(41))
	type shape struct{ m, n, k, pad int }
	shapes := []shape{
		{1, 9, 5, 0},       // single row: quad1 kernels
		{2, 8, 4, 0},       // exactly one quad call, no tails
		{5, 13, 11, 3},     // odd everything: scalar tails on all sides
		{8, 256, 72, 0},    // conv stage shape
		{64, 16, 576, 1},   // deep k: multiple kc panels
		{65, 300, 63, 2},   // ragged nc tiles
		{16, 7, 30, 0},     // below vecMinCols: scalar either way
		{130, 130, 130, 0}, // above the parallel threshold
	}
	run := func(dst []float64, s shape, a, b, bt []float64, ep *Epilogue, which int) {
		lda, ldb, ldc := s.k+s.pad, s.n+s.pad, s.n+s.pad
		switch which {
		case 0:
			Gemm(s.m, s.n, s.k, a, lda, b, ldb, dst, ldc)
		case 1:
			GemmEx(s.m, s.n, s.k, a, lda, b, ldb, dst, ldc, ep)
		case 2:
			GemmTBEx(s.m, s.n, s.k, a, lda, bt, s.k+s.pad, dst, ldc, ep)
		case 3:
			GemmPackedEx(s.m, s.n, s.k, PackA(s.m, s.k, a, lda), b, ldb, dst, ldc, ep)
		case 4:
			GemmTBPackedEx(s.m, s.n, s.k, a, lda, PackTB(s.n, s.k, bt, s.k+s.pad), dst, ldc, ep)
		}
	}
	for _, s := range shapes {
		lda, ldb, ldc := s.k+s.pad, s.n+s.pad, s.n+s.pad
		a := make([]float64, (s.m-1)*lda+s.k+3)
		b := make([]float64, (s.k-1)*ldb+s.n+3)
		bt := make([]float64, (s.n-1)*(s.k+s.pad)+s.k+3)
		fillRand(rng, a)
		fillRand(rng, b)
		fillRand(rng, bt)
		ep := epilogueCase(rng, rng.Intn(64), s.m, s.n)
		for which := 0; which < 5; which++ {
			seed := make([]float64, (s.m-1)*ldc+s.n+3)
			fillRand(rng, seed)
			vec := append([]float64(nil), seed...)
			run(vec, s, a, b, bt, ep, which)
			useAVX = false
			scal := append([]float64(nil), seed...)
			run(scal, s, a, b, bt, ep, which)
			useAVX = true
			for i := range vec {
				if vec[i] != scal[i] {
					t.Fatalf("entry %d m=%d n=%d k=%d pad=%d: vector[%d]=%g, scalar=%g (not bit-identical)",
						which, s.m, s.n, s.k, s.pad, i, vec[i], scal[i])
				}
			}
		}
	}
}
