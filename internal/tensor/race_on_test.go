//go:build race

package tensor

const raceEnabled = true
