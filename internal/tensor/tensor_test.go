package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestNewShapeAndSize(t *testing.T) {
	x := New(2, 3, 4)
	if x.Size() != 24 {
		t.Fatalf("Size = %d, want 24", x.Size())
	}
	if x.Rank() != 3 || x.Dim(0) != 2 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("bad shape %v", x.Shape)
	}
	for _, v := range x.Data {
		if v != 0 {
			t.Fatal("New must zero-fill")
		}
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dimension")
		}
	}()
	New(2, 0)
}

func TestFromSliceNoCopyAndMismatch(t *testing.T) {
	d := []float64{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.Data[0] != 9 {
		t.Fatal("FromSlice must wrap without copying")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size mismatch")
		}
	}()
	FromSlice(d, 3, 2)
}

func TestAtSetOffset(t *testing.T) {
	x := New(2, 3)
	x.Set(5, 1, 2)
	if x.At(1, 2) != 5 {
		t.Fatalf("At(1,2) = %v, want 5", x.At(1, 2))
	}
	if x.Data[1*3+2] != 5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	x := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	x.At(2, 0)
}

func TestCloneIndependence(t *testing.T) {
	x := New(3)
	x.Fill(1)
	y := x.Clone()
	y.Data[0] = 7
	if x.Data[0] != 1 {
		t.Fatal("Clone must deep-copy")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Data[0] = 3
	if x.Data[0] != 3 {
		t.Fatal("Reshape must share data")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for volume mismatch")
		}
	}()
	x.Reshape(5, 2)
}

func TestElementwiseOps(t *testing.T) {
	x := FromSlice([]float64{1, 2, 3}, 3)
	y := FromSlice([]float64{4, 5, 6}, 3)
	x.Add(y)
	if x.Data[2] != 9 {
		t.Fatalf("Add: got %v", x.Data)
	}
	x.Sub(y)
	if x.Data[0] != 1 {
		t.Fatalf("Sub: got %v", x.Data)
	}
	x.Scale(2)
	if x.Data[1] != 4 {
		t.Fatalf("Scale: got %v", x.Data)
	}
	x.AddScaled(0.5, y)
	if x.Data[0] != 4 {
		t.Fatalf("AddScaled: got %v", x.Data)
	}
	x.Mul(y)
	if x.Data[0] != 16 {
		t.Fatalf("Mul: got %v", x.Data)
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float64{-3, 1, 2}, 3)
	if x.Sum() != 0 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 0 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
	if !almostEqual(x.L2Norm(), math.Sqrt(14), 1e-12) {
		t.Fatalf("L2Norm = %v", x.L2Norm())
	}
	if x.ArgMax() != 2 {
		t.Fatalf("ArgMax = %d", x.ArgMax())
	}
}

func TestArgMaxRow(t *testing.T) {
	x := FromSlice([]float64{1, 9, 2, 8, 3, 7}, 2, 3)
	if x.ArgMaxRow(0) != 1 {
		t.Fatalf("ArgMaxRow(0) = %d", x.ArgMaxRow(0))
	}
	if x.ArgMaxRow(1) != 0 {
		t.Fatalf("ArgMaxRow(1) = %d", x.ArgMaxRow(1))
	}
}

func TestAllFinite(t *testing.T) {
	x := New(3)
	if !x.AllFinite() {
		t.Fatal("zeros should be finite")
	}
	x.Data[1] = math.NaN()
	if x.AllFinite() {
		t.Fatal("NaN should be detected")
	}
	x.Data[1] = math.Inf(1)
	if x.AllFinite() {
		t.Fatal("Inf should be detected")
	}
}

// naive reference matmul used by the GEMM tests.
func refMatMul(m, n, k int, a, b []float64) []float64 {
	c := make([]float64, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			s := 0.0
			for p := 0; p < k; p++ {
				s += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = s
		}
	}
	return c
}

func randSlice(n int, rng *rand.Rand) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}

func TestGemmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{1, 1, 1}, {2, 3, 4}, {5, 5, 5}, {7, 2, 9}} {
		m, n, k := dims[0], dims[1], dims[2]
		a := randSlice(m*k, rng)
		b := randSlice(k*n, rng)
		c := make([]float64, m*n)
		Gemm(m, n, k, a, k, b, n, c, n)
		want := refMatMul(m, n, k, a, b)
		for i := range c {
			if !almostEqual(c[i], want[i], 1e-12) {
				t.Fatalf("Gemm(%d,%d,%d)[%d] = %v, want %v", m, n, k, i, c[i], want[i])
			}
		}
	}
}

func TestGemmAccumulates(t *testing.T) {
	a := []float64{1, 0, 0, 1}
	b := []float64{2, 3, 4, 5}
	c := []float64{10, 10, 10, 10}
	Gemm(2, 2, 2, a, 2, b, 2, c, 2)
	want := []float64{12, 13, 14, 15}
	for i := range c {
		if c[i] != want[i] {
			t.Fatalf("Gemm must accumulate: got %v, want %v", c, want)
		}
	}
}

func TestGemmTAMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, n, k := 4, 3, 5
	// A stored as [k×m]; logical op is Aᵀ·B.
	aT := randSlice(k*m, rng)
	b := randSlice(k*n, rng)
	c := make([]float64, m*n)
	GemmTA(m, n, k, aT, m, b, n, c, n)
	// Build A = transpose(aT) and compare with reference.
	a := make([]float64, m*k)
	for p := 0; p < k; p++ {
		for i := 0; i < m; i++ {
			a[i*k+p] = aT[p*m+i]
		}
	}
	want := refMatMul(m, n, k, a, b)
	for i := range c {
		if !almostEqual(c[i], want[i], 1e-12) {
			t.Fatalf("GemmTA[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestGemmTBMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n, k := 3, 4, 5
	a := randSlice(m*k, rng)
	bT := randSlice(n*k, rng) // B stored as [n×k]; logical op is A·Bᵀ.
	c := make([]float64, m*n)
	GemmTB(m, n, k, a, k, bT, k, c, n)
	b := make([]float64, k*n)
	for j := 0; j < n; j++ {
		for p := 0; p < k; p++ {
			b[p*n+j] = bT[j*k+p]
		}
	}
	want := refMatMul(m, n, k, a, b)
	for i := range c {
		if !almostEqual(c[i], want[i], 1e-12) {
			t.Fatalf("GemmTB[%d] = %v, want %v", i, c[i], want[i])
		}
	}
}

func TestGemmWithLeadingDimensions(t *testing.T) {
	// Simulate slicing: operate on the top-left 2×2 of 4-wide buffers.
	rng := rand.New(rand.NewSource(4))
	a := randSlice(2*4, rng)
	b := randSlice(2*4, rng)
	c := make([]float64, 2*4)
	Gemm(2, 2, 2, a, 4, b, 4, c, 4)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			s := 0.0
			for p := 0; p < 2; p++ {
				s += a[i*4+p] * b[p*4+j]
			}
			if !almostEqual(c[i*4+j], s, 1e-12) {
				t.Fatalf("ld-aware Gemm at (%d,%d): %v want %v", i, j, c[i*4+j], s)
			}
		}
	}
	// Untouched region must stay zero.
	for i := 0; i < 2; i++ {
		for j := 2; j < 4; j++ {
			if c[i*4+j] != 0 {
				t.Fatal("Gemm wrote outside the sliced region")
			}
		}
	}
}

func TestGemmPanicsOnShortBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for short buffer")
		}
	}()
	Gemm(2, 2, 2, make([]float64, 3), 2, make([]float64, 4), 2, make([]float64, 4), 2)
}

func TestMatVecAndMatTVec(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6} // 2×3
	x := []float64{1, 1, 1}
	y := make([]float64, 2)
	MatVec(2, 3, a, 3, x, y)
	if y[0] != 6 || y[1] != 15 {
		t.Fatalf("MatVec = %v", y)
	}
	g := make([]float64, 3)
	MatTVec(2, 3, a, 3, []float64{1, 1}, g)
	if g[0] != 5 || g[1] != 7 || g[2] != 9 {
		t.Fatalf("MatTVec = %v", g)
	}
}

func TestOuterAcc(t *testing.T) {
	a := make([]float64, 6)
	OuterAcc(2, 3, a, 3, []float64{1, 2}, []float64{3, 4, 5})
	want := []float64{3, 4, 5, 6, 8, 10}
	for i := range a {
		if a[i] != want[i] {
			t.Fatalf("OuterAcc = %v, want %v", a, want)
		}
	}
}

// Property: GEMM distributes over addition in A, i.e.
// (A1+A2)·B == A1·B + A2·B.
func TestQuickGemmLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n, k := 1+r.Intn(5), 1+r.Intn(5), 1+r.Intn(5)
		a1, a2 := randSlice(m*k, r), randSlice(m*k, r)
		b := randSlice(k*n, r)
		sum := make([]float64, m*k)
		for i := range sum {
			sum[i] = a1[i] + a2[i]
		}
		c1 := make([]float64, m*n)
		Gemm(m, n, k, a1, k, b, n, c1, n)
		Gemm(m, n, k, a2, k, b, n, c1, n) // accumulate A2·B
		c2 := make([]float64, m*n)
		Gemm(m, n, k, sum, k, b, n, c2, n)
		for i := range c1 {
			if !almostEqual(c1[i], c2[i], 1e-10) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: transposed kernels agree with explicit transposition.
func TestQuickGemmTransposeConsistency(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m, n, k := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randSlice(m*k, r)
		b := randSlice(k*n, r)
		want := refMatMul(m, n, k, a, b)
		// Via GemmTA with explicitly transposed A.
		aT := make([]float64, k*m)
		for i := 0; i < m; i++ {
			for p := 0; p < k; p++ {
				aT[p*m+i] = a[i*k+p]
			}
		}
		c := make([]float64, m*n)
		GemmTA(m, n, k, aT, m, b, n, c, n)
		for i := range c {
			if !almostEqual(c[i], want[i], 1e-10) {
				return false
			}
		}
		// Via GemmTB with explicitly transposed B.
		bT := make([]float64, n*k)
		for p := 0; p < k; p++ {
			for j := 0; j < n; j++ {
				bT[j*k+p] = b[p*n+j]
			}
		}
		c2 := make([]float64, m*n)
		GemmTB(m, n, k, a, k, bT, k, c2, n)
		for i := range c2 {
			if !almostEqual(c2[i], want[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
