package tensor

import (
	"fmt"
)

// Persistent pre-packed operand panels. The blocked engine (gemm.go) packs
// transposed operands into cache-sized scratch panels on every call, and the
// straight operands it streams still pay strided reads when the caller hands
// in a prefix slice of a wider weight buffer. At inference time the weight
// operand of every GEMM is immutable, so that packing is pure waste after the
// first query: a PackedMat performs it exactly once, laying the operand out in
// the micro-panel order the blocked loops consume, and the GemmPackedEx /
// GemmTBPackedEx entry points stream those panels directly.
//
// The panel geometry matches the engine's blocking (kcBlock × ncBlock), so a
// packed product visits memory in the same order as an unpacked one and the
// per-element accumulation order is unchanged — packed results are
// bit-identical to the unpacked blocked engine. (A wider 4×4 / 2×8 scalar
// micro-kernel over the packed panels was measured and rejected: Go's scalar
// codegen spills its sixteen live multipliers and loses 20-40% to the 2×4
// kernel at every serving shape; the kernel win comes instead from the
// vectorized quad-axpy of kernel.go, which both packed and unpacked paths
// share.)
//
// A PackedMat is immutable after construction and safe for any number of
// concurrent readers; parallel fan-out shares the one pack across workers
// instead of re-packing per worker.

// PackedMat is an operand repacked into the blocked engine's micro-panel
// layout. Two layouts exist, chosen by the constructor:
//
//   - A-layout (PackA): the m×k left operand, stored as one m×kcb row-major
//     panel (ld = kcb) per kc block, panels concatenated in k order. Row i of
//     k-panel pc starts at m·pc + i·kcb.
//   - B-layout (PackB, PackTB): the k×n right operand, stored as kcb×ncb
//     row-major tiles (ld = ncb), k-major then n: the tile covering
//     (pc, jc) starts at pc·n + kcb·jc.
//
// Both layouts hold exactly rows·cols elements — edge panels are stored at
// their ragged size, not padded — so a pack costs the same memory as the
// operand it shadows.
type PackedMat struct {
	rows, cols int // logical operand shape: A[m×k] or B[k×n]
	aLayout    bool
	data       []float64
}

// Dims returns the logical (rows, cols) of the packed operand: (m, k) for an
// A-layout pack, (k, n) for a B-layout pack.
func (p *PackedMat) Dims() (rows, cols int) { return p.rows, p.cols }

// Bytes reports the resident size of the pack's panel storage.
func (p *PackedMat) Bytes() int { return len(p.data) * 8 }

// PackA packs the straight left operand A[m×k] (row stride lda) into A-layout
// panels for GemmPackedEx.
func PackA(m, k int, a []float64, lda int) *PackedMat {
	checkMat("PackA A", m, k, lda, len(a))
	p := &PackedMat{rows: m, cols: k, aLayout: true, data: make([]float64, m*k)}
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		dst := p.data[m*pc:]
		for i := 0; i < m; i++ {
			copy(dst[i*kcb:(i+1)*kcb], a[i*lda+pc:i*lda+pc+kcb])
		}
	}
	return p
}

// PackB packs the straight right operand B[k×n] (row stride ldb) into
// B-layout tiles for GemmTBPackedEx-style consumption via GemmPackedBEx.
func PackB(k, n int, b []float64, ldb int) *PackedMat {
	checkMat("PackB B", k, n, ldb, len(b))
	p := &PackedMat{rows: k, cols: n, data: make([]float64, k*n)}
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		for jc := 0; jc < n; jc += ncBlock {
			ncb := min(ncBlock, n-jc)
			dst := p.data[pc*n+kcb*jc:]
			for pp := 0; pp < kcb; pp++ {
				copy(dst[pp*ncb:(pp+1)*ncb], b[(pc+pp)*ldb+jc:(pc+pp)*ldb+jc+ncb])
			}
		}
	}
	return p
}

// PackTB packs a transposed right operand — B stored [n×k] with row stride
// ldb, consumed as Bᵀ[k×n] (the GemmTB orientation: a dense layer's
// [Out × In] weight) — into the same B-layout tiles as PackB.
func PackTB(n, k int, b []float64, ldb int) *PackedMat {
	checkMat("PackTB B", n, k, ldb, len(b))
	p := &PackedMat{rows: k, cols: n, data: make([]float64, k*n)}
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		for jc := 0; jc < n; jc += ncBlock {
			ncb := min(ncBlock, n-jc)
			// tile[p×ncb] = B[jc:jc+ncb, pc:pc+kcb]ᵀ, exactly the panel the
			// unpacked engine re-packs per call.
			packTrans(p.data[pc*n+kcb*jc:], kcb, ncb, b, ldb, jc, pc)
		}
	}
	return p
}

// GemmTBPrefersPacked reports whether a C[m×n] = A·Bᵀ product of the given
// shape runs on the blocked engine, where the persistent packed path is
// faster and bit-identical to the unpacked one. Below the small-product
// threshold GemmTB/GemmTBEx use the strided dot-product kernel instead —
// there the pack would change the accumulation order and save nothing, so
// callers skip packing for those widths.
func GemmTBPrefersPacked(m, n, k int) bool { return m*n*k >= smallGemmFlops }

// GemmPackedEx computes C[m×n] = epilogue(A · B) with a pre-packed A operand
// (PackA) and a streamed B — assign mode, like GemmEx. This is the
// convolution orientation: the immutable weight matrix is A, the per-call
// im2col matrix is B. Results are bit-identical to GemmEx on the same
// operands, at any GOMAXPROCS: the packed panels preserve the blocked
// engine's per-element accumulation order, and a parallel split shares the
// one pack across workers instead of re-packing per worker.
func GemmPackedEx(m, n, k int, pa *PackedMat, b []float64, ldb int, c []float64, ldc int, ep *Epilogue) {
	if pa == nil || !pa.aLayout {
		panic("tensor: GemmPackedEx: A operand is not an A-layout pack (PackA)")
	}
	if pa.rows != m || pa.cols != k {
		panic(fmt.Sprintf("tensor: GemmPackedEx: packed A is %d×%d, product wants %d×%d", pa.rows, pa.cols, m, k))
	}
	checkMat("GemmPackedEx B", k, n, ldb, len(b))
	checkMat("GemmPackedEx C", m, n, ldc, len(c))
	ep.check(m, n)
	if ep.empty() {
		ep = nil
	}
	if k == 0 {
		gemmAssignEmptyK(m, n, c, ldc, ep)
		return
	}
	rowW, colW, ok := gemmShouldFanout(m, n, k)
	if !ok {
		gemmBlockedPackedA(m, 0, n, k, pa, b, ldb, c, ldc, ep, 0)
		return
	}
	if rowW >= colW {
		// Row split: each worker reads its row range of the shared pack
		// (row lo of a k-panel sits at lo·kcb inside the panel).
		gemmFanoutRun(m, (m+rowW-1)/rowW, ep, func(lo, hi int, wep *Epilogue) {
			gemmBlockedPackedA(hi-lo, lo, n, k, pa, b, ldb, c[lo*ldc:], ldc, wep, 0)
		})
		return
	}
	// Column split: B and C are offset per worker; the A pack needs no
	// offset at all — every worker streams the same panels.
	gemmFanoutRun(n, (n+colW-1)/colW, ep, func(lo, hi int, wep *Epilogue) {
		gemmBlockedPackedACols(m, hi-lo, k, pa, b[lo:], ldb, c[lo:], ldc, wep, lo)
	})
}

// GemmTBPackedEx computes C[m×n] = epilogue(A · Bᵀ) with B pre-packed
// (PackTB of the [n×k]-stored operand, or PackB of a straight k×n one) and a
// streamed A — assign mode, like GemmTBEx. This is the dense-layer
// orientation: the immutable [Out × In] weight is Bᵀ, the activations are A.
// Results are bit-identical to the unpacked blocked engine (the gemmParallel
// path GemmTBEx takes above its small-product threshold) on the same
// operands, at any GOMAXPROCS.
func GemmTBPackedEx(m, n, k int, a []float64, lda int, pb *PackedMat, c []float64, ldc int, ep *Epilogue) {
	if pb == nil || pb.aLayout {
		panic("tensor: GemmTBPackedEx: B operand is not a B-layout pack (PackTB/PackB)")
	}
	if pb.rows != k || pb.cols != n {
		panic(fmt.Sprintf("tensor: GemmTBPackedEx: packed B is %d×%d, product wants %d×%d", pb.rows, pb.cols, k, n))
	}
	checkMat("GemmTBPackedEx A", m, k, lda, len(a))
	checkMat("GemmTBPackedEx C", m, n, ldc, len(c))
	ep.check(m, n)
	if ep.empty() {
		ep = nil
	}
	if k == 0 {
		gemmAssignEmptyK(m, n, c, ldc, ep)
		return
	}
	rowW, colW, ok := gemmShouldFanout(m, n, k)
	if !ok {
		gemmBlockedPackedB(m, n, 0, k, a, lda, pb, c, ldc, ep, 0)
		return
	}
	if rowW >= colW {
		gemmFanoutRun(m, (m+rowW-1)/rowW, ep, func(lo, hi int, wep *Epilogue) {
			gemmBlockedPackedB(hi-lo, n, 0, k, a[lo*lda:], lda, pb, c[lo*ldc:], ldc, wep, lo)
		})
		return
	}
	// Column split aligned to the pack's nc tiles, so every worker's jc
	// loop lands on tile starts of the shared pack.
	chunk := (n + colW - 1) / colW
	chunk = (chunk + ncBlock - 1) / ncBlock * ncBlock
	gemmFanoutRun(n, chunk, ep, func(lo, hi int, wep *Epilogue) {
		gemmBlockedPackedB(m, hi-lo, lo, k, a, lda, pb, c[lo:], ldc, wep, 0)
	})
}

// gemmAssignEmptyK fulfils the assign-mode contract for k = 0: the empty sum
// overwrites the product region with zeros, then the epilogue runs.
func gemmAssignEmptyK(m, n int, c []float64, ldc int, ep *Epilogue) {
	for i := 0; i < m; i++ {
		clear(c[i*ldc : i*ldc+n])
	}
	if ep != nil {
		applyEpilogue(m, n, c, ldc, ep, 0, 0)
	}
}

// gemmBlockedPackedA is the serial blocked engine over a packed A: C[rows×n]
// = A[rowLo:rowLo+rows, :]·B under the epilogue, with c pointing at the
// window's top-left element. Loop structure and per-element accumulation
// order match gemmBlocked with a streamed non-transposed A exactly; only the
// A addressing differs (contiguous panels, ld = kcb).
func gemmBlockedPackedA(rows, rowLo, n, k int, pa *PackedMat, b []float64, ldb int, c []float64, ldc int, ep *Epilogue, colOff int) {
	m := pa.rows
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		first := pc == 0
		last := pc+kcb == k
		ablk := pa.data[m*pc+rowLo*kcb:]
		for jc := 0; jc < n; jc += ncBlock {
			ncb := min(ncBlock, n-jc)
			if first {
				gemmPanelAssign(rows, ncb, kcb, ablk, kcb, b[pc*ldb+jc:], ldb, c[jc:], ldc)
			} else {
				gemmPanel(rows, ncb, kcb, ablk, kcb, b[pc*ldb+jc:], ldb, c[jc:], ldc)
			}
			if last && ep != nil {
				applyEpilogue(rows, ncb, c[jc:], ldc, ep, rowLo, colOff+jc)
			}
		}
	}
}

// gemmBlockedPackedACols is gemmBlockedPackedA for a column split: the
// worker's B/C windows start at logical column colOff, while the full-height
// A pack is shared untranslated.
func gemmBlockedPackedACols(m, cols, k int, pa *PackedMat, b []float64, ldb int, c []float64, ldc int, ep *Epilogue, colOff int) {
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		first := pc == 0
		last := pc+kcb == k
		ablk := pa.data[m*pc:]
		for jc := 0; jc < cols; jc += ncBlock {
			ncb := min(ncBlock, cols-jc)
			if first {
				gemmPanelAssign(m, ncb, kcb, ablk, kcb, b[pc*ldb+jc:], ldb, c[jc:], ldc)
			} else {
				gemmPanel(m, ncb, kcb, ablk, kcb, b[pc*ldb+jc:], ldb, c[jc:], ldc)
			}
			if last && ep != nil {
				applyEpilogue(m, ncb, c[jc:], ldc, ep, 0, colOff+jc)
			}
		}
	}
}

// gemmBlockedPackedB is the serial blocked engine over a packed B: C[m×cols]
// = A·B[:, colLo:colLo+cols] under the epilogue, with c pointing at the
// window's top-left element and rowOff locating it in the epilogue's row
// vectors. colLo must be a multiple of ncBlock (or 0) so the jc loop lands on
// the pack's tile starts; the serial caller passes 0 and the parallel caller
// aligns its split.
func gemmBlockedPackedB(m, cols, colLo, k int, a []float64, lda int, pb *PackedMat, c []float64, ldc int, ep *Epilogue, rowOff int) {
	n := pb.cols
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		first := pc == 0
		last := pc+kcb == k
		for jcl := 0; jcl < cols; jcl += ncBlock {
			jc := colLo + jcl
			ncb := min(ncBlock, cols-jcl)
			bp := pb.data[pc*n+kcb*jc:]
			if first {
				gemmPanelAssign(m, ncb, kcb, a[pc:], lda, bp, ncb, c[jcl:], ldc)
			} else {
				gemmPanel(m, ncb, kcb, a[pc:], lda, bp, ncb, c[jcl:], ldc)
			}
			if last && ep != nil {
				applyEpilogue(m, ncb, c[jcl:], ldc, ep, rowOff, jc)
			}
		}
	}
}
