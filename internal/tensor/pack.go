package tensor

import (
	"fmt"
	"math"
	"sync"
)

// Persistent pre-packed operand panels. The blocked engine (gemm.go) packs
// transposed operands into cache-sized scratch panels on every call, and the
// straight operands it streams still pay strided reads when the caller hands
// in a prefix slice of a wider weight buffer. At inference time the weight
// operand of every GEMM is immutable, so that packing is pure waste after the
// first query: a PackedMat performs it exactly once, laying the operand out in
// the micro-panel order the blocked loops consume, and the GemmPackedEx /
// GemmTBPackedEx entry points stream those panels directly.
//
// The panel geometry matches the engine's blocking (kcBlock × ncBlock), so a
// packed product visits memory in the same order as an unpacked one and the
// per-element accumulation order is unchanged — packed results are
// bit-identical to the unpacked blocked engine. (A wider 4×4 / 2×8 scalar
// micro-kernel over the packed panels was measured and rejected: Go's scalar
// codegen spills its sixteen live multipliers and loses 20-40% to the 2×4
// kernel at every serving shape; the kernel win comes instead from the
// vectorized quad-axpy of kernel.go, which both packed and unpacked paths
// share.)
//
// A PackedMat is immutable after construction and safe for any number of
// concurrent readers; parallel fan-out shares the one pack across workers
// instead of re-packing per worker.

// PackedMat is an operand repacked into the blocked engine's micro-panel
// layout. Two layouts exist, chosen by the constructor:
//
//   - A-layout (PackA): the m×k left operand, stored as one m×kcb row-major
//     panel (ld = kcb) per kc block, panels concatenated in k order. Row i of
//     k-panel pc starts at m·pc + i·kcb.
//   - B-layout (PackB, PackTB): the k×n right operand, stored as kcb×ncb
//     row-major tiles (ld = ncb), k-major then n: the tile covering
//     (pc, jc) starts at pc·n + kcb·jc.
//
// Both layouts hold exactly rows·cols elements — edge panels are stored at
// their ragged size, not padded — so a pack costs the same memory as the
// operand it shadows.
type PackedMat struct {
	rows, cols int // logical operand shape: A[m×k] or B[k×n]
	aLayout    bool
	data       []float64
}

// Packed is the interface over the pack variants the engine consumes: the
// f64 PackedMat (exact and fma tiers) and the float32 PackedMat32 (f32
// tier). The packed GEMM entry points type-switch on the concrete type; the
// interface exists so pack caches can hold either variant uniformly.
type Packed interface {
	// Dims returns the logical (rows, cols) of the packed operand: (m, k)
	// for an A-layout pack, (k, n) for a B-layout pack.
	Dims() (rows, cols int)
	// Bytes reports the resident size of the pack's panel storage.
	Bytes() int
	// packedALayout distinguishes the two panel layouts and seals the
	// interface to this package's pack types.
	packedALayout() bool
}

// Dims returns the logical (rows, cols) of the packed operand: (m, k) for an
// A-layout pack, (k, n) for a B-layout pack.
func (p *PackedMat) Dims() (rows, cols int) { return p.rows, p.cols }

// Bytes reports the resident size of the pack's panel storage.
func (p *PackedMat) Bytes() int { return len(p.data) * 8 }

func (p *PackedMat) packedALayout() bool { return p.aLayout }

// PackedMat32 is the f32 tier's pack variant: the same micro-panel layouts
// as PackedMat, but each value is stored as a float32 quotient against one
// f64 scale per panel (A-layout: per kc panel; B-layout: per kcb×ncb tile).
// The scale is the panel's max |value| — it maps the panel into [-1, 1],
// where float32 quantization error is a uniform ≤2⁻²⁴ relative, independent
// of the panel's magnitude — and panels of zeros take scale 1 so the
// quotient stays finite. Kernels widen values back to f64 on load and fold
// the scale into the opposite operand's broadcast, so accumulation stays f64
// end to end and the only accuracy loss is the one f32 rounding per stored
// weight. Pack bytes are half of PackedMat (plus a handful of scales).
//
// Like PackedMat, a PackedMat32 is immutable after construction and safe for
// any number of concurrent readers.
type PackedMat32 struct {
	rows, cols int
	aLayout    bool
	data       []float32
	scales     []float64
}

// Dims returns the logical (rows, cols) of the packed operand.
func (p *PackedMat32) Dims() (rows, cols int) { return p.rows, p.cols }

// Bytes reports the resident size of the pack's panel and scale storage.
func (p *PackedMat32) Bytes() int { return len(p.data)*4 + len(p.scales)*8 }

func (p *PackedMat32) packedALayout() bool { return p.aLayout }

// packScale returns the f32 quantization scale for one panel: its max
// absolute value, or 1 for an all-zero panel.
func packScale(max float64) float64 {
	if max == 0 {
		return 1
	}
	return max
}

// PackA packs the straight left operand A[m×k] (row stride lda) into A-layout
// panels for GemmPackedEx.
func PackA(m, k int, a []float64, lda int) *PackedMat {
	checkMat("PackA A", m, k, lda, len(a))
	p := &PackedMat{rows: m, cols: k, aLayout: true, data: make([]float64, m*k)}
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		dst := p.data[m*pc:]
		for i := 0; i < m; i++ {
			copy(dst[i*kcb:(i+1)*kcb], a[i*lda+pc:i*lda+pc+kcb])
		}
	}
	return p
}

// PackB packs the straight right operand B[k×n] (row stride ldb) into
// B-layout tiles for GemmTBPackedEx-style consumption via GemmPackedBEx.
func PackB(k, n int, b []float64, ldb int) *PackedMat {
	checkMat("PackB B", k, n, ldb, len(b))
	p := &PackedMat{rows: k, cols: n, data: make([]float64, k*n)}
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		for jc := 0; jc < n; jc += ncBlock {
			ncb := min(ncBlock, n-jc)
			dst := p.data[pc*n+kcb*jc:]
			for pp := 0; pp < kcb; pp++ {
				copy(dst[pp*ncb:(pp+1)*ncb], b[(pc+pp)*ldb+jc:(pc+pp)*ldb+jc+ncb])
			}
		}
	}
	return p
}

// PackTB packs a transposed right operand — B stored [n×k] with row stride
// ldb, consumed as Bᵀ[k×n] (the GemmTB orientation: a dense layer's
// [Out × In] weight) — into the same B-layout tiles as PackB.
func PackTB(n, k int, b []float64, ldb int) *PackedMat {
	checkMat("PackTB B", n, k, ldb, len(b))
	p := &PackedMat{rows: k, cols: n, data: make([]float64, k*n)}
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		for jc := 0; jc < n; jc += ncBlock {
			ncb := min(ncBlock, n-jc)
			// tile[p×ncb] = B[jc:jc+ncb, pc:pc+kcb]ᵀ, exactly the panel the
			// unpacked engine re-packs per call.
			packTrans(p.data[pc*n+kcb*jc:], kcb, ncb, b, ldb, jc, pc)
		}
	}
	return p
}

// PackA32 packs the straight left operand A[m×k] into the f32 tier's
// A-layout panels: PackA's geometry with float32 storage and one scale per
// kc panel.
func PackA32(m, k int, a []float64, lda int) *PackedMat32 {
	checkMat("PackA32 A", m, k, lda, len(a))
	p := &PackedMat32{rows: m, cols: k, aLayout: true, data: make([]float32, m*k),
		scales: make([]float64, (k+kcBlock-1)/kcBlock)}
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		max := 0.0
		for i := 0; i < m; i++ {
			for _, v := range a[i*lda+pc : i*lda+pc+kcb] {
				max = math.Max(max, math.Abs(v))
			}
		}
		s := packScale(max)
		p.scales[pc/kcBlock] = s
		dst := p.data[m*pc:]
		for i := 0; i < m; i++ {
			row := a[i*lda+pc : i*lda+pc+kcb]
			for j, v := range row {
				dst[i*kcb+j] = float32(v / s)
			}
		}
	}
	return p
}

// PackTB32 packs a transposed right operand (the PackTB orientation: a dense
// layer's [Out × In] weight consumed as Bᵀ[k×n]) into the f32 tier's
// B-layout tiles: PackTB's geometry with float32 storage and one scale per
// kcb×ncb tile.
func PackTB32(n, k int, b []float64, ldb int) *PackedMat32 {
	checkMat("PackTB32 B", n, k, ldb, len(b))
	nJc := (n + ncBlock - 1) / ncBlock
	nPc := (k + kcBlock - 1) / kcBlock
	p := &PackedMat32{rows: k, cols: n, data: make([]float32, k*n),
		scales: make([]float64, nPc*nJc)}
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		for jc := 0; jc < n; jc += ncBlock {
			ncb := min(ncBlock, n-jc)
			max := 0.0
			for jj := 0; jj < ncb; jj++ {
				for _, v := range b[(jc+jj)*ldb+pc : (jc+jj)*ldb+pc+kcb] {
					max = math.Max(max, math.Abs(v))
				}
			}
			s := packScale(max)
			p.scales[(pc/kcBlock)*nJc+jc/ncBlock] = s
			// tile[p×ncb] = B[jc:jc+ncb, pc:pc+kcb]ᵀ / s.
			dst := p.data[pc*n+kcb*jc:]
			for jj := 0; jj < ncb; jj++ {
				src := b[(jc+jj)*ldb+pc : (jc+jj)*ldb+pc+kcb]
				for pp, v := range src {
					dst[pp*ncb+jj] = float32(v / s)
				}
			}
		}
	}
	return p
}

// GemmTBPrefersPacked reports whether a C[m×n] = A·Bᵀ product of the given
// shape runs on the blocked engine, where the persistent packed path is
// faster and bit-identical to the unpacked one. Below the small-product
// threshold GemmTB/GemmTBEx use the strided dot-product kernel instead —
// there the pack would change the accumulation order and save nothing, so
// callers skip packing for those widths.
func GemmTBPrefersPacked(m, n, k int) bool { return m*n*k >= smallGemmFlops }

// GemmPackedEx computes C[m×n] = epilogue(A · B) with a pre-packed A operand
// (PackA) and a streamed B — assign mode, like GemmEx. This is the
// convolution orientation: the immutable weight matrix is A, the per-call
// im2col matrix is B. Results are bit-identical to GemmEx on the same
// operands, at any GOMAXPROCS: the packed panels preserve the blocked
// engine's per-element accumulation order, and a parallel split shares the
// one pack across workers instead of re-packing per worker.
func GemmPackedEx(m, n, k int, pa Packed, b []float64, ldb int, c []float64, ldc int, ep *Epilogue) {
	GemmPackedExT(TierExact, m, n, k, pa, b, ldb, c, ldc, ep)
}

// GemmPackedExT is GemmPackedEx on an explicit engine tier. The pack's
// concrete type picks the data path: a *PackedMat runs the tier's f64
// kernels (TierF32 degrades to TierFMA semantics — there is no f32 data to
// widen), while a *PackedMat32 always runs the f32 widen-on-load kernels
// regardless of the requested tier, since the stored weights have already
// been quantized.
func GemmPackedExT(tier EngineTier, m, n, k int, pa Packed, b []float64, ldb int, c []float64, ldc int, ep *Epilogue) {
	pm, _ := pa.(*PackedMat)
	p32, _ := pa.(*PackedMat32)
	if (pm == nil || !pm.aLayout) && (p32 == nil || !p32.aLayout) {
		panic("tensor: GemmPackedEx: A operand is not an A-layout pack (PackA/PackA32)")
	}
	pr, pc := pa.Dims()
	if pr != m || pc != k {
		panic(fmt.Sprintf("tensor: GemmPackedEx: packed A is %d×%d, product wants %d×%d", pr, pc, m, k))
	}
	checkMat("GemmPackedEx B", k, n, ldb, len(b))
	checkMat("GemmPackedEx C", m, n, ldc, len(c))
	ep.check(m, n)
	if ep.empty() {
		ep = nil
	}
	if k == 0 {
		gemmAssignEmptyK(m, n, c, ldc, ep)
		return
	}
	rowW, colW, ok := gemmShouldFanout(m, n, k)
	if !ok {
		if p32 != nil {
			gemmBlockedPackedA32(m, 0, n, k, p32, b, ldb, c, ldc, ep, 0)
		} else {
			gemmBlockedPackedA(tier, m, 0, n, k, pm, b, ldb, c, ldc, ep, 0)
		}
		return
	}
	if rowW >= colW {
		// Row split: each worker reads its row range of the shared pack
		// (row lo of a k-panel sits at lo·kcb inside the panel).
		gemmFanoutRun(m, (m+rowW-1)/rowW, ep, func(lo, hi int, wep *Epilogue) {
			if p32 != nil {
				gemmBlockedPackedA32(hi-lo, lo, n, k, p32, b, ldb, c[lo*ldc:], ldc, wep, 0)
			} else {
				gemmBlockedPackedA(tier, hi-lo, lo, n, k, pm, b, ldb, c[lo*ldc:], ldc, wep, 0)
			}
		})
		return
	}
	// Column split: B and C are offset per worker; the A pack needs no
	// offset at all — every worker streams the same panels.
	gemmFanoutRun(n, (n+colW-1)/colW, ep, func(lo, hi int, wep *Epilogue) {
		if p32 != nil {
			gemmBlockedPackedACols32(m, hi-lo, k, p32, b[lo:], ldb, c[lo:], ldc, wep, lo)
		} else {
			gemmBlockedPackedACols(tier, m, hi-lo, k, pm, b[lo:], ldb, c[lo:], ldc, wep, lo)
		}
	})
}

// GemmTBPackedEx computes C[m×n] = epilogue(A · Bᵀ) with B pre-packed
// (PackTB of the [n×k]-stored operand, or PackB of a straight k×n one) and a
// streamed A — assign mode, like GemmTBEx. This is the dense-layer
// orientation: the immutable [Out × In] weight is Bᵀ, the activations are A.
// Results are bit-identical to the unpacked blocked engine (the gemmParallel
// path GemmTBEx takes above its small-product threshold) on the same
// operands, at any GOMAXPROCS.
func GemmTBPackedEx(m, n, k int, a []float64, lda int, pb Packed, c []float64, ldc int, ep *Epilogue) {
	GemmTBPackedExT(TierExact, m, n, k, a, lda, pb, c, ldc, ep)
}

// GemmTBPackedExT is GemmTBPackedEx on an explicit engine tier; the pack's
// concrete type picks the data path exactly as in GemmPackedExT.
func GemmTBPackedExT(tier EngineTier, m, n, k int, a []float64, lda int, pb Packed, c []float64, ldc int, ep *Epilogue) {
	pm, _ := pb.(*PackedMat)
	p32, _ := pb.(*PackedMat32)
	if (pm == nil || pm.aLayout) && (p32 == nil || p32.aLayout) {
		panic("tensor: GemmTBPackedEx: B operand is not a B-layout pack (PackTB/PackB/PackTB32)")
	}
	pr, pc := pb.Dims()
	if pr != k || pc != n {
		panic(fmt.Sprintf("tensor: GemmTBPackedEx: packed B is %d×%d, product wants %d×%d", pr, pc, k, n))
	}
	checkMat("GemmTBPackedEx A", m, k, lda, len(a))
	checkMat("GemmTBPackedEx C", m, n, ldc, len(c))
	ep.check(m, n)
	if ep.empty() {
		ep = nil
	}
	if k == 0 {
		gemmAssignEmptyK(m, n, c, ldc, ep)
		return
	}
	rowW, colW, ok := gemmShouldFanout(m, n, k)
	if !ok {
		if p32 != nil {
			gemmBlockedPackedB32(m, n, 0, k, a, lda, p32, c, ldc, ep, 0)
		} else {
			gemmBlockedPackedB(tier, m, n, 0, k, a, lda, pm, c, ldc, ep, 0)
		}
		return
	}
	if rowW >= colW {
		gemmFanoutRun(m, (m+rowW-1)/rowW, ep, func(lo, hi int, wep *Epilogue) {
			if p32 != nil {
				gemmBlockedPackedB32(hi-lo, n, 0, k, a[lo*lda:], lda, p32, c[lo*ldc:], ldc, wep, lo)
			} else {
				gemmBlockedPackedB(tier, hi-lo, n, 0, k, a[lo*lda:], lda, pm, c[lo*ldc:], ldc, wep, lo)
			}
		})
		return
	}
	// Column split aligned to the pack's nc tiles, so every worker's jc
	// loop lands on tile starts of the shared pack.
	chunk := (n + colW - 1) / colW
	chunk = (chunk + ncBlock - 1) / ncBlock * ncBlock
	gemmFanoutRun(n, chunk, ep, func(lo, hi int, wep *Epilogue) {
		if p32 != nil {
			gemmBlockedPackedB32(m, hi-lo, lo, k, a, lda, p32, c[lo:], ldc, wep, 0)
		} else {
			gemmBlockedPackedB(tier, m, hi-lo, lo, k, a, lda, pm, c[lo:], ldc, wep, 0)
		}
	})
}

// gemmAssignEmptyK fulfils the assign-mode contract for k = 0: the empty sum
// overwrites the product region with zeros, then the epilogue runs.
func gemmAssignEmptyK(m, n int, c []float64, ldc int, ep *Epilogue) {
	for i := 0; i < m; i++ {
		clear(c[i*ldc : i*ldc+n])
	}
	if ep != nil {
		applyEpilogue(m, n, c, ldc, ep, 0, 0)
	}
}

// gemmBlockedPackedA is the serial blocked engine over a packed A: C[rows×n]
// = A[rowLo:rowLo+rows, :]·B under the epilogue, with c pointing at the
// window's top-left element. Loop structure and per-element accumulation
// order match gemmBlocked with a streamed non-transposed A exactly; only the
// A addressing differs (contiguous panels, ld = kcb).
func gemmBlockedPackedA(tier EngineTier, rows, rowLo, n, k int, pa *PackedMat, b []float64, ldb int, c []float64, ldc int, ep *Epilogue, colOff int) {
	m := pa.rows
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		first := pc == 0
		last := pc+kcb == k
		ablk := pa.data[m*pc+rowLo*kcb:]
		for jc := 0; jc < n; jc += ncBlock {
			ncb := min(ncBlock, n-jc)
			if first {
				gemmPanelAssignT(tier, rows, ncb, kcb, ablk, kcb, b[pc*ldb+jc:], ldb, c[jc:], ldc)
			} else {
				gemmPanelT(tier, rows, ncb, kcb, ablk, kcb, b[pc*ldb+jc:], ldb, c[jc:], ldc)
			}
			if last && ep != nil {
				applyEpilogue(rows, ncb, c[jc:], ldc, ep, rowLo, colOff+jc)
			}
		}
	}
}

// castPool recycles the f32 B-tile scratch of the packed-A32 drivers: one
// kcBlock×ncBlock tile per concurrent caller (a row-split fan-out casts the
// same tile once per worker, like the per-worker packTrans of the unpacked
// engine — redundant work traded for zero coordination).
var castPool = sync.Pool{
	New: func() any {
		buf := make([]float32, kcBlock*ncBlock)
		return &buf
	},
}

// castTile narrows a rows×cols f64 tile (row stride ld) into a contiguous
// f32 tile (row stride cols). One rounding per element — VCVTPD2PS and Go's
// float32(float64) conversion both round to nearest even, so vector and
// scalar paths see identical B values. The cast must be vectorized to pay
// for itself: a scalar loop here costs nearly as much as the half-width
// kernel loads save.
func castTile(dst []float32, rows, cols int, src []float64, ld int) {
	if useFMA {
		for i := 0; i < rows; i++ {
			cvtPD2PS(dst[i*cols:i*cols+cols], src[i*ld:i*ld+cols])
		}
		return
	}
	for i := 0; i < rows; i++ {
		d := dst[i*cols : i*cols+cols]
		for j, v := range src[i*ld : i*ld+cols] {
			d[j] = float32(v)
		}
	}
}

// gemmBlockedPackedA32 is gemmBlockedPackedA over an f32 A pack: identical
// loop structure, with each k-panel's scale folded into the widen-on-load
// kernels. The streamed f64 B operand is narrowed one kcb×ncb tile at a time
// into pooled f32 scratch — the cast is amortized over the rows/4 kernel
// sweeps that consume the tile, halves the bytes those sweeps stream, and
// makes the tile contiguous. The extra f32 rounding on B is ≤2⁻²⁴ relative,
// far inside the tier's quantization budget from the A pack itself.
func gemmBlockedPackedA32(rows, rowLo, n, k int, pa *PackedMat32, b []float64, ldb int, c []float64, ldc int, ep *Epilogue, colOff int) {
	m := pa.rows
	buf := castPool.Get().(*[]float32)
	defer castPool.Put(buf)
	b32 := *buf
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		first := pc == 0
		last := pc+kcb == k
		ablk := pa.data[m*pc+rowLo*kcb:]
		s := pa.scales[pc/kcBlock]
		for jc := 0; jc < n; jc += ncBlock {
			ncb := min(ncBlock, n-jc)
			castTile(b32, kcb, ncb, b[pc*ldb+jc:], ldb)
			if first {
				gemmPanelAssignF32A(rows, ncb, kcb, ablk, kcb, s, b32, ncb, c[jc:], ldc)
			} else {
				gemmPanelF32A(rows, ncb, kcb, ablk, kcb, s, b32, ncb, c[jc:], ldc)
			}
			if last && ep != nil {
				applyEpilogue(rows, ncb, c[jc:], ldc, ep, rowLo, colOff+jc)
			}
		}
	}
}

// gemmBlockedPackedACols is gemmBlockedPackedA for a column split: the
// worker's B/C windows start at logical column colOff, while the full-height
// A pack is shared untranslated.
func gemmBlockedPackedACols(tier EngineTier, m, cols, k int, pa *PackedMat, b []float64, ldb int, c []float64, ldc int, ep *Epilogue, colOff int) {
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		first := pc == 0
		last := pc+kcb == k
		ablk := pa.data[m*pc:]
		for jc := 0; jc < cols; jc += ncBlock {
			ncb := min(ncBlock, cols-jc)
			if first {
				gemmPanelAssignT(tier, m, ncb, kcb, ablk, kcb, b[pc*ldb+jc:], ldb, c[jc:], ldc)
			} else {
				gemmPanelT(tier, m, ncb, kcb, ablk, kcb, b[pc*ldb+jc:], ldb, c[jc:], ldc)
			}
			if last && ep != nil {
				applyEpilogue(m, ncb, c[jc:], ldc, ep, 0, colOff+jc)
			}
		}
	}
}

// gemmBlockedPackedACols32 is gemmBlockedPackedACols over an f32 A pack,
// with the same pooled per-tile B narrowing as gemmBlockedPackedA32.
func gemmBlockedPackedACols32(m, cols, k int, pa *PackedMat32, b []float64, ldb int, c []float64, ldc int, ep *Epilogue, colOff int) {
	buf := castPool.Get().(*[]float32)
	defer castPool.Put(buf)
	b32 := *buf
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		first := pc == 0
		last := pc+kcb == k
		ablk := pa.data[m*pc:]
		s := pa.scales[pc/kcBlock]
		for jc := 0; jc < cols; jc += ncBlock {
			ncb := min(ncBlock, cols-jc)
			castTile(b32, kcb, ncb, b[pc*ldb+jc:], ldb)
			if first {
				gemmPanelAssignF32A(m, ncb, kcb, ablk, kcb, s, b32, ncb, c[jc:], ldc)
			} else {
				gemmPanelF32A(m, ncb, kcb, ablk, kcb, s, b32, ncb, c[jc:], ldc)
			}
			if last && ep != nil {
				applyEpilogue(m, ncb, c[jc:], ldc, ep, 0, colOff+jc)
			}
		}
	}
}

// gemmBlockedPackedB is the serial blocked engine over a packed B: C[m×cols]
// = A·B[:, colLo:colLo+cols] under the epilogue, with c pointing at the
// window's top-left element and rowOff locating it in the epilogue's row
// vectors. colLo must be a multiple of ncBlock (or 0) so the jc loop lands on
// the pack's tile starts; the serial caller passes 0 and the parallel caller
// aligns its split.
func gemmBlockedPackedB(tier EngineTier, m, cols, colLo, k int, a []float64, lda int, pb *PackedMat, c []float64, ldc int, ep *Epilogue, rowOff int) {
	n := pb.cols
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		first := pc == 0
		last := pc+kcb == k
		for jcl := 0; jcl < cols; jcl += ncBlock {
			jc := colLo + jcl
			ncb := min(ncBlock, cols-jcl)
			bp := pb.data[pc*n+kcb*jc:]
			if first {
				gemmPanelAssignT(tier, m, ncb, kcb, a[pc:], lda, bp, ncb, c[jcl:], ldc)
			} else {
				gemmPanelT(tier, m, ncb, kcb, a[pc:], lda, bp, ncb, c[jcl:], ldc)
			}
			if last && ep != nil {
				applyEpilogue(m, ncb, c[jcl:], ldc, ep, rowOff, jc)
			}
		}
	}
}

// gemmBlockedPackedB32 is gemmBlockedPackedB over an f32 B pack: identical
// loop structure, with each kcb×ncb tile's scale folded into the
// widen-on-load kernels.
func gemmBlockedPackedB32(m, cols, colLo, k int, a []float64, lda int, pb *PackedMat32, c []float64, ldc int, ep *Epilogue, rowOff int) {
	n := pb.cols
	nJc := (n + ncBlock - 1) / ncBlock
	for pc := 0; pc < k; pc += kcBlock {
		kcb := min(kcBlock, k-pc)
		first := pc == 0
		last := pc+kcb == k
		for jcl := 0; jcl < cols; jcl += ncBlock {
			jc := colLo + jcl
			ncb := min(ncBlock, cols-jcl)
			bp := pb.data[pc*n+kcb*jc:]
			s := pb.scales[(pc/kcBlock)*nJc+jc/ncBlock]
			if first {
				gemmPanelAssignF32B(m, ncb, kcb, a[pc:], lda, s, bp, ncb, c[jcl:], ldc)
			} else {
				gemmPanelF32B(m, ncb, kcb, a[pc:], lda, s, bp, ncb, c[jcl:], ldc)
			}
			if last && ep != nil {
				applyEpilogue(m, ncb, c[jcl:], ldc, ep, rowOff, jc)
			}
		}
	}
}
