package serving

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/slicing"
)

func testConfig() Config {
	return Config{
		LatencySLO:     100,
		FullSampleTime: 1,
		Rates:          slicing.NewRateList(0.25, 4),
		AccuracyAt: func(r float64) float64 {
			return 0.9 + 0.05*r // wider → better, synthetic
		},
	}
}

func TestSimulateChoosesEquation3Rates(t *testing.T) {
	cfg := testConfig()
	// Window = 50, t = 1. n=50 → budget 1 → rate 1. n=200 → budget 0.25 →
	// r²≤0.25 → rate 0.5. n=800 → budget 0.0625 → rate 0.25.
	stats := Simulate(cfg, []int{50, 200, 800})
	wantRates := []float64{1.0, 0.5, 0.25}
	for i, w := range wantRates {
		if stats.Ticks[i].Rate != w {
			t.Fatalf("tick %d rate %v, want %v", i, stats.Ticks[i].Rate, w)
		}
	}
	if stats.SLOViolations != 0 {
		t.Fatalf("violations %d, want 0", stats.SLOViolations)
	}
	if stats.Processed != 1050 {
		t.Fatalf("processed %d", stats.Processed)
	}
}

func TestSimulateBatchNeverOverrunsWindowWhenFeasible(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(1))
	arrivals := DiurnalWorkload(200, 40, 16, 0.05, 2, rng)
	stats := Simulate(cfg, arrivals)
	window := cfg.LatencySLO / 2
	for i, tick := range stats.Ticks {
		if !tick.Infeasible && tick.WorkTime > window+1e-9 {
			t.Fatalf("tick %d: feasible batch overran window: %.2f > %.2f", i, tick.WorkTime, window)
		}
	}
}

func TestSimulateInfeasibleCountsViolations(t *testing.T) {
	cfg := testConfig()
	// Capacity at the lower bound: 50/(0.0625·1) = 800 samples per window.
	stats := Simulate(cfg, []int{900})
	if stats.SLOViolations != 900 {
		t.Fatalf("violations %d, want the whole overrun batch", stats.SLOViolations)
	}
	if !stats.Ticks[0].Infeasible {
		t.Fatal("tick must be flagged infeasible")
	}
}

func TestElasticAbsorbsVolatilityFixedDoesNot(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(2))
	// Peak ≈ 640 ≤ 800 lower-bound capacity, trough ≈ 40: 16× volatility.
	arrivals := DiurnalWorkload(300, 40, 16, 0, 1, rng)
	elastic := Simulate(cfg, arrivals)
	if elastic.SLOViolations != 0 {
		t.Fatalf("elastic serving should absorb the peak, got %d violations", elastic.SLOViolations)
	}
	if v := elastic.Volatility(); v < 8 {
		t.Fatalf("workload volatility %.1f, want ≥8 for a meaningful test", v)
	}
	// A full-width fixed model (capacity 50/window) drowns at the peak.
	fixed := FixedCapacityBaseline(cfg, 1.0, arrivals)
	if fixed.SLOViolations == 0 {
		t.Fatal("full-width fixed model should violate the SLO under peak load")
	}
	// The elastic system must deliver better accuracy than always running
	// at the lower bound (which would also meet latency).
	lb := FixedCapacityBaseline(cfg, 0.25, arrivals)
	if lb.SLOViolations != 0 {
		t.Fatal("lower-bound fixed model should be feasible")
	}
	if elastic.WeightedAccuracy <= lb.WeightedAccuracy {
		t.Fatalf("elastic accuracy %.4f must beat always-lower-bound %.4f",
			elastic.WeightedAccuracy, lb.WeightedAccuracy)
	}
}

func TestUtilizationBounded(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(3))
	arrivals := DiurnalWorkload(100, 30, 10, 0, 1, rng)
	stats := Simulate(cfg, arrivals)
	if stats.Utilization <= 0 || stats.Utilization > 1.0001 {
		t.Fatalf("utilization %v out of (0,1]", stats.Utilization)
	}
}

func TestDiurnalWorkloadShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	arrivals := DiurnalWorkload(240, 50, 10, 0, 1, rng)
	if len(arrivals) != 240 {
		t.Fatalf("windows %d", len(arrivals))
	}
	peak, trough := 0, math.MaxInt
	for _, n := range arrivals {
		if n > peak {
			peak = n
		}
		if n < trough {
			trough = n
		}
	}
	ratio := float64(peak) / math.Max(float64(trough), 1)
	if ratio < 5 || ratio > 25 {
		t.Fatalf("peak/trough ratio %.1f, want ≈10 (±Poisson noise)", ratio)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, lambda := range []float64{3, 50} {
		sum := 0
		n := 3000
		for i := 0; i < n; i++ {
			sum += poisson(lambda, rng)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda) > lambda*0.1 {
			t.Fatalf("poisson(%v) empirical mean %v", lambda, mean)
		}
	}
}

func TestRateHistogramCoversWorkload(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(6))
	arrivals := DiurnalWorkload(300, 40, 16, 0, 1, rng)
	stats := Simulate(cfg, arrivals)
	if len(stats.RateHist) < 3 {
		t.Fatalf("a 16× workload should exercise ≥3 rates, got %v", stats.RateHist)
	}
	total := 0
	for _, n := range stats.RateHist {
		total += n
	}
	if total != stats.Processed {
		t.Fatalf("histogram total %d != processed %d", total, stats.Processed)
	}
}
