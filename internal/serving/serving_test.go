package serving

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/slicing"
)

func testConfig() Config {
	return Config{
		LatencySLO:     100,
		FullSampleTime: 1,
		Rates:          slicing.NewRateList(0.25, 4),
		AccuracyAt: func(r float64) float64 {
			return 0.9 + 0.05*r // wider → better, synthetic
		},
	}
}

func TestSimulateChoosesEquation3Rates(t *testing.T) {
	cfg := testConfig()
	// Window = 50, t = 1. n=50 → budget 1 → rate 1. n=200 → budget 0.25 →
	// r²≤0.25 → rate 0.5. n=800 → budget 0.0625 → rate 0.25.
	stats := Simulate(cfg, []int{50, 200, 800})
	wantRates := []float64{1.0, 0.5, 0.25}
	for i, w := range wantRates {
		if stats.Ticks[i].Rate != w {
			t.Fatalf("tick %d rate %v, want %v", i, stats.Ticks[i].Rate, w)
		}
	}
	if stats.SLOViolations != 0 {
		t.Fatalf("violations %d, want 0", stats.SLOViolations)
	}
	if stats.Processed != 1050 {
		t.Fatalf("processed %d", stats.Processed)
	}
}

func TestSimulateBatchNeverOverrunsWindowWhenFeasible(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(1))
	arrivals := DiurnalWorkload(200, 40, 16, 0.05, 2, rng)
	stats := Simulate(cfg, arrivals)
	window := cfg.LatencySLO / 2
	for i, tick := range stats.Ticks {
		if !tick.Infeasible && tick.WorkTime > window+1e-9 {
			t.Fatalf("tick %d: feasible batch overran window: %.2f > %.2f", i, tick.WorkTime, window)
		}
	}
}

func TestSimulateInfeasibleCountsViolations(t *testing.T) {
	cfg := testConfig()
	// Capacity at the lower bound: 50/(0.0625·1) = 800 samples per window.
	stats := Simulate(cfg, []int{900})
	if stats.SLOViolations != 900 {
		t.Fatalf("violations %d, want the whole overrun batch", stats.SLOViolations)
	}
	if !stats.Ticks[0].Infeasible {
		t.Fatal("tick must be flagged infeasible")
	}
}

func TestElasticAbsorbsVolatilityFixedDoesNot(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(2))
	// Peak ≈ 640 ≤ 800 lower-bound capacity, trough ≈ 40: 16× volatility.
	arrivals := DiurnalWorkload(300, 40, 16, 0, 1, rng)
	elastic := Simulate(cfg, arrivals)
	if elastic.SLOViolations != 0 {
		t.Fatalf("elastic serving should absorb the peak, got %d violations", elastic.SLOViolations)
	}
	if v := elastic.Volatility(); v < 8 {
		t.Fatalf("workload volatility %.1f, want ≥8 for a meaningful test", v)
	}
	// A full-width fixed model (capacity 50/window) drowns at the peak.
	fixed := FixedCapacityBaseline(cfg, 1.0, arrivals)
	if fixed.SLOViolations == 0 {
		t.Fatal("full-width fixed model should violate the SLO under peak load")
	}
	// The elastic system must deliver better accuracy than always running
	// at the lower bound (which would also meet latency).
	lb := FixedCapacityBaseline(cfg, 0.25, arrivals)
	if lb.SLOViolations != 0 {
		t.Fatal("lower-bound fixed model should be feasible")
	}
	if elastic.WeightedAccuracy <= lb.WeightedAccuracy {
		t.Fatalf("elastic accuracy %.4f must beat always-lower-bound %.4f",
			elastic.WeightedAccuracy, lb.WeightedAccuracy)
	}
}

// TestSimulateBacklogCascade pins the deadline/backlog model: an overrun
// window drags the next one's budget down (a recorded degradation, not a
// surprise miss), and the system recovers to the full rate once the horizon
// drains.
func TestSimulateBacklogCascade(t *testing.T) {
	cfg := testConfig() // window 50, t(r)=r²: capacity 800 at the lower bound
	stats := Simulate(cfg, []int{900, 45, 45})

	// Window 0 overruns even at r_min: 900·0.0625 = 56.25 > 50.
	if !stats.Ticks[0].Infeasible || stats.Ticks[0].Rate != 0.25 {
		t.Fatalf("overrun window: %+v", stats.Ticks[0])
	}
	// Window 1 inherits 6.25 of backlog: slack 43.75 < 45·t(1), so the rate
	// degrades to 0.75 — which still meets the deadline (no violation).
	w1 := stats.Ticks[1]
	if w1.Rate != 0.75 || !w1.Degraded || w1.Infeasible {
		t.Fatalf("cascaded window must degrade feasibly: %+v", w1)
	}
	if w1.Ahead != 6.25 || w1.Slack != 43.75 {
		t.Fatalf("cascaded window slack accounting: ahead=%v slack=%v", w1.Ahead, w1.Slack)
	}
	// Window 2 opens after the horizon drained: full rate again.
	w2 := stats.Ticks[2]
	if w2.Rate != 1.0 || w2.Degraded || w2.Ahead != 0 {
		t.Fatalf("drained window must recover to r=1: %+v", w2)
	}
	if stats.DegradedWindows != 1 {
		t.Fatalf("degraded windows %d, want 1", stats.DegradedWindows)
	}
	if stats.SLOViolations != 900 {
		t.Fatalf("violations %d, want exactly the overrun batch", stats.SLOViolations)
	}
}

// TestUtilizationBoundedUnderOverload is the shared assertion for both
// runners: work is conserved on one pool, so reported utilization must stay
// in [0, 1] even when every window overruns — the fixed baseline used to
// divide spilled work by the un-extended trace duration and report >1.
func TestUtilizationBoundedUnderOverload(t *testing.T) {
	cfg := testConfig()
	overload := []int{2000, 2000, 2000} // 2.5× the lower-bound capacity, every window
	for name, stats := range map[string]Stats{
		"simulate":   Simulate(cfg, overload),
		"fixed-full": FixedCapacityBaseline(cfg, 1.0, overload),
		"fixed-base": FixedCapacityBaseline(cfg, 0.25, overload),
	} {
		if stats.Utilization <= 0 || stats.Utilization > 1 {
			t.Fatalf("%s: utilization %v outside (0, 1] under overload", name, stats.Utilization)
		}
		if stats.SLOViolations == 0 {
			t.Fatalf("%s: overload trace must violate the SLO", name)
		}
	}
	// The spilled work extends the completion horizon past the trace.
	fixed := FixedCapacityBaseline(cfg, 1.0, overload)
	last := fixed.Ticks[len(fixed.Ticks)-1]
	if last.Completion <= cfg.LatencySLO/2*float64(len(overload)) {
		t.Fatalf("overrun work must extend the makespan: completion %v", last.Completion)
	}
}

// TestFixedBaselineCountsCascadedViolations pins the baseline's backlog
// consistency: a window within the model's nominal capacity, queued behind
// an earlier overrun, completes past its deadline and must count its
// misses — the same accounting Simulate and the live fixed arm use.
func TestFixedBaselineCountsCascadedViolations(t *testing.T) {
	cfg := testConfig() // window 50, t(1.0) = 1 → capacity 50 at full width
	stats := FixedCapacityBaseline(cfg, 1.0, []int{100, 40})
	// Window 0: 100 arrivals, 50 fit the fresh window → 50 violations and
	// 100 time units of work against a 50-unit window.
	if stats.Ticks[0].Infeasible != true || stats.Ticks[0].Slack != 50 {
		t.Fatalf("overrun window: %+v", stats.Ticks[0])
	}
	// Window 1: 40 ≤ 50 nominal capacity, but the spilled 50 units of work
	// consume its entire slack — every query misses, and the window is
	// recorded as degraded (backlog, not size, sank it).
	w1 := stats.Ticks[1]
	if w1.Ahead != 50 || w1.Slack != 0 || !w1.Infeasible || !w1.Degraded {
		t.Fatalf("cascaded fixed window: %+v", w1)
	}
	if stats.SLOViolations != 50+40 {
		t.Fatalf("violations %d, want 90 (50 spilled + 40 cascaded)", stats.SLOViolations)
	}
	if stats.DegradedWindows != 1 {
		t.Fatalf("degraded windows %d, want 1", stats.DegradedWindows)
	}
	// With a clear horizon the classic per-window accounting is unchanged.
	clear := FixedCapacityBaseline(cfg, 1.0, []int{60})
	if clear.SLOViolations != 10 {
		t.Fatalf("clear-horizon violations %d, want n − capacity = 10", clear.SLOViolations)
	}
}

func TestUtilizationBounded(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(3))
	arrivals := DiurnalWorkload(100, 30, 10, 0, 1, rng)
	stats := Simulate(cfg, arrivals)
	if stats.Utilization <= 0 || stats.Utilization > 1.0001 {
		t.Fatalf("utilization %v out of (0,1]", stats.Utilization)
	}
}

func TestDiurnalWorkloadShape(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	arrivals := DiurnalWorkload(240, 50, 10, 0, 1, rng)
	if len(arrivals) != 240 {
		t.Fatalf("windows %d", len(arrivals))
	}
	peak, trough := 0, math.MaxInt
	for _, n := range arrivals {
		if n > peak {
			peak = n
		}
		if n < trough {
			trough = n
		}
	}
	ratio := float64(peak) / math.Max(float64(trough), 1)
	if ratio < 5 || ratio > 25 {
		t.Fatalf("peak/trough ratio %.1f, want ≈10 (±Poisson noise)", ratio)
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, lambda := range []float64{3, 50} {
		sum := 0
		n := 3000
		for i := 0; i < n; i++ {
			sum += poisson(lambda, rng)
		}
		mean := float64(sum) / float64(n)
		if math.Abs(mean-lambda) > lambda*0.1 {
			t.Fatalf("poisson(%v) empirical mean %v", lambda, mean)
		}
	}
}

func TestRateHistogramCoversWorkload(t *testing.T) {
	cfg := testConfig()
	rng := rand.New(rand.NewSource(6))
	arrivals := DiurnalWorkload(300, 40, 16, 0, 1, rng)
	stats := Simulate(cfg, arrivals)
	if len(stats.RateHist) < 3 {
		t.Fatalf("a 16× workload should exercise ≥3 rates, got %v", stats.RateHist)
	}
	total := 0
	for _, n := range stats.RateHist {
		total += n
	}
	if total != stats.Processed {
		t.Fatalf("histogram total %d != processed %d", total, stats.Processed)
	}
}
