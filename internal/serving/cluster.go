package serving

// Cluster is the fleet-level half of the Equation-3 policy: N replicas, each
// modeled exactly as the single-process scheduler models itself — a Policy
// built from the replica's calibrated t(r) plus a work-conserving Backlog
// horizon of everything already routed to it. A replica is just a pool whose
// horizon you read; the coordinator's routing question ("which replica would
// serve this query's window at the highest rate?") is the same product-form
// n·t(r) ≤ slack comparison every other feasibility question in this package
// goes through.
//
// Like Backlog, the model is deliberately estimate-based: horizons drain
// with the clock and extend with each window's decision, never corrected by
// completion events, so the live coordinator under a fake clock and the
// clock-free fleet simulation produce identical routing decisions — which is
// what the fleet lockstep test in internal/fleet pins.
type Cluster struct {
	// SLO is the latency bound T on the policy time axis.
	SLO float64
	// Headroom in (0, 1] derates each window's deadline slack exactly as
	// the single-node server does; 0 means 1.
	Headroom float64
	// Replicas are the modeled replicas, index-aligned with the
	// coordinator's replica set.
	Replicas []*ReplicaModel
}

// ReplicaModel is the coordinator's estimate of one replica.
type ReplicaModel struct {
	// Policy is the replica's Equation-3 policy, built from the t(r) table
	// the replica reports over /state.
	Policy Policy
	// Backlog is the completion horizon of the work already routed to the
	// replica — the same model the replica's own scheduler budgets with.
	Backlog Backlog
	// Pending counts queries routed to the replica's currently-open window;
	// Oldest is the arrival time of the first of them.
	Pending int
	Oldest  float64
	// Penalized deprioritizes the replica (its brownout circuit is open, so
	// its calibrated t(r) cannot be trusted): it is chosen only when no
	// clean replica admits the query feasibly.
	Penalized bool
	// Ejected takes the replica out of rotation entirely (health-check
	// ejection, or administrative leave).
	Ejected bool
}

// RouteDecision explains one query's placement.
type RouteDecision struct {
	// Replica is the chosen replica's index; -1 when no replica is in
	// rotation.
	Replica int
	// Rate and Feasible are the decision the chosen replica would take for
	// its grown current-window batch: the largest rate with
	// (Pending+1)·t(r) ≤ Slack.
	Rate     float64
	Feasible bool
	// Slack is the deadline budget that comparison ran against
	// (deadline − close − Ahead); Ahead the replica's estimated in-flight
	// work at the window close.
	Slack float64
	Ahead float64
	// Penalized reports that the query landed on a circuit-open replica
	// because no clean one admitted it feasibly.
	Penalized bool
}

func (c *Cluster) headroom() float64 {
	if c.Headroom <= 0 || c.Headroom > 1 {
		return 1
	}
	return c.Headroom
}

// deadline maps a window's oldest arrival onto the derated deadline the
// single-node server budgets against: close + Headroom·(oldest + SLO − close).
func (c *Cluster) deadline(oldest, close float64) float64 {
	return close + (oldest+c.SLO-close)*c.headroom()
}

// routeClass ranks a candidate: a clean feasible replica beats a penalized
// feasible one beats any infeasible one — the query goes to a circuit-open
// replica only when nothing trustworthy can serve it in time, and to an
// infeasible replica only when the whole fleet is saturated.
func routeClass(feasible, penalized bool) int {
	switch {
	case feasible && !penalized:
		return 3
	case feasible:
		return 2
	case !penalized:
		return 1
	default:
		return 0
	}
}

// better orders candidates within Route: class first, then the higher rate,
// then the larger slack (emptier replica), with ties keeping the lower index
// (Route scans ascending and replaces only on strict improvement).
func better(a, b RouteDecision, aFeas, bFeas bool) bool {
	ca, cb := routeClass(aFeas, a.Penalized), routeClass(bFeas, b.Penalized)
	if ca != cb {
		return ca > cb
	}
	if a.Rate != b.Rate {
		return a.Rate > b.Rate
	}
	return a.Slack > b.Slack
}

// Route assigns one query arriving at time arrival (deciding at window close
// close) to the replica that would serve its grown current-window batch at
// the highest rate, and books it into that replica's pending count. skip,
// when non-nil, excludes replicas (a retry must not revisit the replica that
// just failed). ok is false when no replica is in rotation.
func (c *Cluster) Route(arrival, close float64, skip func(i int) bool) (rd RouteDecision, ok bool) {
	rd.Replica = -1
	for i, r := range c.Replicas {
		if r.Ejected || (skip != nil && skip(i)) {
			continue
		}
		oldest := arrival
		if r.Pending > 0 && r.Oldest < oldest {
			oldest = r.Oldest
		}
		ahead := r.Backlog.Ahead(close)
		slack := c.deadline(oldest, close) - close - ahead
		rate, feasible := r.Policy.ChooseSlack(r.Pending+1, slack)
		d := RouteDecision{
			Replica: i, Rate: rate, Feasible: feasible,
			Slack: slack, Ahead: ahead, Penalized: r.Penalized,
		}
		if rd.Replica < 0 || better(d, rd, feasible, rd.Feasible) {
			rd = d
		}
	}
	if rd.Replica < 0 {
		return rd, false
	}
	r := c.Replicas[rd.Replica]
	if r.Pending == 0 || arrival < r.Oldest {
		r.Oldest = arrival
	}
	r.Pending++
	return rd, true
}

// Close closes the current window at time close: every replica with routed
// queries takes the same backlog-aware Decision its own scheduler will take
// for that batch, extending its horizon, and the pending counts reset. The
// returned slice is index-aligned with Replicas; entries with no batch are
// zero-valued.
func (c *Cluster) Close(close float64) []Decision {
	out := make([]Decision, len(c.Replicas))
	for i, r := range c.Replicas {
		if r.Pending == 0 {
			continue
		}
		out[i] = r.Backlog.Decide(r.Policy, r.Pending, c.deadline(r.Oldest, close), close)
		r.Pending, r.Oldest = 0, 0
	}
	return out
}

// FleetTick records one T/2 window of a fleet simulation.
type FleetTick struct {
	Arrivals int
	// Routed is the batch each replica collected this window; Decisions the
	// backlog-aware decision it took for it (zero-valued when Routed is 0).
	Routed    []int
	Decisions []Decision
}

// FleetStats aggregates a fleet simulation run.
type FleetStats struct {
	Ticks     []FleetTick
	Processed int
	// SLOViolations counts queries in replica-window batches that missed
	// their deadline; InfeasibleWindows and DegradedWindows count the
	// replica-window batches themselves.
	SLOViolations     int
	InfeasibleWindows int
	DegradedWindows   int
	RateHist          map[float64]int
	MeanRate          float64
	// PerReplica is the total queries routed to each replica.
	PerReplica []int
}

// SimulateFleet runs the cluster decision clock-free over per-window arrival
// counts: every query of window k arrives at k·W, is routed greedily through
// Cluster.Route, and each replica's batch is decided at the close (k+1)·W —
// the identical arithmetic the live coordinator runs, which is what the
// fleet lockstep test pins. All replicas share cfg's cost curve, the
// homogeneous-fleet baseline.
func SimulateFleet(cfg Config, replicas int, arrivals []int) FleetStats {
	policy := cfg.Policy()
	c := &Cluster{SLO: cfg.LatencySLO, Replicas: make([]*ReplicaModel, replicas)}
	for i := range c.Replicas {
		c.Replicas[i] = &ReplicaModel{Policy: policy}
	}
	window := policy.Window
	stats := FleetStats{RateHist: make(map[float64]int), PerReplica: make([]int, replicas)}
	sumRate := 0.0
	for k, n := range arrivals {
		arrival, close := float64(k)*window, float64(k+1)*window
		routed := make([]int, replicas)
		for q := 0; q < n; q++ {
			rd, ok := c.Route(arrival, close, nil)
			if !ok {
				break
			}
			routed[rd.Replica]++
		}
		ds := c.Close(close)
		for i, d := range ds {
			if routed[i] == 0 {
				continue
			}
			stats.Processed += routed[i]
			stats.PerReplica[i] += routed[i]
			stats.RateHist[d.Rate] += routed[i]
			sumRate += d.Rate * float64(routed[i])
			if !d.Feasible {
				stats.SLOViolations += routed[i]
				stats.InfeasibleWindows++
			}
			if d.Degraded {
				stats.DegradedWindows++
			}
		}
		stats.Ticks = append(stats.Ticks, FleetTick{Arrivals: n, Routed: routed, Decisions: ds})
	}
	if stats.Processed > 0 {
		stats.MeanRate = sumRate / float64(stats.Processed)
	}
	return stats
}
