package serving

import (
	"fmt"
	"math"

	"modelslicing/internal/slicing"
)

// Policy is the Section 4.1 scheduling policy shared by the clock-free
// simulation (Simulate) and the live concurrent server (internal/server):
// given the n queries batched during one T/2 window, serve them at the
// largest slice rate r with n·t(r) ≤ budget (Equation 3). The budget is the
// full window T/2 when the pool is idle, or — through ChooseSlack and the
// Backlog model — whatever slack remains of the batch's deadline once the
// work already dispatched ahead of it is accounted for, so that delay cannot
// silently compound across windows.
//
// SampleTime abstracts the per-sample processing time t(r). The simulation
// uses the idealized FullSampleTime·r² curve; the live server substitutes
// per-rate times measured by its calibrator, so the policy never drifts from
// the hardware it actually runs on.
//
// Every feasibility question — Choose, ChooseSlack, Capacity — goes through
// the single product-form comparison n·t(r) ≤ budget. The division forms
// (t ≤ budget/n, ⌊budget/t⌋) round differently at exactly-full windows, which
// used to let admission control and rate choice disagree by one query.
type Policy struct {
	// Rates are the deployable slice rates (ascending, ending at 1).
	Rates slicing.RateList
	// Window is the batching interval T/2, in the same time units as
	// SampleTime's results.
	Window float64
	// SampleTime returns the per-sample processing time t(r) at rate r.
	SampleTime func(r float64) float64
}

// NewPolicy builds the Equation-3 policy with the idealized quadratic cost
// curve t(r) = fullSampleTime·r² used throughout the paper's analysis.
func NewPolicy(rates slicing.RateList, latencySLO, fullSampleTime float64) Policy {
	if latencySLO <= 0 || fullSampleTime <= 0 {
		panic(fmt.Sprintf("serving: invalid policy parameters T=%v t=%v", latencySLO, fullSampleTime))
	}
	return Policy{
		Rates:      rates,
		Window:     latencySLO / 2,
		SampleTime: func(r float64) float64 { return fullSampleTime * r * r },
	}
}

// Choose picks the largest rate that serves a batch of n within the window,
// falling back to the smallest rate (feasible = false) when even that
// overruns — the batch will miss the latency bound but quality degrades no
// further than the lower bound the operator chose at training time.
func (p Policy) Choose(n int) (rate float64, feasible bool) {
	return p.ChooseSlack(n, p.Window)
}

// ChooseSlack is Choose against an arbitrary remaining budget instead of a
// fresh window: the largest rate with n·t(r) ≤ slack. Backlog.Decide feeds
// it each window's deadline slack — deadline minus now minus the estimated
// work already in flight — so a window queued behind an overrun is served at
// a deliberately lower rate (a recorded degradation) instead of optimistically
// at the rate an empty pool could afford (a surprise SLO miss).
func (p Policy) ChooseSlack(n int, slack float64) (rate float64, feasible bool) {
	if n <= 0 {
		return p.Rates.Max(), true
	}
	return p.Rates.LargestWithin(slack, func(r float64) float64 { return p.BatchTime(n, r) })
}

// BatchTime is the processing time of a batch of n at rate r.
func (p Policy) BatchTime(n int, r float64) float64 {
	return float64(n) * p.SampleTime(r)
}

// Capacity is the largest batch size a window can absorb at rate r. It is
// the admission-control bound at the lower rate: once more than
// Capacity(Rates.Min()) queries are pending, no rate can save the batch.
func (p Policy) Capacity(r float64) int {
	return p.CapacityWithin(r, p.Window)
}

// CapacityWithin is the largest n with n·t(r) ≤ budget — Capacity against an
// arbitrary remaining budget (admission control shrinks the budget by the
// backlog ahead of the next window). The float division only seeds the
// answer; the boundary itself is settled by the same product-form comparison
// ChooseSlack uses, so a batch of exactly CapacityWithin(r, b) is always
// feasible at r and one more query never is.
func (p Policy) CapacityWithin(r float64, budget float64) int {
	if budget <= 0 {
		return 0
	}
	t := p.SampleTime(r)
	if t <= 0 {
		return math.MaxInt
	}
	est := budget / t
	if est >= float64(math.MaxInt) {
		return math.MaxInt
	}
	n := int(est)
	for float64(n+1)*t <= budget {
		n++
	}
	for n > 0 && float64(n)*t > budget {
		n--
	}
	return n
}
