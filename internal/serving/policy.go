package serving

import (
	"fmt"
	"math"

	"modelslicing/internal/slicing"
)

// Policy is the Section 4.1 scheduling policy shared by the clock-free
// simulation (Simulate) and the live concurrent server (internal/server):
// given the n queries batched during one T/2 window, serve them at the
// largest slice rate r with n·t(r) ≤ T/2 (Equation 3), so that collecting
// the next window and processing the current one together stay within the
// latency bound T.
//
// SampleTime abstracts the per-sample processing time t(r). The simulation
// uses the idealized FullSampleTime·r² curve; the live server substitutes
// per-rate times measured by its calibrator, so the policy never drifts from
// the hardware it actually runs on.
type Policy struct {
	// Rates are the deployable slice rates (ascending, ending at 1).
	Rates slicing.RateList
	// Window is the batching interval T/2, in the same time units as
	// SampleTime's results.
	Window float64
	// SampleTime returns the per-sample processing time t(r) at rate r.
	SampleTime func(r float64) float64
}

// NewPolicy builds the Equation-3 policy with the idealized quadratic cost
// curve t(r) = fullSampleTime·r² used throughout the paper's analysis.
func NewPolicy(rates slicing.RateList, latencySLO, fullSampleTime float64) Policy {
	if latencySLO <= 0 || fullSampleTime <= 0 {
		panic(fmt.Sprintf("serving: invalid policy parameters T=%v t=%v", latencySLO, fullSampleTime))
	}
	return Policy{
		Rates:      rates,
		Window:     latencySLO / 2,
		SampleTime: func(r float64) float64 { return fullSampleTime * r * r },
	}
}

// Choose picks the largest rate that serves a batch of n within the window,
// falling back to the smallest rate (feasible = false) when even that
// overruns — the batch will miss the latency bound but quality degrades no
// further than the lower bound the operator chose at training time.
func (p Policy) Choose(n int) (rate float64, feasible bool) {
	if n <= 0 {
		return p.Rates.Max(), true
	}
	budget := p.Window / float64(n)
	return p.Rates.LargestWithin(budget, p.SampleTime)
}

// BatchTime is the processing time of a batch of n at rate r.
func (p Policy) BatchTime(n int, r float64) float64 {
	return float64(n) * p.SampleTime(r)
}

// Capacity is the largest batch size a window can absorb at rate r. It is
// the admission-control bound at the lower rate: once more than
// Capacity(Rates.Min()) queries are pending, no rate can save the batch.
func (p Policy) Capacity(r float64) int {
	t := p.SampleTime(r)
	if t <= 0 {
		return math.MaxInt
	}
	return int(p.Window / t)
}
