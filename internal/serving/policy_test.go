package serving

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/slicing"
)

func TestPolicyChooseMatchesEquation3(t *testing.T) {
	p := NewPolicy(slicing.NewRateList(0.25, 4), 100, 1) // window 50, t(r)=r²
	for _, tc := range []struct {
		n        int
		want     float64
		feasible bool
	}{
		{0, 1.0, true},
		{50, 1.0, true},   // 50·1 = window exactly
		{51, 0.75, true},  // 51·0.5625 ≈ 28.7
		{200, 0.5, true},  // 200·0.25 = 50
		{201, 0.25, true}, // falls through 0.5
		{800, 0.25, true}, // 800·0.0625 = 50
		{801, 0.25, false},
	} {
		r, ok := p.Choose(tc.n)
		if r != tc.want || ok != tc.feasible {
			t.Fatalf("Choose(%d) = %v, %v; want %v, %v", tc.n, r, ok, tc.want, tc.feasible)
		}
	}
}

func TestPolicyCapacityAndBatchTime(t *testing.T) {
	p := NewPolicy(slicing.NewRateList(0.25, 4), 100, 1)
	for r, want := range map[float64]int{1.0: 50, 0.5: 200, 0.25: 800} {
		if got := p.Capacity(r); got != want {
			t.Fatalf("Capacity(%v) = %d, want %d", r, got, want)
		}
	}
	if bt := p.BatchTime(10, 0.5); bt != 2.5 {
		t.Fatalf("BatchTime(10, 0.5) = %v, want 2.5", bt)
	}
}

func TestChooseSlackBudgetsAgainstRemainingSlack(t *testing.T) {
	p := NewPolicy(slicing.NewRateList(0.25, 4), 2, 1) // window 1, t(r)=r²
	for _, tc := range []struct {
		n        int
		slack    float64
		want     float64
		feasible bool
	}{
		{1, 1.0, 1.0, true},      // full slack: Equation 3 unchanged
		{1, 0.75, 0.75, true},    // backlog ate a quarter window: degrade one step
		{1, 0.3, 0.5, true},      // further backlog: degrade again
		{1, 0.05, 0.25, false},   // even the lower bound overruns the slack
		{1, -0.5, 0.25, false},   // deadline already blown: serve at the floor
		{4, 1.0, 0.5, true},      // 4·0.25 = slack exactly
		{16, 1.0, 0.25, true},    // lower-bound boundary
		{16, 0.999, 0.25, false}, // one epsilon less: infeasible
		{0, 0.0, 1.0, true},      // empty batch never degrades
	} {
		r, ok := p.ChooseSlack(tc.n, tc.slack)
		if r != tc.want || ok != tc.feasible {
			t.Fatalf("ChooseSlack(%d, %v) = %v, %v; want %v, %v",
				tc.n, tc.slack, r, ok, tc.want, tc.feasible)
		}
	}
	// Choose is ChooseSlack at the full window.
	if r1, ok1 := p.Choose(7); true {
		r2, ok2 := p.ChooseSlack(7, p.Window)
		if r1 != r2 || ok1 != ok2 {
			t.Fatalf("Choose(7)=%v,%v but ChooseSlack(7, Window)=%v,%v", r1, ok1, r2, ok2)
		}
	}
}

// TestCapacityAgreesWithChooseAtBoundary pins the reconciliation of the two
// feasibility forms: ⌊Window/t⌋ (the old Capacity) and n·t ≤ Window (Choose)
// can disagree by one query under float rounding, which made admission and
// rate choice flip-flop at exactly-full windows. Both now run through the
// same product-form comparison: a batch of exactly Capacity(r) must be
// feasible at r, and one more query must not be.
func TestCapacityAgreesWithChooseAtBoundary(t *testing.T) {
	rates := slicing.NewRateList(0.25, 4)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5000; trial++ {
		// Adversarial float pairs: windows deliberately set to near-integer
		// multiples of the sample time, where the division form rounds
		// unpredictably.
		tFull := math.Exp(rng.Float64()*8 - 4) // t in [e⁻⁴, e⁴)
		mult := float64(1+rng.Intn(50)) + float64(rng.Intn(3)-1)*1e-15
		p := Policy{
			Rates:      rates,
			Window:     tFull * mult * (0.25 * 0.25), // near-integer multiples of t(r_min)
			SampleTime: func(r float64) float64 { return tFull * r * r },
		}
		for _, r := range rates {
			c := p.Capacity(r)
			if c > 0 && p.BatchTime(c, r) > p.Window {
				t.Fatalf("t=%v window=%v: Capacity(%v)=%d but BatchTime=%v > window",
					tFull, p.Window, r, c, p.BatchTime(c, r))
			}
			if p.BatchTime(c+1, r) <= p.Window {
				t.Fatalf("t=%v window=%v: Capacity(%v)=%d undercounts, %d still fits",
					tFull, p.Window, r, c, c+1)
			}
		}
		// The admission boundary and the rate decision agree: a pending
		// queue of exactly Capacity(r_min) is served feasibly, one more
		// query is infeasible — no flip-flop.
		cMin := p.Capacity(rates.Min())
		if cMin > 0 {
			if _, ok := p.Choose(cMin); !ok {
				t.Fatalf("window=%v: Choose rejects a batch of exactly Capacity(r_min)=%d", p.Window, cMin)
			}
		}
		if _, ok := p.Choose(cMin + 1); ok {
			t.Fatalf("window=%v: Choose accepts %d > Capacity(r_min)=%d", p.Window, cMin+1, cMin)
		}
	}
}

func TestCapacityWithinEdgeCases(t *testing.T) {
	p := NewPolicy(slicing.NewRateList(0.25, 4), 2, 1)
	if got := p.CapacityWithin(0.25, 0); got != 0 {
		t.Fatalf("zero budget capacity %d, want 0", got)
	}
	if got := p.CapacityWithin(0.25, -1); got != 0 {
		t.Fatalf("negative budget capacity %d, want 0", got)
	}
	free := Policy{Rates: p.Rates, Window: 1, SampleTime: func(float64) float64 { return 0 }}
	if got := free.CapacityWithin(0.25, 1); got != math.MaxInt {
		t.Fatalf("zero-cost capacity %d, want MaxInt", got)
	}
	tiny := Policy{Rates: p.Rates, Window: 1, SampleTime: func(float64) float64 { return 1e-300 }}
	if got := tiny.CapacityWithin(0.25, 1); got != math.MaxInt {
		t.Fatalf("overflow-scale capacity %d, want MaxInt saturation", got)
	}
}

// TestSimulateAgreesWithPolicy pins the refactor: the simulation must make
// exactly the decisions the shared Policy + Backlog model makes, window by
// window — including the cascade, where a window behind an overrun is
// budgeted against its remaining slack rather than a fresh T/2.
func TestSimulateAgreesWithPolicy(t *testing.T) {
	cfg := Config{LatencySLO: 100, FullSampleTime: 1, Rates: slicing.NewRateList(0.25, 4)}
	p := cfg.Policy()
	arrivals := []int{0, 7, 50, 51, 199, 200, 640, 801, 3, 900, 10, 0, 1}
	stats := Simulate(cfg, arrivals)
	var backlog Backlog
	for i, n := range arrivals {
		if n == 0 {
			continue
		}
		want := backlog.Decide(p, n, float64(i)*p.Window+cfg.LatencySLO, float64(i+1)*p.Window)
		tick := stats.Ticks[i]
		if tick.Rate != want.Rate || tick.Infeasible == want.Feasible || tick.Degraded != want.Degraded {
			t.Fatalf("window %d (n=%d): sim chose %v/inf=%v/deg=%v, model says %v/inf=%v/deg=%v",
				i, n, tick.Rate, tick.Infeasible, tick.Degraded, want.Rate, !want.Feasible, want.Degraded)
		}
		if tick.WorkTime != want.Work || tick.Slack != want.Slack || tick.Completion != want.Completion {
			t.Fatalf("window %d work/slack/completion %v/%v/%v, model says %v/%v/%v",
				i, tick.WorkTime, tick.Slack, tick.Completion, want.Work, want.Slack, want.Completion)
		}
	}
}

func TestEmptyTraceStats(t *testing.T) {
	cfg := Config{LatencySLO: 100, FullSampleTime: 1, Rates: slicing.NewRateList(0.25, 4)}
	for name, stats := range map[string]Stats{
		"simulate": Simulate(cfg, nil),
		"fixed":    FixedCapacityBaseline(cfg, 1.0, nil),
	} {
		if stats.TroughArrivals != 0 {
			t.Fatalf("%s: empty trace leaks TroughArrivals=%d", name, stats.TroughArrivals)
		}
		if stats.Processed != 0 || stats.SLOViolations != 0 {
			t.Fatalf("%s: empty trace produced work: %+v", name, stats)
		}
	}
	// All-zero traces must not report the MaxInt sentinel either.
	stats := Simulate(cfg, []int{0, 0, 0})
	if stats.TroughArrivals != 0 {
		t.Fatalf("all-zero trace: TroughArrivals=%d, want 0", stats.TroughArrivals)
	}
}
