package serving

import (
	"testing"

	"modelslicing/internal/slicing"
)

func TestPolicyChooseMatchesEquation3(t *testing.T) {
	p := NewPolicy(slicing.NewRateList(0.25, 4), 100, 1) // window 50, t(r)=r²
	for _, tc := range []struct {
		n        int
		want     float64
		feasible bool
	}{
		{0, 1.0, true},
		{50, 1.0, true},   // 50·1 = window exactly
		{51, 0.75, true},  // 51·0.5625 ≈ 28.7
		{200, 0.5, true},  // 200·0.25 = 50
		{201, 0.25, true}, // falls through 0.5
		{800, 0.25, true}, // 800·0.0625 = 50
		{801, 0.25, false},
	} {
		r, ok := p.Choose(tc.n)
		if r != tc.want || ok != tc.feasible {
			t.Fatalf("Choose(%d) = %v, %v; want %v, %v", tc.n, r, ok, tc.want, tc.feasible)
		}
	}
}

func TestPolicyCapacityAndBatchTime(t *testing.T) {
	p := NewPolicy(slicing.NewRateList(0.25, 4), 100, 1)
	for r, want := range map[float64]int{1.0: 50, 0.5: 200, 0.25: 800} {
		if got := p.Capacity(r); got != want {
			t.Fatalf("Capacity(%v) = %d, want %d", r, got, want)
		}
	}
	if bt := p.BatchTime(10, 0.5); bt != 2.5 {
		t.Fatalf("BatchTime(10, 0.5) = %v, want 2.5", bt)
	}
}

// TestSimulateAgreesWithPolicy pins the refactor: the simulation must make
// exactly the decisions the shared Policy makes, window by window.
func TestSimulateAgreesWithPolicy(t *testing.T) {
	cfg := Config{LatencySLO: 100, FullSampleTime: 1, Rates: slicing.NewRateList(0.25, 4)}
	p := cfg.Policy()
	arrivals := []int{0, 7, 50, 51, 199, 200, 640, 801, 3}
	stats := Simulate(cfg, arrivals)
	for i, n := range arrivals {
		if n == 0 {
			continue
		}
		wantRate, feasible := p.Choose(n)
		tick := stats.Ticks[i]
		if tick.Rate != wantRate || tick.Infeasible == feasible {
			t.Fatalf("window %d (n=%d): sim chose %v/inf=%v, policy says %v/inf=%v",
				i, n, tick.Rate, tick.Infeasible, wantRate, !feasible)
		}
		if tick.WorkTime != p.BatchTime(n, wantRate) {
			t.Fatalf("window %d work time %v, policy says %v", i, tick.WorkTime, p.BatchTime(n, wantRate))
		}
	}
}

func TestEmptyTraceStats(t *testing.T) {
	cfg := Config{LatencySLO: 100, FullSampleTime: 1, Rates: slicing.NewRateList(0.25, 4)}
	for name, stats := range map[string]Stats{
		"simulate": Simulate(cfg, nil),
		"fixed":    FixedCapacityBaseline(cfg, 1.0, nil),
	} {
		if stats.TroughArrivals != 0 {
			t.Fatalf("%s: empty trace leaks TroughArrivals=%d", name, stats.TroughArrivals)
		}
		if stats.Processed != 0 || stats.SLOViolations != 0 {
			t.Fatalf("%s: empty trace produced work: %+v", name, stats)
		}
	}
	// All-zero traces must not report the MaxInt sentinel either.
	stats := Simulate(cfg, []int{0, 0, 0})
	if stats.TroughArrivals != 0 {
		t.Fatalf("all-zero trace: TroughArrivals=%d, want 0", stats.TroughArrivals)
	}
}
