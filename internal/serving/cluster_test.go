package serving

import (
	"testing"

	"modelslicing/internal/slicing"
)

func clusterCfg() Config {
	return Config{LatencySLO: 2, FullSampleTime: 1, Rates: slicing.NewRateList(0.25, 4)}
}

// A one-replica fleet is definitionally the single-node system: SimulateFleet
// with N=1 must reproduce Simulate window for window.
func TestSimulateFleetSingleReplicaMatchesSimulate(t *testing.T) {
	cfg := clusterCfg()
	arrivals := []int{1, 5, 0, 12, 3, 0, 9, 2, 7, 0, 1}
	single := Simulate(cfg, arrivals)
	fleet := SimulateFleet(cfg, 1, arrivals)

	if fleet.Processed != single.Processed {
		t.Fatalf("processed %d, single-node %d", fleet.Processed, single.Processed)
	}
	if fleet.SLOViolations != single.SLOViolations {
		t.Fatalf("violations %d, single-node %d", fleet.SLOViolations, single.SLOViolations)
	}
	if fleet.DegradedWindows != single.DegradedWindows {
		t.Fatalf("degraded %d, single-node %d", fleet.DegradedWindows, single.DegradedWindows)
	}
	if fleet.MeanRate != single.MeanRate {
		t.Fatalf("mean rate %g, single-node %g", fleet.MeanRate, single.MeanRate)
	}
	for k := range arrivals {
		if arrivals[k] == 0 {
			continue
		}
		got, want := fleet.Ticks[k].Decisions[0], single.Ticks[k]
		if got.Rate != want.Rate || !got.Feasible == !want.Infeasible || got.Degraded != want.Degraded {
			t.Fatalf("window %d: fleet decision %+v, single-node tick %+v", k, got, want)
		}
	}
}

// Spreading a batch over N replicas multiplies the feasible envelope: a
// window that overruns one replica is served cleanly by three.
func TestSimulateFleetAbsorbsWhatOneReplicaCannot(t *testing.T) {
	cfg := clusterCfg()
	arrivals := []int{40, 0, 40, 0, 40, 0}
	if v := Simulate(cfg, arrivals).SLOViolations; v == 0 {
		t.Fatal("trace is supposed to overrun a single replica")
	}
	if v := SimulateFleet(cfg, 3, arrivals).SLOViolations; v != 0 {
		t.Fatalf("3-replica fleet still violated %d queries", v)
	}
}

// Route prefers the replica that serves the query's window at the highest
// rate, breaking rate ties toward the emptier replica and slack ties toward
// the lowest index.
func TestRouteGreedyOrdering(t *testing.T) {
	policy := clusterCfg().Policy()
	c := &Cluster{SLO: 2, Replicas: []*ReplicaModel{
		{Policy: policy}, {Policy: policy}, {Policy: policy},
	}}
	// Replica 0 carries 0.8s of in-flight work: its slack for a window-0
	// query is 0.2 → rate 0.25; empty replicas offer rate 1.0.
	c.Replicas[0].Backlog.Extend(0, 1.8)

	rd, ok := c.Route(0, 1, nil)
	if !ok || rd.Replica != 1 || rd.Rate != 1.0 {
		t.Fatalf("first query routed to %d at rate %g, want empty replica 1 at 1.0", rd.Replica, rd.Rate)
	}
	// Booking replica 1 drops its prospective rate for a second query
	// (n=2 → 0.5), so the next query goes to still-empty replica 2.
	rd, ok = c.Route(0, 1, nil)
	if !ok || rd.Replica != 2 || rd.Rate != 1.0 {
		t.Fatalf("second query routed to %d at rate %g, want replica 2 at 1.0", rd.Replica, rd.Rate)
	}
	// Now both clean replicas hold one query (prospective rate 0.5 each);
	// the backlogged replica offers only 0.25, so the tie between 1 and 2
	// resolves to the lower index.
	rd, ok = c.Route(0, 1, nil)
	if !ok || rd.Replica != 1 || rd.Rate != 0.5 {
		t.Fatalf("third query routed to %d at rate %g, want replica 1 at 0.5", rd.Replica, rd.Rate)
	}
}

// A penalized replica is chosen only when no clean replica admits the query
// feasibly; an ejected replica is never chosen; skip excludes candidates the
// caller rules out (retry-on-a-different-replica).
func TestRoutePenalizedEjectedSkip(t *testing.T) {
	policy := clusterCfg().Policy()
	mk := func() *Cluster {
		return &Cluster{SLO: 2, Replicas: []*ReplicaModel{
			{Policy: policy}, {Policy: policy},
		}}
	}

	c := mk()
	c.Replicas[0].Penalized = true
	rd, _ := c.Route(0, 1, nil)
	if rd.Replica != 1 || rd.Penalized {
		t.Fatalf("routed to %d (penalized=%v), want clean replica 1", rd.Replica, rd.Penalized)
	}

	// Saturate the clean replica so it cannot admit feasibly; the penalized
	// one, feasible, now wins — penalty degrades priority, not membership.
	c = mk()
	c.Replicas[0].Penalized = true
	c.Replicas[1].Backlog.Extend(0, 3)
	rd, _ = c.Route(0, 1, nil)
	if rd.Replica != 0 || !rd.Penalized || !rd.Feasible {
		t.Fatalf("routed to %d (penalized=%v feasible=%v), want feasible penalized replica 0",
			rd.Replica, rd.Penalized, rd.Feasible)
	}

	c = mk()
	c.Replicas[0].Ejected = true
	rd, _ = c.Route(0, 1, nil)
	if rd.Replica != 1 {
		t.Fatalf("routed to ejected replica %d", rd.Replica)
	}
	c.Replicas[1].Ejected = true
	if _, ok := c.Route(0, 1, nil); ok {
		t.Fatal("routed with every replica ejected")
	}

	c = mk()
	rd, ok := c.Route(0, 1, func(i int) bool { return i == 0 })
	if !ok || rd.Replica != 1 {
		t.Fatalf("skip(0) routed to %d", rd.Replica)
	}
	if _, ok := c.Route(0, 1, func(i int) bool { return true }); ok {
		t.Fatal("routed with every replica skipped")
	}
}

// Close hands each booked replica the same backlog-aware decision its own
// scheduler takes, and resets the pending window.
func TestClusterCloseMatchesBacklogDecide(t *testing.T) {
	policy := clusterCfg().Policy()
	c := &Cluster{SLO: 2, Replicas: []*ReplicaModel{{Policy: policy}}}
	for q := 0; q < 5; q++ {
		if _, ok := c.Route(0, 1, nil); !ok {
			t.Fatal("route failed")
		}
	}
	var ref Backlog
	want := ref.Decide(policy, 5, 2, 1) // 5 queries, oldest 0, SLO 2, close 1
	got := c.Close(1)[0]
	if got != want {
		t.Fatalf("fleet close %+v, direct Decide %+v", got, want)
	}
	if r := c.Replicas[0]; r.Pending != 0 || r.Oldest != 0 {
		t.Fatalf("window not reset: pending=%d oldest=%g", r.Pending, r.Oldest)
	}
	if h := c.Replicas[0].Backlog.Horizon(); h != want.Completion {
		t.Fatalf("horizon %g, want %g", h, want.Completion)
	}
}
