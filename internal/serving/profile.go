package serving

import (
	"math"
	"math/rand"
	"time"

	"modelslicing/internal/nn"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
)

// MeasureSampleTimes calibrates the per-sample inference cost t(r) of a
// model at every deployable rate by timing the zero-copy shared-weight path
// (the same path the live server runs), replacing the r² idealization with
// measured numbers: one warm-up pass per rate, then the best of three timed
// batches (the minimum filters scheduler noise).
//
// The returned function maps any rate to the measurement of its nearest
// list member, in seconds per sample — directly usable as Policy.SampleTime
// or, divided by its r=1 value, as Config.CostRatio.
func MeasureSampleTimes(model nn.Layer, rates slicing.RateList, inShape []int, batch int) func(r float64) float64 {
	return MeasureSharedSampleTimes(slicing.NewShared(model, rates), inShape, batch)
}

// MeasureSharedSampleTimes is MeasureSampleTimes over a caller-built Shared,
// so the calibration runs with the caller's serving configuration (in
// particular a SetPacked or SetTier choice) instead of a fresh default
// handle: t(r) is measured per engine tier, since the fast tiers shift the
// whole curve.
func MeasureSharedSampleTimes(shared *slicing.Shared, inShape []int, batch int) func(r float64) float64 {
	rates := shared.Rates()
	rates.Validate()
	if batch <= 0 {
		batch = 32
	}
	rng := rand.New(rand.NewSource(0))
	x := tensor.New(append([]int{batch}, inShape...)...)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	arena := tensor.NewArena()
	times := make(map[float64]float64, len(rates))
	for _, r := range rates {
		shared.Infer(r, x, arena)
		arena.Reset()
		best := math.Inf(1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			shared.Infer(r, x, arena)
			arena.Reset()
			if d := time.Since(start).Seconds(); d < best {
				best = d
			}
		}
		times[r] = best / float64(batch)
	}
	return func(r float64) float64 { return times[rates.Nearest(r)] }
}
