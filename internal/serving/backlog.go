package serving

import "modelslicing/internal/obs"

// Backlog is the scheduling-state half of the Section 4.1 policy: a single
// completion horizon — when the work already dispatched is estimated to
// finish — on the policy's time axis. The T/2 guarantee ("window k+1 is
// collected while window k is processed") holds only while every batch fits
// its window; the moment one overruns, the windows behind it inherit the
// delay, and a policy that budgets each window a fresh T/2 compounds the
// error silently. Backlog makes that queueing delay an explicit input to the
// rate decision.
//
// The horizon is work-conserving: batch times are pool-effective (the
// calibrator measures whole batches through the full worker pool), so
// partitioning the pool across concurrent windows changes who runs when, not
// when everything finishes. That lets one scalar model a dispatcher that may
// run several windows at once, and lets the clock-free simulation and the
// live server share the arithmetic exactly — the lockstep tests in
// internal/server drive both with one trace and demand identical decisions.
//
// The model is deliberately estimate-based, never corrected by completion
// events: estimates drift is the calibrator's job (its EWMA folds measured
// batch times back into t(r)), and a model-only horizon is deterministic
// under a fake clock, which is what makes the live path testable in
// lockstep with the simulation. Feasible traffic self-drains — each window
// appends at most one window's worth of work while the clock advances one
// window — so the horizon only runs ahead of the clock while batches
// genuinely overrun.
type Backlog struct {
	horizon float64 // completion time of all dispatched work
}

// Horizon returns the absolute estimated completion time of all dispatched
// work, in the policy's time units.
func (b *Backlog) Horizon() float64 { return b.horizon }

// Ahead returns the estimated work still in flight at time now: how much
// longer the pool needs, beyond now, to finish everything already
// dispatched. Zero once the horizon has drained past now.
func (b *Backlog) Ahead(now float64) float64 {
	if b.horizon <= now {
		return 0
	}
	return b.horizon - now
}

// Extend appends work to the horizon, starting no earlier than now, and
// reports the estimated start and completion. It is the bookkeeping half of
// Decide, exposed for runners (the fixed-capacity baseline) that pin the
// rate themselves but still want makespan accounting.
func (b *Backlog) Extend(now, work float64) (start, completion float64) {
	start = max(b.horizon, now)
	b.horizon = start + work
	return start, b.horizon
}

// Decision is one window's backlog-aware scheduling outcome.
type Decision struct {
	// Rate is the slice rate chosen for the batch.
	Rate float64
	// Feasible reports whether the batch at Rate meets the window's
	// deadline given the backlog ahead of it; false means every query in
	// the window will miss the latency bound.
	Feasible bool
	// Degraded reports that backlog — not batch size — cost this window:
	// an empty pool would have served it at a higher rate, or feasibly.
	Degraded bool
	// Slack is the remaining budget the rate decision ran against:
	// deadline − now − Ahead.
	Slack float64
	// Ahead is the estimated in-flight work at decision time.
	Ahead float64
	// Work is the estimated batch processing time n·t(Rate).
	Work float64
	// Start and Completion bound the batch's estimated execution on the
	// work-conserving timeline.
	Start, Completion float64
	// Circuit marks a window whose rate was pinned to the floor by an open
	// fault circuit (consecutive shard failures), not by the backlog
	// arithmetic. Set by the live server; the clock-free simulation never
	// trips it.
	Circuit bool
}

// Reason names the decision's outcome for the flight recorder: "ok" when
// the batch fits its budget at the chosen rate, "circuit-pinned" when an
// open fault circuit pinned a feasible window to the rate floor,
// "backlog-degraded" when backlog cost the window rate (it still meets its
// deadline, lower), "backlog-infeasible" when backlog cost it feasibility
// (an empty pool would have served it in time), and "overrun" when the
// batch alone exceeds its budget at every rate — no scheduler could have
// saved it. An infeasible window under an open circuit keeps the backlog
// spelling: the circuit explains the rate, not the miss.
func (d Decision) Reason() string {
	switch {
	case d.Circuit && d.Feasible:
		return "circuit-pinned"
	case d.Feasible && !d.Degraded:
		return "ok"
	case d.Feasible:
		return "backlog-degraded"
	case d.Degraded:
		return "backlog-infeasible"
	default:
		return "overrun"
	}
}

// Record expands the decision into the flight-recorder record type shared
// with the live server: every input the decision ran against, plus the
// derived reason. window is the T/2 sequence number and now the window's
// close time on the policy axis — the same coordinates Decide was given.
func (d Decision) Record(p Policy, window int64, arrivals int, now float64) obs.DecisionRecord {
	return obs.DecisionRecord{
		Window:     window,
		Time:       now,
		Arrivals:   arrivals,
		Rate:       d.Rate,
		MinRate:    p.Rates.Min(),
		MaxRate:    p.Rates.Max(),
		Feasible:   d.Feasible,
		Degraded:   d.Degraded,
		Slack:      d.Slack,
		Ahead:      d.Ahead,
		Work:       d.Work,
		Start:      d.Start,
		Completion: d.Completion,
		Circuit:    d.Circuit,
		Reason:     d.Reason(),
	}
}

// Decide resolves the rate for a window of n queries closing at time now
// whose oldest query expires at deadline. Instead of Equation 3's fresh T/2,
// the batch is budgeted against its remaining slack — deadline minus now
// minus the estimated work already dispatched ahead of it — so rates fall
// (and Degraded records why) as backlog builds, and recover to the full
// rate as the horizon drains. The chosen batch's estimated work is then
// appended to the horizon for the windows behind it.
func (b *Backlog) Decide(p Policy, n int, deadline, now float64) Decision {
	d := Decision{Ahead: b.Ahead(now)}
	d.Slack = deadline - now - d.Ahead
	d.Rate, d.Feasible = p.ChooseSlack(n, d.Slack)
	if d.Ahead > 0 {
		freeRate, freeOK := p.ChooseSlack(n, deadline-now)
		d.Degraded = d.Rate < freeRate || (freeOK && !d.Feasible)
	}
	d.Work = p.BatchTime(n, d.Rate)
	d.Start, d.Completion = b.Extend(now, d.Work)
	return d
}

// DecideRate is Decide with the rate pinned — the fixed-width baseline arm.
// Feasibility and horizon bookkeeping use the same slack model; only the
// rate choice is forced.
func (b *Backlog) DecideRate(p Policy, n int, rate, deadline, now float64) Decision {
	d := Decision{Rate: rate, Ahead: b.Ahead(now)}
	d.Slack = deadline - now - d.Ahead
	d.Work = p.BatchTime(n, rate)
	d.Feasible = d.Work <= d.Slack
	d.Degraded = d.Ahead > 0 && !d.Feasible && d.Work <= deadline-now
	d.Start, d.Completion = b.Extend(now, d.Work)
	return d
}
