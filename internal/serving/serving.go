// Package serving implements the dynamic-workload deployment scheme of
// Section 4.1: queries arrive as a stream under a latency constraint T; the
// server builds a mini-batch every T/2 and picks the largest slice rate r
// satisfying n·r²·t ≤ T/2 (Equation 3), so every query is answered within T
// and no computational resource sits idle during the processing window.
package serving

import (
	"fmt"
	"math"
	"math/rand"

	"modelslicing/internal/slicing"
)

// Config parameterizes the simulated serving system. All durations are in
// abstract time units (the simulation is clock-free and deterministic).
type Config struct {
	// LatencySLO is T: every query must be answered within this bound.
	LatencySLO float64
	// FullSampleTime is t: per-sample inference time of the full model.
	FullSampleTime float64
	// Rates are the deployable slice rates.
	Rates slicing.RateList
	// CostRatio maps a rate to its relative cost; nil means r² (Equation 3).
	CostRatio func(r float64) float64
	// AccuracyAt maps a rate to its measured accuracy, used to report the
	// quality delivered under load; nil disables quality accounting.
	AccuracyAt func(r float64) float64
}

// TickStats records one T/2 scheduling window.
type TickStats struct {
	Arrivals   int
	Rate       float64 // slice rate chosen for the batch
	WorkTime   float64 // processing time consumed (≤ T/2 unless infeasible)
	Infeasible bool    // even the lower bound exceeded the window
}

// Stats aggregates a simulation run.
type Stats struct {
	Ticks            []TickStats
	Processed        int
	SLOViolations    int
	RateHist         map[float64]int
	MeanRate         float64
	Utilization      float64 // work time / total window time
	WeightedAccuracy float64 // accuracy averaged over queries at served rates
	PeakArrivals     int
	TroughArrivals   int
}

// Volatility returns peak/trough arrivals — the workload swing the system
// absorbed (the paper demonstrates up to 16×).
func (s Stats) Volatility() float64 {
	if s.TroughArrivals == 0 {
		return math.Inf(1)
	}
	return float64(s.PeakArrivals) / float64(s.TroughArrivals)
}

// Policy returns the Equation-3 policy this configuration describes: the
// T/2 window and the per-sample cost curve t(r) = FullSampleTime·CostRatio(r)
// (r² when CostRatio is nil). Simulate and the live server in internal/server
// both schedule through this type, so the two paths cannot drift.
func (cfg Config) Policy() Policy {
	if cfg.LatencySLO <= 0 || cfg.FullSampleTime <= 0 {
		panic(fmt.Sprintf("serving: invalid config %+v", cfg))
	}
	costRatio := cfg.CostRatio
	if costRatio == nil {
		costRatio = func(r float64) float64 { return r * r }
	}
	return Policy{
		Rates:      cfg.Rates,
		Window:     cfg.LatencySLO / 2,
		SampleTime: func(r float64) float64 { return cfg.FullSampleTime * costRatio(r) },
	}
}

// Simulate runs the T/2 batching policy over per-window arrival counts.
func Simulate(cfg Config, arrivals []int) Stats {
	policy := cfg.Policy()
	window := policy.Window
	stats := Stats{RateHist: make(map[float64]int), TroughArrivals: math.MaxInt}
	sumRateWeighted := 0.0
	sumAcc := 0.0
	totalWork := 0.0
	for _, n := range arrivals {
		tick := TickStats{Arrivals: n}
		if n > 0 {
			r, ok := policy.Choose(n)
			tick.Rate = r
			tick.Infeasible = !ok
			tick.WorkTime = policy.BatchTime(n, r)
			if tick.Infeasible {
				// The batch overruns the window: every query in it misses
				// the latency bound.
				stats.SLOViolations += n
			}
			stats.Processed += n
			stats.RateHist[r] += n
			sumRateWeighted += r * float64(n)
			if cfg.AccuracyAt != nil {
				sumAcc += cfg.AccuracyAt(r) * float64(n)
			}
			totalWork += tick.WorkTime
		}
		if n > stats.PeakArrivals {
			stats.PeakArrivals = n
		}
		if n < stats.TroughArrivals {
			stats.TroughArrivals = n
		}
		stats.Ticks = append(stats.Ticks, tick)
	}
	if stats.Processed > 0 {
		stats.MeanRate = sumRateWeighted / float64(stats.Processed)
		if cfg.AccuracyAt != nil {
			stats.WeightedAccuracy = sumAcc / float64(stats.Processed)
		}
	}
	if len(arrivals) > 0 {
		stats.Utilization = totalWork / (window * float64(len(arrivals)))
	} else {
		stats.TroughArrivals = 0
	}
	return stats
}

// DiurnalWorkload generates per-window Poisson arrival counts whose rate
// follows a day-shaped curve between base and base·peakRatio, with optional
// short bursts of burstRatio× the current rate — the "peak workload could be
// 10x higher than the average cases" scenario of the paper's introduction.
func DiurnalWorkload(windows int, base float64, peakRatio float64, burstProb float64,
	burstRatio float64, rng *rand.Rand) []int {
	out := make([]int, windows)
	for i := range out {
		phase := 2 * math.Pi * float64(i) / float64(windows)
		// Raised sinusoid in [1, peakRatio].
		lambda := base * (1 + (peakRatio-1)*(1-math.Cos(phase))/2)
		if burstProb > 0 && rng.Float64() < burstProb {
			lambda *= burstRatio
		}
		out[i] = poisson(lambda, rng)
	}
	return out
}

// poisson draws a Poisson sample (Knuth for small λ, normal approx above).
func poisson(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(math.Round(v))
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// FixedCapacityBaseline reports how a single fixed-width model of the given
// rate handles the same arrivals: queries beyond its per-window capacity
// miss the SLO. This quantifies the paper's motivating trade-off — a model
// provisioned for the mean workload fails at the peak, one provisioned for
// the peak wastes resources off-peak.
func FixedCapacityBaseline(cfg Config, fixedRate float64, arrivals []int) Stats {
	policy := cfg.Policy()
	window := policy.Window
	capacity := policy.Capacity(fixedRate)
	stats := Stats{RateHist: make(map[float64]int), TroughArrivals: math.MaxInt}
	totalWork := 0.0
	sumAcc := 0.0
	for _, n := range arrivals {
		tick := TickStats{Arrivals: n, Rate: fixedRate}
		if n > 0 {
			stats.Processed += n
			stats.RateHist[fixedRate] += n
			if n > capacity {
				stats.SLOViolations += n - capacity
				tick.Infeasible = true
			}
			tick.WorkTime = policy.BatchTime(n, fixedRate)
			totalWork += tick.WorkTime
			if cfg.AccuracyAt != nil {
				sumAcc += cfg.AccuracyAt(fixedRate) * float64(n)
			}
		}
		if n > stats.PeakArrivals {
			stats.PeakArrivals = n
		}
		if n < stats.TroughArrivals {
			stats.TroughArrivals = n
		}
		stats.Ticks = append(stats.Ticks, tick)
	}
	if stats.Processed > 0 {
		stats.MeanRate = fixedRate
		if cfg.AccuracyAt != nil {
			stats.WeightedAccuracy = sumAcc / float64(stats.Processed)
		}
	}
	if len(arrivals) > 0 {
		stats.Utilization = totalWork / (window * float64(len(arrivals)))
	} else {
		stats.TroughArrivals = 0
	}
	return stats
}
