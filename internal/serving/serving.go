// Package serving implements the dynamic-workload deployment scheme of
// Section 4.1: queries arrive as a stream under a latency constraint T; the
// server builds a mini-batch every T/2 and picks the largest slice rate r
// satisfying n·t(r) ≤ T/2 (Equation 3), so every query is answered within T
// and no computational resource sits idle during the processing window.
//
// The Equation-3 guarantee assumes every batch fits its window. The moment
// one overruns, windows queue behind it, and a window-naive policy keeps
// budgeting a fresh T/2 while delay silently compounds. The simulation
// therefore carries the same Backlog model as the live server: each window
// is budgeted against its remaining deadline slack, degradations are
// recorded where rates fall because of backlog, and SLO violations include
// the cascade — a small window behind an overrun can be infeasible even
// though its batch alone would fit.
package serving

import (
	"fmt"
	"math"
	"math/rand"

	"modelslicing/internal/obs"
	"modelslicing/internal/slicing"
)

// Config parameterizes the simulated serving system. All durations are in
// abstract time units (the simulation is clock-free and deterministic).
type Config struct {
	// LatencySLO is T: every query must be answered within this bound.
	LatencySLO float64
	// FullSampleTime is t: per-sample inference time of the full model.
	FullSampleTime float64
	// Rates are the deployable slice rates.
	Rates slicing.RateList
	// CostRatio maps a rate to its relative cost; nil means r² (Equation 3).
	CostRatio func(r float64) float64
	// AccuracyAt maps a rate to its measured accuracy, used to report the
	// quality delivered under load; nil disables quality accounting.
	AccuracyAt func(r float64) float64
	// Recorder, when non-nil, receives one obs.DecisionRecord per non-empty
	// window — the same flight-recorder type the live server writes, so a
	// lockstep test can demand identical explanations from both paths.
	Recorder *obs.Recorder
}

// TickStats records one T/2 scheduling window.
type TickStats struct {
	Arrivals   int
	Rate       float64 // slice rate chosen for the batch
	WorkTime   float64 // processing time consumed
	Infeasible bool    // the batch misses its deadline even at the chosen rate
	Degraded   bool    // backlog forced a lower rate than an empty pool would pick
	Slack      float64 // remaining deadline budget the rate decision ran against
	Ahead      float64 // estimated in-flight work queued ahead of this window
	Completion float64 // when the batch finishes on the work-conserving timeline
}

// Stats aggregates a simulation run.
type Stats struct {
	Ticks            []TickStats
	Processed        int
	SLOViolations    int
	DegradedWindows  int // windows served below the empty-pool rate because of backlog
	RateHist         map[float64]int
	MeanRate         float64
	Utilization      float64 // work time / makespan (trace duration, extended by draining backlog)
	WeightedAccuracy float64 // accuracy averaged over queries at served rates
	PeakArrivals     int
	TroughArrivals   int
}

// Volatility returns peak/trough arrivals — the workload swing the system
// absorbed (the paper demonstrates up to 16×).
func (s Stats) Volatility() float64 {
	if s.TroughArrivals == 0 {
		return math.Inf(1)
	}
	return float64(s.PeakArrivals) / float64(s.TroughArrivals)
}

// Policy returns the Equation-3 policy this configuration describes: the
// T/2 window and the per-sample cost curve t(r) = FullSampleTime·CostRatio(r)
// (r² when CostRatio is nil). Simulate and the live server in internal/server
// both schedule through this type, so the two paths cannot drift.
func (cfg Config) Policy() Policy {
	if cfg.LatencySLO <= 0 || cfg.FullSampleTime <= 0 {
		panic(fmt.Sprintf("serving: invalid config %+v", cfg))
	}
	costRatio := cfg.CostRatio
	if costRatio == nil {
		costRatio = func(r float64) float64 { return r * r }
	}
	return Policy{
		Rates:      cfg.Rates,
		Window:     cfg.LatencySLO / 2,
		SampleTime: func(r float64) float64 { return cfg.FullSampleTime * costRatio(r) },
	}
}

// Simulate runs the T/2 batching policy over per-window arrival counts,
// with the backlog-aware deadline budgeting the live server uses: window k
// opens at k·W, closes at (k+1)·W, and its oldest query's deadline is
// k·W + T. The rate decision for each window runs against that deadline
// minus the estimated work still in flight ahead of it (Backlog.Decide), so
// an overrun cascades visibly — later windows degrade or go infeasible —
// instead of every window being budgeted a fresh, fictitious T/2.
func Simulate(cfg Config, arrivals []int) Stats {
	policy := cfg.Policy()
	window := policy.Window
	stats := Stats{RateHist: make(map[float64]int), TroughArrivals: math.MaxInt}
	var backlog Backlog
	sumRateWeighted := 0.0
	sumAcc := 0.0
	totalWork := 0.0
	for k, n := range arrivals {
		tick := TickStats{Arrivals: n}
		if n > 0 {
			closeT := float64(k+1) * window
			deadline := float64(k)*window + cfg.LatencySLO
			d := backlog.Decide(policy, n, deadline, closeT)
			if cfg.Recorder != nil {
				cfg.Recorder.Record(d.Record(policy, int64(k), n, closeT))
			}
			tick.Rate = d.Rate
			tick.Infeasible = !d.Feasible
			tick.Degraded = d.Degraded
			tick.Slack, tick.Ahead = d.Slack, d.Ahead
			tick.WorkTime, tick.Completion = d.Work, d.Completion
			if tick.Infeasible {
				// The batch finishes past its deadline: every query in it
				// misses the latency bound — including windows dragged past
				// their deadline purely by the backlog ahead of them.
				stats.SLOViolations += n
			}
			if tick.Degraded {
				stats.DegradedWindows++
			}
			stats.Processed += n
			stats.RateHist[d.Rate] += n
			sumRateWeighted += d.Rate * float64(n)
			if cfg.AccuracyAt != nil {
				sumAcc += cfg.AccuracyAt(d.Rate) * float64(n)
			}
			totalWork += tick.WorkTime
		}
		if n > stats.PeakArrivals {
			stats.PeakArrivals = n
		}
		if n < stats.TroughArrivals {
			stats.TroughArrivals = n
		}
		stats.Ticks = append(stats.Ticks, tick)
	}
	if stats.Processed > 0 {
		stats.MeanRate = sumRateWeighted / float64(stats.Processed)
		if cfg.AccuracyAt != nil {
			stats.WeightedAccuracy = sumAcc / float64(stats.Processed)
		}
	}
	if len(arrivals) > 0 {
		stats.Utilization = utilization(totalWork, window, len(arrivals), backlog.Horizon())
	} else {
		stats.TroughArrivals = 0
	}
	return stats
}

// utilization is work performed over makespan. Work is conserved on one
// pool, so when the trace ends with backlog still draining the denominator
// extends to the completion horizon — both runners report a true busy
// fraction in [0, 1] instead of the >1 impossible number a fixed
// windows·W denominator produces under overload.
func utilization(totalWork, window float64, windows int, horizon float64) float64 {
	makespan := math.Max(window*float64(windows), horizon)
	if makespan <= 0 {
		return 0
	}
	return totalWork / makespan
}

// DiurnalWorkload generates per-window Poisson arrival counts whose rate
// follows a day-shaped curve between base and base·peakRatio, with optional
// short bursts of burstRatio× the current rate — the "peak workload could be
// 10x higher than the average cases" scenario of the paper's introduction.
func DiurnalWorkload(windows int, base float64, peakRatio float64, burstProb float64,
	burstRatio float64, rng *rand.Rand) []int {
	out := make([]int, windows)
	for i := range out {
		phase := 2 * math.Pi * float64(i) / float64(windows)
		// Raised sinusoid in [1, peakRatio].
		lambda := base * (1 + (peakRatio-1)*(1-math.Cos(phase))/2)
		if burstProb > 0 && rng.Float64() < burstProb {
			lambda *= burstRatio
		}
		out[i] = poisson(lambda, rng)
	}
	return out
}

// poisson draws a Poisson sample (Knuth for small λ, normal approx above).
func poisson(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(math.Round(v))
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// FixedCapacityBaseline reports how a single fixed-width model of the given
// rate handles the same arrivals: queries beyond what the window's remaining
// slack can absorb miss the SLO. This quantifies the paper's motivating
// trade-off — a model provisioned for the mean workload fails at the peak,
// one provisioned for the peak wastes resources off-peak.
//
// Overflow semantics: excess queries are processed late, not dropped, so a
// window's WorkTime is the full n·t(r) — it can exceed the window, and the
// spilled work extends the same completion horizon Simulate tracks. A
// window's violations are the queries beyond CapacityWithin(r, slack) where
// slack is the deadline budget left after the backlog ahead — the identical
// accounting Simulate and the live fixed arm (Backlog.DecideRate) use, so a
// window dragged past its deadline purely by an earlier overrun counts its
// misses here too. With a clear horizon this reduces to the classic
// n − Capacity(r). Utilization divides by the makespan, so both runners
// report a busy fraction in [0, 1] under any load.
func FixedCapacityBaseline(cfg Config, fixedRate float64, arrivals []int) Stats {
	policy := cfg.Policy()
	window := policy.Window
	stats := Stats{RateHist: make(map[float64]int), TroughArrivals: math.MaxInt}
	var backlog Backlog
	totalWork := 0.0
	sumAcc := 0.0
	for k, n := range arrivals {
		tick := TickStats{Arrivals: n, Rate: fixedRate}
		if n > 0 {
			closeT := float64(k+1) * window
			deadline := float64(k)*window + cfg.LatencySLO
			stats.Processed += n
			stats.RateHist[fixedRate] += n
			d := backlog.DecideRate(policy, n, fixedRate, deadline, closeT)
			if cfg.Recorder != nil {
				cfg.Recorder.Record(d.Record(policy, int64(k), n, closeT))
			}
			tick.Ahead, tick.Slack = d.Ahead, d.Slack
			tick.WorkTime, tick.Completion = d.Work, d.Completion
			tick.Infeasible = !d.Feasible
			tick.Degraded = d.Degraded
			if d.Degraded {
				stats.DegradedWindows++
			}
			if !d.Feasible {
				// The fixed model processes overflow late rather than
				// dropping it: only the spill past what the slack holds
				// misses the SLO.
				stats.SLOViolations += n - policy.CapacityWithin(fixedRate, d.Slack)
			}
			totalWork += tick.WorkTime
			if cfg.AccuracyAt != nil {
				sumAcc += cfg.AccuracyAt(fixedRate) * float64(n)
			}
		}
		if n > stats.PeakArrivals {
			stats.PeakArrivals = n
		}
		if n < stats.TroughArrivals {
			stats.TroughArrivals = n
		}
		stats.Ticks = append(stats.Ticks, tick)
	}
	if stats.Processed > 0 {
		stats.MeanRate = fixedRate
		if cfg.AccuracyAt != nil {
			stats.WeightedAccuracy = sumAcc / float64(stats.Processed)
		}
	}
	if len(arrivals) > 0 {
		stats.Utilization = utilization(totalWork, window, len(arrivals), backlog.Horizon())
	} else {
		stats.TroughArrivals = 0
	}
	return stats
}
