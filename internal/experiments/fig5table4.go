package experiments

import (
	"fmt"

	"modelslicing/internal/slicing"
	"modelslicing/internal/train"
)

// Point is one (cost, accuracy) sample of a trade-off curve.
type Point struct {
	Label string
	MACs  int64
	Acc   float64
}

// Curve is one named series of a trade-off figure.
type Curve struct {
	Name   string
	Points []Point
}

// TradeoffResult is an accuracy-vs-FLOPs figure (Figures 2 and 5).
type TradeoffResult struct {
	Title  string
	Curves []Curve
}

// Render formats the figure as aligned text series.
func (t *TradeoffResult) Render() string {
	tab := &Table{Title: t.Title, Header: []string{"series", "point", "MACs", "accuracy"}}
	for _, c := range t.Curves {
		for _, p := range c.Points {
			tab.Rows = append(tab.Rows, []string{c.Name, p.Label,
				fmt.Sprintf("%d", p.MACs), pct(p.Acc)})
		}
	}
	return tab.Render()
}

// Fig5 reproduces Figure 5: VGG-13 classification accuracy vs inference
// FLOPs for model slicing, direct slicing of a conventionally trained model,
// the varying-width ensemble and the varying-depth ensemble.
func Fig5(scale Scale, seed int64) *TradeoffResult {
	s := RunCNNStudy(scale, seed)
	test := s.Data.TestBatches(64)
	out := &TradeoffResult{Title: fmt.Sprintf("Figure 5 — VGG-13 accuracy vs FLOPs (%v scale)", scale)}

	var slicedCurve, directCurve, widthCurve Curve
	slicedCurve.Name = "VGG-13 with Model Slicing (single model)"
	directCurve.Name = "VGG-13 with Direct Slicing (single model)"
	widthCurve.Name = "Ensemble of VGG-13 (varying width)"
	for _, r := range s.EvalRates {
		label := fmt.Sprintf("r=%.4g", r)
		macs, _ := s.SlicedCost(r)
		idx := 0
		if i, err := s.Rates.Index(r); err == nil {
			idx = i
		}
		slicedCurve.Points = append(slicedCurve.Points, Point{label, macs,
			train.Evaluate(s.Sliced, r, idx, test).Accuracy})
		directCurve.Points = append(directCurve.Points, Point{label, macs,
			train.Evaluate(s.Direct, r, idx, test).Accuracy})
		fm, _ := s.FixedCost(r)
		widthCurve.Points = append(widthCurve.Points, Point{label, fm,
			train.Evaluate(s.Fixed[r], 1, 0, test).Accuracy})
	}
	var depthCurve Curve
	depthCurve.Name = "Ensemble of VGG-13 (varying depth)"
	for i, m := range s.DepthModels {
		p, _ := measureFull(m, s.InShape)
		depthCurve.Points = append(depthCurve.Points, Point{s.DepthNames[i], p,
			train.Evaluate(m, 1, 0, test).Accuracy})
	}
	out.Curves = []Curve{widthCurve, depthCurve, slicedCurve, directCurve}
	return out
}

// Table4 reproduces the VGG-13 block of Table 4: remaining computation
// (Ct) and parameter (Mt) percentages and accuracy per slice rate for the
// lb=1.0 control, the fixed-model ensemble and the slicing-trained model.
func Table4(scale Scale, seed int64) *Table {
	s := RunCNNStudy(scale, seed)
	test := s.Data.TestBatches(64)
	tab := &Table{
		Title:  fmt.Sprintf("Table 4 — VGG-13 on the CIFAR-like task (%v scale)", scale),
		Header: []string{"row", "metric"},
	}
	// Columns descend from 1.0 like the paper.
	rates := make([]float64, len(s.EvalRates))
	copy(rates, s.EvalRates)
	for i, j := 0, len(rates)-1; i < j; i, j = i+1, j-1 {
		rates[i], rates[j] = rates[j], rates[i]
	}
	for _, r := range rates {
		tab.Header = append(tab.Header, fmt.Sprintf("r=%.4g", r))
	}

	fullMACs, fullParams := s.SlicedCost(1)
	ctRow := []string{"Ct/Mt", "% of full"}
	for _, r := range rates {
		m, p := s.SlicedCost(r)
		ctRow = append(ctRow, fmt.Sprintf("%.2f/%.2f",
			100*float64(m)/float64(fullMACs), 100*float64(p)/float64(fullParams)))
	}
	tab.Rows = append(tab.Rows, ctRow)

	addAccRow := func(name string, acc func(r float64) float64) {
		row := []string{name, "acc %"}
		for _, r := range rates {
			row = append(row, f2(100*acc(r)))
		}
		tab.Rows = append(tab.Rows, row)
	}
	addAccRow("VGG-13-lb-1.0 (direct slicing)", func(r float64) float64 {
		return train.Evaluate(s.Direct, r, rateIdx(s.Rates, r), test).Accuracy
	})
	addAccRow("VGG-13-fixed-models", func(r float64) float64 {
		return train.Evaluate(s.Fixed[r], 1, 0, test).Accuracy
	})
	addAccRow(fmt.Sprintf("VGG-13-lb-%.3g (model slicing)", s.Rates.Min()), func(r float64) float64 {
		return train.Evaluate(s.Sliced, r, rateIdx(s.Rates, r), test).Accuracy
	})
	tab.Notes = append(tab.Notes,
		"paper (CIFAR-10): direct slicing collapses off-full-width; slicing tracks fixed models and collapses only below lb",
		"paper reference rows: VGG-13-lb-1.0: 94.31 87.55 67.93 44.18 21.37 12.23 10.19 | fixed: 94.31 93.92 93.86 93.79 93.39 92.85 91.63 | lb-0.375: 94.32 94.27 94.22 94.11 93.90 93.57 16.87")
	return tab
}

func rateIdx(rates slicing.RateList, r float64) int {
	if i, err := rates.Index(r); err == nil {
		return i
	}
	return 0
}
