package experiments

import (
	"fmt"

	"modelslicing/internal/cascade"
	"modelslicing/internal/cost"
	"modelslicing/internal/nn"
	"modelslicing/internal/train"
)

func measureFull(m nn.Layer, inShape []int) (macs, params int64) {
	p, _ := cost.Measure(m, inShape, 1)
	return p.MACs, p.Params
}

// Table5 reproduces the cascade-ranking simulation: per-stage precision and
// aggregate recall for a cascade of independently trained fixed-width models
// versus the sub-models sliced from one model-slicing network, plus the
// deployment cost comparison.
func Table5(scale Scale, seed int64) *Table {
	s := RunCNNStudy(scale, seed)
	items := s.Data.TestBatches(64)

	stageRates := append([]float64(nil), s.Rates...)
	var names []string
	var widths []float64
	var fixedModels []nn.Layer
	var params, macs []int64
	for _, r := range stageRates {
		names = append(names, fmt.Sprintf("fixed-%.4g", r))
		widths = append(widths, r)
		fixedModels = append(fixedModels, s.Fixed[r])
		m, p := s.FixedCost(r)
		macs = append(macs, m)
		params = append(params, p)
	}
	fixedRes := cascade.Run(cascade.FromModels(names, widths, fixedModels, params, macs), items, false)

	slicedStages := cascade.FromSlicedModel(s.Sliced, s.Rates, stageRates,
		func(r float64) int64 { _, p := s.SlicedCost(r); return p },
		func(r float64) int64 { m, _ := s.SlicedCost(r); return m })
	slicedRes := cascade.Run(slicedStages, items, true)

	tab := &Table{
		Title:  fmt.Sprintf("Table 5 — cascade ranking simulation (%v scale)", scale),
		Header: []string{"solution", "stage", "width", "params", "MACs", "precision", "agg recall"},
	}
	addRows := func(label string, res cascade.Result) {
		for i, st := range res.Stages {
			tab.Rows = append(tab.Rows, []string{
				label, fmt.Sprintf("%d", i+1), fmt.Sprintf("%.4g", st.Width),
				fmt.Sprintf("%d", st.Params), fmt.Sprintf("%d", st.MACs),
				pct(st.Precision), pct(st.AggRecall),
			})
		}
		tab.Rows = append(tab.Rows, []string{
			label, "TOTAL", "-", fmt.Sprintf("%d", res.TotalParams),
			fmt.Sprintf("%d", res.TotalMACs), "-", pct(res.FinalRecall()),
		})
	}
	addRows("cascade-model", fixedRes)
	addRows("model-slicing", slicedRes)
	tab.Notes = append(tab.Notes,
		"paper: slicing cascade retrieves 88.67% vs 86.03% for the conventional cascade, with 9.42M vs 29.3M params",
		fmt.Sprintf("measured final recall: slicing %s vs cascade %s; params %d vs %d",
			pct(slicedRes.FinalRecall()), pct(fixedRes.FinalRecall()),
			slicedRes.TotalParams, fixedRes.TotalParams))
	return tab
}

// Fig6 reproduces the γ-evolution heat map: per-epoch mean |γ| per channel
// group for an early and a late normalization layer of the slicing-trained
// VGG. The paper's stratified pattern has early groups (the base network)
// carrying the largest scales.
func Fig6(scale Scale, seed int64) *Table {
	s := RunCNNStudy(scale, seed)
	tab := &Table{
		Title:  fmt.Sprintf("Figure 6 — γ group means over training (%v scale)", scale),
		Header: []string{"layer", "epoch"},
	}
	var anyTrace [][]float64
	for _, tr := range s.GammaTrace {
		anyTrace = tr
		break
	}
	if len(anyTrace) == 0 {
		tab.Notes = append(tab.Notes, "no γ trace recorded")
		return tab
	}
	for g := range anyTrace[0] {
		tab.Header = append(tab.Header, fmt.Sprintf("G%d", g+1))
	}
	for layer, trace := range s.GammaTrace {
		for e, groups := range trace {
			row := []string{layer, fmt.Sprintf("%d", e)}
			for _, v := range groups {
				row = append(row, f3(v))
			}
			tab.Rows = append(tab.Rows, row)
		}
	}
	// Quantify the stratification claim on the final epoch.
	for layer, trace := range s.GammaTrace {
		last := trace[len(trace)-1]
		base := last[0]
		tail := last[len(last)-1]
		tab.Notes = append(tab.Notes, fmt.Sprintf(
			"%s final epoch: base group γ=%.3f vs last group γ=%.3f (paper: base groups largest)",
			layer, base, tail))
	}
	return tab
}

// Fig7 reproduces the learning curves: per-epoch test error rate and loss
// of every evaluated subnet of the slicing-trained model, next to the
// conventionally trained full fixed model.
func Fig7(scale Scale, seed int64) *Table {
	s := RunCNNStudy(scale, seed)
	tab := &Table{
		Title:  fmt.Sprintf("Figure 7 — learning curves (%v scale)", scale),
		Header: []string{"epoch", "full-fixed err%"},
	}
	for _, r := range s.History.Rates {
		tab.Header = append(tab.Header, fmt.Sprintf("subnet-%.4g err%%", r))
	}
	tab.Header = append(tab.Header, "full-fixed loss")
	for _, r := range s.History.Rates {
		tab.Header = append(tab.Header, fmt.Sprintf("subnet-%.4g loss", r))
	}
	for e := range s.History.Epochs {
		row := []string{fmt.Sprintf("%d", e), f2(s.DirectHistory.Epochs[e].PerRate[0].ErrorRate())}
		for i := range s.History.Rates {
			row = append(row, f2(s.History.Epochs[e].PerRate[i].ErrorRate()))
		}
		row = append(row, f3(s.DirectHistory.Epochs[e].PerRate[0].Loss))
		for i := range s.History.Rates {
			row = append(row, f3(s.History.Epochs[e].PerRate[i].Loss))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes,
		"paper: larger subnets learn faster; smaller subnets closely follow (knowledge distillation effect)")
	return tab
}

// Fig8 reproduces the prediction-consistency heat maps: the inclusion
// coefficient of wrongly-predicted sample sets between each pair of (a)
// independently trained fixed models and (b) subnets sliced from the
// slicing-trained model.
func Fig8(scale Scale, seed int64) *Table {
	s := RunCNNStudy(scale, seed)
	test := s.Data.TestBatches(64)

	rates := append([]float64(nil), s.Rates...)
	fixedWrong := make([]map[int]bool, len(rates))
	slicedWrong := make([]map[int]bool, len(rates))
	for i, r := range rates {
		fixedWrong[i] = train.WrongSet(s.Fixed[r], 1, 0, test)
		slicedWrong[i] = train.WrongSet(s.Sliced, r, rateIdx(s.Rates, r), test)
	}
	tab := &Table{
		Title:  fmt.Sprintf("Figure 8 — error-set inclusion coefficients (%v scale)", scale),
		Header: []string{"family", "pair", "inclusion"},
	}
	var fixedSum, slicedSum float64
	var pairs int
	for i := range rates {
		for j := i + 1; j < len(rates); j++ {
			pair := fmt.Sprintf("%.4g vs %.4g", rates[i], rates[j])
			fi := train.InclusionCoefficient(fixedWrong[i], fixedWrong[j])
			si := train.InclusionCoefficient(slicedWrong[i], slicedWrong[j])
			tab.Rows = append(tab.Rows, []string{"fixed-models", pair, f3(fi)})
			tab.Rows = append(tab.Rows, []string{"sliced-subnets", pair, f3(si)})
			fixedSum += fi
			slicedSum += si
			pairs++
		}
	}
	if pairs > 0 {
		tab.Notes = append(tab.Notes, fmt.Sprintf(
			"mean inclusion: sliced %.3f vs fixed %.3f (paper: ≈0.75–0.97 vs ≈0.56–0.62 — slicing is far more consistent)",
			slicedSum/float64(pairs), fixedSum/float64(pairs)))
	}
	return tab
}
