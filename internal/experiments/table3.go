package experiments

import (
	"fmt"
	"math/rand"

	"modelslicing/internal/cost"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
)

// Table3 reproduces the architecture-configuration table: for every network
// of Table 3 it builds the exact paper shape, measures the parameter count
// with the cost model and prints it next to the paper's value, together with
// the scaled-down analogue used for training in this reproduction.
func Table3() *Table {
	rng := rand.New(rand.NewSource(1))
	tab := &Table{
		Title: "Table 3 — architecture configurations (paper shape vs measured)",
		Header: []string{"network", "dataset", "paper params", "measured params",
			"mini analogue", "mini params"},
	}
	type row struct {
		name, dataset string
		paper         float64
		build         func() (modelsSeq, []int)
		mini          func() (string, modelsSeq, []int)
	}
	rows := []row{
		{"VGG-13", "CIFAR", 9.42e6,
			func() (modelsSeq, []int) {
				m, _ := models.NewVGG(models.VGG13Paper(), rng)
				return m, []int{3, 32, 32}
			},
			func() (string, modelsSeq, []int) {
				cfg := models.VGG13Mini(8, models.NormGroup, 1)
				m, _ := models.NewVGG(cfg, rng)
				return cfg.Name, m, []int{3, 16, 16}
			}},
		{"ResNet-164", "CIFAR", 1.72e6,
			func() (modelsSeq, []int) {
				m, _ := models.NewResNet(models.ResNet164Paper(), rng)
				return m, []int{3, 32, 32}
			},
			func() (string, modelsSeq, []int) {
				cfg := models.ResNetMini(8, models.NormGroup, 1)
				m, _ := models.NewResNet(cfg, rng)
				return cfg.Name, m, []int{3, 16, 16}
			}},
		{"ResNet-56-2", "CIFAR", 2.35e6,
			func() (modelsSeq, []int) {
				m, _ := models.NewResNet(models.ResNet56x2Paper(), rng)
				return m, []int{3, 32, 32}
			},
			func() (string, modelsSeq, []int) {
				cfg := models.ResNetMiniWide(8, models.NormGroup, 1)
				m, _ := models.NewResNet(cfg, rng)
				return cfg.Name, m, []int{3, 16, 16}
			}},
		{"VGG-16", "ImageNet-12", 138.36e6,
			func() (modelsSeq, []int) {
				m, _ := models.NewVGG(models.VGG16Paper(), rng)
				return m, []int{3, 224, 224}
			},
			func() (string, modelsSeq, []int) {
				cfg := models.VGG13Mini(8, models.NormGroup, 1)
				cfg.Name = "VGG-16-mini"
				m, _ := models.NewVGG(cfg, rng)
				return cfg.Name, m, []int{3, 24, 24}
			}},
		{"ResNet-50", "ImageNet-12", 25.56e6,
			func() (modelsSeq, []int) {
				m, _ := models.NewResNet(models.ResNet50Paper(), rng)
				return m, []int{3, 224, 224}
			},
			func() (string, modelsSeq, []int) {
				cfg := models.ResNetMiniWide(8, models.NormGroup, 1)
				cfg.Name = "ResNet-50-mini"
				m, _ := models.NewResNet(cfg, rng)
				return cfg.Name, m, []int{3, 24, 24}
			}},
	}
	for _, r := range rows {
		m, shape := r.build()
		p, _ := cost.Measure(m, shape, 1)
		name, mini, miniShape := r.mini()
		mp, _ := cost.Measure(mini, miniShape, 1)
		tab.Rows = append(tab.Rows, []string{
			r.name, r.dataset,
			fmt.Sprintf("%.2fM", r.paper/1e6),
			fmt.Sprintf("%.2fM", float64(p.Params)/1e6),
			name,
			fmt.Sprintf("%.3fM", float64(mp.Params)/1e6),
		})
	}
	tab.Notes = append(tab.Notes,
		"measured counts include normalization affine parameters; paper values are matched within 2%")
	return tab
}

type modelsSeq = *nn.Sequential
