package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"modelslicing/internal/cost"
	"modelslicing/internal/data"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/slicing"
	"modelslicing/internal/train"
)

// CNNStudy holds every artifact of the shared VGG-13 study on the
// CIFAR-like task: the model-slicing network, the direct-slicing control
// (lb = 1.0), the fixed-width ensemble, the depth ensemble, learning-curve
// history, and γ-evolution traces. Figures 5–8 and Tables 4–5 all derive
// from one study so arms are trained once per (scale, seed).
type CNNStudy struct {
	Scale   Scale
	Sizing  cnnSizing
	Data    *data.Images
	InShape []int

	// Rates is the training rate list (lb … 1); EvalRates additionally
	// includes the below-lower-bound probe rate (Table 4's collapse row).
	Rates     slicing.RateList
	EvalRates []float64

	Sliced *nn.Sequential             // trained with model slicing
	Direct *nn.Sequential             // trained conventionally (lb = 1.0)
	Fixed  map[float64]*nn.Sequential // independently trained fixed widths

	DepthNames   []string
	DepthModels  []*nn.Sequential
	DepthInShape []int

	History       *train.History // per-epoch eval of Sliced at EvalRates
	DirectHistory *train.History // per-epoch eval of Direct at full width
	// GammaTrace maps a layer label to per-epoch γ group means (Figure 6).
	GammaTrace map[string][][]float64
}

var (
	studyMu    sync.Mutex
	studyCache = map[string]*CNNStudy{}
)

// RunCNNStudy trains (or returns the cached) shared study for the scale.
func RunCNNStudy(scale Scale, seed int64) *CNNStudy {
	key := fmt.Sprintf("%v-%d", scale, seed)
	studyMu.Lock()
	defer studyMu.Unlock()
	if s, ok := studyCache[key]; ok {
		return s
	}
	s := runCNNStudy(scale, seed)
	studyCache[key] = s
	return s
}

// rateFrac expresses rate r at the given granularity as an integer fraction.
func rateFrac(r float64, granularity int) (int, int) {
	return int(r*float64(granularity) + 0.5), granularity
}

func runCNNStudy(scale Scale, seed int64) *CNNStudy {
	sz := cnnSizingFor(scale)
	s := &CNNStudy{
		Scale:  scale,
		Sizing: sz,
		Rates:  slicing.NewRateList(sz.LB, sz.Granularity),
	}
	s.Data, s.InShape = sz.dataset()

	// Evaluation probes one step below the lower bound (collapse row).
	if sz.LB > 1.0/float64(sz.Granularity) {
		below := sz.LB - 1.0/float64(sz.Granularity)
		s.EvalRates = append(s.EvalRates, below)
	}
	s.EvalRates = append(s.EvalRates, s.Rates...)

	rng := rand.New(rand.NewSource(seed))
	test := s.Data.TestBatches(64)
	// Per-epoch history (Figure 7) evaluates on a fixed subset to keep the
	// epoch loop cheap; the final tables use the full test set.
	hist := test
	if len(hist) > 2 {
		hist = hist[:2]
	}

	// --- Model slicing arm (R-weighted-3, the paper's small-dataset pick).
	slicedCfg := models.VGG13Mini(sz.Granularity, models.NormGroup, len(s.Rates))
	s.Sliced, _ = models.NewVGG(slicedCfg, rng)
	sched := slicing.NewRandomWeighted(s.Rates, PaperWeights(s.Rates), 3)
	s.History, s.GammaTrace = trainSlicedCNN(s.Sliced, s.Rates, s.EvalRates, sched, s.Data, sz, hist, rng)

	// --- Direct slicing control: same architecture, lb = 1.0 training.
	s.Direct, _ = models.NewVGG(slicedCfg, rng)
	s.DirectHistory, _ = trainSlicedCNN(s.Direct, s.Rates, []float64{1.0},
		slicing.Fixed{Rate: 1.0}, s.Data, sz, hist, rng)

	// --- Fixed-width ensemble: one conventional model per eval rate.
	s.Fixed = make(map[float64]*nn.Sequential)
	for _, r := range s.EvalRates {
		num, den := rateFrac(r, sz.Granularity)
		cfg := models.VGG13Mini(1, models.NormGroup, 1).ScaleWidths(num, den)
		m, _ := models.NewVGG(cfg, rng)
		trainFixedCNN(m, s.Data, sz, rng)
		s.Fixed[r] = m
	}

	// --- Depth ensemble: same widths, fewer blocks/stages.
	depths := []struct {
		name   string
		blocks []int
		widths []int
		pool   []bool
	}{
		{"depth-3/4", []int{1, 1, 1, 1}, slicedCfg.StageWidths, slicedCfg.PoolAfter},
		{"depth-1/2", []int{1, 1, 1}, slicedCfg.StageWidths[:3], []bool{false, true, true}},
		{"depth-1/4", []int{1, 1}, slicedCfg.StageWidths[:2], []bool{false, true}},
	}
	for _, d := range depths {
		cfg := models.VGGConfig{
			Name: d.name, InChannels: 3, InputHW: sz.HW,
			StageWidths: d.widths, StageBlocks: d.blocks, PoolAfter: d.pool,
			Classes: s.Data.Cfg.Classes, Groups: 1, Norm: models.NormGroup, NumWidths: 1,
		}
		m, _ := models.NewVGG(cfg, rng)
		trainFixedCNN(m, s.Data, sz, rng)
		s.DepthNames = append(s.DepthNames, d.name)
		s.DepthModels = append(s.DepthModels, m)
	}
	return s
}

// trainSlicedCNN runs the Algorithm-1 loop with per-epoch evaluation and
// γ-trace recording; it is also used for the lb=1.0 control via Fixed{1.0}.
func trainSlicedCNN(model *nn.Sequential, rates slicing.RateList, evalRates []float64,
	sched slicing.Scheduler, d *data.Images, sz cnnSizing, test []train.Batch,
	rng *rand.Rand) (*train.History, map[string][][]float64) {

	opt := train.NewSGD(sz.LR, 0.9, 1e-4)
	lr := sz.lrSchedule()
	tr := slicing.NewTrainer(model, rates, sched, opt, rng)

	hist := train.NewHistory(evalRates)
	early, late, labels := gammaTaps(model)
	trace := map[string][][]float64{}

	for epoch := 0; epoch < sz.Epochs; epoch++ {
		opt.LR = lr.LR(epoch)
		loss := tr.Epoch(d.TrainBatches(sz.Batch, sz.Augment, rng))
		rec := train.EpochRecord{Epoch: epoch, TrainLoss: loss}
		for _, r := range evalRates {
			idx := 0
			if i, err := rates.Index(r); err == nil {
				idx = i
			}
			rec.PerRate = append(rec.PerRate, train.Evaluate(model, r, idx, test))
		}
		if early != nil {
			trace[labels[0]] = append(trace[labels[0]], early.GammaGroupMeans())
			trace[labels[1]] = append(trace[labels[1]], late.GammaGroupMeans())
		}
		hist.Append(rec)
	}
	return hist, trace
}

// gammaTaps returns an early and a late GroupNorm layer (the conv3/conv5
// analogues of Figure 6).
func gammaTaps(model *nn.Sequential) (early, late *nn.GroupNorm, labels [2]string) {
	var gns []*nn.GroupNorm
	for _, l := range model.Layers {
		if g, ok := l.(*nn.GroupNorm); ok {
			gns = append(gns, g)
		}
	}
	if len(gns) < 2 {
		return nil, nil, labels
	}
	early = gns[len(gns)/2]
	late = gns[len(gns)-1]
	labels = [2]string{"conv-mid", "conv-last"}
	return early, late, labels
}

// trainFixedCNN trains a conventional fixed-width model with the shared
// recipe.
func trainFixedCNN(model nn.Layer, d *data.Images, sz cnnSizing, rng *rand.Rand) {
	opt := train.NewSGD(sz.LR, 0.9, 1e-4)
	lr := sz.lrSchedule()
	for epoch := 0; epoch < sz.Epochs; epoch++ {
		opt.LR = lr.LR(epoch)
		for _, b := range d.TrainBatches(sz.Batch, sz.Augment, rng) {
			ctx := &nn.Context{Training: true, Rate: 1, RNG: rng}
			logits := model.Forward(ctx, b.X)
			_, dy := nn.SoftmaxCrossEntropy(logits, b.Labels)
			model.Backward(ctx, dy)
			opt.Step(model.Params())
		}
	}
}

// SlicedCost returns (MACs, params) of the sliced model at rate r.
func (s *CNNStudy) SlicedCost(r float64) (int64, int64) {
	p, _ := cost.Measure(s.Sliced, s.InShape, r)
	return p.MACs, p.Params
}

// FixedCost returns (MACs, params) of the fixed-width model at width r.
func (s *CNNStudy) FixedCost(r float64) (int64, int64) {
	p, _ := cost.Measure(s.Fixed[r], s.InShape, 1)
	return p.MACs, p.Params
}
