package experiments

import (
	"fmt"
	"math/rand"

	"modelslicing/internal/cost"
	"modelslicing/internal/data"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/slicing"
	"modelslicing/internal/train"
)

// NNLMResult bundles the Figure 4 curves and Table 2 rows.
type NNLMResult struct {
	Rates      []float64 // descending from 1.0, like the paper's Table 2
	Ct         []float64 // remaining computation fraction per rate
	SlicedPPL  []float64 // NNLM-lb (model slicing)
	DirectPPL  []float64 // NNLM-1.0 (direct slicing)
	FixedPPL   []float64 // NNLM-fixed (per-width models)
	LB         float64
	BigramPPL  float64 // corpus bigram entropy floor (context for absolute values)
	UniformPPL float64
}

// Render formats Table 2 / Figure 4.
func (r *NNLMResult) Render() string {
	tab := &Table{
		Title:  "Table 2 / Figure 4 — NNLM perplexity per slice rate",
		Header: []string{"row"},
	}
	for _, rate := range r.Rates {
		tab.Header = append(tab.Header, fmt.Sprintf("r=%.4g", rate))
	}
	rowOf := func(name string, vals []float64) {
		row := []string{name}
		for _, v := range vals {
			row = append(row, f2(v))
		}
		tab.Rows = append(tab.Rows, row)
	}
	ct := []string{"Ct %"}
	for _, v := range r.Ct {
		ct = append(ct, f2(100*v))
	}
	tab.Rows = append(tab.Rows, ct)
	rowOf("NNLM-1.0 (direct slicing)", r.DirectPPL)
	rowOf(fmt.Sprintf("NNLM-%.3g (model slicing)", r.LB), r.SlicedPPL)
	rowOf("NNLM-fixed (per-width models)", r.FixedPPL)
	tab.Notes = append(tab.Notes,
		fmt.Sprintf("corpus reference: uniform PPL %.1f, bigram-floor PPL %.1f", r.UniformPPL, r.BigramPPL),
		"paper (PTB): NNLM-1.0 81.58→298.8, NNLM-0.375 80.89→112.1, fixed 81.58→96.69 as r goes 1.0→0.25",
		"shape: direct slicing blows up, slicing degrades gently and beats fixed at full width")
	return tab.Render()
}

// Fig4Table2 reproduces the language-modeling experiment: the NNLM trained
// with model slicing versus direct slicing of a conventionally trained model
// versus an ensemble of per-width models, on the synthetic Markov corpus.
func Fig4Table2(scale Scale, seed int64) *NNLMResult {
	sz := nnlmSizingFor(scale)
	txt := data.GenerateText(data.PTBLike(sz.TrainLen, sz.TestLen))
	trainB := data.LMBatches(txt.Train, sz.SeqLen, sz.Batch)
	testB := data.LMBatches(txt.Test, sz.SeqLen, sz.Batch)
	rates := slicing.NewRateList(sz.LB, sz.Granularity)

	// Evaluation rates descend from 1.0 and probe one step below lb.
	evalAsc := append([]float64(nil), rates...)
	if sz.LB > 1.0/float64(sz.Granularity) {
		evalAsc = append([]float64{sz.LB - 1.0/float64(sz.Granularity)}, evalAsc...)
	}
	out := &NNLMResult{LB: sz.LB}
	for i := len(evalAsc) - 1; i >= 0; i-- {
		out.Rates = append(out.Rates, evalAsc[i])
	}

	cfg := models.NNLMMini(txt.Cfg.Vocab, sz.Granularity)
	inShape := []int{sz.SeqLen}

	// --- Model slicing arm (R-min-max, the paper's larger-dataset pick).
	rng := rand.New(rand.NewSource(seed))
	slicedModel := models.NewNNLM(cfg, rng)
	trainNNLM(slicedModel, rates, slicing.NewRMinMax(rates), trainB, testB, sz, rng)

	// --- Direct slicing control.
	directModel := models.NewNNLM(cfg, rng)
	trainNNLM(directModel, rates, slicing.Fixed{Rate: 1.0}, trainB, testB, sz, rng)

	// --- Fixed per-width models.
	fixed := map[float64]*nn.Sequential{}
	for _, r := range evalAsc {
		num, den := rateFrac(r, sz.Granularity)
		fcfg := cfg.ScaleWidths(num, den)
		fcfg.Groups = 1
		m := models.NewNNLM(fcfg, rng)
		oneRate := slicing.RateList{1.0}
		trainNNLM(m, oneRate, slicing.Fixed{Rate: 1.0}, trainB, testB, sz, rng)
		fixed[r] = m
	}

	fullC := cost.FLOPs(slicedModel, inShape, 1)
	for _, r := range out.Rates {
		out.Ct = append(out.Ct, cost.FLOPs(slicedModel, inShape, r)/fullC)
		out.SlicedPPL = append(out.SlicedPPL,
			train.Evaluate(slicedModel, r, rateIdx(rates, r), testB).Perplexity())
		out.DirectPPL = append(out.DirectPPL,
			train.Evaluate(directModel, r, rateIdx(rates, r), testB).Perplexity())
		out.FixedPPL = append(out.FixedPPL,
			train.Evaluate(fixed[r], 1, 0, testB).Perplexity())
	}
	out.BigramPPL = train.Perplexity(txt.EntropyFloorEstimate())
	out.UniformPPL = float64(txt.Cfg.Vocab)
	return out
}

// trainNNLM runs the NNLM recipe: SGD without momentum, gradient clipping,
// and the paper's adaptive decay (quarter the rate when validation
// perplexity stalls).
func trainNNLM(model *nn.Sequential, rates slicing.RateList, sched slicing.Scheduler,
	trainB, valB []train.Batch, sz nnlmSizing, rng *rand.Rand) {
	opt := train.NewSGD(sz.LR, 0, 0)
	decay := train.NewAdaptiveDecay(sz.LR, 4)
	tr := slicing.NewTrainer(model, rates, sched, opt, rng)
	tr.ClipNorm = 5
	for epoch := 0; epoch < sz.Epochs; epoch++ {
		opt.LR = decay.LR(epoch)
		tr.Epoch(trainB)
		val := train.Evaluate(model, 1, len(rates)-1, valB)
		decay.Observe(val.Loss)
	}
}
