package experiments

import (
	"fmt"
	"math/rand"

	"modelslicing/internal/models"
	"modelslicing/internal/slicing"
	"modelslicing/internal/train"
)

// Table1 reproduces the slice-rate scheduling-scheme ablation: VGG-13
// trained under Fixed (per-width models), R-uniform-2, R-weighted-2,
// R-weighted-3, Static, R-min, R-max, R-min-max and SlimmableNet (static
// scheduling + per-width batch-norms), evaluated at rates 1.0/0.75/0.5/0.25.
func Table1(scale Scale, seed int64) *Table {
	sz := cnnSizingFor(scale)
	rates := slicing.NewRateList(0.25, 4) // the paper's Table-1 rate list
	weights := PaperWeights(rates)        // (0.25, 0.125, 0.125, 0.5) ascending

	d, _ := sz.dataset()
	test := d.TestBatches(64)

	type arm struct {
		name  string
		norm  models.Norm
		sched slicing.Scheduler
	}
	arms := []arm{
		{"R-uniform-2", models.NormGroup, slicing.NewRandomUniform(rates, 2)},
		{"R-weighted-2", models.NormGroup, slicing.NewRandomWeighted(rates, weights, 2)},
		{"R-weighted-3", models.NormGroup, slicing.NewRandomWeighted(rates, weights, 3)},
		{"Static", models.NormGroup, slicing.Static{Rates: rates}},
		{"R-min", models.NormGroup, slicing.NewRMin(rates)},
		{"R-max", models.NormGroup, slicing.NewRMax(rates)},
		{"R-min-max", models.NormGroup, slicing.NewRMinMax(rates)},
		{"Slimmable", models.NormSwitchable, slicing.Static{Rates: rates}},
	}

	tab := &Table{
		Title:  fmt.Sprintf("Table 1 — scheduling schemes, VGG-13 (%v scale)", scale),
		Header: []string{"scheme", "|Lt|"},
	}
	// Columns descend from 1.0 as in the paper.
	cols := []float64{1.0, 0.75, 0.5, 0.25}
	for _, r := range cols {
		tab.Header = append(tab.Header, fmt.Sprintf("r=%.2f", r))
	}

	// Fixed baseline: four independently trained models.
	rng := rand.New(rand.NewSource(seed))
	fixedRow := []string{"Fixed", "4"}
	for _, r := range cols {
		num, den := rateFrac(r, 4)
		cfg := models.VGG13Mini(1, models.NormGroup, 1).ScaleWidths(num, den)
		m, _ := models.NewVGG(cfg, rng)
		trainFixedCNN(m, d, sz, rng)
		fixedRow = append(fixedRow, f2(100*train.Evaluate(m, 1, 0, test).Accuracy))
	}
	tab.Rows = append(tab.Rows, fixedRow)

	for _, a := range arms {
		rng := rand.New(rand.NewSource(seed + 1))
		cfg := models.VGG13Mini(4, a.norm, len(rates))
		m, _ := models.NewVGG(cfg, rng)
		opt := train.NewSGD(sz.LR, 0.9, 1e-4)
		lr := sz.lrSchedule()
		tr := slicing.NewTrainer(m, rates, a.sched, opt, rng)
		for epoch := 0; epoch < sz.Epochs; epoch++ {
			opt.LR = lr.LR(epoch)
			tr.Epoch(d.TrainBatches(sz.Batch, sz.Augment, rng))
		}
		row := []string{a.name, fmt.Sprintf("%d", len(a.sched.Next(rng)))}
		for _, r := range cols {
			row = append(row, f2(100*train.Evaluate(m, r, rates.MustIndex(r), test).Accuracy))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes,
		"paper: weighted random scheduling beats uniform and static; R-min/R-max lift their pinned subnet; Slimmable wins at full width but trails at 0.25",
		"paper reference (r=1.0/0.75/0.5/0.25): Fixed 94.31/93.86/93.39/91.63, R-weighted-3 94.34/94.20/93.92/91.96, Static 93.67/93.46/93.19/91.69, Slimmable 94.41/94.29/93.47/91.45")
	return tab
}

// Fig3 reproduces the lower-bound ablation: VGG-13 trained with lb ∈
// {0.25 … 1.0}; accuracy degrades gracefully down to each lb and collapses
// below it.
func Fig3(scale Scale, seed int64) *Table {
	sz := cnnSizingFor(scale)
	d, _ := sz.dataset()
	test := d.TestBatches(64)
	granularity := 4
	lbs := []float64{0.25, 0.5, 0.75, 1.0}
	if scale != Tiny {
		granularity = 8
		lbs = []float64{0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0}
	}
	evalRates := slicing.NewRateList(1.0/float64(granularity), granularity)

	tab := &Table{
		Title:  fmt.Sprintf("Figure 3 — lower-bound ablation, VGG-13 (%v scale)", scale),
		Header: []string{"lb"},
	}
	for i := len(evalRates) - 1; i >= 0; i-- {
		tab.Header = append(tab.Header, fmt.Sprintf("err%%@%.4g", evalRates[i]))
	}
	for _, lb := range lbs {
		rng := rand.New(rand.NewSource(seed))
		rates := slicing.NewRateList(lb, granularity)
		cfg := models.VGG13Mini(granularity, models.NormGroup, len(rates))
		m, _ := models.NewVGG(cfg, rng)
		opt := train.NewSGD(sz.LR, 0.9, 1e-4)
		lrs := sz.lrSchedule()
		var sched slicing.Scheduler = slicing.NewRandomWeighted(rates, PaperWeights(rates), 3)
		if len(rates) == 1 {
			sched = slicing.Fixed{Rate: 1.0}
		}
		tr := slicing.NewTrainer(m, rates, sched, opt, rng)
		for epoch := 0; epoch < sz.Epochs; epoch++ {
			opt.LR = lrs.LR(epoch)
			tr.Epoch(d.TrainBatches(sz.Batch, sz.Augment, rng))
		}
		row := []string{fmt.Sprintf("%.4g", lb)}
		for i := len(evalRates) - 1; i >= 0; i-- {
			r := evalRates[i]
			res := train.Evaluate(m, r, rateIdx(rates, r), test)
			row = append(row, f2(res.ErrorRate()))
		}
		tab.Rows = append(tab.Rows, row)
	}
	tab.Notes = append(tab.Notes,
		"paper: error rises gently while r ≥ lb, then jumps sharply below lb (slicing the base network destroys its representation)")
	return tab
}
