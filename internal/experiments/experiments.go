// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 5) on the synthetic stand-in workloads, printing the
// same rows/series the paper reports next to the paper's reference values.
// See DESIGN.md §4 for the experiment index and EXPERIMENTS.md for the
// recorded paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"strings"

	"modelslicing/internal/data"
	"modelslicing/internal/slicing"
	"modelslicing/internal/train"
)

// Scale selects the dataset/model/epoch sizing of an experiment run.
type Scale int

const (
	// Micro exercises every code path in seconds; results carry no signal.
	// Used by the test suite.
	Micro Scale = iota - 1
	// Tiny finishes each experiment in minutes — the benchmark harness
	// default.
	Tiny
	// Small is the default for cmd/msbench: minutes per experiment, stable
	// orderings.
	Small
	// Medium runs longer for tighter curves.
	Medium
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "micro":
		return Micro, nil
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	default:
		return Tiny, fmt.Errorf("unknown scale %q (want tiny|small|medium)", s)
	}
}

// String implements fmt.Stringer.
func (s Scale) String() string {
	switch s {
	case Micro:
		return "micro"
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Medium:
		return "medium"
	default:
		return fmt.Sprintf("Scale(%d)", int(s))
	}
}

// cnnSizing bundles the knobs of a CNN experiment at one scale. The noise
// and learning-rate values were calibrated so that the mini models reach
// their accuracy plateau within the epoch budget on 2 CPU cores (see
// EXPERIMENTS.md); augmentation is disabled below Medium scale because at a
// few hundred samples it delays convergence past the budget.
type cnnSizing struct {
	TrainN, TestN int
	Epochs        int
	Batch         int
	Granularity   int
	LB            float64
	LR            float64
	HW            int
	Noise         float64
	Shared        float64
	Augment       bool
}

func cnnSizingFor(s Scale) cnnSizing {
	switch s {
	case Micro:
		return cnnSizing{TrainN: 64, TestN: 64, Epochs: 2, Batch: 32,
			Granularity: 4, LB: 0.25, LR: 0.03,
			HW: 8, Noise: 0.3, Shared: 0.25}
	case Tiny:
		return cnnSizing{TrainN: 320, TestN: 240, Epochs: 40, Batch: 32,
			Granularity: 4, LB: 0.25, LR: 0.03,
			HW: 12, Noise: 0.3, Shared: 0.25}
	case Medium:
		return cnnSizing{TrainN: 2000, TestN: 800, Epochs: 60, Batch: 32,
			Granularity: 8, LB: 0.375, LR: 0.03,
			HW: 16, Noise: 0.5, Shared: 0.45, Augment: true}
	default:
		return cnnSizing{TrainN: 800, TestN: 400, Epochs: 40, Batch: 32,
			Granularity: 8, LB: 0.375, LR: 0.03,
			HW: 16, Noise: 0.4, Shared: 0.35}
	}
}

// lrSchedule returns the shared CNN step-decay schedule (÷10 at 60% and
// 85% of the budget — the paper's 50%/75% shifted late because slicing
// training needs most of its progress before the first decay).
func (sz cnnSizing) lrSchedule() *train.StepDecay {
	return train.NewStepDecay(sz.LR, 10, train.MilestonesAt(sz.Epochs, 0.6, 0.85)...)
}

// dataset builds the CIFAR-like stand-in at this sizing.
func (sz cnnSizing) dataset() (*data.Images, []int) {
	cfg := data.CIFARLike(sz.TrainN, sz.TestN)
	cfg.H, cfg.W = sz.HW, sz.HW
	cfg.Noise, cfg.SharedWeight = sz.Noise, sz.Shared
	d := data.GenerateImages(cfg)
	return d, []int{cfg.Channels, cfg.H, cfg.W}
}

type nnlmSizing struct {
	TrainLen, TestLen int
	Epochs            int
	SeqLen, Batch     int
	Granularity       int
	LB                float64
	LR                float64
}

func nnlmSizingFor(s Scale) nnlmSizing {
	switch s {
	case Micro:
		return nnlmSizing{TrainLen: 2000, TestLen: 600, Epochs: 1,
			SeqLen: 8, Batch: 8, Granularity: 4, LB: 0.25, LR: 2}
	case Tiny:
		return nnlmSizing{TrainLen: 8000, TestLen: 2000, Epochs: 6,
			SeqLen: 16, Batch: 16, Granularity: 4, LB: 0.25, LR: 2}
	case Medium:
		return nnlmSizing{TrainLen: 40000, TestLen: 8000, Epochs: 10,
			SeqLen: 16, Batch: 16, Granularity: 8, LB: 0.375, LR: 2}
	default:
		return nnlmSizing{TrainLen: 20000, TestLen: 4000, Epochs: 6,
			SeqLen: 16, Batch: 16, Granularity: 8, LB: 0.375, LR: 2}
	}
}

// PaperWeights returns the R-weighted sampling weights generalized from the
// paper's (0.5, 0.125, 0.125, 0.25) over (1.0, 0.75, 0.5, 0.25): half the
// mass on the full network, a quarter on the base network, the rest split
// uniformly (Section 3.4: the full and base networks are the two most
// important subnets).
func PaperWeights(rates slicing.RateList) []float64 {
	n := len(rates)
	w := make([]float64, n)
	switch n {
	case 1:
		w[0] = 1
	case 2:
		w[0], w[n-1] = 0.5, 0.5
	default:
		w[0] = 0.25
		w[n-1] = 0.5
		rest := 0.25 / float64(n-2)
		for i := 1; i < n-1; i++ {
			w[i] = rest
		}
	}
	return w
}

// Table is a rendered experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s ===\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }
