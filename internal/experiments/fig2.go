package experiments

import (
	"fmt"
	"math/rand"

	"modelslicing/internal/baselines"
	"modelslicing/internal/cost"
	"modelslicing/internal/data"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/slicing"
	"modelslicing/internal/train"
)

// Fig2 reproduces the ResNet trade-off figure: accuracy vs inference FLOPs
// for model slicing (standard and widened ResNet), the varying-width and
// varying-depth ensembles, the multi-classifier (depth slicing) baseline,
// Network-Slimming width compression, and SkipNet-style dynamic routing.
func Fig2(scale Scale, seed int64) *TradeoffResult {
	sz := cnnSizingFor(scale)
	d, inShape := sz.dataset()
	test := d.TestBatches(64)
	rates := slicing.NewRateList(sz.LB, sz.Granularity)

	out := &TradeoffResult{Title: fmt.Sprintf("Figure 2 — ResNet accuracy vs FLOPs (%v scale)", scale)}

	// --- Model slicing on the ResNet-164 analogue.
	rng := rand.New(rand.NewSource(seed))
	narrowCfg := models.ResNetMini(sz.Granularity, models.NormGroup, len(rates))
	narrow, _ := models.NewResNet(narrowCfg, rng)
	trainSlicedResNet(narrow, rates, d, sz, rng)
	out.Curves = append(out.Curves, sliceCurve("ResNet with Model Slicing (single model L164-mini)",
		narrow, rates, inShape, test))

	// --- Model slicing on the widened ResNet-56-2 analogue.
	wideCfg := models.ResNetMiniWide(sz.Granularity, models.NormGroup, len(rates))
	wide, _ := models.NewResNet(wideCfg, rng)
	trainSlicedResNet(wide, rates, d, sz, rng)
	out.Curves = append(out.Curves, sliceCurve("ResNet with Model Slicing (single model L56-2-mini)",
		wide, rates, inShape, test))

	// --- Ensemble of ResNet (varying width).
	var widthCurve Curve
	widthCurve.Name = "Ensemble of ResNet (varying width)"
	for _, r := range rates {
		num, den := rateFrac(r, sz.Granularity)
		cfg := models.ResNetMini(1, models.NormGroup, 1).ScaleWidths(num, den)
		m, _ := models.NewResNet(cfg, rng)
		trainFixedCNN(m, d, sz, rng)
		macs, _ := measureFull(m, inShape)
		widthCurve.Points = append(widthCurve.Points, Point{fmt.Sprintf("w=%.4g", r), macs,
			train.Evaluate(m, 1, 0, test).Accuracy})
	}
	out.Curves = append(out.Curves, widthCurve)

	// --- Ensemble of ResNet (varying depth).
	var depthCurve Curve
	depthCurve.Name = "Ensemble of ResNet (varying depth)"
	for _, blocks := range [][]int{{1, 1, 1}, {2, 2, 2}} {
		cfg := models.ResNetMini(1, models.NormGroup, 1)
		cfg.StageBlocks = blocks
		m, _ := models.NewResNet(cfg, rng)
		trainFixedCNN(m, d, sz, rng)
		macs, _ := measureFull(m, inShape)
		depthCurve.Points = append(depthCurve.Points, Point{fmt.Sprintf("blocks=%d", blocks[0]), macs,
			train.Evaluate(m, 1, 0, test).Accuracy})
	}
	out.Curves = append(out.Curves, depthCurve)

	// --- Multi-classifier (depth-sliced early exits on one model).
	mcCfg := models.ResNetMini(1, models.NormGroup, 1)
	backbone, taps := models.NewResNet(mcCfg, rng)
	tapChannels := make([]int, len(taps))
	for i, w := range mcCfg.StageWidths {
		tapChannels[i] = w * mcCfg.Expansion
	}
	mc := baselines.NewMultiClassifierCNN(backbone, taps, tapChannels, mcCfg.Classes, rng)
	opt := train.NewSGD(sz.LR, 0.9, 1e-4)
	lrs := sz.lrSchedule()
	for epoch := 0; epoch < sz.Epochs; epoch++ {
		opt.LR = lrs.LR(epoch)
		for _, b := range d.TrainBatches(sz.Batch, sz.Augment, rng) {
			ctx := &nn.Context{Training: true, Rate: 1, RNG: rng}
			mc.TrainStep(ctx, b, opt)
		}
	}
	var mcCurve Curve
	mcCurve.Name = "ResNet with Multi-Classifiers (single model)"
	for k := 0; k < mc.NumExits(); k++ {
		mcCurve.Points = append(mcCurve.Points, Point{fmt.Sprintf("exit-%d", k+1),
			mc.ExitCost(k, inShape),
			train.Evaluate(mc.ExitModel(k), 1, 0, test).Accuracy})
	}
	out.Curves = append(out.Curves, mcCurve)

	// --- Network Slimming (width compression): L1-γ training, prune the
	// bottleneck mid-channels, fine-tune.
	slimCfg := models.ResNetMini(1, models.NormBatch, 1)
	slimSrc, _ := models.NewResNet(slimCfg, rng)
	trainSlimCNN(slimSrc, d, sz, 1e-4, rng)
	var slimCurve Curve
	slimCurve.Name = "ResNet with Width Compression (Network Slimming)"
	for _, keep := range []float64{0.75, 0.5} {
		pruned := baselines.PruneResNet(slimSrc, keep, rng)
		fineTune(pruned, d, sz, rng)
		macs, _ := measureFull(pruned, inShape)
		slimCurve.Points = append(slimCurve.Points, Point{fmt.Sprintf("keep=%.2f", keep), macs,
			train.Evaluate(pruned, 1, 0, test).Accuracy})
	}
	out.Curves = append(out.Curves, slimCurve)

	// --- SkipNet-style dynamic routing.
	skipBase, _ := models.NewResNet(models.ResNetMini(1, models.NormGroup, 1), rng)
	skip := baselines.NewSkipNetLite(skipBase, 0.2)
	sopt := train.NewSGD(sz.LR, 0.9, 1e-4)
	for epoch := 0; epoch < sz.Epochs; epoch++ {
		sopt.LR = lrs.LR(epoch)
		for _, b := range d.TrainBatches(sz.Batch, sz.Augment, rng) {
			ctx := &nn.Context{Training: true, Rate: 1, RNG: rng}
			logits := skip.Forward(ctx, b.X)
			_, dy := nn.SoftmaxCrossEntropy(logits, b.Labels)
			skip.Backward(ctx, dy)
			sopt.Step(skip.Params())
		}
	}
	skip.MeasureContributions(test)
	var skipCurve Curve
	skipCurve.Name = "ResNet with Dynamic Routing (SkipNet-lite)"
	for k := 0; k <= skip.NumSkippable(); k++ {
		skip.SkipLowest(k)
		skipCurve.Points = append(skipCurve.Points, Point{fmt.Sprintf("skip-%d", k),
			skip.CurrentCost(inShape),
			train.Evaluate(skip, 1, 0, test).Accuracy})
	}
	skip.SkipLowest(0)
	out.Curves = append(out.Curves, skipCurve)
	return out
}

func sliceCurve(name string, model nn.Layer, rates slicing.RateList, inShape []int,
	test []train.Batch) Curve {
	c := Curve{Name: name}
	for _, r := range rates {
		p := point(model, rates, r, inShape, test)
		c.Points = append(c.Points, p)
	}
	return c
}

func point(model nn.Layer, rates slicing.RateList, r float64, inShape []int,
	test []train.Batch) Point {
	macs := costAt(model, inShape, r)
	return Point{fmt.Sprintf("r=%.4g", r), macs,
		train.Evaluate(model, r, rateIdx(rates, r), test).Accuracy}
}

func trainSlicedResNet(model *nn.Sequential, rates slicing.RateList, d *data.Images,
	sz cnnSizing, rng *rand.Rand) {
	opt := train.NewSGD(sz.LR, 0.9, 1e-4)
	lrs := sz.lrSchedule()
	tr := slicing.NewTrainer(model, rates, slicing.NewRandomWeighted(rates, PaperWeights(rates), 3), opt, rng)
	for epoch := 0; epoch < sz.Epochs; epoch++ {
		opt.LR = lrs.LR(epoch)
		tr.Epoch(d.TrainBatches(sz.Batch, sz.Augment, rng))
	}
}

// trainSlimCNN trains with the network-slimming L1 penalty on γ.
func trainSlimCNN(model nn.Layer, d *data.Images, sz cnnSizing, lambda float64, rng *rand.Rand) {
	opt := train.NewSGD(sz.LR, 0.9, 1e-4)
	lrs := sz.lrSchedule()
	for epoch := 0; epoch < sz.Epochs; epoch++ {
		opt.LR = lrs.LR(epoch)
		for _, b := range d.TrainBatches(sz.Batch, sz.Augment, rng) {
			ctx := &nn.Context{Training: true, Rate: 1, RNG: rng}
			logits := model.Forward(ctx, b.X)
			_, dy := nn.SoftmaxCrossEntropy(logits, b.Labels)
			model.Backward(ctx, dy)
			baselines.L1GammaPenalty(model, lambda)
			opt.Step(model.Params())
		}
	}
}

// fineTune runs a short recovery phase after pruning (⅓ of the epochs at a
// tenth of the learning rate, the usual slimming recipe).
func fineTune(model nn.Layer, d *data.Images, sz cnnSizing, rng *rand.Rand) {
	opt := train.NewSGD(sz.LR/10, 0.9, 1e-4)
	epochs := sz.Epochs/3 + 1
	for epoch := 0; epoch < epochs; epoch++ {
		for _, b := range d.TrainBatches(sz.Batch, sz.Augment, rng) {
			ctx := &nn.Context{Training: true, Rate: 1, RNG: rng}
			logits := model.Forward(ctx, b.X)
			_, dy := nn.SoftmaxCrossEntropy(logits, b.Labels)
			model.Backward(ctx, dy)
			opt.Step(model.Params())
		}
	}
}

func costAt(model nn.Layer, inShape []int, r float64) int64 {
	p, _ := cost.Measure(model, inShape, r)
	return p.MACs
}
