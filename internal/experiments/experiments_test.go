package experiments

import (
	"math"
	"strings"
	"testing"

	"modelslicing/internal/slicing"
)

func TestParseScale(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Scale
	}{{"micro", Micro}, {"tiny", Tiny}, {"Small", Small}, {"MEDIUM", Medium}} {
		got, err := ParseScale(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseScale(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("expected error for unknown scale")
	}
}

func TestScaleString(t *testing.T) {
	for s, want := range map[Scale]string{Micro: "micro", Tiny: "tiny", Small: "small", Medium: "medium"} {
		if s.String() != want {
			t.Fatalf("%d.String() = %s", int(s), s)
		}
	}
}

func TestPaperWeights(t *testing.T) {
	rates := slicing.NewRateList(0.25, 4)
	w := PaperWeights(rates)
	want := []float64{0.25, 0.125, 0.125, 0.5}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("PaperWeights = %v, want %v", w, want)
		}
	}
	sum := 0.0
	for _, v := range PaperWeights(slicing.NewRateList(0.375, 8)) {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights must sum to 1, got %v", sum)
	}
}

func TestRateFrac(t *testing.T) {
	if n, d := rateFrac(0.375, 8); n != 3 || d != 8 {
		t.Fatalf("rateFrac(0.375, 8) = %d/%d", n, d)
	}
	if n, d := rateFrac(1.0, 4); n != 4 || d != 4 {
		t.Fatalf("rateFrac(1.0, 4) = %d/%d", n, d)
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"xxxxx", "1"}},
		Notes:  []string{"hello"},
	}
	out := tab.Render()
	for _, want := range []string{"=== demo ===", "xxxxx", "note: hello"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryListsAllExperiments(t *testing.T) {
	ids := List()
	want := []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"table1", "table2", "table3", "table4", "table4-large", "table5"}
	if len(ids) != len(want) {
		t.Fatalf("registry has %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("registry has %v, want %v", ids, want)
		}
	}
	if _, err := Run("nope", Micro, 1); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

// TestAllExperimentsRunAtMicroScale exercises every experiment end-to-end at
// the micro scale: outputs carry no statistical signal, but every arm,
// baseline and rendering path must run without panicking and produce rows.
func TestAllExperimentsRunAtMicroScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping micro experiment sweep in -short mode")
	}
	for _, id := range List() {
		id := id
		t.Run(id, func(t *testing.T) {
			out, err := Run(id, Micro, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(out, "===") || len(out) < 80 {
				t.Fatalf("experiment %s output suspiciously small:\n%s", id, out)
			}
		})
	}
}

// The CNN study memoizes per (scale, seed).
func TestCNNStudyMemoized(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CNN training in -short mode")
	}
	a := RunCNNStudy(Micro, 1)
	b := RunCNNStudy(Micro, 1)
	if a != b {
		t.Fatal("study must be cached per scale+seed")
	}
	if a.Sliced == nil || a.Direct == nil || len(a.Fixed) == 0 {
		t.Fatal("study must hold all arms")
	}
	if len(a.History.Epochs) != a.Sizing.Epochs {
		t.Fatalf("history has %d epochs, want %d", len(a.History.Epochs), a.Sizing.Epochs)
	}
	if len(a.GammaTrace) != 2 {
		t.Fatalf("expected 2 γ traces, got %d", len(a.GammaTrace))
	}
}
