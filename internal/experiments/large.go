package experiments

import (
	"fmt"
	"math/rand"

	"modelslicing/internal/data"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/slicing"
	"modelslicing/internal/train"
)

// Table4Large reproduces the ImageNet block of Table 4 (VGG-16 and
// ResNet-50 rows) on the ImageNet-like synthetic task: for each family, a
// model-slicing network with lb = 0.25 against independently trained fixed
// models at widths 1.0 / 0.75 / 0.5 / 0.25 — the paper's claim being that at
// rate 0.25 the sliced subnet matches the fixed model at ~6.25% of the
// compute (~16× speedup).
func Table4Large(scale Scale, seed int64) *Table {
	sz := cnnSizingFor(scale)
	// The larger task: more classes, bigger images, the paper's lb = 0.25.
	imgCfg := data.ImageNetLike(sz.TrainN, sz.TestN)
	imgCfg.Classes = 12
	imgCfg.H, imgCfg.W = sz.HW+4, sz.HW+4
	imgCfg.Noise, imgCfg.SharedWeight = sz.Noise, sz.Shared
	d := data.GenerateImages(imgCfg)
	test := d.TestBatches(64)
	rates := slicing.NewRateList(0.25, 4)

	tab := &Table{
		Title:  fmt.Sprintf("Table 4 (large) — ImageNet-like task (%v scale)", scale),
		Header: []string{"row", "metric", "r=1.0", "r=0.75", "r=0.5", "r=0.25"},
	}
	cols := []float64{1.0, 0.75, 0.5, 0.25}

	type family struct {
		name  string
		build func(groups int, norm models.Norm, widths int) (*models.VGGConfig, *models.ResNetConfig)
	}
	families := []family{
		{"VGG-16-mini", func(g int, n models.Norm, w int) (*models.VGGConfig, *models.ResNetConfig) {
			cfg := models.VGG13Mini(g, n, w)
			cfg.Name = "VGG-16-mini"
			cfg.InputHW = imgCfg.H
			cfg.Classes = imgCfg.Classes
			return &cfg, nil
		}},
		{"ResNet-50-mini", func(g int, n models.Norm, w int) (*models.VGGConfig, *models.ResNetConfig) {
			cfg := models.ResNetMiniWide(g, n, w)
			cfg.Name = "ResNet-50-mini"
			cfg.InputHW = imgCfg.H
			cfg.Classes = imgCfg.Classes
			return nil, &cfg
		}},
	}
	for _, fam := range families {
		rng := rand.New(rand.NewSource(seed))
		// Slicing arm.
		vc, rc := fam.build(4, models.NormGroup, len(rates))
		sliced := buildFamily(vc, rc, rng)
		opt := train.NewSGD(sz.LR, 0.9, 1e-4)
		lrs := sz.lrSchedule()
		tr := slicing.NewTrainer(sliced, rates, slicing.NewRMinMax(rates), opt, rng)
		for epoch := 0; epoch < sz.Epochs; epoch++ {
			opt.LR = lrs.LR(epoch)
			tr.Epoch(d.TrainBatches(sz.Batch, sz.Augment, rng))
		}
		slicedRow := []string{fam.name + "-lb-0.25", "acc %"}
		ctRow := []string{fam.name, "Ct %"}
		inShape := []int{imgCfg.Channels, imgCfg.H, imgCfg.W}
		fullMACs := costAt(sliced, inShape, 1)
		for _, r := range cols {
			ctRow = append(ctRow, f2(100*float64(costAt(sliced, inShape, r))/float64(fullMACs)))
			slicedRow = append(slicedRow, f2(100*train.Evaluate(sliced, r, rateIdx(rates, r), test).Accuracy))
		}
		// Fixed arm.
		fixedRow := []string{fam.name + "-fixed-models", "acc %"}
		for _, r := range cols {
			num, den := rateFrac(r, 4)
			fvc, frc := fam.build(1, models.NormGroup, 1)
			fixedModel := buildScaledFamily(fvc, frc, num, den, rng)
			trainFixedCNN(fixedModel, d, sz, rng)
			fixedRow = append(fixedRow, f2(100*train.Evaluate(fixedModel, 1, 0, test).Accuracy))
		}
		tab.Rows = append(tab.Rows, ctRow, fixedRow, slicedRow)
	}
	tab.Notes = append(tab.Notes,
		"paper (ImageNet): VGG-16 fixed 72.47/70.73/66.31/54.14 vs lb-0.25 72.53/70.69/66.41/54.20; ResNet-50 fixed 76.05/74.73/72.02/63.91 vs lb-0.25 76.08/74.65/71.97/63.98",
		"shape: the sliced subnet matches the equal-width fixed model at every rate, at 6.25% compute for r=0.25")
	return tab
}

func buildFamily(vc *models.VGGConfig, rc *models.ResNetConfig, rng *rand.Rand) *nn.Sequential {
	if vc != nil {
		m, _ := models.NewVGG(*vc, rng)
		return m
	}
	m, _ := models.NewResNet(*rc, rng)
	return m
}

func buildScaledFamily(vc *models.VGGConfig, rc *models.ResNetConfig, num, den int, rng *rand.Rand) *nn.Sequential {
	if vc != nil {
		m, _ := models.NewVGG(vc.ScaleWidths(num, den), rng)
		return m
	}
	m, _ := models.NewResNet(rc.ScaleWidths(num, den), rng)
	return m
}
