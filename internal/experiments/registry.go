package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment and renders its result.
type Runner func(scale Scale, seed int64) string

// registry maps experiment ids (figure/table numbers) to runners.
var registry = map[string]Runner{
	"fig2":   func(s Scale, seed int64) string { return Fig2(s, seed).Render() },
	"table1": func(s Scale, seed int64) string { return Table1(s, seed).Render() },
	"fig3":   func(s Scale, seed int64) string { return Fig3(s, seed).Render() },
	"fig4":   func(s Scale, seed int64) string { return Fig4Table2(s, seed).Render() },
	"table2": func(s Scale, seed int64) string { return Fig4Table2(s, seed).Render() },
	"table3": func(s Scale, seed int64) string { return Table3().Render() },
	"fig5":   func(s Scale, seed int64) string { return Fig5(s, seed).Render() },
	"table4": func(s Scale, seed int64) string { return Table4(s, seed).Render() },
	"table4-large": func(s Scale, seed int64) string {
		return Table4Large(s, seed).Render()
	},
	"table5": func(s Scale, seed int64) string { return Table5(s, seed).Render() },
	"fig6":   func(s Scale, seed int64) string { return Fig6(s, seed).Render() },
	"fig7":   func(s Scale, seed int64) string { return Fig7(s, seed).Render() },
	"fig8":   func(s Scale, seed int64) string { return Fig8(s, seed).Render() },
}

// Run executes the experiment with the given id.
func Run(id string, scale Scale, seed int64) (string, error) {
	r, ok := registry[id]
	if !ok {
		return "", fmt.Errorf("unknown experiment %q (available: %v)", id, List())
	}
	return r(scale, seed), nil
}

// List returns the available experiment ids in sorted order.
func List() []string {
	var ids []string
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
