package cost

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/nn"
)

func TestDenseCost(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := nn.NewDense(10, 20, nn.Fixed(), nn.Fixed(), true, rng)
	p, out := Measure(d, []int{10}, 1)
	if p.MACs != 200 {
		t.Fatalf("dense MACs %d, want 200", p.MACs)
	}
	if p.Params != 220 {
		t.Fatalf("dense params %d, want 220", p.Params)
	}
	if len(out) != 1 || out[0] != 20 {
		t.Fatalf("dense out shape %v", out)
	}
}

func TestConvCost(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := nn.NewConv2D(3, 16, 3, 3, 1, 1, nn.Fixed(), nn.Fixed(), false, rng)
	p, out := Measure(c, []int{3, 32, 32}, 1)
	want := int64(9 * 3 * 16 * 32 * 32)
	if p.MACs != want {
		t.Fatalf("conv MACs %d, want %d", p.MACs, want)
	}
	if p.Params != 3*16*9 {
		t.Fatalf("conv params %d", p.Params)
	}
	if out[0] != 16 || out[1] != 32 || out[2] != 32 {
		t.Fatalf("conv out shape %v", out)
	}
}

func TestQuadraticCostInRate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// A deep stack sliced on both sides everywhere in the middle: cost must
	// scale ≈ r² (Equation 3's premise).
	model := nn.NewSequential(
		nn.NewConv2D(16, 16, 3, 3, 1, 1, nn.Sliced(4), nn.Sliced(4), false, rng),
		nn.NewConv2D(16, 16, 3, 3, 1, 1, nn.Sliced(4), nn.Sliced(4), false, rng),
		nn.NewConv2D(16, 16, 3, 3, 1, 1, nn.Sliced(4), nn.Sliced(4), false, rng),
	)
	for _, r := range []float64{0.25, 0.5, 0.75, 1.0} {
		got := Ratio(model, []int{16, 8, 8}, r)
		if math.Abs(got-r*r) > 1e-9 {
			t.Fatalf("cost ratio at %v = %v, want %v", r, got, r*r)
		}
	}
}

func TestTable2CtColumn(t *testing.T) {
	// The paper's Ct row: 100, 76.56, 56.25, 39.06, 25.00, 14.06, 6.25 (%)
	// for rates 1.0 … 0.25 — exactly r² on a fully sliced stack.
	rng := rand.New(rand.NewSource(4))
	model := nn.NewSequential(
		nn.NewDense(64, 64, nn.Sliced(16), nn.Sliced(16), false, rng),
	)
	rates := []float64{1.0, 0.875, 0.75, 0.625, 0.5, 0.375, 0.25}
	want := []float64{100, 76.5625, 56.25, 39.0625, 25, 14.0625, 6.25}
	for i, r := range rates {
		got := 100 * Ratio(model, []int{64}, r)
		if math.Abs(got-want[i]) > 1e-6 {
			t.Fatalf("Ct(%v) = %v%%, want %v%%", r, got, want[i])
		}
	}
}

func TestLSTMCostScalesWithSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := nn.NewLSTM(32, 64, nn.Fixed(), nn.Fixed(), false, rng)
	p1, _ := Measure(l, []int{10, 32}, 1)
	p2, _ := Measure(l, []int{20, 32}, 1)
	if p2.MACs != 2*p1.MACs {
		t.Fatalf("LSTM MACs must scale linearly with T: %d vs %d", p1.MACs, p2.MACs)
	}
	wantStep := int64(4 * (32*64 + 64*64))
	if p1.MACs != 10*wantStep {
		t.Fatalf("LSTM MACs %d, want %d", p1.MACs, 10*wantStep)
	}
	if p1.Params != 4*(32*64+64*64+64) {
		t.Fatalf("LSTM params %d", p1.Params)
	}
}

func TestEmbeddingAndPipelineShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	model := nn.NewSequential(
		nn.NewEmbedding(100, 16, rng),
		nn.NewLSTM(16, 32, nn.Fixed(), nn.Sliced(4), false, rng),
		nn.NewTimeFlatten(),
		nn.NewDense(32, 100, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	p, out := Measure(model, []int{10}, 1)
	if len(out) != 2 || out[0] != 10 || out[1] != 100 {
		t.Fatalf("pipeline out shape %v", out)
	}
	if p.Params <= 100*16 {
		t.Fatal("params must include embedding plus LSTM and decoder")
	}
	// At rate 0.5 the decoder input and LSTM hidden shrink; embedding does not.
	pHalf, _ := Measure(model, []int{10}, 0.5)
	if pHalf.Params >= p.Params {
		t.Fatal("sliced params must shrink")
	}
	if pHalf.MACs >= p.MACs {
		t.Fatal("sliced MACs must shrink")
	}
}

func TestPoolAndNormCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	model := nn.NewSequential(
		nn.NewConv2D(3, 8, 3, 3, 1, 1, nn.Fixed(), nn.Sliced(4), false, rng),
		nn.NewGroupNorm(8, 4, nn.Sliced(4), 1e-5),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewGlobalAvgPool(),
		nn.NewDense(8, 4, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	p, out := Measure(model, []int{3, 8, 8}, 1)
	if len(out) != 1 || out[0] != 4 {
		t.Fatalf("out shape %v", out)
	}
	// GN contributes 16 params; dense 8*4+4; conv 3*8*9.
	want := int64(16 + 36 + 216)
	if p.Params != want {
		t.Fatalf("params %d, want %d", p.Params, want)
	}
}

func TestParamRatioQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	model := nn.NewSequential(
		nn.NewDense(32, 32, nn.Sliced(4), nn.Sliced(4), false, rng),
		nn.NewDense(32, 32, nn.Sliced(4), nn.Sliced(4), false, rng),
	)
	got := ParamRatio(model, []int{32}, 0.5)
	if math.Abs(got-0.25) > 1e-9 {
		t.Fatalf("param ratio %v, want 0.25", got)
	}
}
