// Package cost implements the inference cost model of the paper: per-layer
// multiply-accumulate counts (the "FLOPs in MUL-ADD" of Figures 2 and 5) and
// parameter counts, both as a function of the slice rate. These back the Ct
// (computation) and Mt (model size) columns of Tables 2 and 4 and the
// Equation-3 budget-to-rate resolution.
package cost

import (
	"fmt"

	"modelslicing/internal/nn"
)

// Profile is the aggregate cost of one inference pass for a single sample
// (or a single sequence, for recurrent models).
type Profile struct {
	// MACs counts multiply-accumulate operations.
	MACs int64
	// Params counts the parameters that must reside in memory at this rate.
	Params int64
	// Activations counts output elements across layers — a proxy for
	// run-time activation memory.
	Activations int64
}

// Add accumulates another profile.
func (p *Profile) Add(o Profile) {
	p.MACs += o.MACs
	p.Params += o.Params
	p.Activations += o.Activations
}

// Measure walks the layer tree and returns the cost profile of one forward
// pass at slice rate r, for the given single-sample input shape (without the
// batch dimension for images — e.g. [3, 32, 32] — or [T] for token inputs).
// The returned shape is the layer tree's output shape.
func Measure(layer nn.Layer, inShape []int, r float64) (Profile, []int) {
	var p Profile
	out := walk(layer, inShape, r, &p)
	return p, out
}

// FLOPs returns MACs at rate r as a float (convenience for budget math).
func FLOPs(layer nn.Layer, inShape []int, r float64) float64 {
	p, _ := Measure(layer, inShape, r)
	return float64(p.MACs)
}

func prod(shape []int) int64 {
	n := int64(1)
	for _, d := range shape {
		n *= int64(d)
	}
	return n
}

func walk(layer nn.Layer, in []int, r float64, p *Profile) []int {
	switch l := layer.(type) {
	case *nn.Sequential:
		for _, inner := range l.Layers {
			in = walk(inner, in, r, p)
		}
		return in

	case *nn.Residual:
		out := walk(l.Body, in, r, p)
		if l.Short != nil {
			walk(l.Short, in, r, p)
		}
		return out

	case *nn.Dense:
		aIn, aOut := l.Active(r)
		rows := int64(1)
		if len(in) == 2 { // [rows, features] e.g. after TimeFlatten
			rows = int64(in[0])
		}
		p.MACs += rows * int64(aIn) * int64(aOut)
		p.Params += int64(aIn) * int64(aOut)
		if l.B != nil {
			p.Params += int64(aOut)
		}
		out := []int{aOut}
		if len(in) == 2 {
			out = []int{in[0], aOut}
		}
		p.Activations += prod(out)
		return out

	case *nn.Conv2D:
		aIn, aOut := l.Active(r)
		if len(in) != 3 {
			panic(fmt.Sprintf("cost: Conv2D input shape %v, want [C H W]", in))
		}
		oh, ow := l.OutShape(in[1], in[2])
		p.MACs += int64(l.KH*l.KW) * int64(aIn) * int64(aOut) * int64(oh*ow)
		p.Params += int64(aOut) * int64(aIn) * int64(l.KH*l.KW)
		if l.B != nil {
			p.Params += int64(aOut)
		}
		out := []int{aOut, oh, ow}
		p.Activations += prod(out)
		return out

	case *nn.GroupNorm:
		aC := l.Spec.Active(r, l.C)
		p.Params += 2 * int64(aC)
		p.Activations += prod(in)
		return in

	case *nn.BatchNorm:
		aC := l.Spec.Active(r, l.C)
		p.Params += 2 * int64(aC)
		p.Activations += prod(in)
		return in

	case *nn.SwitchableBatchNorm:
		// One BN is active per deployed width; its cost is what matters for
		// a deployed subnet.
		return walk(l.BNs[0], in, r, p)

	case *nn.LSTM:
		aIn, aH := l.Active(r)
		steps := int64(1)
		if len(in) == 2 { // [T, features]
			steps = int64(in[0])
		}
		p.MACs += steps * 4 * (int64(aIn)*int64(aH) + int64(aH)*int64(aH))
		p.Params += 4 * (int64(aIn)*int64(aH) + int64(aH)*int64(aH) + int64(aH))
		out := []int{aH}
		if len(in) == 2 {
			out = []int{in[0], aH}
		}
		p.Activations += prod(out)
		return out

	case *nn.GRU:
		aIn, aH := l.Active(r)
		steps := int64(1)
		if len(in) == 2 {
			steps = int64(in[0])
		}
		p.MACs += steps * 3 * (int64(aIn)*int64(aH) + int64(aH)*int64(aH))
		p.Params += 3*(int64(aIn)*int64(aH)+int64(aH)*int64(aH)) + 6*int64(aH)
		out := []int{aH}
		if len(in) == 2 {
			out = []int{in[0], aH}
		}
		p.Activations += prod(out)
		return out

	case *nn.RNN:
		aIn, aH := l.Active(r)
		steps := int64(1)
		if len(in) == 2 {
			steps = int64(in[0])
		}
		p.MACs += steps * (int64(aIn)*int64(aH) + int64(aH)*int64(aH))
		p.Params += int64(aIn)*int64(aH) + int64(aH)*int64(aH) + int64(aH)
		out := []int{aH}
		if len(in) == 2 {
			out = []int{in[0], aH}
		}
		p.Activations += prod(out)
		return out

	case *nn.Embedding:
		// Input [T] token ids → output [T, E]; a lookup costs no MACs.
		p.Params += int64(l.V) * int64(l.E)
		out := append(append([]int(nil), in...), l.E)
		p.Activations += prod(out)
		return out

	case *nn.MaxPool2D:
		if len(in) != 3 {
			panic(fmt.Sprintf("cost: MaxPool2D input shape %v, want [C H W]", in))
		}
		oh := (in[1]-l.K)/l.Stride + 1
		ow := (in[2]-l.K)/l.Stride + 1
		out := []int{in[0], oh, ow}
		p.Activations += prod(out)
		return out

	case *nn.GlobalAvgPool:
		out := []int{in[0]}
		p.Activations += prod(out)
		return out

	case *nn.Flatten:
		return []int{int(prod(in))}

	case *nn.TimeFlatten:
		// [T, H] stays [T, H] in per-sample shape terms.
		return in

	case *nn.ReLU, *nn.Dropout:
		return in

	default:
		panic(fmt.Sprintf("cost: Measure does not support layer type %T", layer))
	}
}

// Ratio returns cost(r)/cost(1) for the model — the Ct column of Tables 2
// and 4. For models sliced on both dimensions this is ≈ r².
func Ratio(layer nn.Layer, inShape []int, r float64) float64 {
	full := FLOPs(layer, inShape, 1)
	if full == 0 {
		return 0
	}
	return FLOPs(layer, inShape, r) / full
}

// ParamRatio returns params(r)/params(1) — the Mt column of Table 4.
func ParamRatio(layer nn.Layer, inShape []int, r float64) float64 {
	pf, _ := Measure(layer, inShape, 1)
	pr, _ := Measure(layer, inShape, r)
	if pf.Params == 0 {
		return 0
	}
	return float64(pr.Params) / float64(pf.Params)
}
