package train

import "fmt"

// History records per-epoch evaluation at a set of slice rates, backing the
// learning-curve reproduction (Figure 7) and the γ-evolution heat map
// (Figure 6).
type History struct {
	Rates  []float64
	Epochs []EpochRecord
}

// EpochRecord is the evaluation snapshot of one epoch.
type EpochRecord struct {
	Epoch     int
	TrainLoss float64
	// PerRate holds one evaluation per rate in History.Rates order.
	PerRate []EvalResult
	// GammaGroups optionally records per-layer γ group means (Figure 6);
	// keyed by a caller-chosen layer label.
	GammaGroups map[string][]float64
}

// NewHistory constructs a history for the given evaluation rates.
func NewHistory(rates []float64) *History {
	return &History{Rates: append([]float64(nil), rates...)}
}

// Append adds an epoch record.
func (h *History) Append(rec EpochRecord) { h.Epochs = append(h.Epochs, rec) }

// Series returns the per-epoch values of metric for the i-th rate.
func (h *History) Series(i int, metric func(EvalResult) float64) []float64 {
	out := make([]float64, len(h.Epochs))
	for e, rec := range h.Epochs {
		out[e] = metric(rec.PerRate[i])
	}
	return out
}

// Final returns the last epoch's evaluation for the i-th rate.
func (h *History) Final(i int) EvalResult {
	if len(h.Epochs) == 0 {
		return EvalResult{}
	}
	return h.Epochs[len(h.Epochs)-1].PerRate[i]
}

// RateIndex returns the index of rate r in the history, or an error.
func (h *History) RateIndex(r float64) (int, error) {
	for i, v := range h.Rates {
		if v == r {
			return i, nil
		}
	}
	return 0, fmt.Errorf("train: rate %v not tracked (have %v)", r, h.Rates)
}
