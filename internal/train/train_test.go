package train

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
)

func TestSGDPlainStep(t *testing.T) {
	p := nn.NewParam("w", true, 2)
	p.Value.Data[0], p.Value.Data[1] = 1, 2
	p.Grad.Data[0], p.Grad.Data[1] = 0.5, -0.5
	s := NewSGD(0.1, 0, 0)
	s.Step([]*nn.Param{p})
	if math.Abs(p.Value.Data[0]-0.95) > 1e-12 || math.Abs(p.Value.Data[1]-2.05) > 1e-12 {
		t.Fatalf("after step: %v", p.Value.Data)
	}
	if p.Grad.Data[0] != 0 {
		t.Fatal("Step must zero the gradient")
	}
}

func TestSGDWeightDecayRespectsFlag(t *testing.T) {
	decayed := nn.NewParam("w", true, 1)
	decayed.Value.Data[0] = 10
	plain := nn.NewParam("b", false, 1)
	plain.Value.Data[0] = 10
	s := NewSGD(0.1, 0, 0.1)
	s.Step([]*nn.Param{decayed, plain})
	if decayed.Value.Data[0] >= 10 {
		t.Fatal("weight decay must shrink decayed params")
	}
	if plain.Value.Data[0] != 10 {
		t.Fatal("weight decay must not touch Decay=false params")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := nn.NewParam("w", true, 1)
	s := NewSGD(1, 0.9, 0)
	p.Grad.Data[0] = 1
	s.Step([]*nn.Param{p}) // v=1, w=-1
	p.Grad.Data[0] = 1
	s.Step([]*nn.Param{p}) // v=1.9, w=-2.9
	if math.Abs(p.Value.Data[0]+2.9) > 1e-12 {
		t.Fatalf("momentum value %v, want -2.9", p.Value.Data[0])
	}
}

func TestClipGradNorm(t *testing.T) {
	p := nn.NewParam("w", true, 2)
	p.Grad.Data[0], p.Grad.Data[1] = 3, 4 // norm 5
	norm := ClipGradNorm([]*nn.Param{p}, 1)
	if math.Abs(norm-5) > 1e-12 {
		t.Fatalf("pre-clip norm %v", norm)
	}
	if math.Abs(p.Grad.Data[0]-0.6) > 1e-12 || math.Abs(p.Grad.Data[1]-0.8) > 1e-12 {
		t.Fatalf("clipped grads %v", p.Grad.Data)
	}
	// Below the threshold nothing changes.
	ClipGradNorm([]*nn.Param{p}, 10)
	if math.Abs(p.Grad.Data[0]-0.6) > 1e-12 {
		t.Fatal("clip must be a no-op under the threshold")
	}
}

func TestStepDecaySchedule(t *testing.T) {
	s := NewStepDecay(1, 10, 5, 8)
	for _, tc := range []struct {
		epoch int
		want  float64
	}{{0, 1}, {4, 1}, {5, 0.1}, {7, 0.1}, {8, 0.01}} {
		if got := s.LR(tc.epoch); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("LR(%d) = %v, want %v", tc.epoch, got, tc.want)
		}
	}
}

func TestMilestonesAt(t *testing.T) {
	ms := MilestonesAt(40, 0.6, 0.85)
	if ms[0] != 24 || ms[1] != 34 {
		t.Fatalf("milestones %v", ms)
	}
}

func TestWarmupStepDecay(t *testing.T) {
	w := NewWarmupStepDecay(NewStepDecay(1, 10, 10), 4)
	if w.LR(0) >= w.LR(3) {
		t.Fatal("warmup must ramp up")
	}
	if w.LR(5) != 1 {
		t.Fatalf("post-warmup LR %v", w.LR(5))
	}
	if w.LR(10) != 0.1 {
		t.Fatalf("post-milestone LR %v", w.LR(10))
	}
}

func TestAdaptiveDecay(t *testing.T) {
	a := NewAdaptiveDecay(20, 4)
	a.Observe(100) // first observation sets the best
	if a.LR(0) != 20 {
		t.Fatal("no decay on first observation")
	}
	a.Observe(90) // improved
	if a.LR(0) != 20 {
		t.Fatal("no decay on improvement")
	}
	a.Observe(95) // regressed → quarter
	if a.LR(0) != 5 {
		t.Fatalf("LR after stall %v, want 5", a.LR(0))
	}
}

func TestAccuracyAndPerplexity(t *testing.T) {
	logits := tensor.FromSlice([]float64{2, 1, 0, 3}, 2, 2)
	if Accuracy(logits, []int{0, 1}) != 1 {
		t.Fatal("both rows should be correct")
	}
	if Accuracy(logits, []int{1, 1}) != 0.5 {
		t.Fatal("one of two correct")
	}
	if math.Abs(Perplexity(math.Log(50))-50) > 1e-9 {
		t.Fatal("perplexity of ln(50) nats must be 50")
	}
}

func TestEvaluateAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := nn.NewSequential(nn.NewDense(4, 2, nn.Fixed(), nn.Fixed(), true, rng))
	batches := []Batch{
		{X: tensor.New(3, 4), Labels: []int{0, 1, 0}},
		{X: tensor.New(2, 4), Labels: []int{1, 1}},
	}
	res := Evaluate(model, 1, 0, batches)
	if res.N != 5 {
		t.Fatalf("evaluated %d rows, want 5", res.N)
	}
	if res.Loss <= 0 {
		t.Fatal("loss must be positive for an untrained model")
	}
	if res.ErrorRate() < 0 || res.ErrorRate() > 100 {
		t.Fatalf("error rate %v", res.ErrorRate())
	}
}

func TestInclusionCoefficient(t *testing.T) {
	a := map[int]bool{1: true, 2: true}
	b := map[int]bool{2: true, 3: true, 4: true}
	if got := InclusionCoefficient(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("inclusion %v, want 0.5 (1 of smaller set's 2)", got)
	}
	if InclusionCoefficient(map[int]bool{}, b) != 1 {
		t.Fatal("empty smaller set → coefficient 1 by convention")
	}
}

func TestWrongSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := nn.NewSequential(nn.NewDense(4, 2, nn.Fixed(), nn.Fixed(), true, rng))
	batches := []Batch{{X: tensor.New(4, 4), Labels: []int{0, 1, 0, 1}}}
	wrong := WrongSet(model, 1, 0, batches)
	// Zero input → identical logits per row → one class wins both labels.
	if len(wrong) != 2 {
		t.Fatalf("expected exactly the 2 rows of the losing class, got %d", len(wrong))
	}
}

func TestHistorySeriesAndFinal(t *testing.T) {
	h := NewHistory([]float64{0.5, 1.0})
	h.Append(EpochRecord{Epoch: 0, PerRate: []EvalResult{{Loss: 2}, {Loss: 1}}})
	h.Append(EpochRecord{Epoch: 1, PerRate: []EvalResult{{Loss: 1.5}, {Loss: 0.5}}})
	s := h.Series(1, func(e EvalResult) float64 { return e.Loss })
	if s[0] != 1 || s[1] != 0.5 {
		t.Fatalf("series %v", s)
	}
	if h.Final(0).Loss != 1.5 {
		t.Fatalf("final %v", h.Final(0))
	}
	if _, err := h.RateIndex(0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := h.RateIndex(0.75); err == nil {
		t.Fatal("expected error for untracked rate")
	}
}
