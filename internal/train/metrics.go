package train

import (
	"math"

	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
)

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	correct := 0
	for i := range labels {
		if logits.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// Perplexity converts a mean negative log-likelihood (nats) to perplexity.
func Perplexity(meanNLL float64) float64 { return math.Exp(meanNLL) }

// EvalResult aggregates evaluation over a dataset.
type EvalResult struct {
	Loss     float64 // mean cross-entropy (nats)
	Accuracy float64 // fraction correct
	N        int     // number of evaluated rows
}

// ErrorRate returns 1 − Accuracy in percent, the unit of Figures 3 and 7.
func (e EvalResult) ErrorRate() float64 { return 100 * (1 - e.Accuracy) }

// Perplexity returns exp(Loss), the language-modeling metric of Table 2.
func (e EvalResult) Perplexity() float64 { return Perplexity(e.Loss) }

// Evaluate runs the model over batches at the given slice rate/width index
// and aggregates loss and accuracy. The model must map Batch.X to rank-2
// logits whose rows align with Batch.Labels.
func Evaluate(model nn.Layer, rate float64, widthIdx int, batches []Batch) EvalResult {
	var res EvalResult
	totalLoss := 0.0
	correct := 0
	for _, b := range batches {
		ctx := &nn.Context{Training: false, Rate: rate, WidthIdx: widthIdx}
		logits := model.Forward(ctx, b.X)
		loss, _ := nn.SoftmaxCrossEntropy(logits, b.Labels)
		totalLoss += loss * float64(len(b.Labels))
		for i := range b.Labels {
			if logits.ArgMaxRow(i) == b.Labels[i] {
				correct++
			}
		}
		res.N += len(b.Labels)
	}
	if res.N > 0 {
		res.Loss = totalLoss / float64(res.N)
		res.Accuracy = float64(correct) / float64(res.N)
	}
	return res
}

// InclusionCoefficient measures, for two sets of wrongly-predicted sample
// indices, |A∩B| / min(|A|,|B|) — the fraction of errors of one model
// contained in the other's (the Figure 8 heat-map statistic).
func InclusionCoefficient(wrongA, wrongB map[int]bool) float64 {
	small, large := wrongA, wrongB
	if len(wrongB) < len(wrongA) {
		small, large = wrongB, wrongA
	}
	if len(small) == 0 {
		return 1
	}
	inter := 0
	for k := range small {
		if large[k] {
			inter++
		}
	}
	return float64(inter) / float64(len(small))
}

// WrongSet returns the set of row indices (offset by base) misclassified by
// the model over the batches at the given rate.
func WrongSet(model nn.Layer, rate float64, widthIdx int, batches []Batch) map[int]bool {
	wrong := make(map[int]bool)
	base := 0
	for _, b := range batches {
		ctx := &nn.Context{Training: false, Rate: rate, WidthIdx: widthIdx}
		logits := model.Forward(ctx, b.X)
		for i := range b.Labels {
			if logits.ArgMaxRow(i) != b.Labels[i] {
				wrong[base+i] = true
			}
		}
		base += len(b.Labels)
	}
	return wrong
}
