package train

// LRSchedule maps a zero-based epoch to a learning rate.
type LRSchedule interface {
	LR(epoch int) float64
}

// StepDecay divides the base learning rate by Gamma at each milestone epoch,
// the schedule the paper uses for CIFAR (÷10 at 50% and 75%) and ImageNet
// (÷10 at 30%, 60%, 90%).
type StepDecay struct {
	Base       float64
	Gamma      float64
	Milestones []int
}

// NewStepDecay builds a step-decay schedule; gamma is the divisor (e.g. 10).
func NewStepDecay(base, gamma float64, milestones ...int) *StepDecay {
	return &StepDecay{Base: base, Gamma: gamma, Milestones: milestones}
}

// MilestonesAt converts fractional positions (e.g. 0.5, 0.75) of a total
// epoch budget into absolute milestone epochs.
func MilestonesAt(total int, fracs ...float64) []int {
	ms := make([]int, len(fracs))
	for i, f := range fracs {
		ms[i] = int(f * float64(total))
	}
	return ms
}

// LR returns the learning rate for the given epoch.
func (s *StepDecay) LR(epoch int) float64 {
	lr := s.Base
	for _, m := range s.Milestones {
		if epoch >= m {
			lr /= s.Gamma
		}
	}
	return lr
}

// WarmupStepDecay prepends a linear warm-up over the first Warmup epochs to
// a StepDecay schedule (the paper's gradual warmup for ImageNet training).
type WarmupStepDecay struct {
	Inner  *StepDecay
	Warmup int
}

// NewWarmupStepDecay wraps a step decay with warmup epochs.
func NewWarmupStepDecay(inner *StepDecay, warmup int) *WarmupStepDecay {
	return &WarmupStepDecay{Inner: inner, Warmup: warmup}
}

// LR returns the warmed-up learning rate for the given epoch.
func (w *WarmupStepDecay) LR(epoch int) float64 {
	if epoch < w.Warmup {
		return w.Inner.Base * float64(epoch+1) / float64(w.Warmup+1)
	}
	return w.Inner.LR(epoch)
}

// AdaptiveDecay implements the NNLM schedule of the paper: the learning rate
// is divided by Factor whenever validation perplexity fails to improve.
type AdaptiveDecay struct {
	LRValue float64
	Factor  float64
	best    float64
	started bool
}

// NewAdaptiveDecay constructs the schedule (the paper quarters the rate).
func NewAdaptiveDecay(base, factor float64) *AdaptiveDecay {
	return &AdaptiveDecay{LRValue: base, Factor: factor}
}

// Observe reports a new validation metric (lower is better); the learning
// rate decays when the metric did not improve.
func (a *AdaptiveDecay) Observe(metric float64) {
	if a.started && metric >= a.best {
		a.LRValue /= a.Factor
	}
	if !a.started || metric < a.best {
		a.best = metric
	}
	a.started = true
}

// LR returns the current learning rate (the epoch argument is ignored).
func (a *AdaptiveDecay) LR(int) float64 { return a.LRValue }
