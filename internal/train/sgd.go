// Package train provides optimizers, learning-rate schedules, evaluation
// metrics and training-history recording shared by the conventional and
// model-slicing training loops.
package train

import (
	"math"

	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
)

// Batch is one mini-batch of supervised data. X is the model input (images
// [B,C,H,W] or token ids [T,B]); Labels are the target class indices aligned
// with the rows of the model's logits output.
type Batch struct {
	X      *tensor.Tensor
	Labels []int
}

// SGD is stochastic gradient descent with momentum and decoupled-style L2
// weight decay (decay added to the gradient, the classic formulation used by
// the paper's training recipes).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	// Nesterov enables Nesterov momentum.
	Nesterov bool

	vel map[*nn.Param]*tensor.Tensor
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		vel: make(map[*nn.Param]*tensor.Tensor)}
}

// Step applies one update to every parameter from its accumulated gradient
// and zeroes the gradients.
func (s *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		g := p.Grad
		if s.WeightDecay != 0 && p.Decay {
			g.AddScaled(s.WeightDecay, p.Value)
		}
		if s.Momentum != 0 {
			v, ok := s.vel[p]
			if !ok {
				v = tensor.New(p.Value.Shape...)
				s.vel[p] = v
			}
			v.Scale(s.Momentum)
			v.Add(g)
			if s.Nesterov {
				// Update uses g + momentum*v.
				for i := range p.Value.Data {
					p.Value.Data[i] -= s.LR * (g.Data[i] + s.Momentum*v.Data[i])
				}
			} else {
				p.Value.AddScaled(-s.LR, v)
			}
		} else {
			p.Value.AddScaled(-s.LR, g)
		}
		p.ZeroGrad()
	}
}

// ZeroGrad clears all parameter gradients.
func ZeroGrad(params []*nn.Param) {
	for _, p := range params {
		p.ZeroGrad()
	}
}

// ClipGradNorm rescales all gradients so their global L2 norm does not
// exceed maxNorm, and returns the pre-clip norm. Standard for LSTM language
// models (the NNLM experiments).
func ClipGradNorm(params []*nn.Param, maxNorm float64) float64 {
	total := 0.0
	for _, p := range params {
		for _, v := range p.Grad.Data {
			total += v * v
		}
	}
	norm := math.Sqrt(total)
	if norm > maxNorm && norm > 0 {
		scale := maxNorm / norm
		for _, p := range params {
			p.Grad.Scale(scale)
		}
	}
	return norm
}
