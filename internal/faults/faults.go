// Package faults is a process-wide fault-injection registry: named fault
// points threaded through the serving path (scheduler, workers, calibrator,
// persist) that tests — and operators reproducing an incident — can arm
// without touching the code under test. A disarmed registry costs one atomic
// load per injection site, so the points stay compiled into production
// binaries.
//
// Points are armed programmatically (Enable, Set) or via the MS_FAULTS
// environment variable, parsed at process start:
//
//	MS_FAULTS="worker-panic=p0.1,shard-stall=first2,disk-error"
//
// The spelling is a comma-separated list of point[=mode] pairs, where mode is
// one of:
//
//	(empty) or on — fire on every call
//	pX            — fire with probability X in [0,1] (deterministic seeded rng)
//	everyN        — fire on every Nth call
//	firstN        — fire on the first N calls, then never again
//
// Fired counts are kept per point (Counts) so the server can export them as
// metrics, and a stalled injection site can be released by Disable/Reset or
// by the caller's own cancellation channel (Stall) — the two paths a watchdog
// and a test need to reclaim a deliberately wedged goroutine.
package faults

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one fault-injection site.
type Point string

// The registered fault points. Each is consulted at exactly one layer of the
// serving path; DESIGN.md §13 maps them to their blast radius.
const (
	// WorkerPanic panics inside a worker shard's compute, exercising the
	// scheduler's recover/isolation path.
	WorkerPanic Point = "worker-panic"
	// ShardStall blocks a worker shard indefinitely (until released),
	// exercising the watchdog and worker replacement.
	ShardStall Point = "shard-stall"
	// SlowCompute delays a worker shard by Delay's duration, exercising
	// backlog degradation and SLO-miss accounting without killing anything.
	SlowCompute Point = "slow-compute"
	// CalibrationSkew inflates the calibrator's observed batch times,
	// exercising policy behavior under a t(r) estimate that drifts from
	// reality.
	CalibrationSkew Point = "calibration-skew"
	// DiskError fails checkpoint saves and loads in internal/persist.
	DiskError Point = "disk-error"
	// NetDrop drops one coordinator→replica HTTP request on the floor (the
	// RoundTripper returns a connection error before any bytes move),
	// exercising the fleet's retry-on-a-different-replica path.
	NetDrop Point = "net-drop"
	// NetDelay stalls one coordinator→replica HTTP request by
	// NetDelayDuration before it is sent, exercising the hedging path and
	// tail-latency accounting.
	NetDelay Point = "net-delay"
	// ReplicaDown fails coordinator→replica requests as if the replica's
	// host were unreachable, exercising health-check ejection and rejoin.
	// Fleet tests usually target one replica through
	// fleet.Transport.SetDown instead of arming this process-wide.
	ReplicaDown Point = "replica-down"
)

// Points lists every registered fault point, in a stable order.
func Points() []Point {
	return []Point{WorkerPanic, ShardStall, SlowCompute, CalibrationSkew, DiskError,
		NetDrop, NetDelay, ReplicaDown}
}

// SlowComputeDelay is how long an injected slow-compute fault delays a shard.
// Set it before arming the point; it is read without synchronization.
var SlowComputeDelay = 10 * time.Millisecond

// NetDelayDuration is how long an injected net-delay fault stalls a request.
// Set it before arming the point; it is read without synchronization.
var NetDelayDuration = 5 * time.Millisecond

// mode is one point's firing rule.
type mode struct {
	kind byte // 0 disarmed, 'a' always, 'p' probability, 'e' every-N, 'f' first-N
	p    float64
	n    int64
}

// state is one point's armed mode plus its lifetime counters. Counters
// survive Disable so /metrics can report what fired even after a test or an
// operator turned the point off; Reset clears everything.
type state struct {
	mode    mode
	calls   int64 // calls since the point was last armed
	fired   int64
	release chan struct{} // closed on Disable/Reset, freeing stalled sites
}

var (
	mu    sync.Mutex
	armed atomic.Int32 // armed points; the zero fast path keeps sites free
	table = map[Point]*state{}
	rng   = rand.New(rand.NewSource(1))
)

func init() {
	if v := os.Getenv("MS_FAULTS"); v != "" {
		if err := Set(v); err != nil {
			fmt.Fprintf(os.Stderr, "faults: ignoring MS_FAULTS: %v\n", err)
		}
	}
}

// valid reports whether p names a registered point.
func valid(p Point) bool {
	for _, q := range Points() {
		if p == q {
			return true
		}
	}
	return false
}

// parseMode parses the mode half of a point=mode pair.
func parseMode(s string) (mode, error) {
	switch {
	case s == "" || s == "on":
		return mode{kind: 'a'}, nil
	case strings.HasPrefix(s, "p"):
		p, err := strconv.ParseFloat(s[1:], 64)
		if err != nil || p < 0 || p > 1 {
			return mode{}, fmt.Errorf("bad probability %q", s)
		}
		return mode{kind: 'p', p: p}, nil
	case strings.HasPrefix(s, "every"):
		n, err := strconv.ParseInt(s[len("every"):], 10, 64)
		if err != nil || n <= 0 {
			return mode{}, fmt.Errorf("bad period %q", s)
		}
		return mode{kind: 'e', n: n}, nil
	case strings.HasPrefix(s, "first"):
		n, err := strconv.ParseInt(s[len("first"):], 10, 64)
		if err != nil || n <= 0 {
			return mode{}, fmt.Errorf("bad count %q", s)
		}
		return mode{kind: 'f', n: n}, nil
	default:
		return mode{}, fmt.Errorf("unknown mode %q (want on, pX, everyN or firstN)", s)
	}
}

// Enable arms one point with the given mode spelling ("" means always).
func Enable(p Point, modeSpec string) error {
	if !valid(p) {
		return fmt.Errorf("faults: unknown point %q", p)
	}
	m, err := parseMode(modeSpec)
	if err != nil {
		return fmt.Errorf("faults: %s: %w", p, err)
	}
	mu.Lock()
	defer mu.Unlock()
	st := table[p]
	if st == nil {
		st = &state{}
		table[p] = st
	}
	if st.mode.kind == 0 {
		armed.Add(1)
	} else if st.release != nil {
		close(st.release) // re-arming releases anyone stalled on the old arming
	}
	st.mode = m
	st.calls = 0
	st.release = make(chan struct{})
	return nil
}

// Disable disarms one point and releases any goroutine stalled on it. Fired
// counts are preserved.
func Disable(p Point) {
	mu.Lock()
	defer mu.Unlock()
	st := table[p]
	if st == nil || st.mode.kind == 0 {
		return
	}
	st.mode = mode{}
	armed.Add(-1)
	if st.release != nil {
		close(st.release)
		st.release = nil
	}
}

// Reset disarms every point, releases all stalled goroutines, and clears the
// fired counters — the clean slate a test starts from.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for _, st := range table {
		if st.mode.kind != 0 {
			armed.Add(-1)
		}
		if st.release != nil {
			close(st.release)
		}
	}
	table = map[Point]*state{}
	rng = rand.New(rand.NewSource(1))
}

// Set replaces the whole registry configuration with one MS_FAULTS spelling.
// Counters are cleared; an empty spec disarms everything.
func Set(spec string) error {
	Reset()
	if strings.TrimSpace(spec) == "" {
		return nil
	}
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, modeSpec, _ := strings.Cut(pair, "=")
		if err := Enable(Point(strings.TrimSpace(name)), strings.TrimSpace(modeSpec)); err != nil {
			return err
		}
	}
	return nil
}

// Active reports whether a point is armed, without consuming a firing.
func Active(p Point) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	st := table[p]
	return st != nil && st.mode.kind != 0
}

// Should rolls one firing decision for the point and counts it when it fires.
// The disarmed fast path is a single atomic load.
func Should(p Point) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	st := table[p]
	if st == nil || st.mode.kind == 0 {
		return false
	}
	st.calls++
	fire := false
	switch st.mode.kind {
	case 'a':
		fire = true
	case 'p':
		fire = rng.Float64() < st.mode.p
	case 'e':
		fire = st.calls%st.mode.n == 0
	case 'f':
		fire = st.calls <= st.mode.n
	}
	if fire {
		st.fired++
	}
	return fire
}

// ErrOn returns an injected error when the point fires, nil otherwise — the
// one-liner for sites that fail with an error rather than a panic or a stall.
func ErrOn(p Point) error {
	if Should(p) {
		return fmt.Errorf("faults: injected %s", p)
	}
	return nil
}

// Delay returns how long the site should sleep when the point fires
// (NetDelayDuration for net-delay, SlowComputeDelay otherwise), zero when it
// does not. The site owns the actual sleep so it can use its own clock.
func Delay(p Point) time.Duration {
	if !Should(p) {
		return 0
	}
	if p == NetDelay {
		return NetDelayDuration
	}
	return SlowComputeDelay
}

// Stall blocks when the point fires, until the point is disarmed
// (Disable/Reset) or the caller's cancel channel closes — whichever comes
// first — and reports whether it stalled at all. A nil cancel means only
// disarming releases the site.
func Stall(p Point, cancel <-chan struct{}) bool {
	if !Should(p) {
		return false
	}
	mu.Lock()
	rel := table[p].release
	mu.Unlock()
	select {
	case <-rel:
	case <-cancel:
	}
	return true
}

// Fired returns how many times the point has fired since the last Reset.
func Fired(p Point) int64 {
	mu.Lock()
	defer mu.Unlock()
	if st := table[p]; st != nil {
		return st.fired
	}
	return 0
}

// Counts snapshots the fired counters of every point that has ever been
// armed since the last Reset.
func Counts() map[Point]int64 {
	mu.Lock()
	defer mu.Unlock()
	out := make(map[Point]int64, len(table))
	for p, st := range table {
		out[p] = st.fired
	}
	return out
}

// Summary renders the armed points for a startup banner; empty when the
// registry is disarmed.
func Summary() string {
	mu.Lock()
	defer mu.Unlock()
	var parts []string
	for p, st := range table {
		if st.mode.kind == 0 {
			continue
		}
		switch st.mode.kind {
		case 'a':
			parts = append(parts, string(p))
		case 'p':
			parts = append(parts, fmt.Sprintf("%s=p%g", p, st.mode.p))
		case 'e':
			parts = append(parts, fmt.Sprintf("%s=every%d", p, st.mode.n))
		case 'f':
			parts = append(parts, fmt.Sprintf("%s=first%d", p, st.mode.n))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
