package faults

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSetSpellingAndModes(t *testing.T) {
	defer Reset()
	if err := Set("worker-panic=first2,shard-stall=every3,disk-error"); err != nil {
		t.Fatal(err)
	}
	// first2: exactly the first two calls fire.
	got := []bool{Should(WorkerPanic), Should(WorkerPanic), Should(WorkerPanic)}
	if !got[0] || !got[1] || got[2] {
		t.Fatalf("first2 fired %v, want true,true,false", got)
	}
	if n := Fired(WorkerPanic); n != 2 {
		t.Fatalf("fired count %d, want 2", n)
	}
	// every3: calls 3, 6, ... fire.
	var fires []int
	for i := 1; i <= 7; i++ {
		if Should(ShardStall) {
			fires = append(fires, i)
		}
	}
	if len(fires) != 2 || fires[0] != 3 || fires[1] != 6 {
		t.Fatalf("every3 fired at %v, want [3 6]", fires)
	}
	// bare point: always.
	for i := 0; i < 3; i++ {
		if !Should(DiskError) {
			t.Fatal("always-mode point did not fire")
		}
	}
	if !Active(DiskError) || Active(CalibrationSkew) {
		t.Fatal("Active does not reflect the armed set")
	}
	if s := Summary(); !strings.Contains(s, "disk-error") || !strings.Contains(s, "worker-panic=first2") {
		t.Fatalf("summary %q missing armed points", s)
	}
}

func TestSetRejectsBadSpellings(t *testing.T) {
	defer Reset()
	for _, spec := range []string{
		"no-such-point",
		"worker-panic=p1.5",
		"worker-panic=every0",
		"worker-panic=sometimes",
	} {
		if err := Set(spec); err == nil {
			t.Fatalf("Set(%q) accepted", spec)
		}
	}
	// A rejected Set must leave the registry disarmed.
	if Should(WorkerPanic) {
		t.Fatal("failed Set left a point armed")
	}
}

func TestProbabilityModeIsDeterministicAcrossResets(t *testing.T) {
	defer Reset()
	roll := func() []bool {
		if err := Set("slow-compute=p0.5"); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 32)
		for i := range out {
			out[i] = Should(SlowCompute)
		}
		return out
	}
	a, b := roll(), roll()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("p-mode diverged at call %d across identical Set sequences", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("p0.5 fired %d/%d times; the mode is degenerate", fired, len(a))
	}
}

func TestDisarmedFastPathCostsNothingAndFiresNothing(t *testing.T) {
	Reset()
	for _, p := range Points() {
		if Should(p) || Active(p) {
			t.Fatalf("disarmed point %s fired", p)
		}
	}
	if err := ErrOn(DiskError); err != nil {
		t.Fatalf("disarmed ErrOn returned %v", err)
	}
	if d := Delay(SlowCompute); d != 0 {
		t.Fatalf("disarmed Delay returned %v", d)
	}
	if Stall(ShardStall, nil) {
		t.Fatal("disarmed Stall blocked")
	}
}

func TestStallReleasedByDisable(t *testing.T) {
	defer Reset()
	if err := Enable(ShardStall, ""); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	stalled := make(chan struct{})
	go func() {
		defer wg.Done()
		close(stalled)
		if !Stall(ShardStall, nil) {
			t.Error("armed Stall did not stall")
		}
	}()
	<-stalled
	time.Sleep(5 * time.Millisecond) // let the goroutine reach the select
	Disable(ShardStall)
	wg.Wait() // hangs here if Disable does not release the stall
}

func TestStallReleasedByCancel(t *testing.T) {
	defer Reset()
	if err := Enable(ShardStall, ""); err != nil {
		t.Fatal(err)
	}
	cancel := make(chan struct{})
	done := make(chan struct{})
	go func() {
		Stall(ShardStall, cancel)
		close(done)
	}()
	close(cancel)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled Stall did not return")
	}
}

func TestCountsSurviveDisable(t *testing.T) {
	defer Reset()
	if err := Enable(WorkerPanic, "first1"); err != nil {
		t.Fatal(err)
	}
	Should(WorkerPanic)
	Disable(WorkerPanic)
	if c := Counts(); c[WorkerPanic] != 1 {
		t.Fatalf("counts after disable %v, want worker-panic=1", c)
	}
	Reset()
	if c := Counts(); len(c) != 0 {
		t.Fatalf("counts after reset %v, want empty", c)
	}
}

// The fleet transport points arm through the same MS_FAULTS spelling as the
// engine points, and net-delay resolves to its own tunable duration.
func TestNetworkFaultPointsSpelling(t *testing.T) {
	defer Reset()
	if err := Set("net-drop=on,net-delay=on,replica-down=on"); err != nil {
		t.Fatal(err)
	}
	for _, p := range []Point{NetDrop, NetDelay, ReplicaDown} {
		if !Active(p) || !Should(p) {
			t.Fatalf("point %s did not arm", p)
		}
	}
	if d := Delay(NetDelay); d != NetDelayDuration {
		t.Fatalf("Delay(NetDelay) = %v, want NetDelayDuration %v", d, NetDelayDuration)
	}
}
