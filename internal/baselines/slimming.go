package baselines

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"modelslicing/internal/nn"
)

// This file implements Network-Slimming-style width compression (Liu et al.,
// 2017), the "ResNet with Width Compression" baseline of Figure 2: train
// with an L1 penalty on the normalization scale factors γ, prune the
// channels with the smallest |γ|, then fine-tune. Pruning is exact for
// BatchNorm models (each channel is normalized independently), so the
// slimming baselines are built with models.NormBatch.

// L1GammaPenalty adds λ·sign(γ) to the gradient of every normalization
// scale parameter in the layer tree — the sparsity-inducing term of network
// slimming. Call between Backward and the optimizer step.
func L1GammaPenalty(layer nn.Layer, lambda float64) {
	switch l := layer.(type) {
	case *nn.Sequential:
		for _, inner := range l.Layers {
			L1GammaPenalty(inner, lambda)
		}
	case *nn.Residual:
		L1GammaPenalty(l.Body, lambda)
		if l.Short != nil {
			L1GammaPenalty(l.Short, lambda)
		}
	case *nn.BatchNorm:
		addSign(l.Gamma, lambda)
	case *nn.GroupNorm:
		addSign(l.Gamma, lambda)
	case *nn.SwitchableBatchNorm:
		for _, b := range l.BNs {
			addSign(b.Gamma, lambda)
		}
	}
}

func addSign(p *nn.Param, lambda float64) {
	for i, v := range p.Value.Data {
		switch {
		case v > 0:
			p.Grad.Data[i] += lambda
		case v < 0:
			p.Grad.Data[i] -= lambda
		}
	}
}

// topChannels returns the indices (ascending) of the keep·n channels with
// the largest |γ|, keeping at least one.
func topChannels(gamma []float64, keepFrac float64) []int {
	n := len(gamma)
	keep := int(math.Round(keepFrac * float64(n)))
	if keep < 1 {
		keep = 1
	}
	if keep > n {
		keep = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(gamma[idx[a]]) > math.Abs(gamma[idx[b]])
	})
	kept := append([]int(nil), idx[:keep]...)
	sort.Ints(kept)
	return kept
}

// gatherConv builds a convolution whose output channels are outIdx and input
// channels inIdx of the source (nil index slices mean "all channels").
func gatherConv(src *nn.Conv2D, inIdx, outIdx []int, rng *rand.Rand) *nn.Conv2D {
	if inIdx == nil {
		inIdx = allIdx(src.In)
	}
	if outIdx == nil {
		outIdx = allIdx(src.Out)
	}
	dst := nn.NewConv2D(len(inIdx), len(outIdx), src.KH, src.KW, src.Stride, src.Pad,
		nn.Fixed(), nn.Fixed(), src.B != nil, rng)
	kk := src.KH * src.KW
	for o, so := range outIdx {
		srcRow := src.W.Value.Row(so)
		dstRow := dst.W.Value.Row(o)
		for i, si := range inIdx {
			copy(dstRow[i*kk:(i+1)*kk], srcRow[si*kk:(si+1)*kk])
		}
		if src.B != nil {
			dst.B.Value.Data[o] = src.B.Value.Data[so]
		}
	}
	return dst
}

// gatherBN builds a BatchNorm restricted to the kept channels, preserving
// affine parameters and running statistics (pruning is exact).
func gatherBN(src *nn.BatchNorm, idx []int) *nn.BatchNorm {
	dst := nn.NewBatchNorm(len(idx), nn.Fixed())
	dst.Eps, dst.Momentum = src.Eps, src.Momentum
	for i, si := range idx {
		dst.Gamma.Value.Data[i] = src.Gamma.Value.Data[si]
		dst.Beta.Value.Data[i] = src.Beta.Value.Data[si]
		dst.RunMean.Data[i] = src.RunMean.Data[si]
		dst.RunVar.Data[i] = src.RunVar.Data[si]
	}
	return dst
}

func allIdx(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// PruneVGG compresses a trained VGG-style chain (Conv2D → BatchNorm → ReLU
// [→ MaxPool], ending GlobalAvgPool → Dense) to keepFrac of each layer's
// channels, ranked by |γ|. The returned network requires fine-tuning to
// recover accuracy, as in the original method.
func PruneVGG(model *nn.Sequential, keepFrac float64, rng *rand.Rand) *nn.Sequential {
	out := &nn.Sequential{}
	var keepIn []int // nil = network input (all channels)
	i := 0
	for i < len(model.Layers) {
		switch l := model.Layers[i].(type) {
		case *nn.Conv2D:
			bn, ok := model.Layers[i+1].(*nn.BatchNorm)
			if !ok {
				panic(fmt.Sprintf("baselines: PruneVGG expects BatchNorm after conv at layer %d, found %T (build the model with models.NormBatch)", i, model.Layers[i+1]))
			}
			keepOut := topChannels(bn.Gamma.Value.Data, keepFrac)
			out.Layers = append(out.Layers,
				gatherConv(l, keepIn, keepOut, rng),
				gatherBN(bn, keepOut),
			)
			keepIn = keepOut
			i += 2
		case *nn.Dense:
			// Classifier: gather input features (post global-avg-pool the
			// feature index equals the channel index).
			idx := keepIn
			if idx == nil {
				idx = allIdx(l.In)
			}
			d := nn.NewDense(len(idx), l.Out, nn.Fixed(), nn.Fixed(), l.B != nil, rng)
			for o := 0; o < l.Out; o++ {
				for j, sj := range idx {
					d.W.Value.Set(l.W.Value.At(o, sj), o, j)
				}
				if l.B != nil {
					d.B.Value.Data[o] = l.B.Value.Data[o]
				}
			}
			out.Layers = append(out.Layers, d)
			i++
		case *nn.ReLU:
			out.Layers = append(out.Layers, nn.NewReLU())
			i++
		case *nn.MaxPool2D:
			out.Layers = append(out.Layers, nn.NewMaxPool2D(l.K, l.Stride))
			i++
		case *nn.GlobalAvgPool:
			out.Layers = append(out.Layers, nn.NewGlobalAvgPool())
			i++
		case *nn.Flatten:
			panic("baselines: PruneVGG supports global-average-pool heads only")
		default:
			panic(fmt.Sprintf("baselines: PruneVGG cannot handle layer %T", l))
		}
	}
	return out
}

// PruneResNet compresses a trained pre-activation bottleneck ResNet by
// pruning the two internal bottleneck dimensions of every block (the
// channels whose removal does not disturb the residual identity paths),
// ranked by the |γ| of the normalization layer that consumes them. Stem,
// block inputs/outputs, shortcuts and the classifier are preserved.
func PruneResNet(model *nn.Sequential, keepFrac float64, rng *rand.Rand) *nn.Sequential {
	out := &nn.Sequential{}
	for _, layer := range model.Layers {
		res, ok := layer.(*nn.Residual)
		if !ok {
			out.Layers = append(out.Layers, layer)
			continue
		}
		body, ok := res.Body.(*nn.Sequential)
		if !ok || len(body.Layers) != 9 {
			out.Layers = append(out.Layers, layer)
			continue
		}
		// Pattern: [norm, relu, conv1, norm, relu, conv3, norm, relu, conv1].
		conv1, ok1 := body.Layers[2].(*nn.Conv2D)
		bn1, okb1 := body.Layers[3].(*nn.BatchNorm)
		conv3, ok3 := body.Layers[5].(*nn.Conv2D)
		bn2, okb2 := body.Layers[6].(*nn.BatchNorm)
		convL, okL := body.Layers[8].(*nn.Conv2D)
		if !(ok1 && okb1 && ok3 && okb2 && okL) {
			panic("baselines: PruneResNet expects pre-act bottleneck blocks with BatchNorm (build with models.NormBatch)")
		}
		k1 := topChannels(bn1.Gamma.Value.Data, keepFrac)
		k2 := topChannels(bn2.Gamma.Value.Data, keepFrac)
		newBody := nn.NewSequential(
			body.Layers[0], // input norm unchanged
			nn.NewReLU(),
			gatherConv(conv1, nil, k1, rng),
			gatherBN(bn1, k1),
			nn.NewReLU(),
			func() nn.Layer {
				c := gatherConv(conv3, k1, k2, rng)
				return c
			}(),
			gatherBN(bn2, k2),
			nn.NewReLU(),
			gatherConv(convL, k2, nil, rng),
		)
		out.Layers = append(out.Layers, nn.NewResidual(newBody, res.Short))
	}
	return out
}
