package baselines

import (
	"math/rand"

	"modelslicing/internal/cost"
	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
	"modelslicing/internal/train"
)

// SkipNetLite reproduces the accuracy–cost behaviour of SkipNet-style
// dynamic block routing (Wang et al., 2018) without reinforcement learning:
// identity-shortcut residual blocks are trained with stochastic depth
// (random block dropping), which makes the network robust to skipping
// blocks at inference; blocks are then ranked by their measured residual
// contribution and the least important ones are skipped to meet a budget.
// DESIGN.md documents this substitution (the paper's gating network is
// replaced by contribution-ranked static routing, which exercises the same
// skip-blocks-at-inference code path and produces the same kind of
// accuracy-vs-FLOPs curve).
type SkipNetLite struct {
	Net *nn.Sequential
	// gates index the skippable (identity-shortcut) residual layers.
	gates []*GatedResidual
}

// GatedResidual wraps an identity-shortcut residual block with a training
// drop probability and an inference skip switch.
type GatedResidual struct {
	Inner *nn.Residual
	// DropProb is the stochastic-depth drop probability during training.
	DropProb float64
	// Skip bypasses the block at inference.
	Skip bool

	dropped bool
	// contribution accumulates ‖body(x)‖/‖x‖ measurements (importance).
	contribution float64
	measures     int
}

// Forward bypasses the body when dropped (training) or skipped (inference).
func (g *GatedResidual) Forward(ctx *nn.Context, x *tensor.Tensor) *tensor.Tensor {
	if ctx.Training {
		g.dropped = g.DropProb > 0 && ctx.RNG != nil && ctx.RNG.Float64() < g.DropProb
	} else {
		g.dropped = g.Skip
	}
	if g.dropped {
		return x
	}
	return g.Inner.Forward(ctx, x)
}

// Backward is the identity for dropped blocks.
func (g *GatedResidual) Backward(ctx *nn.Context, dy *tensor.Tensor) *tensor.Tensor {
	if g.dropped {
		return dy
	}
	return g.Inner.Backward(ctx, dy)
}

// Params returns the wrapped block's parameters.
func (g *GatedResidual) Params() []*nn.Param { return g.Inner.Params() }

// NewSkipNetLite wraps every identity-shortcut residual block of a ResNet
// built by models.NewResNet with a stochastic-depth gate.
func NewSkipNetLite(net *nn.Sequential, dropProb float64) *SkipNetLite {
	s := &SkipNetLite{Net: &nn.Sequential{}}
	for _, l := range net.Layers {
		if res, ok := l.(*nn.Residual); ok && res.Short == nil {
			g := &GatedResidual{Inner: res, DropProb: dropProb}
			s.gates = append(s.gates, g)
			s.Net.Layers = append(s.Net.Layers, g)
			continue
		}
		s.Net.Layers = append(s.Net.Layers, l)
	}
	return s
}

// NumSkippable returns the number of gated blocks.
func (s *SkipNetLite) NumSkippable() int { return len(s.gates) }

// Forward delegates to the wrapped network.
func (s *SkipNetLite) Forward(ctx *nn.Context, x *tensor.Tensor) *tensor.Tensor {
	return s.Net.Forward(ctx, x)
}

// Backward delegates to the wrapped network.
func (s *SkipNetLite) Backward(ctx *nn.Context, dy *tensor.Tensor) *tensor.Tensor {
	return s.Net.Backward(ctx, dy)
}

// Params delegates to the wrapped network.
func (s *SkipNetLite) Params() []*nn.Param { return s.Net.Params() }

// MeasureContributions estimates each gated block's importance as the mean
// ratio ‖body(x)‖₂/‖x‖₂ over the given batches (full network, no skips).
func (s *SkipNetLite) MeasureContributions(batches []train.Batch) {
	for _, g := range s.gates {
		g.Skip = false
		g.contribution = 0
		g.measures = 0
	}
	for _, b := range batches {
		x := b.X
		for _, l := range s.Net.Layers {
			if g, ok := l.(*GatedResidual); ok {
				y := g.Inner.Body.Forward(nn.Eval(1), x)
				xn := x.L2Norm()
				if xn > 0 {
					g.contribution += y.L2Norm() / xn
				}
				g.measures++
				y.Add(x) // identity shortcut
				x = y
				continue
			}
			x = l.Forward(nn.Eval(1), x)
		}
	}
}

// SkipLowest skips the k gated blocks with the smallest measured
// contribution (call MeasureContributions first) and returns their indices.
func (s *SkipNetLite) SkipLowest(k int) []int {
	type scored struct {
		idx int
		c   float64
	}
	order := make([]scored, len(s.gates))
	for i, g := range s.gates {
		c := g.contribution
		if g.measures > 0 {
			c /= float64(g.measures)
		}
		order[i] = scored{i, c}
		g.Skip = false
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if order[j].c < order[i].c {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	var skipped []int
	for i := 0; i < k && i < len(order); i++ {
		s.gates[order[i].idx].Skip = true
		skipped = append(skipped, order[i].idx)
	}
	return skipped
}

// CurrentCost returns the inference MACs of the network with the current
// skip configuration for the given single-sample input shape.
func (s *SkipNetLite) CurrentCost(inShape []int) int64 {
	var total int64
	shape := inShape
	for _, l := range s.Net.Layers {
		if g, ok := l.(*GatedResidual); ok {
			if g.Skip {
				continue // identity: no MACs, shape unchanged
			}
			p, out := cost.Measure(g.Inner, shape, 1)
			total += p.MACs
			shape = out
			continue
		}
		p, out := cost.Measure(l, shape, 1)
		total += p.MACs
		shape = out
	}
	return total
}

// Ensemble is a set of independently trained fixed-width models with their
// costs — the "ensemble of varying width/depth" baselines. Members must be
// appended in ascending cost order.
type Ensemble struct {
	Members []EnsembleMember
}

// EnsembleMember couples a model with its cost and identity.
type EnsembleMember struct {
	Name  string
	Model nn.Layer
	MACs  int64
	// Params is the full parameter count (storage footprint term of
	// Table 5's comparison).
	Params int64
}

// Add appends a member (enforcing ascending MACs).
func (e *Ensemble) Add(m EnsembleMember) {
	if len(e.Members) > 0 && m.MACs < e.Members[len(e.Members)-1].MACs {
		panic("baselines: ensemble members must be added in ascending cost order")
	}
	e.Members = append(e.Members, m)
}

// Best returns the most expensive member within the MAC budget, falling back
// to the cheapest member.
func (e *Ensemble) Best(budget int64) EnsembleMember {
	best := e.Members[0]
	for _, m := range e.Members {
		if m.MACs <= budget {
			best = m
		}
	}
	return best
}

// TotalParams sums the storage footprint of all members — the deployment
// cost an ensemble pays that a sliced model does not (Section 5.4).
func (e *Ensemble) TotalParams() int64 {
	var t int64
	for _, m := range e.Members {
		t += m.Params
	}
	return t
}

// TrainFixed trains a conventional fixed-width model for the given epochs —
// the per-member training routine of the ensemble baselines.
func TrainFixed(model nn.Layer, batchesPerEpoch func(epoch int) []train.Batch, opt *train.SGD,
	sched train.LRSchedule, epochs int, rng *rand.Rand) {
	for e := 0; e < epochs; e++ {
		opt.LR = sched.LR(e)
		for _, b := range batchesPerEpoch(e) {
			ctx := &nn.Context{Training: true, Rate: 1, RNG: rng}
			logits := model.Forward(ctx, b.X)
			_, dy := nn.SoftmaxCrossEntropy(logits, b.Labels)
			model.Backward(ctx, dy)
			opt.Step(model.Params())
		}
	}
}
