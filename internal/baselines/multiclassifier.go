// Package baselines implements the comparison systems of the paper's
// evaluation: multi-classifier early-exit networks (the depth-slicing proxy
// for MSDNet/ANN-style anytime prediction), Network-Slimming-style channel
// pruning, a SkipNet-like dynamic block-routing network, and fixed-width
// ensemble utilities. The SlimmableNet baseline needs no code of its own —
// it is models.NormSwitchable plus the slicing.Static scheduler.
package baselines

import (
	"fmt"
	"math/rand"

	"modelslicing/internal/cost"
	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
	"modelslicing/internal/train"
)

// MultiClassifier attaches auxiliary classification heads to intermediate
// depths of a backbone ("ResNet with Multi-Classifiers" in Figure 2): an
// early exit at head k uses only the backbone prefix up to tap k. This is
// the depth-slicing counterpart the paper contrasts with width slicing.
type MultiClassifier struct {
	Backbone *nn.Sequential
	// Taps are ascending backbone layer indices; head i reads the output of
	// Backbone.Layers[:Taps[i]]. The final tap is typically the last
	// feature layer.
	Taps  []int
	Heads []nn.Layer
	// Weights are the per-head loss weights for joint training (defaults to
	// uniform when nil).
	Weights []float64
}

// NewMultiClassifierCNN builds a multi-classifier over a CNN backbone whose
// tap outputs are [B, C, H, W]; each head is global-avg-pool → dense.
// tapChannels gives the channel count at each tap.
func NewMultiClassifierCNN(backbone *nn.Sequential, taps []int, tapChannels []int, classes int, rng *rand.Rand) *MultiClassifier {
	if len(taps) != len(tapChannels) {
		panic(fmt.Sprintf("baselines: %d taps but %d channel counts", len(taps), len(tapChannels)))
	}
	m := &MultiClassifier{Backbone: backbone, Taps: taps}
	for _, c := range tapChannels {
		m.Heads = append(m.Heads, nn.NewSequential(
			nn.NewGlobalAvgPool(),
			nn.NewDense(c, classes, nn.Fixed(), nn.Fixed(), true, rng),
		))
	}
	return m
}

// NumExits returns the number of early-exit points.
func (m *MultiClassifier) NumExits() int { return len(m.Heads) }

// ForwardExit computes the logits of exit k (0-based): backbone prefix up to
// tap k, then head k.
func (m *MultiClassifier) ForwardExit(ctx *nn.Context, x *tensor.Tensor, k int) *tensor.Tensor {
	h := m.Backbone.ForwardPrefix(ctx, x, m.Taps[k])
	return m.Heads[k].Forward(ctx, h)
}

// ExitModel returns a Layer view of exit k for evaluation helpers.
func (m *MultiClassifier) ExitModel(k int) nn.Layer { return &exitView{m: m, k: k} }

type exitView struct {
	m *MultiClassifier
	k int
}

func (e *exitView) Forward(ctx *nn.Context, x *tensor.Tensor) *tensor.Tensor {
	return e.m.ForwardExit(ctx, x, e.k)
}

func (e *exitView) Backward(ctx *nn.Context, dy *tensor.Tensor) *tensor.Tensor {
	panic("baselines: exit views are inference-only; use TrainStep")
}

func (e *exitView) Params() []*nn.Param { return nil }

// ExitCost returns the inference MACs of exit k for the given single-sample
// input shape.
func (m *MultiClassifier) ExitCost(k int, inShape []int) int64 {
	var p cost.Profile
	prefix := &nn.Sequential{Layers: m.Backbone.Layers[:m.Taps[k]]}
	pp, out := cost.Measure(prefix, inShape, 1)
	p.Add(pp)
	hp, _ := cost.Measure(m.Heads[k], out, 1)
	p.Add(hp)
	return p.MACs
}

// TrainStep performs one joint training step: a single forward through the
// backbone with per-head losses, gradients accumulated backwards so every
// backbone layer is traversed exactly once, then an optimizer update.
// It returns the per-head losses.
func (m *MultiClassifier) TrainStep(ctx *nn.Context, b train.Batch, opt *train.SGD) []float64 {
	k := len(m.Heads)
	losses := make([]float64, k)
	headGrads := make([]*tensor.Tensor, k)
	// Forward through backbone segments, branching into each head.
	h := b.X
	prev := 0
	for i := 0; i < k; i++ {
		for _, l := range m.Backbone.Layers[prev:m.Taps[i]] {
			h = l.Forward(ctx, h)
		}
		prev = m.Taps[i]
		logits := m.Heads[i].Forward(ctx, h)
		loss, dy := nn.SoftmaxCrossEntropy(logits, b.Labels)
		w := 1.0 / float64(k)
		if m.Weights != nil {
			w = m.Weights[i]
		}
		losses[i] = loss
		dy.Scale(w)
		headGrads[i] = m.Heads[i].Backward(ctx, dy)
	}
	// Backward through the segments in reverse, summing head gradients.
	g := headGrads[k-1]
	for i := k - 2; i >= 0; i-- {
		g = m.Backbone.BackwardRange(ctx, g, m.Taps[i], m.Taps[i+1])
		g.Add(headGrads[i])
	}
	m.Backbone.BackwardRange(ctx, g, 0, m.Taps[0])
	opt.Step(m.Params())
	return losses
}

// Params returns backbone plus head parameters.
func (m *MultiClassifier) Params() []*nn.Param {
	ps := m.Backbone.Params()
	for _, h := range m.Heads {
		ps = append(ps, h.Params()...)
	}
	return ps
}

// EvaluateExits evaluates every exit over the batches (full width) and
// returns per-exit results.
func (m *MultiClassifier) EvaluateExits(batches []train.Batch) []train.EvalResult {
	out := make([]train.EvalResult, m.NumExits())
	for k := range m.Heads {
		out[k] = train.Evaluate(m.ExitModel(k), 1, 0, batches)
	}
	return out
}
