package baselines

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/cost"
	"modelslicing/internal/data"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/train"
)

func tinyImages() *data.Images {
	cfg := data.CIFARLike(80, 40)
	cfg.H, cfg.W = 8, 8
	cfg.Classes = 4
	cfg.Noise = 0.4
	cfg.SharedWeight = 0.4
	return data.GenerateImages(cfg)
}

func tinyVGG(norm models.Norm, rng *rand.Rand) (*nn.Sequential, []int, models.VGGConfig) {
	cfg := models.VGGConfig{
		Name: "tiny", InChannels: 3, InputHW: 8,
		StageWidths: []int{8, 8}, StageBlocks: []int{1, 1},
		PoolAfter: []bool{true, false},
		Classes:   4, Groups: 4, Norm: norm, NumWidths: 1,
	}
	m, taps := models.NewVGG(cfg, rng)
	return m, taps, cfg
}

func TestMultiClassifierTrainsAndEvaluates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := tinyImages()
	backbone, taps, cfg := tinyVGG(models.NormGroup, rng)
	mc := NewMultiClassifierCNN(backbone, taps, cfg.StageWidths, cfg.Classes, rng)
	if mc.NumExits() != 2 {
		t.Fatalf("exits %d", mc.NumExits())
	}
	opt := train.NewSGD(0.05, 0.9, 1e-4)
	var first, last []float64
	for epoch := 0; epoch < 8; epoch++ {
		for _, b := range d.TrainBatches(16, false, rng) {
			ctx := &nn.Context{Training: true, Rate: 1, RNG: rng}
			losses := mc.TrainStep(ctx, b, opt)
			if first == nil {
				first = append([]float64(nil), losses...)
			}
			last = losses
		}
	}
	for k := range last {
		if last[k] >= first[k] {
			t.Fatalf("exit %d loss did not decrease: %.3f → %.3f", k, first[k], last[k])
		}
	}
	res := mc.EvaluateExits(d.TestBatches(16))
	if len(res) != 2 || res[0].N == 0 {
		t.Fatalf("exit evaluation %+v", res)
	}
	// Later exits must cost more.
	in := []int{3, 8, 8}
	if mc.ExitCost(1, in) <= mc.ExitCost(0, in) {
		t.Fatal("exit costs must increase with depth")
	}
}

func TestMultiClassifierParamsIncludeHeads(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	backbone, taps, cfg := tinyVGG(models.NormGroup, rng)
	nBackbone := len(backbone.Params())
	mc := NewMultiClassifierCNN(backbone, taps, cfg.StageWidths, cfg.Classes, rng)
	if len(mc.Params()) != nBackbone+4 {
		t.Fatalf("params %d, want backbone %d + 2 heads × (W,b)", len(mc.Params()), nBackbone)
	}
}

func TestPruneVGGIdentityAtFullKeep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, _, _ := tinyVGG(models.NormBatch, rng)
	// Run one training batch so BN has non-trivial running stats.
	d := tinyImages()
	b := d.TrainBatches(16, false, rng)[0]
	ctx := &nn.Context{Training: true, Rate: 1, RNG: rng}
	logits := m.Forward(ctx, b.X)
	_, dy := nn.SoftmaxCrossEntropy(logits, b.Labels)
	m.Backward(ctx, dy)

	pruned := PruneVGG(m, 1.0, rng)
	x := d.TestBatches(8)[0].X
	want := m.Forward(nn.Eval(1), x)
	got := pruned.Forward(nn.Eval(1), x)
	for i := range want.Data {
		if math.Abs(want.Data[i]-got.Data[i]) > 1e-10 {
			t.Fatal("keepFrac=1 pruning must be the identity")
		}
	}
}

func TestPruneVGGReducesParamsAndRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, _, _ := tinyVGG(models.NormBatch, rng)
	pruned := PruneVGG(m, 0.5, rng)
	in := []int{3, 8, 8}
	pf, _ := cost.Measure(m, in, 1)
	pp, _ := cost.Measure(pruned, in, 1)
	if pp.Params >= pf.Params || pp.MACs >= pf.MACs {
		t.Fatalf("pruned %d params / %d MACs not smaller than %d / %d",
			pp.Params, pp.MACs, pf.Params, pf.MACs)
	}
	d := tinyImages()
	y := pruned.Forward(nn.Eval(1), d.TestBatches(4)[0].X)
	if y.Dim(1) != 4 || !y.AllFinite() {
		t.Fatalf("pruned output %v", y.Shape)
	}
}

func TestPruneVGGRejectsGroupNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m, _, _ := tinyVGG(models.NormGroup, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-BatchNorm model")
		}
	}()
	PruneVGG(m, 0.5, rng)
}

func TestL1GammaPenaltyDrivesSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, _, _ := tinyVGG(models.NormBatch, rng)
	d := tinyImages()
	opt := train.NewSGD(0.05, 0.9, 0)
	sumAbsGamma := func() float64 {
		s := 0.0
		for _, p := range m.Params() {
			if p.Name == "bn.gamma" {
				for _, v := range p.Value.Data {
					s += math.Abs(v)
				}
			}
		}
		return s
	}
	before := sumAbsGamma()
	for epoch := 0; epoch < 4; epoch++ {
		for _, b := range d.TrainBatches(16, false, rng) {
			ctx := &nn.Context{Training: true, Rate: 1, RNG: rng}
			logits := m.Forward(ctx, b.X)
			_, dy := nn.SoftmaxCrossEntropy(logits, b.Labels)
			m.Backward(ctx, dy)
			L1GammaPenalty(m, 0.01)
			opt.Step(m.Params())
		}
	}
	after := sumAbsGamma()
	if after >= before {
		t.Fatalf("L1 penalty should shrink Σ|γ|: %.3f → %.3f", before, after)
	}
}

func TestPruneResNetIdentityAtFullKeepAndShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := models.ResNetMini(4, models.NormBatch, 1)
	m, _ := models.NewResNet(cfg, rng)
	d := tinyImages()
	// One training pass to populate BN statistics.
	b := d.TrainBatches(16, false, rng)[0]
	ctx := &nn.Context{Training: true, Rate: 1, RNG: rng}
	logits := m.Forward(ctx, b.X)
	if logits.Dim(1) != 10 {
		t.Fatalf("resnet logits %v", logits.Shape)
	}
	_, dy := nn.SoftmaxCrossEntropy(logits, b.Labels)
	m.Backward(ctx, dy)

	x := d.TestBatches(4)[0].X
	same := PruneResNet(m, 1.0, rng)
	want := m.Forward(nn.Eval(1), x)
	got := same.Forward(nn.Eval(1), x)
	for i := range want.Data {
		if math.Abs(want.Data[i]-got.Data[i]) > 1e-10 {
			t.Fatal("keepFrac=1 ResNet pruning must be the identity")
		}
	}
	pruned := PruneResNet(m, 0.5, rng)
	in := []int{3, 8, 8}
	pf, _ := cost.Measure(m, in, 1)
	pp, _ := cost.Measure(pruned, in, 1)
	if pp.MACs >= pf.MACs {
		t.Fatal("mid-channel pruning must reduce MACs")
	}
	y := pruned.Forward(nn.Eval(1), x)
	if !y.AllFinite() {
		t.Fatal("pruned ResNet output not finite")
	}
}

func TestSkipNetLiteSkipsAndCosts(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := models.ResNetMini(4, models.NormGroup, 1)
	m, _ := models.NewResNet(cfg, rng)
	s := NewSkipNetLite(m, 0.2)
	if s.NumSkippable() != 3 {
		// 2 blocks per stage; the first block of each stage has a
		// projection shortcut → 1 skippable per stage.
		t.Fatalf("skippable %d, want 3", s.NumSkippable())
	}
	d := tinyImages()
	in := []int{3, 8, 8}
	full := s.CurrentCost(in)
	s.MeasureContributions(d.TestBatches(16))
	skipped := s.SkipLowest(2)
	if len(skipped) != 2 {
		t.Fatalf("skipped %v", skipped)
	}
	reduced := s.CurrentCost(in)
	if reduced >= full {
		t.Fatalf("skipping must reduce cost: %d → %d", full, reduced)
	}
	y := s.Forward(nn.Eval(1), d.TestBatches(4)[0].X)
	if y.Dim(1) != 10 || !y.AllFinite() {
		t.Fatalf("skip-forward output %v", y.Shape)
	}
}

func TestSkipNetStochasticDepthDuringTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	cfg := models.ResNetMini(4, models.NormGroup, 1)
	m, _ := models.NewResNet(cfg, rng)
	s := NewSkipNetLite(m, 0.5)
	d := tinyImages()
	b := d.TrainBatches(8, false, rng)[0]
	drops := 0
	for i := 0; i < 50; i++ {
		ctx := &nn.Context{Training: true, Rate: 1, RNG: rng}
		s.Forward(ctx, b.X)
		for _, g := range s.gates {
			if g.dropped {
				drops++
			}
		}
	}
	// 3 gates × 50 passes × p=0.5 ≈ 75 expected drops.
	if drops < 40 || drops > 110 {
		t.Fatalf("stochastic depth dropped %d times, want ≈75", drops)
	}
}

func TestEnsembleSelection(t *testing.T) {
	e := &Ensemble{}
	e.Add(EnsembleMember{Name: "s", MACs: 100, Params: 10})
	e.Add(EnsembleMember{Name: "m", MACs: 400, Params: 40})
	e.Add(EnsembleMember{Name: "l", MACs: 1600, Params: 160})
	if e.Best(500).Name != "m" {
		t.Fatalf("Best(500) = %s", e.Best(500).Name)
	}
	if e.Best(50).Name != "s" {
		t.Fatal("must fall back to cheapest")
	}
	if e.Best(1e9).Name != "l" {
		t.Fatal("must pick largest within budget")
	}
	if e.TotalParams() != 210 {
		t.Fatalf("total params %d", e.TotalParams())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-order member")
		}
	}()
	e.Add(EnsembleMember{Name: "bad", MACs: 1})
}

func TestTrainFixedLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := tinyImages()
	m, _, _ := tinyVGG(models.NormGroup, rng)
	opt := train.NewSGD(0.05, 0.9, 1e-4)
	sched := train.NewStepDecay(0.05, 10, 12, 18)
	TrainFixed(m, func(int) []train.Batch { return d.TrainBatches(16, false, rng) },
		opt, sched, 22, rng)
	res := train.Evaluate(m, 1, 0, d.TestBatches(16))
	if res.Accuracy < 0.5 {
		t.Fatalf("fixed training reached only %.3f accuracy", res.Accuracy)
	}
}
