// Package obs is the serving observability layer: lock-light latency
// histograms with log-spaced fixed buckets, a zero-alloc per-query span
// tracer with a sampled Chrome trace_event sink, and a fixed-size flight
// recorder for window scheduling decisions. It is a leaf package (stdlib
// only) so both the clock-free simulation in internal/serving and the live
// server in internal/server can write the same record types — lockstep tests
// diff explanations, not just outcomes.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram bucket layout: upper bounds 1µs·2^(i/histSubdiv) for
// i = 0..histFinite-1 (about ±9% relative resolution per bucket, topping out
// near 34 s), plus one overflow bucket. The layout is fixed at compile time
// so Observe is a constant-time atomic increment — no locks, no allocation —
// and any two histograms (live server, simulation, different processes) are
// directly comparable bucket by bucket.
const (
	histSubdiv  = 4
	histOctaves = 25
	histFinite  = histOctaves*histSubdiv + 1
	// expoStride thins the Prometheus exposition to octave bounds (1µs, 2µs,
	// 4µs, ...) — cumulative counts lose nothing, the text just stays short.
	expoStride = histSubdiv
)

// boundNs[i] is the inclusive upper bound of finite bucket i, in nanoseconds.
var boundNs = func() [histFinite]int64 {
	var b [histFinite]int64
	for i := range b {
		b[i] = int64(math.Ceil(1000 * math.Pow(2, float64(i)/histSubdiv)))
	}
	return b
}()

// BucketBounds returns the finite bucket upper bounds in seconds, smallest
// first — the `le` values of the Prometheus exposition before thinning.
func BucketBounds() []float64 {
	out := make([]float64, histFinite)
	for i, ns := range boundNs {
		out[i] = float64(ns) / 1e9
	}
	return out
}

// bucketIdx maps a duration to its bucket: the smallest i with
// ns ≤ boundNs[i], or histFinite for the overflow bucket. The float log only
// seeds the answer; the boundary itself is settled by integer comparison, so
// an observation exactly on a bound always lands in that bound's bucket.
func bucketIdx(ns int64) int {
	if ns <= boundNs[0] {
		return 0
	}
	if ns > boundNs[histFinite-1] {
		return histFinite
	}
	i := int(math.Log2(float64(ns)/1000) * histSubdiv)
	if i < 0 {
		i = 0
	} else if i >= histFinite {
		i = histFinite - 1
	}
	for i < histFinite-1 && ns > boundNs[i] {
		i++
	}
	for i > 0 && ns <= boundNs[i-1] {
		i--
	}
	return i
}

// Histogram is a fixed-bucket log-spaced latency histogram. Observe is
// goroutine-safe, allocation-free and lock-free; Snapshot is the cold read
// side. The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sumNs   atomic.Int64
	buckets [histFinite + 1]atomic.Int64
}

// Observe folds one latency into the histogram. Negative durations clamp to
// zero (a settle stamped by a coarse clock can tie with its compute stamp).
func (h *Histogram) Observe(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
	h.buckets[bucketIdx(ns)].Add(1)
}

// Snapshot copies the counters out for reporting. Concurrent Observes may
// land between bucket reads; totals are eventually consistent, which is all
// a monitoring read needs.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Count:   h.count.Load(),
		Sum:     time.Duration(h.sumNs.Load()),
		Buckets: make([]int64, histFinite+1),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram: per-bucket counts
// (finite buckets first, overflow last), total count and summed latency.
type HistSnapshot struct {
	Count   int64
	Sum     time.Duration
	Buckets []int64
}

// Quantile returns the q-quantile (0 < q ≤ 1) as the upper bound of the
// bucket holding that rank — a conservative estimate within one bucket
// width (~19%) of the true value. Zero when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count <= 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, n := range s.Buckets {
		cum += n
		if cum >= rank {
			if i >= histFinite {
				return time.Duration(boundNs[histFinite-1])
			}
			return time.Duration(boundNs[i])
		}
	}
	return time.Duration(boundNs[histFinite-1])
}

// Mean returns the exact mean latency (the sum is tracked outside the
// buckets). Zero when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count <= 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// CumulativeAt returns the number of observations ≤ the finite bucket bound
// at index i (the cumulative count Prometheus `_bucket` series carry).
func (s HistSnapshot) CumulativeAt(i int) int64 {
	cum := int64(0)
	for j := 0; j <= i && j < len(s.Buckets); j++ {
		cum += s.Buckets[j]
	}
	return cum
}

// ExpositionBounds returns the thinned bound indices used for Prometheus
// text exposition: every octave bound plus the top finite bucket.
func ExpositionBounds() []int {
	var idx []int
	for i := 0; i < histFinite; i += expoStride {
		idx = append(idx, i)
	}
	if idx[len(idx)-1] != histFinite-1 {
		idx = append(idx, histFinite-1)
	}
	return idx
}
