package obs

import (
	"fmt"
	"strconv"
)

// LabeledHist pairs one histogram snapshot with its label pair text (empty
// for an unlabeled series), for Prometheus text exposition.
type LabeledHist struct {
	Labels string
	Hist   HistSnapshot
}

// PromHistogram renders one Prometheus histogram family: cumulative _bucket
// series at the thinned (octave) bound set plus +Inf, then _sum and _count,
// for each labeled series. An empty series list emits nothing. Shared by the
// single-node /metrics endpoint and the fleet coordinator's, so the two
// expositions cannot drift in layout.
func PromHistogram(b []byte, name, help string, series []LabeledHist) []byte {
	if len(series) == 0 {
		return b
	}
	b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)...)
	bounds := BucketBounds()
	idxs := ExpositionBounds()
	withLe := func(labels, le string) string {
		if labels == "" {
			return fmt.Sprintf(`{le=%q}`, le)
		}
		return fmt.Sprintf(`{%s,le=%q}`, labels, le)
	}
	for _, sh := range series {
		for _, i := range idxs {
			le := strconv.FormatFloat(bounds[i], 'g', -1, 64)
			b = append(b, fmt.Sprintf("%s_bucket%s %d\n", name, withLe(sh.Labels, le), sh.Hist.CumulativeAt(i))...)
		}
		b = append(b, fmt.Sprintf("%s_bucket%s %d\n", name, withLe(sh.Labels, "+Inf"), sh.Hist.Count)...)
		suffix := ""
		if sh.Labels != "" {
			suffix = "{" + sh.Labels + "}"
		}
		b = append(b, fmt.Sprintf("%s_sum%s %g\n", name, suffix, sh.Hist.Sum.Seconds())...)
		b = append(b, fmt.Sprintf("%s_count%s %d\n", name, suffix, sh.Hist.Count)...)
	}
	return b
}
