package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span stages. A query's life is stamped at five points — submission,
// window close, shard compute start, compute end, reply — which bound four
// stages:
//
//	queue    submission → window close   (waiting for the T/2 batch to form)
//	dispatch window close → compute start (shard-queue wait in the scheduler)
//	compute  compute start → compute end  (inference on a worker)
//	settle   compute end → reply          (window settle and channel delivery)
const (
	StageQueue = iota
	StageDispatch
	StageCompute
	StageSettle
	NumStages
)

// StageNames are the stage label values, indexed by the Stage constants.
var StageNames = [NumStages]string{"queue", "dispatch", "compute", "settle"}

// TraceEntry is one sampled query span: all five stamps as nanosecond
// offsets from the tracer's base time, plus identity. Fixed-size so the
// sampling ring never allocates.
type TraceEntry struct {
	Seq     uint64  // query sequence number (all queries, sampled or not)
	Window  int64   // scheduling window the query was batched into
	Rate    float64 // slice rate the window was served at
	Enqueue int64   // stamps: ns offsets from the tracer base
	Close   int64
	Start   int64
	End     int64
	Settle  int64
}

// Tracer aggregates per-query spans into per-stage and per-rate latency
// histograms, and keeps a sampled ring of full spans for timeline dumps.
// Observe is the hot path: allocation-free, atomics only, except that every
// sampleEvery-th query takes a short mutex to copy its span into the ring.
type Tracer struct {
	base        time.Time
	rates       []float64
	stage       [NumStages]Histogram
	total       Histogram
	perRate     []Histogram
	sampleEvery uint64
	seq         atomic.Uint64

	mu     sync.Mutex
	ring   []TraceEntry
	next   int
	filled int
}

// NewTracer builds a tracer over the deployable rates. base anchors the
// trace timeline (pass the server's start instant so offsets line up with
// the policy time axis). sampleEvery ≤ 0 disables the trace ring; 1 records
// every query. ringSize ≤ 0 gets a default of 256 entries.
func NewTracer(rates []float64, base time.Time, sampleEvery, ringSize int) *Tracer {
	if ringSize <= 0 {
		ringSize = 256
	}
	t := &Tracer{
		base:    base,
		rates:   append([]float64(nil), rates...),
		perRate: make([]Histogram, len(rates)),
	}
	if sampleEvery > 0 {
		t.sampleEvery = uint64(sampleEvery)
		t.ring = make([]TraceEntry, ringSize)
	}
	return t
}

// rateIdx maps a rate to its histogram slot; the rate list is small, so a
// linear scan beats any allocation-bearing map on the hot path.
func (t *Tracer) rateIdx(r float64) int {
	for i, v := range t.rates {
		if v == r {
			return i
		}
	}
	return -1
}

// Observe folds one completed query span into the histograms and, on
// sampled queries, the trace ring. Safe for concurrent use; zero
// allocations.
func (t *Tracer) Observe(rate float64, window int64, enq, close, start, end, settle time.Time) {
	t.stage[StageQueue].Observe(close.Sub(enq))
	t.stage[StageDispatch].Observe(start.Sub(close))
	t.stage[StageCompute].Observe(end.Sub(start))
	t.stage[StageSettle].Observe(settle.Sub(end))
	t.total.Observe(settle.Sub(enq))
	if i := t.rateIdx(rate); i >= 0 {
		t.perRate[i].Observe(settle.Sub(enq))
	}
	seq := t.seq.Add(1) - 1
	if t.sampleEvery == 0 || seq%t.sampleEvery != 0 {
		return
	}
	t.mu.Lock()
	e := &t.ring[t.next]
	e.Seq = seq
	e.Window = window
	e.Rate = rate
	e.Enqueue = enq.Sub(t.base).Nanoseconds()
	e.Close = close.Sub(t.base).Nanoseconds()
	e.Start = start.Sub(t.base).Nanoseconds()
	e.End = end.Sub(t.base).Nanoseconds()
	e.Settle = settle.Sub(t.base).Nanoseconds()
	t.next = (t.next + 1) % len(t.ring)
	if t.filled < len(t.ring) {
		t.filled++
	}
	t.mu.Unlock()
}

// Queries returns the number of spans observed so far.
func (t *Tracer) Queries() int64 { return int64(t.seq.Load()) }

// Total snapshots the all-queries latency histogram.
func (t *Tracer) Total() HistSnapshot { return t.total.Snapshot() }

// Stage snapshots one stage histogram by Stage constant.
func (t *Tracer) Stage(i int) HistSnapshot { return t.stage[i].Snapshot() }

// Rates returns the tracer's rate list (ascending, as configured).
func (t *Tracer) Rates() []float64 { return t.rates }

// Rate snapshots the total-latency histogram of one rate; ok is false for a
// rate outside the configured list.
func (t *Tracer) Rate(r float64) (HistSnapshot, bool) {
	i := t.rateIdx(r)
	if i < 0 {
		return HistSnapshot{}, false
	}
	return t.perRate[i].Snapshot(), true
}

// SampledSpans copies the trace ring out, oldest first.
func (t *Tracer) SampledSpans() []TraceEntry {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEntry, 0, t.filled)
	start := 0
	if t.filled == len(t.ring) {
		start = t.next
	}
	for i := 0; i < t.filled; i++ {
		out = append(out, t.ring[(start+i)%max(len(t.ring), 1)])
	}
	return out
}

// WriteTraceEvents dumps the sampled spans as a Chrome trace_event JSON
// array (load it in chrome://tracing or Perfetto): one complete ("X") event
// per stage per sampled query, with the query as the thread so its stages
// stack on one timeline row. Timestamps are microseconds from the tracer
// base.
func (t *Tracer) WriteTraceEvents(w io.Writer) error {
	spans := t.SampledSpans()
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	first := true
	emit := func(name string, e TraceEntry, fromNs, toNs int64) error {
		if toNs < fromNs {
			toNs = fromNs
		}
		sep := ",\n"
		if first {
			sep, first = "", false
		}
		_, err := fmt.Fprintf(w,
			`%s{"name":%q,"ph":"X","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"window":%d,"rate":%g}}`,
			sep, name, e.Seq, float64(fromNs)/1e3, float64(toNs-fromNs)/1e3, e.Window, e.Rate)
		return err
	}
	for _, e := range spans {
		stamps := [NumStages + 1]int64{e.Enqueue, e.Close, e.Start, e.End, e.Settle}
		for s := 0; s < NumStages; s++ {
			if err := emit(StageNames[s], e, stamps[s], stamps[s+1]); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]\n")
	return err
}
