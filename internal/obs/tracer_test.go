package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// stamps builds a plausible five-point span: enqueue at off, window close
// +5ms, compute start +1ms, compute +20ms, settle +0.5ms.
func stamps(base time.Time, off time.Duration) (enq, cls, start, end, settle time.Time) {
	enq = base.Add(off)
	cls = enq.Add(5 * time.Millisecond)
	start = cls.Add(1 * time.Millisecond)
	end = start.Add(20 * time.Millisecond)
	settle = end.Add(500 * time.Microsecond)
	return
}

func TestTracerStageHistograms(t *testing.T) {
	base := time.Unix(0, 0)
	tr := NewTracer([]float64{0.5, 1.0}, base, 1, 8)
	for i := 0; i < 10; i++ {
		enq, cls, start, end, settle := stamps(base, time.Duration(i)*time.Second)
		tr.Observe(1.0, int64(i), enq, cls, start, end, settle)
	}
	if got := tr.Queries(); got != 10 {
		t.Fatalf("Queries = %d, want 10", got)
	}
	for s := 0; s < NumStages; s++ {
		if got := tr.Stage(s).Count; got != 10 {
			t.Errorf("stage %q count = %d, want 10", StageNames[s], got)
		}
	}
	total := tr.Total()
	if total.Count != 10 {
		t.Fatalf("total count = %d", total.Count)
	}
	wantSpan := 26*time.Millisecond + 500*time.Microsecond
	if m := total.Mean(); m != wantSpan {
		t.Errorf("total mean = %v, want %v", m, wantSpan)
	}
	// Per-rate: all traffic went to rate 1.0.
	if s, ok := tr.Rate(1.0); !ok || s.Count != 10 {
		t.Errorf("Rate(1.0) = count %d ok=%v, want 10 true", s.Count, ok)
	}
	if s, ok := tr.Rate(0.5); !ok || s.Count != 0 {
		t.Errorf("Rate(0.5) = count %d ok=%v, want 0 true", s.Count, ok)
	}
	if _, ok := tr.Rate(0.77); ok {
		t.Error("Rate(0.77) reported ok for an unconfigured rate")
	}
}

func TestTracerRingWraparound(t *testing.T) {
	base := time.Unix(0, 0)
	tr := NewTracer([]float64{1.0}, base, 1, 4)
	for i := 0; i < 10; i++ {
		enq, cls, start, end, settle := stamps(base, time.Duration(i)*time.Second)
		tr.Observe(1.0, int64(i), enq, cls, start, end, settle)
	}
	spans := tr.SampledSpans()
	if len(spans) != 4 {
		t.Fatalf("SampledSpans keeps %d, want ring size 4", len(spans))
	}
	for i, e := range spans {
		if want := uint64(6 + i); e.Seq != want {
			t.Errorf("spans[%d].Seq = %d, want %d (newest four, oldest first)", i, e.Seq, want)
		}
	}
}

func TestTracerSamplingAndDisable(t *testing.T) {
	base := time.Unix(0, 0)
	tr := NewTracer([]float64{1.0}, base, 4, 16)
	for i := 0; i < 16; i++ {
		enq, cls, start, end, settle := stamps(base, time.Duration(i)*time.Second)
		tr.Observe(1.0, int64(i), enq, cls, start, end, settle)
	}
	if got := len(tr.SampledSpans()); got != 4 {
		t.Errorf("sampleEvery=4 kept %d of 16 spans, want 4", got)
	}
	off := NewTracer([]float64{1.0}, base, 0, 16)
	enq, cls, start, end, settle := stamps(base, 0)
	off.Observe(1.0, 0, enq, cls, start, end, settle)
	if got := len(off.SampledSpans()); got != 0 {
		t.Errorf("sampleEvery=0 recorded %d spans, want ring disabled", got)
	}
	if off.Total().Count != 1 {
		t.Error("disabling the ring must not disable the histograms")
	}
}

func TestWriteTraceEventsValidJSON(t *testing.T) {
	base := time.Unix(0, 0)
	tr := NewTracer([]float64{1.0}, base, 1, 8)
	for i := 0; i < 3; i++ {
		enq, cls, start, end, settle := stamps(base, time.Duration(i)*time.Second)
		tr.Observe(1.0, int64(i), enq, cls, start, end, settle)
	}
	var buf bytes.Buffer
	if err := tr.WriteTraceEvents(&buf); err != nil {
		t.Fatal(err)
	}
	var events []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Pid  int     `json:"pid"`
		Tid  uint64  `json:"tid"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
		Args struct {
			Window int64   `json:"window"`
			Rate   float64 `json:"rate"`
		} `json:"args"`
	}
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 3*NumStages {
		t.Fatalf("got %d events, want %d (one per stage per span)", len(events), 3*NumStages)
	}
	for _, e := range events {
		if e.Ph != "X" {
			t.Errorf("event %q phase = %q, want complete event X", e.Name, e.Ph)
		}
		if e.Dur < 0 {
			t.Errorf("event %q has negative duration %f", e.Name, e.Dur)
		}
	}
	// First span's queue stage: 5ms starting at ts 0.
	if events[0].Name != "queue" || events[0].Ts != 0 || events[0].Dur != 5000 {
		t.Errorf("first event = %+v, want queue ts=0 dur=5000µs", events[0])
	}
}

// The whole Observe path — four stage histograms, total, per-rate, plus the
// sampled ring write — must be allocation-free, even at sampleEvery=1 where
// every query takes the ring mutex. Guarded in CI by the short-mode
// ZeroAlloc run.
func TestTracerObserveZeroAlloc(t *testing.T) {
	base := time.Unix(0, 0)
	tr := NewTracer([]float64{0.25, 0.5, 1.0}, base, 1, 64)
	enq, cls, start, end, settle := stamps(base, 0)
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Observe(1.0, 7, enq, cls, start, end, settle)
	})
	if allocs != 0 {
		t.Fatalf("Tracer.Observe allocates %.1f per op, want 0", allocs)
	}
}
