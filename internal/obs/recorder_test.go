package obs

import (
	"sync"
	"testing"
)

func rec(window int64, closeT, completion float64) DecisionRecord {
	return DecisionRecord{
		Window:     window,
		Time:       closeT,
		Completion: completion,
		Reason:     "ok",
	}
}

func TestRecorderWraparound(t *testing.T) {
	r := NewRecorder(4)
	for i := int64(0); i < 10; i++ {
		r.Record(rec(i, float64(i), float64(i)))
	}
	if got := r.Total(); got != 10 {
		t.Fatalf("Total = %d, want 10", got)
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("Snapshot keeps %d records, want ring size 4", len(snap))
	}
	for i, rc := range snap {
		if want := int64(6 + i); rc.Window != want {
			t.Errorf("snap[%d].Window = %d, want %d (newest four, oldest first)", i, rc.Window, want)
		}
	}
	last := r.Last(2)
	if len(last) != 2 || last[0].Window != 8 || last[1].Window != 9 {
		t.Errorf("Last(2) = %+v, want windows 8,9", last)
	}
	if got := r.Last(100); len(got) != 4 {
		t.Errorf("Last(100) returns %d records, want the 4 retained", len(got))
	}
}

// Depth is derived from the ring (windows whose estimated completion
// outlasts this close), so two recorders of equal size fed the same
// decisions agree exactly — the property the lockstep test leans on.
func TestRecorderDepthDeterministic(t *testing.T) {
	a, b := NewRecorder(8), NewRecorder(8)
	// Window closes at 1,2,3..., work runs long: completions at close+2.5,
	// so each window sees the previous two still in flight.
	var fromA []DecisionRecord
	for i := int64(0); i < 6; i++ {
		closeT := float64(i + 1)
		fromA = append(fromA, a.Record(rec(i, closeT, closeT+2.5)))
		b.Record(rec(i, closeT, closeT+2.5))
	}
	wantDepth := []int{1, 2, 3, 3, 3, 3}
	for i, rc := range fromA {
		if rc.Depth != wantDepth[i] {
			t.Errorf("window %d Depth = %d, want %d", i, rc.Depth, wantDepth[i])
		}
	}
	snapA, snapB := a.Snapshot(), b.Snapshot()
	for i := range snapA {
		if snapA[i] != snapB[i] {
			t.Errorf("recorders diverge at %d: %+v vs %+v", i, snapA[i], snapB[i])
		}
	}
}

func TestRecorderEmptyAndDefaults(t *testing.T) {
	r := NewRecorder(0)
	if got := len(r.Snapshot()); got != 0 {
		t.Errorf("empty Snapshot returned %d records", got)
	}
	if got := len(r.Last(5)); got != 0 {
		t.Errorf("empty Last(5) returned %d records", got)
	}
	r.Record(rec(0, 1, 1))
	if got := len(r.Snapshot()); got != 1 {
		t.Errorf("Snapshot after one record = %d entries", got)
	}
}

// Concurrent writers and readers must be safe (run under -race in CI). The
// live server records from the ticker goroutine while HTTP handlers snapshot.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(rec(int64(g*200+i), float64(i), float64(i)+1.5))
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				_ = r.Snapshot()
				_ = r.Last(3)
			}
		}()
	}
	wg.Wait()
	if got := r.Total(); got != 800 {
		t.Fatalf("Total = %d, want 800", got)
	}
	if got := len(r.Snapshot()); got != 16 {
		t.Fatalf("Snapshot keeps %d, want ring size 16", got)
	}
}
