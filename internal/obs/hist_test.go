package obs

import (
	"math"
	"testing"
	"time"
)

// Every bound must land in its own bucket (bounds are inclusive upper
// bounds), and one nanosecond past a bound must land in the next — the
// float-log seed never gets to move a boundary.
func TestBucketIdxBoundaries(t *testing.T) {
	for i := 0; i < histFinite; i++ {
		if got := bucketIdx(boundNs[i]); got != i {
			t.Errorf("bucketIdx(boundNs[%d]=%d) = %d, want %d", i, boundNs[i], got, i)
		}
		want := i + 1 // next finite bucket, or the overflow bucket at the top
		if got := bucketIdx(boundNs[i] + 1); got != want {
			t.Errorf("bucketIdx(boundNs[%d]+1) = %d, want %d", i, got, want)
		}
	}
	if got := bucketIdx(0); got != 0 {
		t.Errorf("bucketIdx(0) = %d, want 0", got)
	}
	if got := bucketIdx(1); got != 0 {
		t.Errorf("bucketIdx(1) = %d, want 0", got)
	}
}

// Exhaustively check monotone bucket assignment against the definition
// (smallest i with ns ≤ boundNs[i]) on a log sweep of the full range.
func TestBucketIdxMatchesDefinition(t *testing.T) {
	ref := func(ns int64) int {
		for i := 0; i < histFinite; i++ {
			if ns <= boundNs[i] {
				return i
			}
		}
		return histFinite
	}
	for f := 1.0; f < 2e14; f *= 1.01 {
		ns := int64(f)
		if got, want := bucketIdx(ns), ref(ns); got != want {
			t.Fatalf("bucketIdx(%d) = %d, want %d", ns, got, want)
		}
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	var h Histogram
	// 100 observations at 1ms, 10 at 100ms: p50 near 1ms, p99 near 100ms.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 110 {
		t.Fatalf("Count = %d, want 110", s.Count)
	}
	if p50 := s.Quantile(0.5); p50 < time.Millisecond || p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	if p99 := s.Quantile(0.99); p99 < 100*time.Millisecond || p99 > 200*time.Millisecond {
		t.Errorf("p99 = %v, want ~100ms", p99)
	}
	wantMean := (100*time.Millisecond.Nanoseconds() + 10*(100*time.Millisecond).Nanoseconds()) / 110
	if m := s.Mean(); m != time.Duration(wantMean) {
		t.Errorf("Mean = %v, want %v", m, time.Duration(wantMean))
	}
	// Quantile is conservative: the reported bound is ≥ the true value and
	// within one bucket width (2^(1/histSubdiv)).
	if p50 := s.Quantile(0.5); float64(p50) > float64(time.Millisecond)*math.Pow(2, 1.0/histSubdiv)+1 {
		t.Errorf("p50 = %v overshoots the bucket-width bound", p50)
	}
}

func TestHistogramOverflowAndClamp(t *testing.T) {
	var h Histogram
	h.Observe(time.Hour) // way past the top finite bound
	h.Observe(-time.Second)
	s := h.Snapshot()
	if s.Buckets[histFinite] != 1 {
		t.Errorf("overflow bucket = %d, want 1", s.Buckets[histFinite])
	}
	if s.Buckets[0] != 1 {
		t.Errorf("negative observation did not clamp to bucket 0: %d", s.Buckets[0])
	}
	// Overflow quantile saturates at the top finite bound, never invents a
	// value past the layout.
	if q := s.Quantile(1.0); q != time.Duration(boundNs[histFinite-1]) {
		t.Errorf("overflow quantile = %v, want top bound %v", q, time.Duration(boundNs[histFinite-1]))
	}
}

func TestExpositionBounds(t *testing.T) {
	idx := ExpositionBounds()
	if idx[0] != 0 {
		t.Errorf("first exposition bound index = %d, want 0", idx[0])
	}
	if idx[len(idx)-1] != histFinite-1 {
		t.Errorf("last exposition bound index = %d, want %d", idx[len(idx)-1], histFinite-1)
	}
	for i := 1; i < len(idx); i++ {
		if idx[i] <= idx[i-1] {
			t.Fatalf("exposition indices not strictly increasing at %d: %v", i, idx)
		}
	}
	bounds := BucketBounds()
	if len(bounds) != histFinite {
		t.Fatalf("BucketBounds length = %d, want %d", len(bounds), histFinite)
	}
	if bounds[0] != 1e-6 {
		t.Errorf("first bound = %g s, want 1µs", bounds[0])
	}
}

// The Observe path must stay allocation-free — it runs once per query per
// stage on the serving hot path. Guarded in CI by the short-mode ZeroAlloc
// run.
func TestHistogramObserveZeroAlloc(t *testing.T) {
	var h Histogram
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(3 * time.Millisecond)
	})
	if allocs != 0 {
		t.Fatalf("Histogram.Observe allocates %.1f per op, want 0", allocs)
	}
}
