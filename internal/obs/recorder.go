package obs

import "sync"

// DecisionRecord is one window's scheduling decision with every input that
// produced it — enough to reconstruct *why* a window was served the way it
// was, after the fact. The clock-free simulation and the live server write
// the identical type (internal/serving builds it from a serving.Decision),
// so lockstep tests can diff explanations field by field. All fields are
// comparable; two records are the same decision iff they are ==.
type DecisionRecord struct {
	// Window is the scheduling-window sequence number on the T/2 axis
	// (empty windows consume a number too, so live and simulated indices
	// line up).
	Window int64 `json:"window"`
	// Time is the window's close time on the policy axis (seconds since
	// start).
	Time float64 `json:"time"`
	// Arrivals is the batch size the decision was taken for.
	Arrivals int `json:"arrivals"`
	// Rate is the slice rate chosen; MinRate and MaxRate bound the feasible
	// set the policy chose from.
	Rate    float64 `json:"rate"`
	MinRate float64 `json:"min_rate"`
	MaxRate float64 `json:"max_rate"`
	// Feasible and Degraded mirror the serving.Decision flags.
	Feasible bool `json:"feasible"`
	Degraded bool `json:"degraded"`
	// Slack is the deadline budget the rate choice ran against
	// (deadline − now − Ahead); Ahead is the estimated in-flight work at
	// decision time.
	Slack float64 `json:"slack"`
	Ahead float64 `json:"ahead"`
	// Work, Start and Completion bound the batch's estimated execution on
	// the work-conserving timeline.
	Work       float64 `json:"work"`
	Start      float64 `json:"start"`
	Completion float64 `json:"completion"`
	// Depth is the estimated number of windows in flight including this
	// one: recorded windows whose estimated completion lies past this
	// window's close. Model-derived (not an execution observation), so the
	// simulator and the live server agree on it deterministically.
	Depth int `json:"depth"`
	// Circuit marks a window rate-pinned by an open fault circuit (live
	// server only; the simulation never trips it).
	Circuit bool `json:"circuit,omitempty"`
	// Reason explains the outcome: "ok", "circuit-pinned" (an open fault
	// circuit pinned the rate floor), "backlog-degraded" (backlog cost
	// rate), "backlog-infeasible" (backlog cost feasibility), or "overrun"
	// (the batch alone exceeds its budget at every rate).
	Reason string `json:"reason"`
}

// Recorder is a fixed-size ring of the last N decision records — the
// flight recorder consulted when a window degraded and nobody was watching.
// Record is called once per non-empty window (never per query), so a plain
// mutex is plenty; it is safe for concurrent writers and readers.
type Recorder struct {
	mu    sync.Mutex
	ring  []DecisionRecord
	next  int
	fill  int
	total int64
}

// NewRecorder builds a recorder keeping the last n decisions (default 256
// when n ≤ 0).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = 256
	}
	return &Recorder{ring: make([]DecisionRecord, n)}
}

// Record stores one decision, filling in Depth from the ring (one plus the
// recorded windows whose estimated completion outlasts this window's close),
// and returns the stored record. Depth is computed from the same ring on
// every writer, so any two recorders of equal size fed the same decisions
// produce identical records.
func (r *Recorder) Record(rec DecisionRecord) DecisionRecord {
	r.mu.Lock()
	depth := 1
	for i := 0; i < r.fill; i++ {
		if r.ring[i].Completion > rec.Time {
			depth++
		}
	}
	rec.Depth = depth
	r.ring[r.next] = rec
	r.next = (r.next + 1) % len(r.ring)
	if r.fill < len(r.ring) {
		r.fill++
	}
	r.total++
	r.mu.Unlock()
	return rec
}

// Total returns the number of decisions ever recorded (including ones the
// ring has since evicted).
func (r *Recorder) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained records, oldest first.
func (r *Recorder) Snapshot() []DecisionRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.copyLast(r.fill)
}

// Last returns the most recent min(n, retained) records, oldest first.
func (r *Recorder) Last(n int) []DecisionRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n > r.fill {
		n = r.fill
	}
	return r.copyLast(n)
}

// copyLast copies the newest n records in chronological order. Callers hold
// r.mu.
func (r *Recorder) copyLast(n int) []DecisionRecord {
	out := make([]DecisionRecord, 0, n)
	start := r.next - n
	if start < 0 {
		start += len(r.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, r.ring[(start+i)%len(r.ring)])
	}
	return out
}
