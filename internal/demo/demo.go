// Package demo trains a small sliced MLP on the repo's synthetic image task
// in about a second and measures every subnet's accuracy. It backs the
// zero-setup paths of the serving binaries (msserver -model demo,
// msserve -live), where the point is the serving behaviour, not the model:
// the accuracy spread across rates is what makes elastic-vs-fixed
// comparisons meaningful, so the task comes from internal/data, whose
// achievable accuracy grows with model capacity.
package demo

import (
	"math/rand"

	"modelslicing/internal/data"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
	"modelslicing/internal/train"
)

// Features and Classes describe the demo task: 8×8 single-channel synthetic
// images with several prototype modes per class, flattened for the MLP.
const (
	Features = 64
	Classes  = 8
)

func imageConfig() data.ImageConfig {
	return data.ImageConfig{
		Classes: Classes, Channels: 1, H: 8, W: 8, Modes: 4,
		// Tuned so the full-width subnet clearly beats the lower bound
		// without either saturating.
		Noise: 0.55, SharedWeight: 0.35,
		TrainN: 1024, TestN: 512, Seed: 4001,
	}
}

// Model is a trained sliced model with its measured per-rate quality.
type Model struct {
	Net        nn.Layer
	Rates      slicing.RateList
	InputShape []int
	// Accuracy maps each deployable rate to test accuracy.
	Accuracy map[float64]float64
	pool     []*tensor.Tensor
}

// AccuracyAt adapts the measured table to the serving packages' callback.
func (m *Model) AccuracyAt(r float64) float64 {
	return m.Accuracy[m.Rates.Nearest(r)]
}

// Sample returns a real test input for load generators and smoke queries.
func (m *Model) Sample(rng *rand.Rand) *tensor.Tensor {
	return m.pool[rng.Intn(len(m.pool))]
}

// flatten reshapes image batches to rows for the MLP.
func flatten(bs []train.Batch) []train.Batch {
	out := make([]train.Batch, len(bs))
	for i, b := range bs {
		out[i] = train.Batch{
			X:      b.X.Reshape(b.X.Dim(0), b.X.Size()/b.X.Dim(0)),
			Labels: b.Labels,
		}
	}
	return out
}

// TrainMLP trains a 64→64→64→8 sliced MLP with the r-min-max scheme for a
// few epochs and evaluates every subnet.
func TrainMLP(lb float64, granularity, epochs int, rng *rand.Rand) *Model {
	rates := slicing.NewRateList(lb, granularity)
	d := data.GenerateImages(imageConfig())
	net := models.NewMLP(Features, []int{64, 64}, Classes, granularity, rng)
	trainer := slicing.NewTrainer(net, rates, slicing.NewRMinMax(rates), train.NewSGD(0.1, 0.9, 1e-4), rng)
	for e := 0; e < epochs; e++ {
		trainer.Epoch(flatten(d.TrainBatches(32, false, rng)))
	}
	test := flatten(d.TestBatches(64))
	acc := make(map[float64]float64, len(rates))
	for i, r := range rates {
		acc[r] = train.Evaluate(net, r, i, test).Accuracy
	}
	// Pool of single-sample inputs for load generation: real test rows, so
	// served traffic looks like the task the model was trained on.
	var pool []*tensor.Tensor
	for _, b := range test {
		for i := 0; i < b.X.Dim(0); i++ {
			row := tensor.New(Features)
			copy(row.Data, b.X.Row(i))
			pool = append(pool, row)
		}
	}
	return &Model{Net: net, Rates: rates, InputShape: []int{Features}, Accuracy: acc, pool: pool}
}
