package server

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"modelslicing/internal/models"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
)

// TestServerTierConfig pins the tier knob: an explicit Config.Tier is parsed
// and applied to the shared engine before calibration, an unknown tier fails
// construction, and the snapshot reports the active tier.
func TestServerTierConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := Config{
		Model:            models.NewMLP(4, []int{8, 8}, 3, 4, rng),
		Rates:            slicing.NewRateList(0.25, 4),
		InputShape:       []int{4},
		SLO:              20 * time.Millisecond,
		CalibrationBatch: 4,
		Tier:             "fma",
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	st := s.Stats()
	if st.EngineTier != tensor.TierFMA {
		t.Fatalf("EngineTier = %v, want fma", st.EngineTier)
	}
	// Calibration ran after SetTier, so t(r) was measured on the fma engine.
	if len(st.SampleTimes) != len(cfg.Rates) {
		t.Fatalf("calibration measured %d rates, want %d", len(st.SampleTimes), len(cfg.Rates))
	}

	cfg.Tier = "bf16"
	if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), "bf16") {
		t.Fatalf("unknown tier: err = %v, want parse failure naming the tier", err)
	}
}
