// Package server is the live counterpart of internal/serving: a concurrent
// inference engine that serves real queries under a latency SLO with the
// Section 4.1 elastic-batching scheme. Queries accumulate for one T/2
// wall-clock window; when the window closes the batch is served at the
// largest slice rate the Equation-3 policy admits, by a pool of workers that
// share one read-only parent weight set (slicing.Shared): each worker runs
// the zero-copy inference path with its own activation arena, so server
// memory is O(params) + O(workers · activations) instead of the
// O(workers · rates · params) of per-worker Extract-ed replicas, and a
// shard's batch runs one batched GEMM per layer. Per-rate per-sample times
// come from an online calibrator rather than the r² idealization, admission
// control sheds load once even the lowest rate cannot save the next window,
// and everything is observable over a Prometheus-style /metrics endpoint.
//
// The scheduling decision itself lives in serving.Policy, shared with the
// clock-free simulation, so the live path and the simulated path cannot
// drift apart.
package server

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"time"

	"modelslicing/internal/nn"
	"modelslicing/internal/serving"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
)

// Errors returned by Submit.
var (
	// ErrOverloaded signals admission control: the pending queue already
	// exceeds what the lowest rate can process within the window, so
	// accepting the query could only add an SLO miss.
	ErrOverloaded = errors.New("server: overloaded, queue exceeds lower-bound capacity")
	// ErrStopped signals a query submitted during or after shutdown.
	ErrStopped = errors.New("server: stopped")
)

// Config parameterizes a live server.
type Config struct {
	// Model is the parent network trained with model slicing.
	Model nn.Layer
	// Rates are the deployable slice rates.
	Rates slicing.RateList
	// InputShape is the single-sample input shape (e.g. [16] for a
	// 16-feature MLP, [3, 32, 32] for images).
	InputShape []int
	// SLO is the latency bound T; batches form every T/2.
	SLO time.Duration
	// Workers is the number of parallel shards a batch is split across.
	// Workers share one read-only weight set (the zero-copy inference path
	// is goroutine-safe); each holds only a private activation arena.
	// Default: min(4, GOMAXPROCS).
	Workers int
	// QueueFactor scales the admission bound: submissions are rejected
	// once pending > QueueFactor·capacity(r_min). Default 1.
	QueueFactor float64
	// Headroom in (0, 1] derates the window the policy budgets against,
	// reserving slack for request intake, GC and OS jitter on saturated
	// machines (a single-core host serving its own load generator needs
	// ~0.7). Default 1: the full T/2 is spent on inference.
	Headroom float64
	// FixedRate pins the policy to a single rate when > 0 — the
	// fixed-width provisioning baseline the paper argues against.
	FixedRate float64
	// AccuracyAt maps a rate to its measured accuracy for quality
	// accounting; nil disables it.
	AccuracyAt func(r float64) float64
	// Clock supplies time; nil means the wall clock. Tests inject a
	// FakeClock to drive windows deterministically.
	Clock Clock
	// SampleTime, when non-nil, fixes t(r) instead of measuring it at
	// startup (tests and pre-profiled deployments).
	SampleTime func(r float64) float64
	// CalibrationBatch is the batch size used to measure t(r) at startup
	// (default 32); ignored when SampleTime is set.
	CalibrationBatch int
}

// Result is the answer to one query.
type Result struct {
	// Output is the model output for the sample (e.g. class logits).
	Output *tensor.Tensor
	// Rate is the slice rate the query's batch was served at.
	Rate float64
	// Latency is submission-to-completion time.
	Latency time.Duration
	// SLOMiss reports whether Latency exceeded the configured SLO.
	SLOMiss bool
}

// query is one in-flight request.
type query struct {
	x        *tensor.Tensor
	enqueued time.Time
	done     chan Result
	result   *tensor.Tensor
}

// batchJob is one closed window's worth of queries with its rate decision.
type batchJob struct {
	queries    []*query
	rate       float64
	infeasible bool
}

// worker owns one activation arena; the weights it reads are the server's
// single shared parent model. A worker processes at most one shard at a
// time, so the arena never sees concurrent use.
type worker struct {
	shared *slicing.Shared
	arena  *tensor.Arena
}

// Server is a live SLO-aware inference server.
type Server struct {
	cfg     Config
	policy  serving.Policy
	cal     *Calibrator
	shared  *slicing.Shared
	workers []*worker
	clock   Clock
	metrics *metrics
	started time.Time

	mu       sync.Mutex
	pending  []*query
	stopping bool

	dispatch chan *batchJob
	quit     chan struct{}
	doneCh   chan struct{}
	stopOnce sync.Once
}

// New validates the configuration, extracts and caches one subnet per
// (worker, rate), calibrates per-rate sample times, and starts the batching
// and dispatching goroutines. The returned server is live; release it with
// Stop.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, errors.New("server: nil model")
	}
	if err := cfg.Rates.Check(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if len(cfg.InputShape) == 0 {
		return nil, errors.New("server: empty input shape")
	}
	if cfg.SLO <= 0 {
		return nil, fmt.Errorf("server: non-positive SLO %v", cfg.SLO)
	}
	if cfg.FixedRate > 0 {
		if _, err := cfg.Rates.Index(cfg.FixedRate); err != nil {
			return nil, fmt.Errorf("server: fixed rate: %w", err)
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = min(4, runtime.GOMAXPROCS(0))
	}
	if cfg.QueueFactor <= 0 {
		cfg.QueueFactor = 1
	}
	if cfg.Headroom < 0 || cfg.Headroom > 1 {
		return nil, fmt.Errorf("server: headroom %v outside (0, 1]", cfg.Headroom)
	}
	if cfg.Headroom == 0 {
		cfg.Headroom = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}

	// Deployable rates: all of them, or just the pinned one in baseline
	// mode. Every rate is served zero-copy from one shared parent weight
	// set — the inference path never writes to the model, so the workers
	// need nothing of their own beyond an activation arena.
	deploy := cfg.Rates
	if cfg.FixedRate > 0 {
		deploy = slicing.RateList{cfg.FixedRate}
	}
	if !nn.InferSafe(cfg.Model) {
		// The Forward fallback caches layer state and would race across
		// worker shards; fail at construction like the Extract path used to.
		return nil, errors.New("server: model contains a layer without an Infer implementation; it cannot be served concurrently")
	}
	shared := slicing.NewShared(cfg.Model, cfg.Rates)
	workers := make([]*worker, cfg.Workers)
	for w := range workers {
		workers[w] = &worker{shared: shared, arena: tensor.NewArena()}
	}

	if cfg.CalibrationBatch <= 0 {
		cfg.CalibrationBatch = 32
	}

	s := &Server{
		cfg:     cfg,
		shared:  shared,
		workers: workers,
		clock:   cfg.Clock,
		metrics: newMetrics(),
		started: time.Now(),
		// A small buffer lets processing of window k overlap the collection
		// of window k+1 without unbounding memory; admission control keeps
		// the queue itself finite.
		dispatch: make(chan *batchJob, 8),
		quit:     make(chan struct{}),
		doneCh:   make(chan struct{}),
	}
	if cfg.SampleTime != nil {
		s.cal = newStaticCalibrator(deploy, cfg.SampleTime)
	} else {
		s.cal = &Calibrator{
			perSample: make(map[float64]float64),
			alpha:     ewmaAlpha,
			minN:      cfg.CalibrationBatch,
		}
		s.measureSampleTimes(deploy, cfg.CalibrationBatch)
	}
	s.policy = serving.Policy{
		Rates:      cfg.Rates,
		Window:     (cfg.SLO / 2).Seconds() * cfg.Headroom,
		SampleTime: s.cal.SampleTime,
	}
	go s.batchLoop()
	go s.dispatchLoop()
	return s, nil
}

// measureSampleTimes times each rate through the sharded worker pool — the
// same path live batches take — so t(r) reflects pool throughput, not
// single-worker serial time: one warm-up, then the best of three timed runs
// (minimum filters scheduler noise; the EWMA absorbs any residual optimism
// once real traffic flows).
func (s *Server) measureSampleTimes(deploy slicing.RateList, batchN int) {
	rng := rand.New(rand.NewSource(0))
	queries := make([]*query, batchN)
	for i := range queries {
		x := tensor.New(s.cfg.InputShape...)
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64()
		}
		queries[i] = &query{x: x}
	}
	for _, r := range deploy {
		s.runBatch(queries, r)
		best := time.Duration(math.MaxInt64)
		for i := 0; i < 3; i++ {
			start := time.Now()
			s.runBatch(queries, r)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		s.cal.set(r, best.Seconds()/float64(batchN))
	}
}

// SLO returns the configured latency bound T.
func (s *Server) SLO() time.Duration { return s.cfg.SLO }

// Calibrator exposes the live per-rate timing estimates.
func (s *Server) Calibrator() *Calibrator { return s.cal }

// minRate is the lowest deployable rate under the current mode.
func (s *Server) minRate() float64 {
	if s.cfg.FixedRate > 0 {
		return s.cfg.FixedRate
	}
	return s.cfg.Rates.Min()
}

// admissionLimit is the deepest pending queue worth accepting: beyond
// QueueFactor times the window capacity at the lowest rate, the next batch
// overruns no matter which rate the policy picks. An unbounded capacity
// (t(r_min) ≤ 0) means unbounded admission, and the float product must not
// be narrowed to int before that check — float64(MaxInt) converts to MinInt.
func (s *Server) admissionLimit() int {
	limit := s.cfg.QueueFactor * float64(s.policy.Capacity(s.minRate()))
	if limit >= float64(math.MaxInt) {
		return math.MaxInt
	}
	return max(int(limit), 1)
}

// Submit enqueues one sample for the next window. The returned channel
// receives exactly one Result. The input must match the configured
// single-sample shape exactly — element count alone is not enough (a
// [32, 3, 32] tensor is not a valid sample for a [3, 32, 32] model even
// though the sizes agree). Submissions are rejected with ErrOverloaded under
// backpressure and ErrStopped during shutdown.
func (s *Server) Submit(x *tensor.Tensor) (<-chan Result, error) {
	if x == nil || !slices.Equal(x.Shape, s.cfg.InputShape) {
		return nil, fmt.Errorf("server: input shape %v, model wants %v", shapeOf(x), s.cfg.InputShape)
	}
	q := &query{x: x, enqueued: s.clock.Now(), done: make(chan Result, 1)}
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return nil, ErrStopped
	}
	if len(s.pending) >= s.admissionLimit() {
		s.mu.Unlock()
		s.metrics.rejected.Add(1)
		return nil, ErrOverloaded
	}
	s.pending = append(s.pending, q)
	s.mu.Unlock()
	return q.done, nil
}

func shapeOf(x *tensor.Tensor) []int {
	if x == nil {
		return nil
	}
	return x.Shape
}

// Predict is the blocking convenience wrapper: Submit plus wait.
func (s *Server) Predict(x *tensor.Tensor) (Result, error) {
	ch, err := s.Submit(x)
	if err != nil {
		return Result{}, err
	}
	return <-ch, nil
}

// QueueDepth reports the number of queries waiting for the next window.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Stats snapshots the server's aggregate counters.
func (s *Server) Stats() Stats {
	st := s.metrics.snapshot(time.Since(s.started))
	st.QueueDepth = s.QueueDepth()
	st.SampleTimes = s.cal.Snapshot()
	st.PackCacheBytes = s.shared.PackCacheBytes()
	gc := tensor.GemmStats()
	st.GemmFanouts, st.GemmFanoutWorkers = gc.Fanouts, gc.FanoutWorkers
	return st
}

// Stop shuts down gracefully: no new submissions, the pending queue is
// flushed as a final batch, in-flight batches finish, then the goroutines
// exit. Safe to call more than once.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.stopping = true
		s.mu.Unlock()
		close(s.quit)
		<-s.doneCh
	})
}

// batchLoop closes a window every T/2 tick: it drains the pending queue,
// resolves the Equation-3 rate for the batch size it found, and hands the
// job to the dispatcher so processing of this window overlaps collection of
// the next — exactly the pipelining that makes T/2 batching meet a T bound.
func (s *Server) batchLoop() {
	ticks, stopTicker := s.clock.Ticker(s.cfg.SLO / 2)
	defer stopTicker()
	for {
		select {
		case <-s.quit:
			s.flush()
			close(s.dispatch)
			return
		case <-ticks:
			s.closeWindow()
		}
	}
}

// closeWindow forms and dispatches the current batch, if any.
func (s *Server) closeWindow() {
	s.mu.Lock()
	batch := s.pending
	s.pending = nil
	s.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	rate, feasible := s.choose(len(batch))
	s.dispatch <- &batchJob{queries: batch, rate: rate, infeasible: !feasible}
}

// flush drains whatever is pending at shutdown so no query goes unanswered.
func (s *Server) flush() {
	s.closeWindow()
}

// choose resolves the serving rate for a batch of n: the shared Equation-3
// policy in elastic mode, or the pinned rate (with its own feasibility
// check) in fixed-width baseline mode.
func (s *Server) choose(n int) (rate float64, feasible bool) {
	if s.cfg.FixedRate > 0 {
		return s.cfg.FixedRate, s.policy.BatchTime(n, s.cfg.FixedRate) <= s.policy.Window
	}
	return s.policy.Choose(n)
}

// dispatchLoop serves batches in arrival order, sharding each across the
// worker pool, then settles every query and feeds the measured duration
// back into the calibrator.
func (s *Server) dispatchLoop() {
	defer close(s.doneCh)
	for job := range s.dispatch {
		n := len(job.queries)
		start := time.Now()
		s.runBatch(job.queries, job.rate)
		elapsed := time.Since(start)
		s.cal.Observe(job.rate, n, elapsed)

		now := s.clock.Now()
		misses := int64(0)
		for _, q := range job.queries {
			latency := now.Sub(q.enqueued)
			miss := latency > s.cfg.SLO
			if miss {
				misses++
			}
			q.done <- Result{Output: q.result, Rate: job.rate, Latency: latency, SLOMiss: miss}
		}
		s.metrics.sloMisses.Add(misses)
		acc, haveAcc := 0.0, false
		if s.cfg.AccuracyAt != nil {
			acc, haveAcc = s.cfg.AccuracyAt(job.rate), true
		}
		s.metrics.recordBatch(n, job.rate, job.infeasible, elapsed, acc, haveAcc)
	}
}

// runBatch splits the batch into contiguous shards, one per worker, and
// runs them concurrently. Each worker stacks its shard into a single pass
// through the shared zero-copy inference path at the chosen rate.
func (s *Server) runBatch(queries []*query, rate float64) {
	n := len(queries)
	w := min(len(s.workers), n)
	per := (n + w - 1) / w
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := i * per
		hi := min(lo+per, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wk *worker, shard []*query) {
			defer wg.Done()
			wk.run(shard, rate, s.cfg.InputShape)
		}(s.workers[i], queries[lo:hi])
	}
	wg.Wait()
}

// run forwards one shard as a single batch at the given rate through the
// shared zero-copy inference path — one batched GEMM per layer for the whole
// shard — then scatters the output rows back to the queries. Batch and
// activation buffers come from the worker's arena; the results outlive the
// pass, so they are heap-allocated — as one contiguous block per shard
// (one data allocation instead of one per query), with each query's result a
// per-row view of the block.
func (wk *worker) run(shard []*query, rate float64, inputShape []int) {
	n := len(shard)
	shape := [8]int{n}
	x := wk.arena.GetUninit(append(shape[:1], inputShape...)...)
	d := len(shard[0].x.Data)
	for i, q := range shard {
		copy(x.Data[i*d:(i+1)*d], q.x.Data)
	}
	y := wk.shared.Infer(rate, x, wk.arena)
	classes := y.Size() / n
	block := make([]float64, n*classes)
	copy(block, y.Data[:n*classes])
	for i, q := range shard {
		q.result = tensor.FromSlice(block[i*classes:(i+1)*classes], classes)
	}
	wk.arena.Reset()
}
