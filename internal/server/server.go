// Package server is the live counterpart of internal/serving: a concurrent
// inference engine that serves real queries under a latency SLO with the
// Section 4.1 elastic-batching scheme. Queries accumulate for one T/2
// wall-clock window; when the window closes the batch is served at the
// largest slice rate the Equation-3 policy admits — budgeted not against a
// fresh T/2 but against the window's remaining deadline slack, with the
// estimated work already in flight ahead of it subtracted (the shared
// serving.Backlog model), so overruns degrade later windows visibly instead
// of compounding into silent SLO misses. Closed windows go to a scheduler
// that partitions the worker pool across the backlog: workers share one
// read-only parent weight set (slicing.Shared), each runs the zero-copy
// inference path with its own activation arena, and a shard's batch runs one
// batched GEMM per layer. Per-rate per-sample times come from an online
// calibrator rather than the r² idealization, admission control sheds load
// against the same backlog horizon the rate decision uses, and everything is
// observable over a Prometheus-style /metrics endpoint.
//
// The scheduling decision itself lives in serving.Policy and
// serving.Backlog, shared with the clock-free simulation, so the live path
// and the simulated path cannot drift apart — a lockstep test drives both
// with one arrival trace and demands identical per-window decisions.
package server

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"modelslicing/internal/faults"
	"modelslicing/internal/nn"
	"modelslicing/internal/obs"
	"modelslicing/internal/serving"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
)

// Errors returned by Submit, or carried in a Result's Err field when a
// query was accepted but its shard failed.
var (
	// ErrOverloaded signals admission control: the deadline slack left
	// after the work already queued and in flight cannot absorb another
	// pending query even at the lowest rate, so accepting it could only
	// add an SLO miss.
	ErrOverloaded = errors.New("server: overloaded, backlog exceeds lower-bound capacity")
	// ErrStopped signals a query submitted during or after shutdown.
	ErrStopped = errors.New("server: stopped")
	// ErrWorkerPanic is the Result error for queries whose shard panicked
	// mid-compute; the panic was recovered, the rest of the window is
	// unaffected, and the server keeps serving.
	ErrWorkerPanic = errors.New("server: worker panicked")
	// ErrShardStuck is the Result error for queries whose shard the
	// watchdog declared stuck and abandoned (the worker was replaced).
	ErrShardStuck = errors.New("server: shard stuck")
	// ErrExpired is the Result error for queries dropped at dispatch
	// because their SLO deadline had already passed (Config.DropExpired).
	ErrExpired = errors.New("server: deadline already expired, query dropped")
)

// Config parameterizes a live server.
type Config struct {
	// Model is the parent network trained with model slicing.
	Model nn.Layer
	// Rates are the deployable slice rates.
	Rates slicing.RateList
	// InputShape is the single-sample input shape (e.g. [16] for a
	// 16-feature MLP, [3, 32, 32] for images).
	InputShape []int
	// SLO is the latency bound T; batches form every T/2.
	SLO time.Duration
	// Workers is the number of parallel shards a batch is split across.
	// Workers share one read-only weight set (the zero-copy inference path
	// is goroutine-safe); each holds only a private activation arena. When
	// backlog parks more than one closed window, the scheduler partitions
	// the pool so the windows drain concurrently.
	// Default: min(4, GOMAXPROCS).
	Workers int
	// QueueFactor scales the admission bound: submissions are rejected
	// once pending > QueueFactor·capacity(r_min) within the slack the
	// backlog leaves of the next window. Default 1.
	QueueFactor float64
	// MaxBacklogWindows is a hard cap on closed windows in flight — the
	// safety valve for when reality diverges from the calibrated model (a
	// wedged pool, a pathological query): the estimated horizon budgets
	// admission in the common case, but beyond this many unfinished
	// windows submissions are shed regardless of what the model claims,
	// bounding queued memory. Default 8.
	MaxBacklogWindows int
	// Headroom in (0, 1] derates the deadline slack the policy budgets
	// against, reserving slack for request intake, GC and OS jitter on
	// saturated machines (a single-core host serving its own load
	// generator needs ~0.7). Default 1: the full slack is spent on
	// inference.
	Headroom float64
	// FixedRate pins the policy to a single rate when > 0 — the
	// fixed-width provisioning baseline the paper argues against.
	FixedRate float64
	// Tier selects the GEMM engine tier ("exact", "fma", "f32"); empty
	// defaults to MS_ENGINE_TIER (exact when unset). The tier is applied
	// before startup calibration, so the measured t(r) reflects the engine
	// that will serve traffic.
	Tier string
	// StuckAfter is the watchdog bound: a shard executing longer than this
	// is abandoned — its queries answered with ErrShardStuck, its worker
	// written off and replaced — so one wedged kernel cannot hold windows
	// hostage forever. Zero defaults to 8·SLO (far past any feasible
	// batch); negative disables the watchdog.
	StuckAfter time.Duration
	// DrainSweepEvery is the real-time interval of the shutdown-drain
	// watchdog sweep: the batch ticker that normally drives the watchdog
	// has exited by then, so a dedicated ticker keeps scanning for wedged
	// shards until the queue drains. Chaos and shutdown tests shrink it so
	// a stalled shard is reclaimed without waiting out wall-clock defaults.
	// Zero defaults to 50ms.
	DrainSweepEvery time.Duration
	// DropExpired drops queries whose SLO deadline has already passed at
	// the moment a worker would start computing them: they receive
	// ErrExpired instead of a late answer, and the worker's time goes to
	// queries that can still be saved. Off by default — the reply contract
	// changes from a late output to an error, which not every client
	// prefers.
	DropExpired bool
	// CircuitThreshold is how many consecutive shard failures (panics or
	// watchdog-detected stalls) trip the brownout circuit: while open, the
	// rate is pinned to the floor and admission sheds at half its budget;
	// the circuit closes once a shard succeeds and the backlog horizon has
	// drained. Zero defaults to 3; negative disables the circuit.
	CircuitThreshold int
	// AccuracyAt maps a rate to its measured accuracy for quality
	// accounting; nil disables it.
	AccuracyAt func(r float64) float64
	// Clock supplies time; nil means the wall clock. Tests inject a
	// FakeClock to drive windows deterministically. Every time the server
	// reads — window ticks, latency, batch elapsed, uptime — comes from
	// this one source, so fake-clock tests exercise exactly the arithmetic
	// production runs.
	Clock Clock
	// SampleTime, when non-nil, fixes t(r) instead of measuring it at
	// startup (tests and pre-profiled deployments).
	SampleTime func(r float64) float64
	// CalibrationBatch is the batch size used to measure t(r) at startup
	// (default 32); ignored when SampleTime is set.
	CalibrationBatch int
	// DecisionLog is the window-decision flight recorder's ring size: the
	// last DecisionLog scheduling decisions stay reconstructible via
	// /debug/decisions. Default 256.
	DecisionLog int
	// TraceSampleEvery samples every k-th query's full span into the trace
	// ring dumped by /debug/trace. 0 means the default of 16; negative
	// disables the ring (the per-stage histograms stay on — they are
	// lock-free and allocation-free regardless).
	TraceSampleEvery int
	// TraceLog is the trace ring size (sampled spans retained). Default 256.
	TraceLog int
	// ModelInfo identifies the model artifact being served (checkpoint
	// epoch, content CRC, path); surfaced on /healthz, /state and /metrics,
	// and replaced wholesale by Swap. Zero value: an in-process model.
	ModelInfo ModelInfo
	// SwapRampWindows is the recalibration ramp after a Swap: for this many
	// non-empty windows the calibrator weighs fresh observations heavily
	// (rampAlpha instead of the steady-state EWMA), so t(r) converges onto
	// the new model within the ramp instead of over hundreds of batches.
	// Default 8.
	SwapRampWindows int
	// SwapSource, when non-nil, builds the replacement model for a
	// triggered swap (POST /admin/swap; SIGHUP in msserver) — typically by
	// re-opening the checkpoint path. Nil disables triggered swaps;
	// Server.Swap remains callable directly.
	SwapSource func() (*slicing.Shared, ModelInfo, error)
}

// ModelInfo identifies the model artifact a server is serving.
type ModelInfo struct {
	// Epoch is the training epoch recorded in the checkpoint header.
	Epoch uint64 `json:"epoch"`
	// CRC is the checkpoint's header CRC32 — a content identity covering
	// every payload byte through the per-section checksums
	// (persist.Checkpoint.CRC). Zero for an in-process model.
	CRC uint32 `json:"crc32"`
	// Path is the checkpoint file the model was loaded from, when any.
	Path string `json:"path,omitempty"`
}

// Result is the answer to one query.
type Result struct {
	// Output is the model output for the sample (e.g. class logits); nil
	// when Err is set.
	Output *tensor.Tensor
	// Err is non-nil when the query was accepted but not answered with an
	// output: its shard panicked (ErrWorkerPanic), was abandoned by the
	// watchdog (ErrShardStuck), its deadline expired before compute
	// (ErrExpired), or the server shut down around it (ErrStopped). The
	// one-reply contract holds either way: every Submit channel receives
	// exactly one Result.
	Err error
	// Rate is the slice rate the query's batch was served at.
	Rate float64
	// Latency is submission-to-completion time. It includes any queueing
	// delay spent behind windows that were in flight ahead of this one.
	Latency time.Duration
	// SLOMiss reports whether Latency exceeded the configured SLO.
	SLOMiss bool
	// Stage breakdown of Latency (Queued+Dispatch+Compute+Settle == Latency):
	// Queued is submission → window close (waiting for the batch to form),
	// Dispatch is window close → shard compute start (scheduler queue wait),
	// Compute is the shard's inference time, and Settle is compute end →
	// reply delivery.
	Queued, Dispatch, Compute, Settle time.Duration
}

// query is one in-flight request. The span stamps (windowClose,
// computeStart, computeEnd) are written by the batcher and the scheduler
// before the synchronization points that publish the query onward, so the
// settle path reads them race-free and the tracing adds zero allocations.
type query struct {
	x        *tensor.Tensor
	enqueued time.Time
	done     chan Result
	result   *tensor.Tensor
	err      error // shard failure or deadline drop; set by whoever owns the shard

	windowClose  time.Time // stamped when the query's T/2 window closes
	computeStart time.Time // stamped when its shard leaves the work queue
	computeEnd   time.Time // stamped when its shard's inference finishes
}

// batchJob is one closed window's worth of queries with its backlog-aware
// scheduling decision and its execution bookkeeping.
type batchJob struct {
	queries  []*query
	decision serving.Decision
	// shared is the weight set this window was closed against. Captured at
	// window close, so a Swap between close and execution cannot move a
	// window onto weights its decision was not calibrated for: in-flight
	// windows finish on the old model, only windows closed after the swap
	// see the new one.
	shared *slicing.Shared
	window int64 // T/2 sequence number of the window this batch closed
	// shards is how many pieces the window was sliced into; remaining
	// counts the unfinished ones, and whoever finishes the last settles
	// the window. workerNanos accumulates worker·time across the shards
	// for utilization and calibration.
	shards      int
	remaining   atomic.Int32
	workerNanos atomic.Int64
}

// worker owns one activation arena; the weights it reads arrive with each
// shard (the window's captured Shared), so a worker serves whichever model a
// window was closed against — across a Swap, old windows on old weights and
// new windows on new. A worker processes at most one shard at a time, so the
// arena never sees concurrent use.
type worker struct {
	arena *tensor.Arena
}

// Server is a live SLO-aware inference server.
type Server struct {
	cfg    Config
	policy serving.Policy
	cal    *Calibrator
	// shared is the current weight set; read and replaced (Swap) under mu.
	// Windows capture it at close, so the scheduler and workers only ever
	// see it through a batchJob.
	shared   *slicing.Shared
	workers  []*worker
	clock    Clock
	metrics  *metrics
	tracer   *obs.Tracer
	recorder *obs.Recorder
	started  time.Time

	mu       sync.Mutex
	winSeq   int64 // next T/2 window sequence number (every tick consumes one)
	pending  []*query
	inflight int             // queries dispatched but not yet answered
	backlog  serving.Backlog // estimated completion horizon of dispatched work
	info     ModelInfo       // identity of the artifact shared was built from
	rampLeft int             // non-empty windows left in the post-swap recalibration ramp
	stopping bool
	// Brownout circuit: circuitFails counts consecutive failed shards
	// (panic or stuck); at CircuitThreshold the circuit opens — the rate is
	// pinned to the floor and admission sheds at half budget — and it
	// closes again once a shard has succeeded (circuitFails back to 0) and
	// the backlog horizon has drained past the current window close.
	circuitOpen  bool
	circuitFails int

	sched    *scheduler
	quit     chan struct{}
	tickDone chan struct{} // one token per processed tick (test synchronization)
	stopOnce sync.Once
}

// New validates the configuration, calibrates per-rate sample times through
// the shared zero-copy path, and starts the batching and scheduling
// goroutines. The returned server is live; release it with Stop.
func New(cfg Config) (*Server, error) {
	if cfg.Model == nil {
		return nil, errors.New("server: nil model")
	}
	if err := cfg.Rates.Check(); err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	if len(cfg.InputShape) == 0 {
		return nil, errors.New("server: empty input shape")
	}
	if cfg.SLO <= 0 {
		return nil, fmt.Errorf("server: non-positive SLO %v", cfg.SLO)
	}
	if cfg.FixedRate > 0 {
		if _, err := cfg.Rates.Index(cfg.FixedRate); err != nil {
			return nil, fmt.Errorf("server: fixed rate: %w", err)
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = min(4, runtime.GOMAXPROCS(0))
	}
	if cfg.QueueFactor <= 0 {
		cfg.QueueFactor = 1
	}
	if cfg.MaxBacklogWindows <= 0 {
		cfg.MaxBacklogWindows = 8
	}
	if cfg.Headroom < 0 || cfg.Headroom > 1 {
		return nil, fmt.Errorf("server: headroom %v outside (0, 1]", cfg.Headroom)
	}
	if cfg.Headroom == 0 {
		cfg.Headroom = 1
	}
	if cfg.StuckAfter == 0 {
		cfg.StuckAfter = 8 * cfg.SLO
	}
	if cfg.DrainSweepEvery <= 0 {
		cfg.DrainSweepEvery = 50 * time.Millisecond
	}
	if cfg.CircuitThreshold == 0 {
		cfg.CircuitThreshold = 3
	}
	if cfg.Clock == nil {
		cfg.Clock = realClock{}
	}

	// Deployable rates: all of them, or just the pinned one in baseline
	// mode. Every rate is served zero-copy from one shared parent weight
	// set — the inference path never writes to the model, so the workers
	// need nothing of their own beyond an activation arena.
	deploy := cfg.Rates
	if cfg.FixedRate > 0 {
		deploy = slicing.RateList{cfg.FixedRate}
	}
	if !nn.InferSafe(cfg.Model) {
		// The Forward fallback caches layer state and would race across
		// worker shards; fail at construction like the Extract path used to.
		return nil, errors.New("server: model contains a layer without an Infer implementation; it cannot be served concurrently")
	}
	shared := slicing.NewShared(cfg.Model, cfg.Rates)
	if cfg.Tier != "" {
		tier, err := tensor.ParseTier(cfg.Tier)
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		shared.SetTier(tier)
	}
	workers := make([]*worker, cfg.Workers)
	for w := range workers {
		workers[w] = &worker{arena: tensor.NewArena()}
	}

	if cfg.CalibrationBatch <= 0 {
		cfg.CalibrationBatch = 32
	}
	if cfg.TraceSampleEvery == 0 {
		cfg.TraceSampleEvery = 16
	}
	if cfg.SwapRampWindows <= 0 {
		cfg.SwapRampWindows = 8
	}

	started := cfg.Clock.Now()
	s := &Server{
		cfg:      cfg,
		shared:   shared,
		info:     cfg.ModelInfo,
		workers:  workers,
		clock:    cfg.Clock,
		metrics:  newMetrics(cfg.Workers),
		tracer:   obs.NewTracer(cfg.Rates, started, cfg.TraceSampleEvery, cfg.TraceLog),
		recorder: obs.NewRecorder(cfg.DecisionLog),
		started:  started,
		quit:     make(chan struct{}),
		tickDone: make(chan struct{}, 1),
	}
	if cfg.SampleTime != nil {
		s.cal = newStaticCalibrator(deploy, cfg.SampleTime)
	} else {
		s.cal = &Calibrator{
			perSample: make(map[float64]float64),
			alpha:     ewmaAlpha,
			minN:      cfg.CalibrationBatch,
		}
		measureSampleTimes(s.cal, workers, shared, deploy, cfg.InputShape, cfg.CalibrationBatch)
	}
	s.policy = serving.Policy{
		Rates:      cfg.Rates,
		Window:     (cfg.SLO / 2).Seconds() * cfg.Headroom,
		SampleTime: s.cal.SampleTime,
	}
	s.sched = newScheduler(s, workers)
	go s.batchLoop()
	return s, nil
}

// measureSampleTimes times each rate through a sharded worker pool — the
// same path live batches take — so t(r) reflects pool throughput, not
// single-worker serial time: one warm-up, then the best of three timed runs
// (minimum filters scheduler noise; the EWMA absorbs any residual optimism
// once real traffic flows). This is a genuine hardware measurement, so it
// reads the wall clock directly — an injected fake clock cannot speed up
// the silicon it is timing. Both startup calibration (the server's own pool,
// idle by definition) and Swap recalibration (a temporary pool, so live
// traffic keeps its workers) run through here.
func measureSampleTimes(cal *Calibrator, workers []*worker, shared *slicing.Shared,
	deploy slicing.RateList, inputShape []int, batchN int) {
	rng := rand.New(rand.NewSource(0))
	queries := make([]*query, batchN)
	for i := range queries {
		x := tensor.New(inputShape...)
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64()
		}
		queries[i] = &query{x: x}
	}
	for _, r := range deploy {
		runBatchOn(workers, shared, queries, r, inputShape)
		best := time.Duration(math.MaxInt64)
		for i := 0; i < 3; i++ {
			start := time.Now()
			runBatchOn(workers, shared, queries, r, inputShape)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		cal.set(r, best.Seconds()/float64(batchN))
	}
}

// Swap replaces the served model with ns between windows — zero-downtime
// model ops. The switch is copy-on-write at window granularity: windows
// already closed (including shards mid-compute) finish on the weight set
// they captured at close, and every window closed after Swap returns serves
// from ns; no query is dropped, erred or served a half-swapped model.
//
// Before publishing ns, Swap recalibrates t(r) for it — static SampleTime
// configs are re-queried, measured configs re-time each rate on a temporary
// worker pool so live traffic keeps its workers — and arms the calibrator's
// recalibration ramp (Config.SwapRampWindows) so the first post-ramp windows
// decide on estimates that track the new model rather than the old one's
// stale EWMA. The old model's backing checkpoint (if mmap-ed) must stay open
// until its last in-flight window settles; msserver simply keeps old
// mappings open for the process lifetime — their count is bounded by the
// number of swaps, not by traffic.
func (s *Server) Swap(ns *slicing.Shared, info ModelInfo) error {
	if ns == nil {
		return errors.New("server: swap: nil model")
	}
	if !slices.Equal(ns.Rates(), s.cfg.Rates) {
		return fmt.Errorf("server: swap: rate list %v does not match serving config %v",
			ns.Rates(), s.cfg.Rates)
	}
	if !nn.InferSafe(ns.Model()) {
		return errors.New("server: swap: model contains a layer without an Infer implementation; it cannot be served concurrently")
	}
	deploy := s.cfg.Rates
	if s.cfg.FixedRate > 0 {
		deploy = slicing.RateList{s.cfg.FixedRate}
	}
	// The new model serves at the tier the operator configured, regardless
	// of what tier its builder defaulted to.
	s.mu.Lock()
	ns.SetTier(s.shared.Tier())
	s.mu.Unlock()
	if s.cfg.SampleTime != nil {
		for _, r := range deploy {
			s.cal.set(r, s.cfg.SampleTime(r))
		}
	} else {
		// Measure on a temporary pool: recalibrating on s.workers would
		// contend with (and be skewed by) the traffic they are serving.
		tmp := make([]*worker, s.cfg.Workers)
		for i := range tmp {
			tmp[i] = &worker{arena: tensor.NewArena()}
		}
		measureSampleTimes(s.cal, tmp, ns, deploy, s.cfg.InputShape, s.cfg.CalibrationBatch)
	}
	s.cal.Ramp(s.cfg.SwapRampWindows)
	s.mu.Lock()
	s.shared = ns
	s.info = info
	s.rampLeft = s.cfg.SwapRampWindows
	s.mu.Unlock()
	s.metrics.swaps.Add(1)
	return nil
}

// ModelInfo reports the identity of the artifact currently being served.
func (s *Server) ModelInfo() ModelInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.info
}

// SLO returns the configured latency bound T.
func (s *Server) SLO() time.Duration { return s.cfg.SLO }

// Calibrator exposes the live per-rate timing estimates.
func (s *Server) Calibrator() *Calibrator { return s.cal }

// Recorder exposes the window-decision flight recorder: the last
// Config.DecisionLog scheduling decisions with their full inputs and the
// derived degradation reason.
func (s *Server) Recorder() *obs.Recorder { return s.recorder }

// Tracer exposes the per-query span tracer: stage and per-rate latency
// histograms plus the sampled trace ring behind /debug/trace.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// minRate is the lowest deployable rate under the current mode.
func (s *Server) minRate() float64 {
	if s.cfg.FixedRate > 0 {
		return s.cfg.FixedRate
	}
	return s.cfg.Rates.Min()
}

// sinceStart maps a clock reading onto the policy's time axis (seconds
// since the server started) — the coordinate system the backlog horizon
// lives in.
func (s *Server) sinceStart(t time.Time) float64 {
	return t.Sub(s.started).Seconds()
}

// admissionLimit is the deepest pending queue worth accepting given the
// current backlog. The pending queries will be decided at the next window
// close, roughly T/2 away; whatever estimated in-flight work outlasts even
// that moment is subtracted from the policy window, and the limit is
// QueueFactor times the lower-bound capacity of the remainder. With an
// empty horizon this is exactly the classic QueueFactor·Capacity(r_min);
// as parked windows pile up it shrinks to zero, so ErrOverloaded fires
// while the batch ticker is still ticking — the system sheds load when it
// is actually saturated, instead of counting only s.pending and going
// blind to the windows already in the dispatcher. Callers hold s.mu.
//
// An unbounded capacity (t(r_min) ≤ 0) means unbounded admission, and the
// float product must not be narrowed to int before that check —
// float64(MaxInt) converts to MinInt.
func (s *Server) admissionLimit(now time.Time) int {
	nextClose := s.sinceStart(now) + (s.cfg.SLO / 2).Seconds()
	budget := s.policy.Window - s.backlog.Ahead(nextClose)
	if budget <= 0 {
		return 0
	}
	factor := s.cfg.QueueFactor
	if s.circuitOpen {
		// Brownout: with the circuit open the pool is demonstrably not
		// delivering its calibrated throughput, so shed at half the normal
		// budget instead of trusting the model all the way to the edge.
		factor *= 0.5
	}
	limit := factor * float64(s.policy.CapacityWithin(s.minRate(), budget))
	if limit >= float64(math.MaxInt) {
		return math.MaxInt
	}
	return max(int(limit), 1)
}

// RetryAfter estimates how long a shed client should wait before its next
// attempt has a chance of admission: the time until the backlog horizon has
// drained far enough that a submission's next window close sees a positive
// budget again. Inverting admissionLimit: a submission at time s is budgeted
// budget = Window − Ahead(s + T/2), positive once
// s > horizon − T/2 − Window — so the wait is
// horizon − now − T/2 − Window, floored at one T/2 window (the soonest any
// resubmission can land in a fresh window anyway). The estimate rides the
// same model-only horizon admission sheds on, so it is exactly as honest as
// the rejection itself.
func (s *Server) RetryAfter(now time.Time) time.Duration {
	halfWindow := s.cfg.SLO / 2
	s.mu.Lock()
	horizon := s.backlog.Horizon()
	s.mu.Unlock()
	wait := horizon - s.sinceStart(now) - halfWindow.Seconds() - s.policy.Window
	if d := time.Duration(wait * float64(time.Second)); d > halfWindow {
		return d
	}
	return halfWindow
}

// noteShardFailure feeds the brownout circuit: consecutive shard failures
// (panics, watchdog-abandoned stalls) past CircuitThreshold open it.
func (s *Server) noteShardFailure() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.circuitFails++
	if s.cfg.CircuitThreshold > 0 && !s.circuitOpen && s.circuitFails >= s.cfg.CircuitThreshold {
		s.circuitOpen = true
		s.metrics.circuitTrips.Add(1)
	}
}

// noteShardOK resets the consecutive-failure count; the circuit itself
// closes at the next window close, once the backlog horizon has drained.
func (s *Server) noteShardOK() {
	s.mu.Lock()
	s.circuitFails = 0
	s.mu.Unlock()
}

// CircuitOpen reports whether the brownout circuit is currently open.
func (s *Server) CircuitOpen() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.circuitOpen
}

// Submit enqueues one sample for the next window. The returned channel
// receives exactly one Result. The input must match the configured
// single-sample shape exactly — element count alone is not enough (a
// [32, 3, 32] tensor is not a valid sample for a [3, 32, 32] model even
// though the sizes agree). Submissions are rejected with ErrOverloaded under
// backpressure — which accounts for the queries already dispatched and in
// flight, through the backlog horizon — and ErrStopped during shutdown.
func (s *Server) Submit(x *tensor.Tensor) (<-chan Result, error) {
	if x == nil || !slices.Equal(x.Shape, s.cfg.InputShape) {
		return nil, fmt.Errorf("server: input shape %v, model wants %v", shapeOf(x), s.cfg.InputShape)
	}
	now := s.clock.Now()
	q := &query{x: x, enqueued: now, done: make(chan Result, 1)}
	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		return nil, ErrStopped
	}
	// The safety valve: when this many windows are genuinely unfinished,
	// the model's horizon has lost touch with reality (it drains with the
	// clock whether or not work completes) and cannot be trusted to bound
	// the queue. Checked after stopping so shutdown keeps its error
	// contract (ErrStopped, not a retryable ErrOverloaded).
	if s.sched.depth() >= s.cfg.MaxBacklogWindows ||
		len(s.pending) >= s.admissionLimit(now) {
		s.mu.Unlock()
		s.metrics.rejected.Add(1)
		return nil, ErrOverloaded
	}
	s.pending = append(s.pending, q)
	s.mu.Unlock()
	return q.done, nil
}

func shapeOf(x *tensor.Tensor) []int {
	if x == nil {
		return nil
	}
	return x.Shape
}

// Predict is the blocking convenience wrapper: Submit plus wait. A query
// that was accepted but failed (shard panic, watchdog abandonment, expired
// deadline) returns its Result with the failure repeated as the error.
func (s *Server) Predict(x *tensor.Tensor) (Result, error) {
	ch, err := s.Submit(x)
	if err != nil {
		return Result{}, err
	}
	res := <-ch
	return res, res.Err
}

// QueueDepth reports the number of queries waiting for the next window.
func (s *Server) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// InFlight reports the number of queries dispatched but not yet answered.
func (s *Server) InFlight() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight
}

// Stats snapshots the server's aggregate counters.
func (s *Server) Stats() Stats {
	now := s.clock.Now()
	st := s.metrics.snapshot(now.Sub(s.started))
	s.mu.Lock()
	st.Windows = s.winSeq
	st.QueueDepth = len(s.pending)
	st.InFlightQueries = s.inflight
	st.BacklogSeconds = s.backlog.Ahead(s.sinceStart(now))
	st.CircuitOpen = s.circuitOpen
	st.ModelEpoch = s.info.Epoch
	st.ModelCRC = s.info.CRC
	st.SwapRampWindows = s.rampLeft
	shared := s.shared
	s.mu.Unlock()
	if fired := faults.Counts(); len(fired) > 0 {
		st.FaultsFired = make(map[string]int64, len(fired))
		for p, n := range fired {
			st.FaultsFired[string(p)] = n
		}
	}
	st.BacklogWindows = s.sched.depth()
	st.SampleTimes = s.cal.Snapshot()
	es := shared.Stats()
	st.PackCacheBytes, st.PackedEngine = es.PackCacheBytes, es.Packed
	st.PackCacheTierBytes, st.EngineTier = es.PackCacheTierBytes, es.Tier
	for _, wk := range s.workers {
		st.ArenaBytes += wk.arena.HighWaterBytes()
	}
	gc := tensor.GemmStats()
	st.GemmFanouts, st.GemmFanoutWorkers = gc.Fanouts, gc.FanoutWorkers
	st.GemmKernels = gc.Kernels
	st.Latency = s.tracer.Total()
	for i := 0; i < obs.NumStages; i++ {
		st.StageLatency = append(st.StageLatency, StageLatency{
			Stage: obs.StageNames[i], Hist: s.tracer.Stage(i),
		})
	}
	for _, r := range s.tracer.Rates() {
		if h, ok := s.tracer.Rate(r); ok && h.Count > 0 {
			st.RateLatency = append(st.RateLatency, RateLatency{Rate: r, Hist: h})
		}
	}
	return st
}

// Stop shuts down gracefully: no new submissions, the pending queue is
// flushed as a final batch, in-flight batches finish, then the goroutines
// exit. Safe to call more than once.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		s.mu.Lock()
		s.stopping = true
		s.mu.Unlock()
		close(s.quit)
		<-s.sched.done
	})
}

// batchLoop closes a window every T/2 tick: it drains the pending queue,
// resolves the backlog-aware rate for the batch it found, and hands the job
// to the scheduler so processing of this window overlaps collection of the
// next — the pipelining that makes T/2 batching meet a T bound. The
// handoff never blocks, so the ticker keeps closing windows no matter how
// far processing has fallen behind.
func (s *Server) batchLoop() {
	ticks, stopTicker := s.clock.Ticker(s.cfg.SLO / 2)
	defer stopTicker()
	for {
		select {
		case <-s.quit:
			s.flush()
			s.sched.shutdown()
			return
		case <-ticks:
			// The watchdog rides the window ticker: one scan per T/2 on
			// the injected clock, so fake-clock tests drive it
			// deterministically and an idle server still notices a wedged
			// shard.
			s.sched.scanStuck(s.clock.Now())
			s.closeWindow()
			// Non-blocking token for tests that must know the window
			// decision has been taken before they act on the next window.
			select {
			case s.tickDone <- struct{}{}:
			default:
			}
		}
	}
}

// closeWindow forms the current batch, takes its backlog-aware scheduling
// decision, and enqueues it for processing.
func (s *Server) closeWindow() {
	now := s.clock.Now()
	s.mu.Lock()
	// Every tick consumes a window sequence number, empty or not, so the
	// live recorder's window indices line up with the simulation's tick
	// indices in lockstep runs.
	seq := s.winSeq
	s.winSeq++
	// Circuit recovery: a shard has succeeded since the trip (fails reset)
	// and the backlog horizon has drained past this close — the brownout
	// ladder's floor is no longer needed.
	if s.circuitOpen && s.circuitFails == 0 && s.backlog.Ahead(s.sinceStart(now)) == 0 {
		s.circuitOpen = false
	}
	batch := s.pending
	s.pending = nil
	if len(batch) == 0 {
		s.mu.Unlock()
		return
	}
	d := s.decide(len(batch), batch[0].enqueued, now)
	s.inflight += len(batch)
	// The window captures the current weight set: a Swap after this point
	// affects only later windows (see batchJob.shared).
	shared := s.shared
	if s.rampLeft > 0 {
		s.rampLeft--
	}
	s.mu.Unlock()

	for _, q := range batch {
		q.windowClose = now
	}
	s.recorder.Record(d.Record(s.policy, seq, len(batch), s.sinceStart(now)))
	s.metrics.recordDecision(d)
	job := &batchJob{queries: batch, decision: d, shared: shared, window: seq}
	s.metrics.observeBacklog(int64(s.sched.enqueue(job)))
}

// decide maps the window onto the policy's time axis and budgets it against
// the deadline of its oldest query: slack = Headroom·(deadline − now) minus
// the estimated work already dispatched ahead of it. The same
// serving.Backlog arithmetic runs in the clock-free simulation, which is
// what the lockstep test pins. Callers hold s.mu.
func (s *Server) decide(n int, oldest, now time.Time) serving.Decision {
	nowF := s.sinceStart(now)
	// Headroom derates the usable slack exactly as it derates the policy
	// window: the reserve pays for intake, GC and OS jitter.
	deadline := nowF + oldest.Add(s.cfg.SLO).Sub(now).Seconds()*s.cfg.Headroom
	if s.cfg.FixedRate > 0 {
		return s.backlog.DecideRate(s.policy, n, s.cfg.FixedRate, deadline, nowF)
	}
	if s.circuitOpen {
		// Brownout floor: consecutive shard failures mean the calibrated
		// t(r) cannot be trusted, so serve at the cheapest rate — the
		// guaranteed floor of the degradation ladder — until the circuit
		// closes. Horizon bookkeeping is unchanged, so recovery rides the
		// normal backlog drain.
		d := s.backlog.DecideRate(s.policy, n, s.minRate(), deadline, nowF)
		d.Circuit = true
		return d
	}
	return s.backlog.Decide(s.policy, n, deadline, nowF)
}

// flush drains whatever is pending at shutdown so no query goes unanswered.
func (s *Server) flush() {
	s.closeWindow()
}

// settle answers every query of a processed window and folds the batch into
// the aggregate counters. Latency is measured against the injected clock —
// the same source the windows tick on — and includes the queueing delay the
// batch spent behind the windows in flight ahead of it. workerBusy is the
// window's accumulated worker·time.
func (s *Server) settle(job *batchJob, workerBusy time.Duration) {
	n := len(job.queries)
	s.mu.Lock()
	s.inflight -= n
	s.mu.Unlock()

	now := s.clock.Now()
	misses, failed := int64(0), int64(0)
	for _, q := range job.queries {
		latency := now.Sub(q.enqueued)
		miss := latency > s.cfg.SLO
		if miss {
			misses++
		}
		s.tracer.Observe(job.decision.Rate, job.window,
			q.enqueued, q.windowClose, q.computeStart, q.computeEnd, now)
		res := Result{
			Rate:     job.decision.Rate,
			Latency:  latency,
			SLOMiss:  miss,
			Queued:   q.windowClose.Sub(q.enqueued),
			Dispatch: q.computeStart.Sub(q.windowClose),
			Compute:  q.computeEnd.Sub(q.computeStart),
			Settle:   now.Sub(q.computeEnd),
		}
		// A failed query carries its error and no output. q.result is not
		// read on this path: an abandoned shard's zombie worker may still
		// be writing it, and the error outcome is already decided.
		if q.err != nil {
			res.Err = q.err
			failed++
		} else {
			res.Output = q.result
		}
		q.done <- res
	}
	s.metrics.sloMisses.Add(misses)
	s.metrics.failedQueries.Add(failed)
	acc, haveAcc := 0.0, false
	if s.cfg.AccuracyAt != nil {
		acc, haveAcc = s.cfg.AccuracyAt(job.decision.Rate), true
	}
	s.metrics.recordBatch(n, job.decision, workerBusy, acc, haveAcc)
}

// run forwards one shard as a single batch at the given rate through the
// given shared zero-copy inference path — one batched GEMM per layer for the
// whole shard — then scatters the output rows back to the queries. Batch and
// activation buffers come from the worker's arena; the results outlive the
// pass, so they are heap-allocated — as one contiguous block per shard
// (one data allocation instead of one per query), with each query's result a
// per-row view of the block.
func (wk *worker) run(shared *slicing.Shared, shard []*query, rate float64, inputShape []int) {
	n := len(shard)
	shape := [8]int{n}
	x := wk.arena.GetUninit(append(shape[:1], inputShape...)...)
	d := len(shard[0].x.Data)
	for i, q := range shard {
		copy(x.Data[i*d:(i+1)*d], q.x.Data)
	}
	y := shared.Infer(rate, x, wk.arena)
	classes := y.Size() / n
	block := make([]float64, n*classes)
	copy(block, y.Data[:n*classes])
	for i, q := range shard {
		q.result = tensor.FromSlice(block[i*classes:(i+1)*classes], classes)
	}
	wk.arena.Reset()
}
