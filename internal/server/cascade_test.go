package server

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
)

// gateLayer blocks every Infer call until a token arrives — it stands in
// for a model that runs far slower than the calibrator promised, so closed
// windows pile up behind an in-flight batch exactly like a production
// overrun.
type gateLayer struct{ tokens chan struct{} }

func (g *gateLayer) Forward(_ *nn.Context, x *tensor.Tensor) *tensor.Tensor  { return x }
func (g *gateLayer) Backward(_ *nn.Context, d *tensor.Tensor) *tensor.Tensor { return d }
func (g *gateLayer) Params() []*nn.Param                                     { return nil }
func (g *gateLayer) Infer(_ *nn.Context, x *tensor.Tensor) *tensor.Tensor {
	<-g.tokens
	return x
}

// gatedServer builds a single-worker server whose model blocks in Infer
// until release() is called (or the returned open() drains everything).
// maxBacklog sets Config.MaxBacklogWindows (0 = the default).
func gatedServer(t *testing.T, queueFactor float64, maxBacklog int) (*Server, *FakeClock, func(), func()) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	gate := &gateLayer{tokens: make(chan struct{})}
	model := nn.NewSequential(
		gate,
		nn.NewDense(4, 3, nn.Fixed(), nn.Fixed(), true, rng),
	)
	clk := NewFakeClock(time.Unix(0, 0))
	s, err := New(Config{
		Model:             model,
		Rates:             slicing.NewRateList(0.25, 4),
		InputShape:        []int{4},
		SLO:               2 * time.Second,
		Workers:           1,
		Clock:             clk,
		SampleTime:        func(r float64) float64 { return r * r },
		QueueFactor:       queueFactor,
		MaxBacklogWindows: maxBacklog,
	})
	if err != nil {
		t.Fatal(err)
	}
	var openOnce sync.Once
	open := func() { openOnce.Do(func() { close(gate.tokens) }) }
	release := func() { gate.tokens <- struct{}{} }
	t.Cleanup(func() { open(); s.Stop() })
	return s, clk, release, open
}

// TestCascadeLatencyAdmissionAndDegradation is the regression test for the
// serving-window latency cascade. A deliberately gated model makes window 0
// overrun; the pre-fix behaviors this pins as gone:
//
//   - the rate decision budgeted every window a fresh T/2, blind to the
//     windows in flight ahead of it — now a one-query window behind the
//     backlog is served degraded (0.5, recorded) instead of at r=1;
//   - admission control counted only s.pending — now it budgets against
//     the backlog horizon and trips with ErrOverloaded while windows are
//     still parked in the dispatcher;
//   - per-query latency must include the queueing delay spent behind
//     in-flight windows, not just the batch's own processing time.
func TestCascadeLatencyAdmissionAndDegradation(t *testing.T) {
	s, clk, release, _ := gatedServer(t, 2, 0) // limit = 2·capacity within remaining slack
	submit := func(k, n int) (accepted []<-chan Result, rejected int) {
		for j := 0; j < n; j++ {
			ch, err := s.Submit(input(int64(100*k + j)))
			switch {
			case err == nil:
				accepted = append(accepted, ch)
			case errors.Is(err, ErrOverloaded):
				rejected++
			default:
				t.Fatalf("window %d submit %d: %v", k, j, err)
			}
		}
		return accepted, rejected
	}

	// Windows 0–2 each bring 20 queries — 1.25 s of estimated lower-bound
	// work against a 1 s window — so the estimated horizon runs 0.25 s
	// further ahead per window while the gated worker holds everything.
	w0, rej := submit(0, 20)
	if rej != 0 {
		t.Fatalf("empty server rejected %d", rej)
	}
	tickSync(s, clk, time.Second)
	w1, rej := submit(1, 20)
	if rej != 0 {
		t.Fatalf("backlog 0.25 s should still admit 20, rejected %d", rej)
	}
	tickSync(s, clk, time.Second)
	// Window 2: 0.5 s of backlog outlasts the next close, the remaining
	// budget holds 8 lower-bound queries, QueueFactor 2 doubles it: 16
	// admitted, 4 shed — admission trips on in-flight work, not just
	// s.pending, and it trips while the ticker is still ticking.
	w2, rej := submit(2, 20)
	if len(w2) != 16 || rej != 4 {
		t.Fatalf("saturated window admitted %d / rejected %d, want 16/4", len(w2), rej)
	}
	tickSync(s, clk, time.Second)
	// Window 3 is one query. Pre-fix it would be served at r=1 with a fresh
	// T/2 budget; the backlog-aware policy degrades it to 0.5 and records
	// the degradation.
	w3, rej := submit(3, 1)
	if rej != 0 {
		t.Fatalf("one query within remaining slack was rejected")
	}
	tickSync(s, clk, time.Second)

	st := s.Stats()
	if st.Rejected != 4 {
		t.Fatalf("stats rejected %d, want 4", st.Rejected)
	}
	if st.BacklogWindows != 4 || st.PeakBacklogWindows < 4 {
		t.Fatalf("backlog gauges %d now / %d peak, want 4/≥4", st.BacklogWindows, st.PeakBacklogWindows)
	}
	if st.BacklogSeconds <= 0 {
		t.Fatalf("estimated backlog seconds %v, want > 0 with four windows parked", st.BacklogSeconds)
	}
	if st.InFlightQueries != 20+20+16+1 {
		t.Fatalf("in-flight queries %d, want 57", st.InFlightQueries)
	}

	// Drain one window per fake second: each settle happens a full window
	// later than a healthy pipeline would manage.
	drain := func(chans []<-chan Result) []Result {
		release()
		out := make([]Result, 0, len(chans))
		for _, ch := range chans {
			out = append(out, <-ch)
		}
		return out
	}
	for i, res := range drain(w0) { // settles at t=4, enqueued at t=0
		if res.Latency != 4*time.Second || !res.SLOMiss {
			t.Fatalf("w0 query %d latency %v miss=%v, want the full 4 s queueing delay",
				i, res.Latency, res.SLOMiss)
		}
	}
	clk.Advance(time.Second)
	for i, res := range drain(w1) { // settles at t=5, enqueued at t=1
		if res.Latency != 4*time.Second || !res.SLOMiss {
			t.Fatalf("w1 query %d latency %v, want 4 s including 3 windows of queueing", i, res.Latency)
		}
	}
	clk.Advance(time.Second)
	for _, res := range drain(w2) {
		if res.Latency != 4*time.Second || !res.SLOMiss {
			t.Fatalf("w2 latency %v, want 4 s", res.Latency)
		}
	}
	clk.Advance(time.Second)
	for _, res := range drain(w3) {
		if res.Rate != 0.5 {
			t.Fatalf("window behind backlog served at %v, want degraded 0.5", res.Rate)
		}
	}

	st = s.Stats()
	// Two degradations: window 2 (16 queries — feasible on an empty pool,
	// infeasible behind 0.5 s of backlog) and window 3 (rate 1 → 0.5).
	if st.DegradedBatches != 2 {
		t.Fatalf("degraded batches %d, want 2", st.DegradedBatches)
	}
	if st.InfeasibleBatches != 3 {
		t.Fatalf("infeasible batches %d, want the three overrun windows", st.InfeasibleBatches)
	}
	if st.BacklogWindows != 0 || st.InFlightQueries != 0 {
		t.Fatalf("drained server still reports backlog %d / in-flight %d", st.BacklogWindows, st.InFlightQueries)
	}
}

// TestTickerNeverBlocksOnParkedWindows pins the structural half of the fix:
// the old dispatch channel held 8 windows and then stalled the batch ticker
// itself. Twelve windows close against a fully gated worker — every tick
// must return (a blocked ticker deadlocks this test), and every accepted
// query must still be answered once the gate opens.
func TestTickerNeverBlocksOnParkedWindows(t *testing.T) {
	s, clk, _, open := gatedServer(t, 1, 64) // valve above the window count
	const windows = 12                       // > 8, the old dispatch-buffer bound
	var chans []<-chan Result
	for k := 0; k < windows; k++ {
		ch, err := s.Submit(input(int64(k)))
		if err != nil {
			t.Fatalf("window %d: %v", k, err)
		}
		chans = append(chans, ch)
		tickSync(s, clk, time.Second) // deadlocks here pre-fix once the buffer fills
	}
	if st := s.Stats(); st.PeakBacklogWindows < windows-1 {
		t.Fatalf("peak backlog %d, want ≥ %d parked windows", st.PeakBacklogWindows, windows-1)
	}
	open()
	for k, ch := range chans {
		if res := <-ch; res.Output == nil {
			t.Fatalf("window %d query unanswered after the gate opened", k)
		}
	}
}

// TestMaxBacklogWindowsSafetyValve pins the hard cap behind the estimated
// horizon: windows of one query keep the model's horizon level with the
// clock (1 s of estimated work per 1 s window), so estimate-based admission
// never trips — but the pool is wedged, and the windows are genuinely
// unfinished. Beyond MaxBacklogWindows the valve sheds regardless of what
// the model claims, bounding queued memory when reality diverges from the
// calibration.
func TestMaxBacklogWindowsSafetyValve(t *testing.T) {
	s, clk, _, open := gatedServer(t, 100, 3)
	var chans []<-chan Result
	for k := 0; k < 3; k++ {
		ch, err := s.Submit(input(int64(k)))
		if err != nil {
			t.Fatalf("window %d below the valve: %v", k, err)
		}
		chans = append(chans, ch)
		tickSync(s, clk, time.Second)
	}
	// The model/reality contrast the valve exists for: the estimated
	// horizon shows at most the latest window's work (it drains with the
	// clock), while three windows are genuinely wedged.
	if st := s.Stats(); st.BacklogSeconds > 1 || st.BacklogWindows != 3 {
		t.Fatalf("estimated backlog %vs / real windows %d; want ≤1s with 3 wedged",
			st.BacklogSeconds, st.BacklogWindows)
	}
	if _, err := s.Submit(input(9)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("4th window with 3 wedged: err %v, want ErrOverloaded from the valve", err)
	}
	open()
	for k, ch := range chans {
		if res := <-ch; res.Output == nil {
			t.Fatalf("window %d unanswered after the gate opened", k)
		}
	}
}

// TestConcurrentWindowsPartitionWorkers pins the scheduler's work queue:
// with the pool gated and several windows parked, opening the gate must let
// windows drain concurrently — bounded by the pool — rather than strictly
// serially. Two windows, two workers, a gate that admits exactly two
// concurrent Infer calls: both windows' shards must be in flight at once.
func TestConcurrentWindowsPartitionWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var inFlight, peak atomic.Int64
	gate := make(chan struct{})
	arrived := make(chan struct{}, 4)
	probe := &probeLayer{gate: gate, arrived: arrived, inFlight: &inFlight, peak: &peak}
	model := nn.NewSequential(probe, nn.NewDense(4, 3, nn.Fixed(), nn.Fixed(), true, rng))
	clk := NewFakeClock(time.Unix(0, 0))
	s, err := New(Config{
		Model:       model,
		Rates:       slicing.NewRateList(0.25, 4),
		InputShape:  []int{4},
		SLO:         2 * time.Second,
		Workers:     2,
		Clock:       clk,
		SampleTime:  func(r float64) float64 { return r * r },
		QueueFactor: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Stop() })

	var chans []<-chan Result
	for k := 0; k < 2; k++ {
		ch, err := s.Submit(input(int64(k)))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
		tickSync(s, clk, time.Second)
	}
	// Both windows are in the scheduler; with two workers the pool splits
	// one worker per window. Wait until both shards are genuinely blocked
	// inside Infer — concurrent by construction — then release them.
	<-arrived
	<-arrived
	close(gate)
	for _, ch := range chans {
		<-ch
	}
	if got := peak.Load(); got != 2 {
		t.Fatalf("peak concurrent window shards %d, want 2 (partitioned pool)", got)
	}
}

// probeLayer counts concurrent Infer calls and blocks them on a gate so the
// test can observe true overlap.
type probeLayer struct {
	gate           chan struct{}
	arrived        chan struct{}
	inFlight, peak *atomic.Int64
}

func (p *probeLayer) Forward(_ *nn.Context, x *tensor.Tensor) *tensor.Tensor  { return x }
func (p *probeLayer) Backward(_ *nn.Context, d *tensor.Tensor) *tensor.Tensor { return d }
func (p *probeLayer) Params() []*nn.Param                                     { return nil }
func (p *probeLayer) Infer(_ *nn.Context, x *tensor.Tensor) *tensor.Tensor {
	n := p.inFlight.Add(1)
	for {
		cur := p.peak.Load()
		if n <= cur || p.peak.CompareAndSwap(cur, n) {
			break
		}
	}
	p.arrived <- struct{}{}
	<-p.gate
	p.inFlight.Add(-1)
	return x
}

// TestSchedulerHammer floods a real-clock server from many goroutines while
// windows churn — the -race exercise for the concurrent dispatcher. Every
// accepted query must be answered exactly once, and the counters must
// reconcile.
func TestSchedulerHammer(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, err := New(Config{
		Model:       models.NewMLP(4, []int{8, 8}, 3, 4, rng),
		Rates:       slicing.NewRateList(0.25, 4),
		InputShape:  []int{4},
		SLO:         4 * time.Millisecond,
		Workers:     4,
		SampleTime:  func(r float64) float64 { return 2e-6 * r * r },
		QueueFactor: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	const producers = 8
	var accepted, answered atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60; i++ {
				x := tensor.New(4)
				for j := range x.Data {
					x.Data[j] = rng.NormFloat64()
				}
				ch, err := s.Submit(x)
				if err != nil {
					continue // rejections are part of the exercise
				}
				accepted.Add(1)
				res := <-ch
				if res.Output != nil {
					answered.Add(1)
				}
				if i%8 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(int64(p))
	}
	wg.Wait()
	s.Stop()
	if accepted.Load() == 0 {
		t.Fatal("hammer accepted nothing; the exercise is vacuous")
	}
	if accepted.Load() != answered.Load() {
		t.Fatalf("accepted %d but answered %d", accepted.Load(), answered.Load())
	}
	st := s.Stats()
	if st.Processed != accepted.Load() {
		t.Fatalf("stats processed %d, accepted %d", st.Processed, accepted.Load())
	}
}
