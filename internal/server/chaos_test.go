package server

import (
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"modelslicing/internal/faults"
	"modelslicing/internal/models"
	"modelslicing/internal/nn"
	"modelslicing/internal/slicing"
)

// testServerModel / testServerRates mirror testServer's fixture for tests
// that build their Config by hand (real clock, custom knobs).
func testServerModel() nn.Layer {
	return models.NewMLP(4, []int{8, 8}, 3, 4, rand.New(rand.NewSource(1)))
}

func testServerRates() slicing.RateList { return slicing.NewRateList(0.25, 4) }

// waitFired polls until the fault point has fired at least n times — the
// handshake telling a test a worker goroutine has actually reached an
// injected stall before the test advances the fake clock past the watchdog
// bound.
func waitFired(t *testing.T, p faults.Point, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for faults.Fired(p) < n {
		if time.Now().After(deadline) {
			t.Fatalf("fault %s fired %d times, want %d", p, faults.Fired(p), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestChaosPanicIsolation: a panicking shard answers its own queries with
// ErrWorkerPanic and leaves the rest of the window — and the server —
// untouched.
func TestChaosPanicIsolation(t *testing.T) {
	defer faults.Reset()
	s, clk := testServer(t, nil)
	if err := faults.Enable(faults.WorkerPanic, "first1"); err != nil {
		t.Fatal(err)
	}
	// Two queries over two workers → two single-query shards; exactly one
	// panics.
	ch1, err := s.Submit(input(1))
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := s.Submit(input(2))
	if err != nil {
		t.Fatal(err)
	}
	clk.Tick(time.Second)
	failed, answered := 0, 0
	for _, ch := range []<-chan Result{ch1, ch2} {
		res := <-ch
		switch {
		case errors.Is(res.Err, ErrWorkerPanic):
			failed++
			if res.Output != nil {
				t.Fatal("failed query carries an output")
			}
		case res.Err == nil && res.Output != nil:
			answered++
		default:
			t.Fatalf("unexpected result err=%v output=%v", res.Err, res.Output)
		}
	}
	if failed != 1 || answered != 1 {
		t.Fatalf("failed=%d answered=%d, want exactly one of each", failed, answered)
	}
	st := s.Stats()
	if st.WorkerPanics != 1 || st.FailedQueries != 1 {
		t.Fatalf("panics=%d failed=%d, want 1/1", st.WorkerPanics, st.FailedQueries)
	}
	if st.FaultsFired[string(faults.WorkerPanic)] != 1 {
		t.Fatalf("FaultsFired=%v, want worker-panic:1", st.FaultsFired)
	}

	// The pool survived: the next window serves normally.
	faults.Reset()
	ch3, err := s.Submit(input(3))
	if err != nil {
		t.Fatal(err)
	}
	clk.Tick(time.Second)
	if res := <-ch3; res.Err != nil || res.Output == nil {
		t.Fatalf("server did not recover after panic: %v", res.Err)
	}
}

// TestChaosWatchdogReplacesStuckShard: a shard stalled past StuckAfter is
// abandoned — its queries answered with ErrShardStuck, its worker replaced —
// and the server keeps serving with a whole pool.
func TestChaosWatchdogReplacesStuckShard(t *testing.T) {
	defer faults.Reset()
	s, clk := testServer(t, func(c *Config) { c.StuckAfter = 3 * time.Second })
	if err := faults.Enable(faults.ShardStall, "first1"); err != nil {
		t.Fatal(err)
	}
	ch, err := s.Submit(input(1))
	if err != nil {
		t.Fatal(err)
	}
	clk.Tick(time.Second) // window closes at t=1, shard dispatched and stalls
	waitFired(t, faults.ShardStall, 1)
	clk.Tick(time.Second) // t=2: age 1s, under the bound
	select {
	case res := <-ch:
		t.Fatalf("shard answered before the watchdog bound: %v", res.Err)
	default:
	}
	clk.Tick(time.Second) // t=3: age 2s
	clk.Tick(time.Second) // t=4: age 3s ≥ StuckAfter → abandoned
	res := <-ch
	if !errors.Is(res.Err, ErrShardStuck) {
		t.Fatalf("stuck shard answered err=%v, want ErrShardStuck", res.Err)
	}
	st := s.Stats()
	if st.StuckShards != 1 || st.WorkersReplaced != 1 {
		t.Fatalf("stuck=%d replaced=%d, want 1/1", st.StuckShards, st.WorkersReplaced)
	}

	// Release the zombie goroutine and prove the replaced pool still serves.
	faults.Reset()
	ch2, err := s.Submit(input(2))
	if err != nil {
		t.Fatal(err)
	}
	clk.Tick(time.Second)
	if res := <-ch2; res.Err != nil || res.Output == nil {
		t.Fatalf("server did not recover after abandonment: %v", res.Err)
	}
}

// TestChaosCircuitBrownout: consecutive shard failures trip the circuit, an
// open circuit pins windows to the rate floor, and the circuit closes again
// once a shard succeeds and the backlog horizon drains.
func TestChaosCircuitBrownout(t *testing.T) {
	defer faults.Reset()
	s, clk := testServer(t, func(c *Config) { c.CircuitThreshold = 2 })
	if err := faults.Enable(faults.WorkerPanic, "on"); err != nil {
		t.Fatal(err)
	}
	// Two windows, one panicking shard each → two consecutive failures.
	for i := 0; i < 2; i++ {
		ch, err := s.Submit(input(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		clk.Tick(time.Second)
		if res := <-ch; !errors.Is(res.Err, ErrWorkerPanic) {
			t.Fatalf("window %d: err=%v, want ErrWorkerPanic", i, res.Err)
		}
	}
	if !s.CircuitOpen() {
		t.Fatal("circuit still closed after two consecutive shard failures")
	}
	faults.Disable(faults.WorkerPanic)

	// A single query would be served at rate 1.0 by the normal policy; the
	// open circuit pins it to the floor.
	ch, err := s.Submit(input(10))
	if err != nil {
		t.Fatal(err)
	}
	clk.Tick(time.Second)
	res := <-ch
	if res.Err != nil || res.Rate != 0.25 {
		t.Fatalf("pinned window served at rate %v (err=%v), want floor 0.25", res.Rate, res.Err)
	}
	st := s.Stats()
	if st.CircuitTrips != 1 || !st.CircuitOpen || st.CircuitPinnedWindows != 1 {
		t.Fatalf("trips=%d open=%v pinned=%d, want 1/true/1",
			st.CircuitTrips, st.CircuitOpen, st.CircuitPinnedWindows)
	}

	// The pinned shard succeeded and the horizon drains past the next close:
	// the circuit closes and full-rate service resumes. Drain any stale tick
	// token first so the wait below observes *this* window's processing.
	select {
	case <-s.tickDone:
	default:
	}
	clk.Tick(time.Second)
	<-s.tickDone
	if s.CircuitOpen() {
		t.Fatal("circuit still open after a success and a drained horizon")
	}
	ch2, err := s.Submit(input(11))
	if err != nil {
		t.Fatal(err)
	}
	clk.Tick(time.Second)
	if res := <-ch2; res.Err != nil || res.Rate != 1.0 {
		t.Fatalf("recovered window served at rate %v (err=%v), want 1.0", res.Rate, res.Err)
	}
}

// TestChaosDropExpiredDeadline: with DropExpired set, a query whose SLO has
// already passed when a worker would start it is answered ErrExpired instead
// of computed late.
func TestChaosDropExpiredDeadline(t *testing.T) {
	defer faults.Reset()
	s, clk := testServer(t, func(c *Config) {
		c.DropExpired = true
		c.StuckAfter = -1 // the stall below is deliberate; keep the watchdog out
	})
	if err := faults.Enable(faults.ShardStall, "first2"); err != nil {
		t.Fatal(err)
	}
	// Window 1: two queries → two shards wedge both workers.
	chA, err := s.Submit(input(1))
	if err != nil {
		t.Fatal(err)
	}
	chB, err := s.Submit(input(2))
	if err != nil {
		t.Fatal(err)
	}
	clk.Tick(time.Second)
	waitFired(t, faults.ShardStall, 2)
	// Window 2: one query that will rot in the shard queue past its SLO.
	chC, err := s.Submit(input(3))
	if err != nil {
		t.Fatal(err)
	}
	clk.Tick(time.Second) // t=2: window 2 closes, no free worker
	clk.Tick(time.Second)
	clk.Tick(time.Second) // t=4: query C is 3s old, SLO is 2s
	faults.Disable(faults.ShardStall)

	// Every query aged past its deadline while the pool was wedged — the
	// stalled window's own queries included, since the expiry check runs at
	// the moment a worker would start computing. All are dropped, none
	// computed late.
	for _, ch := range []<-chan Result{chA, chB, chC} {
		res := <-ch
		if !errors.Is(res.Err, ErrExpired) {
			t.Fatalf("expired query answered err=%v, want ErrExpired", res.Err)
		}
	}
	if st := s.Stats(); st.ExpiredDropped != 3 {
		t.Fatalf("ExpiredDropped=%d, want 3", st.ExpiredDropped)
	}

	// A fresh query after the chaos is served normally.
	ch, err := s.Submit(input(4))
	if err != nil {
		t.Fatal(err)
	}
	clk.Tick(time.Second)
	if res := <-ch; res.Err != nil || res.Output == nil {
		t.Fatalf("server did not recover after expiry storm: %v", res.Err)
	}
}

// TestChaosShutdownSubmitRaceHammer: Submit racing Stop must either reject
// with ErrStopped/ErrOverloaded or deliver exactly one Result — never a hung
// channel.
func TestChaosShutdownSubmitRaceHammer(t *testing.T) {
	for round := 0; round < 8; round++ {
		s, err := New(Config{
			Model:       testServerModel(),
			Rates:       testServerRates(),
			InputShape:  []int{4},
			SLO:         10 * time.Millisecond,
			Workers:     2,
			QueueFactor: 64,
			SampleTime:  func(r float64) float64 { return 1e-6 },
		})
		if err != nil {
			t.Fatal(err)
		}
		var (
			mu    sync.Mutex
			chans []<-chan Result
			wg    sync.WaitGroup
		)
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				x := input(seed)
				for {
					ch, err := s.Submit(x)
					switch {
					case err == nil:
						mu.Lock()
						chans = append(chans, ch)
						mu.Unlock()
					case errors.Is(err, ErrStopped):
						return
					case errors.Is(err, ErrOverloaded):
						// Fine: backpressure, try again.
					default:
						panic("unexpected Submit error: " + err.Error())
					}
					runtime.Gosched()
				}
			}(int64(g))
		}
		time.Sleep(5 * time.Millisecond)
		s.Stop()
		wg.Wait()
		for i, ch := range chans {
			select {
			case <-ch:
			case <-time.After(10 * time.Second):
				t.Fatalf("round %d: accepted query %d/%d never answered", round, i, len(chans))
			}
		}
	}
}

// TestChaosSoakEveryFaultPoint drives a real-clock server through every
// injectable fault in turn and demands the one-reply invariant, recovery
// after Reset, and no leaked goroutines.
func TestChaosSoakEveryFaultPoint(t *testing.T) {
	defer faults.Reset()
	points := []struct {
		point faults.Point
		mode  string
	}{
		{faults.WorkerPanic, "p0.3"},
		{faults.ShardStall, "every4"},
		{faults.SlowCompute, "p0.5"},
		{faults.CalibrationSkew, "p0.5"},
	}
	faults.SlowComputeDelay = 2 * time.Millisecond
	before := runtime.NumGoroutine()
	for _, tc := range points {
		faults.Reset()
		s, err := New(Config{
			Model:            testServerModel(),
			Rates:            testServerRates(),
			InputShape:       []int{4},
			SLO:              40 * time.Millisecond,
			Workers:          2,
			QueueFactor:      64,
			StuckAfter:       60 * time.Millisecond,
			CalibrationBatch: 2,
			SampleTime:       func(r float64) float64 { return 1e-5 },
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.point, err)
		}
		// Non-static EWMA so calibration-skew has something to corrupt.
		s.cal.alpha = ewmaAlpha
		if err := faults.Enable(tc.point, tc.mode); err != nil {
			t.Fatal(err)
		}
		var (
			mu    sync.Mutex
			chans []<-chan Result
			wg    sync.WaitGroup
		)
		stop := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				x := input(seed)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if ch, err := s.Submit(x); err == nil {
						mu.Lock()
						chans = append(chans, ch)
						mu.Unlock()
					}
					time.Sleep(time.Millisecond)
				}
			}(int64(g))
		}
		time.Sleep(150 * time.Millisecond)
		close(stop)
		wg.Wait()
		faults.Reset() // release any stalled shard the watchdog hasn't reached
		for i, ch := range chans {
			select {
			case <-ch:
			case <-time.After(10 * time.Second):
				t.Fatalf("%s: accepted query %d/%d never answered", tc.point, i, len(chans))
			}
		}
		// The server must still serve cleanly once the chaos stops.
		deadline := time.Now().Add(5 * time.Second)
		for {
			res, err := s.Predict(input(99))
			if err == nil && res.Output != nil {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: server did not recover after faults.Reset: %v", tc.point, err)
			}
			time.Sleep(5 * time.Millisecond)
		}
		s.Stop()
	}
	// Everything spawned — workers, watchdog sweeps, zombies — must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
