package server

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"modelslicing/internal/models"
	"modelslicing/internal/serving"
	"modelslicing/internal/slicing"
)

// tickSync delivers one window boundary and waits until the batcher has
// taken the window's scheduling decision — not merely received the tick —
// so the next window's submissions cannot race into the closing window.
func tickSync(s *Server, clk *FakeClock, d time.Duration) {
	clk.Tick(d)
	<-s.tickDone
}

// TestLockstepSimulationAndLiveServerAgree is the drift guard for the
// backlog model: the clock-free simulation and the live server under a
// FakeClock are driven with the same arrival trace — window k's queries
// enqueued at k·W, the window closed at (k+1)·W — and must produce
// identical per-window rate decisions, including the cascade windows where
// backlog degrades the rate and the drained windows where it recovers.
func TestLockstepSimulationAndLiveServerAgree(t *testing.T) {
	rates := slicing.NewRateList(0.25, 4)
	// The trace walks through every regime: feasible windows, an overrun
	// (n=20 > 16 = capacity at r_min), a one-query window degraded by the
	// overrun's backlog, recovery to r=1, a second overrun (n=17), and an
	// exactly-full boundary window (n=16).
	arrivals := []int{3, 20, 1, 1, 0, 17, 2, 1, 5, 16, 1, 0, 1}

	simCfg := serving.Config{LatencySLO: 2, FullSampleTime: 1, Rates: rates}
	sim := serving.Simulate(simCfg, arrivals)

	rng := rand.New(rand.NewSource(1))
	clk := NewFakeClock(time.Unix(0, 0))
	s, err := New(Config{
		Model:      models.NewMLP(4, []int{8, 8}, 3, 4, rng),
		Rates:      rates,
		InputShape: []int{4},
		SLO:        2 * time.Second,
		Workers:    2,
		Clock:      clk,
		// The lockstep contract needs identical inputs, not identical
		// hardware: pin t(r) to the simulation's idealized curve and leave
		// admission wide open so the server sees the same batch sizes.
		SampleTime: func(r float64) float64 { return r * r },
		// Decisions must depend only on the modeled inputs: leave both
		// admission bounds wide open (the simulation has neither).
		QueueFactor:       1000,
		MaxBacklogWindows: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	perWindow := make([][]<-chan Result, len(arrivals))
	for k, n := range arrivals {
		for j := 0; j < n; j++ {
			ch, err := s.Submit(input(int64(100*k + j)))
			if err != nil {
				t.Fatalf("window %d submit %d: %v", k, j, err)
			}
			perWindow[k] = append(perWindow[k], ch)
		}
		tickSync(s, clk, time.Second)
	}

	for k := range arrivals {
		for i, ch := range perWindow[k] {
			res := <-ch
			if want := sim.Ticks[k].Rate; res.Rate != want {
				t.Fatalf("window %d query %d: live served at %v, simulation chose %v",
					k, i, res.Rate, want)
			}
		}
	}

	st := s.Stats()
	simInfeasible := 0
	for _, tick := range sim.Ticks {
		if tick.Infeasible {
			simInfeasible++
		}
	}
	if st.InfeasibleBatches != int64(simInfeasible) {
		t.Fatalf("live infeasible batches %d, simulation %d", st.InfeasibleBatches, simInfeasible)
	}
	if st.DegradedBatches != int64(sim.DegradedWindows) {
		t.Fatalf("live degraded batches %d, simulation %d", st.DegradedBatches, sim.DegradedWindows)
	}
	// Sanity on the trace itself: it must actually exercise the cascade.
	if simInfeasible < 2 || sim.DegradedWindows < 1 {
		t.Fatalf("trace too tame: %d infeasible, %d degraded", simInfeasible, sim.DegradedWindows)
	}
	if st.Rejected != 0 {
		t.Fatalf("lockstep run rejected %d queries; decisions are not comparable", st.Rejected)
	}
}

// TestLockstepSlackGauges cross-checks the live gauges against the
// simulation's per-tick accounting for the same trace.
func TestLockstepSlackGauges(t *testing.T) {
	rates := slicing.NewRateList(0.25, 4)
	arrivals := []int{20, 1}
	simCfg := serving.Config{LatencySLO: 2, FullSampleTime: 1, Rates: rates}
	sim := serving.Simulate(simCfg, arrivals)

	rng := rand.New(rand.NewSource(2))
	clk := NewFakeClock(time.Unix(0, 0))
	s, err := New(Config{
		Model:             models.NewMLP(4, []int{8, 8}, 3, 4, rng),
		Rates:             rates,
		InputShape:        []int{4},
		SLO:               2 * time.Second,
		Workers:           1,
		Clock:             clk,
		SampleTime:        func(r float64) float64 { return r * r },
		QueueFactor:       1000,
		MaxBacklogWindows: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	for k, n := range arrivals {
		for j := 0; j < n; j++ {
			if _, err := s.Submit(input(int64(10*k + j))); err != nil {
				t.Fatal(err)
			}
		}
		tickSync(s, clk, time.Second)
	}
	st := s.Stats()
	last := sim.Ticks[len(sim.Ticks)-1]
	if math.Abs(st.LastSlackSeconds-last.Slack) > 1e-9 {
		t.Fatalf("live slack gauge %v, simulation %v", st.LastSlackSeconds, last.Slack)
	}
	if math.Abs(st.LastAheadSeconds-last.Ahead) > 1e-9 {
		t.Fatalf("live ahead gauge %v, simulation %v", st.LastAheadSeconds, last.Ahead)
	}
}
