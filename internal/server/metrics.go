package server

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"modelslicing/internal/obs"
	"modelslicing/internal/serving"
	"modelslicing/internal/tensor"
)

// metrics aggregates the server's counters. Hot-path counts are atomics;
// the per-rate histogram and quality accumulators take a mutex only once per
// batch, never per query.
type metrics struct {
	poolSize    int           // workers in the pool, for the utilization denominator
	processed   atomic.Int64  // queries answered
	rejected    atomic.Int64  // queries refused by admission control
	sloMisses   atomic.Int64  // answered queries whose latency exceeded T
	batches     atomic.Int64  // batches dispatched
	infeasible  atomic.Int64  // batches that could not meet their deadline at any rate
	degraded    atomic.Int64  // batches served below the empty-pool rate because of backlog
	busyNanos   atomic.Int64  // worker·nanoseconds spent processing (elapsed × granted workers)
	peakBacklog atomic.Int64  // deepest windows-in-flight watermark
	lastSlack   atomic.Uint64 // float64 bits: remaining slack of the last closed window
	lastAhead   atomic.Uint64 // float64 bits: estimated in-flight work ahead of the last closed window

	// Failure-domain counters (the fault-tolerant serving core).
	workerPanics    atomic.Int64 // shards that panicked and were recovered
	stuckShards     atomic.Int64 // shards the watchdog abandoned
	workersReplaced atomic.Int64 // fresh workers spawned for abandoned ones
	expiredDropped  atomic.Int64 // queries dropped at dispatch with an expired deadline
	failedQueries   atomic.Int64 // queries answered with an error Result
	circuitTrips    atomic.Int64 // times the brownout circuit opened
	circuitPinned   atomic.Int64 // windows rate-pinned by an open circuit
	swaps           atomic.Int64 // live model swaps completed (Server.Swap)

	mu       sync.Mutex
	rateHist map[float64]int64 // rate → queries served at it
	sumRate  float64           // Σ rate·queries, for the mean served rate
	sumAcc   float64           // Σ accuracy(rate)·queries, when configured
}

func newMetrics(poolSize int) *metrics {
	return &metrics{poolSize: max(poolSize, 1), rateHist: make(map[float64]int64)}
}

// recordDecision publishes one window's scheduling inputs the moment the
// decision is taken (the batch may settle much later).
func (m *metrics) recordDecision(d serving.Decision) {
	m.lastSlack.Store(math.Float64bits(d.Slack))
	m.lastAhead.Store(math.Float64bits(d.Ahead))
	if d.Circuit {
		m.circuitPinned.Add(1)
	}
}

// observeBacklog tracks the deepest windows-in-flight watermark.
func (m *metrics) observeBacklog(depth int64) {
	for {
		cur := m.peakBacklog.Load()
		if depth <= cur || m.peakBacklog.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// recordBatch folds one processed batch into the aggregates. Busy time is
// credited in worker·nanoseconds (summed across the window's shards), so
// concurrent windows sharing the pool cannot push utilization past 1.
func (m *metrics) recordBatch(n int, d serving.Decision, workerBusy time.Duration, acc float64, haveAcc bool) {
	m.processed.Add(int64(n))
	m.batches.Add(1)
	if !d.Feasible {
		m.infeasible.Add(1)
	}
	if d.Degraded {
		m.degraded.Add(1)
	}
	m.busyNanos.Add(int64(workerBusy))
	m.mu.Lock()
	m.rateHist[d.Rate] += int64(n)
	m.sumRate += d.Rate * float64(n)
	if haveAcc {
		m.sumAcc += acc * float64(n)
	}
	m.mu.Unlock()
}

// Stats is a point-in-time snapshot of a live server's aggregates — the
// live-path analogue of serving.Stats, measured rather than simulated.
type Stats struct {
	Processed         int64
	Rejected          int64
	SLOMisses         int64
	Batches           int64
	InfeasibleBatches int64
	// DegradedBatches counts windows served below the rate an empty pool
	// would have picked, because backlog ate their deadline slack — the
	// cascade made visible instead of surfacing as surprise SLO misses.
	DegradedBatches int64
	// WorkerPanics counts shards that panicked mid-compute and were
	// recovered; StuckShards counts shards the watchdog abandoned, and
	// WorkersReplaced the fresh workers spawned to keep the pool whole.
	WorkerPanics    int64
	StuckShards     int64
	WorkersReplaced int64
	// ExpiredDropped counts queries dropped at dispatch because their SLO
	// deadline had already passed; FailedQueries counts every query
	// answered with an error Result (panic, stuck, expired, stopped).
	ExpiredDropped int64
	FailedQueries  int64
	// CircuitOpen reports the brownout circuit's current state;
	// CircuitTrips how many times it has opened, and CircuitPinnedWindows
	// how many windows were served rate-pinned under it.
	CircuitOpen          bool
	CircuitTrips         int64
	CircuitPinnedWindows int64
	// Swaps counts completed live model swaps; SwapRampWindows is how many
	// non-empty windows of the post-swap recalibration ramp remain (zero in
	// steady state). ModelEpoch and ModelCRC identify the artifact currently
	// serving (see ModelInfo).
	Swaps           int64
	SwapRampWindows int
	ModelEpoch      uint64
	ModelCRC        uint32
	// FaultsFired is the process-wide fault-injection registry's fired
	// counts per point (empty when the chaos harness is disarmed).
	FaultsFired map[string]int64
	RateHist    map[float64]int64
	MeanRate    float64
	// WeightedAccuracy averages the configured per-rate accuracy over all
	// served queries (zero when Config.AccuracyAt is nil).
	WeightedAccuracy float64
	// Utilization is the worker pool's mean busy fraction since start:
	// worker·time spent processing over pool·time elapsed, in [0, 1] even
	// when backlogged windows run concurrently on pool partitions.
	Utilization float64
	// QueueDepth is the number of queries waiting for the next window.
	QueueDepth int
	// InFlightQueries is the number of queries dispatched but not yet
	// answered; admission control accounts for them through the backlog
	// horizon.
	InFlightQueries int
	// BacklogWindows is the number of closed windows queued or executing
	// in the scheduler right now; PeakBacklogWindows is the deepest that
	// has been.
	BacklogWindows     int
	PeakBacklogWindows int64
	// BacklogSeconds is the estimated in-flight work ahead of a window
	// closing now.
	BacklogSeconds float64
	// LastSlackSeconds / LastAheadSeconds are the deadline slack and
	// backlog the most recent window's rate decision ran against.
	LastSlackSeconds float64
	LastAheadSeconds float64
	// SampleTimes is the calibrator's current per-rate t(r) in seconds.
	SampleTimes map[float64]float64
	// PackCacheBytes is the resident per-width weight-pack memory the
	// shared model is holding for the packed GEMM path; PackCacheTierBytes
	// splits it by pack precision (f64 panels shared by the exact and fma
	// engines vs the f32 tier's scaled-float32 panels).
	PackCacheBytes     int64
	PackCacheTierBytes [tensor.NumTiers]int64
	// EngineTier is the GEMM engine tier inference runs at.
	EngineTier tensor.EngineTier
	// GemmKernels are the process-wide per-tier micro-kernel dispatch
	// counters (vector vs scalar), shared by every engine in the process.
	GemmKernels [tensor.NumTiers]tensor.KernelCounters
	// GemmFanouts / GemmFanoutWorkers are the process-wide GEMM fan-out
	// counters (tensor.GemmStats): products split across goroutines, and
	// workers spawned — shared by every engine in the process (including
	// startup calibration), not attributable to one server instance.
	GemmFanouts       int64
	GemmFanoutWorkers int64
	// Windows is the number of T/2 scheduling windows closed so far
	// (empty windows included — every tick consumes one).
	Windows int64
	// PackedEngine reports whether the packed-weight GEMM path is active.
	PackedEngine bool
	// ArenaBytes is the summed high-water activation-arena footprint across
	// the worker pool.
	ArenaBytes int64
	// Latency is the all-queries submission-to-reply latency histogram;
	// StageLatency breaks it down per pipeline stage and RateLatency per
	// served slice rate (rates that served no queries are omitted).
	Latency      obs.HistSnapshot
	StageLatency []StageLatency
	RateLatency  []RateLatency
}

// StageLatency is one pipeline stage's latency histogram snapshot.
type StageLatency struct {
	Stage string
	Hist  obs.HistSnapshot
}

// RateLatency is one slice rate's total-latency histogram snapshot.
type RateLatency struct {
	Rate float64
	Hist obs.HistSnapshot
}

// snapshot assembles Stats; elapsed is clock time since the server started.
func (m *metrics) snapshot(elapsed time.Duration) Stats {
	s := Stats{
		Processed:            m.processed.Load(),
		Rejected:             m.rejected.Load(),
		SLOMisses:            m.sloMisses.Load(),
		Batches:              m.batches.Load(),
		InfeasibleBatches:    m.infeasible.Load(),
		DegradedBatches:      m.degraded.Load(),
		WorkerPanics:         m.workerPanics.Load(),
		StuckShards:          m.stuckShards.Load(),
		WorkersReplaced:      m.workersReplaced.Load(),
		ExpiredDropped:       m.expiredDropped.Load(),
		FailedQueries:        m.failedQueries.Load(),
		CircuitTrips:         m.circuitTrips.Load(),
		CircuitPinnedWindows: m.circuitPinned.Load(),
		Swaps:                m.swaps.Load(),
		PeakBacklogWindows:   m.peakBacklog.Load(),
		LastSlackSeconds:     math.Float64frombits(m.lastSlack.Load()),
		LastAheadSeconds:     math.Float64frombits(m.lastAhead.Load()),
		RateHist:             make(map[float64]int64),
	}
	m.mu.Lock()
	for r, n := range m.rateHist {
		s.RateHist[r] = n
	}
	sumRate, sumAcc := m.sumRate, m.sumAcc
	m.mu.Unlock()
	if s.Processed > 0 {
		s.MeanRate = sumRate / float64(s.Processed)
		s.WeightedAccuracy = sumAcc / float64(s.Processed)
	}
	if elapsed > 0 {
		s.Utilization = float64(m.busyNanos.Load()) / (float64(elapsed) * float64(m.poolSize))
	}
	return s
}

// prometheus renders the snapshot in the Prometheus text exposition format.
func (s Stats) prometheus() string {
	var b []byte
	counter := func(name, help string, v int64) {
		b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)...)
	}
	gauge := func(name, help string, v float64) {
		b = append(b, fmt.Sprintf("# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)...)
	}
	counter("msserver_queries_processed_total", "Queries answered.", s.Processed)
	counter("msserver_queries_rejected_total", "Queries refused by admission control.", s.Rejected)
	counter("msserver_slo_misses_total", "Answered queries that exceeded the latency SLO.", s.SLOMisses)
	counter("msserver_batches_total", "Batches dispatched.", s.Batches)
	counter("msserver_infeasible_batches_total", "Batches that could not meet their deadline at any rate.", s.InfeasibleBatches)
	counter("msserver_degraded_batches_total", "Batches served below the empty-pool rate because of backlog.", s.DegradedBatches)
	counter("msserver_worker_panics_total", "Worker shards that panicked mid-compute and were recovered.", s.WorkerPanics)
	counter("msserver_stuck_shards_total", "Worker shards abandoned by the liveness watchdog.", s.StuckShards)
	counter("msserver_workers_replaced_total", "Fresh workers spawned to replace abandoned ones.", s.WorkersReplaced)
	counter("msserver_expired_dropped_total", "Queries dropped at dispatch because their deadline had already passed.", s.ExpiredDropped)
	counter("msserver_failed_queries_total", "Queries answered with an error result.", s.FailedQueries)
	circuit := 0.0
	if s.CircuitOpen {
		circuit = 1
	}
	gauge("msserver_circuit_state", "1 while the brownout circuit is open (rate pinned to the floor), 0 when closed.", circuit)
	counter("msserver_circuit_trips_total", "Times the brownout circuit opened on consecutive shard failures.", s.CircuitTrips)
	counter("msserver_circuit_pinned_windows_total", "Windows served rate-pinned under an open circuit.", s.CircuitPinnedWindows)
	counter("msserver_swaps_total", "Live model swaps completed.", s.Swaps)
	gauge("msserver_swap_ramp_windows", "Non-empty windows left in the post-swap recalibration ramp.", float64(s.SwapRampWindows))
	gauge("msserver_model_epoch", "Training epoch of the checkpoint currently serving.", float64(s.ModelEpoch))
	gauge("msserver_model_checkpoint_crc32", "Header CRC32 of the checkpoint currently serving (content identity; 0 for in-process models).", float64(s.ModelCRC))
	if len(s.FaultsFired) > 0 {
		points := make([]string, 0, len(s.FaultsFired))
		for p := range s.FaultsFired {
			points = append(points, p)
		}
		sort.Strings(points)
		b = append(b, "# HELP msserver_fault_fired_total Injected faults fired per fault point (chaos harness).\n# TYPE msserver_fault_fired_total counter\n"...)
		for _, p := range points {
			b = append(b, fmt.Sprintf("msserver_fault_fired_total{point=%q} %d\n", p, s.FaultsFired[p])...)
		}
	}
	gauge("msserver_queue_depth", "Queries waiting for the next window.", float64(s.QueueDepth))
	gauge("msserver_inflight_queries", "Queries dispatched but not yet answered.", float64(s.InFlightQueries))
	gauge("msserver_backlog_windows", "Closed windows queued or executing in the scheduler.", float64(s.BacklogWindows))
	gauge("msserver_backlog_peak_windows", "Deepest windows-in-flight watermark since start.", float64(s.PeakBacklogWindows))
	gauge("msserver_backlog_seconds", "Estimated in-flight work ahead of a window closing now.", s.BacklogSeconds)
	gauge("msserver_window_slack_seconds", "Deadline slack the most recent window's rate decision ran against.", s.LastSlackSeconds)
	gauge("msserver_window_ahead_seconds", "Backlog ahead of the most recent window at decision time.", s.LastAheadSeconds)
	gauge("msserver_mean_rate", "Query-weighted mean served slice rate.", s.MeanRate)
	gauge("msserver_utilization", "Worker pool mean busy fraction (worker time over pool time).", s.Utilization)
	gauge("msserver_pack_cache_bytes", "Resident per-width weight-pack memory for the packed GEMM path.", float64(s.PackCacheBytes))
	counter("msserver_gemm_fanouts_total", "Process-wide GEMM products split across goroutines (all engines in this process, calibration included).", s.GemmFanouts)
	counter("msserver_gemm_fanout_workers_total", "Process-wide worker goroutines spawned by GEMM fan-outs.", s.GemmFanoutWorkers)
	counter("msserver_windows_total", "T/2 scheduling windows closed (empty windows included).", s.Windows)
	packed := 0.0
	if s.PackedEngine {
		packed = 1
	}
	gauge("msserver_packed_engine", "1 when the packed-weight GEMM path is active, 0 when pinned unpacked.", packed)
	gauge("msserver_arena_bytes", "Summed high-water activation-arena footprint across the worker pool.", float64(s.ArenaBytes))

	b = append(b, "# HELP msserver_engine_tier Active GEMM engine tier (1 on the active tier's series).\n# TYPE msserver_engine_tier gauge\n"...)
	for tier := tensor.EngineTier(0); tier < tensor.NumTiers; tier++ {
		active := 0
		if tier == s.EngineTier {
			active = 1
		}
		b = append(b, fmt.Sprintf("msserver_engine_tier{tier=%q} %d\n", tier, active)...)
	}
	b = append(b, "# HELP msserver_pack_cache_tier_bytes Resident weight-pack memory per pack precision.\n# TYPE msserver_pack_cache_tier_bytes gauge\n"...)
	for tier := tensor.EngineTier(0); tier < tensor.NumTiers; tier++ {
		if tier == tensor.TierFMA {
			continue // the fma engine reads the exact tier's f64 panels
		}
		b = append(b, fmt.Sprintf("msserver_pack_cache_tier_bytes{tier=%q} %d\n", tier, s.PackCacheTierBytes[tier])...)
	}
	b = append(b, "# HELP msserver_gemm_kernel_total Process-wide GEMM micro-kernel dispatches per engine tier (all engines in this process, calibration included).\n# TYPE msserver_gemm_kernel_total counter\n"...)
	for tier := tensor.EngineTier(0); tier < tensor.NumTiers; tier++ {
		b = append(b, fmt.Sprintf("msserver_gemm_kernel_total{tier=%q,kernel=\"vector\"} %d\n", tier, s.GemmKernels[tier].Vector)...)
		b = append(b, fmt.Sprintf("msserver_gemm_kernel_total{tier=%q,kernel=\"scalar\"} %d\n", tier, s.GemmKernels[tier].Scalar)...)
	}

	rates := make([]float64, 0, len(s.RateHist))
	for r := range s.RateHist {
		rates = append(rates, r)
	}
	sort.Float64s(rates)
	b = append(b, "# HELP msserver_rate_queries_total Queries served per slice rate.\n# TYPE msserver_rate_queries_total counter\n"...)
	for _, r := range rates {
		b = append(b, fmt.Sprintf("msserver_rate_queries_total{rate=%q} %d\n", fmt.Sprintf("%g", r), s.RateHist[r])...)
	}
	if len(s.SampleTimes) > 0 {
		rates = rates[:0]
		for r := range s.SampleTimes {
			rates = append(rates, r)
		}
		sort.Float64s(rates)
		b = append(b, "# HELP msserver_sample_time_seconds Calibrated per-sample inference time per rate.\n# TYPE msserver_sample_time_seconds gauge\n"...)
		for _, r := range rates {
			b = append(b, fmt.Sprintf("msserver_sample_time_seconds{rate=%q} %g\n", fmt.Sprintf("%g", r), s.SampleTimes[r])...)
		}
	}

	b = obs.PromHistogram(b, "msserver_query_latency_seconds",
		"Submission-to-reply latency of answered queries.",
		[]obs.LabeledHist{{Labels: "", Hist: s.Latency}})
	stages := make([]obs.LabeledHist, 0, len(s.StageLatency))
	for _, sl := range s.StageLatency {
		stages = append(stages, obs.LabeledHist{Labels: fmt.Sprintf("stage=%q", sl.Stage), Hist: sl.Hist})
	}
	b = obs.PromHistogram(b, "msserver_stage_latency_seconds",
		"Per-stage query latency: queue (batch formation), dispatch (shard-queue wait), compute, settle.",
		stages)
	perRate := make([]obs.LabeledHist, 0, len(s.RateLatency))
	for _, rl := range s.RateLatency {
		perRate = append(perRate, obs.LabeledHist{Labels: fmt.Sprintf("rate=%q", fmt.Sprintf("%g", rl.Rate)), Hist: rl.Hist})
	}
	b = obs.PromHistogram(b, "msserver_rate_latency_seconds",
		"Submission-to-reply latency per served slice rate.",
		perRate)
	return string(b)
}
