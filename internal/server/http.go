package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"modelslicing/internal/tensor"
)

// PredictRequest is the JSON body of POST /predict: a flat row-major input
// vector matching the model's single-sample shape.
type PredictRequest struct {
	Input []float64 `json:"input"`
}

// PredictResponse is the JSON answer: the model output (e.g. class logits),
// the winning class, the slice rate the batch was served at, and the
// measured latency.
type PredictResponse struct {
	Output    []float64 `json:"output"`
	ArgMax    int       `json:"argmax"`
	Rate      float64   `json:"rate"`
	LatencyMs float64   `json:"latency_ms"`
	SLOMiss   bool      `json:"slo_miss"`
}

// Handler returns the server's HTTP API:
//
//	POST /predict  — submit one sample, blocks until its window is served
//	GET  /metrics  — Prometheus text exposition of the live counters
//	GET  /healthz  — liveness (503 once shutdown has begun)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	// The wire format is a flat row-major vector; rebuild the model's
	// single-sample shape before submitting (Submit validates the full
	// shape, not just the element count).
	want := 1
	for _, d := range s.cfg.InputShape {
		want *= d
	}
	if len(req.Input) != want {
		http.Error(w, fmt.Sprintf("input has %d elements, model wants %d (shape %v)",
			len(req.Input), want, s.cfg.InputShape), http.StatusBadRequest)
		return
	}
	x := tensor.FromSlice(req.Input, s.cfg.InputShape...)
	ch, err := s.Submit(x)
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case errors.Is(err, ErrStopped):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	select {
	case res := <-ch:
		writeJSON(w, PredictResponse{
			Output:    res.Output.Data,
			ArgMax:    res.Output.ArgMax(),
			Rate:      res.Rate,
			LatencyMs: float64(res.Latency.Microseconds()) / 1e3,
			SLOMiss:   res.SLOMiss,
		})
	case <-r.Context().Done():
		// Client gave up; the result channel is buffered so the
		// dispatcher is never blocked by the abandonment.
		http.Error(w, "client cancelled", 499)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.Stats().prometheus()))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	stopping := s.stopping
	s.mu.Unlock()
	if stopping {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, map[string]any{"status": "ok", "slo_ms": float64(s.cfg.SLO.Microseconds()) / 1e3})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
