package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"modelslicing/internal/tensor"
)

// PredictRequest is the JSON body of POST /predict: a flat row-major input
// vector matching the model's single-sample shape.
type PredictRequest struct {
	Input []float64 `json:"input"`
}

// PredictResponse is the JSON answer: the model output (e.g. class logits),
// the winning class, the slice rate the batch was served at, and the
// measured latency. Stages carries the per-stage latency breakdown when the
// request asked for it with ?debug=1.
type PredictResponse struct {
	Output    []float64      `json:"output"`
	ArgMax    int            `json:"argmax"`
	Rate      float64        `json:"rate"`
	LatencyMs float64        `json:"latency_ms"`
	SLOMiss   bool           `json:"slo_miss"`
	Stages    *PredictStages `json:"stages,omitempty"`
}

// PredictStages is the ?debug=1 stage breakdown of a query's latency:
// queue wait (batch formation), dispatch wait (scheduler shard queue),
// compute, and settle. The four sum to latency_ms.
type PredictStages struct {
	QueuedMs   float64 `json:"queued_ms"`
	DispatchMs float64 `json:"dispatch_ms"`
	ComputeMs  float64 `json:"compute_ms"`
	SettleMs   float64 `json:"settle_ms"`
}

// Handler returns the server's HTTP API:
//
//	POST /predict          — submit one sample, blocks until its window is
//	                         served; ?debug=1 adds the stage breakdown
//	GET  /metrics          — Prometheus text exposition of the live counters
//	                         and latency histograms
//	GET  /healthz          — liveness (503 once shutdown has begun)
//	GET  /state            — coordinator-facing snapshot: t(r) table, policy
//	                         window, backlog horizon, circuit state, load
//	                         gauges (what a fleet coordinator polls)
//	POST /admin/swap       — build a replacement model via Config.SwapSource
//	                         and hot-swap it in (501 when no source is
//	                         configured)
//	GET  /debug/decisions  — the window-decision flight recorder (last N
//	                         scheduling decisions with inputs and reasons);
//	                         ?n=K limits to the newest K
//	GET  /debug/trace      — sampled query spans as Chrome trace_event JSON
//	                         (load in chrome://tracing or Perfetto)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/state", s.handleState)
	mux.HandleFunc("/admin/swap", s.handleSwap)
	mux.HandleFunc("/debug/decisions", s.handleDecisions)
	mux.HandleFunc("/debug/trace", s.handleTrace)
	return mux
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	var req PredictRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	// The wire format is a flat row-major vector; rebuild the model's
	// single-sample shape before submitting (Submit validates the full
	// shape, not just the element count).
	want := 1
	for _, d := range s.cfg.InputShape {
		want *= d
	}
	if len(req.Input) != want {
		http.Error(w, fmt.Sprintf("input has %d elements, model wants %d (shape %v)",
			len(req.Input), want, s.cfg.InputShape), http.StatusBadRequest)
		return
	}
	x := tensor.FromSlice(req.Input, s.cfg.InputShape...)
	ch, err := s.Submit(x)
	switch {
	case errors.Is(err, ErrOverloaded):
		// Shed with the evidence attached: a horizon-derived backoff hint
		// (so clients wait out the actual drain instead of guessing) and
		// the flight recorder's most recent window decisions, which explain
		// what ate the admission budget.
		retryMs := s.retryAfterHeaders(w, s.clock.Now())
		writeJSONStatus(w, http.StatusServiceUnavailable, map[string]any{
			"error":            err.Error(),
			"retry_after_ms":   retryMs,
			"recent_decisions": s.recorder.Last(4),
		})
		return
	case errors.Is(err, ErrStopped):
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	select {
	case res := <-ch:
		if res.Err != nil {
			// Accepted but not answered: the shard panicked, was abandoned by
			// the watchdog, or the query expired or was caught by shutdown.
			// The failure is server-side and transient — the pool has already
			// been repaired — so 500 with the cause, not a hung connection.
			writeJSONStatus(w, http.StatusInternalServerError, map[string]any{
				"error":      res.Err.Error(),
				"rate":       res.Rate,
				"latency_ms": float64(res.Latency.Microseconds()) / 1e3,
			})
			return
		}
		resp := PredictResponse{
			Output:    res.Output.Data,
			ArgMax:    res.Output.ArgMax(),
			Rate:      res.Rate,
			LatencyMs: float64(res.Latency.Microseconds()) / 1e3,
			SLOMiss:   res.SLOMiss,
		}
		if r.URL.Query().Get("debug") == "1" {
			ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
			resp.Stages = &PredictStages{
				QueuedMs:   ms(res.Queued),
				DispatchMs: ms(res.Dispatch),
				ComputeMs:  ms(res.Compute),
				SettleMs:   ms(res.Settle),
			}
		}
		writeJSON(w, resp)
	case <-r.Context().Done():
		// Client gave up; the result channel is buffered so the
		// dispatcher is never blocked by the abandonment.
		http.Error(w, "client cancelled", 499)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(s.Stats().prometheus()))
}

// handleDecisions dumps the window-decision flight recorder, oldest first.
// ?n=K restricts the dump to the newest K decisions.
func (s *Server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	recs := s.recorder.Snapshot()
	if v := r.URL.Query().Get("n"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			recs = s.recorder.Last(n)
		}
	}
	writeJSON(w, map[string]any{
		"total_recorded": s.recorder.Total(),
		"decisions":      recs,
	})
}

// handleTrace streams the sampled query spans as a Chrome trace_event JSON
// array.
func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.tracer.WriteTraceEvents(w)
}

// handleSwap triggers a live model swap through Config.SwapSource: the
// source builds the replacement (typically re-opening the checkpoint path),
// Swap recalibrates and publishes it, and the response reports the new model
// identity — what a rolling fleet operation polls for to confirm promotion.
func (s *Server) handleSwap(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST", http.StatusMethodNotAllowed)
		return
	}
	if s.cfg.SwapSource == nil {
		http.Error(w, "no swap source configured (server is not running from a checkpoint)", http.StatusNotImplemented)
		return
	}
	ns, info, err := s.cfg.SwapSource()
	if err != nil {
		writeJSONStatus(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	if err := s.Swap(ns, info); err != nil {
		writeJSONStatus(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, map[string]any{
		"swapped":          true,
		"model_epoch":      info.Epoch,
		"checkpoint_crc32": fmt.Sprintf("%08x", info.CRC),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	stopping := s.stopping
	info := s.info
	s.mu.Unlock()
	if stopping {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, map[string]any{
		"status":           "ok",
		"slo_ms":           float64(s.cfg.SLO.Microseconds()) / 1e3,
		"circuit_open":     s.CircuitOpen(),
		"model_epoch":      info.Epoch,
		"checkpoint_crc32": fmt.Sprintf("%08x", info.CRC),
		"swaps":            s.metrics.swaps.Load(),
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
