package server

import (
	"sync"
	"time"

	"modelslicing/internal/faults"
	"modelslicing/internal/slicing"
)

// Calibrator maintains the measured per-sample inference time t(r) for every
// deployable rate. The paper's analysis assumes t(r) = t·r² (Equation 3);
// real layer stacks deviate — input/output layers are excluded from slicing,
// GEMM efficiency varies with width — so the server measures t(r) on its own
// hardware at startup and keeps refining it with an exponentially weighted
// average of observed batch times. The Equation-3 policy then budgets against
// reality instead of the idealization.
//
// t(r) is the *pool-effective* per-sample time: both the startup measurement
// and online observations time whole batches through the sharded worker
// pool, so the scalar already reflects worker parallelism. Small batches
// (fewer samples than workers) have a higher effective per-sample cost than
// the estimate, but a batch that small is far from the window's capacity
// boundary, where the estimate is the one that matters — so observations
// from tiny batches are excluded rather than letting their fixed overhead
// whip the EWMA around.
type Calibrator struct {
	mu        sync.RWMutex
	perSample map[float64]float64 // rate → seconds per sample
	alpha     float64             // EWMA weight of a new observation
	minN      int                 // smallest batch worth folding in
	rampLeft  int                 // observations left at the boosted post-swap alpha
}

// ewmaAlpha weights online observations: high enough to track thermal or
// load drift within a few hundred batches, low enough that one noisy batch
// cannot flip the policy.
const ewmaAlpha = 0.1

// rampAlpha is the boosted observation weight during a post-swap
// recalibration ramp: heavy enough that a handful of windows pulls t(r)
// onto the new model, still averaging enough that one noisy batch cannot
// set it alone.
const rampAlpha = 0.5

// newStaticCalibrator pins t(r) to a fixed curve and ignores observations —
// used by tests and by callers that already profiled their model.
func newStaticCalibrator(rates slicing.RateList, sampleTime func(r float64) float64) *Calibrator {
	c := &Calibrator{perSample: make(map[float64]float64), alpha: 0}
	for _, r := range rates {
		c.perSample[r] = sampleTime(r)
	}
	return c
}

// SampleTime returns the current estimate of t(r) in seconds.
func (c *Calibrator) SampleTime(r float64) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.perSample[r]
}

// set stores a startup measurement.
func (c *Calibrator) set(r, perSample float64) {
	c.mu.Lock()
	c.perSample[r] = perSample
	c.mu.Unlock()
}

// Observe folds a served batch's measured duration into the estimate.
// Batches smaller than the calibration batch are ignored (see type doc), as
// are non-positive durations: batch times come from the injected clock, and
// a fake clock that does not advance during processing must not collapse
// the estimates to zero.
func (c *Calibrator) Observe(r float64, n int, elapsed time.Duration) {
	if n < c.minN || n <= 0 || c.alpha == 0 || elapsed <= 0 {
		return
	}
	if faults.Should(faults.CalibrationSkew) {
		// Chaos harness: feed the EWMA a wildly pessimistic observation, as a
		// thermal spike or a noisy neighbor would. The policy must degrade
		// rates, not crash or wedge, and recover as clean observations
		// return.
		elapsed *= 8
	}
	perSample := elapsed.Seconds() / float64(n)
	c.mu.Lock()
	alpha := c.alpha
	if c.rampLeft > 0 {
		// Post-swap ramp: the stored estimates were seeded by a brief
		// recalibration of the new model; weigh live observations heavily
		// until the ramp is spent so t(r) locks onto production reality fast.
		alpha = rampAlpha
		c.rampLeft--
	}
	if old, ok := c.perSample[r]; ok {
		c.perSample[r] = (1-alpha)*old + alpha*perSample
	} else {
		c.perSample[r] = perSample
	}
	c.mu.Unlock()
}

// Ramp arms the post-swap recalibration ramp: the next n qualifying
// observations fold in at rampAlpha instead of the steady-state EWMA weight.
// No-op on a static calibrator (which ignores observations entirely).
func (c *Calibrator) Ramp(n int) {
	c.mu.Lock()
	c.rampLeft = n
	c.mu.Unlock()
}

// Snapshot returns a copy of the current per-rate estimates (for /metrics).
func (c *Calibrator) Snapshot() map[float64]float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[float64]float64, len(c.perSample))
	for r, t := range c.perSample {
		out[r] = t
	}
	return out
}
