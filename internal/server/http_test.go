package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"modelslicing/internal/models"
	"modelslicing/internal/slicing"
)

// liveServer runs on the real clock with a short SLO so HTTP requests are
// answered within a few window ticks.
func liveServer(t *testing.T) *Server {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	s, err := New(Config{
		Model:            models.NewMLP(4, []int{8, 8}, 3, 4, rng),
		Rates:            slicing.NewRateList(0.25, 4),
		InputShape:       []int{4},
		SLO:              20 * time.Millisecond,
		CalibrationBatch: 8,
		// Pin the tier so the /metrics assertions survive the CI sweeps
		// over MS_ENGINE_TIER.
		Tier: "exact",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s
}

func TestHTTPPredict(t *testing.T) {
	s := liveServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(PredictRequest{Input: []float64{1, -0.5, 2, 0.3}})
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Output) != 3 || out.ArgMax < 0 || out.ArgMax > 2 {
		t.Fatalf("bad response %+v", out)
	}
	if out.Rate < 0.25 || out.Rate > 1 {
		t.Fatalf("served rate %v outside the rate list", out.Rate)
	}
}

func TestHTTPPredictRejectsBadInput(t *testing.T) {
	s := liveServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, body := range []string{`{"input":[1,2]}`, `not json`} {
		resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /predict: status %d, want 405", resp.StatusCode)
	}
}

func TestHTTPMetricsAndHealth(t *testing.T) {
	s := liveServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Serve one query so the counters are non-trivial.
	body, _ := json.Marshal(PredictRequest{Input: []float64{0, 1, 0, -1}})
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, w := range []string{
		"msserver_queries_processed_total 1",
		"msserver_batches_total",
		`msserver_sample_time_seconds{rate="0.25"}`,
		"# TYPE msserver_queue_depth gauge",
		"# TYPE msserver_pack_cache_bytes gauge",
		"msserver_gemm_fanouts_total",
		"msserver_gemm_fanout_workers_total",
		"# TYPE msserver_backlog_windows gauge",
		"# TYPE msserver_backlog_seconds gauge",
		"# TYPE msserver_backlog_peak_windows gauge",
		"# TYPE msserver_window_slack_seconds gauge",
		"# TYPE msserver_window_ahead_seconds gauge",
		"# TYPE msserver_inflight_queries gauge",
		"msserver_degraded_batches_total",
		`msserver_engine_tier{tier="exact"} 1`,
		`msserver_engine_tier{tier="fma"} 0`,
		`msserver_pack_cache_tier_bytes{tier="f32"}`,
		`msserver_gemm_kernel_total{tier="exact",kernel="scalar"}`,
		`msserver_gemm_kernel_total{tier="fma",kernel="vector"}`,
		// Failure-domain surface: a healthy run exposes the counters at
		// zero and the brownout circuit closed.
		"msserver_worker_panics_total 0",
		"msserver_stuck_shards_total 0",
		"msserver_workers_replaced_total 0",
		"msserver_failed_queries_total 0",
		"msserver_circuit_state 0",
		"msserver_circuit_trips_total 0",
		"msserver_circuit_pinned_windows_total 0",
	} {
		if !strings.Contains(text, w) {
			t.Fatalf("metrics missing %q:\n%s", w, text)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status      string  `json:"status"`
		SLOms       float64 `json:"slo_ms"`
		CircuitOpen *bool   `json:"circuit_open"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if health.Status != "ok" || health.SLOms != 20 {
		t.Fatalf("healthz body %+v", health)
	}
	if health.CircuitOpen == nil || *health.CircuitOpen {
		t.Fatalf("healthz circuit_open %v, want present and false", health.CircuitOpen)
	}

	s.Stop()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after stop: %d, want 503", resp.StatusCode)
	}
}
