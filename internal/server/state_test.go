package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"modelslicing/internal/faults"
)

// TestStateSnapshot pins the coordinator-facing /state contract: the fields
// a fleet coordinator rebuilds its replica model from — policy axis, sorted
// t(r) table, backlog horizon — both via the method and over HTTP.
func TestStateSnapshot(t *testing.T) {
	s, clk := testServer(t, func(c *Config) {
		c.QueueFactor = 1000
		c.MaxBacklogWindows = 1000
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st := s.State()
	if st.SLOms != 2000 || st.WindowS != 1 {
		t.Fatalf("policy axis slo_ms=%g window_s=%g, want 2000/1", st.SLOms, st.WindowS)
	}
	if len(st.Rates) != 4 || st.Rates[0] != 0.25 || st.Rates[3] != 1 {
		t.Fatalf("rates %v", st.Rates)
	}
	for i := 1; i < len(st.SampleTimes); i++ {
		if st.SampleTimes[i].Rate <= st.SampleTimes[i-1].Rate {
			t.Fatalf("sample_times not sorted ascending: %v", st.SampleTimes)
		}
	}
	if st.BacklogAheadS != 0 || st.QueueDepth != 0 || st.CircuitOpen || st.Stopping {
		t.Fatalf("fresh server state %+v", st)
	}

	// 32 pending queries at rate 0.25 are 2 s of work against a 1 s window:
	// the close dispatches the batch, so the horizon runs 2 s past the
	// close instant.
	for i := 0; i < 32; i++ {
		if _, err := s.Submit(input(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if st = s.State(); st.QueueDepth != 32 {
		t.Fatalf("queue depth %d, want 32", st.QueueDepth)
	}
	clk.Tick(time.Second)
	var wire State
	resp, err := http.Get(ts.URL + "/state")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if wire.BacklogAheadS != 2 {
		t.Fatalf("backlog_ahead_s %g, want 2 (the batch was just dispatched)", wire.BacklogAheadS)
	}
	if wire.Windows != 1 || wire.QueueDepth != 0 {
		t.Fatalf("wire state after close %+v", wire)
	}
}

func TestSampleTimeTableNearestFallback(t *testing.T) {
	f := SampleTimeTable([]RateTime{{Rate: 1, Seconds: 1}, {Rate: 0.25, Seconds: 0.0625}, {Rate: 0.5, Seconds: 0.25}})
	for _, tc := range []struct{ r, want float64 }{
		{0.25, 0.0625}, {0.5, 0.25}, {1, 1}, // exact rows
		{0.3, 0.0625}, {0.7, 0.25}, {2, 1}, // nearest known rate
	} {
		if got := f(tc.r); got != tc.want {
			t.Fatalf("t(%g) = %g, want %g", tc.r, got, tc.want)
		}
	}
	if got := SampleTimeTable(nil)(0.5); got != 0 {
		t.Fatalf("empty table t(0.5) = %g, want 0", got)
	}
}

// TestRetryAfterTracksHorizon pins the Retry-After derivation: the wait is
// when admitting one more window of traffic becomes feasible — the backlog
// horizon minus the half-window admission lookahead and the window budget —
// floored at one half-window so clients never busy-poll.
func TestRetryAfterTracksHorizon(t *testing.T) {
	s, clk := testServer(t, func(c *Config) {
		c.QueueFactor = 1000
		c.MaxBacklogWindows = 1000
	})
	halfWindow := time.Second // SLO 2 s

	// Empty backlog: nothing to wait out; the floor applies.
	if got := s.RetryAfter(clk.Now()); got != halfWindow {
		t.Fatalf("empty-backlog RetryAfter %v, want the %v floor", got, halfWindow)
	}

	// 128 queries at rate 0.25 are 8 s of work: after the close at t=1 the
	// horizon sits at 9 s. A query admitted after the wait lands in a window
	// whose slack clears the remaining backlog: 9 − 1(now) − 1(half-window
	// lookahead) − 1(window budget) = 6 s.
	for i := 0; i < 128; i++ {
		if _, err := s.Submit(input(int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	clk.Tick(time.Second)
	if ahead := s.State().BacklogAheadS; ahead != 8 {
		t.Fatalf("backlog ahead %g s, want 8", ahead)
	}
	if got, want := s.RetryAfter(clk.Now()), 6*time.Second; got != want {
		t.Fatalf("RetryAfter %v, want %v (horizon-derived)", got, want)
	}

	// The wait drains with the clock, back down to the floor.
	clk.Tick(5 * time.Second)
	if got := s.RetryAfter(clk.Now()); got != halfWindow {
		t.Fatalf("drained RetryAfter %v, want the %v floor", got, halfWindow)
	}
}

// TestHTTPOverloadRetryAfter pins the satellite contract: a 503 from
// admission control carries the standard integer-seconds Retry-After header
// and the exact retry_after_ms in the body, both derived from the horizon.
func TestHTTPOverloadRetryAfter(t *testing.T) {
	s, clk := testServer(t, func(c *Config) { c.FixedRate = 1.0 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Fixed-width capacity is one query per window; the first occupies it.
	if _, err := s.Submit(input(1)); err != nil {
		t.Fatal(err)
	}
	wantMs := float64(s.RetryAfter(clk.Now()).Microseconds()) / 1e3

	reqBody, _ := json.Marshal(PredictRequest{Input: []float64{1, 0, -1, 0.5}})
	resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if h := resp.Header.Get("Retry-After"); h != "1" {
		t.Fatalf("Retry-After header %q, want %q (1 s half-window floor, integer ceiling)", h, "1")
	}
	var body struct {
		Error        string  `json:"error"`
		RetryAfterMs float64 `json:"retry_after_ms"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.RetryAfterMs != wantMs {
		t.Fatalf("retry_after_ms %g, want %g", body.RetryAfterMs, wantMs)
	}
	if body.Error == "" {
		t.Fatal("503 body missing the error string")
	}
}

// TestDrainSweepEveryConfigurable pins the shutdown-drain sweep interval:
// the former hard-coded 50 ms is now the default of Config.DrainSweepEvery,
// and a configured value drives the real-time watchdog sweep that lets Stop
// reclaim a shard wedged during shutdown.
func TestDrainSweepEveryConfigurable(t *testing.T) {
	s, _ := testServer(t, nil)
	if got := s.cfg.DrainSweepEvery; got != 50*time.Millisecond {
		t.Fatalf("default DrainSweepEvery %v, want 50ms", got)
	}

	s, clk := testServer(t, func(c *Config) {
		c.DrainSweepEvery = 2 * time.Millisecond
		c.StuckAfter = 3 * time.Second
	})
	if err := faults.Enable(faults.ShardStall, "first1"); err != nil {
		t.Fatal(err)
	}
	defer faults.Reset()
	ch, err := s.Submit(input(1))
	if err != nil {
		t.Fatal(err)
	}
	clk.Tick(time.Second) // dispatch the window; the shard stalls
	waitFired(t, faults.ShardStall, 1)
	// Move time past the watchdog bound WITHOUT a window tick: the batch
	// ticker is about to exit, so only the drain sweep can see the stuck
	// shard. Stop must still return promptly.
	clk.Advance(4 * time.Second)
	done := make(chan struct{})
	go func() { s.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Stop wedged on a stuck shard; the drain sweep never ran")
	}
	if res := <-ch; !errors.Is(res.Err, ErrShardStuck) {
		t.Fatalf("stalled query answered err=%v, want ErrShardStuck", res.Err)
	}
}
