package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// RateTime is one row of the calibrated t(r) table in a State snapshot.
// (A JSON object keyed by rate would force float-keyed maps on every
// consumer; an explicit array does not.)
type RateTime struct {
	Rate    float64 `json:"rate"`
	Seconds float64 `json:"seconds"`
}

// State is the cheap coordinator-facing snapshot served at GET /state: just
// enough for a fleet coordinator to rebuild this replica's Equation-3 model
// remotely — the calibrated t(r) table and policy window to reconstruct its
// serving.Policy, and the backlog horizon to seed a serving.Backlog — plus
// the health bits (circuit, stopping) that feed routing penalties. Every
// field is a scalar or a short array; polling it each health-check interval
// costs the replica two mutex acquisitions and one small JSON encode.
type State struct {
	// SLOms and WindowS describe the policy axis: the latency bound T in
	// milliseconds, and the (headroom-derated) policy window in seconds.
	SLOms   float64 `json:"slo_ms"`
	WindowS float64 `json:"window_s"`
	// Headroom is the configured slack derate in (0, 1].
	Headroom float64 `json:"headroom"`
	// Rates are the deployable slice rates; SampleTimes the calibrator's
	// current per-sample t(r) estimates.
	Rates       []float64  `json:"rates"`
	SampleTimes []RateTime `json:"sample_times"`
	// BacklogAheadS is the estimated in-flight work beyond the snapshot
	// instant — the replica's completion horizon relative to its own now,
	// the quantity a coordinator folds into its replica model.
	BacklogAheadS  float64 `json:"backlog_ahead_s"`
	BacklogWindows int     `json:"backlog_windows"`
	// QueueDepth and InFlight are the instantaneous load gauges; Windows
	// the T/2 sequence counter.
	QueueDepth int   `json:"queue_depth"`
	InFlight   int   `json:"inflight"`
	Windows    int64 `json:"windows"`
	// CircuitOpen marks the brownout circuit; Stopping marks shutdown.
	CircuitOpen bool `json:"circuit_open"`
	Stopping    bool `json:"stopping"`
	// ModelEpoch and ModelCRC identify the artifact currently serving —
	// the checkpoint's recorded training epoch and its header CRC32 as a
	// %08x string ("00000000" for in-process models). Swaps counts
	// completed live swaps, so a rolling fleet operation can watch each
	// replica's identity flip.
	ModelEpoch uint64 `json:"model_epoch"`
	ModelCRC   string `json:"checkpoint_crc32"`
	Swaps      int64  `json:"swaps"`
}

// State snapshots the coordinator-facing replica state.
func (s *Server) State() State {
	now := s.clock.Now()
	st := State{
		SLOms:    float64(s.cfg.SLO.Microseconds()) / 1e3,
		WindowS:  s.policy.Window,
		Headroom: s.cfg.Headroom,
		Rates:    append([]float64(nil), s.cfg.Rates...),
	}
	for r, t := range s.cal.Snapshot() {
		st.SampleTimes = append(st.SampleTimes, RateTime{Rate: r, Seconds: t})
	}
	sortRateTimes(st.SampleTimes)
	s.mu.Lock()
	st.BacklogAheadS = s.backlog.Ahead(s.sinceStart(now))
	st.QueueDepth = len(s.pending)
	st.InFlight = s.inflight
	st.Windows = s.winSeq
	st.CircuitOpen = s.circuitOpen
	st.Stopping = s.stopping
	st.ModelEpoch = s.info.Epoch
	st.ModelCRC = fmt.Sprintf("%08x", s.info.CRC)
	s.mu.Unlock()
	st.Swaps = s.metrics.swaps.Load()
	st.BacklogWindows = s.sched.depth()
	return st
}

func sortRateTimes(ts []RateTime) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].Rate < ts[j-1].Rate; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// SampleTimeTable converts a polled t(r) table back into the function form
// serving.Policy wants, with nearest-known-rate fallback for rates the table
// does not list (a replica mid-calibration, or a fleet with divergent rate
// sets).
func SampleTimeTable(ts []RateTime) func(r float64) float64 {
	table := append([]RateTime(nil), ts...)
	sortRateTimes(table)
	return func(r float64) float64 {
		if len(table) == 0 {
			return 0
		}
		best, dist := table[0].Seconds, absF(table[0].Rate-r)
		for _, e := range table[1:] {
			if d := absF(e.Rate - r); d < dist {
				best, dist = e.Seconds, d
			}
		}
		return best
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func (s *Server) handleState(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.State())
}

// retryAfterHeaders stamps a 503's backoff hint in both granularities: the
// standard integer-seconds Retry-After header (ceiling, minimum 1 — external
// clients), and the exact retry_after_ms the JSON body carries for the fleet
// coordinator, whose windows are far shorter than a second.
func (s *Server) retryAfterHeaders(w http.ResponseWriter, now time.Time) float64 {
	d := s.RetryAfter(now)
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	return float64(d.Microseconds()) / 1e3
}
