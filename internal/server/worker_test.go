package server

import (
	"math/rand"
	"testing"
	"time"

	"modelslicing/internal/nn"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
)

// TestWorkersShareOneWeightSet pins the memory claim of the zero-copy
// engine: every worker serves from the same Shared instance (O(params)
// total), rather than holding per-(worker, rate) Extract-ed replicas.
func TestWorkersShareOneWeightSet(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	model := nn.NewSequential(
		nn.NewDense(8, 16, nn.Fixed(), nn.Sliced(4), true, rng),
		nn.NewReLU(),
		nn.NewDense(16, 3, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	s, err := New(Config{
		Model:      model,
		Rates:      slicing.NewRateList(0.25, 4),
		InputShape: []int{8},
		SLO:        50 * time.Millisecond,
		Workers:    4,
		SampleTime: func(r float64) float64 { return 1e-6 * r * r },
		Clock:      NewFakeClock(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if len(s.workers) != 4 {
		t.Fatalf("want 4 workers, have %d", len(s.workers))
	}
	// Workers hold no weights at all — just arenas; every shard arrives with
	// the server's single Shared (captured per window), which wraps the
	// parent model in place.
	if s.shared.Model() != nn.Layer(model) {
		t.Fatal("server does not serve the parent model in place")
	}
	for i, wk := range s.workers {
		if wk.arena == nil {
			t.Fatalf("worker %d has no arena", i)
		}
	}
}

// opaqueLayer is a Layer without an Infer implementation.
type opaqueLayer struct{}

func (opaqueLayer) Forward(*nn.Context, *tensor.Tensor) *tensor.Tensor  { return nil }
func (opaqueLayer) Backward(*nn.Context, *tensor.Tensor) *tensor.Tensor { return nil }
func (opaqueLayer) Params() []*nn.Param                                 { return nil }

// TestServerRejectsNonInferableModel pins the loud-failure contract: a model
// containing a layer without the read-only inference path must be rejected
// at construction (the Forward fallback would race across worker shards).
func TestServerRejectsNonInferableModel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	model := nn.NewSequential(
		nn.NewDense(4, 4, nn.Fixed(), nn.Fixed(), true, rng),
		opaqueLayer{},
	)
	_, err := New(Config{
		Model:      model,
		Rates:      slicing.NewRateList(0.25, 4),
		InputShape: []int{4},
		SLO:        50 * time.Millisecond,
		SampleTime: func(r float64) float64 { return 1e-6 },
		Clock:      NewFakeClock(time.Unix(0, 0)),
	})
	if err == nil {
		t.Fatal("New accepted a model with a non-Inferer layer")
	}
}

// TestWorkerRunMatchesDirectInference verifies the sharded arena-backed
// batch path returns exactly what a direct shared-path inference returns.
func TestWorkerRunMatchesDirectInference(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	model := nn.NewSequential(
		nn.NewDense(6, 12, nn.Fixed(), nn.Sliced(4), true, rng),
		nn.NewReLU(),
		nn.NewDense(12, 4, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	rates := slicing.NewRateList(0.25, 4)
	shared := slicing.NewShared(model, rates)
	wk := &worker{arena: tensor.NewArena()}

	const n = 5
	queries := make([]*query, n)
	batch := tensor.New(n, 6)
	for i := range queries {
		x := tensor.New(6)
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64()
		}
		queries[i] = &query{x: x}
		copy(batch.Data[i*6:(i+1)*6], x.Data)
	}
	for _, r := range rates {
		wk.run(shared, queries, r, []int{6})
		want := shared.Infer(r, batch, nil)
		for i, q := range queries {
			row := q.result
			for j := range row.Data {
				if row.Data[j] != want.Data[i*4+j] {
					t.Fatalf("rate %v query %d: sharded result diverges from direct inference", r, i)
				}
			}
		}
	}
}
