package server

import (
	"sync"
	"time"
)

// scheduler is the dispatch half of the server: closed windows are sliced
// into pool-sized shards on a single FIFO work queue, drained by whichever
// workers are idle. Its contracts fix the serving-window latency cascade:
//
//   - enqueue never blocks, so the batch ticker keeps closing windows no
//     matter how far processing has fallen behind (the old fixed-size
//     dispatch channel parked up to 8 windows invisibly, then stalled the
//     ticker itself). Admission control — the backlog-horizon budget plus
//     the MaxBacklogWindows safety valve — is what bounds the queue.
//   - windows drain in close order (earliest deadline first), and because
//     workers pull *shards*, not whole windows, a freed worker immediately
//     joins the oldest unfinished window: a lone window spreads across the
//     whole idle pool, a backlog overlaps window k+1 with the tail of
//     window k, and no worker idles while any shard waits — the
//     work-conserving behavior the Backlog horizon models.
//   - each in-flight shard holds exactly one worker, bounding concurrency
//     by the pool size — no unbounded goroutines.
type scheduler struct {
	srv  *Server
	pool int // total workers, for shard sizing

	mu      sync.Mutex
	tasks   []*task   // window shards in window-close order
	free    []*worker // idle workers
	jobs    int       // windows enqueued but not yet settled
	running int       // shards currently executing
	closed  bool      // no further enqueues (shutdown)

	wake chan struct{} // capacity 1: queue or pool changed
	done chan struct{} // closed once drained after shutdown
}

// task is one contiguous shard of a window's batch.
type task struct {
	job   *batchJob
	shard []*query
}

// newScheduler takes ownership of the worker pool and starts the loop.
func newScheduler(srv *Server, workers []*worker) *scheduler {
	d := &scheduler{
		srv:  srv,
		pool: len(workers),
		free: append([]*worker(nil), workers...),
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go d.loop()
	return d
}

// enqueue slices one closed window into at most pool shards and appends
// them to the work queue. It never blocks, and it returns the
// windows-in-flight depth including the new window — measured under the
// queue lock, so the caller's peak-backlog watermark cannot miss a
// concurrent dequeue. The shard size mirrors what runBatchOn would give
// every worker on an idle pool; under backlog the same shards simply start
// staggered as workers free up.
func (d *scheduler) enqueue(job *batchJob) (depth int) {
	n := len(job.queries)
	per := (n + d.pool - 1) / d.pool
	job.shards = (n + per - 1) / per
	job.remaining.Store(int32(job.shards))
	d.mu.Lock()
	for lo := 0; lo < n; lo += per {
		hi := min(lo+per, n)
		d.tasks = append(d.tasks, &task{job: job, shard: job.queries[lo:hi]})
	}
	d.jobs++
	depth = d.jobs
	d.mu.Unlock()
	d.notify()
	return depth
}

// shutdown marks the end of input; done closes once the queue has drained
// and every running shard has settled.
func (d *scheduler) shutdown() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.notify()
}

// depth reports closed windows not yet fully processed.
func (d *scheduler) depth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.jobs
}

func (d *scheduler) notify() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// loop pairs idle workers with waiting shards, oldest window first.
func (d *scheduler) loop() {
	defer close(d.done)
	for {
		d.mu.Lock()
		for len(d.tasks) > 0 && len(d.free) > 0 {
			t := d.tasks[0]
			d.tasks = d.tasks[1:]
			wk := d.free[len(d.free)-1]
			d.free = d.free[:len(d.free)-1]
			d.running++
			go d.run(t, wk)
		}
		exit := d.closed && len(d.tasks) == 0 && d.running == 0
		d.mu.Unlock()
		if exit {
			return
		}
		<-d.wake
	}
}

// run executes one shard; whoever finishes a window's last shard settles
// the whole window.
func (d *scheduler) run(t *task, wk *worker) {
	s := d.srv
	start := s.clock.Now()
	wk.run(t.shard, t.job.decision.Rate, s.cfg.InputShape)
	end := s.clock.Now()
	t.job.workerNanos.Add(int64(end.Sub(start)))
	// Span stamps for the shard's queries: written before the remaining
	// counter's atomic decrement below, which is what publishes the shard to
	// the settling goroutine — same ordering q.result already relies on.
	for _, q := range t.shard {
		q.computeStart, q.computeEnd = start, end
	}

	last := t.job.remaining.Add(-1) == 0
	if last {
		d.finish(t.job)
	}
	d.mu.Lock()
	d.free = append(d.free, wk)
	d.running--
	if last {
		d.jobs--
	}
	d.mu.Unlock()
	d.notify()
}

// finish folds a completed window back into the server: the calibrator
// sees the pool-effective batch time — accumulated worker·time divided by
// the shard count (the concurrency the batch could actually use; the pool
// size for any window at least one shard per worker) — the same quantity
// it measured at startup. t(r) keeps learning even (especially) while
// backlog staggers shards across busy pools, where a naive wall-clock
// measurement would be inflated by queueing.
func (d *scheduler) finish(job *batchJob) {
	s := d.srv
	workerBusy := time.Duration(job.workerNanos.Load())
	s.cal.Observe(job.decision.Rate, len(job.queries), workerBusy/time.Duration(job.shards))
	s.settle(job, workerBusy)
}

// runBatchOn splits a batch into contiguous shards, one per given worker,
// and runs them all concurrently — the full-pool fast path the startup
// calibration times.
func runBatchOn(workers []*worker, queries []*query, rate float64, inputShape []int) {
	n := len(queries)
	w := min(len(workers), n)
	per := (n + w - 1) / w
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := i * per
		hi := min(lo+per, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wk *worker, shard []*query) {
			defer wg.Done()
			wk.run(shard, rate, inputShape)
		}(workers[i], queries[lo:hi])
	}
	wg.Wait()
}
