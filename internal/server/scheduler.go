package server

import (
	"fmt"
	"time"

	"sync"
	"sync/atomic"

	"modelslicing/internal/faults"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
)

// scheduler is the dispatch half of the server: closed windows are sliced
// into pool-sized shards on a single FIFO work queue, drained by whichever
// workers are idle. Its contracts fix the serving-window latency cascade and
// bound every failure to the shard it happened in:
//
//   - enqueue never blocks, so the batch ticker keeps closing windows no
//     matter how far processing has fallen behind (the old fixed-size
//     dispatch channel parked up to 8 windows invisibly, then stalled the
//     ticker itself). Admission control — the backlog-horizon budget plus
//     the MaxBacklogWindows safety valve — is what bounds the queue.
//   - windows drain in close order (earliest deadline first), and because
//     workers pull *shards*, not whole windows, a freed worker immediately
//     joins the oldest unfinished window: a lone window spreads across the
//     whole idle pool, a backlog overlaps window k+1 with the tail of
//     window k, and no worker idles while any shard waits — the
//     work-conserving behavior the Backlog horizon models.
//   - each in-flight shard holds exactly one worker, bounding concurrency
//     by the pool size — no unbounded goroutines.
//   - a shard is a failure domain: a panic inside compute is recovered and
//     answered as that shard's error; a shard the watchdog declares stuck
//     is abandoned (its queries answered with an error, its worker replaced
//     by a fresh one so the pool never shrinks) rather than allowed to hold
//     the window hostage. Either way every query of the window still gets
//     exactly one reply, and the other shards are untouched.
type scheduler struct {
	srv  *Server
	pool int // total workers, for shard sizing

	mu      sync.Mutex
	tasks   []*task   // window shards in window-close order
	free    []*worker // idle workers
	active  []*task   // shards currently executing (watchdog scan set)
	jobs    int       // windows enqueued but not yet settled
	running int       // non-abandoned shards currently executing
	closed  bool      // no further enqueues (shutdown)

	wake chan struct{} // capacity 1: queue or pool changed
	done chan struct{} // closed once drained after shutdown
}

// Shard lifecycle states. The CAS from taskRunning decides ownership of the
// shard's queries: the worker goroutine (→ taskDone) or the watchdog
// (→ taskAbandoned) settles them, never both.
const (
	taskRunning int32 = iota
	taskDone
	taskAbandoned
)

// task is one contiguous shard of a window's batch.
type task struct {
	job     *batchJob
	shard   []*query
	started time.Time     // stamped when a worker picks the shard up
	state   atomic.Int32  // taskRunning → taskDone | taskAbandoned
	abandon chan struct{} // closed by the watchdog; releases injected stalls
}

// newScheduler takes ownership of the worker pool and starts the loop.
func newScheduler(srv *Server, workers []*worker) *scheduler {
	d := &scheduler{
		srv:  srv,
		pool: len(workers),
		free: append([]*worker(nil), workers...),
		wake: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	go d.loop()
	return d
}

// enqueue slices one closed window into at most pool shards and appends
// them to the work queue. It never blocks, and it returns the
// windows-in-flight depth including the new window — measured under the
// queue lock, so the caller's peak-backlog watermark cannot miss a
// concurrent dequeue. The shard size mirrors what runBatchOn would give
// every worker on an idle pool; under backlog the same shards simply start
// staggered as workers free up.
//
// A closed scheduler (mid- or post-shutdown) fails the window immediately
// with ErrStopped instead of parking shards no one will drain — the
// never-a-hung-channel half of the Submit contract, for the one path that
// could otherwise strand a window.
func (d *scheduler) enqueue(job *batchJob) (depth int) {
	n := len(job.queries)
	per := (n + d.pool - 1) / d.pool
	job.shards = (n + per - 1) / per
	job.remaining.Store(int32(job.shards))
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		now := d.srv.clock.Now()
		for _, q := range job.queries {
			q.err = ErrStopped
			q.computeStart, q.computeEnd = now, now
		}
		job.remaining.Store(0)
		d.srv.settle(job, 0)
		return 0
	}
	for lo := 0; lo < n; lo += per {
		hi := min(lo+per, n)
		d.tasks = append(d.tasks, &task{
			job:     job,
			shard:   job.queries[lo:hi],
			abandon: make(chan struct{}),
		})
	}
	d.jobs++
	depth = d.jobs
	d.mu.Unlock()
	d.notify()
	return depth
}

// shutdown marks the end of input; done closes once the queue has drained
// and every running shard has settled or been abandoned. A real-time sweep
// keeps the watchdog alive through the drain — the batch ticker that
// normally drives it has already exited, and a shard wedged during shutdown
// must not wedge Stop itself.
func (d *scheduler) shutdown() {
	d.mu.Lock()
	d.closed = true
	d.mu.Unlock()
	d.notify()
	go func() {
		t := time.NewTicker(d.srv.cfg.DrainSweepEvery)
		defer t.Stop()
		for {
			select {
			case <-d.done:
				return
			case <-t.C:
				d.scanStuck(d.srv.clock.Now())
			}
		}
	}()
}

// depth reports closed windows not yet fully processed.
func (d *scheduler) depth() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.jobs
}

func (d *scheduler) notify() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// loop pairs idle workers with waiting shards, oldest window first.
func (d *scheduler) loop() {
	defer close(d.done)
	for {
		d.mu.Lock()
		for len(d.tasks) > 0 && len(d.free) > 0 {
			t := d.tasks[0]
			d.tasks = d.tasks[1:]
			wk := d.free[len(d.free)-1]
			d.free = d.free[:len(d.free)-1]
			t.started = d.srv.clock.Now()
			d.active = append(d.active, t)
			d.running++
			go d.run(t, wk)
		}
		exit := d.closed && len(d.tasks) == 0 && d.running == 0
		d.mu.Unlock()
		if exit {
			return
		}
		<-d.wake
	}
}

// scanStuck is the watchdog: any shard executing longer than the configured
// StuckAfter bound is abandoned — its queries answered with ErrShardStuck,
// its worker written off and replaced by a fresh one so the pool never
// shrinks. The worker goroutine itself cannot be killed; when (if) it
// eventually returns it finds the CAS lost and discards everything it
// computed. Driven from the batch ticker (the injected clock, so fake-clock
// tests exercise it deterministically) and from a real-time sweep during
// shutdown. A non-positive bound disables the watchdog.
func (d *scheduler) scanStuck(now time.Time) {
	after := d.srv.cfg.StuckAfter
	if after <= 0 {
		return
	}
	var victims []*task
	d.mu.Lock()
	kept := d.active[:0]
	for _, t := range d.active {
		if now.Sub(t.started) >= after && t.state.CompareAndSwap(taskRunning, taskAbandoned) {
			close(t.abandon)
			d.running--
			d.free = append(d.free, d.srv.newWorker())
			victims = append(victims, t)
			continue
		}
		kept = append(kept, t)
	}
	d.active = kept
	d.mu.Unlock()
	for _, t := range victims {
		d.srv.metrics.stuckShards.Add(1)
		d.srv.metrics.workersReplaced.Add(1)
		d.srv.noteShardFailure()
		d.failShard(t, fmt.Errorf("%w after %v", ErrShardStuck, after), now)
	}
	if len(victims) > 0 {
		d.notify()
	}
}

// failShard answers every query of an abandoned shard with err and settles
// the window if this was its last outstanding shard. The query error writes
// happen before the remaining-counter decrement that publishes the shard —
// the same ordering the result writes rely on. The zombie worker goroutine,
// having lost the state CAS, will touch none of these fields.
func (d *scheduler) failShard(t *task, err error, now time.Time) {
	for _, q := range t.shard {
		if q.err == nil {
			q.err = err
		}
		q.computeStart, q.computeEnd = t.started, now
	}
	if t.job.remaining.Add(-1) == 0 {
		d.finish(t.job)
		d.mu.Lock()
		d.jobs--
		d.mu.Unlock()
		d.notify()
	}
}

// run executes one shard; whoever finishes a window's last shard settles
// the whole window. Compute runs under execute's recover, so a panicking
// kernel or model layer fails its shard — error results, circuit
// bookkeeping — instead of killing the process.
func (d *scheduler) run(t *task, wk *worker) {
	s := d.srv
	start := t.started
	dropped, err := d.execute(t, wk)
	end := s.clock.Now()

	if !t.state.CompareAndSwap(taskRunning, taskDone) {
		// The watchdog abandoned this shard while it ran: the queries are
		// already answered, the worker already replaced. Drop both. Nothing
		// shared was written on the way here — query mutations happen only
		// below, after the CAS settles ownership — so the zombie and the
		// watchdog can never race on a query.
		return
	}
	t.job.workerNanos.Add(int64(end.Sub(start)))
	// Span stamps and error outcomes for the shard's queries: written before
	// the remaining counter's atomic decrement below, which is what publishes
	// the shard to the settling goroutine — same ordering q.result already
	// relies on.
	for _, q := range dropped {
		q.err = ErrExpired
		s.metrics.expiredDropped.Add(1)
	}
	for _, q := range t.shard {
		q.computeStart, q.computeEnd = start, end
		if err != nil && q.err == nil {
			q.err = err
		}
	}
	if err != nil {
		s.metrics.workerPanics.Add(1)
		s.noteShardFailure()
	} else {
		s.noteShardOK()
	}

	last := t.job.remaining.Add(-1) == 0
	if last {
		d.finish(t.job)
	}
	d.mu.Lock()
	for i, a := range d.active {
		if a == t {
			d.active = append(d.active[:i], d.active[i+1:]...)
			break
		}
	}
	d.free = append(d.free, wk)
	d.running--
	if last {
		d.jobs--
	}
	d.mu.Unlock()
	d.notify()
}

// execute runs one shard's compute under the panic barrier, with the
// injectable fault points threaded through: an injected panic takes exactly
// the recovery path a real kernel panic would, an injected stall parks the
// goroutine until the watchdog (or a test) releases it, and an injected
// slow-compute sleeps long enough to exercise degradation. Queries whose SLO
// already expired are skipped here — at the moment a worker would start
// paying for them — when Config.DropExpired is set, and returned for run()
// to answer with ErrExpired once it owns the shard. execute itself writes no
// shared query state: ownership of the queries is decided by run()'s state
// CAS, and a shard the watchdog has abandoned may still be executing here.
func (d *scheduler) execute(t *task, wk *worker) (dropped []*query, err error) {
	s := d.srv
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", ErrWorkerPanic, r)
			// The panic unwound mid-inference; the arena holds a partial
			// frame. Reset it so the worker is reusable.
			wk.arena.Reset()
		}
	}()
	if faults.Should(faults.WorkerPanic) {
		panic("injected worker panic")
	}
	if delay := faults.Delay(faults.SlowCompute); delay > 0 {
		time.Sleep(delay)
	}
	if faults.Stall(faults.ShardStall, t.abandon) && t.state.Load() == taskAbandoned {
		// Released because the watchdog gave up on us; don't compute.
		return nil, nil
	}
	shard := t.shard
	if s.cfg.DropExpired {
		alive := make([]*query, 0, len(shard))
		for _, q := range shard {
			if s.clock.Now().Sub(q.enqueued) > s.cfg.SLO {
				dropped = append(dropped, q)
				continue
			}
			alive = append(alive, q)
		}
		shard = alive
	}
	if len(shard) > 0 {
		wk.run(t.job.shared, shard, t.job.decision.Rate, s.cfg.InputShape)
	}
	return dropped, nil
}

// finish folds a completed window back into the server: the calibrator
// sees the pool-effective batch time — accumulated worker·time divided by
// the shard count (the concurrency the batch could actually use; the pool
// size for any window at least one shard per worker) — the same quantity
// it measured at startup. t(r) keeps learning even (especially) while
// backlog staggers shards across busy pools, where a naive wall-clock
// measurement would be inflated by queueing.
func (d *scheduler) finish(job *batchJob) {
	s := d.srv
	workerBusy := time.Duration(job.workerNanos.Load())
	s.cal.Observe(job.decision.Rate, len(job.queries), workerBusy/time.Duration(job.shards))
	s.settle(job, workerBusy)
}

// newWorker builds a replacement worker (weights travel with each shard, so
// a fresh worker is just a fresh arena).
func (s *Server) newWorker() *worker {
	return &worker{arena: tensor.NewArena()}
}

// runBatchOn splits a batch into contiguous shards, one per given worker,
// and runs them all concurrently against the given weight set — the
// full-pool fast path that startup and swap calibration time. No fault
// points fire here: calibration measures the hardware, not the chaos
// harness.
func runBatchOn(workers []*worker, shared *slicing.Shared, queries []*query, rate float64, inputShape []int) {
	n := len(queries)
	w := min(len(workers), n)
	per := (n + w - 1) / w
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		lo := i * per
		hi := min(lo+per, n)
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wk *worker, shard []*query) {
			defer wg.Done()
			wk.run(shared, shard, rate, inputShape)
		}(workers[i], queries[lo:hi])
	}
	wg.Wait()
}
