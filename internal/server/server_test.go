package server

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"modelslicing/internal/models"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
)

// testServer builds a deterministic server over a tiny MLP: FakeClock-driven
// windows and a pinned quadratic t(r) = r² seconds against a 1 s window, so
// capacities are rate 1.0 → 1, 0.5 → 4, 0.25 → 16 samples per window.
func testServer(t *testing.T, mutate func(*Config)) (*Server, *FakeClock) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	rates := slicing.NewRateList(0.25, 4)
	cfg := Config{
		Model:      models.NewMLP(4, []int{8, 8}, 3, 4, rng),
		Rates:      rates,
		InputShape: []int{4},
		SLO:        2 * time.Second,
		Workers:    2,
		Clock:      NewFakeClock(time.Unix(0, 0)),
		SampleTime: func(r float64) float64 { return r * r },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	return s, cfg.Clock.(*FakeClock)
}

func input(seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(4)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func TestWindowFormsOneBatch(t *testing.T) {
	s, clk := testServer(t, nil)
	var chans []<-chan Result
	for i := 0; i < 4; i++ {
		ch, err := s.Submit(input(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	if d := s.QueueDepth(); d != 4 {
		t.Fatalf("queue depth %d before the window closes, want 4", d)
	}
	clk.Tick(time.Second)
	for _, ch := range chans {
		res := <-ch
		// Four samples fit the window only at rate 0.5 (4·0.25 = 1 s).
		if res.Rate != 0.5 {
			t.Fatalf("batch of 4 served at rate %v, want 0.5", res.Rate)
		}
		if res.Output == nil || res.Output.Size() != 3 {
			t.Fatalf("bad output %v", res.Output)
		}
	}
	st := s.Stats()
	if st.Processed != 4 || st.Batches != 1 {
		t.Fatalf("stats processed=%d batches=%d, want 4/1", st.Processed, st.Batches)
	}
	if st.RateHist[0.5] != 4 {
		t.Fatalf("rate histogram %v, want 4 at 0.5", st.RateHist)
	}
}

// TestRateFallbackUnderBurst sweeps batch sizes across the capacity steps:
// the policy must walk down the rate list exactly at the Equation-3
// boundaries and flag infeasibility only past the lower bound's capacity.
func TestRateFallbackUnderBurst(t *testing.T) {
	for _, tc := range []struct {
		n          int
		wantRate   float64
		infeasible bool
	}{
		{1, 1.0, false},  // 1·1.0 = window
		{2, 0.5, false},  // 0.75 cannot hold 2 (1.125 s)
		{4, 0.5, false},  // boundary: 4·0.25 = window
		{5, 0.25, false}, // falls to the lower bound
		{16, 0.25, false},
		{17, 0.25, true}, // even r_min overruns: SLO lost but degraded no further
	} {
		s, clk := testServer(t, func(c *Config) { c.QueueFactor = 8 })
		var chans []<-chan Result
		for i := 0; i < tc.n; i++ {
			ch, err := s.Submit(input(int64(i)))
			if err != nil {
				t.Fatalf("n=%d submit %d: %v", tc.n, i, err)
			}
			chans = append(chans, ch)
		}
		clk.Tick(time.Second)
		for _, ch := range chans {
			if res := <-ch; res.Rate != tc.wantRate {
				t.Fatalf("batch of %d served at %v, want %v", tc.n, res.Rate, tc.wantRate)
			}
		}
		st := s.Stats()
		if got := st.InfeasibleBatches > 0; got != tc.infeasible {
			t.Fatalf("batch of %d infeasible=%v, want %v", tc.n, got, tc.infeasible)
		}
		s.Stop()
	}
}

func TestAdmissionControlRejectsBeyondLowerBoundCapacity(t *testing.T) {
	s, clk := testServer(t, nil)
	// Capacity at r_min=0.25 is 16; the 17th pending query cannot be saved
	// by any rate, so admission control must shed it.
	accepted := 0
	var rejections int
	var chans []<-chan Result
	for i := 0; i < 20; i++ {
		ch, err := s.Submit(input(int64(i)))
		switch {
		case err == nil:
			accepted++
			chans = append(chans, ch)
		case errors.Is(err, ErrOverloaded):
			rejections++
		default:
			t.Fatal(err)
		}
	}
	if accepted != 16 || rejections != 4 {
		t.Fatalf("accepted %d rejected %d, want 16/4", accepted, rejections)
	}
	if st := s.Stats(); st.Rejected != 4 {
		t.Fatalf("stats rejected %d, want 4", st.Rejected)
	}
	clk.Tick(time.Second)
	for _, ch := range chans {
		if res := <-ch; res.Rate != 0.25 {
			t.Fatalf("full window served at %v, want 0.25", res.Rate)
		}
	}
	// The queue drained: the next submission is admitted again.
	if _, err := s.Submit(input(99)); err != nil {
		t.Fatalf("submission after drain: %v", err)
	}
}

func TestSLOMissAccounting(t *testing.T) {
	s, clk := testServer(t, nil)
	ch, err := s.Submit(input(1))
	if err != nil {
		t.Fatal(err)
	}
	// The window fires only after 3 s — past the 2 s SLO.
	clk.Tick(3 * time.Second)
	res := <-ch
	if !res.SLOMiss || res.Latency != 3*time.Second {
		t.Fatalf("result %+v, want a 3 s SLO miss", res)
	}
	if st := s.Stats(); st.SLOMisses != 1 {
		t.Fatalf("stats misses %d, want 1", st.SLOMisses)
	}
}

func TestFixedRateBaselineMode(t *testing.T) {
	s, clk := testServer(t, func(c *Config) { c.FixedRate = 1.0 })
	// Capacity at the pinned full width is 1; the second pending query is
	// rejected, and any served batch reports the fixed rate.
	ch1, err := s.Submit(input(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Submit(input(2)); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want overload at fixed-width capacity, got %v", err)
	}
	clk.Tick(time.Second)
	if res := <-ch1; res.Rate != 1.0 {
		t.Fatalf("fixed server served at %v", res.Rate)
	}
}

// TestServedOutputMatchesSlicedParent: the live path must compute exactly
// the parent model sliced at the batch's rate — extraction, sharding and
// batching cannot change the function.
func TestServedOutputMatchesSlicedParent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	rates := slicing.NewRateList(0.25, 4)
	model := models.NewMLP(4, []int{8, 8}, 3, 4, rng)
	s, err := New(Config{
		Model:      model,
		Rates:      rates,
		InputShape: []int{4},
		SLO:        2 * time.Second,
		Workers:    3,
		Clock:      NewFakeClock(time.Unix(0, 0)),
		SampleTime: func(r float64) float64 { return r * r },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	clk := s.clock.(*FakeClock)

	var chans []<-chan Result
	var inputs []*tensor.Tensor
	for i := 0; i < 7; i++ { // 7 → rate 0.25, shards of uneven size
		x := input(int64(100 + i))
		inputs = append(inputs, x)
		ch, err := s.Submit(x)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	clk.Tick(time.Second)
	for i, ch := range chans {
		res := <-ch
		want := slicing.Predict(model, rates, res.Rate, inputs[i].Clone().Reshape(1, 4))
		for j := 0; j < 3; j++ {
			if math.Abs(res.Output.Data[j]-want.Data[j]) > 1e-9 {
				t.Fatalf("query %d output %v, parent sliced at %v gives %v",
					i, res.Output.Data, res.Rate, want.Data)
			}
		}
	}
}

func TestGracefulShutdownFlushesPending(t *testing.T) {
	s, _ := testServer(t, nil)
	var chans []<-chan Result
	for i := 0; i < 3; i++ {
		ch, err := s.Submit(input(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	s.Stop() // no tick ever fired: Stop must flush the pending window
	for _, ch := range chans {
		if res := <-ch; res.Output == nil {
			t.Fatal("flushed query got no output")
		}
	}
	if _, err := s.Submit(input(9)); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after stop: %v, want ErrStopped", err)
	}
	s.Stop() // idempotent
}

func TestEmptyWindowsDispatchNothing(t *testing.T) {
	s, clk := testServer(t, nil)
	for i := 0; i < 5; i++ {
		clk.Tick(time.Second)
	}
	if st := s.Stats(); st.Batches != 0 || st.Processed != 0 {
		t.Fatalf("empty windows produced batches: %+v", st)
	}
}

func TestSubmitValidatesInputShape(t *testing.T) {
	s, _ := testServer(t, nil)
	if _, err := s.Submit(tensor.New(5)); err == nil {
		t.Fatal("want error for wrong input size")
	}
	if _, err := s.Submit(nil); err == nil {
		t.Fatal("want error for nil input")
	}
	// Element count alone is not enough: the model wants [4], so a [2, 2]
	// or [4, 1] tensor of the same size must be rejected too.
	if _, err := s.Submit(tensor.New(2, 2)); err == nil {
		t.Fatal("want error for same-size wrong-rank input")
	}
	if _, err := s.Submit(tensor.New(4, 1)); err == nil {
		t.Fatal("want error for same-size wrong-shape input")
	}
	if _, err := s.Submit(tensor.New(4)); err != nil {
		t.Fatalf("exact-shape input rejected: %v", err)
	}
}

// TestSubmitValidatesImageShape pins the motivating case: a [32, 3, 32]
// tensor has exactly as many elements as a [3, 32, 32] model input and used
// to slip through the size-only check.
func TestSubmitValidatesImageShape(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	m, _ := models.NewVGG(models.VGG13Mini(4, models.NormGroup, 1), rng)
	s, err := New(Config{
		Model:      m,
		Rates:      slicing.NewRateList(0.25, 4),
		InputShape: []int{3, 16, 16},
		SLO:        50 * time.Millisecond,
		SampleTime: func(r float64) float64 { return 1e-6 },
		Clock:      NewFakeClock(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	if _, err := s.Submit(tensor.New(16, 3, 16)); err == nil {
		t.Fatal("transposed image shape accepted")
	}
	if _, err := s.Submit(tensor.New(3, 16, 16)); err != nil {
		t.Fatalf("exact image shape rejected: %v", err)
	}
}

func TestNewRejectsMalformedRateList(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := Config{
		Model:      models.NewMLP(4, []int{8, 8}, 3, 4, rng),
		Rates:      slicing.RateList{0.5, 0.25}, // not ascending, no 1.0
		InputShape: []int{4},
		SLO:        time.Second,
	}
	if _, err := New(cfg); err == nil {
		t.Fatal("want error for malformed rate list, not a panic or success")
	}
}

func TestAdmissionUnboundedWhenSampleTimeZero(t *testing.T) {
	// A pre-profiled SampleTime of 0 means unlimited capacity; the limit
	// must saturate at MaxInt, not overflow through float conversion.
	s, _ := testServer(t, func(c *Config) {
		c.SampleTime = func(r float64) float64 { return 0 }
	})
	for i := 0; i < 50; i++ {
		if _, err := s.Submit(input(int64(i))); err != nil {
			t.Fatalf("submit %d rejected under unbounded capacity: %v", i, err)
		}
	}
}

func TestCalibratorObserveEWMA(t *testing.T) {
	c := &Calibrator{perSample: map[float64]float64{0.5: 1.0}, alpha: 0.1}
	c.Observe(0.5, 10, 20*time.Second) // 2 s/sample observed
	want := 0.9*1.0 + 0.1*2.0
	if got := c.SampleTime(0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("EWMA %v, want %v", got, want)
	}
	c.Observe(0.5, 0, time.Second) // ignored
	if got := c.SampleTime(0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("zero-sample observation moved the estimate to %v", got)
	}
	// A fake clock that does not advance during processing reports zero
	// elapsed; that must not collapse the estimate toward zero.
	c.Observe(0.5, 10, 0)
	if got := c.SampleTime(0.5); math.Abs(got-want) > 1e-12 {
		t.Fatalf("zero-elapsed observation moved the estimate to %v", got)
	}
	s := newStaticCalibrator(slicing.RateList{0.5, 1}, func(r float64) float64 { return r })
	s.Observe(0.5, 10, time.Hour) // static calibrators never move
	if got := s.SampleTime(0.5); got != 0.5 {
		t.Fatalf("static calibrator moved to %v", got)
	}
}

// TestInjectedClockIsTheOnlyTimeSource pins the time-source unification:
// batch elapsed, per-query latency and uptime all flow through the injected
// Clock. Under a FakeClock that never advances during processing, worker
// busy time is exactly zero — any non-zero utilization means a wall-clock
// read (the old time.Now()/time.Since mix) leaked back into the arithmetic.
func TestInjectedClockIsTheOnlyTimeSource(t *testing.T) {
	s, clk := testServer(t, nil)
	ch, err := s.Submit(input(1))
	if err != nil {
		t.Fatal(err)
	}
	clk.Tick(time.Second)
	<-ch
	if st := s.Stats(); st.Utilization != 0 {
		t.Fatalf("utilization %v under a frozen fake clock; a wall-clock read leaked in", st.Utilization)
	}
}

func TestStartupCalibrationMeasuresEveryRate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	rates := slicing.NewRateList(0.25, 4)
	model := models.NewMLP(4, []int{8, 8}, 3, 4, rng)
	s, err := New(Config{
		Model:      model,
		Rates:      rates,
		InputShape: []int{4},
		SLO:        time.Second,
		Clock:      NewFakeClock(time.Unix(0, 0)),
		// no SampleTime: the real calibrator must run
		CalibrationBatch: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()
	for _, r := range rates {
		if ts := s.Calibrator().SampleTime(r); ts <= 0 {
			t.Fatalf("rate %v calibrated to %v, want > 0", r, ts)
		}
	}
}
