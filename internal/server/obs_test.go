package server

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"modelslicing/internal/models"
	"modelslicing/internal/obs"
	"modelslicing/internal/serving"
	"modelslicing/internal/slicing"
)

// TestLockstepDecisionRecordsAgree is the flight-recorder half of the
// lockstep contract: the clock-free simulation and the live server under a
// FakeClock, driven with the same arrival trace, must write *identical*
// obs.DecisionRecord values — every input, the derived Depth, and the
// explanation string, not just the chosen rate. DecisionRecord is fully
// comparable, so the diff is a plain ==.
func TestLockstepDecisionRecordsAgree(t *testing.T) {
	rates := slicing.NewRateList(0.25, 4)
	arrivals := []int{3, 20, 1, 1, 0, 17, 2, 1, 5, 16, 1, 0, 1}

	simRec := obs.NewRecorder(64)
	sim := serving.Simulate(serving.Config{
		LatencySLO: 2, FullSampleTime: 1, Rates: rates, Recorder: simRec,
	}, arrivals)

	rng := rand.New(rand.NewSource(1))
	clk := NewFakeClock(time.Unix(0, 0))
	s, err := New(Config{
		Model:             models.NewMLP(4, []int{8, 8}, 3, 4, rng),
		Rates:             rates,
		InputShape:        []int{4},
		SLO:               2 * time.Second,
		Workers:           2,
		Clock:             clk,
		SampleTime:        func(r float64) float64 { return r * r },
		QueueFactor:       1000,
		MaxBacklogWindows: 1000,
		DecisionLog:       64, // Depth derives from the ring: sizes must match
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	for k, n := range arrivals {
		for j := 0; j < n; j++ {
			if _, err := s.Submit(input(int64(100*k + j))); err != nil {
				t.Fatalf("window %d submit %d: %v", k, j, err)
			}
		}
		tickSync(s, clk, time.Second)
	}

	simRecs, liveRecs := simRec.Snapshot(), s.Recorder().Snapshot()
	nonEmpty := 0
	for _, n := range arrivals {
		if n > 0 {
			nonEmpty++
		}
	}
	if len(simRecs) != nonEmpty || len(liveRecs) != nonEmpty {
		t.Fatalf("recorded %d sim / %d live decisions, want %d (one per non-empty window)",
			len(simRecs), len(liveRecs), nonEmpty)
	}
	for i := range simRecs {
		if simRecs[i] != liveRecs[i] {
			t.Errorf("decision %d diverges:\n sim:  %+v\n live: %+v", i, simRecs[i], liveRecs[i])
		}
	}
	// The explanations must line up with the outcome counters the original
	// lockstep test pins: every degraded window carries a backlog-* reason.
	degraded := 0
	for _, r := range liveRecs {
		if strings.HasPrefix(r.Reason, "backlog-") {
			degraded++
		}
	}
	if degraded != sim.DegradedWindows {
		t.Fatalf("%d backlog-* reasons, simulation counted %d degraded windows", degraded, sim.DegradedWindows)
	}
}

// TestDebugDecisionsExplainsCascade drives the cascade regression trace and
// demands that /debug/decisions reconstructs the reason for every window:
// the two overruns are blamed on the batches themselves, window 2's
// infeasibility and window 3's rate drop on the backlog ahead of them.
func TestDebugDecisionsExplainsCascade(t *testing.T) {
	// MaxBacklogWindows 4: with all four windows wedged behind the gate, the
	// safety valve (not the clock-draining estimate) sheds the final probe.
	s, clk, _, _ := gatedServer(t, 2, 4)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for k, n := range []int{20, 20, 20, 1} {
		for j := 0; j < n; j++ {
			_, _ = s.Submit(input(int64(100*k + j))) // window 2 sheds 4; fine
		}
		tickSync(s, clk, time.Second)
	}

	resp, err := http.Get(ts.URL + "/debug/decisions")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		TotalRecorded int64                `json:"total_recorded"`
		Decisions     []obs.DecisionRecord `json:"decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.TotalRecorded != 4 || len(out.Decisions) != 4 {
		t.Fatalf("recorded %d decisions (%d retained), want 4", out.TotalRecorded, len(out.Decisions))
	}
	want := []struct {
		window   int64
		arrivals int
		rate     float64
		reason   string
	}{
		{0, 20, 0.25, "overrun"},            // 1.25 s of minimum work in a 1 s budget
		{1, 20, 0.25, "overrun"},            // still infeasible even with a free horizon
		{2, 16, 0.25, "backlog-infeasible"}, // fits a free window; 0.5 s of backlog kills it
		{3, 1, 0.5, "backlog-degraded"},     // an empty pool would serve r=1
	}
	for i, w := range want {
		d := out.Decisions[i]
		if d.Window != w.window || d.Arrivals != w.arrivals || d.Rate != w.rate || d.Reason != w.reason {
			t.Errorf("decision %d = window %d n=%d rate %g reason %q, want window %d n=%d rate %g reason %q",
				i, d.Window, d.Arrivals, d.Rate, d.Reason, w.window, w.arrivals, w.rate, w.reason)
		}
	}
	// Overloaded submissions carry the same evidence on the 503 body.
	body, _ := json.Marshal(PredictRequest{Input: []float64{1, 0, -1, 2}})
	resp, err = http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("predict on a saturated server: status %d, want 503", resp.StatusCode)
	}
	var shed struct {
		Error           string               `json:"error"`
		RecentDecisions []obs.DecisionRecord `json:"recent_decisions"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&shed); err != nil {
		t.Fatal(err)
	}
	if shed.Error == "" || len(shed.RecentDecisions) == 0 {
		t.Fatalf("503 body lacks the flight-recorder evidence: %+v", shed)
	}
	if last := shed.RecentDecisions[len(shed.RecentDecisions)-1]; last.Reason != "backlog-degraded" {
		t.Errorf("last recent decision reason %q, want the window-3 degradation", last.Reason)
	}
}

// TestHTTPPredictDebugStages pins the ?debug=1 stage breakdown: present on
// request, absent by default, and the four stages sum to the reported
// latency.
func TestHTTPPredictDebugStages(t *testing.T) {
	s := liveServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(PredictRequest{Input: []float64{1, -0.5, 2, 0.3}})
	resp, err := http.Post(ts.URL+"/predict?debug=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var out PredictResponse
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out.Stages == nil {
		t.Fatal("?debug=1 response has no stage breakdown")
	}
	sum := out.Stages.QueuedMs + out.Stages.DispatchMs + out.Stages.ComputeMs + out.Stages.SettleMs
	if diff := sum - out.LatencyMs; diff > 0.01 || diff < -0.01 {
		t.Errorf("stages sum to %.3f ms, latency is %.3f ms", sum, out.LatencyMs)
	}
	if out.Stages.QueuedMs < 0 || out.Stages.DispatchMs < 0 || out.Stages.ComputeMs < 0 || out.Stages.SettleMs < 0 {
		t.Errorf("negative stage in %+v", out.Stages)
	}

	resp, err = http.Post(ts.URL+"/predict", "application/json",
		bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	out = PredictResponse{}
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out.Stages != nil {
		t.Error("stage breakdown leaked into a non-debug response")
	}
}

// TestHTTPDebugTrace serves queries with sampling on every query and checks
// /debug/trace emits valid Chrome trace_event JSON covering all four stages.
func TestHTTPDebugTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s, err := New(Config{
		Model:            models.NewMLP(4, []int{8, 8}, 3, 4, rng),
		Rates:            slicing.NewRateList(0.25, 4),
		InputShape:       []int{4},
		SLO:              20 * time.Millisecond,
		CalibrationBatch: 8,
		TraceSampleEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Stop)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(PredictRequest{Input: []float64{0, 1, 0, -1}})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content type %q", ct)
	}
	var events []struct {
		Name string  `json:"name"`
		Ph   string  `json:"ph"`
		Ts   float64 `json:"ts"`
		Dur  float64 `json:"dur"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(events) != 3*obs.NumStages {
		t.Fatalf("%d trace events, want %d (4 stages × 3 sampled queries)", len(events), 3*obs.NumStages)
	}
	seen := map[string]bool{}
	for _, e := range events {
		if e.Ph != "X" || e.Dur < 0 || e.Ts < 0 {
			t.Errorf("malformed event %+v", e)
		}
		seen[e.Name] = true
	}
	for _, name := range obs.StageNames {
		if !seen[name] {
			t.Errorf("no %q events in the trace", name)
		}
	}
}

// promLine matches one Prometheus text-exposition sample line:
// name{labels} value — the validity check the /metrics contract promises.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*")*\})? (NaN|[+-]?Inf|[+-]?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?)$`)

// TestHTTPMetricsHistogramsValid serves traffic, then checks every /metrics
// line parses, the new histogram families are present, and each histogram's
// cumulative buckets are monotone with the +Inf bucket equal to _count.
func TestHTTPMetricsHistogramsValid(t *testing.T) {
	s := liveServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(PredictRequest{Input: []float64{0, 1, 0, -1}})
	for i := 0; i < 4; i++ {
		resp, err := http.Post(ts.URL+"/predict", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()

	for _, w := range []string{
		"msserver_windows_total",
		"msserver_packed_engine 1",
		"msserver_arena_bytes",
		"# TYPE msserver_query_latency_seconds histogram",
		"msserver_query_latency_seconds_bucket{le=\"+Inf\"}",
		"msserver_query_latency_seconds_sum",
		"msserver_query_latency_seconds_count 4",
		`msserver_stage_latency_seconds_bucket{stage="queue",le="1e-06"}`,
		`msserver_stage_latency_seconds_count{stage="compute"}`,
		"# TYPE msserver_rate_latency_seconds histogram",
	} {
		if !strings.Contains(text, w) {
			t.Fatalf("metrics missing %q:\n%s", w, text)
		}
	}

	// Every non-comment line must be a well-formed sample.
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed exposition line %q", line)
		}
	}

	// Histogram contract: cumulative _bucket series are monotone
	// non-decreasing in le order (the exposition emits them that way) and the
	// +Inf bucket equals _count for each series.
	bucketLine := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)_bucket\{(.*)le="([^"]*)"\} ([0-9]+)$`)
	countLine := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)_count(\{[^}]*\})? ([0-9]+)$`)
	type key struct{ fam, labels string }
	prev := map[key]int64{}
	inf := map[key]int64{}
	for _, line := range strings.Split(text, "\n") {
		if m := bucketLine.FindStringSubmatch(line); m != nil {
			k := key{m[1], strings.TrimSuffix(m[2], ",")}
			v, _ := strconv.ParseInt(m[4], 10, 64)
			if v < prev[k] {
				t.Fatalf("histogram %v not cumulative at %q: %d after %d", k, line, v, prev[k])
			}
			prev[k] = v
			if m[3] == "+Inf" {
				inf[k] = v
			}
		}
	}
	if len(inf) == 0 {
		t.Fatal("no +Inf buckets found in /metrics")
	}
	for _, line := range strings.Split(text, "\n") {
		if m := countLine.FindStringSubmatch(line); m != nil {
			k := key{m[1], strings.Trim(m[2], "{}")}
			v, _ := strconv.ParseInt(m[3], 10, 64)
			if got, ok := inf[k]; ok && got != v {
				t.Fatalf("histogram %v: +Inf bucket %d != _count %d", k, got, v)
			}
		}
	}
}
