package server

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"modelslicing/internal/faults"
	"modelslicing/internal/nn"
	"modelslicing/internal/slicing"
)

// signatureModel builds a tiny MLP whose output is sig on every class
// regardless of input and slice rate: all weights are zero, so the hidden
// activations vanish and the output is exactly the final-layer bias. Two such
// models with different signatures make "which weights served this query"
// directly observable — the heart of the swap tests.
func signatureModel(sig float64) nn.Layer {
	rng := rand.New(rand.NewSource(1))
	m := nn.NewSequential(
		nn.NewDense(4, 8, nn.Fixed(), nn.Sliced(4), true, rng),
		nn.NewReLU(),
		nn.NewDense(8, 3, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	params := m.Params()
	for _, p := range params {
		p.Value.Zero()
	}
	bias := params[len(params)-1] // Dense params are [W, B]; last is the output bias
	for i := range bias.Value.Data {
		bias.Value.Data[i] = sig
	}
	return m
}

// TestSwapLockstepZeroDowntime is the acceptance test for zero-downtime model
// ops: under FakeClock lockstep, a Swap between windows must (a) err or drop
// no accepted query, (b) let in-flight shards — including one stalled
// mid-compute across the swap — finish on the OLD weights, (c) serve every
// post-swap window from the NEW weights, and (d) have the first post-swap
// window decide its rate from the recalibrated t(r), not the old curve.
func TestSwapLockstepZeroDowntime(t *testing.T) {
	defer faults.Reset()
	const sigA, sigB = 3.0, -5.0
	// t(r) flips from r² (capacity 1 at rate 1.0 in the 1 s window) to r²/4
	// (capacity 4 at rate 1.0) when the swap happens: the new model is 4x
	// faster, and only a recalibrated policy can see that.
	var swapped atomic.Bool
	s, clk := testServer(t, func(c *Config) {
		c.Model = signatureModel(sigA)
		c.SampleTime = func(r float64) float64 {
			if swapped.Load() {
				return r * r / 4
			}
			return r * r
		}
	})

	// Window 1 on model A: two queries over two workers → two single-query
	// shards, one of which stalls inside compute holding model A.
	if err := faults.Enable(faults.ShardStall, "first1"); err != nil {
		t.Fatal(err)
	}
	ch1a, err := s.Submit(input(1))
	if err != nil {
		t.Fatal(err)
	}
	ch1b, err := s.Submit(input(2))
	if err != nil {
		t.Fatal(err)
	}
	clk.Tick(time.Second)
	waitFired(t, faults.ShardStall, 1)

	// Swap to model B while window 1 is still in flight.
	swapped.Store(true)
	info := ModelInfo{Epoch: 7, CRC: 0xdeadbeef, Path: "b.ckpt"}
	if err := s.Swap(slicing.NewShared(signatureModel(sigB), testServerRates()), info); err != nil {
		t.Fatal(err)
	}

	// Window 2 closes after the swap: it must serve model B at the rate the
	// recalibrated t(r) admits — 1.0, where the old curve only afforded 0.5.
	ch2a, err := s.Submit(input(3))
	if err != nil {
		t.Fatal(err)
	}
	ch2b, err := s.Submit(input(4))
	if err != nil {
		t.Fatal(err)
	}
	clk.Tick(time.Second)
	for _, ch := range []<-chan Result{ch2a, ch2b} {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("post-swap query erred across the swap: %v", res.Err)
		}
		if res.Output.Data[0] != sigB {
			t.Fatalf("post-swap query served output %v, want new-model signature %v", res.Output.Data[0], sigB)
		}
		if res.Rate != 1.0 {
			t.Fatalf("first post-swap window served at rate %v; recalibrated t(r) admits 1.0", res.Rate)
		}
	}

	// Release the stalled shard: it must complete on the OLD weights (its
	// window captured model A before the swap) and err nothing.
	faults.Disable(faults.ShardStall)
	for _, ch := range []<-chan Result{ch1a, ch1b} {
		res := <-ch
		if res.Err != nil {
			t.Fatalf("pre-swap query erred across the swap: %v", res.Err)
		}
		if res.Output.Data[0] != sigA {
			t.Fatalf("in-flight query served output %v, want old-model signature %v", res.Output.Data[0], sigA)
		}
		if res.Rate != 0.5 {
			t.Fatalf("pre-swap window served at rate %v; the old t(r) admits 0.5", res.Rate)
		}
	}

	// Identity and swap accounting followed the model.
	if got := s.ModelInfo(); got != info {
		t.Fatalf("ModelInfo = %+v, want %+v", got, info)
	}
	st := s.Stats()
	if st.Swaps != 1 {
		t.Fatalf("Swaps = %d, want 1", st.Swaps)
	}
	if st.ModelEpoch != 7 || st.ModelCRC != 0xdeadbeef {
		t.Fatalf("model identity = epoch %d crc %08x, want 7/deadbeef", st.ModelEpoch, st.ModelCRC)
	}
	if st.SwapRampWindows <= 0 {
		t.Fatal("recalibration ramp not armed after swap")
	}
}

// TestSwapRejectsInvalidModels pins Swap's validation: nil models and
// mismatched rate lists must be refused without touching the served model.
func TestSwapRejectsInvalidModels(t *testing.T) {
	s, _ := testServer(t, nil)
	if err := s.Swap(nil, ModelInfo{}); err == nil {
		t.Fatal("Swap accepted a nil model")
	}
	wrong := slicing.NewShared(signatureModel(1), slicing.NewRateList(0.5, 2))
	if err := s.Swap(wrong, ModelInfo{}); err == nil {
		t.Fatal("Swap accepted a mismatched rate list")
	}
	if got := s.Stats().Swaps; got != 0 {
		t.Fatalf("failed swaps counted: %d", got)
	}
}

// TestSwapHammer races live traffic against repeated swaps on the real
// clock: every accepted query must be answered without error and carry
// exactly one of the two models' signatures — never a torn mix — and the
// swap counter must account for every completed swap. Run under -race in CI
// at GOMAXPROCS=1 and 2.
func TestSwapHammer(t *testing.T) {
	const sigA, sigB = 2.0, -9.0
	rates := testServerRates()
	cfg := Config{
		Model:             signatureModel(sigA),
		Rates:             rates,
		InputShape:        []int{4},
		SLO:               20 * time.Millisecond,
		Workers:           2,
		QueueFactor:       1000,
		MaxBacklogWindows: 1000,
		SampleTime:        func(r float64) float64 { return 1e-6 * r * r },
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Stop()

	const swaps = 20
	done := make(chan struct{})
	var served, badSig atomic.Int64
	var wg sync.WaitGroup
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				res, err := s.Predict(input(seed))
				if err != nil {
					// Overload shedding is fine under the hammer; anything
					// else would have failed res.Err below anyway.
					continue
				}
				served.Add(1)
				if got := res.Output.Data[0]; got != sigA && got != sigB {
					badSig.Add(1)
				}
			}
		}(int64(p))
	}
	shareds := [2]*slicing.Shared{
		slicing.NewShared(signatureModel(sigA), rates),
		slicing.NewShared(signatureModel(sigB), rates),
	}
	for i := 0; i < swaps; i++ {
		if err := s.Swap(shareds[i%2], ModelInfo{Epoch: uint64(i)}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(done)
	wg.Wait()
	if badSig.Load() != 0 {
		t.Fatalf("%d/%d queries served a torn or unknown weight set", badSig.Load(), served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("hammer served no queries")
	}
	if got := s.Stats().Swaps; got != swaps {
		t.Fatalf("Swaps = %d, want %d", got, swaps)
	}
}
