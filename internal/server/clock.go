package server

import (
	"sync"
	"time"
)

// Clock abstracts wall-clock time so the batcher's T/2 window can be driven
// by a synthetic clock in tests (window formation, burst fallback and
// admission control are all asserted tick-by-tick without sleeping).
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Ticker returns a channel delivering window-boundary ticks every d,
	// and a stop function releasing its resources.
	Ticker(d time.Duration) (<-chan time.Time, func())
}

// RealClock returns the production clock backed by the runtime timer wheel —
// the same clock a nil Config.Clock defaults to, exported so other layers
// (the fleet coordinator) can share the injection seam.
func RealClock() Clock { return realClock{} }

// realClock is the production clock backed by the runtime timer wheel.
type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Ticker(d time.Duration) (<-chan time.Time, func()) {
	t := time.NewTicker(d)
	return t.C, t.Stop
}

// FakeClock is a manually advanced clock for deterministic tests: Tick
// delivers exactly one window boundary and blocks until the batcher has
// consumed it, so a test can interleave Submit calls and window closes
// without races or sleeps.
type FakeClock struct {
	mu  sync.Mutex
	now time.Time
	c   chan time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{now: start, c: make(chan time.Time)}
}

// Now returns the fake current time.
func (f *FakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Ticker hands out the shared manual tick channel; the interval is recorded
// by Tick, not by a timer.
func (f *FakeClock) Ticker(d time.Duration) (<-chan time.Time, func()) {
	return f.c, func() {}
}

// Advance moves the clock forward without delivering a tick (models time
// passing inside a window, e.g. processing latency).
func (f *FakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// Tick advances the clock by d and delivers one window boundary, blocking
// until the consumer (the batcher) receives it.
func (f *FakeClock) Tick(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	f.mu.Unlock()
	f.c <- now
}
