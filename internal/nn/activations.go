package nn

import (
	"fmt"

	"modelslicing/internal/tensor"
)

// ReLU is the rectified linear unit, applied element-wise.
type ReLU struct {
	mask []bool
}

// NewReLU constructs a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward computes max(x, 0) and caches the activation mask.
func (r *ReLU) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	y := tensor.New(x.Shape...)
	if cap(r.mask) < len(x.Data) {
		r.mask = make([]bool, len(x.Data))
	}
	r.mask = r.mask[:len(x.Data)]
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
			r.mask[i] = true
		} else {
			r.mask[i] = false
		}
	}
	return y
}

// Infer computes max(x, 0) without caching the mask (read-only path). Every
// element is written, so the output skips the arena's zero fill.
func (r *ReLU) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	y := arenaOf(ctx).GetUninit(x.Shape...)
	for i, v := range x.Data {
		if v > 0 {
			y.Data[i] = v
		} else {
			y.Data[i] = 0
		}
	}
	return y
}

// Backward gates the gradient by the cached mask.
func (r *ReLU) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	if len(dy.Data) != len(r.mask) {
		panic(fmt.Sprintf("nn: ReLU.Backward grad size %d, want %d", len(dy.Data), len(r.mask)))
	}
	dx := tensor.New(dy.Shape...)
	for i, v := range dy.Data {
		if r.mask[i] {
			dx.Data[i] = v
		}
	}
	return dx
}

// Params returns nil; ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// Dropout zeroes each element with probability P during training and scales
// the survivors by 1/(1-P) (inverted dropout); evaluation is the identity.
type Dropout struct {
	P    float64
	mask []float64
	used bool
}

// NewDropout constructs a dropout layer with drop probability p ∈ [0, 1).
func NewDropout(p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: Dropout probability %v out of [0,1)", p))
	}
	return &Dropout{P: p}
}

// Forward applies the stochastic mask during training.
func (d *Dropout) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	if ctx == nil || !ctx.Training || d.P == 0 {
		d.used = false
		return x
	}
	if ctx.RNG == nil {
		panic("nn: Dropout requires Context.RNG during training")
	}
	d.used = true
	if cap(d.mask) < len(x.Data) {
		d.mask = make([]float64, len(x.Data))
	}
	d.mask = d.mask[:len(x.Data)]
	keep := 1 / (1 - d.P)
	y := tensor.New(x.Shape...)
	for i, v := range x.Data {
		if ctx.RNG.Float64() < d.P {
			d.mask[i] = 0
		} else {
			d.mask[i] = keep
			y.Data[i] = v * keep
		}
	}
	return y
}

// Infer is the identity: inference never drops units.
func (d *Dropout) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor { return x }

// Backward applies the cached mask to the gradient.
func (d *Dropout) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	if !d.used {
		return dy
	}
	dx := tensor.New(dy.Shape...)
	for i, v := range dy.Data {
		dx.Data[i] = v * d.mask[i]
	}
	return dx
}

// Params returns nil; Dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
