package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"modelslicing/internal/tensor"
)

func randTensor(rng *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64()
	}
	return t
}

func TestDenseForwardMatchesManual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(3, 2, Fixed(), Fixed(), true, rng)
	x := randTensor(rng, 4, 3)
	y := d.Forward(Eval(1), x)
	for i := 0; i < 4; i++ {
		for o := 0; o < 2; o++ {
			want := d.B.Value.Data[o]
			for j := 0; j < 3; j++ {
				want += d.W.Value.At(o, j) * x.At(i, j)
			}
			if math.Abs(y.At(i, o)-want) > 1e-12 {
				t.Fatalf("Dense forward (%d,%d) = %v, want %v", i, o, y.At(i, o), want)
			}
		}
	}
}

func TestDenseGradCheckFullWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := NewDense(5, 4, Fixed(), Fixed(), true, rng)
	x := randTensor(rng, 3, 5)
	if err := CheckGradients(d, Train(1, rng), x, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDenseGradCheckSliced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := NewDense(8, 8, Sliced(4), Sliced(4), true, rng)
	for _, r := range []float64{0.25, 0.5, 0.75} {
		aIn, _ := d.Active(r)
		x := randTensor(rng, 2, aIn)
		if err := CheckGradients(d, Train(r, rng), x, nil, 0); err != nil {
			t.Fatalf("rate %v: %v", r, err)
		}
	}
}

func TestDenseGradCheckRescale(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := NewDense(8, 4, Sliced(4), Fixed(), true, rng)
	d.Rescale = true
	x := randTensor(rng, 2, 4) // rate 0.5 → aIn 4
	if err := CheckGradients(d, Train(0.5, rng), x, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDenseRescaleStabilizesScale(t *testing.T) {
	// With i.i.d. inputs, rescaling should keep the output magnitude of the
	// half-width sub-layer comparable to the full layer.
	rng := rand.New(rand.NewSource(5))
	d := NewDense(64, 32, Sliced(4), Fixed(), false, rng)
	d.Rescale = true
	xFull := randTensor(rng, 16, 64)
	yFull := d.Forward(Eval(1), xFull)
	xHalf := tensor.New(16, 32)
	for i := 0; i < 16; i++ {
		copy(xHalf.Row(i), xFull.Row(i)[:32])
	}
	yHalf := d.Forward(Eval(0.5), xHalf)
	rFull := yFull.L2Norm()
	rHalf := yHalf.L2Norm()
	if rHalf < rFull*0.5 || rHalf > rFull*2 {
		t.Fatalf("rescaled half-width norm %v too far from full %v", rHalf, rFull)
	}
}

// TestDenseEquation9 verifies the block decomposition of Section 3.5:
// for ra < rb, the leading components of the Sub-layer-rb output equal the
// Sub-layer-ra output plus the residual contribution B·xb of the extra
// input groups.
func TestDenseEquation9(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := NewDense(8, 8, Sliced(4), Sliced(4), true, rng)
	ra, rb := 0.5, 1.0
	aInA, aOutA := d.Active(ra)
	aInB, _ := d.Active(rb)

	xb := randTensor(rng, 3, aInB)
	xa := tensor.New(3, aInA)
	for i := 0; i < 3; i++ {
		copy(xa.Row(i), xb.Row(i)[:aInA])
	}
	ya := d.Forward(Eval(ra), xa).Clone()
	yb := d.Forward(Eval(rb), xb)

	// Residual term B·x_b where B = W[0:aOutA, aInA:aInB].
	for i := 0; i < 3; i++ {
		for o := 0; o < aOutA; o++ {
			res := 0.0
			for j := aInA; j < aInB; j++ {
				res += d.W.Value.At(o, j) * xb.At(i, j)
			}
			want := ya.At(i, o) + res
			if math.Abs(yb.At(i, o)-want) > 1e-10 {
				t.Fatalf("Equation 9 violated at (%d,%d): yb=%v, ya+Bxb=%v", i, o, yb.At(i, o), want)
			}
		}
	}
}

// Property: the sliced forward is exactly the forward of a standalone dense
// layer built from the prefix weights (subnet extraction correctness).
func TestQuickDenseSlicePrefixEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := NewDense(8, 8, Sliced(4), Sliced(4), true, rng)
		rates := []float64{0.25, 0.5, 0.75, 1.0}
		r := rates[rng.Intn(len(rates))]
		aIn, aOut := d.Active(r)
		x := randTensor(rng, 2, aIn)
		y := d.Forward(Eval(r), x)

		small := NewDense(aIn, aOut, Fixed(), Fixed(), true, rng)
		for o := 0; o < aOut; o++ {
			copy(small.W.Value.Row(o), d.W.Value.Row(o)[:aIn])
			small.B.Value.Data[o] = d.B.Value.Data[o]
		}
		ys := small.Forward(Eval(1), x)
		for i := range y.Data {
			if math.Abs(y.Data[i]-ys.Data[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDenseSlicedBackwardTouchesOnlyPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := NewDense(8, 8, Sliced(4), Sliced(4), true, rng)
	x := randTensor(rng, 2, 4)
	y := d.Forward(Train(0.5, rng), x)
	dy := tensor.New(y.Shape...)
	dy.Fill(1)
	d.Backward(Train(0.5, rng), dy)
	// Gradient entries outside the active 4×4 block must be zero.
	for o := 0; o < 8; o++ {
		for j := 0; j < 8; j++ {
			if o < 4 && j < 4 {
				continue
			}
			if d.W.Grad.At(o, j) != 0 {
				t.Fatalf("gradient leaked outside active block at (%d,%d)", o, j)
			}
		}
	}
	for o := 4; o < 8; o++ {
		if d.B.Grad.Data[o] != 0 {
			t.Fatalf("bias gradient leaked at %d", o)
		}
	}
}

func TestDensePanicsOnWrongInputWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := NewDense(8, 8, Sliced(4), Sliced(4), false, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong active input width")
		}
	}()
	d.Forward(Eval(0.5), randTensor(rng, 2, 8)) // rate 0.5 wants width 4
}

func TestActiveUnits(t *testing.T) {
	cases := []struct {
		r      float64
		w, g   int
		expect int
	}{
		{1.0, 64, 8, 64},
		{0.5, 64, 8, 32},
		{0.375, 64, 8, 24},
		{0.25, 64, 8, 16},
		{0.125, 64, 8, 8},
		{0.01, 64, 8, 8},  // clamped to one group
		{0.99, 64, 8, 64}, // rounds to full width
		{0.5, 6, 2, 3},    // odd group size
	}
	for _, c := range cases {
		if got := ActiveUnits(c.r, c.w, c.g); got != c.expect {
			t.Errorf("ActiveUnits(%v,%d,%d) = %d, want %d", c.r, c.w, c.g, got, c.expect)
		}
	}
}

// Properties of ActiveUnits: monotone in r, bounded by [width/groups, width],
// and always a multiple of the group size.
func TestQuickActiveUnitsInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		groups := 1 + rng.Intn(8)
		width := groups * (1 + rng.Intn(16))
		r1 := rng.Float64()
		r2 := rng.Float64()
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		a1 := ActiveUnits(r1, width, groups)
		a2 := ActiveUnits(r2, width, groups)
		gs := width / groups
		return a1 <= a2 && a1 >= gs && a2 <= width && a1%gs == 0 && a2%gs == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceSpecValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-divisible width")
		}
	}()
	Sliced(3).Validate("test", 8)
}

func TestContextEffRate(t *testing.T) {
	if (&Context{}).EffRate() != 1 {
		t.Fatal("zero rate should map to 1")
	}
	if (&Context{Rate: 0.5}).EffRate() != 0.5 {
		t.Fatal("rate 0.5 should pass through")
	}
	if (&Context{Rate: 2}).EffRate() != 1 {
		t.Fatal("rate > 1 should clamp to 1")
	}
	var nilCtx *Context
	if nilCtx.EffRate() != 1 {
		t.Fatal("nil context should mean full width")
	}
}
