package nn

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/tensor"
)

func TestReLUForwardBackward(t *testing.T) {
	r := NewReLU()
	x := tensor.FromSlice([]float64{-1, 0, 2, -3}, 2, 2)
	y := r.Forward(Eval(1), x)
	want := []float64{0, 0, 2, 0}
	for i := range y.Data {
		if y.Data[i] != want[i] {
			t.Fatalf("ReLU forward %v", y.Data)
		}
	}
	dy := tensor.FromSlice([]float64{1, 1, 1, 1}, 2, 2)
	dx := r.Backward(Eval(1), dy)
	wantG := []float64{0, 0, 1, 0}
	for i := range dx.Data {
		if dx.Data[i] != wantG[i] {
			t.Fatalf("ReLU backward %v", dx.Data)
		}
	}
}

func TestDropoutTrainEvalBehaviour(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	d := NewDropout(0.5)
	x := tensor.New(1, 10000)
	x.Fill(1)
	y := d.Forward(Train(1, rng), x)
	zeros, kept := 0, 0.0
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		} else {
			kept = v
		}
	}
	if zeros < 4500 || zeros > 5500 {
		t.Fatalf("dropout zeroed %d of 10000, want ≈5000", zeros)
	}
	if math.Abs(kept-2) > 1e-12 {
		t.Fatalf("inverted scaling: survivor value %v, want 2", kept)
	}
	// Eval is the identity (same tensor).
	ye := d.Forward(Eval(1), x)
	if ye != x {
		t.Fatal("eval-mode dropout must be identity")
	}
	// Backward applies the same mask.
	d.Forward(Train(1, rng), x)
	dy := tensor.New(1, 10000)
	dy.Fill(1)
	dx := d.Backward(Train(1, rng), dy)
	for i := range dx.Data {
		if dx.Data[i] != d.mask[i] {
			t.Fatal("backward mask mismatch")
		}
	}
}

func TestDropoutExpectationPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	d := NewDropout(0.3)
	x := tensor.New(1, 50000)
	x.Fill(1)
	y := d.Forward(Train(1, rng), x)
	if m := y.Mean(); math.Abs(m-1) > 0.05 {
		t.Fatalf("dropout mean %v, want ≈1 (inverted scaling)", m)
	}
}

func TestDropoutRejectsBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDropout(1.0)
}

func TestMaxPool2DForwardBackward(t *testing.T) {
	p := NewMaxPool2D(2, 2)
	x := tensor.FromSlice([]float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}, 1, 1, 4, 4)
	y := p.Forward(Eval(1), x)
	want := []float64{4, 8, 12, 16}
	for i := range y.Data {
		if y.Data[i] != want[i] {
			t.Fatalf("maxpool forward %v, want %v", y.Data, want)
		}
	}
	dy := tensor.FromSlice([]float64{1, 2, 3, 4}, 1, 1, 2, 2)
	dx := p.Backward(Eval(1), dy)
	if dx.At(0, 0, 1, 1) != 1 || dx.At(0, 0, 1, 3) != 2 || dx.At(0, 0, 3, 1) != 3 || dx.At(0, 0, 3, 3) != 4 {
		t.Fatalf("maxpool backward %v", dx.Data)
	}
	if dx.Sum() != 10 {
		t.Fatal("maxpool backward must route gradients only to argmax positions")
	}
}

func TestGlobalAvgPoolForwardBackward(t *testing.T) {
	g := NewGlobalAvgPool()
	x := tensor.FromSlice([]float64{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	y := g.Forward(Eval(1), x)
	if y.At(0, 0) != 2.5 || y.At(0, 1) != 25 {
		t.Fatalf("avgpool forward %v", y.Data)
	}
	dy := tensor.FromSlice([]float64{4, 8}, 1, 2)
	dx := g.Backward(Eval(1), dy)
	if dx.At(0, 0, 0, 0) != 1 || dx.At(0, 1, 1, 1) != 2 {
		t.Fatalf("avgpool backward %v", dx.Data)
	}
}

func TestFlattenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	f := NewFlatten()
	x := randTensor(rng, 2, 3, 4, 4)
	y := f.Forward(Eval(1), x)
	if y.Dim(0) != 2 || y.Dim(1) != 48 {
		t.Fatalf("flatten shape %v", y.Shape)
	}
	dx := f.Backward(Eval(1), y)
	if !dx.SameShape(x) {
		t.Fatalf("flatten backward shape %v", dx.Shape)
	}
}

func TestEmbeddingForwardBackward(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	e := NewEmbedding(10, 4, rng)
	ids := tensor.FromSlice([]float64{1, 3, 1}, 3)
	y := e.Forward(Eval(1), ids)
	if y.Dim(0) != 3 || y.Dim(1) != 4 {
		t.Fatalf("embedding shape %v", y.Shape)
	}
	for j := 0; j < 4; j++ {
		if y.At(0, j) != e.W.Value.At(1, j) {
			t.Fatal("embedding lookup mismatch")
		}
	}
	dy := tensor.New(3, 4)
	dy.Fill(1)
	if got := e.Backward(Eval(1), dy); got != nil {
		t.Fatal("embedding must return nil input gradient")
	}
	// Token 1 appeared twice → its row accumulates 2 per dim.
	for j := 0; j < 4; j++ {
		if e.W.Grad.At(1, j) != 2 {
			t.Fatalf("embedding grad row 1 = %v, want 2", e.W.Grad.At(1, j))
		}
		if e.W.Grad.At(3, j) != 1 {
			t.Fatalf("embedding grad row 3 = %v, want 1", e.W.Grad.At(3, j))
		}
		if e.W.Grad.At(0, j) != 0 {
			t.Fatal("untouched embedding rows must have zero grad")
		}
	}
}

func TestEmbeddingRejectsOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	e := NewEmbedding(4, 2, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Forward(Eval(1), tensor.FromSlice([]float64{5}, 1))
}

func TestSoftmaxCrossEntropyKnownValues(t *testing.T) {
	logits := tensor.FromSlice([]float64{0, 0, 0, 0}, 2, 2)
	loss, d := SoftmaxCrossEntropy(logits, []int{0, 1})
	if math.Abs(loss-math.Log(2)) > 1e-12 {
		t.Fatalf("uniform logits loss %v, want ln2", loss)
	}
	// Gradient: (softmax - onehot)/B = (0.5-1)/2 = -0.25 at the label.
	if math.Abs(d.At(0, 0)+0.25) > 1e-12 || math.Abs(d.At(0, 1)-0.25) > 1e-12 {
		t.Fatalf("gradient %v", d.Data)
	}
}

func TestSoftmaxCrossEntropyGradientNumerically(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	logits := randTensor(rng, 3, 5)
	labels := []int{1, 4, 0}
	_, d := SoftmaxCrossEntropy(logits, labels)
	eps := 1e-6
	for i := range logits.Data {
		orig := logits.Data[i]
		logits.Data[i] = orig + eps
		lp, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig - eps
		lm, _ := SoftmaxCrossEntropy(logits, labels)
		logits.Data[i] = orig
		num := (lp - lm) / (2 * eps)
		if math.Abs(num-d.Data[i]) > 1e-6 {
			t.Fatalf("CE gradient[%d]: analytic %v vs numeric %v", i, d.Data[i], num)
		}
	}
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	logits := tensor.FromSlice([]float64{1000, 0, -1000, 1000}, 2, 2)
	loss, d := SoftmaxCrossEntropy(logits, []int{0, 1})
	if math.IsNaN(loss) || math.IsInf(loss, 0) || !d.AllFinite() {
		t.Fatal("softmax cross-entropy must be stable for large logits")
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	p := Softmax(randTensor(rng, 4, 7))
	for i := 0; i < 4; i++ {
		s := 0.0
		for _, v := range p.Row(i) {
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("softmax row %d sums to %v", i, s)
		}
	}
}

func TestMSEGradient(t *testing.T) {
	pred := tensor.FromSlice([]float64{1, 2}, 1, 2)
	target := tensor.FromSlice([]float64{0, 0}, 1, 2)
	loss, d := MSE(pred, target)
	if math.Abs(loss-2.5) > 1e-12 {
		t.Fatalf("MSE loss %v, want 2.5", loss)
	}
	if d.Data[0] != 1 || d.Data[1] != 2 {
		t.Fatalf("MSE grad %v", d.Data)
	}
}

func TestSequentialComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	seq := NewSequential(
		NewDense(6, 8, Fixed(), Sliced(4), true, rng),
		NewReLU(),
		NewDense(8, 3, Sliced(4), Fixed(), true, rng),
	)
	if len(seq.Params()) != 4 {
		t.Fatalf("want 4 params, got %d", len(seq.Params()))
	}
	x := randTensor(rng, 2, 6)
	y := seq.Forward(Eval(0.5), x)
	if y.Dim(1) != 3 {
		t.Fatalf("sequential output %v", y.Shape)
	}
	if err := CheckGradients(seq, Train(0.5, rng), x, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialPrefixAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	seq := NewSequential(
		NewDense(4, 4, Fixed(), Fixed(), true, rng),
		NewReLU(),
		NewDense(4, 2, Fixed(), Fixed(), true, rng),
	)
	x := randTensor(rng, 2, 4)
	h := seq.ForwardPrefix(Eval(1), x, 2)
	if h.Dim(1) != 4 {
		t.Fatalf("prefix output %v", h.Shape)
	}
	dy := tensor.New(2, 4)
	dy.Fill(1)
	dx := seq.BackwardRange(Eval(1), dy, 0, 2)
	if !dx.SameShape(x) {
		t.Fatalf("range backward shape %v", dx.Shape)
	}
}

func TestResidualIdentityGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	body := NewSequential(
		NewDense(6, 6, Sliced(3), Sliced(3), true, rng),
		NewReLU(),
		NewDense(6, 6, Sliced(3), Sliced(3), true, rng),
	)
	res := NewResidual(body, nil)
	x := randTensor(rng, 2, 6)
	if err := CheckGradients(res, Train(1, rng), x, nil, 0); err != nil {
		t.Fatalf("full: %v", err)
	}
	x2 := randTensor(rng, 2, 4)
	if err := CheckGradients(res, Train(2.0/3.0, rng), x2, nil, 0); err != nil {
		t.Fatalf("sliced: %v", err)
	}
}

func TestResidualProjectionShortcut(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	body := NewDense(4, 8, Fixed(), Sliced(4), true, rng)
	short := NewDense(4, 8, Fixed(), Sliced(4), false, rng)
	res := NewResidual(body, short)
	x := randTensor(rng, 2, 4)
	y := res.Forward(Eval(1), x)
	if y.Dim(1) != 8 {
		t.Fatalf("residual output %v", y.Shape)
	}
	if len(res.Params()) != 3 {
		t.Fatalf("want 3 params, got %d", len(res.Params()))
	}
	if err := CheckGradients(res, Train(0.5, rng), x, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestConvSequentialGradCheckEndToEnd(t *testing.T) {
	// A miniature CNN: conv → GN → ReLU → pool → flatten → dense, gradient
	// checked end-to-end at full and half rate.
	rng := rand.New(rand.NewSource(81))
	seq := NewSequential(
		NewConv2D(2, 4, 3, 3, 1, 1, Fixed(), Sliced(2), false, rng),
		NewGroupNorm(4, 2, Sliced(2), 1e-5),
		NewReLU(),
		NewMaxPool2D(2, 2),
		NewFlatten(),
		NewDense(4*2*2, 3, Sliced(2), Fixed(), true, rng),
	)
	x := randTensor(rng, 2, 2, 4, 4)
	if err := CheckGradients(seq, Train(1, rng), x, nil, 40); err != nil {
		t.Fatalf("full: %v", err)
	}
	if err := CheckGradients(seq, Train(0.5, rng), x, nil, 40); err != nil {
		t.Fatalf("half: %v", err)
	}
}
