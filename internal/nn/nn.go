// Package nn implements a slicing-aware neural-network layer framework with
// manual back-propagation, built on internal/tensor.
//
// Every width-bearing layer (Dense, Conv2D, GroupNorm, BatchNorm, RNN, GRU,
// LSTM) supports *prefix slicing* per the model-slicing paper (Cai et al.,
// VLDB 2019): the layer's components (neurons, channels, hidden units) are
// divided into ordered groups, and a slice rate r ∈ (0,1] carried by Context
// selects the leading ⌈r·G⌉ groups for both the forward and backward pass.
// Tensors flow between layers at their *active* width, so a sliced forward
// pass touches only the activated prefix of each weight buffer — matching the
// paper's claim that sub-networks need only the sliced parameters in memory.
//
// Layers cache forward state and are therefore not safe for concurrent use;
// one goroutine per model instance is the intended usage.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"modelslicing/internal/tensor"
)

// Context carries per-pass state through Forward and Backward calls.
type Context struct {
	// Training selects training behaviour (dropout active, batch-norm batch
	// statistics, caches retained for Backward).
	Training bool
	// Rate is the slice rate r ∈ (0,1]. Zero is treated as 1 (full width).
	Rate float64
	// WidthIdx identifies the scheduled width for layers that keep
	// per-width state (SwitchableBatchNorm in the SlimmableNet baseline).
	// It indexes the slice-rate list used during training.
	WidthIdx int
	// RNG drives stochastic layers (dropout). May be nil outside training.
	RNG *rand.Rand
	// Arena, when non-nil, supplies output and scratch buffers for the
	// inference path (Layer.Infer): activations come from the reusable slab
	// instead of the heap and are valid until the caller's Arena.Reset.
	// Forward ignores it.
	Arena *tensor.Arena
	// NoPack disables the persistent packed-weight GEMM path for this pass,
	// forcing the unpacked engine (benchmark escape hatch and A/B oracle;
	// see packcache.go). Zero value: packing enabled.
	NoPack bool
	// Tier selects the GEMM engine tier for the inference path (Layer.Infer
	// and the fused serving views): tensor.TierExact (zero value) keeps the
	// bit-exact engine, TierFMA and TierF32 trade pinned accuracy budgets
	// for throughput (see tensor/tier.go). Training always runs exact.
	Tier tensor.EngineTier
}

// EffTier returns the engine tier, nil-safe (nil context means exact).
func (c *Context) EffTier() tensor.EngineTier {
	if c == nil {
		return tensor.TierExact
	}
	return c.Tier
}

// EffRate returns the effective slice rate (0 mapped to 1).
func (c *Context) EffRate() float64 {
	if c == nil || c.Rate <= 0 {
		return 1
	}
	if c.Rate > 1 {
		return 1
	}
	return c.Rate
}

// Eval returns a fresh evaluation context at slice rate r.
func Eval(r float64) *Context { return &Context{Training: false, Rate: r} }

// EvalWith returns an evaluation context at slice rate r whose inference
// activations are served from the given arena.
func EvalWith(r float64, arena *tensor.Arena) *Context {
	return &Context{Training: false, Rate: r, Arena: arena}
}

// Train returns a fresh training context at slice rate r using rng.
func Train(r float64, rng *rand.Rand) *Context {
	return &Context{Training: true, Rate: r, RNG: rng}
}

// Param is a learnable parameter with its gradient accumulator.
type Param struct {
	// Name identifies the parameter for checkpoints and debugging.
	Name string
	// Value holds the parameter itself.
	Value *tensor.Tensor
	// Grad accumulates gradients; optimizers zero it after each step.
	Grad *tensor.Tensor
	// Decay marks the parameter as subject to weight decay (weights yes,
	// biases and normalization affine parameters no, per convention).
	Decay bool
	// Foreign marks Value as a zero-copy view over memory the parameter does
	// not own — typically a read-only mmap of a checkpoint section
	// (persist.Checkpoint.Bind). Writing through a foreign Value faults, so
	// every mutating path must call EnsureMutable first. Inference never
	// writes parameters and serves foreign values directly.
	Foreign bool
}

// NewParam allocates a parameter (and matching gradient) of the given shape.
func NewParam(name string, decay bool, shape ...int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(shape...),
		Grad:  tensor.New(shape...),
		Decay: decay,
	}
}

// ZeroGrad clears the accumulated gradient.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// EnsureMutable detaches a foreign parameter from its backing mapping by
// cloning the value into owned memory (copy-on-train). It is a no-op for
// parameters that already own their storage, so callers may invoke it
// unconditionally before any write to Value.
func (p *Param) EnsureMutable() {
	if !p.Foreign {
		return
	}
	p.Value = p.Value.Clone()
	p.Foreign = false
}

// Layer is the unit of composition. Backward must be called with the same
// Context (in particular the same slice rate) as the preceding Forward, and
// returns the gradient with respect to the layer input. Parameter gradients
// are accumulated into Params()[i].Grad (not overwritten), which is what
// Algorithm 1's multi-subnet gradient accumulation requires.
type Layer interface {
	Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor
	Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor
	Params() []*Param
}

// SliceSpec describes how one dimension of a layer participates in slicing.
type SliceSpec struct {
	// Groups is the number of contiguous groups the dimension is divided
	// into. The dimension extent must be divisible by Groups.
	Groups int
	// Slice enables slicing on this dimension. Input layers keep their
	// input full and output layers their output full (Section 5.1.1).
	Slice bool
}

// Fixed returns a spec for a dimension excluded from slicing.
func Fixed() SliceSpec { return SliceSpec{Groups: 1, Slice: false} }

// Sliced returns a spec dividing the dimension into g groups.
func Sliced(g int) SliceSpec { return SliceSpec{Groups: g, Slice: true} }

// Active returns the number of active units of a dimension of the given
// width at slice rate r: the leading ⌈r·G⌉ groups, always at least one group.
func (s SliceSpec) Active(r float64, width int) int {
	if !s.Slice || r >= 1 {
		return width
	}
	return ActiveUnits(r, width, s.Groups)
}

// Validate panics unless width is divisible by the group count.
func (s SliceSpec) Validate(name string, width int) {
	g := s.Groups
	if g <= 0 {
		panic(fmt.Sprintf("nn: %s: group count must be positive, got %d", name, g))
	}
	if width%g != 0 {
		panic(fmt.Sprintf("nn: %s: width %d not divisible by %d groups", name, width, g))
	}
}

// ActiveUnits computes the active prefix length of a width divided into
// groups at slice rate r. Rates are snapped to the nearest group boundary
// and clamped to [1, groups] groups.
func ActiveUnits(r float64, width, groups int) int {
	if groups <= 0 {
		groups = 1
	}
	g := int(math.Round(r * float64(groups)))
	if g < 1 {
		g = 1
	}
	if g > groups {
		g = groups
	}
	return g * (width / groups)
}

// Sequential chains layers; the output of layer i feeds layer i+1.
type Sequential struct {
	Layers []Layer
}

// NewSequential builds a Sequential from the given layers.
func NewSequential(layers ...Layer) *Sequential { return &Sequential{Layers: layers} }

// Forward runs all layers in order.
func (s *Sequential) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(ctx, x)
	}
	return x
}

// Backward runs all layers in reverse order.
func (s *Sequential) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		dy = s.Layers[i].Backward(ctx, dy)
	}
	return dy
}

// Params returns the concatenated parameters of all layers.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Infer runs all layers in order on the read-only inference path.
func (s *Sequential) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	for _, l := range s.Layers {
		x = Infer(l, ctx, x)
	}
	return x
}

// ForwardPrefix runs only the first n layers (used by early-exit baselines).
func (s *Sequential) ForwardPrefix(ctx *Context, x *tensor.Tensor, n int) *tensor.Tensor {
	for _, l := range s.Layers[:n] {
		x = l.Forward(ctx, x)
	}
	return x
}

// BackwardRange back-propagates dy through layers [from, to) in reverse.
func (s *Sequential) BackwardRange(ctx *Context, dy *tensor.Tensor, from, to int) *tensor.Tensor {
	for i := to - 1; i >= from; i-- {
		dy = s.Layers[i].Backward(ctx, dy)
	}
	return dy
}
