package nn

import (
	"fmt"

	"modelslicing/internal/tensor"
)

// Residual computes y = Body(x) + Short(x); a nil Short is the identity
// mapping of ResNet (He et al., 2016). Because model slicing keeps the same
// slice rate across all layers, the active widths of the body output and the
// shortcut agree by construction, so identity shortcuts remain valid at every
// slice rate — the property Section 3.5 builds the group-residual-learning
// argument on.
type Residual struct {
	Body  Layer
	Short Layer // nil means identity

	x *tensor.Tensor
}

// NewResidual constructs a residual block.
func NewResidual(body, short Layer) *Residual { return &Residual{Body: body, Short: short} }

// Forward computes the two branches and sums them.
func (r *Residual) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	r.x = x
	y := r.Body.Forward(ctx, x)
	var s *tensor.Tensor
	if r.Short != nil {
		s = r.Short.Forward(ctx, x)
	} else {
		s = x
	}
	if !y.SameShape(s) {
		panic(fmt.Sprintf("nn: Residual branch shapes differ: body %v vs shortcut %v", y.Shape, s.Shape))
	}
	out := y.Clone()
	out.Add(s)
	return out
}

// Infer computes both branches on the read-only path and sums them into an
// arena-backed output (never in place: a pass-through body or shortcut may
// alias the caller's input).
func (r *Residual) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	y := Infer(r.Body, ctx, x)
	s := x
	if r.Short != nil {
		s = Infer(r.Short, ctx, x)
	}
	if !y.SameShape(s) {
		panic(fmt.Sprintf("nn: Residual branch shapes differ: body %v vs shortcut %v", y.Shape, s.Shape))
	}
	out := arenaOf(ctx).GetUninit(y.Shape...)
	for i, v := range y.Data {
		out.Data[i] = v + s.Data[i]
	}
	return out
}

// Backward propagates the gradient through both branches and sums the input
// gradients.
func (r *Residual) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	dx := r.Body.Backward(ctx, dy)
	if r.Short != nil {
		ds := r.Short.Backward(ctx, dy)
		dx.Add(ds)
	} else {
		dx.Add(dy)
	}
	return dx
}

// Params returns the parameters of both branches.
func (r *Residual) Params() []*Param {
	ps := r.Body.Params()
	if r.Short != nil {
		ps = append(ps, r.Short.Params()...)
	}
	return ps
}
