package nn

import (
	"fmt"
	"math"
	"math/rand"

	"modelslicing/internal/tensor"
)

// GRU is a Gated Recurrent Unit layer (Cho et al., 2014) over sequences
// shaped [T, B, In], with PyTorch gate conventions:
//
//	r_t = σ(W_r·x + b_r + U_r·h + c_r)
//	z_t = σ(W_z·x + b_z + U_z·h + c_z)
//	n_t = tanh(W_n·x + b_n + r_t ⊙ (U_n·h + c_n))
//	h_t = (1−z_t) ⊙ n_t + z_t ⊙ h_{t−1}
//
// Gates are stacked row-wise in the order r, z, n. Prefix slicing applies to
// the input and hidden dimensions exactly as in LSTM (Section 3.3).
type GRU struct {
	In, Hidden      int
	InSpec, HidSpec SliceSpec
	Rescale         bool

	Wx *Param // [3H, In]
	Wh *Param // [3H, H]
	Bx *Param // [3H] input-side bias
	Bh *Param // [3H] hidden-side bias

	seqT, batch    int
	aIn, aH        int
	xs             *tensor.Tensor
	hs             []*tensor.Tensor // length T+1
	rz             []*tensor.Tensor // per t: [B, 2aH] activated r, z
	ns             []*tensor.Tensor // per t: [B, aH] activated n
	hus            []*tensor.Tensor // per t: [B, aH] U_n·h + c_n (pre gating)
	scaleX, scaleH float64
}

// NewGRU constructs a GRU with uniform 1/sqrt(H) initialization.
func NewGRU(in, hidden int, inSpec, hidSpec SliceSpec, rescale bool, rng *rand.Rand) *GRU {
	inSpec.Validate("GRU.In", in)
	hidSpec.Validate("GRU.Hidden", hidden)
	g := &GRU{
		In: in, Hidden: hidden,
		InSpec: inSpec, HidSpec: hidSpec, Rescale: rescale,
		Wx: NewParam("gru.Wx", true, 3*hidden, in),
		Wh: NewParam("gru.Wh", true, 3*hidden, hidden),
		Bx: NewParam("gru.Bx", false, 3*hidden),
		Bh: NewParam("gru.Bh", false, 3*hidden),
	}
	bound := 1 / math.Sqrt(float64(hidden))
	tensor.InitUniform(g.Wx.Value, bound, rng)
	tensor.InitUniform(g.Wh.Value, bound, rng)
	return g
}

// Active returns the active (input, hidden) widths at slice rate r.
func (g *GRU) Active(rate float64) (aIn, aH int) {
	return g.InSpec.Active(rate, g.In), g.HidSpec.Active(rate, g.Hidden)
}

// gemmGate computes dst[B × aH](ld) += src[B × k] · W[gate block]ᵀ.
func (g *GRU) gemmGate(dst []float64, ldDst int, src []float64, k, ldSrc int, w []float64, gate, ldW int) {
	tensor.GemmTB(g.batch, g.aH, k, src, ldSrc, w[gate*g.Hidden*ldW:], ldW, dst, ldDst)
}

// Forward runs the sequence and returns hidden states [T, B, aH].
func (g *GRU) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	rate := ctx.EffRate()
	g.aIn, g.aH = g.Active(rate)
	if x.Rank() != 3 || x.Dim(2) != g.aIn {
		panic(fmt.Sprintf("nn: GRU.Forward input %v, want [T B %d] at rate %v", x.Shape, g.aIn, rate))
	}
	g.seqT, g.batch = x.Dim(0), x.Dim(1)
	g.xs = x
	g.scaleX, g.scaleH = 1, 1
	if g.Rescale {
		if g.aIn < g.In {
			g.scaleX = float64(g.In) / float64(g.aIn)
		}
		if g.aH < g.Hidden {
			g.scaleH = float64(g.Hidden) / float64(g.aH)
		}
	}
	g.hs = make([]*tensor.Tensor, g.seqT+1)
	g.hs[0] = tensor.New(g.batch, g.aH)
	g.rz = make([]*tensor.Tensor, g.seqT)
	g.ns = make([]*tensor.Tensor, g.seqT)
	g.hus = make([]*tensor.Tensor, g.seqT)
	out := tensor.New(g.seqT, g.batch, g.aH)
	frame := g.batch * g.aIn

	for t := 0; t < g.seqT; t++ {
		xt := x.Data[t*frame : (t+1)*frame]
		hPrev := g.hs[t]
		// Input-side pre-activations for the three gates: [B, 3aH].
		zx := tensor.New(g.batch, 3*g.aH)
		for k := 0; k < 3; k++ {
			g.gemmGate(zx.Data[k*g.aH:], 3*g.aH, xt, g.aIn, g.aIn, g.Wx.Value.Data, k, g.In)
		}
		if g.scaleX != 1 {
			zx.Scale(g.scaleX)
		}
		// Hidden-side pre-activations: [B, 3aH].
		zh := tensor.New(g.batch, 3*g.aH)
		for k := 0; k < 3; k++ {
			g.gemmGate(zh.Data[k*g.aH:], 3*g.aH, hPrev.Data, g.aH, g.aH, g.Wh.Value.Data, k, g.Hidden)
		}
		if g.scaleH != 1 {
			zh.Scale(g.scaleH)
		}
		rzT := tensor.New(g.batch, 2*g.aH)
		nT := tensor.New(g.batch, g.aH)
		huT := tensor.New(g.batch, g.aH)
		h := tensor.New(g.batch, g.aH)
		bx, bh := g.Bx.Value.Data, g.Bh.Value.Data
		for s := 0; s < g.batch; s++ {
			zxr, zhr := zx.Row(s), zh.Row(s)
			rzr, nr, hur, hr := rzT.Row(s), nT.Row(s), huT.Row(s), h.Row(s)
			hp := hPrev.Row(s)
			for j := 0; j < g.aH; j++ {
				rv := sigmoid(zxr[j] + bx[j] + zhr[j] + bh[j])
				zv := sigmoid(zxr[g.aH+j] + bx[g.Hidden+j] + zhr[g.aH+j] + bh[g.Hidden+j])
				hu := zhr[2*g.aH+j] + bh[2*g.Hidden+j]
				nv := math.Tanh(zxr[2*g.aH+j] + bx[2*g.Hidden+j] + rv*hu)
				rzr[j] = rv
				rzr[g.aH+j] = zv
				hur[j] = hu
				nr[j] = nv
				hr[j] = (1-zv)*nv + zv*hp[j]
			}
		}
		g.rz[t], g.ns[t], g.hus[t] = rzT, nT, huT
		g.hs[t+1] = h
		copy(out.Data[t*g.batch*g.aH:(t+1)*g.batch*g.aH], h.Data)
	}
	return out
}

// Infer runs the sequence on the read-only inference path: hidden frames
// live in the output tensor and the two gate pre-activation buffers are
// reused across steps.
func (g *GRU) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	rate := ctx.EffRate()
	aIn, aH := g.Active(rate)
	if x.Rank() != 3 || x.Dim(2) != aIn {
		panic(fmt.Sprintf("nn: GRU.Infer input %v, want [T B %d] at rate %v", x.Shape, aIn, rate))
	}
	seqT, batch := x.Dim(0), x.Dim(1)
	scaleX, scaleH := 1.0, 1.0
	if g.Rescale {
		if aIn < g.In {
			scaleX = float64(g.In) / float64(aIn)
		}
		if aH < g.Hidden {
			scaleH = float64(g.Hidden) / float64(aH)
		}
	}
	arena := arenaOf(ctx)
	out := arena.Get(seqT, batch, aH)
	h0 := arena.Get(batch, aH)
	zx := arena.Get(batch, 3*aH)
	zh := arena.Get(batch, 3*aH)
	frame := batch * aIn
	outFrame := batch * aH
	hPrev := h0.Data
	bx, bh := g.Bx.Value.Data, g.Bh.Value.Data
	for t := 0; t < seqT; t++ {
		xt := x.Data[t*frame : (t+1)*frame]
		clear(zx.Data)
		clear(zh.Data)
		for k := 0; k < 3; k++ {
			tensor.GemmTB(batch, aH, aIn, xt, aIn, g.Wx.Value.Data[k*g.Hidden*g.In:], g.In, zx.Data[k*aH:], 3*aH)
			tensor.GemmTB(batch, aH, aH, hPrev, aH, g.Wh.Value.Data[k*g.Hidden*g.Hidden:], g.Hidden, zh.Data[k*aH:], 3*aH)
		}
		if scaleX != 1 {
			zx.Scale(scaleX)
		}
		if scaleH != 1 {
			zh.Scale(scaleH)
		}
		hCur := out.Data[t*outFrame : (t+1)*outFrame]
		for s := 0; s < batch; s++ {
			zxr := zx.Data[s*3*aH : (s+1)*3*aH]
			zhr := zh.Data[s*3*aH : (s+1)*3*aH]
			hr := hCur[s*aH : (s+1)*aH]
			hp := hPrev[s*aH : (s+1)*aH]
			for j := 0; j < aH; j++ {
				rv := sigmoid(zxr[j] + bx[j] + zhr[j] + bh[j])
				zv := sigmoid(zxr[aH+j] + bx[g.Hidden+j] + zhr[aH+j] + bh[g.Hidden+j])
				hu := zhr[2*aH+j] + bh[2*g.Hidden+j]
				nv := math.Tanh(zxr[2*aH+j] + bx[2*g.Hidden+j] + rv*hu)
				hr[j] = (1-zv)*nv + zv*hp[j]
			}
		}
		hPrev = hCur
	}
	return out
}

// Backward propagates through time and returns dx [T, B, aIn].
func (g *GRU) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	if dy.Rank() != 3 || dy.Dim(0) != g.seqT || dy.Dim(1) != g.batch || dy.Dim(2) != g.aH {
		panic(fmt.Sprintf("nn: GRU.Backward grad %v, want [%d %d %d]", dy.Shape, g.seqT, g.batch, g.aH))
	}
	dx := tensor.New(g.seqT, g.batch, g.aIn)
	dhNext := tensor.New(g.batch, g.aH)
	frame := g.batch * g.aIn
	outFrame := g.batch * g.aH
	dbx, dbh := g.Bx.Grad.Data, g.Bh.Grad.Data

	for t := g.seqT - 1; t >= 0; t-- {
		hPrev := g.hs[t]
		rzT, nT, huT := g.rz[t], g.ns[t], g.hus[t]
		// Pre-activation grads, input side [B,3aH] and hidden side [B,3aH].
		dzx := tensor.New(g.batch, 3*g.aH)
		dzh := tensor.New(g.batch, 3*g.aH)
		dhPrev := tensor.New(g.batch, g.aH)
		for s := 0; s < g.batch; s++ {
			rzr, nr, hur := rzT.Row(s), nT.Row(s), huT.Row(s)
			hp := hPrev.Row(s)
			dzxr, dzhr := dzx.Row(s), dzh.Row(s)
			dhp := dhPrev.Row(s)
			dhn := dhNext.Row(s)
			gRow := dy.Data[t*outFrame+s*g.aH : t*outFrame+(s+1)*g.aH]
			for j := 0; j < g.aH; j++ {
				dh := gRow[j] + dhn[j]
				rv, zv, nv, hu := rzr[j], rzr[g.aH+j], nr[j], hur[j]
				dz := dh * (hp[j] - nv)
				dn := dh * (1 - zv)
				dhp[j] = dh * zv
				dnPre := dn * (1 - nv*nv)
				dr := dnPre * hu
				dhu := dnPre * rv
				drPre := dr * rv * (1 - rv)
				dzPre := dz * zv * (1 - zv)
				dzxr[j] = drPre
				dzxr[g.aH+j] = dzPre
				dzxr[2*g.aH+j] = dnPre
				dzhr[j] = drPre
				dzhr[g.aH+j] = dzPre
				dzhr[2*g.aH+j] = dhu
				dbx[j] += drPre
				dbx[g.Hidden+j] += dzPre
				dbx[2*g.Hidden+j] += dnPre
				dbh[j] += drPre
				dbh[g.Hidden+j] += dzPre
				dbh[2*g.Hidden+j] += dhu
			}
		}
		if g.scaleX != 1 {
			dzx.Scale(g.scaleX)
		}
		if g.scaleH != 1 {
			dzh.Scale(g.scaleH)
		}
		xt := g.xs.Data[t*frame : (t+1)*frame]
		dxt := dx.Data[t*frame : (t+1)*frame]
		for k := 0; k < 3; k++ {
			dzxk := dzx.Data[k*g.aH:]
			dzhk := dzh.Data[k*g.aH:]
			// dWx[gate k] += dzxₖᵀ · x ; dx += dzxₖ · Wx[gate k]
			tensor.GemmTA(g.aH, g.aIn, g.batch, dzxk, 3*g.aH, xt, g.aIn,
				g.Wx.Grad.Data[k*g.Hidden*g.In:], g.In)
			tensor.Gemm(g.batch, g.aIn, g.aH, dzxk, 3*g.aH,
				g.Wx.Value.Data[k*g.Hidden*g.In:], g.In, dxt, g.aIn)
			// dWh[gate k] += dzhₖᵀ · h_{t-1} ; dh_{t-1} += dzhₖ · Wh[gate k]
			tensor.GemmTA(g.aH, g.aH, g.batch, dzhk, 3*g.aH, hPrev.Data, g.aH,
				g.Wh.Grad.Data[k*g.Hidden*g.Hidden:], g.Hidden)
			tensor.Gemm(g.batch, g.aH, g.aH, dzhk, 3*g.aH,
				g.Wh.Value.Data[k*g.Hidden*g.Hidden:], g.Hidden, dhPrev.Data, g.aH)
		}
		dhNext = dhPrev
	}
	return dx
}

// Params returns Wx, Wh and both biases.
func (g *GRU) Params() []*Param { return []*Param{g.Wx, g.Wh, g.Bx, g.Bh} }
