package nn

import (
	"fmt"
	"math"
	"math/rand"

	"modelslicing/internal/tensor"
)

// LSTM is a single Long Short-Term Memory layer over sequences shaped
// [T, B, In], producing hidden states [T, B, H]. Model slicing applies to
// the input dimension and to the hidden/memory state: at slice rate r only
// the leading aIn inputs and aH hidden units of every gate participate
// (Section 3.3 — "dynamic slicing is applied to all input and output sets,
// including hidden/memory states and various gates, regulated by one single
// parameter slice rate").
//
// The four gates are stored stacked along the row dimension of Wx [4H × In]
// and Wh [4H × H], in the order input, forget, cell, output; the leading aH
// rows *of each gate block* form the sliced sub-layer.
type LSTM struct {
	In, Hidden      int
	InSpec, HidSpec SliceSpec
	// Rescale stabilizes the pre-activation scale by In/aIn (input term)
	// and H/aH (recurrent term) when the layer runs without normalization,
	// mirroring the output rescaling the paper uses for NNLM.
	Rescale bool

	Wx *Param // [4H, In]
	Wh *Param // [4H, H]
	B  *Param // [4H]

	// cached forward state
	seqT, batch    int
	aIn, aH        int
	xs             *tensor.Tensor
	hs, cs         []*tensor.Tensor // length T+1; index 0 is the zero state
	gates          []*tensor.Tensor // per t: [B, 4aH] activated (i,f,g,o)
	tanhC          []*tensor.Tensor // per t: [B, aH]
	scaleX, scaleH float64
}

// NewLSTM constructs an LSTM with uniform initialization 1/sqrt(H) and the
// customary forget-gate bias of 1.
func NewLSTM(in, hidden int, inSpec, hidSpec SliceSpec, rescale bool, rng *rand.Rand) *LSTM {
	inSpec.Validate("LSTM.In", in)
	hidSpec.Validate("LSTM.Hidden", hidden)
	l := &LSTM{
		In: in, Hidden: hidden,
		InSpec: inSpec, HidSpec: hidSpec, Rescale: rescale,
		Wx: NewParam("lstm.Wx", true, 4*hidden, in),
		Wh: NewParam("lstm.Wh", true, 4*hidden, hidden),
		B:  NewParam("lstm.B", false, 4*hidden),
	}
	bound := 1 / math.Sqrt(float64(hidden))
	tensor.InitUniform(l.Wx.Value, bound, rng)
	tensor.InitUniform(l.Wh.Value, bound, rng)
	for i := hidden; i < 2*hidden; i++ {
		l.B.Value.Data[i] = 1 // forget gate
	}
	return l
}

// Active returns the active (input, hidden) widths at slice rate r.
func (l *LSTM) Active(r float64) (aIn, aH int) {
	return l.InSpec.Active(r, l.In), l.HidSpec.Active(r, l.Hidden)
}

// gateRows returns the weight sub-matrix rows for gate k (0..3) sliced to aH
// rows, as an offset into a [4H × ld] buffer.
func gateOffset(k, hidden, ld int) int { return k * hidden * ld }

// Forward runs the sequence and returns hidden states [T, B, aH].
func (l *LSTM) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	r := ctx.EffRate()
	l.aIn, l.aH = l.Active(r)
	if x.Rank() != 3 || x.Dim(2) != l.aIn {
		panic(fmt.Sprintf("nn: LSTM.Forward input %v, want [T B %d] at rate %v", x.Shape, l.aIn, r))
	}
	l.seqT, l.batch = x.Dim(0), x.Dim(1)
	l.xs = x
	l.scaleX, l.scaleH = 1, 1
	if l.Rescale {
		if l.aIn < l.In {
			l.scaleX = float64(l.In) / float64(l.aIn)
		}
		if l.aH < l.Hidden {
			l.scaleH = float64(l.Hidden) / float64(l.aH)
		}
	}

	l.hs = make([]*tensor.Tensor, l.seqT+1)
	l.cs = make([]*tensor.Tensor, l.seqT+1)
	l.gates = make([]*tensor.Tensor, l.seqT)
	l.tanhC = make([]*tensor.Tensor, l.seqT)
	l.hs[0] = tensor.New(l.batch, l.aH)
	l.cs[0] = tensor.New(l.batch, l.aH)

	out := tensor.New(l.seqT, l.batch, l.aH)
	frame := l.batch * l.aIn
	for t := 0; t < l.seqT; t++ {
		xt := x.Data[t*frame : (t+1)*frame] // [B, aIn]
		z := tensor.New(l.batch, 4*l.aH)
		l.stepPreact(xt, l.hs[t], z)
		h := tensor.New(l.batch, l.aH)
		c := tensor.New(l.batch, l.aH)
		th := tensor.New(l.batch, l.aH)
		cPrev := l.cs[t]
		for s := 0; s < l.batch; s++ {
			zr := z.Row(s)
			hr, cr, tr := h.Row(s), c.Row(s), th.Row(s)
			cp := cPrev.Row(s)
			for j := 0; j < l.aH; j++ {
				iv := sigmoid(zr[j])
				fv := sigmoid(zr[l.aH+j])
				gv := math.Tanh(zr[2*l.aH+j])
				ov := sigmoid(zr[3*l.aH+j])
				zr[j], zr[l.aH+j], zr[2*l.aH+j], zr[3*l.aH+j] = iv, fv, gv, ov
				cv := fv*cp[j] + iv*gv
				tv := math.Tanh(cv)
				cr[j] = cv
				tr[j] = tv
				hr[j] = ov * tv
			}
		}
		l.gates[t] = z
		l.tanhC[t] = th
		l.hs[t+1] = h
		l.cs[t+1] = c
		copy(out.Data[t*l.batch*l.aH:(t+1)*l.batch*l.aH], h.Data)
	}
	return out
}

// stepPreact computes z[B × 4aH] = scaleX·x·Wxᵀ + scaleH·h·Whᵀ + b for the
// four sliced gate blocks.
func (l *LSTM) stepPreact(xt []float64, hPrev *tensor.Tensor, z *tensor.Tensor) {
	if l.scaleX == 1 && l.scaleH == 1 {
		for k := 0; k < 4; k++ {
			wx := l.Wx.Value.Data[gateOffset(k, l.Hidden, l.In):]
			wh := l.Wh.Value.Data[gateOffset(k, l.Hidden, l.Hidden):]
			tensor.GemmTB(l.batch, l.aH, l.aIn, xt, l.aIn, wx, l.In, z.Data[k*l.aH:], 4*l.aH)
			tensor.GemmTB(l.batch, l.aH, l.aH, hPrev.Data, l.aH, wh, l.Hidden, z.Data[k*l.aH:], 4*l.aH)
		}
	} else {
		// The two terms carry different rescale factors, so they are
		// accumulated separately and combined scaled.
		zx := tensor.New(l.batch, 4*l.aH)
		zh := tensor.New(l.batch, 4*l.aH)
		for k := 0; k < 4; k++ {
			wx := l.Wx.Value.Data[gateOffset(k, l.Hidden, l.In):]
			wh := l.Wh.Value.Data[gateOffset(k, l.Hidden, l.Hidden):]
			tensor.GemmTB(l.batch, l.aH, l.aIn, xt, l.aIn, wx, l.In, zx.Data[k*l.aH:], 4*l.aH)
			tensor.GemmTB(l.batch, l.aH, l.aH, hPrev.Data, l.aH, wh, l.Hidden, zh.Data[k*l.aH:], 4*l.aH)
		}
		z.AddScaled(l.scaleX, zx)
		z.AddScaled(l.scaleH, zh)
	}
	b := l.B.Value.Data
	for s := 0; s < l.batch; s++ {
		zr := z.Row(s)
		for k := 0; k < 4; k++ {
			bk := b[k*l.Hidden : k*l.Hidden+l.aH]
			for j := 0; j < l.aH; j++ {
				zr[k*l.aH+j] += bk[j]
			}
		}
	}
}

// Infer runs the sequence on the read-only inference path: hidden frames
// live in the output tensor, the cell state ping-pongs between two arena
// buffers, and the gate pre-activation buffer is reused across steps.
func (l *LSTM) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	r := ctx.EffRate()
	aIn, aH := l.Active(r)
	if x.Rank() != 3 || x.Dim(2) != aIn {
		panic(fmt.Sprintf("nn: LSTM.Infer input %v, want [T B %d] at rate %v", x.Shape, aIn, r))
	}
	seqT, batch := x.Dim(0), x.Dim(1)
	scaleX, scaleH := 1.0, 1.0
	if l.Rescale {
		if aIn < l.In {
			scaleX = float64(l.In) / float64(aIn)
		}
		if aH < l.Hidden {
			scaleH = float64(l.Hidden) / float64(aH)
		}
	}
	arena := arenaOf(ctx)
	out := arena.Get(seqT, batch, aH)
	h0 := arena.Get(batch, aH)
	cPrev := arena.Get(batch, aH)
	cCur := arena.Get(batch, aH)
	z := arena.Get(batch, 4*aH)
	var zx, zh *tensor.Tensor
	if scaleX != 1 || scaleH != 1 {
		zx = arena.Get(batch, 4*aH)
		zh = arena.Get(batch, 4*aH)
	}
	frame := batch * aIn
	outFrame := batch * aH
	hPrev := h0.Data
	b := l.B.Value.Data
	for t := 0; t < seqT; t++ {
		xt := x.Data[t*frame : (t+1)*frame]
		if zx == nil {
			clear(z.Data)
			for k := 0; k < 4; k++ {
				wx := l.Wx.Value.Data[gateOffset(k, l.Hidden, l.In):]
				wh := l.Wh.Value.Data[gateOffset(k, l.Hidden, l.Hidden):]
				tensor.GemmTB(batch, aH, aIn, xt, aIn, wx, l.In, z.Data[k*aH:], 4*aH)
				tensor.GemmTB(batch, aH, aH, hPrev, aH, wh, l.Hidden, z.Data[k*aH:], 4*aH)
			}
		} else {
			clear(zx.Data)
			clear(zh.Data)
			for k := 0; k < 4; k++ {
				wx := l.Wx.Value.Data[gateOffset(k, l.Hidden, l.In):]
				wh := l.Wh.Value.Data[gateOffset(k, l.Hidden, l.Hidden):]
				tensor.GemmTB(batch, aH, aIn, xt, aIn, wx, l.In, zx.Data[k*aH:], 4*aH)
				tensor.GemmTB(batch, aH, aH, hPrev, aH, wh, l.Hidden, zh.Data[k*aH:], 4*aH)
			}
			for i := range z.Data {
				z.Data[i] = scaleX*zx.Data[i] + scaleH*zh.Data[i]
			}
		}
		hCur := out.Data[t*outFrame : (t+1)*outFrame]
		for s := 0; s < batch; s++ {
			zr := z.Data[s*4*aH : (s+1)*4*aH]
			hr := hCur[s*aH : (s+1)*aH]
			cp := cPrev.Data[s*aH : (s+1)*aH]
			cc := cCur.Data[s*aH : (s+1)*aH]
			for j := 0; j < aH; j++ {
				iv := sigmoid(zr[j] + b[j])
				fv := sigmoid(zr[aH+j] + b[l.Hidden+j])
				gv := math.Tanh(zr[2*aH+j] + b[2*l.Hidden+j])
				ov := sigmoid(zr[3*aH+j] + b[3*l.Hidden+j])
				cv := fv*cp[j] + iv*gv
				cc[j] = cv
				hr[j] = ov * math.Tanh(cv)
			}
		}
		cPrev, cCur = cCur, cPrev
		hPrev = hCur
	}
	return out
}

// Backward propagates through time, accumulating weight gradients, and
// returns dx [T, B, aIn].
func (l *LSTM) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	if dy.Rank() != 3 || dy.Dim(0) != l.seqT || dy.Dim(1) != l.batch || dy.Dim(2) != l.aH {
		panic(fmt.Sprintf("nn: LSTM.Backward grad %v, want [%d %d %d]", dy.Shape, l.seqT, l.batch, l.aH))
	}
	dx := tensor.New(l.seqT, l.batch, l.aIn)
	dhNext := tensor.New(l.batch, l.aH)
	dcNext := tensor.New(l.batch, l.aH)
	dz := tensor.New(l.batch, 4*l.aH)
	frame := l.batch * l.aIn
	outFrame := l.batch * l.aH

	for t := l.seqT - 1; t >= 0; t-- {
		z := l.gates[t]
		th := l.tanhC[t]
		cPrev := l.cs[t]
		for s := 0; s < l.batch; s++ {
			zr := z.Row(s)
			tr := th.Row(s)
			cp := cPrev.Row(s)
			dh := dhNext.Row(s)
			dc := dcNext.Row(s)
			dzr := dz.Row(s)
			gRow := dy.Data[t*outFrame+s*l.aH : t*outFrame+(s+1)*l.aH]
			for j := 0; j < l.aH; j++ {
				dhv := gRow[j] + dh[j]
				iv, fv, gv, ov := zr[j], zr[l.aH+j], zr[2*l.aH+j], zr[3*l.aH+j]
				tv := tr[j]
				dov := dhv * tv
				dcv := dc[j] + dhv*ov*(1-tv*tv)
				div := dcv * gv
				dfv := dcv * cp[j]
				dgv := dcv * iv
				dzr[j] = div * iv * (1 - iv)
				dzr[l.aH+j] = dfv * fv * (1 - fv)
				dzr[2*l.aH+j] = dgv * (1 - gv*gv)
				dzr[3*l.aH+j] = dov * ov * (1 - ov)
				dc[j] = dcv * fv // becomes dcNext for t-1
			}
		}
		// Parameter and input gradients from dz. The x-path carries the
		// scaleX factor and the h-path scaleH (bias path unscaled).
		xt := l.xs.Data[t*frame : (t+1)*frame]
		hPrev := l.hs[t]
		dxt := dx.Data[t*frame : (t+1)*frame]
		dhNext.Zero()
		db := l.B.Grad.Data
		dzx, dzh := dz, dz
		if l.scaleX != 1 {
			dzx = dz.Clone()
			dzx.Scale(l.scaleX)
		}
		if l.scaleH != 1 {
			dzh = dz.Clone()
			dzh.Scale(l.scaleH)
		}
		for k := 0; k < 4; k++ {
			dzkx := dzx.Data[k*l.aH:] // [B × aH] with ld 4aH
			dzkh := dzh.Data[k*l.aH:]
			// dWx[gate k] += scaleX · dzₖᵀ · x
			tensor.GemmTA(l.aH, l.aIn, l.batch, dzkx, 4*l.aH, xt, l.aIn,
				l.Wx.Grad.Data[gateOffset(k, l.Hidden, l.In):], l.In)
			// dWh[gate k] += scaleH · dzₖᵀ · h_{t-1}
			tensor.GemmTA(l.aH, l.aH, l.batch, dzkh, 4*l.aH, hPrev.Data, l.aH,
				l.Wh.Grad.Data[gateOffset(k, l.Hidden, l.Hidden):], l.Hidden)
			// dx += scaleX · dzₖ · Wx[gate k]
			tensor.Gemm(l.batch, l.aIn, l.aH, dzkx, 4*l.aH,
				l.Wx.Value.Data[gateOffset(k, l.Hidden, l.In):], l.In, dxt, l.aIn)
			// dh_{t-1} += scaleH · dzₖ · Wh[gate k]
			tensor.Gemm(l.batch, l.aH, l.aH, dzkh, 4*l.aH,
				l.Wh.Value.Data[gateOffset(k, l.Hidden, l.Hidden):], l.Hidden, dhNext.Data, l.aH)
			// db[gate k] += Σ_batch dzₖ
			for s := 0; s < l.batch; s++ {
				row := dz.Row(s)
				for j := 0; j < l.aH; j++ {
					db[k*l.Hidden+j] += row[k*l.aH+j]
				}
			}
		}
	}
	return dx
}

// Params returns Wx, Wh and the bias.
func (l *LSTM) Params() []*Param { return []*Param{l.Wx, l.Wh, l.B} }
