package nn

import (
	"math/rand"
	"testing"

	"modelslicing/internal/tensor"
)

// inferRates cover full width, interior slice points and the lower bound.
var inferRates = []float64{0.25, 0.5, 0.75, 1.0}

// checkInferMatchesForward runs the layer's Forward (evaluation mode) and
// Infer on the same input at the same rate and requires bit-identical
// outputs: both paths execute the same kernel calls in the same order, so
// any drift is a bug, not rounding.
func checkInferMatchesForward(t *testing.T, name string, l Layer, x *tensor.Tensor, r float64, widthIdx int) {
	t.Helper()
	want := l.Forward(&Context{Rate: r, WidthIdx: widthIdx}, x)
	arena := tensor.NewArena()
	for pass := 0; pass < 2; pass++ { // second pass exercises slab reuse
		ctx := &Context{Rate: r, WidthIdx: widthIdx, Arena: arena}
		got := Infer(l, ctx, x)
		if !got.SameShape(want) {
			t.Fatalf("%s r=%v: Infer shape %v, Forward shape %v", name, r, got.Shape, want.Shape)
		}
		for i := range got.Data {
			if got.Data[i] != want.Data[i] {
				t.Fatalf("%s r=%v pass=%d: Infer[%d]=%g, Forward=%g", name, r, pass, i, got.Data[i], want.Data[i])
			}
		}
		arena.Reset()
	}
	// Arena-less inference must work too.
	got := Infer(l, &Context{Rate: r, WidthIdx: widthIdx}, x)
	for i := range got.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s r=%v (nil arena): Infer[%d]=%g, Forward=%g", name, r, i, got.Data[i], want.Data[i])
		}
	}
}

func TestInferMatchesForwardDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, rescale := range []bool{false, true} {
		for _, bias := range []bool{false, true} {
			d := NewDense(16, 12, Sliced(4), Sliced(4), bias, rng)
			d.Rescale = rescale
			for _, r := range inferRates {
				aIn, _ := d.Active(r)
				x := randTensor(rng, 5, aIn)
				checkInferMatchesForward(t, "Dense", d, x, r, 0)
			}
		}
	}
}

func TestInferMatchesForwardConv(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv2D(8, 12, 3, 3, 1, 1, Sliced(4), Sliced(4), true, rng)
	for _, r := range inferRates {
		aIn, _ := c.Active(r)
		x := randTensor(rng, 3, aIn, 6, 6)
		checkInferMatchesForward(t, "Conv2D", c, x, r, 0)
	}
}

func TestInferMatchesForwardNorms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGroupNorm(16, 4, Sliced(4), 1e-5)
	for i := range g.Gamma.Value.Data {
		g.Gamma.Value.Data[i] = 0.5 + rng.Float64()
		g.Beta.Value.Data[i] = rng.NormFloat64()
	}
	for _, r := range inferRates {
		aC := g.Spec.Active(r, g.C)
		checkInferMatchesForward(t, "GroupNorm-4d", g, randTensor(rng, 2, aC, 3, 3), r, 0)
		checkInferMatchesForward(t, "GroupNorm-2d", g, randTensor(rng, 4, aC), r, 0)
	}

	b := NewBatchNorm(16, Sliced(4))
	// Train once at full width so the running statistics are non-trivial.
	b.Forward(&Context{Training: true, Rate: 1}, randTensor(rng, 6, 16, 3, 3))
	for _, r := range inferRates {
		aC := b.Spec.Active(r, b.C)
		checkInferMatchesForward(t, "BatchNorm", b, randTensor(rng, 2, aC, 3, 3), r, 0)
	}

	s := NewSwitchableBatchNorm(16, Sliced(4), len(inferRates))
	for i, r := range inferRates {
		s.Forward(&Context{Training: true, Rate: r, WidthIdx: i}, randTensor(rng, 6, s.BNs[i].Spec.Active(r, 16), 2, 2))
	}
	for i, r := range inferRates {
		aC := s.BNs[i].Spec.Active(r, 16)
		checkInferMatchesForward(t, "SwitchableBatchNorm", s, randTensor(rng, 3, aC, 2, 2), r, i)
	}
}

func TestInferMatchesForwardRecurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, rescale := range []bool{false, true} {
		rn := NewRNN(8, 12, Sliced(4), Sliced(4), rescale, rng)
		gr := NewGRU(8, 12, Sliced(4), Sliced(4), rescale, rng)
		ls := NewLSTM(8, 12, Sliced(4), Sliced(4), rescale, rng)
		for _, r := range inferRates {
			aIn, _ := rn.Active(r)
			x := randTensor(rng, 5, 3, aIn)
			checkInferMatchesForward(t, "RNN", rn, x, r, 0)
			checkInferMatchesForward(t, "GRU", gr, x, r, 0)
			checkInferMatchesForward(t, "LSTM", ls, x, r, 0)
		}
	}
}

func TestInferMatchesForwardStateless(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	checkInferMatchesForward(t, "ReLU", NewReLU(), randTensor(rng, 4, 9), 1, 0)
	checkInferMatchesForward(t, "Dropout", NewDropout(0.5), randTensor(rng, 4, 9), 1, 0)
	checkInferMatchesForward(t, "MaxPool", NewMaxPool2D(2, 2), randTensor(rng, 2, 3, 6, 6), 1, 0)
	checkInferMatchesForward(t, "GAP", NewGlobalAvgPool(), randTensor(rng, 2, 3, 5, 5), 1, 0)
	checkInferMatchesForward(t, "Flatten", NewFlatten(), randTensor(rng, 2, 3, 4, 4), 1, 0)
	checkInferMatchesForward(t, "TimeFlatten", NewTimeFlatten(), randTensor(rng, 5, 2, 7), 1, 0)

	e := NewEmbedding(11, 6, rng)
	ids := tensor.New(3, 4)
	for i := range ids.Data {
		ids.Data[i] = float64(rng.Intn(11))
	}
	checkInferMatchesForward(t, "Embedding", e, ids, 1, 0)
}

func TestInferMatchesForwardComposite(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	body := NewSequential(
		Conv3x3(8, 8, Sliced(4), Sliced(4), rng),
		NewGroupNorm(8, 4, Sliced(4), 1e-5),
		NewReLU(),
	)
	res := NewResidual(body, nil)
	net := NewSequential(
		NewConv2D(3, 8, 3, 3, 1, 1, Fixed(), Sliced(4), false, rng),
		res,
		NewGlobalAvgPool(),
		NewFlatten(),
		NewDense(8, 4, Sliced(4), Fixed(), true, rng),
	)
	for _, r := range inferRates {
		x := randTensor(rng, 2, 3, 8, 8)
		checkInferMatchesForward(t, "VGG-ish", net, x, r, 0)
	}
}

// TestInferAllocsFree is the acceptance criterion: a steady-state Dense-MLP
// inference with an arena performs zero heap allocations.
func TestInferAllocsFree(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewSequential(
		NewDense(16, 64, Fixed(), Sliced(4), true, rng),
		NewReLU(),
		NewDense(64, 64, Sliced(4), Sliced(4), true, rng),
		NewReLU(),
		NewDense(64, 4, Sliced(4), Fixed(), true, rng),
	)
	x := randTensor(rng, 8, 16)
	arena := tensor.NewArena()
	ctx := &Context{Rate: 0.5, Arena: arena}
	pass := func() {
		net.Infer(ctx, x)
		arena.Reset()
	}
	pass()
	pass()
	if allocs := testing.AllocsPerRun(100, pass); allocs > 0 {
		t.Fatalf("arena-backed MLP inference allocates %v times per pass, want 0", allocs)
	}
}
