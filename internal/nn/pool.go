package nn

import (
	"fmt"
	"math"

	"modelslicing/internal/tensor"
)

// MaxPool2D is max pooling over [B, C, H, W] tensors.
type MaxPool2D struct {
	K, Stride int

	argmax     []int
	inShape    []int
	outH, outW int
}

// NewMaxPool2D constructs a k×k max-pool with the given stride.
func NewMaxPool2D(k, stride int) *MaxPool2D { return &MaxPool2D{K: k, Stride: stride} }

// Forward computes the pooled output and caches argmax positions.
func (m *MaxPool2D) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D input %v, want rank 4", x.Shape))
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	m.inShape = append([]int(nil), x.Shape...)
	m.outH = tensor.ConvOutSize(h, m.K, m.Stride, 0)
	m.outW = tensor.ConvOutSize(w, m.K, m.Stride, 0)
	y := tensor.New(b, c, m.outH, m.outW)
	if cap(m.argmax) < y.Size() {
		m.argmax = make([]int, y.Size())
	}
	m.argmax = m.argmax[:y.Size()]
	for s := 0; s < b; s++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data[(s*c+ch)*h*w : (s*c+ch+1)*h*w]
			outBase := (s*c + ch) * m.outH * m.outW
			for oy := 0; oy < m.outH; oy++ {
				for ox := 0; ox < m.outW; ox++ {
					best := math.Inf(-1)
					bestIdx := 0
					for ky := 0; ky < m.K; ky++ {
						for kx := 0; kx < m.K; kx++ {
							iy := oy*m.Stride + ky
							ix := ox*m.Stride + kx
							if iy >= h || ix >= w {
								continue
							}
							v := plane[iy*w+ix]
							if v > best {
								best = v
								bestIdx = iy*w + ix
							}
						}
					}
					o := outBase + oy*m.outW + ox
					y.Data[o] = best
					m.argmax[o] = (s*c+ch)*h*w + bestIdx
				}
			}
		}
	}
	return y
}

// Infer computes the pooled output without caching argmax positions.
func (m *MaxPool2D) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D input %v, want rank 4", x.Shape))
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	outH := tensor.ConvOutSize(h, m.K, m.Stride, 0)
	outW := tensor.ConvOutSize(w, m.K, m.Stride, 0)
	y := arenaOf(ctx).GetUninit(b, c, outH, outW)
	for s := 0; s < b; s++ {
		for ch := 0; ch < c; ch++ {
			plane := x.Data[(s*c+ch)*h*w : (s*c+ch+1)*h*w]
			outBase := (s*c + ch) * outH * outW
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					best := math.Inf(-1)
					for ky := 0; ky < m.K; ky++ {
						for kx := 0; kx < m.K; kx++ {
							iy := oy*m.Stride + ky
							ix := ox*m.Stride + kx
							if iy >= h || ix >= w {
								continue
							}
							if v := plane[iy*w+ix]; v > best {
								best = v
							}
						}
					}
					y.Data[outBase+oy*outW+ox] = best
				}
			}
		}
	}
	return y
}

// Backward routes each gradient to its argmax position.
func (m *MaxPool2D) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	dx := tensor.New(m.inShape...)
	for i, v := range dy.Data {
		dx.Data[m.argmax[i]] += v
	}
	return dx
}

// Params returns nil; pooling has no parameters.
func (m *MaxPool2D) Params() []*Param { return nil }

// GlobalAvgPool reduces [B, C, H, W] to [B, C] by spatial averaging.
type GlobalAvgPool struct {
	inShape []int
}

// NewGlobalAvgPool constructs a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward averages each channel plane.
func (g *GlobalAvgPool) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool input %v, want rank 4", x.Shape))
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	g.inShape = append([]int(nil), x.Shape...)
	y := tensor.New(b, c)
	hw := h * w
	for s := 0; s < b; s++ {
		for ch := 0; ch < c; ch++ {
			seg := x.Data[(s*c+ch)*hw : (s*c+ch+1)*hw]
			sum := 0.0
			for _, v := range seg {
				sum += v
			}
			y.Data[s*c+ch] = sum / float64(hw)
		}
	}
	return y
}

// Infer averages each channel plane without caching the input shape.
func (g *GlobalAvgPool) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool input %v, want rank 4", x.Shape))
	}
	b, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	y := arenaOf(ctx).GetUninit(b, c)
	hw := h * w
	for s := 0; s < b; s++ {
		for ch := 0; ch < c; ch++ {
			seg := x.Data[(s*c+ch)*hw : (s*c+ch+1)*hw]
			sum := 0.0
			for _, v := range seg {
				sum += v
			}
			y.Data[s*c+ch] = sum / float64(hw)
		}
	}
	return y
}

// Backward distributes each gradient uniformly over the pooled plane.
func (g *GlobalAvgPool) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	b, c, h, w := g.inShape[0], g.inShape[1], g.inShape[2], g.inShape[3]
	dx := tensor.New(g.inShape...)
	hw := h * w
	inv := 1 / float64(hw)
	for s := 0; s < b; s++ {
		for ch := 0; ch < c; ch++ {
			v := dy.Data[s*c+ch] * inv
			seg := dx.Data[(s*c+ch)*hw : (s*c+ch+1)*hw]
			for i := range seg {
				seg[i] = v
			}
		}
	}
	return dx
}

// Params returns nil; pooling has no parameters.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Flatten reshapes [B, ...] to [B, features].
type Flatten struct {
	inShape []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward flattens all trailing dimensions into one.
func (f *Flatten) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	f.inShape = append([]int(nil), x.Shape...)
	return x.Reshape(x.Dim(0), x.Size()/x.Dim(0))
}

// Infer flattens via an arena-recycled header view (no data copy, no cached
// shape).
func (f *Flatten) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	return arenaOf(ctx).Wrap(x.Data, x.Dim(0), x.Size()/x.Dim(0))
}

// Backward restores the original shape.
func (f *Flatten) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	return dy.Reshape(f.inShape...)
}

// Params returns nil; Flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }
