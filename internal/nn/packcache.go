package nn

import (
	"sync"
	"sync/atomic"

	"modelslicing/internal/tensor"
)

// Per-width persistent weight-pack caching. A weight-bearing layer serves
// every slice rate from prefix views of one parent buffer; the packed-GEMM
// path (tensor.Packed) additionally wants each active prefix laid out in
// micro-panel order. Since weights are immutable at inference time, each
// active width is packed exactly once — lazily, on the first pass that uses
// it — and the pack is then shared read-only by every goroutine serving that
// width. Memory is O(active-prefix) per deployed width and pack precision,
// reported through PackCacheBytes / PackCacheTierBytes.
//
// Cache coherence follows the same contract as the fused serving view
// (nn.Fuse): a model must not be trained while it serves. The training path
// (Forward) drops the owner's packs, so the train → serve sequence always
// rebuilds them from the post-training weights.

// packKey identifies one active width of a weight matrix at one pack
// precision: the packed operand's logical dimensions plus the normalized
// pack tier (see packTierOf).
type packKey struct {
	rows, depth int
	tier        tensor.EngineTier
}

// packTierOf maps an engine tier to the pack precision it consumes. The
// exact and fma tiers read the same f64 panels — only the inner loop
// differs — so they share one pack per width; the f32 tier needs its own
// scaled-float32 panels.
func packTierOf(t tensor.EngineTier) tensor.EngineTier {
	if t == tensor.TierF32 {
		return tensor.TierF32
	}
	return tensor.TierExact
}

// packCache lazily builds and serves per-(width, tier) packs of an immutable
// weight buffer. Reads are lock-free (copy-on-write map behind an atomic
// pointer) so the steady-state inference path stays allocation- and
// contention-free; builds serialize on a mutex, so each key is packed exactly
// once no matter how many workers race to first use it.
type packCache struct {
	mu sync.Mutex
	m  atomic.Pointer[map[packKey]tensor.Packed]
}

// lookup returns the cached pack for the key, or nil. Never allocates.
func (pc *packCache) lookup(k packKey) tensor.Packed {
	mp := pc.m.Load()
	if mp == nil {
		return nil
	}
	return (*mp)[k]
}

// build returns the pack for the key, constructing and publishing it under
// the once-per-key lock if a concurrent builder has not already done so.
func (pc *packCache) build(k packKey, mk func() tensor.Packed) tensor.Packed {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if mp := pc.m.Load(); mp != nil {
		if p := (*mp)[k]; p != nil {
			return p
		}
	}
	p := mk()
	next := make(map[packKey]tensor.Packed)
	if mp := pc.m.Load(); mp != nil {
		for kk, vv := range *mp {
			next[kk] = vv
		}
	}
	next[k] = p
	pc.m.Store(&next)
	return p
}

// invalidate drops every cached pack; the next inference pass rebuilds from
// the current weights. Cheap when the cache is already empty (one atomic
// load), so the training path calls it unconditionally.
func (pc *packCache) invalidate() {
	if pc.m.Load() == nil {
		return
	}
	pc.mu.Lock()
	pc.m.Store(nil)
	pc.mu.Unlock()
}

// bytes sums the resident panel storage across cached keys.
func (pc *packCache) bytes() int64 {
	mp := pc.m.Load()
	if mp == nil {
		return 0
	}
	var t int64
	for _, p := range *mp {
		t += int64(p.Bytes())
	}
	return t
}

// bytesByTier splits the resident panel storage by pack precision.
func (pc *packCache) bytesByTier() [tensor.NumTiers]int64 {
	var out [tensor.NumTiers]int64
	mp := pc.m.Load()
	if mp == nil {
		return out
	}
	for k, p := range *mp {
		out[k.tier] += int64(p.Bytes())
	}
	return out
}

// usePack reports whether the context allows the persistent packed-weight
// path (on by default; slicing.Shared's escape hatch and benchmarks disable
// it to expose the unpacked engine).
func usePack(ctx *Context) bool {
	return ctx == nil || !ctx.NoPack
}

// packOwner is implemented by layers that hold a persistent pack cache.
type packOwner interface {
	packCacheBytes() int64
	packCacheTierBytes() [tensor.NumTiers]int64
}

// PackCacheBytes sums the resident packed-panel bytes held by l and, for the
// built-in containers and fused views, every layer inside it — the memory the
// elastic widths are holding beyond the parent parameters.
func PackCacheBytes(l Layer) int64 {
	var t int64
	switch v := l.(type) {
	case *Sequential:
		for _, c := range v.Layers {
			t += PackCacheBytes(c)
		}
	case *Residual:
		t += PackCacheBytes(v.Body)
		if v.Short != nil {
			t += PackCacheBytes(v.Short)
		}
	case *FusedConvAct:
		for _, c := range v.src {
			t += PackCacheBytes(c)
		}
	case *FusedDenseAct:
		for _, c := range v.src {
			t += PackCacheBytes(c)
		}
	case *FusedNormAct:
		for _, c := range v.src {
			t += PackCacheBytes(c)
		}
	case packOwner:
		t = v.packCacheBytes()
	}
	return t
}

// PackCacheTierBytes is PackCacheBytes split by pack precision: index
// tensor.TierExact holds the f64 panels (shared by the exact and fma
// engines), index tensor.TierF32 the scaled-float32 panels.
func PackCacheTierBytes(l Layer) [tensor.NumTiers]int64 {
	var t [tensor.NumTiers]int64
	add := func(child Layer) {
		ct := PackCacheTierBytes(child)
		for i := range t {
			t[i] += ct[i]
		}
	}
	switch v := l.(type) {
	case *Sequential:
		for _, c := range v.Layers {
			add(c)
		}
	case *Residual:
		add(v.Body)
		if v.Short != nil {
			add(v.Short)
		}
	case *FusedConvAct:
		for _, c := range v.src {
			add(c)
		}
	case *FusedDenseAct:
		for _, c := range v.src {
			add(c)
		}
	case *FusedNormAct:
		for _, c := range v.src {
			add(c)
		}
	case packOwner:
		t = v.packCacheTierBytes()
	}
	return t
}
