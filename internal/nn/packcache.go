package nn

import (
	"sync"
	"sync/atomic"

	"modelslicing/internal/tensor"
)

// Per-width persistent weight-pack caching. A weight-bearing layer serves
// every slice rate from prefix views of one parent buffer; the packed-GEMM
// path (tensor.PackedMat) additionally wants each active prefix laid out in
// micro-panel order. Since weights are immutable at inference time, each
// active width is packed exactly once — lazily, on the first pass that uses
// it — and the pack is then shared read-only by every goroutine serving that
// width. Memory is O(active-prefix) per deployed width, reported through
// PackCacheBytes.
//
// Cache coherence follows the same contract as the fused serving view
// (nn.Fuse): a model must not be trained while it serves. The training path
// (Forward) drops the owner's packs, so the train → serve sequence always
// rebuilds them from the post-training weights.

// packKey identifies one active width of a weight matrix: the packed
// operand's logical dimensions.
type packKey struct{ rows, depth int }

// packCache lazily builds and serves per-width packs of an immutable weight
// buffer. Reads are lock-free (copy-on-write map behind an atomic pointer) so
// the steady-state inference path stays allocation- and contention-free;
// builds serialize on a mutex, so each width is packed exactly once no matter
// how many workers race to first use it.
type packCache struct {
	mu sync.Mutex
	m  atomic.Pointer[map[packKey]*tensor.PackedMat]
}

// lookup returns the cached pack for the key, or nil. Never allocates.
func (pc *packCache) lookup(k packKey) *tensor.PackedMat {
	mp := pc.m.Load()
	if mp == nil {
		return nil
	}
	return (*mp)[k]
}

// build returns the pack for the key, constructing and publishing it under
// the once-per-width lock if a concurrent builder has not already done so.
func (pc *packCache) build(k packKey, mk func() *tensor.PackedMat) *tensor.PackedMat {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if mp := pc.m.Load(); mp != nil {
		if p := (*mp)[k]; p != nil {
			return p
		}
	}
	p := mk()
	next := make(map[packKey]*tensor.PackedMat)
	if mp := pc.m.Load(); mp != nil {
		for kk, vv := range *mp {
			next[kk] = vv
		}
	}
	next[k] = p
	pc.m.Store(&next)
	return p
}

// invalidate drops every cached pack; the next inference pass rebuilds from
// the current weights. Cheap when the cache is already empty (one atomic
// load), so the training path calls it unconditionally.
func (pc *packCache) invalidate() {
	if pc.m.Load() == nil {
		return
	}
	pc.mu.Lock()
	pc.m.Store(nil)
	pc.mu.Unlock()
}

// bytes sums the resident panel storage across cached widths.
func (pc *packCache) bytes() int64 {
	mp := pc.m.Load()
	if mp == nil {
		return 0
	}
	var t int64
	for _, p := range *mp {
		t += int64(p.Bytes())
	}
	return t
}

// usePack reports whether the context allows the persistent packed-weight
// path (on by default; slicing.Shared's escape hatch and benchmarks disable
// it to expose the unpacked engine).
func usePack(ctx *Context) bool {
	return ctx == nil || !ctx.NoPack
}

// packOwner is implemented by layers that hold a persistent pack cache.
type packOwner interface {
	packCacheBytes() int64
}

// PackCacheBytes sums the resident packed-panel bytes held by l and, for the
// built-in containers and fused views, every layer inside it — the memory the
// elastic widths are holding beyond the parent parameters.
func PackCacheBytes(l Layer) int64 {
	var t int64
	switch v := l.(type) {
	case *Sequential:
		for _, c := range v.Layers {
			t += PackCacheBytes(c)
		}
	case *Residual:
		t += PackCacheBytes(v.Body)
		if v.Short != nil {
			t += PackCacheBytes(v.Short)
		}
	case *FusedConvAct:
		for _, c := range v.src {
			t += PackCacheBytes(c)
		}
	case *FusedDenseAct:
		for _, c := range v.src {
			t += PackCacheBytes(c)
		}
	case *FusedNormAct:
		for _, c := range v.src {
			t += PackCacheBytes(c)
		}
	case packOwner:
		t = v.packCacheBytes()
	}
	return t
}
