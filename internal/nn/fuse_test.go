package nn

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/tensor"
)

// checkFusedMatches runs the fused view and the original chain on the same
// input and compares within tol (0 means bit-identical).
func checkFusedMatches(t *testing.T, name string, orig Layer, x *tensor.Tensor, r float64, widthIdx int, tol float64) {
	t.Helper()
	fused := Fuse(orig)
	arena := tensor.NewArena()
	for pass := 0; pass < 2; pass++ { // second pass exercises slab reuse
		want := Infer(orig, &Context{Rate: r, WidthIdx: widthIdx}, x)
		got := Infer(fused, &Context{Rate: r, WidthIdx: widthIdx, Arena: arena}, x)
		if !got.SameShape(want) {
			t.Fatalf("%s r=%v: fused shape %v, unfused %v", name, r, got.Shape, want.Shape)
		}
		for i := range got.Data {
			d := math.Abs(got.Data[i] - want.Data[i])
			if (tol == 0 && got.Data[i] != want.Data[i]) || d > tol {
				t.Fatalf("%s r=%v pass=%d: fused[%d]=%g, unfused=%g (|Δ|=%g, tol %g)",
					name, r, pass, i, got.Data[i], want.Data[i], d, tol)
			}
		}
		arena.Reset()
	}
}

func TestFuseStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	net := NewSequential(
		NewConv2D(3, 8, 3, 3, 1, 1, Fixed(), Sliced(4), true, rng), // + BN + ReLU → FusedConvAct
		NewBatchNorm(8, Sliced(4)),
		NewReLU(),
		NewConv2D(8, 8, 3, 3, 1, 1, Sliced(4), Sliced(4), false, rng), // + ReLU → FusedConvAct
		NewReLU(),
		NewConv2D(8, 8, 3, 3, 1, 1, Sliced(4), Sliced(4), false, rng), // + GN: conv stays, GN+ReLU fuse
		NewGroupNorm(8, 4, Sliced(4), 1e-5),
		NewReLU(),
		NewGlobalAvgPool(),
		NewDense(8, 8, Sliced(4), Sliced(4), true, rng), // + ReLU → FusedDenseAct
		NewReLU(),
		NewDense(8, 4, Sliced(4), Fixed(), true, rng), // bare Dense stays
	)
	fused := Fuse(net).(*Sequential)
	wantTypes := []any{
		&FusedConvAct{}, &FusedConvAct{}, &Conv2D{}, &FusedNormAct{},
		&GlobalAvgPool{}, &FusedDenseAct{}, &Dense{},
	}
	if len(fused.Layers) != len(wantTypes) {
		t.Fatalf("fused to %d layers, want %d", len(fused.Layers), len(wantTypes))
	}
	for i, l := range fused.Layers {
		if typeName(l) != typeName(wantTypes[i]) {
			t.Fatalf("layer %d: fused to %T, want %T", i, l, wantTypes[i])
		}
	}
	// Parameters are shared, not copied: training the original must be
	// visible through the fused view's Params.
	if len(fused.Params()) != len(net.Params()) {
		t.Fatalf("fused view has %d params, original %d", len(fused.Params()), len(net.Params()))
	}
	for i, p := range fused.Params() {
		if p != net.Params()[i] {
			t.Fatalf("param %d not shared", i)
		}
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *FusedConvAct:
		return "FusedConvAct"
	case *FusedDenseAct:
		return "FusedDenseAct"
	case *FusedNormAct:
		return "FusedNormAct"
	case *Conv2D:
		return "Conv2D"
	case *Dense:
		return "Dense"
	case *GlobalAvgPool:
		return "GlobalAvgPool"
	default:
		return "other"
	}
}

// TestFusedConvBNReLU pins the folded BatchNorm epilogue against the unfused
// chain at every rate (tolerance: folding refactors the affine arithmetic).
func TestFusedConvBNReLU(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, bias := range []bool{false, true} {
		net := NewSequential(
			NewConv2D(3, 12, 3, 3, 1, 1, Fixed(), Sliced(4), bias, rng),
			NewBatchNorm(12, Sliced(4)),
			NewReLU(),
		)
		if bias {
			for i, v := range rng.Perm(12) {
				net.Layers[0].(*Conv2D).B.Value.Data[i] = float64(v) / 6
			}
		}
		net.Forward(&Context{Training: true, Rate: 1, RNG: rng}, randTensor(rng, 4, 3, 6, 6))
		for _, r := range inferRates {
			checkFusedMatches(t, "Conv+BN+ReLU", net, randTensor(rng, 3, 3, 6, 6), r, 0, 1e-12)
		}
	}
}

// TestFusedConvSwitchableBN pins the per-width folded statistics: each width
// index must reproduce its own BatchNorm's running estimates.
func TestFusedConvSwitchableBN(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	net := NewSequential(
		NewConv2D(3, 8, 3, 3, 1, 1, Fixed(), Sliced(4), false, rng),
		NewSwitchableBatchNorm(8, Sliced(4), len(inferRates)),
		NewReLU(),
	)
	for i, r := range inferRates {
		net.Forward(&Context{Training: true, Rate: r, WidthIdx: i, RNG: rng}, randTensor(rng, 4, 3, 5, 5))
	}
	for i, r := range inferRates {
		checkFusedMatches(t, "Conv+SBN+ReLU", net, randTensor(rng, 2, 3, 5, 5), r, i, 1e-12)
	}
}

// TestFusedBitIdenticalChains pins the fusions that do not refactor any
// arithmetic — Conv→ReLU, Dense→ReLU, GroupNorm→ReLU — to bit equality.
func TestFusedBitIdenticalChains(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	convReLU := NewSequential(
		NewConv2D(3, 8, 3, 3, 1, 1, Fixed(), Sliced(4), true, rng),
		NewReLU(),
	)
	dense := NewDense(16, 12, Sliced(4), Sliced(4), true, rng)
	dense.Rescale = true
	denseReLU := NewSequential(dense, NewReLU())
	gnReLU := NewSequential(
		NewGroupNorm(16, 4, Sliced(4), 1e-5),
		NewReLU(),
	)
	for i := range gnReLU.Layers[0].(*GroupNorm).Gamma.Value.Data {
		gnReLU.Layers[0].(*GroupNorm).Gamma.Value.Data[i] = 0.5 + rng.Float64()
		gnReLU.Layers[0].(*GroupNorm).Beta.Value.Data[i] = rng.NormFloat64()
	}
	for _, r := range inferRates {
		checkFusedMatches(t, "Conv+ReLU", convReLU, randTensor(rng, 2, 3, 6, 6), r, 0, 0)
		aIn := dense.InSpec.Active(r, dense.In)
		checkFusedMatches(t, "Dense+ReLU", denseReLU, randTensor(rng, 5, aIn), r, 0, 0)
		aC := gnReLU.Layers[0].(*GroupNorm).Spec.Active(r, 16)
		checkFusedMatches(t, "GN+ReLU", gnReLU, randTensor(rng, 2, aC, 3, 3), r, 0, 0)
	}
}

// TestFusedResidualRecursion verifies containers are rebuilt with fused
// children and still match the unfused graph.
func TestFusedResidualRecursion(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	body := NewSequential(
		Conv3x3(8, 8, Sliced(4), Sliced(4), rng),
		NewGroupNorm(8, 4, Sliced(4), 1e-5),
		NewReLU(),
	)
	net := NewSequential(
		NewConv2D(3, 8, 3, 3, 1, 1, Fixed(), Sliced(4), false, rng),
		NewResidual(body, nil),
		NewGlobalAvgPool(),
		NewDense(8, 4, Sliced(4), Fixed(), true, rng),
	)
	fused := Fuse(net).(*Sequential)
	res, ok := fused.Layers[1].(*Residual)
	if !ok {
		t.Fatalf("layer 1 fused to %T, want *Residual", fused.Layers[1])
	}
	if _, ok := res.Body.(*Sequential).Layers[1].(*FusedNormAct); !ok {
		t.Fatal("residual body GN+ReLU not fused")
	}
	for _, r := range inferRates {
		checkFusedMatches(t, "residual", net, randTensor(rng, 2, 3, 6, 6), r, 0, 0)
	}
}

// TestConvWideLoweringMatches forces the whole-batch (wide GEMM + scatter)
// lowering — which only engages by itself on multi-core hosts — and checks
// it against the per-sample lowering bit for bit, including the
// convScratchCap tiling rule with ragged final tiles.
func TestConvWideLoweringMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	conv := NewConv2D(4, 8, 3, 3, 1, 1, Fixed(), Sliced(4), true, rng)
	x := randTensor(rng, 5, 4, 6, 6)
	ctx := Eval(1)
	want := conv.Infer(ctx, x) // per-sample lowering on single-core hosts

	origWide, origCap := convWideGemm, convScratchCap
	defer func() { convWideGemm, convScratchCap = origWide, origCap }()
	convWideGemm = func(m, n, k int) bool { return true }

	spatial := 6 * 6
	colRows := 4 * 9
	for _, cap := range []int{1 << 20, colRows * spatial * 2, colRows * spatial, 1} {
		convScratchCap = cap
		arena := tensor.NewArena()
		for pass := 0; pass < 2; pass++ {
			got := conv.Infer(&Context{Rate: 1, Arena: arena}, x)
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("cap=%d pass=%d: wide lowering differs at %d: %g vs %g",
						cap, pass, i, got.Data[i], want.Data[i])
				}
			}
			arena.Reset()
		}
	}
}

// TestFusedForwardBackwardDelegate verifies the fused view remains a
// well-formed training Layer: Forward matches the original chain and
// Backward accumulates into the shared parameters.
func TestFusedForwardBackwardDelegate(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	net := NewSequential(
		NewConv2D(3, 8, 3, 3, 1, 1, Fixed(), Sliced(4), false, rng),
		NewBatchNorm(8, Sliced(4)),
		NewReLU(),
		NewGlobalAvgPool(),
		NewDense(8, 4, Sliced(4), Fixed(), true, rng),
		NewReLU(),
	)
	fused := Fuse(net).(*Sequential)
	x := randTensor(rng, 2, 3, 5, 5)
	ctx := &Context{Training: true, Rate: 1, RNG: rng}
	want := net.Forward(ctx, x)
	got := fused.Forward(ctx, x)
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("fused Forward differs at %d", i)
		}
	}
	dy := randTensor(rng, 2, 4)
	fused.Backward(ctx, dy)
	nonzero := false
	for _, p := range net.Params() {
		for _, g := range p.Grad.Data {
			if g != 0 {
				nonzero = true
			}
		}
	}
	if !nonzero {
		t.Fatal("fused Backward did not accumulate into the shared parameter gradients")
	}
}

// TestFusedInferAllocsFree pins the fused path's zero-allocation steady
// state (in particular: the stack epilogues must not escape to the heap via
// the GEMM fan-out closures).
func TestFusedInferAllocsFree(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	net := NewSequential(
		NewConv2D(3, 8, 3, 3, 1, 1, Fixed(), Sliced(4), true, rng),
		NewBatchNorm(8, Sliced(4)),
		NewReLU(),
		NewGroupNorm(8, 4, Sliced(4), 1e-5),
		NewReLU(),
		NewGlobalAvgPool(),
		NewDense(8, 4, Sliced(4), Fixed(), true, rng),
		NewReLU(),
	)
	net.Forward(&Context{Training: true, Rate: 1, RNG: rng}, randTensor(rng, 2, 3, 6, 6))
	fused := Fuse(net)
	x := randTensor(rng, 4, 3, 6, 6)
	arena := tensor.NewArena()
	ctx := &Context{Rate: 0.5, Arena: arena}
	pass := func() {
		Infer(fused, ctx, x)
		arena.Reset()
	}
	pass()
	pass()
	if allocs := testing.AllocsPerRun(100, pass); allocs > 0 {
		t.Fatalf("fused arena-backed inference allocates %v times per pass, want 0", allocs)
	}
}
