package nn

import (
	"fmt"
	"math/rand"

	"modelslicing/internal/tensor"
)

// Embedding maps integer token ids to dense vectors. Token ids are carried
// in a float64 tensor (exact for ids < 2⁵³). Following the paper, the
// embedding (input) layer is not sliced (Section 5.1.1); its output feeds the
// first recurrent layer at full width.
type Embedding struct {
	V, E int
	W    *Param // [V, E]

	ids []int
}

// NewEmbedding constructs an embedding table initialized U(-0.1, 0.1), the
// standard range for language models.
func NewEmbedding(vocab, dim int, rng *rand.Rand) *Embedding {
	e := &Embedding{V: vocab, E: dim, W: NewParam("emb.W", false, vocab, dim)}
	tensor.InitUniform(e.W.Value, 0.1, rng)
	return e
}

// Forward maps ids of any shape [...] to vectors of shape [..., E].
func (e *Embedding) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	n := x.Size()
	if cap(e.ids) < n {
		e.ids = make([]int, n)
	}
	e.ids = e.ids[:n]
	outShape := append(append([]int(nil), x.Shape...), e.E)
	y := tensor.New(outShape...)
	for i, v := range x.Data {
		id := int(v)
		if id < 0 || id >= e.V {
			panic(fmt.Sprintf("nn: Embedding id %d out of range [0,%d)", id, e.V))
		}
		e.ids[i] = id
		copy(y.Data[i*e.E:(i+1)*e.E], e.W.Value.Data[id*e.E:(id+1)*e.E])
	}
	return y
}

// Infer gathers embedding rows without caching token ids (read-only path).
func (e *Embedding) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	outShape := append(append([]int(nil), x.Shape...), e.E)
	y := arenaOf(ctx).Get(outShape...)
	for i, v := range x.Data {
		id := int(v)
		if id < 0 || id >= e.V {
			panic(fmt.Sprintf("nn: Embedding id %d out of range [0,%d)", id, e.V))
		}
		copy(y.Data[i*e.E:(i+1)*e.E], e.W.Value.Data[id*e.E:(id+1)*e.E])
	}
	return y
}

// Backward scatter-adds the gradient into the embedding rows of the tokens
// seen in the forward pass. There is no input gradient (ids are discrete),
// so it returns nil.
func (e *Embedding) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	if dy.Size() != len(e.ids)*e.E {
		panic(fmt.Sprintf("nn: Embedding.Backward grad size %d, want %d", dy.Size(), len(e.ids)*e.E))
	}
	for i, id := range e.ids {
		row := e.W.Grad.Data[id*e.E : (id+1)*e.E]
		g := dy.Data[i*e.E : (i+1)*e.E]
		for j, v := range g {
			row[j] += v
		}
	}
	return nil
}

// Params returns the embedding table.
func (e *Embedding) Params() []*Param { return []*Param{e.W} }
