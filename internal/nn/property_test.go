package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"modelslicing/internal/tensor"
)

// Property: for any pair of rates ra < rb, the conv output channels that
// both subnets compute agree on the base input exactly as Equation 9
// prescribes — the base output plus the extra input groups' contribution.
func TestQuickConvEquation9(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewConv2D(8, 8, 3, 3, 1, 1, Sliced(4), Sliced(4), false, rng)
		rates := []float64{0.25, 0.5, 0.75, 1.0}
		i := rng.Intn(3)
		ra := rates[i]
		rb := rates[i+1+rng.Intn(3-i)]
		aInA, aOutA := c.Active(ra)
		aInB, _ := c.Active(rb)

		xb := tensor.New(1, aInB, 5, 5)
		for j := range xb.Data {
			xb.Data[j] = rng.NormFloat64()
		}
		xa := tensor.New(1, aInA, 5, 5)
		copy(xa.Data, xb.Data[:aInA*25])

		ya := c.Forward(Eval(ra), xa).Clone()
		yb := c.Forward(Eval(rb), xb)

		// Residual contribution: convolve only the extra channels with the
		// corresponding kernel columns.
		extra := NewConv2D(aInB-aInA, aOutA, 3, 3, 1, 1, Fixed(), Fixed(), false, rng)
		kk := 9
		for o := 0; o < aOutA; o++ {
			src := c.W.Value.Row(o)
			copy(extra.W.Value.Row(o), src[aInA*kk:aInB*kk])
		}
		xExtra := tensor.New(1, aInB-aInA, 5, 5)
		copy(xExtra.Data, xb.Data[aInA*25:aInB*25])
		res := extra.Forward(Eval(1), xExtra)

		for j := 0; j < aOutA*25; j++ {
			want := ya.Data[j] + res.Data[j]
			if math.Abs(yb.Data[j]-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: GroupNorm forward on the active prefix is invariant to the
// existence of wider (inactive) groups — the statistics of prefix groups do
// not depend on the slice rate.
func TestQuickGroupNormPrefixInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := NewGroupNorm(8, 4, Sliced(4), 1e-5)
		tensor.InitNormal(g.Gamma.Value, 0.3, rng)
		tensor.InitNormal(g.Beta.Value, 0.3, rng)

		xFull := tensor.New(2, 8, 3, 3)
		for i := range xFull.Data {
			xFull.Data[i] = rng.NormFloat64()
		}
		yFull := g.Forward(Eval(1), xFull).Clone()

		// Same sample content restricted to the first half of the channels.
		xHalf := tensor.New(2, 4, 3, 3)
		for b := 0; b < 2; b++ {
			copy(xHalf.Data[b*4*9:(b+1)*4*9], xFull.Data[b*8*9:b*8*9+4*9])
		}
		yHalf := g.Forward(Eval(0.5), xHalf)
		for b := 0; b < 2; b++ {
			for j := 0; j < 4*9; j++ {
				if math.Abs(yHalf.Data[b*4*9+j]-yFull.Data[b*8*9+j]) > 1e-10 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: a forward pass at any rate touches only the prefix weights, so
// a backward pass followed by an SGD-like update at rate r must leave all
// weights outside the active block bit-identical.
func TestQuickSlicedTrainingTouchesOnlyPrefix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		seq := NewSequential(
			NewDense(8, 8, Fixed(), Sliced(4), true, rng),
			NewReLU(),
			NewDense(8, 8, Sliced(4), Sliced(4), true, rng),
		)
		rates := []float64{0.25, 0.5, 0.75}
		r := rates[rng.Intn(len(rates))]
		d1 := seq.Layers[0].(*Dense)
		d2 := seq.Layers[2].(*Dense)
		_, aOut1 := d1.Active(r)
		aIn2, aOut2 := d2.Active(r)

		before1 := d1.W.Value.Clone()
		before2 := d2.W.Value.Clone()

		x := tensor.New(2, 8)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
		}
		ctx := Train(r, rng)
		y := seq.Forward(ctx, x)
		dy := tensor.New(y.Shape...)
		dy.Fill(1)
		seq.Backward(ctx, dy)
		for _, p := range seq.Params() {
			p.Value.AddScaled(-0.1, p.Grad)
		}
		// Inactive rows/columns must be untouched.
		for o := 0; o < 8; o++ {
			for j := 0; j < 8; j++ {
				if o >= aOut1 && d1.W.Value.At(o, j) != before1.At(o, j) {
					return false
				}
				if (o >= aOut2 || j >= aIn2) && d2.W.Value.At(o, j) != before2.At(o, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Failure injection: layers must reject malformed inputs loudly rather than
// silently mis-slicing.
func TestLayerInputValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		fn   func()
	}{
		{"conv rank", func() {
			c := NewConv2D(2, 2, 3, 3, 1, 1, Fixed(), Fixed(), false, rng)
			c.Forward(Eval(1), tensor.New(2, 2))
		}},
		{"lstm width", func() {
			l := NewLSTM(4, 4, Fixed(), Fixed(), false, rng)
			l.Forward(Eval(1), tensor.New(2, 2, 3))
		}},
		{"gru rank", func() {
			g := NewGRU(4, 4, Fixed(), Fixed(), false, rng)
			g.Forward(Eval(1), tensor.New(2, 4))
		}},
		{"groupnorm rank", func() {
			g := NewGroupNorm(4, 2, Fixed(), 1e-5)
			g.Forward(Eval(1), tensor.New(2, 4, 4))
		}},
		{"maxpool rank", func() {
			NewMaxPool2D(2, 2).Forward(Eval(1), tensor.New(2, 4))
		}},
		{"timeflatten rank", func() {
			NewTimeFlatten().Forward(Eval(1), tensor.New(2, 4))
		}},
		{"ce label range", func() {
			SoftmaxCrossEntropy(tensor.New(1, 3), []int{7})
		}},
		{"ce batch mismatch", func() {
			SoftmaxCrossEntropy(tensor.New(2, 3), []int{0})
		}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		}()
	}
}

// Dropout gradients are checked with the `before` hook reseeding the RNG so
// every forward pass draws the identical mask — exercising the hook path of
// CheckGradients.
func TestDropoutGradCheckWithReseed(t *testing.T) {
	rng := rand.New(rand.NewSource(400))
	seq := NewSequential(
		NewDense(6, 8, Fixed(), Sliced(4), true, rng),
		NewDropout(0.4),
		NewReLU(),
		NewDense(8, 3, Sliced(4), Fixed(), true, rng),
	)
	x := randTensor(rng, 2, 6)
	ctx := &Context{Training: true, Rate: 1}
	reseed := func() { ctx.RNG = rand.New(rand.NewSource(41)) }
	if err := CheckGradients(seq, ctx, x, reseed, 0); err != nil {
		t.Fatal(err)
	}
}
