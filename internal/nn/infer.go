package nn

import (
	"modelslicing/internal/tensor"
)

// The inference path splits inference from training. Forward caches backward
// state in layer fields, which makes layers single-goroutine objects even in
// evaluation mode — the live server used to pay for that with one deep-copied
// subnet per (worker, rate). Infer is the read-only counterpart: it touches
// layer weights purely as inputs, writes no layer fields, and draws every
// activation from the Context's arena, so
//
//   - one weight set can serve any number of goroutines concurrently, and
//   - a steady-state inference pass performs zero heap allocations.
//
// Slicing still comes from Context.Rate: because the GEMM kernels take
// leading dimensions, a sliced Infer reads the leading prefix of each weight
// buffer in place — the zero-copy view of the parent network that replaces
// materialized Extract copies on the serving path (Extract remains the
// deployment-export story).

// Inferer is implemented by layers that support the read-only, arena-backed
// inference path. All layers in this package implement it.
type Inferer interface {
	Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor
}

// Infer runs one layer on the inference path. Layers that do not implement
// Inferer fall back to Forward — correct, but they then cache state and must
// not be shared across goroutines; every layer in this package implements
// the real thing.
func Infer(l Layer, ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	if inf, ok := l.(Inferer); ok {
		return inf.Infer(ctx, x)
	}
	return l.Forward(ctx, x)
}

// InferSafe reports whether a layer — including, for the built-in
// containers, every layer it contains — implements the read-only inference
// path, and is therefore safe to share across goroutines via Infer. Callers
// that require concurrency safety (the live server) should reject models for
// which this is false rather than let the Forward fallback race.
func InferSafe(l Layer) bool {
	switch v := l.(type) {
	case *Sequential:
		for _, c := range v.Layers {
			if !InferSafe(c) {
				return false
			}
		}
		return true
	case *Residual:
		return InferSafe(v.Body) && (v.Short == nil || InferSafe(v.Short))
	case Inferer:
		return true
	default:
		return false
	}
}

// arenaOf extracts the context's arena; both a nil context and a nil arena
// degrade to heap allocation, so layer code calls this unconditionally.
func arenaOf(ctx *Context) *tensor.Arena {
	if ctx == nil {
		return nil
	}
	return ctx.Arena
}
