package nn

import (
	"math/rand"
	"testing"

	"modelslicing/internal/tensor"
)

// TestConvInferPackedBitIdenticalToUnpacked pins the layer-level packed-path
// contract: Conv2D.Infer through the persistent weight pack must reproduce
// the unpacked engine bit for bit at every width (the conv orientation always
// runs the blocked engine, where the pack preserves accumulation order).
func TestConvInferPackedBitIdenticalToUnpacked(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	conv := NewConv2D(4, 8, 3, 3, 1, 1, Sliced(4), Sliced(4), true, rng)
	x := tensor.New(3, 4, 9, 9)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for _, r := range []float64{0.25, 0.5, 0.75, 1} {
		aIn, _ := conv.Active(r)
		xr := tensor.New(3, aIn, 9, 9)
		copy(xr.Data, x.Data[:len(xr.Data)])
		packed := conv.Infer(&Context{Rate: r}, xr)
		unpacked := conv.Infer(&Context{Rate: r, NoPack: true}, xr)
		if !packed.SameShape(unpacked) {
			t.Fatalf("rate %v: shape %v vs %v", r, packed.Shape, unpacked.Shape)
		}
		for i := range unpacked.Data {
			if packed.Data[i] != unpacked.Data[i] {
				t.Fatalf("rate %v: packed[%d]=%g, unpacked=%g (not bit-identical)",
					r, i, packed.Data[i], unpacked.Data[i])
			}
		}
	}
	if conv.packCacheBytes() == 0 {
		t.Fatal("conv served packed passes but holds no pack bytes")
	}
}

// TestDenseInferPackedMatchesUnpacked pins the dense orientation: above the
// blocked-engine threshold the packed path is bit-identical to the unpacked
// one; below it the layer skips packing entirely (the strided dot-product
// kernel wins there), so no pack memory may appear.
func TestDenseInferPackedMatchesUnpacked(t *testing.T) {
	rng := rand.New(rand.NewSource(62))

	big := NewDense(128, 96, Sliced(4), Fixed(), true, rng)
	x := tensor.New(48, 128)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	for _, r := range []float64{0.25, 0.5, 1} {
		aIn, _ := big.Active(r)
		xr := tensor.New(48, aIn)
		copy(xr.Data, x.Data[:len(xr.Data)])
		packed := big.Infer(&Context{Rate: r}, xr)
		unpacked := big.Infer(&Context{Rate: r, NoPack: true}, xr)
		for i := range unpacked.Data {
			if packed.Data[i] != unpacked.Data[i] {
				t.Fatalf("rate %v: packed[%d]=%g, unpacked=%g (not bit-identical)",
					r, i, packed.Data[i], unpacked.Data[i])
			}
		}
	}
	if !tensor.GemmTBPrefersPacked(48, 96, 128) {
		t.Fatal("test shape unexpectedly below the blocked threshold")
	}
	if big.packCacheBytes() == 0 {
		t.Fatal("blocked-size dense served packed passes but holds no pack bytes")
	}

	small := NewDense(16, 8, Fixed(), Fixed(), true, rng)
	xs := tensor.New(4, 16)
	for i := range xs.Data {
		xs.Data[i] = rng.NormFloat64()
	}
	small.Infer(&Context{}, xs)
	if small.packCacheBytes() != 0 {
		t.Fatalf("small dense built a pack (%d bytes) below the blocked threshold", small.packCacheBytes())
	}
}

// TestPackCacheAccounting verifies the per-width keying and the exact memory
// accounting: one pack per distinct active width, each costing its prefix
// size, reported through PackCacheBytes and stable across repeat passes.
func TestPackCacheAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	conv := NewConv2D(4, 8, 3, 3, 1, 1, Sliced(4), Sliced(4), false, rng)
	x := func(aIn int) *tensor.Tensor {
		xr := tensor.New(2, aIn, 6, 6)
		for i := range xr.Data {
			xr.Data[i] = rng.NormFloat64()
		}
		return xr
	}
	want := int64(0)
	seen := map[[2]int]bool{}
	for _, r := range []float64{0.25, 0.5, 0.75, 1} {
		aIn, aOut := conv.Active(r)
		conv.Infer(&Context{Rate: r}, x(aIn))
		key := [2]int{aOut, aIn * 9}
		if !seen[key] {
			seen[key] = true
			want += int64(aOut * aIn * 9 * 8)
		}
	}
	if got := PackCacheBytes(conv); got != want {
		t.Fatalf("PackCacheBytes = %d, want %d", got, want)
	}
	// Re-serving the same widths must reuse the packs, not grow the cache.
	for _, r := range []float64{0.25, 1} {
		aIn, _ := conv.Active(r)
		conv.Infer(&Context{Rate: r}, x(aIn))
	}
	if got := PackCacheBytes(conv); got != want {
		t.Fatalf("PackCacheBytes grew on reuse: %d, want %d", got, want)
	}
}

// TestPackInvalidatedByTraining pins the coherence contract: a Forward pass
// (the training path) drops cached packs, so inference after a weight update
// serves the new weights, not a stale pack.
func TestPackInvalidatedByTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	conv := NewConv2D(3, 4, 3, 3, 1, 1, Fixed(), Fixed(), false, rng)
	x := tensor.New(1, 3, 5, 5)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	before := conv.Infer(&Context{}, x).Clone()
	if conv.packCacheBytes() == 0 {
		t.Fatal("no pack built")
	}

	// A training step: Forward (drops packs), then a weight update.
	conv.Forward(&Context{Training: true}, x)
	for i := range conv.W.Value.Data {
		conv.W.Value.Data[i] *= 2
	}
	after := conv.Infer(&Context{}, x)
	same := true
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("inference after a weight update served the stale pack")
	}
	// And the rebuilt pack must match the unpacked engine on the new weights.
	oracle := conv.Infer(&Context{NoPack: true}, x)
	for i := range oracle.Data {
		if after.Data[i] != oracle.Data[i] {
			t.Fatalf("rebuilt pack differs from unpacked engine at %d", i)
		}
	}
}

// TestConvForwardScratchRecycled pins the training-path satellite: the
// im2col scratch of Conv2D.Forward/Backward comes from a pool, so repeated
// steps stop allocating fresh colRows×spatial buffers.
func TestConvForwardScratchRecycled(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	conv := NewConv2D(3, 4, 3, 3, 1, 1, Fixed(), Fixed(), false, rng)
	x := tensor.New(2, 3, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	ctx := &Context{Training: true}
	y := conv.Forward(ctx, x)
	conv.Backward(ctx, y)

	// The pool must now hold a buffer big enough for this layer's scratch —
	// evidence Forward/Backward returned theirs instead of dropping them.
	colRows, spatial := 3*9, 8*8
	buf := im2colGet(1)
	defer im2colPool.Put(buf)
	if cap(*buf) < colRows*spatial {
		t.Fatalf("pooled scratch cap %d, want ≥ %d — Forward/Backward did not recycle", cap(*buf), colRows*spatial)
	}
}
