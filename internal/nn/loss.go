package nn

import (
	"fmt"
	"math"

	"modelslicing/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean negative log-likelihood of integer
// labels under the softmax of the logits, together with the gradient with
// respect to the logits. It is used as the training criterion for both the
// classification and language-modeling experiments.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, dlogits *tensor.Tensor) {
	if logits.Rank() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy logits %v, want rank 2", logits.Shape))
	}
	b, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != b {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy %d labels for batch %d", len(labels), b))
	}
	dlogits = tensor.New(b, k)
	inv := 1 / float64(b)
	for i := 0; i < b; i++ {
		row := logits.Row(i)
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		drow := dlogits.Row(i)
		for j, v := range row {
			e := math.Exp(v - maxv)
			drow[j] = e
			sum += e
		}
		lbl := labels[i]
		if lbl < 0 || lbl >= k {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", lbl, k))
		}
		logZ := math.Log(sum) + maxv
		loss += logZ - row[lbl]
		for j := range drow {
			drow[j] = drow[j] / sum * inv
		}
		drow[lbl] -= inv
	}
	return loss * inv, dlogits
}

// Softmax returns the row-wise softmax of logits (used at inference time for
// calibrated scores, e.g. cascade-ranking thresholds).
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	b, k := logits.Dim(0), logits.Dim(1)
	out := tensor.New(b, k)
	for i := 0; i < b; i++ {
		row := logits.Row(i)
		orow := out.Row(i)
		maxv := math.Inf(-1)
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxv)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	return out
}

// MSE computes the mean squared error ½‖pred−target‖²/B and its gradient.
func MSE(pred, target *tensor.Tensor) (loss float64, dpred *tensor.Tensor) {
	if len(pred.Data) != len(target.Data) {
		panic("nn: MSE size mismatch")
	}
	b := pred.Dim(0)
	dpred = tensor.New(pred.Shape...)
	inv := 1 / float64(b)
	for i := range pred.Data {
		d := pred.Data[i] - target.Data[i]
		loss += 0.5 * d * d
		dpred.Data[i] = d * inv
	}
	return loss * inv, dpred
}
