package nn

import (
	"fmt"
	"math"

	"modelslicing/internal/tensor"
)

// GroupNorm normalizes channels within contiguous groups (Wu & He, 2018),
// the paper's replacement for batch normalization under model slicing
// (Section 3.2): because statistics are computed per sample within each
// group, the output scale is independent of how many input channels are
// active, and the normalization layer can be sliced at group granularity
// together with the convolution it follows.
//
// Inputs may be rank 4 ([B, C, H, W]) or rank 2 ([B, C], treated as H=W=1).
type GroupNorm struct {
	C int
	// NormGroups is the number of normalization groups G in Equation 6.
	NormGroups int
	// Spec controls channel slicing. The per-group channel count C/NormGroups
	// must divide every reachable active width, which holds whenever
	// Spec.Groups is a multiple of... see NewGroupNorm.
	Spec SliceSpec
	Eps  float64

	Gamma *Param // [C] scale (the γ visualized in Figure 6)
	Beta  *Param // [C] shift

	// cached forward state
	xhat      *tensor.Tensor
	invStd    []float64 // per (sample, active group)
	aC        int
	batch     int
	hw        int
	rank4     bool
	origShape []int
}

// NewGroupNorm constructs a group-norm layer. normGroups must divide c, and
// for sliceability the slice-group size (c/spec.Groups) must be a multiple of
// the normalization group size (c/normGroups), i.e. normGroups must be a
// multiple of spec.Groups or equal to it. The common configuration — used
// throughout the experiments — is normGroups == spec.Groups.
func NewGroupNorm(c, normGroups int, spec SliceSpec, eps float64) *GroupNorm {
	if c%normGroups != 0 {
		panic(fmt.Sprintf("nn: GroupNorm: %d channels not divisible by %d groups", c, normGroups))
	}
	spec.Validate("GroupNorm", c)
	if spec.Slice && normGroups%spec.Groups != 0 && spec.Groups%normGroups != 0 {
		panic(fmt.Sprintf("nn: GroupNorm: norm groups %d incompatible with %d slice groups", normGroups, spec.Groups))
	}
	g := &GroupNorm{
		C: c, NormGroups: normGroups, Spec: spec, Eps: eps,
		Gamma: NewParam("gn.gamma", false, c),
		Beta:  NewParam("gn.beta", false, c),
	}
	g.Gamma.Value.Fill(1)
	return g
}

func (g *GroupNorm) shapeIn(x *tensor.Tensor, want int) (batch, hw int) {
	switch x.Rank() {
	case 4:
		if x.Dim(1) != want {
			panic(fmt.Sprintf("nn: GroupNorm input %v, want %d channels", x.Shape, want))
		}
		g.rank4 = true
		return x.Dim(0), x.Dim(2) * x.Dim(3)
	case 2:
		if x.Dim(1) != want {
			panic(fmt.Sprintf("nn: GroupNorm input %v, want %d features", x.Shape, want))
		}
		g.rank4 = false
		return x.Dim(0), 1
	default:
		panic(fmt.Sprintf("nn: GroupNorm input rank %d unsupported", x.Rank()))
	}
}

// Forward normalizes the active channels group-wise per sample.
func (g *GroupNorm) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	r := ctx.EffRate()
	g.aC = g.Spec.Active(r, g.C)
	g.batch, g.hw = g.shapeIn(x, g.aC)
	g.origShape = append([]int(nil), x.Shape...)
	gs := g.C / g.NormGroups // channels per normalization group
	if g.aC%gs != 0 {
		panic(fmt.Sprintf("nn: GroupNorm: active width %d not divisible by group size %d", g.aC, gs))
	}
	ag := g.aC / gs // active normalization groups
	n := gs * g.hw  // elements per (sample, group)

	y := tensor.New(x.Shape...)
	g.xhat = tensor.New(x.Shape...)
	g.invStd = make([]float64, g.batch*ag)

	plane := g.aC * g.hw
	gamma, beta := g.Gamma.Value.Data, g.Beta.Value.Data
	for b := 0; b < g.batch; b++ {
		src := x.Data[b*plane : (b+1)*plane]
		dst := y.Data[b*plane : (b+1)*plane]
		xh := g.xhat.Data[b*plane : (b+1)*plane]
		for gi := 0; gi < ag; gi++ {
			seg := src[gi*n : (gi+1)*n]
			mu := 0.0
			for _, v := range seg {
				mu += v
			}
			mu /= float64(n)
			va := 0.0
			for _, v := range seg {
				d := v - mu
				va += d * d
			}
			va /= float64(n)
			is := 1 / math.Sqrt(va+g.Eps)
			g.invStd[b*ag+gi] = is
			for j, v := range seg {
				ch := gi*gs + j/g.hw
				h := (v - mu) * is
				xh[gi*n+j] = h
				dst[gi*n+j] = gamma[ch]*h + beta[ch]
			}
		}
	}
	return y
}

// Infer normalizes the active channels group-wise per sample on the
// read-only inference path (no x̂ cache, arena-backed output).
func (g *GroupNorm) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	return g.inferAct(ctx, x, false)
}

// inferAct is Infer with an optionally fused trailing ReLU: the clamp rides
// the normalization's write pass, which removes the separate ReLU layer's
// full read+write sweep over the activation. GroupNorm statistics are
// per-sample and data-dependent, so unlike BatchNorm the normalization
// itself can never fold into the preceding convolution's GEMM epilogue —
// this pass fusion is the best available.
func (g *GroupNorm) inferAct(ctx *Context, x *tensor.Tensor, relu bool) *tensor.Tensor {
	r := ctx.EffRate()
	aC := g.Spec.Active(r, g.C)
	batch, hw := normShape("GroupNorm", x, aC)
	gs := g.C / g.NormGroups
	if aC%gs != 0 {
		panic(fmt.Sprintf("nn: GroupNorm: active width %d not divisible by group size %d", aC, gs))
	}
	ag := aC / gs
	n := gs * hw

	y := arenaOf(ctx).GetUninit(x.Shape...)
	plane := aC * hw
	gamma, beta := g.Gamma.Value.Data, g.Beta.Value.Data
	for b := 0; b < batch; b++ {
		src := x.Data[b*plane : (b+1)*plane]
		dst := y.Data[b*plane : (b+1)*plane]
		for gi := 0; gi < ag; gi++ {
			seg := src[gi*n : (gi+1)*n]
			mu := 0.0
			for _, v := range seg {
				mu += v
			}
			mu /= float64(n)
			va := 0.0
			for _, v := range seg {
				d := v - mu
				va += d * d
			}
			va /= float64(n)
			is := 1 / math.Sqrt(va+g.Eps)
			if relu {
				for j, v := range seg {
					ch := gi*gs + j/hw
					o := gamma[ch]*((v-mu)*is) + beta[ch]
					// !(o > 0): NaN clamps to 0, like the ReLU layer.
					if !(o > 0) {
						o = 0
					}
					dst[gi*n+j] = o
				}
			} else {
				for j, v := range seg {
					ch := gi*gs + j/hw
					h := (v - mu) * is
					dst[gi*n+j] = gamma[ch]*h + beta[ch]
				}
			}
		}
	}
	return y
}

// normShape validates a normalization input of rank 4 ([B, C, H, W]) or
// rank 2 ([B, C]) without mutating layer state, returning batch and the
// spatial extent per channel.
func normShape(name string, x *tensor.Tensor, want int) (batch, hw int) {
	switch x.Rank() {
	case 4:
		if x.Dim(1) != want {
			panic(fmt.Sprintf("nn: %s input %v, want %d channels", name, x.Shape, want))
		}
		return x.Dim(0), x.Dim(2) * x.Dim(3)
	case 2:
		if x.Dim(1) != want {
			panic(fmt.Sprintf("nn: %s input %v, want %d features", name, x.Shape, want))
		}
		return x.Dim(0), 1
	default:
		panic(fmt.Sprintf("nn: %s input rank %d unsupported", name, x.Rank()))
	}
}

// Backward accumulates dGamma, dBeta and returns dx.
func (g *GroupNorm) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	gs := g.C / g.NormGroups
	ag := g.aC / gs
	n := gs * g.hw
	plane := g.aC * g.hw
	dx := tensor.New(g.origShape...)
	gamma := g.Gamma.Value.Data
	dgamma, dbeta := g.Gamma.Grad.Data, g.Beta.Grad.Data

	for b := 0; b < g.batch; b++ {
		gseg := dy.Data[b*plane : (b+1)*plane]
		xh := g.xhat.Data[b*plane : (b+1)*plane]
		dseg := dx.Data[b*plane : (b+1)*plane]
		for gi := 0; gi < ag; gi++ {
			is := g.invStd[b*ag+gi]
			// First pass: parameter grads and the two reduction terms.
			sumDxhat, sumDxhatXhat := 0.0, 0.0
			for j := 0; j < n; j++ {
				ch := gi*gs + j/g.hw
				gv := gseg[gi*n+j]
				hv := xh[gi*n+j]
				dgamma[ch] += gv * hv
				dbeta[ch] += gv
				dxh := gv * gamma[ch]
				sumDxhat += dxh
				sumDxhatXhat += dxh * hv
			}
			mDxhat := sumDxhat / float64(n)
			mDxhatXhat := sumDxhatXhat / float64(n)
			for j := 0; j < n; j++ {
				ch := gi*gs + j/g.hw
				dxh := gseg[gi*n+j] * gamma[ch]
				dseg[gi*n+j] = is * (dxh - mDxhat - xh[gi*n+j]*mDxhatXhat)
			}
		}
	}
	return dx
}

// Params returns γ and β.
func (g *GroupNorm) Params() []*Param { return []*Param{g.Gamma, g.Beta} }

// GammaGroupMeans returns the mean |γ| per slice group over the full width —
// the quantity visualized in Figure 6 of the paper.
func (g *GroupNorm) GammaGroupMeans() []float64 {
	groups := g.Spec.Groups
	gs := g.C / groups
	out := make([]float64, groups)
	for gi := 0; gi < groups; gi++ {
		s := 0.0
		for j := 0; j < gs; j++ {
			s += math.Abs(g.Gamma.Value.Data[gi*gs+j])
		}
		out[gi] = s / float64(gs)
	}
	return out
}

// BatchNorm is standard batch normalization with running statistics. Under
// model slicing the running estimates destabilize as the active width varies
// (Section 3.2) — it is provided for the conventionally-trained baselines and
// as the building block of SwitchableBatchNorm (SlimmableNet).
//
// Inputs may be rank 4 ([B, C, H, W]) or rank 2 ([B, C]).
type BatchNorm struct {
	C        int
	Spec     SliceSpec
	Eps      float64
	Momentum float64 // running = (1-m)*running + m*batch

	Gamma, Beta *Param
	RunMean     *tensor.Tensor
	RunVar      *tensor.Tensor

	// cached forward state
	xhat      *tensor.Tensor
	invStd    []float64
	aC        int
	batch, hw int
	origShape []int
	training  bool
}

// NewBatchNorm constructs a batch-norm layer with PyTorch-style defaults.
func NewBatchNorm(c int, spec SliceSpec) *BatchNorm {
	spec.Validate("BatchNorm", c)
	b := &BatchNorm{
		C: c, Spec: spec, Eps: 1e-5, Momentum: 0.1,
		Gamma:   NewParam("bn.gamma", false, c),
		Beta:    NewParam("bn.beta", false, c),
		RunMean: tensor.New(c),
		RunVar:  tensor.New(c),
	}
	b.Gamma.Value.Fill(1)
	b.RunVar.Fill(1)
	return b
}

func (b *BatchNorm) shapeIn(x *tensor.Tensor, want int) (batch, hw int) {
	switch x.Rank() {
	case 4:
		if x.Dim(1) != want {
			panic(fmt.Sprintf("nn: BatchNorm input %v, want %d channels", x.Shape, want))
		}
		return x.Dim(0), x.Dim(2) * x.Dim(3)
	case 2:
		if x.Dim(1) != want {
			panic(fmt.Sprintf("nn: BatchNorm input %v, want %d features", x.Shape, want))
		}
		return x.Dim(0), 1
	default:
		panic(fmt.Sprintf("nn: BatchNorm input rank %d unsupported", x.Rank()))
	}
}

// Forward normalizes per channel, with batch statistics during training and
// running estimates during evaluation.
func (b *BatchNorm) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	r := ctx.EffRate()
	b.aC = b.Spec.Active(r, b.C)
	b.batch, b.hw = b.shapeIn(x, b.aC)
	b.origShape = append([]int(nil), x.Shape...)
	b.training = ctx != nil && ctx.Training
	plane := b.aC * b.hw
	n := b.batch * b.hw

	y := tensor.New(x.Shape...)
	gamma, beta := b.Gamma.Value.Data, b.Beta.Value.Data
	if b.training {
		b.xhat = tensor.New(x.Shape...)
		b.invStd = make([]float64, b.aC)
		for c := 0; c < b.aC; c++ {
			mu, va := 0.0, 0.0
			for s := 0; s < b.batch; s++ {
				seg := x.Data[s*plane+c*b.hw : s*plane+(c+1)*b.hw]
				for _, v := range seg {
					mu += v
				}
			}
			mu /= float64(n)
			for s := 0; s < b.batch; s++ {
				seg := x.Data[s*plane+c*b.hw : s*plane+(c+1)*b.hw]
				for _, v := range seg {
					d := v - mu
					va += d * d
				}
			}
			va /= float64(n)
			is := 1 / math.Sqrt(va+b.Eps)
			b.invStd[c] = is
			// Unbiased variance for the running estimate, as in PyTorch.
			unbiased := va
			if n > 1 {
				unbiased = va * float64(n) / float64(n-1)
			}
			b.RunMean.Data[c] = (1-b.Momentum)*b.RunMean.Data[c] + b.Momentum*mu
			b.RunVar.Data[c] = (1-b.Momentum)*b.RunVar.Data[c] + b.Momentum*unbiased
			for s := 0; s < b.batch; s++ {
				off := s*plane + c*b.hw
				for j := 0; j < b.hw; j++ {
					h := (x.Data[off+j] - mu) * is
					b.xhat.Data[off+j] = h
					y.Data[off+j] = gamma[c]*h + beta[c]
				}
			}
		}
		return y
	}
	for c := 0; c < b.aC; c++ {
		is := 1 / math.Sqrt(b.RunVar.Data[c]+b.Eps)
		mu := b.RunMean.Data[c]
		for s := 0; s < b.batch; s++ {
			off := s*plane + c*b.hw
			for j := 0; j < b.hw; j++ {
				y.Data[off+j] = gamma[c]*(x.Data[off+j]-mu)*is + beta[c]
			}
		}
	}
	return y
}

// Infer normalizes with the running estimates on the read-only inference
// path (evaluation semantics; no layer state is touched).
func (b *BatchNorm) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	return b.inferAct(ctx, x, false)
}

// inferAct is Infer with an optionally fused trailing ReLU (one write pass
// instead of a separate ReLU read+write sweep).
func (b *BatchNorm) inferAct(ctx *Context, x *tensor.Tensor, relu bool) *tensor.Tensor {
	r := ctx.EffRate()
	aC := b.Spec.Active(r, b.C)
	batch, hw := normShape("BatchNorm", x, aC)
	plane := aC * hw
	y := arenaOf(ctx).GetUninit(x.Shape...)
	gamma, beta := b.Gamma.Value.Data, b.Beta.Value.Data
	for c := 0; c < aC; c++ {
		is := 1 / math.Sqrt(b.RunVar.Data[c]+b.Eps)
		mu := b.RunMean.Data[c]
		for s := 0; s < batch; s++ {
			off := s*plane + c*hw
			if relu {
				for j := 0; j < hw; j++ {
					o := gamma[c]*(x.Data[off+j]-mu)*is + beta[c]
					// !(o > 0): NaN clamps to 0, like the ReLU layer.
					if !(o > 0) {
						o = 0
					}
					y.Data[off+j] = o
				}
			} else {
				for j := 0; j < hw; j++ {
					y.Data[off+j] = gamma[c]*(x.Data[off+j]-mu)*is + beta[c]
				}
			}
		}
	}
	return y
}

// FoldedAffine returns the per-channel affine form of the evaluation-mode
// BatchNorm: y = scale[c]·x + shift[c] with scale[c] = γ[c]/√(σ²[c]+ε) and
// shift[c] = β[c] − scale[c]·μ[c]. This is what the inference-time fusion
// pass bakes into the preceding convolution's GEMM epilogue; it reads the
// running statistics at call time, so it must be recomputed if the layer is
// trained afterwards. Agreement with the unfused path is within rounding
// (≤1e-12 relative), not bit-exact, because the factored arithmetic rounds
// differently.
func (b *BatchNorm) FoldedAffine() (scale, shift []float64) {
	scale = make([]float64, b.C)
	shift = make([]float64, b.C)
	for c := 0; c < b.C; c++ {
		is := 1 / math.Sqrt(b.RunVar.Data[c]+b.Eps)
		s := b.Gamma.Value.Data[c] * is
		scale[c] = s
		shift[c] = b.Beta.Value.Data[c] - s*b.RunMean.Data[c]
	}
	return scale, shift
}

// Backward accumulates dGamma, dBeta and returns dx (training mode only).
func (b *BatchNorm) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	if !b.training {
		panic("nn: BatchNorm.Backward called after evaluation-mode Forward")
	}
	plane := b.aC * b.hw
	n := float64(b.batch * b.hw)
	dx := tensor.New(b.origShape...)
	gamma := b.Gamma.Value.Data
	dgamma, dbeta := b.Gamma.Grad.Data, b.Beta.Grad.Data
	for c := 0; c < b.aC; c++ {
		is := b.invStd[c]
		sumDxhat, sumDxhatXhat := 0.0, 0.0
		for s := 0; s < b.batch; s++ {
			off := s*plane + c*b.hw
			for j := 0; j < b.hw; j++ {
				gv := dy.Data[off+j]
				hv := b.xhat.Data[off+j]
				dgamma[c] += gv * hv
				dbeta[c] += gv
				dxh := gv * gamma[c]
				sumDxhat += dxh
				sumDxhatXhat += dxh * hv
			}
		}
		mDxhat := sumDxhat / n
		mDxhatXhat := sumDxhatXhat / n
		for s := 0; s < b.batch; s++ {
			off := s*plane + c*b.hw
			for j := 0; j < b.hw; j++ {
				dxh := dy.Data[off+j] * gamma[c]
				dx.Data[off+j] = is * (dxh - mDxhat - b.xhat.Data[off+j]*mDxhatXhat)
			}
		}
	}
	return dx
}

// Params returns γ and β.
func (b *BatchNorm) Params() []*Param { return []*Param{b.Gamma, b.Beta} }

// SwitchableBatchNorm keeps an independent BatchNorm per scheduled width —
// the SlimmableNet (Yu et al., 2018) solution to output-scale instability
// that the paper compares against in Table 1. Context.WidthIdx selects which
// set of statistics and affine parameters is used for the current pass.
type SwitchableBatchNorm struct {
	BNs []*BatchNorm
	cur int
}

// NewSwitchableBatchNorm builds one BatchNorm per width in the rate list.
func NewSwitchableBatchNorm(c int, spec SliceSpec, widths int) *SwitchableBatchNorm {
	s := &SwitchableBatchNorm{}
	for i := 0; i < widths; i++ {
		s.BNs = append(s.BNs, NewBatchNorm(c, spec))
	}
	return s
}

// Forward dispatches to the BatchNorm selected by ctx.WidthIdx.
func (s *SwitchableBatchNorm) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	idx := 0
	if ctx != nil {
		idx = ctx.WidthIdx
	}
	if idx < 0 || idx >= len(s.BNs) {
		panic(fmt.Sprintf("nn: SwitchableBatchNorm width index %d out of range [0,%d)", idx, len(s.BNs)))
	}
	s.cur = idx
	return s.BNs[idx].Forward(ctx, x)
}

// Backward dispatches to the BatchNorm used in the preceding Forward.
func (s *SwitchableBatchNorm) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	return s.BNs[s.cur].Backward(ctx, dy)
}

// Infer dispatches to the BatchNorm selected by ctx.WidthIdx without
// recording the selection (read-only inference path).
func (s *SwitchableBatchNorm) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	idx := 0
	if ctx != nil {
		idx = ctx.WidthIdx
	}
	if idx < 0 || idx >= len(s.BNs) {
		panic(fmt.Sprintf("nn: SwitchableBatchNorm width index %d out of range [0,%d)", idx, len(s.BNs)))
	}
	return s.BNs[idx].Infer(ctx, x)
}

// Params returns the parameters of every per-width BatchNorm.
func (s *SwitchableBatchNorm) Params() []*Param {
	var ps []*Param
	for _, b := range s.BNs {
		ps = append(ps, b.Params()...)
	}
	return ps
}
