package nn

import (
	"fmt"
	"math"
	"math/rand"

	"modelslicing/internal/tensor"
)

// CheckGradients verifies a layer's analytic gradients against central-
// difference numerical gradients, for both parameters and the layer input.
//
// The scalar objective is a fixed random linear functional of the output,
// loss = Σᵢ wᵢ·yᵢ, which exercises every output position. before, when
// non-nil, runs before every forward pass (used to reseed RNG-dependent
// layers such as Dropout so repeated forwards are deterministic).
// maxPerTensor bounds the number of elements probed per tensor (spread
// evenly); pass 0 to probe every element.
//
// It returns nil if all probed gradients match within a relative tolerance
// of 1e-5, and a descriptive error on the first mismatch otherwise.
func CheckGradients(layer Layer, ctx *Context, x *tensor.Tensor, before func(), maxPerTensor int) error {
	const (
		eps = 1e-6
		tol = 1e-5
	)
	run := func() *tensor.Tensor {
		if before != nil {
			before()
		}
		return layer.Forward(ctx, x)
	}
	y0 := run()
	w := tensor.New(y0.Shape...)
	wrng := rand.New(rand.NewSource(7))
	for i := range w.Data {
		w.Data[i] = wrng.NormFloat64()
	}
	lossOf := func(y *tensor.Tensor) float64 {
		s := 0.0
		for i, v := range y.Data {
			s += v * w.Data[i]
		}
		return s
	}

	// Analytic gradients.
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	dx := layer.Backward(ctx, w)

	l0 := lossOf(run())
	probe := func(name string, value []float64, grad []float64) error {
		n := len(value)
		step := 1
		if maxPerTensor > 0 && n > maxPerTensor {
			step = n / maxPerTensor
		}
		for i := 0; i < n; i += step {
			orig := value[i]
			h := eps * (1 + math.Abs(orig))
			value[i] = orig + h
			lp := lossOf(run())
			value[i] = orig - h
			lm := lossOf(run())
			value[i] = orig
			num := (lp - lm) / (2 * h)
			ana := grad[i]
			if diff := math.Abs(num - ana); diff > tol*(1+math.Abs(num)+math.Abs(ana)) {
				// Distinguish a real gradient bug from a kink crossing
				// (ReLU/max-pool argmax flip within ±h): at a kink the two
				// one-sided derivatives disagree with each other, so the
				// central difference is meaningless for this coordinate.
				fwd := (lp - l0) / h
				bwd := (l0 - lm) / h
				if math.Abs(fwd-bwd) > 10*tol*(1+math.Abs(fwd)+math.Abs(bwd)) {
					continue
				}
				return fmt.Errorf("gradient mismatch in %s[%d]: analytic %.8g vs numeric %.8g (|Δ|=%.3g)",
					name, i, ana, num, diff)
			}
		}
		return nil
	}

	for _, p := range layer.Params() {
		if err := probe(p.Name, p.Value.Data, p.Grad.Data); err != nil {
			return err
		}
	}
	if dx != nil {
		if !dx.SameShape(x) {
			return fmt.Errorf("input gradient shape %v does not match input %v", dx.Shape, x.Shape)
		}
		if err := probe("input", x.Data, dx.Data); err != nil {
			return err
		}
	}
	// Re-run the original forward so cached state matches x again.
	run()
	return nil
}
