package nn

import (
	"fmt"
	"math"
	"math/rand"

	"modelslicing/internal/tensor"
)

// RNN is a vanilla (Elman) recurrent layer h_t = tanh(Wx·x_t + Wh·h_{t-1} + b)
// over sequences shaped [T, B, In] (Equation 7 of the paper). Both the input
// and the hidden dimension support prefix slicing.
type RNN struct {
	In, Hidden      int
	InSpec, HidSpec SliceSpec
	Rescale         bool

	Wx *Param // [H, In]
	Wh *Param // [H, H]
	B  *Param // [H]

	seqT, batch    int
	aIn, aH        int
	xs             *tensor.Tensor
	hs             []*tensor.Tensor // length T+1; hs[0] is the zero state
	scaleX, scaleH float64
}

// NewRNN constructs a vanilla recurrent layer with uniform 1/sqrt(H) init.
func NewRNN(in, hidden int, inSpec, hidSpec SliceSpec, rescale bool, rng *rand.Rand) *RNN {
	inSpec.Validate("RNN.In", in)
	hidSpec.Validate("RNN.Hidden", hidden)
	r := &RNN{
		In: in, Hidden: hidden,
		InSpec: inSpec, HidSpec: hidSpec, Rescale: rescale,
		Wx: NewParam("rnn.Wx", true, hidden, in),
		Wh: NewParam("rnn.Wh", true, hidden, hidden),
		B:  NewParam("rnn.B", false, hidden),
	}
	bound := 1 / math.Sqrt(float64(hidden))
	tensor.InitUniform(r.Wx.Value, bound, rng)
	tensor.InitUniform(r.Wh.Value, bound, rng)
	return r
}

// Active returns the active (input, hidden) widths at slice rate r.
func (r *RNN) Active(rate float64) (aIn, aH int) {
	return r.InSpec.Active(rate, r.In), r.HidSpec.Active(rate, r.Hidden)
}

// Forward runs the sequence and returns hidden states [T, B, aH].
func (r *RNN) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	rate := ctx.EffRate()
	r.aIn, r.aH = r.Active(rate)
	if x.Rank() != 3 || x.Dim(2) != r.aIn {
		panic(fmt.Sprintf("nn: RNN.Forward input %v, want [T B %d] at rate %v", x.Shape, r.aIn, rate))
	}
	r.seqT, r.batch = x.Dim(0), x.Dim(1)
	r.xs = x
	r.scaleX, r.scaleH = 1, 1
	if r.Rescale {
		if r.aIn < r.In {
			r.scaleX = float64(r.In) / float64(r.aIn)
		}
		if r.aH < r.Hidden {
			r.scaleH = float64(r.Hidden) / float64(r.aH)
		}
	}
	r.hs = make([]*tensor.Tensor, r.seqT+1)
	r.hs[0] = tensor.New(r.batch, r.aH)
	out := tensor.New(r.seqT, r.batch, r.aH)
	frame := r.batch * r.aIn
	for t := 0; t < r.seqT; t++ {
		xt := x.Data[t*frame : (t+1)*frame]
		z := tensor.New(r.batch, r.aH)
		if r.scaleX == 1 && r.scaleH == 1 {
			tensor.GemmTB(r.batch, r.aH, r.aIn, xt, r.aIn, r.Wx.Value.Data, r.In, z.Data, r.aH)
			tensor.GemmTB(r.batch, r.aH, r.aH, r.hs[t].Data, r.aH, r.Wh.Value.Data, r.Hidden, z.Data, r.aH)
		} else {
			zx := tensor.New(r.batch, r.aH)
			zh := tensor.New(r.batch, r.aH)
			tensor.GemmTB(r.batch, r.aH, r.aIn, xt, r.aIn, r.Wx.Value.Data, r.In, zx.Data, r.aH)
			tensor.GemmTB(r.batch, r.aH, r.aH, r.hs[t].Data, r.aH, r.Wh.Value.Data, r.Hidden, zh.Data, r.aH)
			z.AddScaled(r.scaleX, zx)
			z.AddScaled(r.scaleH, zh)
		}
		h := tensor.New(r.batch, r.aH)
		for s := 0; s < r.batch; s++ {
			zr, hr := z.Row(s), h.Row(s)
			for j := 0; j < r.aH; j++ {
				hr[j] = math.Tanh(zr[j] + r.B.Value.Data[j])
			}
		}
		r.hs[t+1] = h
		copy(out.Data[t*r.batch*r.aH:(t+1)*r.batch*r.aH], h.Data)
	}
	return out
}

// Infer runs the sequence on the read-only inference path: hidden states are
// written straight into the output tensor (the previous frame doubles as
// h_{t-1}), the pre-activation buffer is reused across steps, and no
// backward state is kept.
func (r *RNN) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	rate := ctx.EffRate()
	aIn, aH := r.Active(rate)
	if x.Rank() != 3 || x.Dim(2) != aIn {
		panic(fmt.Sprintf("nn: RNN.Infer input %v, want [T B %d] at rate %v", x.Shape, aIn, rate))
	}
	seqT, batch := x.Dim(0), x.Dim(1)
	scaleX, scaleH := 1.0, 1.0
	if r.Rescale {
		if aIn < r.In {
			scaleX = float64(r.In) / float64(aIn)
		}
		if aH < r.Hidden {
			scaleH = float64(r.Hidden) / float64(aH)
		}
	}
	arena := arenaOf(ctx)
	out := arena.Get(seqT, batch, aH)
	h0 := arena.Get(batch, aH) // zero initial state
	z := arena.Get(batch, aH)
	zx := z
	var zh *tensor.Tensor
	if scaleX != 1 || scaleH != 1 {
		zx = arena.Get(batch, aH)
		zh = arena.Get(batch, aH)
	}
	frame := batch * aIn
	outFrame := batch * aH
	hPrev := h0.Data
	b := r.B.Value.Data
	for t := 0; t < seqT; t++ {
		xt := x.Data[t*frame : (t+1)*frame]
		if zh == nil {
			clear(z.Data)
			tensor.GemmTB(batch, aH, aIn, xt, aIn, r.Wx.Value.Data, r.In, z.Data, aH)
			tensor.GemmTB(batch, aH, aH, hPrev, aH, r.Wh.Value.Data, r.Hidden, z.Data, aH)
		} else {
			clear(zx.Data)
			clear(zh.Data)
			tensor.GemmTB(batch, aH, aIn, xt, aIn, r.Wx.Value.Data, r.In, zx.Data, aH)
			tensor.GemmTB(batch, aH, aH, hPrev, aH, r.Wh.Value.Data, r.Hidden, zh.Data, aH)
			for i := range z.Data {
				z.Data[i] = scaleX*zx.Data[i] + scaleH*zh.Data[i]
			}
		}
		hCur := out.Data[t*outFrame : (t+1)*outFrame]
		for s := 0; s < batch; s++ {
			zr := z.Data[s*aH : (s+1)*aH]
			hr := hCur[s*aH : (s+1)*aH]
			for j := 0; j < aH; j++ {
				hr[j] = math.Tanh(zr[j] + b[j])
			}
		}
		hPrev = hCur
	}
	return out
}

// Backward propagates through time and returns dx [T, B, aIn].
func (r *RNN) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	if dy.Rank() != 3 || dy.Dim(0) != r.seqT || dy.Dim(1) != r.batch || dy.Dim(2) != r.aH {
		panic(fmt.Sprintf("nn: RNN.Backward grad %v, want [%d %d %d]", dy.Shape, r.seqT, r.batch, r.aH))
	}
	dx := tensor.New(r.seqT, r.batch, r.aIn)
	dhNext := tensor.New(r.batch, r.aH)
	frame := r.batch * r.aIn
	outFrame := r.batch * r.aH
	db := r.B.Grad.Data
	for t := r.seqT - 1; t >= 0; t-- {
		h := r.hs[t+1]
		dz := tensor.New(r.batch, r.aH)
		for s := 0; s < r.batch; s++ {
			hr := h.Row(s)
			dzr := dz.Row(s)
			dhn := dhNext.Row(s)
			gRow := dy.Data[t*outFrame+s*r.aH : t*outFrame+(s+1)*r.aH]
			for j := 0; j < r.aH; j++ {
				dh := gRow[j] + dhn[j]
				dzr[j] = dh * (1 - hr[j]*hr[j])
				db[j] += dzr[j]
			}
		}
		dzx, dzh := dz, dz
		if r.scaleX != 1 {
			dzx = dz.Clone()
			dzx.Scale(r.scaleX)
		}
		if r.scaleH != 1 {
			dzh = dz.Clone()
			dzh.Scale(r.scaleH)
		}
		xt := r.xs.Data[t*frame : (t+1)*frame]
		tensor.GemmTA(r.aH, r.aIn, r.batch, dzx.Data, r.aH, xt, r.aIn, r.Wx.Grad.Data, r.In)
		tensor.GemmTA(r.aH, r.aH, r.batch, dzh.Data, r.aH, r.hs[t].Data, r.aH, r.Wh.Grad.Data, r.Hidden)
		tensor.Gemm(r.batch, r.aIn, r.aH, dzx.Data, r.aH, r.Wx.Value.Data, r.In, dx.Data[t*frame:(t+1)*frame], r.aIn)
		dhNext.Zero()
		tensor.Gemm(r.batch, r.aH, r.aH, dzh.Data, r.aH, r.Wh.Value.Data, r.Hidden, dhNext.Data, r.aH)
	}
	return dx
}

// Params returns Wx, Wh and the bias.
func (r *RNN) Params() []*Param { return []*Param{r.Wx, r.Wh, r.B} }
