package nn

import (
	"fmt"

	"modelslicing/internal/tensor"
)

// Inference-time peephole fusion. Fuse rewrites a layer graph into an
// inference-optimized view that shares the original parameters: chains that
// the eager path executes as separate full passes over the activations are
// collapsed into single fused operators built on the GEMM epilogue
// (tensor.GemmEx / tensor.GemmTBEx) and the fused-activation normalization
// kernels:
//
//	Conv2D → BatchNorm/SwitchableBatchNorm (→ ReLU)  ⇒  one GEMM with a
//	    folded per-channel scale/shift (+ clamp) epilogue. The running
//	    statistics are folded at Fuse time into O(widths·channels) vectors
//	    (BatchNorm.FoldedAffine), with the conv bias absorbed into the shift.
//	Conv2D → ReLU                                    ⇒  one GEMM, clamp
//	    (+ bias) in the epilogue.
//	Dense → ReLU                                     ⇒  one GEMM with bias,
//	    rescale and clamp in the epilogue.
//	GroupNorm/BatchNorm/SwitchableBatchNorm → ReLU   ⇒  the clamp rides the
//	    normalization's write pass. (GroupNorm statistics are per-sample and
//	    data-dependent, so the normalization itself can never fold into the
//	    preceding GEMM; this is the best available fusion.)
//
// The fused view is for the read-only inference path: its Infer is
// numerically within 1e-12 of the unfused chain (bit-identical except where
// BatchNorm folding refactors the arithmetic), while Forward/Backward
// delegate to the original layers, so the view remains a well-formed Layer.
// Weights are shared, not copied — a model must not be trained while a fused
// view of it is serving, and BatchNorm folds must be rebuilt (re-Fuse) after
// any further training.

// Fuse returns an inference-optimized view of l sharing its parameters.
// Layers with nothing to fuse are returned as-is; Sequential and Residual
// containers are rebuilt with fused children.
func Fuse(l Layer) Layer {
	switch v := l.(type) {
	case *Sequential:
		return fuseSequential(v)
	case *Residual:
		r := &Residual{Body: Fuse(v.Body)}
		if v.Short != nil {
			r.Short = Fuse(v.Short)
		}
		return r
	default:
		return l
	}
}

// fuseSequential scans the layer list with a peephole window, emitting fused
// operators for recognized chains and recursing into containers elsewhere.
func fuseSequential(s *Sequential) *Sequential {
	out := &Sequential{Layers: make([]Layer, 0, len(s.Layers))}
	for i := 0; i < len(s.Layers); {
		if f, used := fuseAt(s.Layers, i); f != nil {
			out.Layers = append(out.Layers, f)
			i += used
			continue
		}
		out.Layers = append(out.Layers, Fuse(s.Layers[i]))
		i++
	}
	return out
}

// fuseAt tries to start a fused chain at layers[i], returning the fused
// operator and the number of layers it consumed (nil, 0 when no pattern
// matches).
func fuseAt(layers []Layer, i int) (Layer, int) {
	rest := layers[i:]
	switch v := rest[0].(type) {
	case *Conv2D:
		if len(rest) >= 2 {
			if scales, shifts, ok := foldNorm(rest[1], v); ok {
				if len(rest) >= 3 && isReLU(rest[2]) {
					return &FusedConvAct{conv: v, scales: scales, shifts: shifts, relu: true, src: rest[:3]}, 3
				}
				return &FusedConvAct{conv: v, scales: scales, shifts: shifts, src: rest[:2]}, 2
			}
			if isReLU(rest[1]) {
				return &FusedConvAct{conv: v, relu: true, src: rest[:2]}, 2
			}
		}
	case *Dense:
		if len(rest) >= 2 && isReLU(rest[1]) {
			return &FusedDenseAct{dense: v, src: rest[:2]}, 2
		}
	case *GroupNorm, *BatchNorm, *SwitchableBatchNorm:
		if len(rest) >= 2 && isReLU(rest[1]) {
			return &FusedNormAct{norm: rest[0], src: rest[:2]}, 2
		}
	}
	return nil, 0
}

func isReLU(l Layer) bool {
	_, ok := l.(*ReLU)
	return ok
}

// foldNorm folds an evaluation-mode normalization layer following conv into
// per-width (scale, shift) channel vectors, absorbing the conv bias into the
// shift: norm(conv + bias) = scale·conv + (shift + scale·bias). Folding
// requires the norm to run per channel with frozen statistics (BatchNorm or
// SwitchableBatchNorm) over exactly the conv's output slicing, so the active
// widths of the two layers agree at every rate.
func foldNorm(l Layer, conv *Conv2D) (scales, shifts [][]float64, ok bool) {
	var bns []*BatchNorm
	switch v := l.(type) {
	case *BatchNorm:
		bns = []*BatchNorm{v}
	case *SwitchableBatchNorm:
		bns = v.BNs
	default:
		return nil, nil, false
	}
	for _, bn := range bns {
		if bn.C != conv.Out || bn.Spec != conv.OutSpec {
			return nil, nil, false
		}
	}
	for _, bn := range bns {
		scale, shift := bn.FoldedAffine()
		if conv.B != nil {
			for c := range shift {
				shift[c] += scale[c] * conv.B.Value.Data[c]
			}
		}
		scales = append(scales, scale)
		shifts = append(shifts, shift)
	}
	return scales, shifts, true
}

// widthIdx resolves the SwitchableBatchNorm width selection from the
// context, mirroring SwitchableBatchNorm.Infer.
func widthIdx(ctx *Context, n int) int {
	idx := 0
	if ctx != nil {
		idx = ctx.WidthIdx
	}
	if n == 1 {
		// A plain BatchNorm has one statistics set regardless of the
		// scheduled width index.
		return 0
	}
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("nn: fused norm width index %d out of range [0,%d)", idx, n))
	}
	return idx
}

// chainForward/chainBackward/chainParams delegate the training-path Layer
// contract of a fused operator to its source layers, so a fused view remains
// usable (and correct) outside the inference path.
func chainForward(src []Layer, ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	for _, l := range src {
		x = l.Forward(ctx, x)
	}
	return x
}

func chainBackward(src []Layer, ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	for i := len(src) - 1; i >= 0; i-- {
		dy = src[i].Backward(ctx, dy)
	}
	return dy
}

func chainParams(src []Layer) []*Param {
	var ps []*Param
	for _, l := range src {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// FusedConvAct is a convolution with a folded normalization and/or ReLU in
// its GEMM epilogue: the whole chain is one pass over the output instead of
// one GEMM plus up to two further full sweeps.
type FusedConvAct struct {
	conv *Conv2D
	// scales/shifts hold the folded per-channel affine per width index
	// (length 1 for BatchNorm, one per width for SwitchableBatchNorm, nil
	// when no normalization is folded). Conv bias is already absorbed.
	scales, shifts [][]float64
	relu           bool
	src            []Layer
}

// Infer runs the fused chain through the whole-batch conv lowering.
func (f *FusedConvAct) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	ep := tensor.Epilogue{ReLU: f.relu}
	if f.scales != nil {
		idx := widthIdx(ctx, len(f.scales))
		ep.RowScale = f.scales[idx]
		ep.RowShift = f.shifts[idx]
	} else if f.conv.B != nil {
		ep.RowShift = f.conv.B.Value.Data
	}
	return f.conv.inferFused(ctx, x, &ep)
}

// Forward runs the unfused source chain (training/eager semantics).
func (f *FusedConvAct) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	return chainForward(f.src, ctx, x)
}

// Backward back-propagates through the unfused source chain.
func (f *FusedConvAct) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	return chainBackward(f.src, ctx, dy)
}

// Params returns the parameters of the source chain.
func (f *FusedConvAct) Params() []*Param { return chainParams(f.src) }

// FusedDenseAct is a dense layer with its trailing ReLU fused into the GEMM
// epilogue (alongside the bias and rescale the plain Infer already fuses).
type FusedDenseAct struct {
	dense *Dense
	src   []Layer
}

// Infer runs the fused Dense→ReLU chain as one epilogue GEMM.
func (f *FusedDenseAct) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	return f.dense.inferFused(ctx, x, true)
}

// Forward runs the unfused source chain (training/eager semantics).
func (f *FusedDenseAct) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	return chainForward(f.src, ctx, x)
}

// Backward back-propagates through the unfused source chain.
func (f *FusedDenseAct) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	return chainBackward(f.src, ctx, dy)
}

// Params returns the parameters of the source chain.
func (f *FusedDenseAct) Params() []*Param { return chainParams(f.src) }

// FusedNormAct is a normalization layer with its trailing ReLU fused into
// the normalization's write pass — the fallback fusion when the
// normalization cannot fold into a preceding GEMM (GroupNorm always;
// BatchNorm when no convolution precedes it).
type FusedNormAct struct {
	norm Layer
	src  []Layer
}

// Infer runs the fused norm→ReLU chain in one pass.
func (f *FusedNormAct) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	switch n := f.norm.(type) {
	case *GroupNorm:
		return n.inferAct(ctx, x, true)
	case *BatchNorm:
		return n.inferAct(ctx, x, true)
	case *SwitchableBatchNorm:
		return n.BNs[widthIdx(ctx, len(n.BNs))].inferAct(ctx, x, true)
	default:
		panic(fmt.Sprintf("nn: FusedNormAct: unsupported norm %T", f.norm))
	}
}

// Forward runs the unfused source chain (training/eager semantics).
func (f *FusedNormAct) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	return chainForward(f.src, ctx, x)
}

// Backward back-propagates through the unfused source chain.
func (f *FusedNormAct) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	return chainBackward(f.src, ctx, dy)
}

// Params returns the parameters of the source chain.
func (f *FusedNormAct) Params() []*Param { return chainParams(f.src) }
