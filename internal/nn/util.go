package nn

import (
	"math"
	"runtime"
	"sync"
)

// maxBatchWorkers caps intra-layer batch parallelism; worker-local scratch
// arrays (Conv2D.Forward/Backward) are sized from it.
const maxBatchWorkers = 4

// maxWorkers bounds intra-layer batch parallelism.
func maxWorkers(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > maxBatchWorkers {
		w = maxBatchWorkers
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs fn(worker, i) for i in [0, n), partitioned contiguously
// across workers. Each worker receives a stable worker index so callers can
// use worker-local scratch buffers without locking.
func parallelFor(n int, fn func(worker, i int)) {
	w := maxWorkers(n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for wk := 0; wk < w; wk++ {
		lo := wk * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(wk, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(wk, i)
			}
		}(wk, lo, hi)
	}
	wg.Wait()
}

func sigmoid(x float64) float64 {
	// Numerically stable logistic function.
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}
