package nn

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/tensor"
)

// TestLayerTierPackKeying pins the (width, tier) cache contract at the layer
// level: the exact and fma tiers share one f64 pack per width, the f32 tier
// adds its own half-size pack, and PackCacheTierBytes reports the split.
func TestLayerTierPackKeying(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	conv := NewConv2D(4, 8, 3, 3, 1, 1, Fixed(), Fixed(), true, rng)
	x := tensor.New(2, 4, 8, 8)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}

	exact := conv.Infer(&Context{Tier: tensor.TierExact}, x).Clone()
	afterExact := PackCacheBytes(conv)
	if afterExact == 0 {
		t.Fatal("exact tier built no pack")
	}
	conv.Infer(&Context{Tier: tensor.TierFMA}, x)
	if got := PackCacheBytes(conv); got != afterExact {
		t.Fatalf("fma tier grew the cache (%d → %d): must share the f64 pack", afterExact, got)
	}
	f32Out := conv.Infer(&Context{Tier: tensor.TierF32}, x)
	byTier := PackCacheTierBytes(conv)
	if byTier[tensor.TierExact] != afterExact {
		t.Fatalf("f64 bucket = %d, want %d", byTier[tensor.TierExact], afterExact)
	}
	if byTier[tensor.TierF32] == 0 || byTier[tensor.TierF32] >= afterExact*3/4 {
		t.Fatalf("f32 bucket = %d, want ~half of the f64 bucket %d", byTier[tensor.TierF32], afterExact)
	}
	if sum := byTier[tensor.TierExact] + byTier[tensor.TierF32] + byTier[tensor.TierFMA]; sum != PackCacheBytes(conv) {
		t.Fatalf("tier buckets sum to %d, PackCacheBytes = %d", sum, PackCacheBytes(conv))
	}

	// And the f32 output stays within the kernel-level budget of the exact
	// output (layer epilogues only rescale/shift, they do not amplify).
	maxD, maxW := 0.0, 0.0
	for i := range exact.Data {
		maxD = math.Max(maxD, math.Abs(f32Out.Data[i]-exact.Data[i]))
		maxW = math.Max(maxW, math.Abs(exact.Data[i]))
	}
	if maxD > 1e-4*maxW {
		t.Fatalf("f32 tier layer output rel error %.3g > 1e-4", maxD/maxW)
	}
}
