package nn

import (
	"fmt"
	"math/rand"

	"modelslicing/internal/tensor"
)

// Conv2D is a 2-D convolution over [B, C, H, W] tensors with prefix slicing
// on input and output channels (Equation 4 of the paper: channels play the
// role neurons play in dense layers). The kernel is stored as a GEMM-ready
// matrix [Out × In·KH·KW]; because the channel index is outermost in the
// im2col row ordering, the leading aIn·KH·KW columns are exactly the kernel
// entries of the first aIn input channels, so slicing is again a zero-copy
// prefix view.
type Conv2D struct {
	In, Out         int
	KH, KW          int
	Stride, Pad     int
	InSpec, OutSpec SliceSpec

	W *Param // [Out, In*KH*KW]
	B *Param // [Out], nil when built without bias

	// cached forward state
	x          *tensor.Tensor
	aIn, aOut  int
	h, w       int
	outH, outW int
}

// NewConv2D constructs a convolution with He initialization.
func NewConv2D(in, out, kh, kw, stride, pad int, inSpec, outSpec SliceSpec, bias bool, rng *rand.Rand) *Conv2D {
	inSpec.Validate("Conv2D.In", in)
	outSpec.Validate("Conv2D.Out", out)
	c := &Conv2D{
		In: in, Out: out, KH: kh, KW: kw, Stride: stride, Pad: pad,
		InSpec: inSpec, OutSpec: outSpec,
		W: NewParam("conv.W", true, out, in*kh*kw),
	}
	tensor.InitHe(c.W.Value, in*kh*kw, rng)
	if bias {
		c.B = NewParam("conv.B", false, out)
	}
	return c
}

// Conv3x3 is shorthand for the ubiquitous 3×3 stride-1 same-padding conv.
func Conv3x3(in, out int, inSpec, outSpec SliceSpec, rng *rand.Rand) *Conv2D {
	return NewConv2D(in, out, 3, 3, 1, 1, inSpec, outSpec, false, rng)
}

// Conv1x1 is shorthand for a point-wise convolution.
func Conv1x1(in, out, stride int, inSpec, outSpec SliceSpec, rng *rand.Rand) *Conv2D {
	return NewConv2D(in, out, 1, 1, stride, 0, inSpec, outSpec, false, rng)
}

// Active returns the active (input, output) channel counts at slice rate r.
func (c *Conv2D) Active(r float64) (aIn, aOut int) {
	return c.InSpec.Active(r, c.In), c.OutSpec.Active(r, c.Out)
}

// OutShape returns the output spatial size for the given input size.
func (c *Conv2D) OutShape(h, w int) (int, int) {
	return tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad), tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
}

// Forward computes y[B, aOut, outH, outW] from x[B, aIn, H, W].
func (c *Conv2D) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	r := ctx.EffRate()
	c.aIn, c.aOut = c.Active(r)
	if x.Rank() != 4 || x.Dim(1) != c.aIn {
		panic(fmt.Sprintf("nn: Conv2D.Forward input %v, want [B %d H W] at rate %v", x.Shape, c.aIn, r))
	}
	batch := x.Dim(0)
	c.h, c.w = x.Dim(2), x.Dim(3)
	c.outH, c.outW = c.OutShape(c.h, c.w)
	c.x = x
	y := tensor.New(batch, c.aOut, c.outH, c.outW)

	inPlane := c.aIn * c.h * c.w
	outPlane := c.aOut * c.outH * c.outW
	spatial := c.outH * c.outW
	colRows := c.aIn * c.KH * c.KW
	ldW := c.In * c.KH * c.KW

	nw := maxWorkers(batch)
	cols := make([][]float64, nw)
	for i := range cols {
		cols[i] = make([]float64, colRows*spatial)
	}
	parallelFor(batch, func(worker, b int) {
		col := cols[worker]
		src := x.Data[b*inPlane : (b+1)*inPlane]
		tensor.Im2Col(src, c.aIn, c.h, c.w, c.KH, c.KW, c.Stride, c.Pad, col)
		dst := y.Data[b*outPlane : (b+1)*outPlane]
		tensor.Gemm(c.aOut, spatial, colRows, c.W.Value.Data, ldW, col, spatial, dst, spatial)
		if c.B != nil {
			for oc := 0; oc < c.aOut; oc++ {
				bias := c.B.Value.Data[oc]
				plane := dst[oc*spatial : (oc+1)*spatial]
				for i := range plane {
					plane[i] += bias
				}
			}
		}
	})
	return y
}

// Infer computes y[B, aOut, outH, outW] on the read-only inference path.
// Samples are processed sequentially with one arena-backed im2col scratch
// buffer — batch-level parallelism belongs to the caller (the server shards
// batches across workers), and the blocked GEMM parallelizes large products
// internally.
func (c *Conv2D) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	r := ctx.EffRate()
	aIn, aOut := c.Active(r)
	if x.Rank() != 4 || x.Dim(1) != aIn {
		panic(fmt.Sprintf("nn: Conv2D.Infer input %v, want [B %d H W] at rate %v", x.Shape, aIn, r))
	}
	batch := x.Dim(0)
	h, w := x.Dim(2), x.Dim(3)
	outH, outW := c.OutShape(h, w)
	arena := arenaOf(ctx)
	y := arena.Get(batch, aOut, outH, outW)

	inPlane := aIn * h * w
	outPlane := aOut * outH * outW
	spatial := outH * outW
	colRows := aIn * c.KH * c.KW
	ldW := c.In * c.KH * c.KW

	col := arena.Get(colRows * spatial)
	for b := 0; b < batch; b++ {
		src := x.Data[b*inPlane : (b+1)*inPlane]
		tensor.Im2Col(src, aIn, h, w, c.KH, c.KW, c.Stride, c.Pad, col.Data)
		dst := y.Data[b*outPlane : (b+1)*outPlane]
		tensor.Gemm(aOut, spatial, colRows, c.W.Value.Data, ldW, col.Data, spatial, dst, spatial)
		if c.B != nil {
			for oc := 0; oc < aOut; oc++ {
				bias := c.B.Value.Data[oc]
				plane := dst[oc*spatial : (oc+1)*spatial]
				for i := range plane {
					plane[i] += bias
				}
			}
		}
	}
	return y
}

// Backward accumulates dW, dB and returns dx[B, aIn, H, W].
func (c *Conv2D) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	batch := c.x.Dim(0)
	if dy.Rank() != 4 || dy.Dim(0) != batch || dy.Dim(1) != c.aOut || dy.Dim(2) != c.outH || dy.Dim(3) != c.outW {
		panic(fmt.Sprintf("nn: Conv2D.Backward grad %v, want [%d %d %d %d]", dy.Shape, batch, c.aOut, c.outH, c.outW))
	}
	dx := tensor.New(batch, c.aIn, c.h, c.w)

	inPlane := c.aIn * c.h * c.w
	outPlane := c.aOut * c.outH * c.outW
	spatial := c.outH * c.outW
	colRows := c.aIn * c.KH * c.KW
	ldW := c.In * c.KH * c.KW

	nw := maxWorkers(batch)
	// Worker-local scratch: im2col buffer, dcol buffer, and a private dW
	// (and dB) accumulator to avoid write races; reduced after the loop.
	cols := make([][]float64, nw)
	dcols := make([][]float64, nw)
	dws := make([][]float64, nw)
	dbs := make([][]float64, nw)
	for i := 0; i < nw; i++ {
		cols[i] = make([]float64, colRows*spatial)
		dcols[i] = make([]float64, colRows*spatial)
		dws[i] = make([]float64, len(c.W.Grad.Data))
		if c.B != nil {
			dbs[i] = make([]float64, c.aOut)
		}
	}
	parallelFor(batch, func(worker, b int) {
		col := cols[worker]
		dcol := dcols[worker]
		src := c.x.Data[b*inPlane : (b+1)*inPlane]
		tensor.Im2Col(src, c.aIn, c.h, c.w, c.KH, c.KW, c.Stride, c.Pad, col)
		g := dy.Data[b*outPlane : (b+1)*outPlane]
		// dW += dy_b · colᵀ
		tensor.GemmTB(c.aOut, colRows, spatial, g, spatial, col, spatial, dws[worker], ldW)
		// dcol = Wᵀ · dy_b
		for i := range dcol {
			dcol[i] = 0
		}
		tensor.GemmTA(colRows, spatial, c.aOut, c.W.Value.Data, ldW, g, spatial, dcol, spatial)
		tensor.Col2Im(dcol, c.aIn, c.h, c.w, c.KH, c.KW, c.Stride, c.Pad, dx.Data[b*inPlane:(b+1)*inPlane])
		if c.B != nil {
			db := dbs[worker]
			for oc := 0; oc < c.aOut; oc++ {
				plane := g[oc*spatial : (oc+1)*spatial]
				s := 0.0
				for _, v := range plane {
					s += v
				}
				db[oc] += s
			}
		}
	})
	for i := 0; i < nw; i++ {
		gw := c.W.Grad.Data
		for j, v := range dws[i] {
			if v != 0 {
				gw[j] += v
			}
		}
		if c.B != nil {
			gb := c.B.Grad.Data
			for j, v := range dbs[i] {
				gb[j] += v
			}
		}
	}
	return dx
}

// Params returns the learnable parameters.
func (c *Conv2D) Params() []*Param {
	if c.B == nil {
		return []*Param{c.W}
	}
	return []*Param{c.W, c.B}
}
