package nn

import (
	"fmt"
	"math/rand"
	"sync"

	"modelslicing/internal/tensor"
)

// Conv2D is a 2-D convolution over [B, C, H, W] tensors with prefix slicing
// on input and output channels (Equation 4 of the paper: channels play the
// role neurons play in dense layers). The kernel is stored as a GEMM-ready
// matrix [Out × In·KH·KW]; because the channel index is outermost in the
// im2col row ordering, the leading aIn·KH·KW columns are exactly the kernel
// entries of the first aIn input channels, so slicing is again a zero-copy
// prefix view.
type Conv2D struct {
	In, Out         int
	KH, KW          int
	Stride, Pad     int
	InSpec, OutSpec SliceSpec

	W *Param // [Out, In*KH*KW]
	B *Param // [Out], nil when built without bias

	// packs caches the per-width micro-panel packs of W as the GEMM's A
	// operand: each active (aOut, aIn·KH·KW) prefix is packed once
	// (tensor.PackA) and then served read-only to every worker — both the
	// per-sample and the whole-batch lowering stream the same pack. Training
	// invalidates it (see Forward).
	packs packCache

	// cached forward state
	x          *tensor.Tensor
	aIn, aOut  int
	h, w       int
	outH, outW int
}

// NewConv2D constructs a convolution with He initialization.
func NewConv2D(in, out, kh, kw, stride, pad int, inSpec, outSpec SliceSpec, bias bool, rng *rand.Rand) *Conv2D {
	inSpec.Validate("Conv2D.In", in)
	outSpec.Validate("Conv2D.Out", out)
	c := &Conv2D{
		In: in, Out: out, KH: kh, KW: kw, Stride: stride, Pad: pad,
		InSpec: inSpec, OutSpec: outSpec,
		W: NewParam("conv.W", true, out, in*kh*kw),
	}
	tensor.InitHe(c.W.Value, in*kh*kw, rng)
	if bias {
		c.B = NewParam("conv.B", false, out)
	}
	return c
}

// Conv3x3 is shorthand for the ubiquitous 3×3 stride-1 same-padding conv.
func Conv3x3(in, out int, inSpec, outSpec SliceSpec, rng *rand.Rand) *Conv2D {
	return NewConv2D(in, out, 3, 3, 1, 1, inSpec, outSpec, false, rng)
}

// Conv1x1 is shorthand for a point-wise convolution.
func Conv1x1(in, out, stride int, inSpec, outSpec SliceSpec, rng *rand.Rand) *Conv2D {
	return NewConv2D(in, out, 1, 1, stride, 0, inSpec, outSpec, false, rng)
}

// Active returns the active (input, output) channel counts at slice rate r.
func (c *Conv2D) Active(r float64) (aIn, aOut int) {
	return c.InSpec.Active(r, c.In), c.OutSpec.Active(r, c.Out)
}

// OutShape returns the output spatial size for the given input size.
func (c *Conv2D) OutShape(h, w int) (int, int) {
	return tensor.ConvOutSize(h, c.KH, c.Stride, c.Pad), tensor.ConvOutSize(w, c.KW, c.Stride, c.Pad)
}

// im2colPool recycles the worker-local im2col (and column-gradient) scratch
// of the training path across steps, the way the GEMM engine recycles its
// transpose panels: Forward/Backward used to allocate one fresh
// colRows×spatial buffer per worker per step. Buffers are size-promoted on
// demand and fully (re)written before every read — Im2Col writes padding taps
// too, and Backward zeroes its dcol explicitly — so recycled contents never
// leak between steps.
var im2colPool = sync.Pool{New: func() any { return new([]float64) }}

// im2colGet hands out a pooled buffer of at least n elements.
func im2colGet(n int) *[]float64 {
	buf := im2colPool.Get().(*[]float64)
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	return buf
}

// Forward computes y[B, aOut, outH, outW] from x[B, aIn, H, W].
func (c *Conv2D) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	// Forward precedes weight updates; cached inference packs would go
	// stale, so drop them.
	c.packs.invalidate()
	r := ctx.EffRate()
	c.aIn, c.aOut = c.Active(r)
	if x.Rank() != 4 || x.Dim(1) != c.aIn {
		panic(fmt.Sprintf("nn: Conv2D.Forward input %v, want [B %d H W] at rate %v", x.Shape, c.aIn, r))
	}
	batch := x.Dim(0)
	c.h, c.w = x.Dim(2), x.Dim(3)
	c.outH, c.outW = c.OutShape(c.h, c.w)
	c.x = x
	y := tensor.New(batch, c.aOut, c.outH, c.outW)

	inPlane := c.aIn * c.h * c.w
	outPlane := c.aOut * c.outH * c.outW
	spatial := c.outH * c.outW
	colRows := c.aIn * c.KH * c.KW
	ldW := c.In * c.KH * c.KW

	nw := maxWorkers(batch)
	var cols [maxBatchWorkers][]float64
	var bufs [maxBatchWorkers]*[]float64
	for i := 0; i < nw; i++ {
		bufs[i] = im2colGet(colRows * spatial)
		cols[i] = (*bufs[i])[:colRows*spatial]
	}
	parallelFor(batch, func(worker, b int) {
		col := cols[worker]
		src := x.Data[b*inPlane : (b+1)*inPlane]
		tensor.Im2Col(src, c.aIn, c.h, c.w, c.KH, c.KW, c.Stride, c.Pad, col)
		dst := y.Data[b*outPlane : (b+1)*outPlane]
		tensor.Gemm(c.aOut, spatial, colRows, c.W.Value.Data, ldW, col, spatial, dst, spatial)
		if c.B != nil {
			for oc := 0; oc < c.aOut; oc++ {
				bias := c.B.Value.Data[oc]
				plane := dst[oc*spatial : (oc+1)*spatial]
				for i := range plane {
					plane[i] += bias
				}
			}
		}
	})
	for i := 0; i < nw; i++ {
		im2colPool.Put(bufs[i])
	}
	return y
}

// convScratchCap bounds the im2col scratch a single conv lowering may hold,
// in float64 elements (1 Mi elements = 8 MiB). Whole-batch lowering packs the
// entire batch into one column matrix; when colRows·batch·spatial exceeds the
// cap, the batch is tiled into the largest sample count that fits, so huge
// batches cannot blow up the arena's high-water mark. Variable so tests can
// shrink it to force multi-tile runs.
var convScratchCap = 1 << 20

// convWideGemm decides whether the whole-batch (wide) GEMM layout is worth
// its extra memory traffic for a tile of the given product shape — i.e.
// whether the engine would fan it out across goroutines. Swappable so tests
// can force either lowering on any host.
var convWideGemm = tensor.GemmWillParallelize

// Infer computes y[B, aOut, outH, outW] on the read-only inference path by
// lowering the whole batch at once: one im2col matrix of shape
// [aIn·KH·KW × B·outH·outW] (tiled by convScratchCap) feeds a single wide
// GEMM, whose n dimension is large enough for the blocked engine's panel
// reuse and goroutine fan-out to engage even when the per-sample spatial
// extent is tiny. The bias is applied as a fused GEMM epilogue.
func (c *Conv2D) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	var ep *tensor.Epilogue
	if c.B != nil {
		ep = &tensor.Epilogue{RowShift: c.B.Value.Data}
	}
	return c.inferFused(ctx, x, ep)
}

// inferFused is the whole-batch lowering behind Infer with a caller-supplied
// GEMM epilogue (which must already include the conv bias when it is
// non-nil — the fusion pass folds it into the normalization shift).
func (c *Conv2D) inferFused(ctx *Context, x *tensor.Tensor, ep *tensor.Epilogue) *tensor.Tensor {
	r := ctx.EffRate()
	aIn, aOut := c.Active(r)
	if x.Rank() != 4 || x.Dim(1) != aIn {
		panic(fmt.Sprintf("nn: Conv2D.Infer input %v, want [B %d H W] at rate %v", x.Shape, aIn, r))
	}
	batch := x.Dim(0)
	h, w := x.Dim(2), x.Dim(3)
	outH, outW := c.OutShape(h, w)
	arena := arenaOf(ctx)
	// Every output element is written by the assign-mode GEMM (directly or
	// via the tile scatter), so the buffers can skip the arena's zero fill.
	y := arena.GetUninit(batch, aOut, outH, outW)

	inPlane := aIn * h * w
	outPlane := aOut * outH * outW
	spatial := outH * outW
	colRows := aIn * c.KH * c.KW
	ldW := c.In * c.KH * c.KW

	// The weight is the product's A operand and immutable for the life of
	// the pass: stream the per-width persistent pack (built once, shared by
	// every worker and both lowerings) unless the context pins the unpacked
	// engine.
	tier := ctx.EffTier()
	var pw tensor.Packed
	if usePack(ctx) {
		k := packKey{aOut, colRows, packTierOf(tier)}
		pw = c.packs.lookup(k)
		if pw == nil {
			pw = c.packs.build(k, func() tensor.Packed {
				if k.tier == tensor.TierF32 {
					return tensor.PackA32(aOut, colRows, c.W.Value.Data, ldW)
				}
				return tensor.PackA(aOut, colRows, c.W.Value.Data, ldW)
			})
		}
	}
	gemm := func(n int, col []float64, ldb int, dst []float64, ldc int) {
		if pw != nil {
			tensor.GemmPackedExT(tier, aOut, n, colRows, pw, col, ldb, dst, ldc, ep)
			return
		}
		tensor.GemmExT(tier, aOut, n, colRows, c.W.Value.Data, ldW, col, ldb, dst, ldc, ep)
	}

	// Tile the batch so the lowering scratch stays under convScratchCap.
	// The wide layout holds both the im2col matrix (colRows rows) and the
	// channel-major output tile (aOut rows) at tb·spatial columns each, so
	// both enter the divisor — otherwise a small-kernel/wide-output conv
	// (colRows ≪ aOut) could blow the cap through the scatter buffer alone.
	tb := batch
	if perSample := (colRows + aOut) * spatial; perSample > 0 && perSample*tb > convScratchCap {
		tb = max(convScratchCap/perSample, 1)
	}
	// The whole-batch layout only pays off when its wide GEMM actually fans
	// out across cores: it streams the full tile's columns through memory
	// and scatters the channel-major result back into y. When the product
	// would run serially anyway (small shapes, single-core hosts), the
	// per-sample lowering wins — each sample's column matrix is consumed by
	// its GEMM while still cache-hot, with the same fused epilogue.
	if tb <= 1 || !convWideGemm(aOut, tb*spatial, colRows) {
		col := arena.GetUninit(colRows, spatial)
		for b := 0; b < batch; b++ {
			src := x.Data[b*inPlane : (b+1)*inPlane]
			tensor.Im2ColInto(src, aIn, h, w, c.KH, c.KW, c.Stride, c.Pad, col.Data, spatial, 0)
			gemm(spatial, col.Data, spatial, y.Data[b*outPlane:(b+1)*outPlane], spatial)
		}
		return y
	}
	col := arena.GetUninit(colRows, tb*spatial)
	// Multi-sample tiles produce [aOut × nb·spatial] in channel-major tile
	// layout; rows are scattered back into y's sample-major layout with one
	// contiguous copy per (channel, sample).
	out := arena.GetUninit(aOut, tb*spatial)
	for b0 := 0; b0 < batch; b0 += tb {
		nb := min(tb, batch-b0)
		tileCols := nb * spatial
		for bb := 0; bb < nb; bb++ {
			src := x.Data[(b0+bb)*inPlane : (b0+bb+1)*inPlane]
			tensor.Im2ColInto(src, aIn, h, w, c.KH, c.KW, c.Stride, c.Pad, col.Data, tileCols, bb*spatial)
		}
		if nb == 1 {
			// A single-sample tile's layout matches y directly.
			gemm(spatial, col.Data, tileCols, y.Data[b0*outPlane:(b0+1)*outPlane], spatial)
			continue
		}
		gemm(tileCols, col.Data, tileCols, out.Data, tileCols)
		for oc := 0; oc < aOut; oc++ {
			row := out.Data[oc*tileCols : (oc+1)*tileCols]
			for bb := 0; bb < nb; bb++ {
				dst := y.Data[(b0+bb)*outPlane+oc*spatial:]
				copy(dst[:spatial], row[bb*spatial:(bb+1)*spatial])
			}
		}
	}
	return y
}

// Backward accumulates dW, dB and returns dx[B, aIn, H, W].
func (c *Conv2D) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	batch := c.x.Dim(0)
	if dy.Rank() != 4 || dy.Dim(0) != batch || dy.Dim(1) != c.aOut || dy.Dim(2) != c.outH || dy.Dim(3) != c.outW {
		panic(fmt.Sprintf("nn: Conv2D.Backward grad %v, want [%d %d %d %d]", dy.Shape, batch, c.aOut, c.outH, c.outW))
	}
	dx := tensor.New(batch, c.aIn, c.h, c.w)

	inPlane := c.aIn * c.h * c.w
	outPlane := c.aOut * c.outH * c.outW
	spatial := c.outH * c.outW
	colRows := c.aIn * c.KH * c.KW
	ldW := c.In * c.KH * c.KW

	nw := maxWorkers(batch)
	// Worker-local scratch: pooled im2col and dcol buffers (dcol is zeroed
	// in the loop before its accumulating GEMM), plus a private dW (and dB)
	// accumulator to avoid write races; reduced after the loop.
	var cols, dcols [maxBatchWorkers][]float64
	var bufs [2 * maxBatchWorkers]*[]float64
	dws := make([][]float64, nw)
	dbs := make([][]float64, nw)
	for i := 0; i < nw; i++ {
		bufs[2*i] = im2colGet(colRows * spatial)
		bufs[2*i+1] = im2colGet(colRows * spatial)
		cols[i] = (*bufs[2*i])[:colRows*spatial]
		dcols[i] = (*bufs[2*i+1])[:colRows*spatial]
		dws[i] = make([]float64, len(c.W.Grad.Data))
		if c.B != nil {
			dbs[i] = make([]float64, c.aOut)
		}
	}
	parallelFor(batch, func(worker, b int) {
		col := cols[worker]
		dcol := dcols[worker]
		src := c.x.Data[b*inPlane : (b+1)*inPlane]
		tensor.Im2Col(src, c.aIn, c.h, c.w, c.KH, c.KW, c.Stride, c.Pad, col)
		g := dy.Data[b*outPlane : (b+1)*outPlane]
		// dW += dy_b · colᵀ
		tensor.GemmTB(c.aOut, colRows, spatial, g, spatial, col, spatial, dws[worker], ldW)
		// dcol = Wᵀ · dy_b
		for i := range dcol {
			dcol[i] = 0
		}
		tensor.GemmTA(colRows, spatial, c.aOut, c.W.Value.Data, ldW, g, spatial, dcol, spatial)
		tensor.Col2Im(dcol, c.aIn, c.h, c.w, c.KH, c.KW, c.Stride, c.Pad, dx.Data[b*inPlane:(b+1)*inPlane])
		if c.B != nil {
			db := dbs[worker]
			for oc := 0; oc < c.aOut; oc++ {
				plane := g[oc*spatial : (oc+1)*spatial]
				s := 0.0
				for _, v := range plane {
					s += v
				}
				db[oc] += s
			}
		}
	})
	for i := 0; i < nw; i++ {
		gw := c.W.Grad.Data
		for j, v := range dws[i] {
			if v != 0 {
				gw[j] += v
			}
		}
		if c.B != nil {
			gb := c.B.Grad.Data
			for j, v := range dbs[i] {
				gb[j] += v
			}
		}
	}
	for i := 0; i < 2*nw; i++ {
		im2colPool.Put(bufs[i])
	}
	return dx
}

// packCacheBytes reports the resident per-width pack memory (see
// PackCacheBytes).
func (c *Conv2D) packCacheBytes() int64 { return c.packs.bytes() }

// packCacheTierBytes splits the resident pack memory by pack precision.
func (c *Conv2D) packCacheTierBytes() [tensor.NumTiers]int64 { return c.packs.bytesByTier() }

// Params returns the learnable parameters.
func (c *Conv2D) Params() []*Param {
	if c.B == nil {
		return []*Param{c.W}
	}
	return []*Param{c.W, c.B}
}
