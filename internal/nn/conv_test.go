package nn

import (
	"math"
	"math/rand"
	"testing"
)

func TestConv2DForwardMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	c := NewConv2D(2, 3, 3, 3, 1, 1, Fixed(), Fixed(), true, rng)
	x := randTensor(rng, 2, 2, 5, 5)
	y := c.Forward(Eval(1), x)
	if y.Dim(0) != 2 || y.Dim(1) != 3 || y.Dim(2) != 5 || y.Dim(3) != 5 {
		t.Fatalf("output shape %v", y.Shape)
	}
	// Direct convolution reference.
	for b := 0; b < 2; b++ {
		for oc := 0; oc < 3; oc++ {
			for oy := 0; oy < 5; oy++ {
				for ox := 0; ox < 5; ox++ {
					want := c.B.Value.Data[oc]
					for ic := 0; ic < 2; ic++ {
						for ki := 0; ki < 3; ki++ {
							for kj := 0; kj < 3; kj++ {
								iy, ix := oy-1+ki, ox-1+kj
								if iy < 0 || iy >= 5 || ix < 0 || ix >= 5 {
									continue
								}
								want += c.W.Value.At(oc, (ic*3+ki)*3+kj) * x.At(b, ic, iy, ix)
							}
						}
					}
					if math.Abs(y.At(b, oc, oy, ox)-want) > 1e-10 {
						t.Fatalf("conv mismatch at (%d,%d,%d,%d): %v want %v",
							b, oc, oy, ox, y.At(b, oc, oy, ox), want)
					}
				}
			}
		}
	}
}

func TestConv2DGradCheckFull(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	c := NewConv2D(2, 3, 3, 3, 1, 1, Fixed(), Fixed(), true, rng)
	x := randTensor(rng, 2, 2, 4, 4)
	if err := CheckGradients(c, Train(1, rng), x, nil, 64); err != nil {
		t.Fatal(err)
	}
}

func TestConv2DGradCheckStrided(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	c := NewConv2D(2, 2, 3, 3, 2, 1, Fixed(), Fixed(), false, rng)
	x := randTensor(rng, 2, 2, 5, 5)
	if err := CheckGradients(c, Train(1, rng), x, nil, 64); err != nil {
		t.Fatal(err)
	}
}

func TestConv2DGradCheckSliced(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := NewConv2D(8, 8, 3, 3, 1, 1, Sliced(4), Sliced(4), false, rng)
	for _, r := range []float64{0.25, 0.5, 0.75} {
		aIn, _ := c.Active(r)
		x := randTensor(rng, 1, aIn, 4, 4)
		if err := CheckGradients(c, Train(r, rng), x, nil, 48); err != nil {
			t.Fatalf("rate %v: %v", r, err)
		}
	}
}

func TestConv2DGradCheck1x1(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	c := Conv1x1(4, 4, 1, Sliced(2), Sliced(2), rng)
	x := randTensor(rng, 2, 2, 3, 3) // rate 0.5 → 2 channels
	if err := CheckGradients(c, Train(0.5, rng), x, nil, 0); err != nil {
		t.Fatal(err)
	}
}

// The sliced convolution must equal a standalone convolution built from the
// prefix of the kernel — the conv analogue of subnet extraction.
func TestConv2DSlicePrefixEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	c := NewConv2D(8, 8, 3, 3, 1, 1, Sliced(4), Sliced(4), false, rng)
	r := 0.5
	aIn, aOut := c.Active(r)
	x := randTensor(rng, 2, aIn, 6, 6)
	y := c.Forward(Eval(r), x)

	small := NewConv2D(aIn, aOut, 3, 3, 1, 1, Fixed(), Fixed(), false, rng)
	for oc := 0; oc < aOut; oc++ {
		copy(small.W.Value.Row(oc), c.W.Value.Row(oc)[:aIn*9])
	}
	ys := small.Forward(Eval(1), x)
	if !y.SameShape(ys) {
		t.Fatalf("shape mismatch %v vs %v", y.Shape, ys.Shape)
	}
	for i := range y.Data {
		if math.Abs(y.Data[i]-ys.Data[i]) > 1e-12 {
			t.Fatalf("sliced conv differs from extracted subnet at %d", i)
		}
	}
}

func TestConv2DQuadraticCost(t *testing.T) {
	// The number of multiply-adds of a sliced conv is (aIn·aOut)/(In·Out) of
	// the full cost — quadratic in the slice rate when both dims slice.
	rng := rand.New(rand.NewSource(26))
	c := NewConv2D(16, 16, 3, 3, 1, 1, Sliced(4), Sliced(4), false, rng)
	full := float64(16 * 16)
	for _, r := range []float64{0.25, 0.5, 0.75, 1.0} {
		aIn, aOut := c.Active(r)
		got := float64(aIn*aOut) / full
		if math.Abs(got-r*r) > 1e-9 {
			t.Fatalf("cost ratio at r=%v: %v, want %v", r, got, r*r)
		}
	}
}

func TestConv2DOutShape(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	c := NewConv2D(1, 1, 3, 3, 2, 1, Fixed(), Fixed(), false, rng)
	h, w := c.OutShape(32, 32)
	if h != 16 || w != 16 {
		t.Fatalf("OutShape = (%d,%d), want (16,16)", h, w)
	}
}
