package nn

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/tensor"
)

func TestGroupNormNormalizesGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	g := NewGroupNorm(8, 4, Fixed(), 1e-5)
	x := randTensor(rng, 3, 8, 4, 4)
	y := g.Forward(Eval(1), x)
	// With γ=1, β=0 each (sample, group) must have ~zero mean, unit var.
	gs, hw := 2, 16
	for b := 0; b < 3; b++ {
		for gi := 0; gi < 4; gi++ {
			mu, va := 0.0, 0.0
			n := gs * hw
			for c := gi * gs; c < (gi+1)*gs; c++ {
				for s := 0; s < hw; s++ {
					mu += y.Data[((b*8+c)*16 + s)]
				}
			}
			mu /= float64(n)
			for c := gi * gs; c < (gi+1)*gs; c++ {
				for s := 0; s < hw; s++ {
					d := y.Data[((b*8+c)*16+s)] - mu
					va += d * d
				}
			}
			va /= float64(n)
			if math.Abs(mu) > 1e-8 || math.Abs(va-1) > 1e-3 {
				t.Fatalf("group (%d,%d): mean %v var %v", b, gi, mu, va)
			}
		}
	}
}

func TestGroupNormGradCheck4D(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := NewGroupNorm(4, 2, Fixed(), 1e-5)
	// Perturb affine params away from the identity for a stronger check.
	tensor.InitNormal(g.Gamma.Value, 0.5, rng)
	g.Gamma.Value.Data[0] += 1
	tensor.InitNormal(g.Beta.Value, 0.5, rng)
	x := randTensor(rng, 2, 4, 3, 3)
	if err := CheckGradients(g, Train(1, rng), x, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestGroupNormGradCheck2D(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := NewGroupNorm(8, 4, Fixed(), 1e-5)
	x := randTensor(rng, 3, 8)
	if err := CheckGradients(g, Train(1, rng), x, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestGroupNormGradCheckSliced(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := NewGroupNorm(8, 4, Sliced(4), 1e-5)
	for _, r := range []float64{0.25, 0.5, 0.75} {
		aC := g.Spec.Active(r, 8)
		x := randTensor(rng, 2, aC, 3, 3)
		if err := CheckGradients(g, Train(r, rng), x, nil, 0); err != nil {
			t.Fatalf("rate %v: %v", r, err)
		}
	}
}

// GroupNorm output for the active prefix must be independent of whether the
// wider network exists at all — the scale-stability property of Section 3.2.
func TestGroupNormSliceScaleStability(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	g := NewGroupNorm(8, 4, Sliced(4), 1e-5)
	x4 := randTensor(rng, 2, 4, 3, 3)
	yHalf := g.Forward(Eval(0.5), x4)

	small := NewGroupNorm(4, 2, Fixed(), 1e-5)
	copy(small.Gamma.Value.Data, g.Gamma.Value.Data[:4])
	copy(small.Beta.Value.Data, g.Beta.Value.Data[:4])
	ySmall := small.Forward(Eval(1), x4)
	for i := range yHalf.Data {
		if math.Abs(yHalf.Data[i]-ySmall.Data[i]) > 1e-12 {
			t.Fatal("sliced group-norm differs from standalone small group-norm")
		}
	}
}

func TestGroupNormGammaGroupMeans(t *testing.T) {
	g := NewGroupNorm(8, 4, Sliced(4), 1e-5)
	for i := range g.Gamma.Value.Data {
		g.Gamma.Value.Data[i] = float64(i)
	}
	means := g.GammaGroupMeans()
	if len(means) != 4 {
		t.Fatalf("want 4 group means, got %d", len(means))
	}
	if means[0] != 0.5 || means[3] != 6.5 {
		t.Fatalf("group means %v", means)
	}
}

func TestGroupNormRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-divisible group count")
		}
	}()
	NewGroupNorm(10, 4, Fixed(), 1e-5)
}

func TestBatchNormTrainingStats(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	b := NewBatchNorm(4, Fixed())
	x := randTensor(rng, 8, 4, 3, 3)
	y := b.Forward(Train(1, rng), x)
	// Per-channel batch mean ≈ 0, var ≈ 1 with identity affine.
	for c := 0; c < 4; c++ {
		mu, va, n := 0.0, 0.0, 0.0
		for s := 0; s < 8; s++ {
			for j := 0; j < 9; j++ {
				mu += y.At(s, c, j/3, j%3)
				n++
			}
		}
		mu /= n
		for s := 0; s < 8; s++ {
			for j := 0; j < 9; j++ {
				d := y.At(s, c, j/3, j%3) - mu
				va += d * d
			}
		}
		va /= n
		if math.Abs(mu) > 1e-8 || math.Abs(va-1) > 1e-3 {
			t.Fatalf("channel %d: mean %v var %v", c, mu, va)
		}
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	b := NewBatchNorm(2, Fixed())
	// Feed a stream with known mean 3 and std 2.
	for i := 0; i < 200; i++ {
		x := tensor.New(16, 2)
		for j := range x.Data {
			x.Data[j] = 3 + 2*rng.NormFloat64()
		}
		b.Forward(Train(1, rng), x)
	}
	for c := 0; c < 2; c++ {
		if math.Abs(b.RunMean.Data[c]-3) > 0.3 {
			t.Fatalf("running mean[%d] = %v, want ≈3", c, b.RunMean.Data[c])
		}
		if math.Abs(b.RunVar.Data[c]-4) > 1.0 {
			t.Fatalf("running var[%d] = %v, want ≈4", c, b.RunVar.Data[c])
		}
	}
	// Evaluation must use the running estimates: a batch at the stream
	// statistics should come out roughly standardized.
	x := tensor.New(1000, 2)
	for j := range x.Data {
		x.Data[j] = 3 + 2*rng.NormFloat64()
	}
	y := b.Forward(Eval(1), x)
	if math.Abs(y.Mean()) > 0.1 {
		t.Fatalf("eval-mode output mean %v, want ≈0", y.Mean())
	}
}

func TestBatchNormGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	b := NewBatchNorm(3, Fixed())
	tensor.InitNormal(b.Gamma.Value, 0.3, rng)
	b.Gamma.Value.Data[0] += 1
	x := randTensor(rng, 4, 3, 2, 2)
	if err := CheckGradients(b, Train(1, rng), x, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestBatchNormBackwardPanicsAfterEval(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	b := NewBatchNorm(2, Fixed())
	x := randTensor(rng, 2, 2)
	b.Forward(Eval(1), x)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Backward(Eval(1), x)
}

func TestSwitchableBatchNormDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	s := NewSwitchableBatchNorm(4, Sliced(4), 3)
	if len(s.Params()) != 6 {
		t.Fatalf("want 6 params (3 widths × γ,β), got %d", len(s.Params()))
	}
	x := randTensor(rng, 4, 4)
	ctx := &Context{Training: true, Rate: 1, WidthIdx: 1, RNG: rng}
	s.Forward(ctx, x)
	// Only the selected BN's running stats move.
	if s.BNs[1].RunMean.L2Norm() == 0 {
		t.Fatal("selected BN running stats did not update")
	}
	if s.BNs[0].RunMean.L2Norm() != 0 || s.BNs[2].RunMean.L2Norm() != 0 {
		t.Fatal("unselected BN running stats were touched")
	}
}

func TestSwitchableBatchNormGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	s := NewSwitchableBatchNorm(4, Sliced(2), 2)
	x := randTensor(rng, 3, 2, 2, 2) // width index 1 at rate 0.5 → 2 channels
	ctx := &Context{Training: true, Rate: 0.5, WidthIdx: 1, RNG: rng}
	if err := CheckGradients(s, ctx, x, nil, 0); err != nil {
		t.Fatal(err)
	}
}
