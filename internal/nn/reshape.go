package nn

import (
	"fmt"

	"modelslicing/internal/tensor"
)

// TimeFlatten reshapes a sequence tensor [T, B, H] into a row matrix
// [T·B, H], so that a Dense decoder and SoftmaxCrossEntropy can treat every
// (time step, batch) pair as one prediction row — the standard language-model
// head layout.
type TimeFlatten struct {
	inShape []int
}

// NewTimeFlatten constructs the reshape layer.
func NewTimeFlatten() *TimeFlatten { return &TimeFlatten{} }

// Forward flattens the leading two dimensions.
func (f *TimeFlatten) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("nn: TimeFlatten input %v, want rank 3", x.Shape))
	}
	f.inShape = append([]int(nil), x.Shape...)
	return x.Reshape(x.Dim(0)*x.Dim(1), x.Dim(2))
}

// Infer flattens via an arena-recycled header view (no data copy, no cached
// shape).
func (f *TimeFlatten) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	if x.Rank() != 3 {
		panic(fmt.Sprintf("nn: TimeFlatten input %v, want rank 3", x.Shape))
	}
	return arenaOf(ctx).Wrap(x.Data, x.Dim(0)*x.Dim(1), x.Dim(2))
}

// Backward restores the [T, B, H] shape.
func (f *TimeFlatten) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	return dy.Reshape(f.inShape...)
}

// Params returns nil; TimeFlatten has no parameters.
func (f *TimeFlatten) Params() []*Param { return nil }
