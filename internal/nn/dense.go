package nn

import (
	"fmt"
	"math/rand"

	"modelslicing/internal/tensor"
)

// Dense is a fully-connected layer y = W·x + b with prefix slicing on both
// the input and output dimension (Section 3.1 of the paper). The weight is
// stored as [Out × In]; at slice rate r only the leading aOut rows and aIn
// columns participate, which realizes the gating variables of Equation 1
// with the partial order of Equation 2 at zero masking cost.
type Dense struct {
	In, Out int
	// InSpec and OutSpec control slicing of the two dimensions.
	InSpec, OutSpec SliceSpec
	// Rescale multiplies the pre-activation by In/activeIn so that the
	// output scale is stable as the fan-in shrinks. Used in stacks without
	// normalization layers (the paper's NNLM output layer rescaling).
	Rescale bool

	W *Param // [Out, In]
	B *Param // [Out], nil when built without bias

	// packs caches the per-width micro-panel packs of W for the GemmTB
	// orientation of the inference path: each active (aOut, aIn) prefix is
	// packed once (tensor.PackTB) and then served read-only to every worker.
	// Training invalidates it (see Forward).
	packs packCache

	// cached forward state
	x         *tensor.Tensor
	aIn, aOut int
	batch     int
	scale     float64
}

// NewDense constructs a Dense layer with He initialization.
func NewDense(in, out int, inSpec, outSpec SliceSpec, bias bool, rng *rand.Rand) *Dense {
	inSpec.Validate("Dense.In", in)
	outSpec.Validate("Dense.Out", out)
	d := &Dense{
		In: in, Out: out,
		InSpec: inSpec, OutSpec: outSpec,
		W: NewParam("dense.W", true, out, in),
	}
	tensor.InitHe(d.W.Value, in, rng)
	if bias {
		d.B = NewParam("dense.B", false, out)
	}
	return d
}

// Active returns the active (input, output) widths at slice rate r.
func (d *Dense) Active(r float64) (aIn, aOut int) {
	return d.InSpec.Active(r, d.In), d.OutSpec.Active(r, d.Out)
}

// Forward computes y[B × aOut] from x[B × aIn].
func (d *Dense) Forward(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	// Forward means training (or at least a path that may precede a weight
	// update): any cached inference packs would go stale, so drop them.
	d.packs.invalidate()
	r := ctx.EffRate()
	d.aIn, d.aOut = d.Active(r)
	if x.Rank() != 2 || x.Dim(1) != d.aIn {
		panic(fmt.Sprintf("nn: Dense.Forward input %v, want [B %d] at rate %v", x.Shape, d.aIn, r))
	}
	d.batch = x.Dim(0)
	d.x = x
	d.scale = 1
	if d.Rescale && d.aIn < d.In {
		d.scale = float64(d.In) / float64(d.aIn)
	}
	y := tensor.New(d.batch, d.aOut)
	// y += x · Wᵀ using the sliced prefix of W.
	tensor.GemmTB(d.batch, d.aOut, d.aIn, x.Data, d.aIn, d.W.Value.Data, d.In, y.Data, d.aOut)
	if d.scale != 1 {
		y.Scale(d.scale)
	}
	if d.B != nil {
		b := d.B.Value.Data
		for i := 0; i < d.batch; i++ {
			row := y.Row(i)
			for j := 0; j < d.aOut; j++ {
				row[j] += b[j]
			}
		}
	}
	return y
}

// Infer computes y[B × aOut] from x[B × aIn] on the read-only inference
// path: no state is cached, the sliced weight prefix is read in place, and
// the output comes from the context's arena. Rescaling and bias ride the
// GEMM epilogue — one pass over the output instead of three.
func (d *Dense) Infer(ctx *Context, x *tensor.Tensor) *tensor.Tensor {
	return d.inferFused(ctx, x, false)
}

// inferFused is Infer with an optionally fused trailing ReLU (used by the
// peephole fusion pass for Dense→ReLU chains). In the [B × aOut] output the
// output unit is the column index, so the bias is a per-column epilogue
// shift and the rescale factor is the uniform Alpha.
func (d *Dense) inferFused(ctx *Context, x *tensor.Tensor, relu bool) *tensor.Tensor {
	r := ctx.EffRate()
	aIn, aOut := d.Active(r)
	if x.Rank() != 2 || x.Dim(1) != aIn {
		panic(fmt.Sprintf("nn: Dense.Infer input %v, want [B %d] at rate %v", x.Shape, aIn, r))
	}
	batch := x.Dim(0)
	y := arenaOf(ctx).GetUninit(batch, aOut)
	ep := tensor.Epilogue{ReLU: relu}
	if d.Rescale && aIn < d.In {
		ep.Alpha = float64(d.In) / float64(aIn)
	}
	if d.B != nil {
		ep.ColShift = d.B.Value.Data
	}
	tier := ctx.EffTier()
	if usePack(ctx) && tensor.GemmTBPrefersPacked(batch, aOut, aIn) {
		k := packKey{aOut, aIn, packTierOf(tier)}
		pm := d.packs.lookup(k)
		if pm == nil {
			pm = d.packs.build(k, func() tensor.Packed {
				if k.tier == tensor.TierF32 {
					return tensor.PackTB32(aOut, aIn, d.W.Value.Data, d.In)
				}
				return tensor.PackTB(aOut, aIn, d.W.Value.Data, d.In)
			})
		}
		tensor.GemmTBPackedExT(tier, batch, aOut, aIn, x.Data, aIn, pm, y.Data, aOut, &ep)
		return y
	}
	tensor.GemmTBExT(tier, batch, aOut, aIn, x.Data, aIn, d.W.Value.Data, d.In, y.Data, aOut, &ep)
	return y
}

// packCacheBytes reports the resident per-width pack memory (see
// PackCacheBytes).
func (d *Dense) packCacheBytes() int64 { return d.packs.bytes() }

// packCacheTierBytes splits the resident pack memory by pack precision.
func (d *Dense) packCacheTierBytes() [tensor.NumTiers]int64 { return d.packs.bytesByTier() }

// Backward accumulates dW, dB and returns dx[B × aIn].
func (d *Dense) Backward(ctx *Context, dy *tensor.Tensor) *tensor.Tensor {
	if dy.Rank() != 2 || dy.Dim(0) != d.batch || dy.Dim(1) != d.aOut {
		panic(fmt.Sprintf("nn: Dense.Backward grad %v, want [%d %d]", dy.Shape, d.batch, d.aOut))
	}
	if d.B != nil {
		gb := d.B.Grad.Data
		for i := 0; i < d.batch; i++ {
			row := dy.Row(i)
			for j := 0; j < d.aOut; j++ {
				gb[j] += row[j]
			}
		}
	}
	// The rescale factor multiplies the W·x term only (bias added after),
	// so it scales both dW and dx but not dB.
	dyEff := dy
	if d.scale != 1 {
		dyEff = dy.Clone()
		dyEff.Scale(d.scale)
	}
	// dW[aOut × aIn] += dyᵀ · x
	tensor.GemmTA(d.aOut, d.aIn, d.batch, dyEff.Data, d.aOut, d.x.Data, d.aIn, d.W.Grad.Data, d.In)
	// dx[B × aIn] += dy · W
	dx := tensor.New(d.batch, d.aIn)
	tensor.Gemm(d.batch, d.aIn, d.aOut, dyEff.Data, d.aOut, d.W.Value.Data, d.In, dx.Data, d.aIn)
	return dx
}

// Params returns the learnable parameters.
func (d *Dense) Params() []*Param {
	if d.B == nil {
		return []*Param{d.W}
	}
	return []*Param{d.W, d.B}
}
