package nn

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/tensor"
)

func TestLSTMShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	l := NewLSTM(6, 8, Fixed(), Sliced(4), false, rng)
	x := randTensor(rng, 3, 2, 6)
	y := l.Forward(Eval(1), x)
	if y.Dim(0) != 3 || y.Dim(1) != 2 || y.Dim(2) != 8 {
		t.Fatalf("LSTM output shape %v", y.Shape)
	}
	y = l.Forward(Eval(0.5), x)
	if y.Dim(2) != 4 {
		t.Fatalf("sliced LSTM output width %d, want 4", y.Dim(2))
	}
}

func TestLSTMGradCheckFull(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	l := NewLSTM(5, 6, Fixed(), Sliced(2), false, rng)
	x := randTensor(rng, 3, 2, 5)
	if err := CheckGradients(l, Train(1, rng), x, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestLSTMGradCheckSliced(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	l := NewLSTM(8, 8, Sliced(4), Sliced(4), false, rng)
	for _, r := range []float64{0.25, 0.5, 0.75} {
		aIn, _ := l.Active(r)
		x := randTensor(rng, 2, 2, aIn)
		if err := CheckGradients(l, Train(r, rng), x, nil, 0); err != nil {
			t.Fatalf("rate %v: %v", r, err)
		}
	}
}

func TestLSTMGradCheckRescaled(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	l := NewLSTM(8, 8, Sliced(4), Sliced(4), true, rng)
	x := randTensor(rng, 2, 2, 4)
	if err := CheckGradients(l, Train(0.5, rng), x, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestLSTMForgetGateBiasInit(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	l := NewLSTM(4, 4, Fixed(), Fixed(), false, rng)
	for i := 0; i < 4; i++ {
		if l.B.Value.Data[4+i] != 1 {
			t.Fatal("forget gate bias not initialized to 1")
		}
		if l.B.Value.Data[i] != 0 {
			t.Fatal("input gate bias not zero")
		}
	}
}

// A sliced LSTM must compute exactly what a standalone LSTM with the prefix
// weights computes — the recurrent analogue of subnet extraction. Gate
// blocks must be sliced per gate, not as a contiguous 4H prefix.
func TestLSTMSlicePrefixEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	l := NewLSTM(8, 8, Sliced(4), Sliced(4), false, rng)
	r := 0.5
	aIn, aH := l.Active(r)
	x := randTensor(rng, 4, 2, aIn)
	y := l.Forward(Eval(r), x)

	small := NewLSTM(aIn, aH, Fixed(), Fixed(), false, rng)
	for k := 0; k < 4; k++ {
		for j := 0; j < aH; j++ {
			copy(small.Wx.Value.Row(k*aH+j), l.Wx.Value.Row(k*8 + j)[:aIn])
			copy(small.Wh.Value.Row(k*aH+j), l.Wh.Value.Row(k*8 + j)[:aH])
			small.B.Value.Data[k*aH+j] = l.B.Value.Data[k*8+j]
		}
	}
	ys := small.Forward(Eval(1), x)
	for i := range y.Data {
		if math.Abs(y.Data[i]-ys.Data[i]) > 1e-12 {
			t.Fatalf("sliced LSTM differs from extracted subnet at %d: %v vs %v", i, y.Data[i], ys.Data[i])
		}
	}
}

func TestRNNGradCheckFullAndSliced(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	r := NewRNN(6, 6, Sliced(3), Sliced(3), false, rng)
	x := randTensor(rng, 3, 2, 6)
	if err := CheckGradients(r, Train(1, rng), x, nil, 0); err != nil {
		t.Fatalf("full: %v", err)
	}
	x2 := randTensor(rng, 3, 2, 4)
	if err := CheckGradients(r, Train(2.0/3.0, rng), x2, nil, 0); err != nil {
		t.Fatalf("sliced: %v", err)
	}
}

func TestRNNGradCheckRescaled(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	r := NewRNN(6, 6, Sliced(3), Sliced(3), true, rng)
	x := randTensor(rng, 2, 2, 2)
	if err := CheckGradients(r, Train(1.0/3.0, rng), x, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestGRUGradCheckFull(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	g := NewGRU(5, 6, Fixed(), Sliced(2), false, rng)
	x := randTensor(rng, 3, 2, 5)
	if err := CheckGradients(g, Train(1, rng), x, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestGRUGradCheckSliced(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	g := NewGRU(8, 8, Sliced(4), Sliced(4), false, rng)
	for _, r := range []float64{0.25, 0.5, 0.75} {
		aIn, _ := g.Active(r)
		x := randTensor(rng, 2, 2, aIn)
		if err := CheckGradients(g, Train(r, rng), x, nil, 0); err != nil {
			t.Fatalf("rate %v: %v", r, err)
		}
	}
}

func TestGRUGradCheckRescaled(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	g := NewGRU(8, 8, Sliced(4), Sliced(4), true, rng)
	x := randTensor(rng, 2, 2, 4)
	if err := CheckGradients(g, Train(0.5, rng), x, nil, 0); err != nil {
		t.Fatal(err)
	}
}

func TestGRUShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	g := NewGRU(6, 8, Fixed(), Sliced(4), false, rng)
	x := randTensor(rng, 2, 3, 6)
	y := g.Forward(Eval(0.75), x)
	if y.Dim(0) != 2 || y.Dim(1) != 3 || y.Dim(2) != 6 {
		t.Fatalf("GRU output shape %v, want [2 3 6]", y.Shape)
	}
}

func TestRecurrentStateIsZeroInitialized(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	l := NewLSTM(4, 4, Fixed(), Fixed(), false, rng)
	x := tensor.New(1, 1, 4) // zero input
	y := l.Forward(Eval(1), x)
	// With zero input and zero initial state, preactivations reduce to the
	// biases; the output must be deterministic and identical across calls.
	y2 := l.Forward(Eval(1), x)
	for i := range y.Data {
		if y.Data[i] != y2.Data[i] {
			t.Fatal("LSTM forward is not deterministic for fixed input")
		}
	}
}
