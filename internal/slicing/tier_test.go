package slicing

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"modelslicing/internal/tensor"
)

// End-to-end accuracy gates for the fast tiers, pinned against the exact
// unpacked oracle at every deployable rate. Measured deviations on the
// miniCNN sit around 1e-15 (fma) and 1e-6 (f32); the gates leave two to
// three orders of headroom while still catching a broken accuracy budget.
const (
	fmaSharedTol = 1e-9
	f32SharedTol = 1e-4
)

// TestSharedTierAccuracyGates pins the tier contract end to end: a Shared
// serving on a fast tier must stay within the tier's pinned tolerance of the
// exact engine at every deployable rate.
func TestSharedTierAccuracyGates(t *testing.T) {
	rng := rand.New(rand.NewSource(700))
	rates := NewRateList(0.25, 4)
	model := miniCNN(rng)

	oracle := NewShared(model, rates)
	oracle.SetTier(tensor.TierExact)
	oracle.SetPacked(false)

	for _, tc := range []struct {
		tier tensor.EngineTier
		tol  float64
	}{{tensor.TierFMA, fmaSharedTol}, {tensor.TierF32, f32SharedTol}} {
		fast := NewShared(model, rates)
		fast.SetTier(tc.tier)
		arenaF := tensor.NewArena()
		arenaO := tensor.NewArena()
		for _, r := range rates {
			x := randInput(rng, 4, 3, 8, 8)
			got := fast.Infer(r, x, arenaF)
			want := oracle.Infer(r, x, arenaO)
			if !got.SameShape(want) {
				t.Fatalf("tier %v rate %v: shape %v vs %v", tc.tier, r, got.Shape, want.Shape)
			}
			maxD, maxW := 0.0, 0.0
			for i := range want.Data {
				maxD = math.Max(maxD, math.Abs(got.Data[i]-want.Data[i]))
				maxW = math.Max(maxW, math.Abs(want.Data[i]))
			}
			if maxD > tc.tol*math.Max(maxW, 1) {
				t.Fatalf("tier %v rate %v: rel error %.3g exceeds the %g gate",
					tc.tier, r, maxD/math.Max(maxW, 1), tc.tol)
			}
			arenaF.Reset()
			arenaO.Reset()
		}
		st := fast.Stats()
		if st.Tier != tc.tier {
			t.Fatalf("Stats().Tier = %v, want %v", st.Tier, tc.tier)
		}
	}

	// After serving exact/fma (shared f64 packs) and f32 (own packs), the
	// per-precision split must account for every resident byte.
	byTier := oracle.PackCacheTierBytes()
	if byTier[tensor.TierExact] == 0 || byTier[tensor.TierF32] == 0 {
		t.Fatalf("expected both pack precisions resident, got %v", byTier)
	}
	if sum := byTier[tensor.TierExact] + byTier[tensor.TierFMA] + byTier[tensor.TierF32]; sum != oracle.PackCacheBytes() {
		t.Fatalf("tier buckets sum to %d, PackCacheBytes = %d", sum, oracle.PackCacheBytes())
	}
}

// TestSharedTierPackRace hammers the (width, tier) pack-build race: workers
// serving all three tiers hit a fresh model simultaneously, so first touches
// of every (width, precision) key race into the builders (run with -race in
// CI). Every tier is deterministic, so all workers must agree bit-for-bit
// per (tier, rate).
func TestSharedTierPackRace(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	rates := NewRateList(0.25, 4)
	model := miniCNN(rng)

	tiers := []tensor.EngineTier{tensor.TierExact, tensor.TierFMA, tensor.TierF32}
	views := make([]*Shared, len(tiers))
	for i, tier := range tiers {
		views[i] = NewShared(model, rates) // same model: the caches are shared
		views[i].SetTier(tier)
	}
	inputs := make([]*tensor.Tensor, len(rates))
	for i := range rates {
		inputs[i] = randInput(rng, 2, 3, 8, 8)
	}

	const workers = 9
	outs := make([][]*tensor.Tensor, workers) // worker → tier*rate
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arena := tensor.NewArena()
			outs[w] = make([]*tensor.Tensor, len(tiers)*len(rates))
			// Stagger tier order across workers so distinct precisions of
			// the same width race each other, not just same-key builders.
			for ti := range tiers {
				v := views[(w+ti)%len(tiers)]
				for ri, r := range rates {
					y := v.Infer(r, inputs[ri], arena).Clone()
					outs[w][(w+ti)%len(tiers)*len(rates)+ri] = y
					arena.Reset()
				}
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for k := range outs[0] {
			a, b := outs[0][k], outs[w][k]
			for i := range a.Data {
				if a.Data[i] != b.Data[i] {
					t.Fatalf("worker %d diverged from worker 0 on slot %d", w, k)
				}
			}
		}
	}
}

// TestSharedTierZeroAlloc pins the steady-state serving contract per tier:
// once packs are warm, Infer allocates nothing at any rate on any tier.
func TestSharedTierZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool drops items by design; alloc counts are meaningless")
	}
	rng := rand.New(rand.NewSource(702))
	rates := NewRateList(0.25, 4)
	shared := NewShared(miniCNN(rng), rates)
	arena := tensor.NewArena()
	for _, tier := range []tensor.EngineTier{tensor.TierExact, tensor.TierFMA, tensor.TierF32} {
		shared.SetTier(tier)
		for _, r := range rates {
			x := randInput(rng, 4, 3, 8, 8)
			pass := func() {
				shared.Infer(r, x, arena)
				arena.Reset()
			}
			pass() // warm: lazy pack build and arena growth allocate
			pass()
			if allocs := testing.AllocsPerRun(20, pass); allocs > 0 {
				t.Fatalf("tier %v rate %v: %v allocs per pass, want 0", tier, r, allocs)
			}
		}
	}
}
