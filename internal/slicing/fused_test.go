package slicing

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
)

// TestSharedFusedMatchesUnfusedOracle is the end-to-end equivalence bound of
// the fused serving path: for every model family and every deployable rate,
// Shared.Infer (peephole-fused: epilogue GEMMs, folded BatchNorm, fused
// activations, whole-batch conv lowering) must agree with the unfused layer
// graph (Shared.InferUnfused) to ≤1e-12.
func TestSharedFusedMatchesUnfusedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	rates := NewRateList(0.25, 4)

	// Conv→SwitchableBatchNorm→ReLU stack with trained per-width statistics:
	// the case where folding actually changes the arithmetic path.
	sbnNet := nn.NewSequential(
		nn.NewConv2D(3, 8, 3, 3, 1, 1, nn.Fixed(), nn.Sliced(4), true, rng),
		nn.NewSwitchableBatchNorm(8, nn.Sliced(4), len(rates)),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D(8, 8, 3, 3, 1, 1, nn.Sliced(4), nn.Sliced(4), false, rng),
		nn.NewSwitchableBatchNorm(8, nn.Sliced(4), len(rates)),
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		nn.NewDense(8, 4, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	for i, r := range rates {
		ctx := &nn.Context{Training: true, Rate: r, WidthIdx: i, RNG: rng}
		sbnNet.Forward(ctx, randInput(rng, 4, 3, 8, 8))
	}

	cases := []struct {
		name  string
		model nn.Layer
		input func() *tensor.Tensor
	}{
		{"cnn-groupnorm", miniCNN(rng), func() *tensor.Tensor { return randInput(rng, 3, 3, 8, 8) }},
		{"cnn-switchable-bn", sbnNet, func() *tensor.Tensor { return randInput(rng, 3, 3, 8, 8) }},
	}
	for _, tc := range cases {
		shared := NewShared(tc.model, rates)
		shared.SetTier(tensor.TierExact) // the 1e-12 fusion oracle assumes the exact tier
		arena := tensor.NewArena()
		oracleArena := tensor.NewArena()
		for _, r := range rates {
			x := tc.input()
			got := shared.Infer(r, x, arena)
			want := shared.InferUnfused(r, x, oracleArena)
			if !got.SameShape(want) {
				t.Fatalf("%s rate %v: fused shape %v, unfused %v", tc.name, r, got.Shape, want.Shape)
			}
			for i := range want.Data {
				if d := math.Abs(got.Data[i] - want.Data[i]); d > 1e-12 {
					t.Fatalf("%s rate %v: fused path differs at %d: %v vs %v (|Δ|=%g)",
						tc.name, r, i, got.Data[i], want.Data[i], d)
				}
			}
			arena.Reset()
			oracleArena.Reset()
		}
	}
}

// TestSharedFusedAllocsFree pins the serving acceptance criterion: the fused
// zero-copy path stays allocation-free in steady state under an arena.
func TestSharedFusedAllocsFree(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	rates := NewRateList(0.25, 4)
	shared := NewShared(miniCNN(rng), rates)
	arena := tensor.NewArena()
	x := randInput(rng, 4, 3, 8, 8)
	pass := func() {
		shared.Infer(1, x, arena)
		arena.Reset()
	}
	pass()
	pass()
	if allocs := testing.AllocsPerRun(50, pass); allocs > 0 {
		t.Fatalf("fused Shared.Infer allocates %v times per pass, want 0", allocs)
	}
}
