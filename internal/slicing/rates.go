// Package slicing implements the model-slicing training scheme of Cai et al.
// (VLDB 2019): slice-rate lists, the slice-rate scheduling schemes of
// Section 3.4 (Equation 8), the Algorithm-1 training step that accumulates
// gradients across scheduled sub-networks, Equation-3 budget-to-rate
// resolution, and standalone subnet extraction for deployment.
package slicing

import (
	"fmt"
	"math"
	"sort"
)

// RateList is the ordered (ascending) list of valid slice rates
// (r₁, …, r_G) of Section 3.4; the last entry must be 1 (the full network)
// and the first is the lower bound r₁ = lb of Section 5.1.3.
type RateList []float64

// NewRateList builds the rate list used throughout the paper's experiments:
// rates from lb to 1.0 in steps of 1/granularity (granularity 4, 8 or 16 —
// "in every 1/4, 1/8, 1/16, the slice granularity").
func NewRateList(lb float64, granularity int) RateList {
	if granularity <= 0 {
		panic(fmt.Sprintf("slicing: granularity must be positive, got %d", granularity))
	}
	if lb <= 0 || lb > 1 {
		panic(fmt.Sprintf("slicing: lower bound %v out of (0,1]", lb))
	}
	var rates RateList
	for i := 1; i <= granularity; i++ {
		r := float64(i) / float64(granularity)
		if r+1e-12 >= lb {
			rates = append(rates, r)
		}
	}
	if len(rates) == 0 || rates[len(rates)-1] != 1 {
		panic("slicing: rate list must end at 1.0")
	}
	return rates
}

// Check reports whether the list is non-empty, ascending, within (0,1] and
// ends at the full network.
func (l RateList) Check() error {
	if len(l) == 0 {
		return fmt.Errorf("slicing: empty rate list")
	}
	for i, r := range l {
		if r <= 0 || r > 1 {
			return fmt.Errorf("slicing: rate %v out of (0,1]", r)
		}
		if i > 0 && l[i-1] >= r {
			return fmt.Errorf("slicing: rate list not ascending at %d: %v", i, l)
		}
	}
	if l[len(l)-1] != 1 {
		return fmt.Errorf("slicing: rate list must end at 1.0")
	}
	return nil
}

// Validate is Check that panics (for rate lists known to be well-formed).
func (l RateList) Validate() {
	if err := l.Check(); err != nil {
		panic(err)
	}
}

// Min returns the lower bound r₁.
func (l RateList) Min() float64 { return l[0] }

// Max returns the largest rate (1.0 for a valid list).
func (l RateList) Max() float64 { return l[len(l)-1] }

// Index returns the position of rate r, or an error when r is not a member.
func (l RateList) Index(r float64) (int, error) {
	for i, v := range l {
		if math.Abs(v-r) < 1e-9 {
			return i, nil
		}
	}
	return 0, fmt.Errorf("slicing: rate %v not in list %v", r, l)
}

// MustIndex is Index that panics on error (for rates known to be members).
func (l RateList) MustIndex(r float64) int {
	i, err := l.Index(r)
	if err != nil {
		panic(err)
	}
	return i
}

// Nearest returns the member closest to r (ties resolve downward).
func (l RateList) Nearest(r float64) float64 {
	best, bd := l[0], math.Abs(l[0]-r)
	for _, v := range l[1:] {
		if d := math.Abs(v - r); d < bd {
			best, bd = v, d
		}
	}
	return best
}

// LargestWithin returns the largest member r with cost(r) ≤ budget, where
// cost is any monotone cost function (typically FLOPs from internal/cost).
// It falls back to the smallest rate when even that exceeds the budget, and
// reports whether the budget was satisfiable.
func (l RateList) LargestWithin(budget float64, cost func(r float64) float64) (float64, bool) {
	for i := len(l) - 1; i >= 0; i-- {
		if cost(l[i]) <= budget {
			return l[i], true
		}
	}
	return l[0], false
}

// BudgetRate implements Equation 3: the largest rate with r ≤ √(Ct/C0),
// snapped down to a member of the list (computation is ≈ quadratic in r).
func (l RateList) BudgetRate(ct, c0 float64) float64 {
	if c0 <= 0 {
		panic("slicing: full cost must be positive")
	}
	rMax := math.Sqrt(ct / c0)
	if rMax >= 1 {
		return 1
	}
	// Largest member ≤ rMax; fall back to the lower bound.
	idx := sort.SearchFloat64s(l, rMax+1e-12)
	if idx == 0 {
		return l[0]
	}
	return l[idx-1]
}
