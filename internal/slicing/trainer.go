package slicing

import (
	"fmt"
	"math/rand"

	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
	"modelslicing/internal/train"
)

// Trainer runs Algorithm 1 of the paper: per batch it draws the slice-rate
// list Lt from the scheduling scheme, forwards and backwards the
// corresponding sub-networks on the shared parameters, accumulates their
// gradients, and applies a single optimizer update.
type Trainer struct {
	Model nn.Layer
	Rates RateList
	Sched Scheduler
	Opt   *train.SGD
	// ClipNorm, when positive, clips the global gradient norm before the
	// update (used by the NNLM recipe).
	ClipNorm float64
	RNG      *rand.Rand
}

// NewTrainer constructs a trainer; the rate list is validated once here.
func NewTrainer(model nn.Layer, rates RateList, sched Scheduler, opt *train.SGD, rng *rand.Rand) *Trainer {
	rates.Validate()
	// Copy-on-train: a model bound over a read-only checkpoint mapping
	// (persist.Checkpoint.Bind) must own its parameters before the first
	// optimizer update — or BatchNorm running-stat write — touches them.
	for _, p := range model.Params() {
		p.EnsureMutable()
	}
	return &Trainer{Model: model, Rates: rates, Sched: sched, Opt: opt, RNG: rng}
}

// StepStats reports the losses of one Algorithm-1 step.
type StepStats struct {
	// Rates holds the scheduled list Lt in training order.
	Rates []float64
	// Losses holds the sub-network loss for each scheduled rate.
	Losses []float64
}

// MeanLoss returns the mean loss across the scheduled sub-networks.
func (s StepStats) MeanLoss() float64 {
	if len(s.Losses) == 0 {
		return 0
	}
	sum := 0.0
	for _, l := range s.Losses {
		sum += l
	}
	return sum / float64(len(s.Losses))
}

// widthIdx maps a scheduled rate to its position in the rate list (for
// layers that keep per-width state); unlisted rates map to 0.
func (t *Trainer) widthIdx(r float64) int {
	if i, err := t.Rates.Index(r); err == nil {
		return i
	}
	return 0
}

// Step performs one training step on the batch.
func (t *Trainer) Step(b train.Batch) StepStats {
	lt := t.Sched.Next(t.RNG)
	if len(lt) == 0 {
		panic("slicing: scheduler returned an empty rate list")
	}
	stats := StepStats{Rates: lt}
	for _, r := range lt {
		ctx := &nn.Context{Training: true, Rate: r, WidthIdx: t.widthIdx(r), RNG: t.RNG}
		logits := t.Model.Forward(ctx, b.X)
		loss, dy := nn.SoftmaxCrossEntropy(logits, b.Labels)
		t.Model.Backward(ctx, dy)
		stats.Losses = append(stats.Losses, loss)
	}
	params := t.Model.Params()
	// Algorithm 1 accumulates sub-network gradients; we normalize the sum by
	// |Lt| (equivalently, optimize the mean of the sub-network losses) so
	// the effective step size does not grow with the number of scheduled
	// subnets and one learning rate works across scheduling schemes.
	if n := len(lt); n > 1 {
		inv := 1 / float64(n)
		for _, p := range params {
			p.Grad.Scale(inv)
		}
	}
	if t.ClipNorm > 0 {
		train.ClipGradNorm(params, t.ClipNorm)
	}
	t.Opt.Step(params)
	return stats
}

// Epoch runs one pass over the batches and returns the mean step loss.
func (t *Trainer) Epoch(batches []train.Batch) float64 {
	if len(batches) == 0 {
		return 0
	}
	total := 0.0
	for _, b := range batches {
		total += t.Step(b).MeanLoss()
	}
	return total / float64(len(batches))
}

// Predict runs an inference pass at slice rate r and returns the logits.
func Predict(model nn.Layer, rates RateList, r float64, x *tensor.Tensor) *tensor.Tensor {
	idx := 0
	if i, err := rates.Index(r); err == nil {
		idx = i
	}
	ctx := &nn.Context{Training: false, Rate: r, WidthIdx: idx}
	return model.Forward(ctx, x)
}

// EvaluateAll evaluates the model at every rate in the list and returns the
// results in rate order — one row of Tables 2 and 4.
func EvaluateAll(model nn.Layer, rates RateList, batches []train.Batch) []train.EvalResult {
	out := make([]train.EvalResult, len(rates))
	for i, r := range rates {
		out[i] = train.Evaluate(model, r, i, batches)
	}
	return out
}

// String renders a rate list compactly for reports.
func (l RateList) String() string {
	s := "["
	for i, r := range l {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.4g", r)
	}
	return s + "]"
}
