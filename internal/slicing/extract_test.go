package slicing

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/cost"
	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
)

func randInput(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func miniCNN(rng *rand.Rand) *nn.Sequential {
	return nn.NewSequential(
		nn.NewConv2D(3, 8, 3, 3, 1, 1, nn.Fixed(), nn.Sliced(4), false, rng),
		nn.NewGroupNorm(8, 4, nn.Sliced(4), 1e-5),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D(8, 8, 3, 3, 1, 1, nn.Sliced(4), nn.Sliced(4), false, rng),
		nn.NewGroupNorm(8, 4, nn.Sliced(4), 1e-5),
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		nn.NewDense(8, 4, nn.Sliced(4), nn.Fixed(), true, rng),
	)
}

func TestExtractCNNMatchesSlicedParent(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	model := miniCNN(rng)
	rates := NewRateList(0.25, 4)
	for _, r := range rates {
		sub := Extract(model, r, rates)
		x := randInput(rng, 2, 3, 8, 8)
		want := Predict(model, rates, r, x)
		got := sub.Forward(nn.Eval(1), x)
		if !want.SameShape(got) {
			t.Fatalf("rate %v: shape %v vs %v", r, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if math.Abs(want.Data[i]-got.Data[i]) > 1e-10 {
				t.Fatalf("rate %v: extracted subnet differs at %d: %v vs %v",
					r, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestExtractReducesParameterCount(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	model := miniCNN(rng)
	rates := NewRateList(0.25, 4)
	sub := Extract(model, 0.5, rates)
	fullP, _ := cost.Measure(model, []int{3, 8, 8}, 1)
	subP, _ := cost.Measure(sub, []int{3, 8, 8}, 1)
	if subP.Params >= fullP.Params {
		t.Fatalf("extracted subnet params %d not smaller than full %d", subP.Params, fullP.Params)
	}
	// The sliced parent at rate 0.5 must report the same active params.
	slicedP, _ := cost.Measure(model, []int{3, 8, 8}, 0.5)
	if subP.Params != slicedP.Params {
		t.Fatalf("extracted params %d != sliced measurement %d", subP.Params, slicedP.Params)
	}
}

func TestExtractLSTMStackWithRescale(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	model := nn.NewSequential(
		nn.NewEmbedding(20, 8, rng),
		nn.NewLSTM(8, 8, nn.Fixed(), nn.Sliced(4), true, rng),
		nn.NewLSTM(8, 8, nn.Sliced(4), nn.Sliced(4), true, rng),
		nn.NewTimeFlatten(),
		nn.NewDense(8, 20, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	// Make the decoder rescale like the paper's NNLM output layer.
	model.Layers[4].(*nn.Dense).Rescale = true
	rates := NewRateList(0.25, 4)
	ids := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2) // T=3, B=2
	for _, r := range rates {
		want := Predict(model, rates, r, ids)
		sub := Extract(model, r, rates)
		got := sub.Forward(nn.Eval(1), ids)
		for i := range want.Data {
			if math.Abs(want.Data[i]-got.Data[i]) > 1e-9 {
				t.Fatalf("rate %v: LSTM extraction differs at %d: %v vs %v",
					r, i, got.Data[i], want.Data[i])
			}
		}
	}
}

func TestExtractGRUAndRNN(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	for name, model := range map[string]*nn.Sequential{
		"gru": nn.NewSequential(
			nn.NewGRU(8, 8, nn.Fixed(), nn.Sliced(4), false, rng),
			nn.NewTimeFlatten(),
			nn.NewDense(8, 5, nn.Sliced(4), nn.Fixed(), true, rng),
		),
		"rnn": nn.NewSequential(
			nn.NewRNN(8, 8, nn.Fixed(), nn.Sliced(4), false, rng),
			nn.NewTimeFlatten(),
			nn.NewDense(8, 5, nn.Sliced(4), nn.Fixed(), true, rng),
		),
	} {
		rates := NewRateList(0.25, 4)
		x := randInput(rng, 3, 2, 8)
		for _, r := range rates {
			want := Predict(model, rates, r, x)
			sub := Extract(model, r, rates)
			got := sub.Forward(nn.Eval(1), x)
			for i := range want.Data {
				if math.Abs(want.Data[i]-got.Data[i]) > 1e-9 {
					t.Fatalf("%s rate %v: extraction differs at %d", name, r, i)
				}
			}
		}
	}
}

func TestExtractResidualBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	body := nn.NewSequential(
		nn.NewGroupNorm(8, 4, nn.Sliced(4), 1e-5),
		nn.NewReLU(),
		nn.NewConv2D(8, 8, 3, 3, 1, 1, nn.Sliced(4), nn.Sliced(4), false, rng),
	)
	model := nn.NewSequential(
		nn.NewConv2D(3, 8, 3, 3, 1, 1, nn.Fixed(), nn.Sliced(4), false, rng),
		nn.NewResidual(body, nil),
		nn.NewGlobalAvgPool(),
		nn.NewDense(8, 3, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	rates := NewRateList(0.25, 4)
	x := randInput(rng, 2, 3, 6, 6)
	for _, r := range rates {
		want := Predict(model, rates, r, x)
		got := Extract(model, r, rates).Forward(nn.Eval(1), x)
		for i := range want.Data {
			if math.Abs(want.Data[i]-got.Data[i]) > 1e-10 {
				t.Fatalf("rate %v: residual extraction differs", r)
			}
		}
	}
}

func TestExtractBatchNormUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	bn := nn.NewBatchNorm(8, nn.Sliced(4))
	// Push the running stats away from the default.
	for i := 0; i < 20; i++ {
		x := randInput(rng, 8, 8)
		x.Scale(3)
		bn.Forward(nn.Train(1, rng), x)
	}
	rates := NewRateList(0.25, 4)
	sub := Extract(bn, 0.5, rates).(*nn.BatchNorm)
	x := randInput(rng, 4, 4)
	want := bn.Forward(nn.Eval(0.5), x)
	got := sub.Forward(nn.Eval(1), x)
	for i := range want.Data {
		if math.Abs(want.Data[i]-got.Data[i]) > 1e-12 {
			t.Fatal("extracted batch-norm differs from sliced parent")
		}
	}
}

func TestExtractUnknownLayerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown layer type")
		}
	}()
	Extract(unknownLayer{}, 0.5, NewRateList(0.25, 4))
}

type unknownLayer struct{}

func (unknownLayer) Forward(*nn.Context, *tensor.Tensor) *tensor.Tensor  { return nil }
func (unknownLayer) Backward(*nn.Context, *tensor.Tensor) *tensor.Tensor { return nil }
func (unknownLayer) Params() []*nn.Param                                 { return nil }
