package slicing

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/nn"
	"modelslicing/internal/train"
)

// Extraction from a SlimmableNet-style model must pick the batch-norm set
// belonging to the deployed width.
func TestExtractSwitchableBatchNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	rates := NewRateList(0.25, 4)
	model := nn.NewSequential(
		nn.NewConv2D(3, 8, 3, 3, 1, 1, nn.Fixed(), nn.Sliced(4), false, rng),
		nn.NewSwitchableBatchNorm(8, nn.Sliced(4), len(rates)),
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		nn.NewDense(8, 4, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	// Train-mode passes at each width so every BN set owns distinct stats.
	for i, r := range rates {
		x := randInput(rng, 4, 3, 6, 6)
		ctx := &nn.Context{Training: true, Rate: r, WidthIdx: i, RNG: rng}
		model.Forward(ctx, x)
	}
	for i, r := range rates {
		x := randInput(rng, 2, 3, 6, 6)
		ctx := &nn.Context{Training: false, Rate: r, WidthIdx: i}
		want := model.Forward(ctx, x)
		got := Extract(model, r, rates).Forward(nn.Eval(1), x)
		for j := range want.Data {
			if math.Abs(want.Data[j]-got.Data[j]) > 1e-10 {
				t.Fatalf("rate %v: switchable-BN extraction differs at %d", r, j)
			}
		}
	}
}

func TestStepStatsMeanLoss(t *testing.T) {
	s := StepStats{Losses: []float64{1, 2, 3}}
	if s.MeanLoss() != 2 {
		t.Fatalf("mean loss %v", s.MeanLoss())
	}
	if (StepStats{}).MeanLoss() != 0 {
		t.Fatal("empty stats must have zero mean loss")
	}
}

func TestTrainerWidthIdxFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	rates := NewRateList(0.25, 4)
	tr := NewTrainer(slicedMLP(rng), rates, Fixed{Rate: 1}, nil, rng)
	if tr.widthIdx(0.75) != 2 {
		t.Fatalf("widthIdx(0.75) = %d", tr.widthIdx(0.75))
	}
	if tr.widthIdx(0.33) != 0 {
		t.Fatal("unlisted rates must map to width index 0")
	}
}

func TestTrainerGradientAveraging(t *testing.T) {
	// A static schedule of K identical rates must produce exactly the same
	// update as a single pass at that rate (the 1/|Lt| normalization).
	rngA := rand.New(rand.NewSource(302))
	a := slicedMLP(rngA)
	rngB := rand.New(rand.NewSource(302))
	b := slicedMLP(rngB)
	batch := twoBlobs(16, rand.New(rand.NewSource(303)))[0]

	rates := NewRateList(0.25, 4)
	sgdA := train.NewSGD(0.1, 0, 0)
	trA := NewTrainer(a, rates, Static{Rates: RateList{1, 1, 1}}, sgdA, rngA)
	trA.Step(batch)
	sgdB := train.NewSGD(0.1, 0, 0)
	trB := NewTrainer(b, rates, Fixed{Rate: 1}, sgdB, rngB)
	trB.Step(batch)

	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Value.Data {
			if math.Abs(pa[i].Value.Data[j]-pb[i].Value.Data[j]) > 1e-12 {
				t.Fatalf("averaged triple pass differs from single pass at param %d elem %d", i, j)
			}
		}
	}
}
