package slicing

import (
	"sync"

	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
)

// Shared serves every slice rate from one read-only parent weight set — the
// zero-copy alternative to deploying Extract-ed subnet copies. Because the
// GEMM kernels take leading dimensions, slicing at rate r reads the leading
// prefix of each parent weight buffer in place; nothing is materialized per
// rate, so serving G rates from W workers costs O(params) memory instead of
// the O(W·G·params) of per-worker Extract replica sets. Output rescaling
// (Dense/RNN Rescale) is applied on the activations at inference time, which
// computes the same function the Extract path bakes into its copied weights.
//
// A Shared is safe for concurrent use: the inference path (nn.Infer) never
// writes to the model, and each call's activations come from the caller's
// arena. Extract remains the right tool for exporting a standalone small
// model out of the trained parent (Section 3.1's deployment story); Shared
// is the right tool for serving many rates live from one process.
type Shared struct {
	model nn.Layer
	// fused is the inference-optimized peephole-fused view of model
	// (nn.Fuse): Conv→BN(→ReLU) chains collapse into epilogue GEMMs with
	// the SwitchableBatchNorm running statistics folded per width into
	// O(widths·channels) scale/shift vectors, Dense→ReLU and Norm→ReLU
	// chains into single passes. It shares the parent's weight buffers, so
	// slicing still reads prefix views in place.
	fused nn.Layer
	rates RateList
	// noPack pins every pass to the unpacked GEMM engine (benchmark escape
	// hatch and A/B oracle). Default false: weight-bearing layers lazily
	// build one micro-panel pack per active width — under a once-per-width
	// lock, then lock-free and read-only for all server workers — so serving
	// memory stays O(params + packs), with packs reported by PackCacheBytes.
	noPack bool
	// tier selects the GEMM engine tier every inference pass runs at
	// (tensor/tier.go): exact by default, fma or f32 when the operator
	// accepts the tier's pinned accuracy budget for its throughput.
	tier tensor.EngineTier
}

// NewShared wraps a trained parent model and its rate list for zero-copy
// multi-rate inference. The model must not be trained (or otherwise mutated)
// while the Shared is in use — in particular, the fused serving view bakes
// BatchNorm running statistics at construction time.
func NewShared(model nn.Layer, rates RateList) *Shared {
	rates.Validate()
	return &Shared{model: model, fused: nn.Fuse(model), rates: rates, tier: tensor.TierFromEnv()}
}

// Rates returns the deployable slice-rate list.
func (s *Shared) Rates() RateList { return s.rates }

// Model returns the underlying parent network.
func (s *Shared) Model() nn.Layer { return s.model }

// SetPacked toggles the persistent packed-weight GEMM path (on by default).
// Disabling it forces every pass through the unpacked engine — the A/B
// oracle for the packed path and the msbench -packed=false escape hatch.
// Call before serving; the flag is read concurrently by inference workers.
func (s *Shared) SetPacked(on bool) { s.noPack = !on }

// SetTier selects the GEMM engine tier for every subsequent inference pass.
// The default comes from MS_ENGINE_TIER at construction (exact when unset or
// on hosts without FMA). Call before serving; like SetPacked, the value is
// read concurrently by inference workers. Switching tiers keeps already-built
// packs — the (width, tier) cache key isolates the tiers' pack precisions.
func (s *Shared) SetTier(t tensor.EngineTier) { s.tier = t }

// Tier returns the engine tier inference passes run at.
func (s *Shared) Tier() tensor.EngineTier { return s.tier }

// PackCacheBytes reports the resident per-width weight-pack memory this
// Shared's model is holding — the O(packs) term of the serving memory story,
// exposed per rate by msbench and as a gauge on the server's /metrics.
func (s *Shared) PackCacheBytes() int64 { return nn.PackCacheBytes(s.model) }

// PackCacheTierBytes splits PackCacheBytes by pack precision (index
// tensor.TierExact: f64 panels shared by the exact and fma engines; index
// tensor.TierF32: scaled-float32 panels).
func (s *Shared) PackCacheTierBytes() [tensor.NumTiers]int64 {
	return nn.PackCacheTierBytes(s.model)
}

// EngineStats summarizes the shared engine's resource posture for the
// observability layer: resident pack memory (total and split by pack
// precision), whether the packed GEMM path is active, the engine tier, and
// how many rates the one weight set is serving.
type EngineStats struct {
	PackCacheBytes     int64
	PackCacheTierBytes [tensor.NumTiers]int64
	Packed             bool
	Tier               tensor.EngineTier
	Rates              int
}

// Stats snapshots the engine-level counters the serving metrics report.
func (s *Shared) Stats() EngineStats {
	return EngineStats{
		PackCacheBytes:     s.PackCacheBytes(),
		PackCacheTierBytes: s.PackCacheTierBytes(),
		Packed:             !s.noPack,
		Tier:               s.tier,
		Rates:              len(s.rates),
	}
}

// ctxPool recycles inference contexts so a steady-state Shared.Infer call
// allocates nothing (the context escapes into the Layer interface call and
// would otherwise cost one heap allocation per pass).
var ctxPool = sync.Pool{New: func() any { return &nn.Context{} }}

// Infer runs one inference pass at slice rate r through the fused serving
// view, drawing activations from arena (which may be nil for heap
// allocation). The returned tensor's storage is owned by the arena and is
// valid until the caller resets it. Concurrent callers must use distinct
// arenas.
func (s *Shared) Infer(r float64, x *tensor.Tensor, arena *tensor.Arena) *tensor.Tensor {
	return s.infer(s.fused, r, x, arena)
}

// InferUnfused runs the same pass through the original, unfused layer graph.
// It is the equivalence oracle for the fused path: outputs agree with Infer
// to ≤1e-12 at every rate (bit-identical except where BatchNorm folding
// refactors the arithmetic).
func (s *Shared) InferUnfused(r float64, x *tensor.Tensor, arena *tensor.Arena) *tensor.Tensor {
	return s.infer(s.model, r, x, arena)
}

func (s *Shared) infer(model nn.Layer, r float64, x *tensor.Tensor, arena *tensor.Arena) *tensor.Tensor {
	idx := 0
	if i, err := s.rates.Index(r); err == nil {
		idx = i
	}
	ctx := ctxPool.Get().(*nn.Context)
	*ctx = nn.Context{Rate: r, WidthIdx: idx, Arena: arena, NoPack: s.noPack, Tier: s.tier}
	y := nn.Infer(model, ctx, x)
	ctxPool.Put(ctx)
	return y
}
