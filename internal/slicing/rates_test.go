package slicing

import (
	"math"
	"testing"
)

func TestNewRateListGranularity(t *testing.T) {
	l := NewRateList(0.375, 8)
	want := []float64{0.375, 0.5, 0.625, 0.75, 0.875, 1.0}
	if len(l) != len(want) {
		t.Fatalf("rate list %v, want %v", l, want)
	}
	for i := range want {
		if math.Abs(l[i]-want[i]) > 1e-12 {
			t.Fatalf("rate list %v, want %v", l, want)
		}
	}
	l4 := NewRateList(0.25, 4)
	if len(l4) != 4 || l4[0] != 0.25 || l4[3] != 1.0 {
		t.Fatalf("quarter list %v", l4)
	}
	l16 := NewRateList(0.25, 16)
	if len(l16) != 13 {
		t.Fatalf("1/16 granularity list has %d rates, want 13", len(l16))
	}
}

func TestNewRateListRejectsBadArgs(t *testing.T) {
	for _, fn := range []func(){
		func() { NewRateList(0, 4) },
		func() { NewRateList(1.5, 4) },
		func() { NewRateList(0.5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestRateListValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-ascending list")
		}
	}()
	RateList{0.5, 0.25, 1.0}.Validate()
}

func TestRateListIndexAndNearest(t *testing.T) {
	l := NewRateList(0.25, 4)
	if i := l.MustIndex(0.75); i != 2 {
		t.Fatalf("index of 0.75 = %d", i)
	}
	if _, err := l.Index(0.33); err == nil {
		t.Fatal("expected error for non-member rate")
	}
	if n := l.Nearest(0.6); n != 0.5 {
		t.Fatalf("nearest(0.6) = %v", n)
	}
	if n := l.Nearest(0.9); n != 1.0 {
		t.Fatalf("nearest(0.9) = %v", n)
	}
}

func TestBudgetRateEquation3(t *testing.T) {
	l := NewRateList(0.25, 4)
	// Ct/C0 = 0.25 → √ = 0.5 → rate 0.5.
	if r := l.BudgetRate(25, 100); r != 0.5 {
		t.Fatalf("BudgetRate(0.25) = %v, want 0.5", r)
	}
	// Just below the quadratic boundary must drop a step.
	if r := l.BudgetRate(24, 100); r != 0.25 {
		t.Fatalf("BudgetRate(0.24) = %v, want 0.25", r)
	}
	// Ample budget → full network.
	if r := l.BudgetRate(1000, 100); r != 1.0 {
		t.Fatalf("BudgetRate(10) = %v, want 1.0", r)
	}
	// Impossible budget falls back to the lower bound.
	if r := l.BudgetRate(1, 100); r != 0.25 {
		t.Fatalf("BudgetRate(0.01) = %v, want 0.25", r)
	}
}

func TestLargestWithin(t *testing.T) {
	l := NewRateList(0.25, 4)
	quad := func(r float64) float64 { return r * r * 100 }
	r, ok := l.LargestWithin(30, quad)
	if !ok || r != 0.5 {
		t.Fatalf("LargestWithin(30) = %v,%v", r, ok)
	}
	r, ok = l.LargestWithin(1, quad)
	if ok || r != 0.25 {
		t.Fatalf("LargestWithin(1) = %v,%v, want lower-bound fallback", r, ok)
	}
}
