package slicing

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
)

// sharedCase is one model/input configuration the zero-copy path must serve
// identically to the Extract deployment path.
type sharedCase struct {
	name  string
	model nn.Layer
	input func(rng *rand.Rand) *tensor.Tensor
	// tol is 0 for bit-for-bit equality (no rescale anywhere: both paths run
	// the same kernels in the same order) and 1e-12 where output rescaling
	// is folded into weights by Extract but applied to activations by the
	// shared path.
	tol float64
}

func sharedCases(rng *rand.Rand) []sharedCase {
	mlp := nn.NewSequential(
		nn.NewDense(12, 24, nn.Fixed(), nn.Sliced(4), true, rng),
		nn.NewReLU(),
		nn.NewDense(24, 24, nn.Sliced(4), nn.Sliced(4), true, rng),
		nn.NewReLU(),
		nn.NewDense(24, 4, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	mlpRescale := nn.NewSequential(
		nn.NewDense(12, 24, nn.Fixed(), nn.Sliced(4), true, rng),
		nn.NewReLU(),
		nn.NewDense(24, 4, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	for _, l := range mlpRescale.Layers {
		if d, ok := l.(*nn.Dense); ok {
			d.Rescale = true
		}
	}
	lstm := nn.NewSequential(
		nn.NewEmbedding(20, 8, rng),
		nn.NewLSTM(8, 8, nn.Fixed(), nn.Sliced(4), true, rng),
		nn.NewTimeFlatten(),
		nn.NewDense(8, 20, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	gru := nn.NewSequential(
		nn.NewGRU(8, 8, nn.Fixed(), nn.Sliced(4), false, rng),
		nn.NewTimeFlatten(),
		nn.NewDense(8, 5, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	rnn := nn.NewSequential(
		nn.NewRNN(8, 8, nn.Fixed(), nn.Sliced(4), false, rng),
		nn.NewTimeFlatten(),
		nn.NewDense(8, 5, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	resBody := nn.NewSequential(
		nn.NewGroupNorm(8, 4, nn.Sliced(4), 1e-5),
		nn.NewReLU(),
		nn.NewConv2D(8, 8, 3, 3, 1, 1, nn.Sliced(4), nn.Sliced(4), false, rng),
	)
	residual := nn.NewSequential(
		nn.NewConv2D(3, 8, 3, 3, 1, 1, nn.Fixed(), nn.Sliced(4), false, rng),
		nn.NewResidual(resBody, nil),
		nn.NewGlobalAvgPool(),
		nn.NewDense(8, 3, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	// A BatchNorm/SwitchableBatchNorm stack with trained running statistics.
	rates := NewRateList(0.25, 4)
	sbn := nn.NewSwitchableBatchNorm(8, nn.Sliced(4), len(rates))
	bnNet := nn.NewSequential(
		nn.NewDense(6, 8, nn.Fixed(), nn.Sliced(4), false, rng),
		sbn,
		nn.NewReLU(),
		nn.NewDense(8, 3, nn.Sliced(4), nn.Fixed(), true, rng),
	)
	for i, r := range rates {
		ctx := &nn.Context{Training: true, Rate: r, WidthIdx: i, RNG: rng}
		x := tensor.New(6, 6)
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64()
		}
		bnNet.Forward(ctx, x)
	}

	return []sharedCase{
		{"cnn", miniCNN(rng), func(rng *rand.Rand) *tensor.Tensor { return randInput(rng, 2, 3, 8, 8) }, 0},
		{"mlp", mlp, func(rng *rand.Rand) *tensor.Tensor { return randInput(rng, 4, 12) }, 0},
		{"mlp-rescale", mlpRescale, func(rng *rand.Rand) *tensor.Tensor { return randInput(rng, 4, 12) }, 1e-12},
		{"lstm-rescale", lstm, func(rng *rand.Rand) *tensor.Tensor {
			return tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 3, 2)
		}, 1e-12},
		{"gru", gru, func(rng *rand.Rand) *tensor.Tensor { return randInput(rng, 3, 2, 8) }, 0},
		{"rnn", rnn, func(rng *rand.Rand) *tensor.Tensor { return randInput(rng, 3, 2, 8) }, 0},
		{"residual", residual, func(rng *rand.Rand) *tensor.Tensor { return randInput(rng, 2, 3, 6, 6) }, 0},
		{"switchable-bn", bnNet, func(rng *rand.Rand) *tensor.Tensor { return randInput(rng, 3, 6) }, 0},
	}
}

// TestSharedMatchesExtract pins the zero-copy shared-weight path against the
// Extract deployment path for every layer type at every rate in the default
// rate list.
func TestSharedMatchesExtract(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	rates := NewRateList(0.25, 4)
	for _, tc := range sharedCases(rng) {
		shared := NewShared(tc.model, rates)
		shared.SetTier(tensor.TierExact) // oracle tolerances assume the exact tier
		arena := tensor.NewArena()
		for _, r := range rates {
			sub := Extract(tc.model, r, rates)
			x := tc.input(rng)
			want := sub.Forward(nn.Eval(1), x)
			got := shared.Infer(r, x, arena)
			if !want.SameShape(got) {
				t.Fatalf("%s rate %v: shared shape %v, extract shape %v", tc.name, r, got.Shape, want.Shape)
			}
			for i := range want.Data {
				d := math.Abs(want.Data[i] - got.Data[i])
				if d > tc.tol {
					t.Fatalf("%s rate %v: shared path differs at %d: %v vs %v (|Δ|=%g, tol %g)",
						tc.name, r, i, got.Data[i], want.Data[i], d, tc.tol)
				}
			}
			arena.Reset()
		}
	}
}

// TestSharedMatchesPredict pins the shared path against the existing
// Forward-based Predict at every rate (bit-for-bit: same kernels, same
// accumulation order).
func TestSharedMatchesPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	model := miniCNN(rng)
	rates := NewRateList(0.25, 4)
	shared := NewShared(model, rates)
	shared.SetTier(tensor.TierExact) // Predict runs the exact Forward path
	for _, r := range rates {
		x := randInput(rng, 2, 3, 8, 8)
		want := Predict(model, rates, r, x)
		got := shared.Infer(r, x, nil)
		for i := range want.Data {
			if want.Data[i] != got.Data[i] {
				t.Fatalf("rate %v: shared %v != Predict %v at %d", r, got.Data[i], want.Data[i], i)
			}
		}
	}
}

// TestSharedConcurrentInference hammers one shared weight set from many
// goroutines at mixed rates (run with -race in CI): each worker owns an
// arena, serves every rate repeatedly, and must reproduce the single-thread
// outputs bit-for-bit.
func TestSharedConcurrentInference(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	model := miniCNN(rng)
	rates := NewRateList(0.25, 4)
	shared := NewShared(model, rates)

	inputs := make([]*tensor.Tensor, len(rates))
	want := make([]*tensor.Tensor, len(rates))
	for i, r := range rates {
		inputs[i] = randInput(rng, 2, 3, 8, 8)
		want[i] = shared.Infer(r, inputs[i], nil)
	}

	const workers = 8
	const iters = 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arena := tensor.NewArena()
			for it := 0; it < iters; it++ {
				i := (w + it) % len(rates)
				got := shared.Infer(rates[i], inputs[i], arena)
				for j := range want[i].Data {
					if got.Data[j] != want[i].Data[j] {
						t.Errorf("worker %d iter %d rate %v: concurrent result diverged", w, it, rates[i])
						return
					}
				}
				arena.Reset()
			}
		}(w)
	}
	wg.Wait()
}
