package slicing

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"modelslicing/internal/tensor"
)

// TestSharedPackedMatchesUnpackedEndToEnd pins the acceptance bound of the
// persistent-pack path: a packed Shared and an unpacked Shared over the same
// parent weights must agree ≤1e-12 end-to-end at every deployable rate (and
// in practice bit-for-bit: every layer's packed GEMM preserves the unpacked
// engine's accumulation order).
func TestSharedPackedMatchesUnpackedEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(600))
	rates := NewRateList(0.25, 4)
	model := miniCNN(rng)
	// Bit-identity holds only on the exact tier; pin it so the assertion
	// survives the CI environment sweeps over MS_ENGINE_TIER.
	packed := NewShared(model, rates)
	packed.SetTier(tensor.TierExact)
	unpacked := NewShared(model, rates)
	unpacked.SetTier(tensor.TierExact)
	unpacked.SetPacked(false)

	arenaP := tensor.NewArena()
	arenaU := tensor.NewArena()
	for _, r := range rates {
		x := randInput(rng, 4, 3, 8, 8)
		got := packed.Infer(r, x, arenaP)
		want := unpacked.Infer(r, x, arenaU)
		if !got.SameShape(want) {
			t.Fatalf("rate %v: packed shape %v, unpacked %v", r, got.Shape, want.Shape)
		}
		for i := range want.Data {
			if d := math.Abs(got.Data[i] - want.Data[i]); d > 1e-12 {
				t.Fatalf("rate %v: packed path differs at %d: %v vs %v (|Δ|=%g)",
					r, i, got.Data[i], want.Data[i], d)
			}
		}
		arenaP.Reset()
		arenaU.Reset()
	}
	if packed.PackCacheBytes() == 0 {
		t.Fatal("packed Shared served every rate but reports no pack memory")
	}
}

// TestSharedPackCacheLifecycle verifies lazy per-width construction: no packs
// before the first pass, growth as new widths are served, and no further
// growth when widths repeat.
func TestSharedPackCacheLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	rates := NewRateList(0.25, 4)
	shared := NewShared(miniCNN(rng), rates)
	if b := shared.PackCacheBytes(); b != 0 {
		t.Fatalf("fresh Shared holds %d pack bytes, want 0", b)
	}
	arena := tensor.NewArena()
	shared.Infer(rates[0], randInput(rng, 2, 3, 8, 8), arena)
	arena.Reset()
	b1 := shared.PackCacheBytes()
	if b1 == 0 {
		t.Fatal("first pass built no packs")
	}
	shared.Infer(1, randInput(rng, 2, 3, 8, 8), arena)
	arena.Reset()
	b2 := shared.PackCacheBytes()
	if b2 <= b1 {
		t.Fatalf("serving a new width did not grow the pack cache (%d -> %d)", b1, b2)
	}
	for _, r := range rates {
		shared.Infer(r, randInput(rng, 2, 3, 8, 8), arena)
		arena.Reset()
	}
	b3 := shared.PackCacheBytes()
	for _, r := range rates {
		shared.Infer(r, randInput(rng, 2, 3, 8, 8), arena)
		arena.Reset()
	}
	if b4 := shared.PackCacheBytes(); b4 != b3 {
		t.Fatalf("repeat widths grew the pack cache (%d -> %d)", b3, b4)
	}
}

// TestSharedPackConstructionRace hammers the lazy once-per-width pack build:
// many workers hit a fresh Shared at every rate simultaneously, so the first
// touch of each width races between goroutines (run with -race in CI), and
// every worker must still reproduce the serial outputs bit-for-bit.
func TestSharedPackConstructionRace(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	rates := NewRateList(0.25, 4)
	model := miniCNN(rng)

	oracle := NewShared(model, rates)
	oracle.SetTier(tensor.TierExact) // bit-identity only holds on the exact tier
	oracle.SetPacked(false)
	inputs := make([]*tensor.Tensor, len(rates))
	want := make([]*tensor.Tensor, len(rates))
	for i, r := range rates {
		inputs[i] = randInput(rng, 2, 3, 8, 8)
		want[i] = oracle.Infer(r, inputs[i], nil)
	}

	// Fresh Shared: no packs exist yet, so the first pass of every worker
	// races into the per-width builders.
	shared := NewShared(model, rates)
	shared.SetTier(tensor.TierExact)
	const workers = 8
	const iters = 10
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arena := tensor.NewArena()
			for it := 0; it < iters; it++ {
				for i, r := range rates {
					got := shared.Infer(r, inputs[i], arena)
					for j := range want[i].Data {
						if got.Data[j] != want[i].Data[j] {
							errs <- "worker diverged from serial oracle"
							return
						}
					}
					arena.Reset()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
