package slicing

import (
	"fmt"
	"math"
	"math/rand"
)

// Scheduler produces, for each training pass, the list Lt of slice rates
// whose sub-networks are trained on the current batch (Algorithm 1 /
// Section 3.4). Implementations must be deterministic given the rng.
type Scheduler interface {
	// Next returns the slice rates for one training pass.
	Next(rng *rand.Rand) []float64
	// Name identifies the scheme in reports (Table 1 column headers).
	Name() string
}

// Fixed always schedules the same single rate — used to train the
// conventional fixed-width baselines ("fixed models" in Tables 1/2/4).
type Fixed struct{ Rate float64 }

// Next returns the fixed rate.
func (f Fixed) Next(*rand.Rand) []float64 { return []float64{f.Rate} }

// Name implements Scheduler.
func (f Fixed) Name() string { return fmt.Sprintf("Fixed-%.3f", f.Rate) }

// Static schedules every rate in the list each pass — the SlimmableNet-style
// scheme the paper finds inferior to weighted random scheduling (Table 1).
type Static struct{ Rates RateList }

// Next returns all rates.
func (s Static) Next(*rand.Rand) []float64 { return append([]float64(nil), s.Rates...) }

// Name implements Scheduler.
func (s Static) Name() string { return "Static" }

// Random samples K rates per pass from a categorical distribution over the
// rate list. Probabilities express the relative importance of the subnets
// (Section 3.4); the paper's R-weighted scheme uses (0.5, 0.125, 0.125, 0.25)
// over (1.0, 0.75, 0.5, 0.25) — i.e. more mass on the full and base network.
type Random struct {
	Rates RateList
	Probs []float64
	K     int
	label string
}

// NewRandomUniform builds the R-uniform-k scheme.
func NewRandomUniform(rates RateList, k int) *Random {
	p := make([]float64, len(rates))
	for i := range p {
		p[i] = 1 / float64(len(rates))
	}
	return &Random{Rates: rates, Probs: p, K: k, label: fmt.Sprintf("R-uniform-%d", k)}
}

// NewRandomWeighted builds the R-weighted-k scheme. weights are given in the
// same order as rates and are normalized internally.
func NewRandomWeighted(rates RateList, weights []float64, k int) *Random {
	if len(weights) != len(rates) {
		panic(fmt.Sprintf("slicing: %d weights for %d rates", len(weights), len(rates)))
	}
	sum := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("slicing: negative scheduling weight")
		}
		sum += w
	}
	p := make([]float64, len(weights))
	for i, w := range weights {
		p[i] = w / sum
	}
	return &Random{Rates: rates, Probs: p, K: k, label: fmt.Sprintf("R-weighted-%d", k)}
}

// NewRandomFromDensity parameterizes the categorical distribution from a
// continuous density f(r) via Equation 8: each rate's probability is the
// integral of f between the midpoints of its neighbours.
func NewRandomFromDensity(rates RateList, cdf func(float64) float64, k int, label string) *Random {
	g := len(rates)
	p := make([]float64, g)
	for i := range rates {
		switch {
		case g == 1:
			p[i] = 1
		case i == 0:
			p[i] = cdf((rates[0] + rates[1]) / 2)
		case i == g-1:
			p[i] = 1 - cdf((rates[g-2]+rates[g-1])/2)
		default:
			p[i] = cdf((rates[i]+rates[i+1])/2) - cdf((rates[i-1]+rates[i])/2)
		}
	}
	// Normalize residual mass (a density may not integrate to 1 over (0,1]).
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	for i := range p {
		p[i] /= sum
	}
	return &Random{Rates: rates, Probs: p, K: k, label: label}
}

// NormalCDF returns the CDF of N(mu, sigma²) for use with
// NewRandomFromDensity.
func NormalCDF(mu, sigma float64) func(float64) float64 {
	return func(x float64) float64 {
		return 0.5 * (1 + math.Erf((x-mu)/(sigma*math.Sqrt2)))
	}
}

// Next samples K rates (with replacement, matching the paper's independent
// draws per forward pass).
func (r *Random) Next(rng *rand.Rand) []float64 {
	out := make([]float64, r.K)
	for i := range out {
		out[i] = r.sample(rng)
	}
	return out
}

func (r *Random) sample(rng *rand.Rand) float64 {
	u := rng.Float64()
	acc := 0.0
	for i, p := range r.Probs {
		acc += p
		if u < acc {
			return r.Rates[i]
		}
	}
	return r.Rates[len(r.Rates)-1]
}

// Name implements Scheduler.
func (r *Random) Name() string { return r.label }

// RandomStatic schedules a fixed set of rates every pass plus K rates
// sampled uniformly from the remaining pool — the paper's R-min, R-max and
// R-min-max schemes (Section 3.4, Table 1).
type RandomStatic struct {
	Rates  RateList
	Static []float64
	pool   []float64
	K      int
	label  string
}

// NewRandomStatic builds a random-static scheme with the given pinned rates.
func NewRandomStatic(rates RateList, static []float64, k int, label string) *RandomStatic {
	inStatic := func(r float64) bool {
		for _, s := range static {
			if math.Abs(s-r) < 1e-9 {
				return true
			}
		}
		return false
	}
	rs := &RandomStatic{Rates: rates, Static: append([]float64(nil), static...), K: k, label: label}
	for _, r := range rates {
		if !inStatic(r) {
			rs.pool = append(rs.pool, r)
		}
	}
	if len(rs.pool) == 0 && k > 0 {
		panic("slicing: RandomStatic has an empty sampling pool")
	}
	return rs
}

// NewRMin pins the base network (lower bound) and samples one other rate.
func NewRMin(rates RateList) *RandomStatic {
	return NewRandomStatic(rates, []float64{rates.Min()}, 1, "R-min")
}

// NewRMax pins the full network and samples one other rate.
func NewRMax(rates RateList) *RandomStatic {
	return NewRandomStatic(rates, []float64{rates.Max()}, 1, "R-max")
}

// NewRMinMax pins both the base and the full network — the two most
// important subnets per Section 3.4 — and samples one of the rest. This is
// the scheme the paper selects for larger datasets.
func NewRMinMax(rates RateList) *RandomStatic {
	return NewRandomStatic(rates, []float64{rates.Min(), rates.Max()}, 1, "R-min-max")
}

// Next returns the pinned rates plus K uniform samples from the pool.
func (rs *RandomStatic) Next(rng *rand.Rand) []float64 {
	out := append([]float64(nil), rs.Static...)
	for i := 0; i < rs.K && len(rs.pool) > 0; i++ {
		out = append(out, rs.pool[rng.Intn(len(rs.pool))])
	}
	return out
}

// Name implements Scheduler.
func (rs *RandomStatic) Name() string { return rs.label }
