package slicing

import (
	"math"
	"math/rand"
	"testing"

	"modelslicing/internal/nn"
	"modelslicing/internal/tensor"
	"modelslicing/internal/train"
)

// twoBlobs builds a linearly separable 2-class dataset.
func twoBlobs(n int, rng *rand.Rand) []train.Batch {
	var batches []train.Batch
	bs := 16
	for len(batches)*bs < n {
		x := tensor.New(bs, 8)
		labels := make([]int, bs)
		for i := 0; i < bs; i++ {
			c := rng.Intn(2)
			labels[i] = c
			sign := float64(2*c - 1)
			for j := 0; j < 8; j++ {
				x.Set(sign*1.5+rng.NormFloat64()*0.5, i, j)
			}
		}
		batches = append(batches, train.Batch{X: x, Labels: labels})
	}
	return batches
}

func slicedMLP(rng *rand.Rand) *nn.Sequential {
	return nn.NewSequential(
		nn.NewDense(8, 16, nn.Fixed(), nn.Sliced(4), true, rng),
		nn.NewReLU(),
		nn.NewDense(16, 16, nn.Sliced(4), nn.Sliced(4), true, rng),
		nn.NewReLU(),
		nn.NewDense(16, 2, nn.Sliced(4), nn.Fixed(), true, rng),
	)
}

func TestTrainerLearnsAtAllRates(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	model := slicedMLP(rng)
	rates := NewRateList(0.25, 4)
	tr := NewTrainer(model, rates, NewRandomWeighted(rates, []float64{0.25, 0.125, 0.125, 0.5}, 2),
		train.NewSGD(0.1, 0.9, 1e-4), rng)
	data := twoBlobs(256, rng)
	test := twoBlobs(128, rng)
	for epoch := 0; epoch < 15; epoch++ {
		tr.Epoch(data)
	}
	for i, r := range rates {
		res := train.Evaluate(model, r, i, test)
		if res.Accuracy < 0.95 {
			t.Fatalf("rate %v accuracy %.3f, want ≥0.95", r, res.Accuracy)
		}
	}
}

func TestTrainerStepSchedulesAndReports(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	model := slicedMLP(rng)
	rates := NewRateList(0.25, 4)
	tr := NewTrainer(model, rates, Static{Rates: rates}, train.NewSGD(0.01, 0, 0), rng)
	b := twoBlobs(16, rng)[0]
	stats := tr.Step(b)
	if len(stats.Rates) != 4 || len(stats.Losses) != 4 {
		t.Fatalf("static step stats %+v", stats)
	}
	if stats.MeanLoss() <= 0 {
		t.Fatal("losses must be positive at init")
	}
}

// Gradient accumulation across scheduled subnets must equal the sum of the
// gradients of each subnet trained alone — the heart of Algorithm 1.
func TestTrainerAccumulatesSubnetGradients(t *testing.T) {
	rngA := rand.New(rand.NewSource(102))
	a := slicedMLP(rngA)
	rngB := rand.New(rand.NewSource(102)) // identical init
	b := slicedMLP(rngB)

	batch := twoBlobs(16, rand.New(rand.NewSource(5)))[0]

	// Model A: one combined pass over rates {0.5, 1.0}.
	for _, r := range []float64{0.5, 1.0} {
		ctx := &nn.Context{Training: true, Rate: r, RNG: rngA}
		logits := a.Forward(ctx, batch.X)
		_, dy := nn.SoftmaxCrossEntropy(logits, batch.Labels)
		a.Backward(ctx, dy)
	}
	// Model B: two separate passes, grads summed manually.
	accum := make([]*tensor.Tensor, len(b.Params()))
	for i := range accum {
		accum[i] = tensor.New(b.Params()[i].Grad.Shape...)
	}
	for _, r := range []float64{0.5, 1.0} {
		train.ZeroGrad(b.Params())
		ctx := &nn.Context{Training: true, Rate: r, RNG: rngB}
		logits := b.Forward(ctx, batch.X)
		_, dy := nn.SoftmaxCrossEntropy(logits, batch.Labels)
		b.Backward(ctx, dy)
		for i, p := range b.Params() {
			accum[i].Add(p.Grad)
		}
	}
	for i, p := range a.Params() {
		for j := range p.Grad.Data {
			if math.Abs(p.Grad.Data[j]-accum[i].Data[j]) > 1e-10 {
				t.Fatalf("gradient accumulation mismatch at param %d elem %d", i, j)
			}
		}
	}
}

func TestPredictAndEvaluateAll(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	model := slicedMLP(rng)
	rates := NewRateList(0.25, 4)
	x := tensor.New(4, 8)
	logits := Predict(model, rates, 0.5, x)
	if logits.Dim(0) != 4 || logits.Dim(1) != 2 {
		t.Fatalf("Predict output %v", logits.Shape)
	}
	res := EvaluateAll(model, rates, twoBlobs(32, rng))
	if len(res) != 4 {
		t.Fatalf("EvaluateAll returned %d results", len(res))
	}
	for _, r := range res {
		if r.N == 0 {
			t.Fatal("evaluation saw no samples")
		}
	}
}

// Training with the full-width-only scheduler then slicing directly must
// hurt small subnets far more than slicing-aware training — the qualitative
// claim behind the lb=1.0 rows of Table 4.
func TestDirectSlicingDegradesWithoutSlicingTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	rates := NewRateList(0.25, 4)
	data := twoBlobs(256, rng)
	test := twoBlobs(128, rng)

	full := slicedMLP(rng)
	trFull := NewTrainer(full, rates, Fixed{Rate: 1.0}, train.NewSGD(0.1, 0.9, 1e-4), rng)
	sliced := slicedMLP(rng)
	trSliced := NewTrainer(sliced, rates, NewRMinMax(rates), train.NewSGD(0.1, 0.9, 1e-4), rng)
	for epoch := 0; epoch < 15; epoch++ {
		trFull.Epoch(data)
		trSliced.Epoch(data)
	}
	accFullAtQuarter := train.Evaluate(full, 0.25, 0, test).Accuracy
	accSlicedAtQuarter := train.Evaluate(sliced, 0.25, 0, test).Accuracy
	if accSlicedAtQuarter < accFullAtQuarter-1e-9 {
		t.Fatalf("slicing-trained subnet (%.3f) should not be worse than direct slicing (%.3f)",
			accSlicedAtQuarter, accFullAtQuarter)
	}
}
