package slicing

import (
	"fmt"
	"math/rand"

	"modelslicing/internal/nn"
)

// Extract builds a standalone copy of the sub-network at slice rate r: a
// model whose full width equals the parent's active width, with the prefix
// weights copied (and any rescale factors baked into the weights). The
// extracted subnet computes exactly the same function as the parent sliced
// at r, but its parameter and run-time memory footprint is that of the small
// model — the deployment story of Section 3.1 ("a subnet can be readily
// sliced and deployed out of the network trained with model slicing").
//
// Extract is the deployment-export path: use it to ship a small standalone
// model. For serving many rates live from one process, Shared provides the
// same outputs zero-copy from the parent's weight buffers.
//
// rates supplies the width index for layers with per-width state
// (SwitchableBatchNorm). Extract panics on layer types it does not know.
func Extract(layer nn.Layer, r float64, rates RateList) nn.Layer {
	// The extractor never uses randomness; initializers run on throwaway
	// buffers that are immediately overwritten.
	rng := rand.New(rand.NewSource(0))
	switch l := layer.(type) {
	case *nn.Sequential:
		out := &nn.Sequential{}
		for _, inner := range l.Layers {
			out.Layers = append(out.Layers, Extract(inner, r, rates))
		}
		return out

	case *nn.Residual:
		var short nn.Layer
		if l.Short != nil {
			short = Extract(l.Short, r, rates)
		}
		return nn.NewResidual(Extract(l.Body, r, rates), short)

	case *nn.Dense:
		aIn, aOut := l.Active(r)
		d := nn.NewDense(aIn, aOut, nn.Fixed(), nn.Fixed(), l.B != nil, rng)
		scale := 1.0
		if l.Rescale && aIn < l.In {
			scale = float64(l.In) / float64(aIn)
		}
		for o := 0; o < aOut; o++ {
			src := l.W.Value.Row(o)[:aIn]
			dst := d.W.Value.Row(o)
			for j, v := range src {
				dst[j] = v * scale
			}
			if l.B != nil {
				d.B.Value.Data[o] = l.B.Value.Data[o]
			}
		}
		return d

	case *nn.Conv2D:
		aIn, aOut := l.Active(r)
		c := nn.NewConv2D(aIn, aOut, l.KH, l.KW, l.Stride, l.Pad, nn.Fixed(), nn.Fixed(), l.B != nil, rng)
		cols := aIn * l.KH * l.KW
		for o := 0; o < aOut; o++ {
			copy(c.W.Value.Row(o), l.W.Value.Row(o)[:cols])
			if l.B != nil {
				c.B.Value.Data[o] = l.B.Value.Data[o]
			}
		}
		return c

	case *nn.GroupNorm:
		aC := l.Spec.Active(r, l.C)
		gs := l.C / l.NormGroups
		g := nn.NewGroupNorm(aC, aC/gs, nn.Fixed(), l.Eps)
		copy(g.Gamma.Value.Data, l.Gamma.Value.Data[:aC])
		copy(g.Beta.Value.Data, l.Beta.Value.Data[:aC])
		return g

	case *nn.BatchNorm:
		aC := l.Spec.Active(r, l.C)
		b := nn.NewBatchNorm(aC, nn.Fixed())
		b.Eps, b.Momentum = l.Eps, l.Momentum
		copy(b.Gamma.Value.Data, l.Gamma.Value.Data[:aC])
		copy(b.Beta.Value.Data, l.Beta.Value.Data[:aC])
		copy(b.RunMean.Data, l.RunMean.Data[:aC])
		copy(b.RunVar.Data, l.RunVar.Data[:aC])
		return b

	case *nn.SwitchableBatchNorm:
		idx := rates.MustIndex(rates.Nearest(r))
		return Extract(l.BNs[idx], r, rates)

	case *nn.LSTM:
		aIn, aH := l.Active(r)
		out := nn.NewLSTM(aIn, aH, nn.Fixed(), nn.Fixed(), false, rng)
		scaleX, scaleH := 1.0, 1.0
		if l.Rescale {
			if aIn < l.In {
				scaleX = float64(l.In) / float64(aIn)
			}
			if aH < l.Hidden {
				scaleH = float64(l.Hidden) / float64(aH)
			}
		}
		copyGateBlocks(4, aH, aIn, l.Hidden, out.Wx.Value.Data, l.Wx.Value.Data, l.In, scaleX)
		copyGateBlocks(4, aH, aH, l.Hidden, out.Wh.Value.Data, l.Wh.Value.Data, l.Hidden, scaleH)
		for k := 0; k < 4; k++ {
			copy(out.B.Value.Data[k*aH:(k+1)*aH], l.B.Value.Data[k*l.Hidden:k*l.Hidden+aH])
		}
		return out

	case *nn.GRU:
		aIn, aH := l.Active(r)
		out := nn.NewGRU(aIn, aH, nn.Fixed(), nn.Fixed(), false, rng)
		scaleX, scaleH := 1.0, 1.0
		if l.Rescale {
			if aIn < l.In {
				scaleX = float64(l.In) / float64(aIn)
			}
			if aH < l.Hidden {
				scaleH = float64(l.Hidden) / float64(aH)
			}
		}
		copyGateBlocks(3, aH, aIn, l.Hidden, out.Wx.Value.Data, l.Wx.Value.Data, l.In, scaleX)
		copyGateBlocks(3, aH, aH, l.Hidden, out.Wh.Value.Data, l.Wh.Value.Data, l.Hidden, scaleH)
		for k := 0; k < 3; k++ {
			copy(out.Bx.Value.Data[k*aH:(k+1)*aH], l.Bx.Value.Data[k*l.Hidden:k*l.Hidden+aH])
			copy(out.Bh.Value.Data[k*aH:(k+1)*aH], l.Bh.Value.Data[k*l.Hidden:k*l.Hidden+aH])
		}
		return out

	case *nn.RNN:
		aIn, aH := l.Active(r)
		out := nn.NewRNN(aIn, aH, nn.Fixed(), nn.Fixed(), false, rng)
		scaleX, scaleH := 1.0, 1.0
		if l.Rescale {
			if aIn < l.In {
				scaleX = float64(l.In) / float64(aIn)
			}
			if aH < l.Hidden {
				scaleH = float64(l.Hidden) / float64(aH)
			}
		}
		copyGateBlocks(1, aH, aIn, l.Hidden, out.Wx.Value.Data, l.Wx.Value.Data, l.In, scaleX)
		copyGateBlocks(1, aH, aH, l.Hidden, out.Wh.Value.Data, l.Wh.Value.Data, l.Hidden, scaleH)
		copy(out.B.Value.Data, l.B.Value.Data[:aH])
		return out

	case *nn.Embedding:
		out := nn.NewEmbedding(l.V, l.E, rng)
		copy(out.W.Value.Data, l.W.Value.Data)
		return out

	case *nn.ReLU:
		return nn.NewReLU()
	case *nn.Dropout:
		return nn.NewDropout(l.P)
	case *nn.MaxPool2D:
		return nn.NewMaxPool2D(l.K, l.Stride)
	case *nn.GlobalAvgPool:
		return nn.NewGlobalAvgPool()
	case *nn.Flatten:
		return nn.NewFlatten()
	case *nn.TimeFlatten:
		return nn.NewTimeFlatten()

	default:
		panic(fmt.Sprintf("slicing: Extract does not support layer type %T", layer))
	}
}

// copyGateBlocks copies, for each of nGates stacked [hidden × srcLD] blocks,
// the leading aRows×aCols sub-matrix into a [nGates·aRows × aCols]
// destination, scaling values by scale.
func copyGateBlocks(nGates, aRows, aCols, hidden int, dst, src []float64, srcLD int, scale float64) {
	for k := 0; k < nGates; k++ {
		for row := 0; row < aRows; row++ {
			s := src[(k*hidden+row)*srcLD : (k*hidden+row)*srcLD+aCols]
			d := dst[(k*aRows+row)*aCols : (k*aRows+row+1)*aCols]
			if scale == 1 {
				copy(d, s)
			} else {
				for j, v := range s {
					d[j] = v * scale
				}
			}
		}
	}
}
