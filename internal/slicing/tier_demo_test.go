package slicing_test

import (
	"math/rand"
	"testing"

	"modelslicing/internal/demo"
	"modelslicing/internal/slicing"
	"modelslicing/internal/tensor"
)

// TestDemoModelTierAccuracyDelta is the end-to-end accuracy-budget check on
// a real trained model: serving the demo MLP on a fast tier must not move
// test-set predictions. The fma tier must agree on every argmax; the f32
// tier may flip at most 1% of samples near decision boundaries (observed: 0),
// bounding its accuracy delta by the same 1%.
func TestDemoModelTierAccuracyDelta(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the demo model")
	}
	rng := rand.New(rand.NewSource(703))
	m := demo.TrainMLP(0.25, 4, 2, rng)
	rates := m.Rates

	const n = 256
	x := tensor.New(n, demo.Features)
	for i := 0; i < n; i++ {
		copy(x.Data[i*demo.Features:(i+1)*demo.Features], m.Sample(rng).Data)
	}
	argmax := func(row []float64) int {
		best := 0
		for j, v := range row {
			if v > row[best] {
				best = j
			}
		}
		return best
	}

	shared := slicing.NewShared(m.Net, rates)
	for _, r := range rates {
		shared.SetTier(tensor.TierExact)
		exact := shared.Infer(r, x, nil)
		for _, tc := range []struct {
			tier     tensor.EngineTier
			maxFlips int
		}{{tensor.TierFMA, 0}, {tensor.TierF32, n / 100}} {
			shared.SetTier(tc.tier)
			got := shared.Infer(r, x, nil)
			flips := 0
			for i := 0; i < n; i++ {
				if argmax(got.Data[i*demo.Classes:(i+1)*demo.Classes]) !=
					argmax(exact.Data[i*demo.Classes:(i+1)*demo.Classes]) {
					flips++
				}
			}
			if flips > tc.maxFlips {
				t.Fatalf("tier %v rate %v: %d/%d predictions flipped (max %d)",
					tc.tier, r, flips, n, tc.maxFlips)
			}
		}
	}
}
