package slicing

import (
	"math"
	"math/rand"
	"testing"
)

func TestFixedScheduler(t *testing.T) {
	s := Fixed{Rate: 0.5}
	got := s.Next(nil)
	if len(got) != 1 || got[0] != 0.5 {
		t.Fatalf("Fixed.Next = %v", got)
	}
}

func TestStaticSchedulerReturnsAll(t *testing.T) {
	rates := NewRateList(0.25, 4)
	s := Static{Rates: rates}
	got := s.Next(nil)
	if len(got) != 4 {
		t.Fatalf("Static.Next = %v", got)
	}
	// Must be a copy, not an alias.
	got[0] = 99
	if rates[0] == 99 {
		t.Fatal("Static.Next must not alias the rate list")
	}
}

func TestRandomWeightedEmpiricalDistribution(t *testing.T) {
	rates := NewRateList(0.25, 4)
	weights := []float64{0.25, 0.125, 0.125, 0.5} // order: 0.25,0.5,0.75,1.0
	s := NewRandomWeighted(rates, weights, 1)
	rng := rand.New(rand.NewSource(42))
	counts := map[float64]int{}
	n := 40000
	for i := 0; i < n; i++ {
		for _, r := range s.Next(rng) {
			counts[r]++
		}
	}
	for i, r := range rates {
		got := float64(counts[r]) / float64(n)
		if math.Abs(got-weights[i]) > 0.01 {
			t.Fatalf("rate %v sampled with freq %v, want %v", r, got, weights[i])
		}
	}
}

func TestRandomUniformK(t *testing.T) {
	rates := NewRateList(0.25, 4)
	s := NewRandomUniform(rates, 3)
	rng := rand.New(rand.NewSource(1))
	got := s.Next(rng)
	if len(got) != 3 {
		t.Fatalf("R-uniform-3 returned %d rates", len(got))
	}
	if s.Name() != "R-uniform-3" {
		t.Fatalf("name %q", s.Name())
	}
}

func TestRandomFromDensityEquation8(t *testing.T) {
	// A uniform density over (0,1] must give boundary rates half the inner
	// mass plus the tail: p(r1)=F(0.375)=0.375, inner p=0.25, p(rG)=0.375
	// before normalization (already sums to 1 for U(0,1)).
	rates := NewRateList(0.25, 4)
	uniformCDF := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	s := NewRandomFromDensity(rates, uniformCDF, 1, "R-U(0,1)")
	want := []float64{0.375, 0.25, 0.25, 0.125}
	// p(0.25) = F(0.375) = 0.375; p(0.5) = F(0.625)-F(0.375) = 0.25;
	// p(0.75) = F(0.875)-F(0.625) = 0.25; p(1.0) = 1-F(0.875) = 0.125.
	for i := range want {
		if math.Abs(s.Probs[i]-want[i]) > 1e-9 {
			t.Fatalf("Equation 8 probs %v, want %v", s.Probs, want)
		}
	}
}

func TestNormalCDFMonotone(t *testing.T) {
	cdf := NormalCDF(0.5, 0.2)
	if cdf(0.5) < 0.499 || cdf(0.5) > 0.501 {
		t.Fatalf("CDF at mean = %v", cdf(0.5))
	}
	prev := -1.0
	for x := 0.0; x <= 1.0; x += 0.1 {
		v := cdf(x)
		if v < prev {
			t.Fatal("CDF must be monotone")
		}
		prev = v
	}
}

func TestRandomStaticAlwaysIncludesPinned(t *testing.T) {
	rates := NewRateList(0.25, 4)
	rng := rand.New(rand.NewSource(2))
	for name, s := range map[string]*RandomStatic{
		"R-min":     NewRMin(rates),
		"R-max":     NewRMax(rates),
		"R-min-max": NewRMinMax(rates),
	} {
		for i := 0; i < 100; i++ {
			got := s.Next(rng)
			switch name {
			case "R-min":
				if got[0] != 0.25 || len(got) != 2 {
					t.Fatalf("%s: %v", name, got)
				}
			case "R-max":
				if got[0] != 1.0 || len(got) != 2 {
					t.Fatalf("%s: %v", name, got)
				}
			case "R-min-max":
				if got[0] != 0.25 || got[1] != 1.0 || len(got) != 3 {
					t.Fatalf("%s: %v", name, got)
				}
			}
			// Sampled rates must come from the pool (never the pinned set).
			for _, r := range got[len(s.Static):] {
				for _, pinned := range s.Static {
					if r == pinned {
						t.Fatalf("%s sampled pinned rate %v", name, r)
					}
				}
			}
		}
	}
}

func TestRandomStaticSamplesCoverPool(t *testing.T) {
	rates := NewRateList(0.25, 8)
	s := NewRMinMax(rates)
	rng := rand.New(rand.NewSource(3))
	seen := map[float64]bool{}
	for i := 0; i < 500; i++ {
		got := s.Next(rng)
		seen[got[2]] = true
	}
	if len(seen) != len(rates)-2 {
		t.Fatalf("sampled %d distinct pool rates, want %d", len(seen), len(rates)-2)
	}
}
