//go:build race

package slicing

const raceEnabled = true
